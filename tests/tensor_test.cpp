#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

TEST(Tensor, ConstructsZeroInitialized) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.n(), 2);
  EXPECT_EQ(t.c(), 3);
  EXPECT_EQ(t.h(), 4);
  EXPECT_EQ(t.w(), 5);
  EXPECT_EQ(t.size(), 120u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, AtIndexingIsRowMajorNchw) {
  Tensor t(1, 2, 2, 3);
  t.at(0, 1, 1, 2) = 7.0f;
  // offset = ((0*2+1)*2+1)*3+2 = 11
  EXPECT_EQ(t[11], 7.0f);
}

TEST(Tensor, FillSetsAll) {
  Tensor t(1, 1, 2, 2);
  t.fill(3.5f);
  EXPECT_EQ(t.sum(), 14.0);
  EXPECT_EQ(t.mean(), 3.5);
}

TEST(Tensor, SameShapeComparison) {
  Tensor a(1, 2, 3, 4), b(1, 2, 3, 4), c(1, 2, 4, 3);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(1, 2, 2, 3);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  t.reshape(1, 12, 1, 1);
  EXPECT_EQ(t.c(), 12);
  EXPECT_EQ(t[5], 5.0f);
}

TEST(Tensor, AbsMax) {
  Tensor t = Tensor::vec(3);
  t[0] = -5.0f;
  t[1] = 2.0f;
  t[2] = 4.0f;
  EXPECT_EQ(t.abs_max(), 5.0f);
}

TEST(Tensor, ChwAndVecFactories) {
  Tensor a = Tensor::chw(3, 8, 9);
  EXPECT_EQ(a.n(), 1);
  EXPECT_EQ(a.c(), 3);
  Tensor v = Tensor::vec(10);
  EXPECT_EQ(v.c(), 10);
  EXPECT_EQ(v.h(), 1);
}

TEST(Tensor, ShapeStr) {
  Tensor t(1, 48, 18, 25);
  EXPECT_EQ(t.shape_str(), "[1,48,18,25]");
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(1, 1, 1, 2);
  a[0] = 1.0f;
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

}  // namespace
}  // namespace ada
