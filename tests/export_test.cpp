#include "export/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace ada {
namespace {

TEST(CocoExport, AnnotationsContainAllSections) {
  Dataset ds = Dataset::synth_vid(1, 1, 7);
  const std::string json =
      coco_annotations_json(ds, ds.val_snippets(), 600);
  EXPECT_NE(json.find("\"images\":["), std::string::npos);
  EXPECT_NE(json.find("\"annotations\":["), std::string::npos);
  EXPECT_NE(json.find("\"categories\":["), std::string::npos);
  // 30 categories, each by name.
  EXPECT_NE(json.find("\"airplane\""), std::string::npos);
  EXPECT_NE(json.find("\"zebra\""), std::string::npos);
  // One image entry per frame.
  std::size_t images = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"file_name\"", pos)) != std::string::npos; ++pos)
    ++images;
  EXPECT_EQ(images, ds.val_snippets()[0].frames.size());
}

TEST(CocoExport, ImageIdsEncodeSnippetAndFrame) {
  Dataset ds = Dataset::synth_vid(1, 2, 7);
  const std::string json = coco_annotations_json(ds, ds.val_snippets(), 240);
  // Snippet 1, frame 2 -> id 1002.
  EXPECT_NE(json.find("\"id\":1002"), std::string::npos);
}

TEST(CocoExport, ResultsArrayRoundTripsScores) {
  std::vector<std::vector<EvalDetection>> dets(2);
  EvalDetection d;
  d.box = Box{1, 2, 11, 22};
  d.class_id = 5;
  d.score = 0.875f;
  dets[1].push_back(d);
  const std::string json = coco_results_json(dets, {0, 1});
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"image_id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"category_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.875"), std::string::npos);
  EXPECT_NE(json.find("\"bbox\":[1,2,10,20]"), std::string::npos);
}

TEST(CocoExport, EmptyResultsIsEmptyArray) {
  EXPECT_EQ(coco_results_json({}, {}), "[]");
}

TEST(Ppm, WritesValidHeaderAndSize) {
  Tensor img(1, 3, 4, 6);
  img.fill(0.5f);
  const std::string path = "/tmp/ada_export_test.ppm";
  ASSERT_TRUE(write_ppm(path, img));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  int w = 0, h = 0, maxv = 0;
  ASSERT_EQ(std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxv), 4);
  EXPECT_STREQ(magic, "P6");
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxv, 255);
  std::fclose(f);
  EXPECT_EQ(std::filesystem::file_size(path),
            std::string("P6\n6 4\n255\n").size() + 4u * 6u * 3u);
  std::filesystem::remove(path);
}

TEST(Ppm, RejectsNonRgbTensor) {
  Tensor gray(1, 1, 4, 4);
  EXPECT_FALSE(write_ppm("/tmp/ada_export_bad.ppm", gray));
}

TEST(Ppm, ClampsOutOfRangeValues) {
  Tensor img(1, 3, 1, 2);
  img.at(0, 0, 0, 0) = -1.0f;
  img.at(0, 0, 0, 1) = 2.0f;
  const std::string path = "/tmp/ada_export_clamp.ppm";
  ASSERT_TRUE(write_ppm(path, img));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  // Skip the 11-byte header "P6\n2 1\n255\n".
  std::fseek(f, 11, SEEK_SET);
  unsigned char px[6];
  ASSERT_EQ(std::fread(px, 1, 6, f), 6u);
  EXPECT_EQ(px[0], 0);    // clamped low
  EXPECT_EQ(px[3], 255);  // clamped high
  std::fclose(f);
  std::filesystem::remove(path);
}


TEST(DrawBox, OutlinesExactRectangle) {
  Tensor img(1, 3, 10, 10);
  img.fill(0.0f);
  draw_box(&img, Box{2, 3, 6, 7}, Rgb{1.0f, 0.5f, 0.25f});
  // Corners and edges are painted...
  EXPECT_FLOAT_EQ(img.at(0, 0, 3, 2), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 1, 7, 6), 0.5f);
  EXPECT_FLOAT_EQ(img.at(0, 2, 3, 4), 0.25f);  // top edge interior column
  // ...the box interior is not.
  EXPECT_FLOAT_EQ(img.at(0, 0, 5, 4), 0.0f);
  // Pixels outside stay untouched.
  EXPECT_FLOAT_EQ(img.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 9, 9), 0.0f);
}

TEST(DrawBox, ClampsOutOfImageBoxes) {
  Tensor img(1, 3, 8, 8);
  img.fill(0.2f);
  draw_box(&img, Box{-5, -5, 20, 20}, Rgb{1.0f, 1.0f, 1.0f});
  EXPECT_FLOAT_EQ(img.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 7, 7), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 4, 4), 0.2f);  // interior untouched
}

}  // namespace
}  // namespace ada
