// Fixture-driven tests for tools/invariant_lint — the linter that enforces
// the project's determinism/layering contracts (R1-R6).
//
// Each rule gets a violating fixture (must fire, with the exact rule id) and
// a passing fixture (must stay quiet); suppression fixtures prove that a
// lint:allow with a reason silences and one without a reason is itself a
// violation.  Because several rules are *path-scoped* (R2 exempts tests/,
// R4 applies only under src/runtime/, R5 only to hot-path dirs), fixtures
// are staged into a temporary tree at the path the scenario needs — which
// also tests the path scoping itself.  Finally, the suite runs the linter
// over the real repository and requires a clean bill: the tree must never
// regress its own invariants.
//
// LINT_BINARY / LINT_FIXTURES / LINT_REPO_ROOT are injected by CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

/// Runs the linter with `args` appended, capturing stdout+stderr.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string("\"") + LINT_BINARY + "\" " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintRun r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Counts diagnostics per rule id ("R1".."R6", "LINT") in linter output.
std::map<std::string, int> rule_counts(const std::string& output) {
  std::map<std::string, int> counts;
  std::size_t pos = 0;
  while ((pos = output.find(": [", pos)) != std::string::npos) {
    const std::size_t open = pos + 2;
    const std::size_t close = output.find(']', open);
    if (close == std::string::npos) break;
    ++counts[output.substr(open + 1, close - open - 1)];
    pos = close;
  }
  return counts;
}

/// Stages one fixture at a chosen relative path inside a fresh temp tree and
/// lints the tree.  The destination path is the point: rule scoping keys on
/// src/runtime/, src/tensor/, tests/, ...
class FixtureTree {
 public:
  FixtureTree() {
    static int counter = 0;
    root_ = fs::temp_directory_path() /
            ("adascale_lint_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void stage(const std::string& fixture, const std::string& dest_rel) {
    const fs::path src = fs::path(LINT_FIXTURES) / fixture;
    const fs::path dst = root_ / dest_rel;
    fs::create_directories(dst.parent_path());
    fs::copy_file(src, dst, fs::copy_options::overwrite_existing);
  }

  LintRun lint() const { return run_lint("--root \"" + root_.string() + "\""); }

 private:
  fs::path root_;
};

/// One staged fixture scenario: expected exit code and exact per-rule
/// diagnostic counts (empty map = must be clean).
void expect_fixture(const std::string& fixture, const std::string& dest_rel,
                    int want_exit, std::map<std::string, int> want_rules) {
  FixtureTree tree;
  tree.stage(fixture, dest_rel);
  const LintRun r = tree.lint();
  EXPECT_EQ(r.exit_code, want_exit)
      << fixture << " @ " << dest_rel << "\n" << r.output;
  EXPECT_EQ(rule_counts(r.output), want_rules)
      << fixture << " @ " << dest_rel << "\n" << r.output;
  if (want_rules.empty())
    EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
  else
    // Diagnostics must carry file:line anchored at the staged path.
    EXPECT_NE(r.output.find(dest_rel), std::string::npos) << r.output;
}

// --------------------------------------------------------------- R1: clocks

TEST(LintR1, FiresOnWallClockReadsAndSleeps) {
  expect_fixture("r1_violate.cpp", "src/video/r1_violate.cpp", 1,
                 {{"R1", 3}});
}

TEST(LintR1, QuietOnInjectedClock) {
  expect_fixture("r1_pass.cpp", "src/video/r1_pass.cpp", 0, {});
}

// -------------------------------------------------------------- R2: backend

TEST(LintR2, FiresOnGlobalBackendTrafficInSrc) {
  expect_fixture("r2_violate.cpp", "src/adascale/r2_violate.cpp", 1,
                 {{"R2", 3}});
}

TEST(LintR2, TestsAreExempt) {
  // The identical file under tests/ is fine: suites save/restore the global.
  expect_fixture("r2_violate.cpp", "tests/r2_violate.cpp", 0, {});
}

TEST(LintR2, QuietOnExecutionPolicy) {
  expect_fixture("r2_pass.cpp", "src/adascale/r2_pass.cpp", 0, {});
}

// ----------------------------------------------------------- R3: randomness

TEST(LintR3, FiresOnUnseededRandomness) {
  expect_fixture("r3_violate.cpp", "src/data/r3_violate.cpp", 1, {{"R3", 4}});
}

TEST(LintR3, QuietOnSeededEngines) {
  expect_fixture("r3_pass.cpp", "src/data/r3_pass.cpp", 0, {});
}

// ------------------------------------------------------- R4: config structs

TEST(LintR4, FiresOnUnvalidatedRuntimeConfigs) {
  expect_fixture("r4_violate.h", "src/runtime/r4_violate.h", 1, {{"R4", 2}});
}

TEST(LintR4, QuietOnValidatedConfig) {
  expect_fixture("r4_pass.h", "src/runtime/r4_pass.h", 0, {});
}

TEST(LintR4, OnlyRuntimeDirIsInScope) {
  // The same unvalidated structs outside src/runtime/ are out of scope.
  expect_fixture("r4_violate.h", "src/detection/r4_violate.h", 0, {});
}

// ------------------------------------------------- R5: unordered iteration

TEST(LintR5, FiresOnUnorderedIterationInHotPath) {
  expect_fixture("r5_violate.cpp", "src/tensor/r5_violate.cpp", 1,
                 {{"R5", 2}});
}

TEST(LintR5, QuietOnLookupsAndOrderedIteration) {
  expect_fixture("r5_pass.cpp", "src/tensor/r5_pass.cpp", 0, {});
}

TEST(LintR5, ColdPathIsOutOfScope) {
  // Iteration order in cold reporting code is a non-issue; the rule guards
  // the tensor/nn/runtime hot path only.
  expect_fixture("r5_violate.cpp", "src/eval/r5_violate.cpp", 0, {});
}

// ------------------------------------------------------ R6: raw allocation

TEST(LintR6, FiresOnRawAllocation) {
  expect_fixture("r6_violate.cpp", "src/nn/r6_violate.cpp", 1, {{"R6", 3}});
}

TEST(LintR6, QuietOnArenaAndContainers) {
  expect_fixture("r6_pass.cpp", "src/nn/r6_pass.cpp", 0, {});
}

// --------------------------------------------------------------- suppression

TEST(LintSuppression, ReasonedAllowSilences) {
  expect_fixture("suppress_ok.cpp", "src/video/suppress_ok.cpp", 0, {});
}

TEST(LintSuppression, MissingReasonIsItselfAViolation) {
  // The bare lint:allow is reported (LINT) and does NOT suppress: the
  // underlying R3 still fires.
  expect_fixture("suppress_missing_reason.cpp",
                 "src/video/suppress_missing_reason.cpp", 1,
                 {{"LINT", 1}, {"R3", 1}});
}

// -------------------------------------------------------------- tree health

TEST(LintTree, RepositoryIsClean) {
  // The real tree must hold its own invariants — this is the same check CI
  // runs via the ADASCALE_LINT target, wired into the default test suite so
  // a violating PR fails even if its author never ran the lint target.
  const LintRun r =
      run_lint(std::string("--root \"") + LINT_REPO_ROOT + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST(LintCli, MissingFileIsAUsageError) {
  const LintRun r = run_lint("/nonexistent/no_such_file.cpp");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
