#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/sgd.h"
#include "tensor/loss.h"

namespace ada {
namespace {

TEST(Layers, Conv2dLayerShapes) {
  Rng rng(1);
  Conv2dLayer conv(3, 8, 3, 1, 1);
  conv.init_he(&rng);
  Tensor x = Tensor::chw(3, 10, 12);
  Tensor y;
  conv.forward(x, &y);
  EXPECT_EQ(y.c(), 8);
  EXPECT_EQ(y.h(), 10);
  EXPECT_EQ(y.w(), 12);
}

TEST(Layers, HeInitHasSensibleScale) {
  Rng rng(2);
  Conv2dLayer conv(16, 16, 3, 1, 1);
  conv.init_he(&rng);
  // Variance should be near 2/fan_in = 2/144.
  double sum2 = 0;
  const Tensor& w = conv.weight().value;
  for (std::size_t i = 0; i < w.size(); ++i) sum2 += static_cast<double>(w[i]) * w[i];
  const double var = sum2 / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 144.0, 0.5 * 2.0 / 144.0);
}

TEST(Layers, SequentialForwardBackwardRuns) {
  Rng rng(3);
  Sequential net;
  auto* c1 = net.emplace<Conv2dLayer>(1, 4, 3, 1, 1);
  net.emplace<ReluLayer>();
  net.emplace<MaxPool2Layer>();
  auto* c2 = net.emplace<Conv2dLayer>(4, 2, 3, 1, 1);
  c1->init_he(&rng);
  c2->init_he(&rng);

  Tensor x = Tensor::chw(1, 8, 8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
  Tensor y;
  net.forward(x, &y);
  EXPECT_EQ(y.c(), 2);
  EXPECT_EQ(y.h(), 4);

  Tensor dy(y.n(), y.c(), y.h(), y.w());
  dy.fill(1.0f);
  Tensor dx;
  net.backward(dy, &dx);
  EXPECT_TRUE(dx.same_shape(x));
  // Some gradient must reach the input.
  EXPECT_GT(dx.abs_max(), 0.0f);
}

TEST(Layers, SequentialGradCheckThroughStack) {
  // Numerical check through conv+relu+gap with a scalar loss.
  Rng rng(5);
  Sequential net;
  auto* c1 = net.emplace<Conv2dLayer>(2, 3, 3, 1, 1);
  net.emplace<ReluLayer>();
  net.emplace<GlobalAvgPoolLayer>();
  c1->init_he(&rng);

  Tensor x = Tensor::chw(2, 5, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.normal() + 0.3f;

  auto loss_of = [&](Sequential& n, const Tensor& xx) {
    Tensor yy;
    n.forward(xx, &yy);
    double s = 0;
    for (std::size_t i = 0; i < yy.size(); ++i) s += yy[i];
    return s;
  };

  Tensor y;
  net.forward(x, &y);
  Tensor dy(y.n(), y.c(), y.h(), y.w());
  dy.fill(1.0f);
  std::vector<Param*> params;
  net.collect_params(&params);
  for (Param* p : params) p->zero_grad();
  Tensor dx;
  net.backward(dy, &dx);

  const float eps = 1e-3f;
  Param* wparam = params[0];
  for (std::size_t i = 0; i < wparam->value.size(); i += 11) {
    const float orig = wparam->value[i];
    wparam->value[i] = orig + eps;
    const double lp = loss_of(net, x);
    wparam->value[i] = orig - eps;
    const double lm = loss_of(net, x);
    wparam->value[i] = orig;
    EXPECT_NEAR(wparam->grad[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(Layers, LinearLayerForwardBackward) {
  Rng rng(7);
  LinearLayer fc(4, 2);
  fc.init_he(&rng);
  Tensor x(1, 4, 1, 1);
  for (int i = 0; i < 4; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Tensor y;
  fc.forward(x, &y);
  EXPECT_EQ(y.c(), 2);

  Tensor dy(1, 2, 1, 1);
  dy.fill(1.0f);
  Tensor dx(1, 4, 1, 1);
  fc.backward(dy, &dx);
  // dx = W^T dy.
  for (int i = 0; i < 4; ++i) {
    const float expect =
        fc.weight().value.at(0, i, 0, 0) + fc.weight().value.at(1, i, 0, 0);
    EXPECT_NEAR(dx.at(0, i, 0, 0), expect, 1e-5f);
  }
}

TEST(Layers, ParamFlattenRoundTrip) {
  Rng rng(9);
  Sequential net;
  auto* c = net.emplace<Conv2dLayer>(1, 2, 3, 1, 1);
  c->init_he(&rng);
  std::vector<Param*> params;
  net.collect_params(&params);
  std::vector<float> flat = flatten_params(params);
  EXPECT_EQ(flat.size(), param_count(params));

  // Perturb then restore.
  for (Param* p : params) p->value.fill(0.0f);
  ASSERT_TRUE(unflatten_params(flat, params));
  std::vector<float> again = flatten_params(params);
  EXPECT_EQ(again, flat);
}

TEST(Layers, UnflattenRejectsWrongSize) {
  Rng rng(10);
  Sequential net;
  net.emplace<Conv2dLayer>(1, 1, 1, 1, 0);
  std::vector<Param*> params;
  net.collect_params(&params);
  EXPECT_FALSE(unflatten_params({1.0f}, params));
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via the Param/Sgd machinery.
  Param p;
  p.value = Tensor::vec(1);
  p.grad = Tensor::vec(1);
  p.value[0] = 0.0f;
  Sgd::Options opt;
  opt.lr = 0.1f;
  opt.momentum = 0.0f;
  opt.weight_decay = 0.0f;
  Sgd sgd({&p}, opt);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    sgd.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Param p;
    p.value = Tensor::vec(1);
    p.grad = Tensor::vec(1);
    p.value[0] = 10.0f;
    Sgd::Options opt;
    opt.lr = 0.01f;
    opt.momentum = momentum;
    opt.weight_decay = 0.0f;
    Sgd sgd({&p}, opt);
    for (int i = 0; i < 50; ++i) {
      sgd.zero_grad();
      p.grad[0] = 2.0f * p.value[0];
      sgd.step();
    }
    return std::abs(p.value[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Sgd, GradClipBoundsUpdate) {
  Param p;
  p.value = Tensor::vec(1);
  p.grad = Tensor::vec(1);
  Sgd::Options opt;
  opt.lr = 1.0f;
  opt.momentum = 0.0f;
  opt.weight_decay = 0.0f;
  opt.grad_clip = 1.0f;
  Sgd sgd({&p}, opt);
  p.grad[0] = 1000.0f;
  sgd.step();
  EXPECT_NEAR(p.value[0], -1.0f, 1e-5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p;
  p.value = Tensor::vec(1);
  p.grad = Tensor::vec(1);
  p.value[0] = 1.0f;
  Sgd::Options opt;
  opt.lr = 0.1f;
  opt.momentum = 0.0f;
  opt.weight_decay = 0.5f;
  Sgd sgd({&p}, opt);
  sgd.zero_grad();
  sgd.step();  // grad 0 but decay pulls toward 0
  EXPECT_LT(p.value[0], 1.0f);
}

}  // namespace
}  // namespace ada
