// Property-style sweeps over detector-facing invariants that must hold for
// ANY input resolution, anchor layout, or random weights — the contracts the
// AdaScale pipeline silently relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "detection/detector.h"

namespace ada {
namespace {

// ---------------------------------------------------------------------------
// Across input scales: detect() must produce boxes inside the image, scores
// in (0,1], sorted output, and at most top_k detections.
class DetectAtScale : public ::testing::TestWithParam<int> {
 protected:
  static Detector* detector() {
    static Detector* det = [] {
      DetectorConfig cfg;
      cfg.num_classes = 30;
      Rng rng(17);
      return new Detector(cfg, &rng);
    }();
    return det;
  }
};

TEST_P(DetectAtScale, OutputsAreWellFormed) {
  const int scale = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 77);
  const Renderer renderer = ds.make_renderer();
  const Tensor image =
      renderer.render_at_scale(*ds.val_frames()[0], scale, ds.scale_policy());
  const DetectionOutput out = detector()->detect(image);

  EXPECT_EQ(out.image_h, image.h());
  EXPECT_EQ(out.image_w, image.w());
  EXPECT_LE(static_cast<int>(out.detections.size()),
            detector()->config().top_k);
  for (std::size_t i = 0; i < out.detections.size(); ++i) {
    const Detection& d = out.detections[i];
    EXPECT_GE(d.box.x1, 0.0f);
    EXPECT_GE(d.box.y1, 0.0f);
    EXPECT_LE(d.box.x2, static_cast<float>(image.w() - 1));
    EXPECT_LE(d.box.y2, static_cast<float>(image.h() - 1));
    EXPECT_LT(d.box.x1, d.box.x2);
    EXPECT_LT(d.box.y1, d.box.y2);
    EXPECT_GT(d.score, 0.0f);
    EXPECT_LE(d.score, 1.0f);
    EXPECT_GE(d.class_id, 0);
    EXPECT_LT(d.class_id, detector()->config().num_classes);
    if (i > 0) {
      EXPECT_GE(out.detections[i - 1].score, d.score);
    }
    // The stored softmax must be a distribution over K+1 classes.
    ASSERT_EQ(static_cast<int>(d.probs.size()),
              detector()->config().num_classes + 1);
    float sum = 0.0f;
    for (float p : d.probs) sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_P(DetectAtScale, FeatureMapTracksInputResolution) {
  const int scale = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 77);
  const Renderer renderer = ds.make_renderer();
  const Tensor image =
      renderer.render_at_scale(*ds.val_frames()[0], scale, ds.scale_policy());
  (void)detector()->detect(image);
  const Tensor& feat = detector()->features();
  const int stride = detector()->config().anchors.stride;
  EXPECT_EQ(feat.h(), image.h() / stride);
  EXPECT_EQ(feat.w(), image.w() / stride);
  EXPECT_EQ(feat.c(), detector()->feature_channels());
}

TEST_P(DetectAtScale, MacsGrowWithArea) {
  const int scale = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 77);
  const ScalePolicy& policy = ds.scale_policy();
  const long long macs = detector()->forward_macs(policy.render_h(scale),
                                                  policy.render_w(scale));
  EXPECT_GT(macs, 0);
  if (scale > 128) {
    const long long macs_smaller = detector()->forward_macs(
        policy.render_h(128), policy.render_w(128));
    EXPECT_GT(macs, macs_smaller);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNominalScales, DetectAtScale,
                         ::testing::Values(600, 480, 360, 240, 128),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "scale" + std::to_string(tpi.param);
                         });

// ---------------------------------------------------------------------------
// Training-loss contract across scales: finite, positive before training,
// and the gradient step reduces the loss on the same image (smoke check of
// the full backward path at every resolution).
class LossAtScale : public ::testing::TestWithParam<int> {};

TEST_P(LossAtScale, LossIsFiniteAndImprovable) {
  const int scale = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 31);
  const Renderer renderer = ds.make_renderer();
  const Scene& scene = *ds.train_frames()[0];
  const Tensor image =
      renderer.render_at_scale(scene, scale, ds.scale_policy());
  const auto gts = scene_ground_truth(scene, image.h(), image.w());

  DetectorConfig cfg;
  cfg.num_classes = ds.catalog().num_classes();
  Rng rng(9);
  Detector det(cfg, &rng);
  Sgd::Options opt_cfg;
  opt_cfg.lr = 0.005f;
  Sgd opt(det.parameters(), opt_cfg);

  Rng sample_rng(3);
  const float before = det.compute_loss(image, gts, &sample_rng);
  EXPECT_TRUE(std::isfinite(before));
  EXPECT_GT(before, 0.0f);
  float after = before;
  Rng step_rng(3);
  for (int i = 0; i < 12; ++i)
    after = det.train_step(image, gts, &opt, &step_rng);
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_LT(after, before);
}

INSTANTIATE_TEST_SUITE_P(AllNominalScales, LossAtScale,
                         ::testing::Values(600, 360, 128),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "scale" + std::to_string(tpi.param);
                         });

// ---------------------------------------------------------------------------
// Determinism: identical seeds must give bit-identical detectors (the model
// cache and every bench depend on this).
TEST(DetectorDeterminism, SameSeedSameWeights) {
  DetectorConfig cfg;
  cfg.num_classes = 7;
  Rng r1(123), r2(123);
  Detector a(cfg, &r1), b(cfg, &r2);
  auto pa = a.parameters(), pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
    for (std::size_t k = 0; k < pa[i]->value.size(); ++k)
      EXPECT_EQ(pa[i]->value[k], pb[i]->value[k]);
  }
}

TEST(DetectorDeterminism, DetectIsPure) {
  Dataset ds = Dataset::synth_vid(1, 1, 5);
  const Renderer renderer = ds.make_renderer();
  const Tensor image =
      renderer.render_at_scale(*ds.val_frames()[0], 360, ds.scale_policy());
  DetectorConfig cfg;
  cfg.num_classes = ds.catalog().num_classes();
  Rng rng(2);
  Detector det(cfg, &rng);
  const DetectionOutput a = det.detect(image);
  const DetectionOutput b = det.detect(image);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].score, b.detections[i].score);
    EXPECT_EQ(a.detections[i].class_id, b.detections[i].class_id);
    EXPECT_EQ(a.detections[i].box.x1, b.detections[i].box.x1);
  }
}

}  // namespace
}  // namespace ada
