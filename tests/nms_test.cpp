#include "detection/nms.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ada {
namespace {

TEST(Nms, EmptyInput) {
  EXPECT_TRUE(nms({}, {}, 0.3f).empty());
}

TEST(Nms, SingleBoxKept) {
  const auto keep = nms({Box{0, 0, 10, 10}}, {0.9f}, 0.3f);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 0);
}

TEST(Nms, SuppressesHighOverlapKeepsHighestScore) {
  std::vector<Box> boxes = {Box{0, 0, 10, 10}, Box{1, 1, 11, 11},
                            Box{50, 50, 60, 60}};
  std::vector<float> scores = {0.8f, 0.9f, 0.5f};
  const auto keep = nms(boxes, scores, 0.3f);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 1);  // highest score first
  EXPECT_EQ(keep[1], 2);
}

TEST(Nms, LowOverlapAllKept) {
  std::vector<Box> boxes = {Box{0, 0, 10, 10}, Box{8, 8, 18, 18}};
  std::vector<float> scores = {0.9f, 0.8f};
  // IoU of these = 4/196 ~ 0.02 < 0.3.
  EXPECT_EQ(nms(boxes, scores, 0.3f).size(), 2u);
}

TEST(Nms, OutputSortedByScore) {
  std::vector<Box> boxes;
  std::vector<float> scores;
  for (int i = 0; i < 5; ++i) {
    boxes.push_back(Box{static_cast<float>(i * 100), 0,
                        static_cast<float>(i * 100 + 10), 10});
    scores.push_back(0.1f * static_cast<float>(i + 1));
  }
  const auto keep = nms(boxes, scores, 0.3f);
  ASSERT_EQ(keep.size(), 5u);
  for (std::size_t k = 1; k < keep.size(); ++k)
    EXPECT_GE(scores[static_cast<std::size_t>(keep[k - 1])],
              scores[static_cast<std::size_t>(keep[k])]);
}

struct NmsProperty : public ::testing::TestWithParam<int> {};

TEST_P(NmsProperty, KeptBoxesMutuallyBelowThreshold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const float thresh = 0.3f;
  std::vector<Box> boxes;
  std::vector<float> scores;
  for (int i = 0; i < 120; ++i) {
    float x = rng.uniform(0.0f, 80.0f), y = rng.uniform(0.0f, 80.0f);
    boxes.push_back(Box{x, y, x + rng.uniform(5.0f, 25.0f),
                        y + rng.uniform(5.0f, 25.0f)});
    scores.push_back(rng.uniform());
  }
  const auto keep = nms(boxes, scores, thresh);
  for (std::size_t a = 0; a < keep.size(); ++a)
    for (std::size_t b = a + 1; b < keep.size(); ++b)
      EXPECT_LE(iou(boxes[static_cast<std::size_t>(keep[a])],
                    boxes[static_cast<std::size_t>(keep[b])]),
                thresh + 1e-6f);
  // Every suppressed box overlaps some kept box above threshold.
  std::vector<char> kept(boxes.size(), 0);
  for (int k : keep) kept[static_cast<std::size_t>(k)] = 1;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (kept[i]) continue;
    bool covered = false;
    for (int k : keep)
      if (iou(boxes[i], boxes[static_cast<std::size_t>(k)]) > thresh) {
        covered = true;
        break;
      }
    EXPECT_TRUE(covered) << "suppressed box " << i << " not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmsProperty, ::testing::Values(1, 2, 3, 4));

TEST(NmsPerClass, EmptyInput) {
  EXPECT_TRUE(nms_per_class({}, {}, {}, 0.3f).empty());
}

TEST(NmsPerClass, DifferentClassesDoNotSuppressEachOther) {
  // Two heavily overlapping boxes of different classes: class-agnostic NMS
  // keeps one, per-class NMS keeps both (the seed bug this API fixed).
  std::vector<Box> boxes = {Box{0, 0, 10, 10}, Box{1, 1, 11, 11}};
  std::vector<float> scores = {0.9f, 0.8f};
  EXPECT_EQ(nms(boxes, scores, 0.3f).size(), 1u);
  const auto keep = nms_per_class(boxes, scores, {3, 7}, 0.3f);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 0);  // score order preserved across classes
  EXPECT_EQ(keep[1], 1);
}

TEST(NmsPerClass, SameClassStillSuppresses) {
  std::vector<Box> boxes = {Box{0, 0, 10, 10}, Box{1, 1, 11, 11},
                            Box{50, 50, 60, 60}};
  std::vector<float> scores = {0.8f, 0.9f, 0.5f};
  const auto keep = nms_per_class(boxes, scores, {4, 4, 4}, 0.3f);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 1);
  EXPECT_EQ(keep[1], 2);
}

TEST(NmsPerClass, SingleClassMatchesPlainNms) {
  Rng rng(11);
  std::vector<Box> boxes;
  std::vector<float> scores;
  std::vector<int> classes;
  for (int i = 0; i < 60; ++i) {
    float x = rng.uniform(0.0f, 80.0f), y = rng.uniform(0.0f, 80.0f);
    boxes.push_back(Box{x, y, x + rng.uniform(5.0f, 25.0f),
                        y + rng.uniform(5.0f, 25.0f)});
    scores.push_back(rng.uniform());
    classes.push_back(9);
  }
  EXPECT_EQ(nms_per_class(boxes, scores, classes, 0.3f),
            nms(boxes, scores, 0.3f));
}

TEST(NmsPerClass, OutputSortedByScoreAcrossClasses) {
  // Disjoint boxes of alternating classes: nothing suppressed, order is by
  // score regardless of class grouping.
  std::vector<Box> boxes;
  std::vector<float> scores = {0.2f, 0.9f, 0.5f, 0.7f, 0.1f};
  std::vector<int> classes = {0, 1, 0, 1, 0};
  for (int i = 0; i < 5; ++i)
    boxes.push_back(Box{static_cast<float>(i * 100), 0,
                        static_cast<float>(i * 100 + 10), 10});
  const auto keep = nms_per_class(boxes, scores, classes, 0.3f);
  ASSERT_EQ(keep.size(), 5u);
  for (std::size_t a = 0; a + 1 < keep.size(); ++a)
    EXPECT_GE(scores[static_cast<std::size_t>(keep[a])],
              scores[static_cast<std::size_t>(keep[a + 1])]);
}

}  // namespace
}  // namespace ada
