// Eq. (3) encode/decode tests, including parameterized round-trip sweeps.
#include "adascale/scale_target.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

TEST(ScaleTarget, RangeIsMinusOneToOne) {
  const ScaleSet s = ScaleSet::reg_default();  // {600,...,128}
  // Extremes of the ratio m_opt/m.
  EXPECT_NEAR(encode_scale_target(600, 128, s), -1.0f, 1e-5f);
  EXPECT_NEAR(encode_scale_target(128, 600, s), 1.0f, 1e-5f);
}

TEST(ScaleTarget, SameScaleIsInteriorValue) {
  const ScaleSet s = ScaleSet::reg_default();
  // m_opt == m => ratio 1; t is in (-1, 1) (not zero: Eq. 3 is not symmetric).
  const float t = encode_scale_target(600, 600, s);
  EXPECT_GT(t, -1.0f);
  EXPECT_LT(t, 1.0f);
}

TEST(ScaleTarget, LargerOptimalGivesLargerT) {
  const ScaleSet s = ScaleSet::reg_default();
  EXPECT_LT(encode_scale_target(480, 240, s), encode_scale_target(480, 480, s));
  EXPECT_LT(encode_scale_target(480, 480, s), encode_scale_target(480, 600, s));
}

TEST(ScaleTarget, DecodeClipsToRange) {
  const ScaleSet s = ScaleSet::reg_default();
  EXPECT_EQ(decode_scale_target(1.0f, 600, s), 600);
  EXPECT_EQ(decode_scale_target(-1.0f, 600, s), 128);
  EXPECT_EQ(decode_scale_target(5.0f, 600, s), 600);   // overflow clipped
  EXPECT_EQ(decode_scale_target(-5.0f, 128, s), 128);  // underflow clipped
}

// Round trip: encode(m, m_opt) then decode at scale m recovers m_opt for all
// pairs in S_reg (the property Algorithm 1 relies on).
struct RoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoundTrip, DecodeInvertsEncode) {
  const ScaleSet s = ScaleSet::reg_default();
  const int m = std::get<0>(GetParam());
  const int m_opt = std::get<1>(GetParam());
  const float t = encode_scale_target(m, m_opt, s);
  EXPECT_EQ(decode_scale_target(t, m, s), m_opt)
      << "m=" << m << " m_opt=" << m_opt << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, RoundTrip,
    ::testing::Combine(::testing::Values(600, 480, 360, 240, 128),
                       ::testing::Values(600, 480, 360, 240, 128)));

TEST(ScaleTarget, DecodeRoundsToNearestInteger) {
  const ScaleSet s = ScaleSet::reg_default();
  // Mid-way t values produce integer scales in range.
  for (float t = -1.0f; t <= 1.0f; t += 0.05f) {
    const int m = decode_scale_target(t, 480, s);
    EXPECT_GE(m, 128);
    EXPECT_LE(m, 600);
  }
}

TEST(ScaleTarget, MonotoneDecode) {
  const ScaleSet s = ScaleSet::reg_default();
  int prev = 0;
  for (float t = -1.0f; t <= 1.0f; t += 0.01f) {
    const int m = decode_scale_target(t, 360, s);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(ScaleSet, MinMaxAndContains) {
  const ScaleSet s = ScaleSet::train_default();
  EXPECT_EQ(s.min(), 240);
  EXPECT_EQ(s.max(), 600);
  EXPECT_TRUE(s.contains(360));
  EXPECT_FALSE(s.contains(128));
  EXPECT_EQ(s.count(), 4);
}

TEST(ScaleSet, ToStringFormat) {
  const ScaleSet s{{600, 360}};
  EXPECT_EQ(s.to_string(), "{600,360}");
}

}  // namespace
}  // namespace ada
