#include "tensor/ops.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ada {
namespace {

TEST(Ops, AxpyAccumulates) {
  Tensor x = Tensor::vec(3), y = Tensor::vec(3);
  x[0] = 1; x[1] = 2; x[2] = 3;
  y.fill(1.0f);
  axpy(2.0f, x, &y);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
}

TEST(Ops, ReluForwardClampsNegatives) {
  Tensor x = Tensor::vec(4);
  x[0] = -1; x[1] = 0; x[2] = 2; x[3] = -0.5f;
  Tensor y;
  relu_forward(x, &y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Ops, ReluBackwardGatesGradient) {
  Tensor x = Tensor::vec(3);
  x[0] = -1; x[1] = 1; x[2] = 3;
  Tensor dy = Tensor::vec(3);
  dy.fill(5.0f);
  Tensor dx = Tensor::vec(3);
  relu_backward(x, dy, &dx);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);
  EXPECT_FLOAT_EQ(dx[2], 5.0f);
}

TEST(Ops, ScaleMultiplies) {
  Tensor x = Tensor::vec(2);
  x[0] = 2; x[1] = -4;
  scale(&x, 0.5f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(Ops, GlobalAvgPoolAverages) {
  Tensor x = Tensor::chw(2, 2, 2);
  // channel 0: 1,2,3,4 -> 2.5 ; channel 1: all 8 -> 8
  x.at(0, 0, 0, 0) = 1; x.at(0, 0, 0, 1) = 2;
  x.at(0, 0, 1, 0) = 3; x.at(0, 0, 1, 1) = 4;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) x.at(0, 1, i, j) = 8;
  Tensor y;
  global_avg_pool_forward(x, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 8.0f);
}

TEST(Ops, GlobalAvgPoolBackwardSpreadsEvenly) {
  Tensor x = Tensor::chw(1, 2, 2);
  Tensor dy(1, 1, 1, 1);
  dy[0] = 4.0f;
  Tensor dx = Tensor::chw(1, 2, 2);
  global_avg_pool_backward(x, dy, &dx);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

TEST(Ops, MaxPoolPicksMaxAndArgmax) {
  Tensor x = Tensor::chw(1, 4, 4);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y;
  std::vector<int> argmax;
  maxpool2_forward(x, &y, &argmax);
  ASSERT_EQ(y.h(), 2);
  ASSERT_EQ(y.w(), 2);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
  EXPECT_EQ(argmax[0], 5);
  EXPECT_EQ(argmax[3], 15);
}

TEST(Ops, MaxPoolBackwardRoutesToArgmax) {
  Tensor x = Tensor::chw(1, 2, 2);
  x.at(0, 0, 0, 0) = 1; x.at(0, 0, 0, 1) = 9;
  x.at(0, 0, 1, 0) = 3; x.at(0, 0, 1, 1) = 2;
  Tensor y;
  std::vector<int> argmax;
  maxpool2_forward(x, &y, &argmax);
  Tensor dy(1, 1, 1, 1);
  dy[0] = 7.0f;
  Tensor dx = Tensor::chw(1, 2, 2);
  maxpool2_backward(dy, argmax, &dx);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
}

TEST(Ops, MaxPoolOddSizeFloors) {
  Tensor x = Tensor::chw(1, 5, 7);
  Tensor y;
  std::vector<int> argmax;
  maxpool2_forward(x, &y, &argmax);
  EXPECT_EQ(y.h(), 2);
  EXPECT_EQ(y.w(), 3);
}

TEST(Ops, SoftmaxRowsNormalizes) {
  Tensor x(2, 3, 1, 1);
  x.at(0, 0, 0, 0) = 1; x.at(0, 1, 0, 0) = 2; x.at(0, 2, 0, 0) = 3;
  x.at(1, 0, 0, 0) = 100; x.at(1, 1, 0, 0) = 100; x.at(1, 2, 0, 0) = 100;
  Tensor y;
  softmax_rows(x, &y);
  float s0 = y.at(0, 0, 0, 0) + y.at(0, 1, 0, 0) + y.at(0, 2, 0, 0);
  EXPECT_NEAR(s0, 1.0f, 1e-5f);
  EXPECT_GT(y.at(0, 2, 0, 0), y.at(0, 0, 0, 0));
  EXPECT_NEAR(y.at(1, 0, 0, 0), 1.0f / 3.0f, 1e-5f);
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  Tensor x(1, 2, 1, 1);
  x.at(0, 0, 0, 0) = 1000.0f;
  x.at(0, 1, 0, 0) = 999.0f;
  Tensor y;
  softmax_rows(x, &y);
  EXPECT_NEAR(y.at(0, 0, 0, 0) + y.at(0, 1, 0, 0), 1.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(y.at(0, 0, 0, 0)));
}

}  // namespace
}  // namespace ada
