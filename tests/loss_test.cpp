#include "tensor/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ada {
namespace {

TEST(Loss, SoftmaxSpanNormalizes) {
  float logits[3] = {0.0f, 1.0f, 2.0f};
  float probs[3];
  softmax_span(logits, 3, probs);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-5f);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(Loss, CrossEntropyOfUniformIsLogK) {
  float logits[4] = {0, 0, 0, 0};
  const float l = softmax_cross_entropy_span(logits, 4, 2, nullptr);
  EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
}

TEST(Loss, CrossEntropyConfidentCorrectIsSmall) {
  float logits[3] = {10.0f, 0.0f, 0.0f};
  EXPECT_LT(softmax_cross_entropy_span(logits, 3, 0, nullptr), 1e-3f);
  EXPECT_GT(softmax_cross_entropy_span(logits, 3, 1, nullptr), 5.0f);
}

TEST(Loss, CrossEntropyGradientIsProbMinusOneHot) {
  float logits[3] = {1.0f, 2.0f, 0.5f};
  float probs[3];
  softmax_span(logits, 3, probs);
  float grad[3] = {0, 0, 0};
  softmax_cross_entropy_span(logits, 3, 1, grad);
  EXPECT_NEAR(grad[0], probs[0], 1e-5f);
  EXPECT_NEAR(grad[1], probs[1] - 1.0f, 1e-5f);
  EXPECT_NEAR(grad[2], probs[2], 1e-5f);
}

TEST(Loss, CrossEntropyGradientMatchesNumerical) {
  float base[3] = {0.3f, -0.7f, 1.2f};
  float grad[3] = {0, 0, 0};
  softmax_cross_entropy_span(base, 3, 0, grad);
  const float eps = 1e-3f;
  for (int i = 0; i < 3; ++i) {
    float p[3] = {base[0], base[1], base[2]};
    float m[3] = {base[0], base[1], base[2]};
    p[i] += eps;
    m[i] -= eps;
    const float num = (softmax_cross_entropy_span(p, 3, 0, nullptr) -
                       softmax_cross_entropy_span(m, 3, 0, nullptr)) /
                      (2 * eps);
    EXPECT_NEAR(grad[i], num, 1e-3f);
  }
}

TEST(Loss, TensorWrapperMatchesSpan) {
  Tensor logits = Tensor::vec(3);
  logits[0] = 1.0f; logits[1] = 0.0f; logits[2] = -1.0f;
  const float a = softmax_cross_entropy(logits, 0, nullptr);
  const float b = softmax_cross_entropy_span(logits.data(), 3, 0, nullptr);
  EXPECT_FLOAT_EQ(a, b);
}

TEST(Loss, SmoothL1QuadraticInside) {
  float pred[1] = {0.5f}, target[1] = {0.0f};
  EXPECT_NEAR(smooth_l1(pred, target, 1, nullptr), 0.125f, 1e-6f);
}

TEST(Loss, SmoothL1LinearOutside) {
  float pred[1] = {3.0f}, target[1] = {0.0f};
  EXPECT_NEAR(smooth_l1(pred, target, 1, nullptr), 2.5f, 1e-6f);
}

TEST(Loss, SmoothL1GradientContinuousAtOne) {
  float target[1] = {0.0f};
  float g_in[1] = {0}, g_out[1] = {0};
  float just_in[1] = {0.999f}, just_out[1] = {1.001f};
  smooth_l1(just_in, target, 1, g_in);
  smooth_l1(just_out, target, 1, g_out);
  EXPECT_NEAR(g_in[0], g_out[0], 0.01f);
}

TEST(Loss, SmoothL1SumsOverElements) {
  float pred[3] = {0.5f, -0.5f, 2.0f};
  float target[3] = {0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(smooth_l1(pred, target, 3, nullptr), 0.125f + 0.125f + 1.5f,
              1e-6f);
}

TEST(Loss, SmoothL1SymmetricGradient) {
  float target[1] = {0.0f};
  float gp[1] = {0}, gm[1] = {0};
  float pp[1] = {0.3f}, pm[1] = {-0.3f};
  smooth_l1(pp, target, 1, gp);
  smooth_l1(pm, target, 1, gm);
  EXPECT_NEAR(gp[0], -gm[0], 1e-6f);
}

TEST(Loss, MseScalarValueAndGrad) {
  float d = 0.0f;
  const float l = mse_scalar(2.0f, 0.5f, &d);
  EXPECT_NEAR(l, 2.25f, 1e-6f);
  EXPECT_NEAR(d, 3.0f, 1e-6f);
}

TEST(Loss, MseZeroAtTarget) {
  float d = 0.0f;
  EXPECT_EQ(mse_scalar(1.5f, 1.5f, &d), 0.0f);
  EXPECT_EQ(d, 0.0f);
}

}  // namespace
}  // namespace ada
