#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/file_io.h"
#include "util/table.h"
#include "util/timer.h"

namespace ada {
namespace {

TEST(TextTable, AlignsColumnsAndCountsRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
  EXPECT_NO_THROW(t.to_csv());
}

TEST(TextTable, CsvHasCommas) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Fmt, FormatsPrecision) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt(1.2345, 0), "1");
  EXPECT_EQ(fmt_int(42), "42");
}

TEST(FileIo, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ada_io_test.bin").string();
  std::vector<float> data = {1.0f, -2.5f, 3.25f, 0.0f};
  ASSERT_TRUE(save_floats(path, data));
  std::vector<float> back;
  ASSERT_TRUE(load_floats(path, &back));
  EXPECT_EQ(back, data);
  std::remove(path.c_str());
}

TEST(FileIo, LoadMissingFileFails) {
  std::vector<float> back;
  EXPECT_FALSE(load_floats("/nonexistent/definitely/missing.bin", &back));
}

TEST(FileIo, EmptyVectorRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ada_io_empty.bin").string();
  ASSERT_TRUE(save_floats(path, {}));
  std::vector<float> back = {9.0f};
  ASSERT_TRUE(load_floats(path, &back));
  EXPECT_TRUE(back.empty());
  std::remove(path.c_str());
}

TEST(FileIo, Fnv1aIsStableAndDiscriminates) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(FileIo, MakeDirsCreatesNested) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ada_mk" / "nested").string();
  EXPECT_TRUE(make_dirs(dir));
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "ada_mk");
}

TEST(Timer, MeasuresNonNegativeAndResets) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1;
  EXPECT_GE(t.elapsed_ms(), 0.0);
  t.reset();
  EXPECT_LT(t.elapsed_ms(), 100.0);
}

TEST(RunningStat, ComputesMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, LargeOffsetSamplesKeepNonNegativeVariance) {
  // Regression: the old sum2/n − mean² form cancels catastrophically when
  // samples share a huge offset (e.g. epoch-milliseconds timestamps) and
  // returned slightly *negative* variance → NaN stddev in bench reports.
  // Welford accumulates centered residuals, so the tiny spread survives.
  RunningStat s;
  const double offset = 1e9;
  for (double jitter : {0.0, 1.0, 2.0, 3.0}) s.add(offset + jitter);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-6);  // same spread as the small case
  EXPECT_DOUBLE_EQ(s.mean(), offset + 1.5);

  // Identical huge samples: variance must be exactly 0, never negative.
  RunningStat flat;
  for (int i = 0; i < 1000; ++i) flat.add(4.503599627e15);  // 2^52-scale
  EXPECT_GE(flat.variance(), 0.0);
  EXPECT_EQ(flat.variance(), 0.0);
  EXPECT_FALSE(std::isnan(std::sqrt(flat.variance())));
}

}  // namespace
}  // namespace ada
