// Adaptive key-frame DFF: flow-quality-triggered refresh (extension beyond
// the paper; see video/adaptive_dff.h).
#include "video/adaptive_dff.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace ada {
namespace {

class AdaptiveDffFixture : public ::testing::Test {
 protected:
  AdaptiveDffFixture()
      : dataset_(Dataset::synth_vid(1, 2, 2024)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(3);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(4);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  AdaptiveDffPipeline make(const AdaptiveDffConfig& cfg,
                           bool with_regressor = false) {
    return AdaptiveDffPipeline(detector_.get(),
                               with_regressor ? regressor_.get() : nullptr,
                               &renderer_, dataset_.scale_policy(), cfg,
                               ScaleSet::reg_default());
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(AdaptiveDffFixture, FirstFrameIsAlwaysKey) {
  AdaptiveDffPipeline p = make(AdaptiveDffConfig{});
  const auto out = p.process(dataset_.val_snippets()[0].frames[0]);
  EXPECT_TRUE(out.is_key);
  EXPECT_GT(out.backbone_ms, 0.0);
  EXPECT_EQ(out.warp_residual, 0.0f);
}

TEST_F(AdaptiveDffFixture, HugeThresholdPropagatesUntilMaxInterval) {
  AdaptiveDffConfig cfg;
  cfg.residual_threshold = 1e9f;  // never triggers
  cfg.max_interval = 4;
  AdaptiveDffPipeline p = make(cfg);
  const Snippet& snip = dataset_.val_snippets()[0];
  int keys = 0;
  for (int rep = 0; rep < 2; ++rep)
    for (const Scene& f : snip.frames) {
      const auto out = p.process(f);
      if (out.is_key) ++keys;
    }
  const int frames = 2 * snip.num_frames();
  // Keys only from the interval guard: 1 + floor((frames-1)/(max_interval+1))
  // at most; certainly far fewer than the frame count.
  EXPECT_GE(keys, 1);
  EXPECT_LE(keys, frames / cfg.max_interval + 1);
  EXPECT_NEAR(p.key_frame_share(), static_cast<double>(keys) / frames, 1e-9);
}

TEST_F(AdaptiveDffFixture, ZeroThresholdMakesEveryFrameKey) {
  AdaptiveDffConfig cfg;
  cfg.residual_threshold = -1.0f;  // every residual exceeds it
  AdaptiveDffPipeline p = make(cfg);
  const Snippet& snip = dataset_.val_snippets()[0];
  for (const Scene& f : snip.frames) EXPECT_TRUE(p.process(f).is_key);
  EXPECT_NEAR(p.key_frame_share(), 1.0, 1e-9);
}

TEST_F(AdaptiveDffFixture, NonKeyFramesAreCheaperThanKeys) {
  AdaptiveDffConfig cfg;
  cfg.residual_threshold = 1e9f;
  AdaptiveDffPipeline p = make(cfg);
  const Snippet& snip = dataset_.val_snippets()[0];
  double key_ms = 0.0, warp_ms = 0.0;
  int keys = 0, warps = 0;
  for (const Scene& f : snip.frames) {
    const auto out = p.process(f);
    if (out.is_key) {
      key_ms += out.total_ms();
      ++keys;
    } else {
      warp_ms += out.total_ms();
      ++warps;
      EXPECT_EQ(out.backbone_ms, 0.0);
      EXPECT_GT(out.flow_ms, 0.0);
    }
  }
  ASSERT_GT(keys, 0);
  ASSERT_GT(warps, 0);
  EXPECT_LT(warp_ms / warps, key_ms / keys);
}

TEST_F(AdaptiveDffFixture, ScaleChangesOnlyAtKeyFrames) {
  AdaptiveDffConfig cfg;
  cfg.residual_threshold = 0.02f;
  AdaptiveDffPipeline p = make(cfg, /*with_regressor=*/true);
  int last_scale = -1;
  bool last_was_key = true;
  for (const Snippet& snip : dataset_.val_snippets())
    for (const Scene& f : snip.frames) {
      const auto out = p.process(f);
      if (last_scale >= 0 && out.scale_used != last_scale) {
        EXPECT_TRUE(out.is_key) << "scale changed on a propagated frame";
      }
      last_scale = out.scale_used;
      last_was_key = out.is_key;
      EXPECT_GE(out.scale_used, 128);
      EXPECT_LE(out.scale_used, 600);
    }
  (void)last_was_key;
}

TEST_F(AdaptiveDffFixture, ResetRestartsKeySchedule) {
  AdaptiveDffConfig cfg;
  cfg.residual_threshold = 1e9f;
  AdaptiveDffPipeline p = make(cfg);
  const Snippet& snip = dataset_.val_snippets()[0];
  (void)p.process(snip.frames[0]);
  (void)p.process(snip.frames[1]);
  p.reset();
  const auto out = p.process(snip.frames[2]);
  EXPECT_TRUE(out.is_key);
}

}  // namespace
}  // namespace ada
