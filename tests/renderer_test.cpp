#include "data/renderer.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace ada {
namespace {

Scene one_object_scene(int class_id, float cx, float cy, float size) {
  Scene scene;
  ObjectInstance o;
  o.class_id = class_id;
  o.cx = cx;
  o.cy = cy;
  o.size = size;
  scene.objects.push_back(o);
  return scene;
}

TEST(Renderer, OutputShapeAndRange) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  const Tensor img = r.render(one_object_scene(0, 0.6f, 0.5f, 0.2f), 60, 80);
  EXPECT_EQ(img.n(), 1);
  EXPECT_EQ(img.c(), 3);
  EXPECT_EQ(img.h(), 60);
  EXPECT_EQ(img.w(), 80);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_GE(img[i], 0.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(Renderer, Deterministic) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  const Scene s = one_object_scene(3, 0.5f, 0.5f, 0.25f);
  const Tensor a = r.render(s, 48, 64);
  const Tensor b = r.render(s, 48, 64);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Renderer, ObjectChangesPixels) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  Scene empty;
  Scene with = one_object_scene(0, 0.6f, 0.5f, 0.3f);
  with.background = empty.background;
  const Tensor a = r.render(empty, 48, 64);
  const Tensor b = r.render(with, 48, 64);
  double diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 10.0);
}

TEST(Renderer, ObjectCenterPixelHasObjectColor) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  // Class 0 is an ellipse with solid-ish texture near center.
  const Scene s = one_object_scene(0, 0.667f, 0.5f, 0.3f);
  const Tensor img = r.render(s, 96, 128);
  const ClassSignature& sig = cat.at(0);
  // Sample the exact object center.
  const int ci = 48, cj = 85;  // cy*96=48, cx*96=64... (cx in world*h units)
  (void)cj;
  const float px = img.at(0, 0, ci, static_cast<int>(0.667f * 96));
  // Either base or accent color channel r.
  const bool matches = std::abs(px - sig.color.r) < 0.25f ||
                       std::abs(px - sig.accent.r) < 0.25f;
  EXPECT_TRUE(matches) << "center pixel " << px << " vs color " << sig.color.r;
}

TEST(Renderer, GroundTruthBoxCoversObject) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  const Scene s = one_object_scene(1, 0.6f, 0.5f, 0.2f);
  const auto gts = scene_ground_truth(s, 90, 120);
  ASSERT_EQ(gts.size(), 1u);
  const GtBox& g = gts[0];
  EXPECT_EQ(g.class_id, 1);
  // Center in pixels: (0.6*90, 0.5*90) = (54, 45).
  EXPECT_LT(g.x1, 54.0f);
  EXPECT_GT(g.x2, 54.0f);
  EXPECT_LT(g.y1, 45.0f);
  EXPECT_GT(g.y2, 45.0f);
  // Size ~ 2*0.2*90 = 36 px per side (modulo aspect/rotation).
  EXPECT_NEAR(g.width(), 36.0f, 12.0f);
}

TEST(Renderer, GroundTruthScalesLinearly) {
  const Scene s = one_object_scene(2, 0.5f, 0.5f, 0.15f);
  const auto g1 = scene_ground_truth(s, 60, 80);
  const auto g2 = scene_ground_truth(s, 120, 160);
  ASSERT_EQ(g1.size(), 1u);
  ASSERT_EQ(g2.size(), 1u);
  EXPECT_NEAR(g2[0].x1, 2.0f * g1[0].x1, 1.5f);
  EXPECT_NEAR(g2[0].width(), 2.0f * g1[0].width(), 2.0f);
}

TEST(Renderer, TinyObjectDroppedFromGt) {
  const Scene s = one_object_scene(0, 0.5f, 0.5f, 0.001f);
  EXPECT_TRUE(scene_ground_truth(s, 60, 80).empty());
}

TEST(Renderer, OffscreenObjectDropped) {
  Scene s = one_object_scene(0, 5.0f, 5.0f, 0.1f);  // far outside
  const auto gts = scene_ground_truth(s, 60, 80);
  EXPECT_TRUE(gts.empty());
}

TEST(Renderer, ClutterIsNotInGroundTruth) {
  Scene s = one_object_scene(0, 0.5f, 0.5f, 0.2f);
  ObjectInstance c;
  c.class_id = 1;
  c.cx = 0.3f;
  c.cy = 0.3f;
  c.size = 0.02f;
  s.clutter.push_back(c);
  const auto gts = scene_ground_truth(s, 90, 120);
  EXPECT_EQ(gts.size(), 1u);
}

TEST(Renderer, ScalePolicyMapsNominalScales) {
  ScalePolicy p;
  EXPECT_EQ(p.render_h(600), 150);
  EXPECT_EQ(p.render_h(480), 120);
  EXPECT_EQ(p.render_h(360), 90);
  EXPECT_EQ(p.render_h(240), 60);
  EXPECT_EQ(p.render_h(128), 32);
  EXPECT_EQ(p.render_w(600), 200);
}

TEST(Renderer, RenderAtScaleUsesPolicy) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  ScalePolicy p;
  const Tensor img =
      r.render_at_scale(one_object_scene(0, 0.5f, 0.5f, 0.2f), 240, p);
  EXPECT_EQ(img.h(), 60);
  EXPECT_EQ(img.w(), 80);
}

TEST(Renderer, FineDetailFadesAtLowResolution) {
  // High-frequency background waves must have lower contrast when rendered
  // small relative to the wave period — the effect driving FP reduction.
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer r(&cat);
  Scene s;
  Background::Wave w;
  w.freq = 30.0f;  // 30 cycles per world unit
  w.amplitude = 0.2f;
  s.background.waves.push_back(w);

  auto contrast = [&](int h, int wpx) {
    const Tensor img = r.render(s, h, wpx);
    float mn = 1e9f, mx = -1e9f;
    for (int i = 0; i < img.h(); ++i)
      for (int j = 0; j < img.w(); ++j) {
        mn = std::min(mn, img.at(0, 0, i, j));
        mx = std::max(mx, img.at(0, 0, i, j));
      }
    return mx - mn;
  };
  // At 150px the 30-cycle wave is resolvable (5 px/cycle); at 32px it
  // aliases/averages out (about 1 px/cycle).  Sampling the analytic field
  // keeps some contrast, so require a clear reduction rather than zero.
  EXPECT_GT(contrast(150, 200), 0.25f);
  // No hard bound for the small render, but it must not *increase*.
  EXPECT_LE(contrast(32, 43), contrast(150, 200) + 1e-3f);
}

}  // namespace
}  // namespace ada
