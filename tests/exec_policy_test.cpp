// Per-model execution policies: resolution order (explicit policy > env
// default), per-layer kernel selection that ignores the process global when
// pinned, clone inheritance, the mixed-precision serving config (int8
// detector + fp32 regressor), and — the race the refactor kills —
// concurrent MultiStreamRunner streams serving *different* policies with
// outputs bit-identical to their serial single-policy runs.
#include "runtime/exec_policy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "runtime/multi_stream.h"

namespace ada {
namespace {

/// Restores the process-wide default backend on scope exit.
struct BackendGuard {
  GemmBackend saved = gemm_backend();
  ~BackendGuard() { set_gemm_backend(saved); }
};

TEST(ExecPolicy, UnpinnedFollowsEnvDefaultPinnedIgnoresIt) {
  BackendGuard guard;
  const ExecutionPolicy unpinned;
  EXPECT_FALSE(unpinned.pinned());
  set_gemm_backend(GemmBackend::kReference);
  EXPECT_EQ(unpinned.resolve(), GemmBackend::kReference);
  set_gemm_backend(GemmBackend::kPacked);
  EXPECT_EQ(unpinned.resolve(), GemmBackend::kPacked);

  const ExecutionPolicy pinned = ExecutionPolicy::int8();
  EXPECT_TRUE(pinned.pinned());
  set_gemm_backend(GemmBackend::kReference);
  EXPECT_EQ(pinned.resolve(), GemmBackend::kInt8);
  EXPECT_STREQ(pinned.name(), "int8");
  EXPECT_STREQ(ExecutionPolicy::fp32().name(), "packed");
  EXPECT_STREQ(ExecutionPolicy::reference().name(), "reference");
}

TEST(ExecPolicy, SetGemmBackendRejectsDefaultMarker) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kReference);
  set_gemm_backend(GemmBackend::kDefault);  // must be a no-op
  EXPECT_EQ(gemm_backend(), GemmBackend::kReference);
}

class ExecPolicyModelTest : public ::testing::Test {
 protected:
  ExecPolicyModelTest()
      : dataset_(Dataset::synth_vid(1, 2, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  Tensor render(int scale) const {
    return renderer_.render_at_scale(dataset_.val_snippets()[0].frames[0],
                                     scale, dataset_.scale_policy());
  }

  void quantize_models(const Tensor& img) {
    detector_->quantize({img});
    std::vector<Tensor> feats;
    feats.push_back(detector_->forward(img));
    regressor_->quantize(feats);
    ASSERT_TRUE(detector_->quantized());
    ASSERT_TRUE(regressor_->quantized());
  }

  static void expect_same_bits(const Tensor& a, const Tensor& b) {
    ASSERT_TRUE(a.same_shape(b));
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(ExecPolicyModelTest, PinnedDetectorPolicyIgnoresGlobalFlips) {
  BackendGuard guard;
  const Tensor img = render(240);

  set_gemm_backend(GemmBackend::kReference);
  Tensor ref_feats = detector_->forward(img);  // unpinned → reference
  set_gemm_backend(GemmBackend::kPacked);
  Tensor packed_feats = detector_->forward(img);  // unpinned → packed

  // Pinned reference under a packed global must reproduce the reference
  // bits; pinned fp32 under a reference global must reproduce packed.
  detector_->set_execution_policy(ExecutionPolicy::reference());
  set_gemm_backend(GemmBackend::kPacked);
  expect_same_bits(detector_->forward(img), ref_feats);

  detector_->set_execution_policy(ExecutionPolicy::fp32());
  set_gemm_backend(GemmBackend::kReference);
  expect_same_bits(detector_->forward(img), packed_feats);
}

TEST_F(ExecPolicyModelTest, MixedPrecisionIsPerModelState) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  quantize_models(img);

  // Reference outputs: all-fp32 and all-int8 (via pinned policies, global
  // untouched below).
  detector_->set_execution_policy(ExecutionPolicy::fp32());
  regressor_->set_execution_policy(ExecutionPolicy::fp32());
  const Tensor fp32_feats = detector_->forward(img);
  const float fp32_t = regressor_->predict(fp32_feats);

  detector_->set_execution_policy(ExecutionPolicy::int8());
  regressor_->set_execution_policy(ExecutionPolicy::int8());
  const Tensor int8_feats = detector_->forward(img);
  const float int8_t_ = regressor_->predict(int8_feats);

  // The quantized backbone must actually change bits, or this test is
  // vacuous.
  ASSERT_TRUE(fp32_feats.same_shape(int8_feats));
  EXPECT_NE(0, std::memcmp(fp32_feats.data(), int8_feats.data(),
                           fp32_feats.size() * sizeof(float)));

  // Mixed precision: int8 detector + fp32 regressor.  The detector serves
  // the int8 bits while the *quantized* regressor still runs fp32 on the
  // same features — policy gates the kernel, not quantization state.
  detector_->set_execution_policy(ExecutionPolicy::int8());
  regressor_->set_execution_policy(ExecutionPolicy::fp32());
  expect_same_bits(detector_->forward(img), int8_feats);
  const float mixed_t = regressor_->predict(int8_feats);
  EXPECT_NE(mixed_t, int8_t_);  // fp32 head on int8 features
  (void)fp32_t;

  // And a global flip cannot perturb any of it: both models are pinned.
  set_gemm_backend(GemmBackend::kReference);
  expect_same_bits(detector_->forward(img), int8_feats);
  EXPECT_EQ(regressor_->predict(int8_feats), mixed_t);
}

TEST_F(ExecPolicyModelTest, ClonesInheritPolicyAndBits) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  quantize_models(img);
  detector_->set_execution_policy(ExecutionPolicy::int8());
  regressor_->set_execution_policy(ExecutionPolicy::fp32());

  auto det_clone = clone_detector(detector_.get());
  auto reg_clone = clone_regressor(regressor_.get());
  EXPECT_EQ(det_clone->execution_policy().backend, GemmBackend::kInt8);
  EXPECT_EQ(reg_clone->execution_policy().backend, GemmBackend::kPacked);

  const Tensor feats = detector_->forward(img);
  expect_same_bits(det_clone->forward(img), feats);
  EXPECT_EQ(reg_clone->predict(feats), regressor_->predict(feats));
}

TEST_F(ExecPolicyModelTest, ConcurrentStreamsWithDifferentPoliciesMatchSerial) {
  // The latent race this refactor fixes: precision selection used to be a
  // process-global mutated by set_gemm_backend, so one stream flipping
  // backends corrupted its neighbors.  Policies are per-model: an int8
  // stream and an fp32 stream running concurrently must each produce
  // exactly the bits of their own serial single-policy run.
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  quantize_models(render(600));

  std::vector<const Snippet*> jobs;
  for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);
  ASSERT_GE(jobs.size(), 2u);

  MultiStreamRunner mixed(detector_.get(), regressor_.get(), &renderer_,
                          dataset_.scale_policy(), ScaleSet::reg_default(), 2);
  mixed.set_stream_policy(0, ExecutionPolicy::int8(),
                          ExecutionPolicy::int8());
  mixed.set_stream_policy(1, ExecutionPolicy::fp32(),
                          ExecutionPolicy::fp32());
  const MultiStreamResult par = mixed.run(jobs);

  // Serial single-policy baselines: a 1-stream runner per policy over that
  // stream's round-robin job share (stream s takes jobs s, s+2, ...).
  const ExecutionPolicy policies[2] = {ExecutionPolicy::int8(),
                                       ExecutionPolicy::fp32()};
  for (int s = 0; s < 2; ++s) {
    std::vector<const Snippet*> share;
    for (std::size_t j = static_cast<std::size_t>(s); j < jobs.size(); j += 2)
      share.push_back(jobs[j]);
    MultiStreamRunner single(detector_.get(), regressor_.get(), &renderer_,
                             dataset_.scale_policy(), ScaleSet::reg_default(),
                             1);
    single.set_stream_policy(0, policies[s], policies[s]);
    const MultiStreamResult ref = single.run_serial(share);

    const StreamOutput& a = par.streams[static_cast<std::size_t>(s)];
    const StreamOutput& b = ref.streams[0];
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].scale_used, b.frames[f].scale_used);
      EXPECT_EQ(a.frames[f].next_scale, b.frames[f].next_scale);
      EXPECT_EQ(a.frames[f].regressed_t, b.frames[f].regressed_t);
      const auto& da = a.frames[f].detections.detections;
      const auto& db = b.frames[f].detections.detections;
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t d = 0; d < da.size(); ++d) {
        EXPECT_EQ(da[d].class_id, db[d].class_id);
        EXPECT_EQ(da[d].score, db[d].score);
        EXPECT_EQ(da[d].box.x1, db[d].box.x1);
        EXPECT_EQ(da[d].box.y2, db[d].box.y2);
      }
    }
  }

  // The two policies must actually have served different bits somewhere —
  // otherwise the "different policies" premise was vacuous.
  ASSERT_FALSE(par.streams[0].frames.empty());
  ASSERT_FALSE(par.streams[1].frames.empty());
}

TEST_F(ExecPolicyModelTest, MixedPrecisionBatchedServingMatchesSerial) {
  // The acceptance-bar configuration: int8 detector policy + fp32
  // regressor policy on the *prototypes*, inherited by every stream clone
  // and BatchScheduler context.  run_batched must be memcmp-equal to
  // run_serial under any batch composition.
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  quantize_models(render(600));
  detector_->set_execution_policy(ExecutionPolicy::int8());
  regressor_->set_execution_policy(ExecutionPolicy::fp32());

  std::vector<const Snippet*> jobs;
  for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);

  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            2, /*init_scale=*/600, /*snap_scales=*/true);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           2, /*init_scale=*/600, /*snap_scales=*/true);
  BatchSchedulerConfig cfg;
  cfg.max_batch = 2;
  const MultiStreamResult bat = batched.run_batched(jobs, cfg);
  const MultiStreamResult ref = serial.run_serial(jobs);

  ASSERT_EQ(bat.streams.size(), ref.streams.size());
  for (std::size_t s = 0; s < bat.streams.size(); ++s) {
    const StreamOutput& a = bat.streams[s];
    const StreamOutput& b = ref.streams[s];
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].scale_used, b.frames[f].scale_used);
      EXPECT_EQ(a.frames[f].regressed_t, b.frames[f].regressed_t);
      const auto& da = a.frames[f].detections.detections;
      const auto& db = b.frames[f].detections.detections;
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t d = 0; d < da.size(); ++d) {
        EXPECT_EQ(da[d].score, db[d].score);
        EXPECT_EQ(da[d].box.x1, db[d].box.x1);
      }
    }
  }
}

}  // namespace
}  // namespace ada
