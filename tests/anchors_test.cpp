#include "detection/anchors.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

TEST(Anchors, CountMatchesGridTimesPerCell) {
  AnchorConfig cfg;
  const auto anchors = generate_anchors(cfg, 4, 5);
  EXPECT_EQ(anchors.size(), static_cast<std::size_t>(4 * 5 * cfg.per_cell()));
}

TEST(Anchors, PerCellCountsSizesTimesAspects) {
  AnchorConfig cfg;
  cfg.sizes = {8, 16, 32};
  cfg.aspects = {0.5f, 1.0f, 2.0f};
  EXPECT_EQ(cfg.per_cell(), 9);
}

TEST(Anchors, CentersAlignWithStride) {
  AnchorConfig cfg;
  cfg.stride = 8;
  cfg.sizes = {16};
  cfg.aspects = {1.0f};
  const auto anchors = generate_anchors(cfg, 2, 3);
  // Cell (0,0) center at (4,4); cell (1,2) center at (20,12) in (x,y).
  EXPECT_FLOAT_EQ(anchors[0].cx(), 4.0f);
  EXPECT_FLOAT_EQ(anchors[0].cy(), 4.0f);
  EXPECT_FLOAT_EQ(anchors[5].cx(), 20.0f);
  EXPECT_FLOAT_EQ(anchors[5].cy(), 12.0f);
}

TEST(Anchors, SquareAnchorHasRequestedSize) {
  AnchorConfig cfg;
  cfg.sizes = {20};
  cfg.aspects = {1.0f};
  const auto anchors = generate_anchors(cfg, 1, 1);
  EXPECT_NEAR(anchors[0].width(), 20.0f, 1e-4f);
  EXPECT_NEAR(anchors[0].height(), 20.0f, 1e-4f);
}

TEST(Anchors, AspectPreservesArea) {
  AnchorConfig cfg;
  cfg.sizes = {20};
  cfg.aspects = {2.0f};
  const auto anchors = generate_anchors(cfg, 1, 1);
  EXPECT_NEAR(anchors[0].area(), 400.0f, 1.0f);
  EXPECT_NEAR(anchors[0].width() / anchors[0].height(), 2.0f, 1e-4f);
}

TEST(Anchors, LayoutIsCellMajorThenSizeThenAspect) {
  AnchorConfig cfg;
  cfg.sizes = {10, 20};
  cfg.aspects = {1.0f, 2.0f};
  const auto anchors = generate_anchors(cfg, 1, 2);
  // First 4 anchors belong to cell (0,0): sizes (10,10,20,20).
  EXPECT_NEAR(anchors[0].area(), 100.0f, 1.0f);
  EXPECT_NEAR(anchors[2].area(), 400.0f, 1.0f);
  // Next 4 belong to cell (0,1) with shifted center.
  EXPECT_GT(anchors[4].cx(), anchors[0].cx());
}

}  // namespace
}  // namespace ada
