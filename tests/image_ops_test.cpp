#include "tensor/image_ops.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

TEST(ImageOps, ResizeIdentity) {
  Tensor src = Tensor::chw(2, 4, 5);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i);
  Tensor dst;
  bilinear_resize(src, 4, 5, &dst);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_FLOAT_EQ(dst[i], src[i]);
}

TEST(ImageOps, ResizeConstantStaysConstant) {
  Tensor src = Tensor::chw(1, 6, 8);
  src.fill(0.7f);
  Tensor dst;
  bilinear_resize(src, 3, 4, &dst);
  for (std::size_t i = 0; i < dst.size(); ++i) EXPECT_NEAR(dst[i], 0.7f, 1e-6f);
  bilinear_resize(src, 12, 16, &dst);
  for (std::size_t i = 0; i < dst.size(); ++i) EXPECT_NEAR(dst[i], 0.7f, 1e-6f);
}

TEST(ImageOps, DownsampleAveragesLocally) {
  // 2x2 -> 1x1 must average the four pixels (align-corners=false).
  Tensor src = Tensor::chw(1, 2, 2);
  src.at(0, 0, 0, 0) = 0.0f;
  src.at(0, 0, 0, 1) = 1.0f;
  src.at(0, 0, 1, 0) = 1.0f;
  src.at(0, 0, 1, 1) = 2.0f;
  Tensor dst;
  bilinear_resize(src, 1, 1, &dst);
  EXPECT_NEAR(dst[0], 1.0f, 1e-5f);
}

TEST(ImageOps, ResizePreservesLinearRamp) {
  // Bilinear interpolation reproduces linear functions exactly (interior).
  Tensor src = Tensor::chw(1, 8, 8);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) src.at(0, 0, i, j) = static_cast<float>(j);
  Tensor dst;
  bilinear_resize(src, 8, 16, &dst);
  // Interior columns follow the ramp: dst(j) ~ (j+0.5)/2 - 0.5.
  for (int j = 2; j < 14; ++j) {
    const float expected = (static_cast<float>(j) + 0.5f) * 0.5f - 0.5f;
    EXPECT_NEAR(dst.at(0, 0, 4, j), expected, 1e-4f);
  }
}

TEST(ImageOps, WarpZeroFlowIsIdentity) {
  Tensor src = Tensor::chw(2, 5, 6);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i % 13);
  Tensor fy = Tensor::chw(1, 5, 6), fx = Tensor::chw(1, 5, 6);
  Tensor dst;
  bilinear_warp(src, fy, fx, &dst);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_FLOAT_EQ(dst[i], src[i]);
}

TEST(ImageOps, WarpIntegerShift) {
  Tensor src = Tensor::chw(1, 4, 4);
  for (std::size_t i = 0; i < 16; ++i) src[i] = static_cast<float>(i);
  // flow = +1 in x: dst(i,j) = src(i, j+1).
  Tensor fy = Tensor::chw(1, 4, 4), fx = Tensor::chw(1, 4, 4);
  fx.fill(1.0f);
  Tensor dst;
  bilinear_warp(src, fy, fx, &dst);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_FLOAT_EQ(dst.at(0, 0, i, j), src.at(0, 0, i, j + 1));
}

TEST(ImageOps, WarpClampsAtBorder) {
  Tensor src = Tensor::chw(1, 2, 2);
  src.at(0, 0, 0, 0) = 1.0f;
  src.at(0, 0, 0, 1) = 2.0f;
  src.at(0, 0, 1, 0) = 3.0f;
  src.at(0, 0, 1, 1) = 4.0f;
  Tensor fy = Tensor::chw(1, 2, 2), fx = Tensor::chw(1, 2, 2);
  fx.fill(100.0f);  // way out of range -> clamp to right edge
  Tensor dst;
  bilinear_warp(src, fy, fx, &dst);
  EXPECT_FLOAT_EQ(dst.at(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(dst.at(0, 0, 1, 1), 4.0f);
}

TEST(ImageOps, WarpHalfPixelInterpolates) {
  Tensor src = Tensor::chw(1, 1, 2);
  src.at(0, 0, 0, 0) = 0.0f;
  src.at(0, 0, 0, 1) = 2.0f;
  Tensor fy = Tensor::chw(1, 1, 2), fx = Tensor::chw(1, 1, 2);
  fx.at(0, 0, 0, 0) = 0.5f;
  Tensor dst;
  bilinear_warp(src, fy, fx, &dst);
  EXPECT_NEAR(dst.at(0, 0, 0, 0), 1.0f, 1e-5f);
}


TEST(FlipHorizontal, MirrorsColumns) {
  Tensor src = Tensor::chw(2, 3, 4);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i);
  Tensor dst;
  flip_horizontal(src, &dst);
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(dst.at(0, c, i, j), src.at(0, c, i, 3 - j));
}

TEST(FlipHorizontal, IsAnInvolution) {
  Tensor src = Tensor::chw(3, 5, 7);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<float>((i * 2654435761u) % 1000) / 1000.0f;
  Tensor once, twice;
  flip_horizontal(src, &once);
  flip_horizontal(once, &twice);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_FLOAT_EQ(twice[i], src[i]);
}

TEST(FlipHorizontal, PreservesRowAndChannelSums) {
  Tensor src = Tensor::chw(2, 4, 6);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<float>((i * 131) % 17);
  Tensor dst;
  flip_horizontal(src, &dst);
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < 4; ++i) {
      float a = 0, b = 0;
      for (int j = 0; j < 6; ++j) {
        a += src.at(0, c, i, j);
        b += dst.at(0, c, i, j);
      }
      EXPECT_FLOAT_EQ(a, b);
    }
}

}  // namespace
}  // namespace ada
