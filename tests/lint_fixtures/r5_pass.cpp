// R5 passing fixture: unordered containers used for lookup only; anything
// iterated is ordered (std::map, std::vector).
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace ada {

float good_lookup(const std::unordered_map<int, float>& weights, int key) {
  auto it = weights.find(key);  // point lookup: order never observed
  return it != weights.end() ? it->second : 0.0f;
}

float good_accumulate(const std::map<int, float>& ordered) {
  float sum = 0.0f;
  for (const auto& kv : ordered) sum += kv.second;  // std::map: sorted, fine
  return sum;
}

float good_sum(const std::vector<float>& v) {
  float sum = 0.0f;
  for (float x : v) sum += x;
  return sum;
}

}  // namespace ada
