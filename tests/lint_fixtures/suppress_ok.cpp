// Suppression fixture: violations carrying a lint:allow WITH a reason are
// silenced — same-line form and comment-line-above form.  Expects a clean
// run (exit 0) even though this file is copied into src/.
#include <chrono>
#include <random>

namespace ada {

double bench_only_now_ms() {
  // lint:allow(R1) benchmark harness needs real wall time; never on the
  // serving path, which injects Clock.
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

int fixture_entropy() {
  std::mt19937 gen;  // lint:allow(R3) exercises the unseeded-engine API shape
  return static_cast<int>(gen());
}

}  // namespace ada
