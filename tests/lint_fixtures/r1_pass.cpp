// R1 passing fixture: all timing flows through the injected Clock seam.
// Identifiers that merely *contain* banned tokens (runtime_ms, sleepy) must
// not trip the token matcher.

namespace ada {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_ms() const = 0;
};

double frame_deadline(const Clock& clock, double runtime_ms) {
  double sleepy = 0.0;  // not a sleep_for call, just an unfortunate name
  return clock.now_ms() + runtime_ms + sleepy;
}

struct Record {
  double time_ms = 0.0;  // member named time_ms, not a time() call
};

double read_time(const Record& r) { return r.time_ms; }

}  // namespace ada
