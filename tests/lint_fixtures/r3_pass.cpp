// R3 passing fixture: seeded engines and the project Rng only.
#include <cstdint>
#include <random>

namespace ada {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint32_t next_u32() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state_ >> 32);
  }

 private:
  std::uint64_t state_;
};

int good_engine(unsigned seed) {
  std::mt19937 gen(seed);  // seeded: fine
  return static_cast<int>(gen());
}

float good_draw(Rng& rng) {
  // An identifier containing "rand" (operand) must not match the rand token.
  float operand = static_cast<float>(rng.next_u32() & 0xffff);
  return operand / 65536.0f;
}

}  // namespace ada
