// R1 violating fixture: wall-clock reads and sleeps outside util/clock.h.
// lint_test copies this file to src/video/... in a temp tree and expects
// exactly rule R1 to fire (three sites).
#include <chrono>
#include <ctime>
#include <thread>

namespace ada {

double bad_now_ms() {
  auto t = std::chrono::steady_clock::now();  // R1: direct clock read
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

void bad_wait() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // R1: sleep
}

long bad_epoch() { return static_cast<long>(time(nullptr)); }  // R1: time()

}  // namespace ada
