// R5 violating fixture: iteration over unordered containers in a hot-path
// file (copied to src/tensor/...).  Expects two R5 diagnostics: the
// range-for and the explicit .begin() walk.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ada {

float bad_accumulate(const std::unordered_map<int, float>& weights) {
  float sum = 0.0f;
  for (const auto& kv : weights) sum += kv.second;  // R5: order leaks into sum
  return sum;
}

int bad_walk(const std::unordered_set<int>& ids) {
  int first = -1;
  auto it = ids.begin();  // R5: "first" depends on hash layout
  if (it != ids.end()) first = *it;
  return first;
}

}  // namespace ada
