// R6 violating fixture: raw allocation outside ScratchArena /
// AlignedAllocator (copied to src/nn/...).  Expects three R6 diagnostics:
// new[], malloc, and the paired free.
#include <cstdlib>

namespace ada {

float* bad_buffer(int n) {
  return new float[n];  // R6: raw array new
}

void* bad_raw(std::size_t bytes) {
  void* p = malloc(bytes);  // R6: libc allocation
  return p;
}

void bad_release(void* p) {
  free(p);  // R6: pairs with the malloc above
}

}  // namespace ada
