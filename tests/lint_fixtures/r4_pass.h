// R4 passing fixture: the config defines validate() and the same tree
// carries a call site (here, the component that accepts the config).
#pragma once

namespace ada {

struct TunedConfig {
  int capacity = 8;
  double deadline_ms = 50.0;
  void validate() const;
};

class Admitter {
 public:
  explicit Admitter(const TunedConfig& cfg) : cfg_(cfg) { cfg_.validate(); }

 private:
  TunedConfig cfg_;
};

// A struct that merely *mentions* Config in the middle of its name is out of
// scope: the rule keys on the "...Config" suffix.
struct ConfigurationTable {
  int entries = 0;
};

}  // namespace ada
