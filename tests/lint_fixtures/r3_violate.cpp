// R3 violating fixture: non-deterministic randomness.  Expects R3 on the
// rand() call, the random_device, and both unseeded engine declarations.
#include <cstdlib>
#include <random>

namespace ada {

int bad_jitter() { return rand() % 100; }  // R3: libc rand()

unsigned bad_seed() {
  std::random_device rd;  // R3: hardware entropy, unreproducible
  return rd();
}

int bad_engine() {
  std::mt19937 gen;  // R3: default-constructed (unseeded)
  return static_cast<int>(gen());
}

struct Sampler {
  std::mt19937 engine_;  // R3: member default-constructs unseeded
};

}  // namespace ada
