// R4 violating fixture: *Config structs under src/runtime/ must define AND
// call validate().  lint_test copies this to src/runtime/... and expects two
// R4 diagnostics: one struct with no validate() at all, one whose validate()
// is never called anywhere in the tree.
#pragma once

namespace ada {

struct TimeoutConfig {  // R4: declares no validate()
  double wait_ms = 25.0;
  int retries = 3;
};

struct UncalledConfig {  // R4: defines validate() but nothing calls it
  int capacity = 8;
  void validate() const;
};

}  // namespace ada
