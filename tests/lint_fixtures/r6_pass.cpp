// R6 passing fixture: containers and the arena own memory; a *member* named
// free (pool.free) is not libc free.
#include <cstddef>
#include <vector>

namespace ada {

class ScratchArena {
 public:
  float* alloc(std::size_t n) {
    storage_.resize(n);
    return storage_.data();
  }

 private:
  std::vector<float> storage_;
};

class HandlePool {
 public:
  void free(int handle) { recycled_.push_back(handle); }

 private:
  std::vector<int> recycled_;
};

float sum_scratch(ScratchArena& arena, std::size_t n) {
  float* buf = arena.alloc(n);
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) sum += buf[i];
  return sum;
}

void recycle(HandlePool& pool, int h) { pool.free(h); }

// "renewal" and "newline" contain the letters of new; token matching must
// not care.
int renewal_count(int newline_total) { return newline_total; }

}  // namespace ada
