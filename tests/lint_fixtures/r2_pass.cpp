// R2 passing fixture: models carry an ExecutionPolicy; no global backend
// traffic.  The word "backend" alone must not trip anything.

namespace ada {

enum class ExecutionPolicy { kFp32, kInt8 };

struct Model {
  ExecutionPolicy policy = ExecutionPolicy::kFp32;
  void set_policy(ExecutionPolicy p) { policy = p; }
};

ExecutionPolicy resolve_backend_policy(const Model& m) { return m.policy; }

}  // namespace ada
