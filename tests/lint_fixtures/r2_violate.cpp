// R2 violating fixture: reads/writes of the global GEMM backend outside the
// seam files.  lint_test copies this to src/adascale/... and expects R2 to
// fire on all three call sites; it ALSO copies the same file under tests/
// and expects silence (tests are exempt — they save/restore the global).
#include "tensor/gemm.h"

namespace ada {

void sneaky_backend_switch() {
  const GemmBackend saved = gemm_backend();     // R2: global read
  set_gemm_backend(GemmBackend::kReference);    // R2: global write
  const char* name = gemm_backend_name();       // R2: global read
  (void)saved;
  (void)name;
}

}  // namespace ada
