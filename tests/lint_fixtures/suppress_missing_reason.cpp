// Suppression fixture: a lint:allow WITHOUT a reason is itself a violation
// (rule LINT) and does NOT silence the underlying diagnostic.  Expects both
// a LINT and an R3 report.
#include <random>

namespace ada {

int unjustified() {
  std::mt19937 gen;  // lint:allow(R3)
  return static_cast<int>(gen());
}

}  // namespace ada
