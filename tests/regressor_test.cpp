#include "adascale/scale_regressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/sgd.h"
#include "tensor/loss.h"

namespace ada {
namespace {

RegressorConfig small_cfg(std::vector<int> kernels = {1, 3}) {
  RegressorConfig cfg;
  cfg.in_channels = 8;
  cfg.kernels = std::move(kernels);
  cfg.stream_channels = 6;
  return cfg;
}

TEST(ScaleRegressor, PredictReturnsFinite) {
  Rng rng(1);
  ScaleRegressor reg(small_cfg(), &rng);
  Tensor feat = Tensor::chw(8, 6, 8);
  for (std::size_t i = 0; i < feat.size(); ++i) feat[i] = rng.normal();
  const float t = reg.predict(feat);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GE(reg.last_predict_ms(), 0.0);
}

TEST(ScaleRegressor, HandlesVariableSpatialSize) {
  Rng rng(2);
  ScaleRegressor reg(small_cfg(), &rng);
  for (auto [h, w] : std::vector<std::pair<int, int>>{{4, 5}, {18, 25}, {8, 8}}) {
    Tensor feat = Tensor::chw(8, h, w);
    for (std::size_t i = 0; i < feat.size(); ++i) feat[i] = rng.normal();
    EXPECT_TRUE(std::isfinite(reg.predict(feat)));
  }
}

TEST(ScaleRegressor, LearnsConstantTarget) {
  Rng rng(3);
  ScaleRegressor reg(small_cfg(), &rng);
  Tensor feat = Tensor::chw(8, 5, 6);
  for (std::size_t i = 0; i < feat.size(); ++i) feat[i] = rng.uniform();
  Sgd::Options opt_cfg;
  opt_cfg.lr = 1e-2f;
  opt_cfg.weight_decay = 0.0f;
  Sgd opt(reg.parameters(), opt_cfg);
  for (int i = 0; i < 300; ++i) reg.train_step(feat, 0.7f, &opt);
  EXPECT_NEAR(reg.predict(feat), 0.7f, 0.05f);
}

TEST(ScaleRegressor, LearnsFeatureDependentTarget) {
  // Two distinct feature maps with opposite targets must separate — this is
  // the core capability AdaScale needs (big objects -> down-scale, small ->
  // up-scale).
  Rng rng(4);
  ScaleRegressor reg(small_cfg(), &rng);
  Tensor feat_a = Tensor::chw(8, 5, 6);
  Tensor feat_b = Tensor::chw(8, 5, 6);
  for (std::size_t i = 0; i < feat_a.size(); ++i) {
    feat_a[i] = rng.uniform();
    feat_b[i] = rng.uniform() + 1.5f;  // shifted statistics
  }
  Sgd::Options opt_cfg;
  opt_cfg.lr = 5e-3f;
  opt_cfg.weight_decay = 0.0f;
  Sgd opt(reg.parameters(), opt_cfg);
  for (int i = 0; i < 400; ++i) {
    reg.train_step(feat_a, -0.6f, &opt);
    reg.train_step(feat_b, 0.6f, &opt);
  }
  EXPECT_NEAR(reg.predict(feat_a), -0.6f, 0.15f);
  EXPECT_NEAR(reg.predict(feat_b), 0.6f, 0.15f);
}

TEST(ScaleRegressor, TrainStepReturnsSquaredError) {
  Rng rng(5);
  ScaleRegressor reg(small_cfg(), &rng);
  Tensor feat = Tensor::chw(8, 4, 4);
  const float before = reg.predict(feat);
  Sgd::Options opt_cfg;
  opt_cfg.lr = 0.0f;  // no update: loss must equal (pred-target)^2 exactly
  Sgd opt(reg.parameters(), opt_cfg);
  const float loss = reg.train_step(feat, 1.0f, &opt);
  EXPECT_NEAR(loss, (before - 1.0f) * (before - 1.0f), 1e-5f);
}

TEST(ScaleRegressor, KernelVariantsHaveDifferentParamCounts) {
  Rng rng(6);
  ScaleRegressor r1(small_cfg({1}), &rng);
  ScaleRegressor r13(small_cfg({1, 3}), &rng);
  ScaleRegressor r135(small_cfg({1, 3, 5}), &rng);
  const auto count = [](ScaleRegressor& r) {
    auto p = r.parameters();
    return param_count(p);
  };
  EXPECT_LT(count(r1), count(r13));
  EXPECT_LT(count(r13), count(r135));
}

TEST(ScaleRegressor, FingerprintEncodesKernels) {
  EXPECT_NE(small_cfg({1}).fingerprint(), small_cfg({1, 3}).fingerprint());
}

TEST(ScaleRegressor, GradCheckOnFcWeights) {
  Rng rng(7);
  ScaleRegressor reg(small_cfg({1}), &rng);
  Tensor feat = Tensor::chw(8, 3, 3);
  for (std::size_t i = 0; i < feat.size(); ++i) feat[i] = rng.uniform() + 0.2f;

  auto params = reg.parameters();
  // Zero-lr step accumulates fresh gradients we can inspect indirectly by
  // numerical perturbation of the loss.
  Sgd::Options opt_cfg;
  opt_cfg.lr = 0.0f;
  opt_cfg.weight_decay = 0.0f;
  Sgd opt(params, opt_cfg);
  reg.train_step(feat, 0.5f, &opt);

  // FC weight is the last-but-one param (weight, then bias).
  Param* fc_w = params[params.size() - 2];
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < fc_w->value.size(); i += 2) {
    const float orig = fc_w->value[i];
    fc_w->value[i] = orig + eps;
    float d = 0;
    const float lp = mse_scalar(reg.predict(feat), 0.5f, &d);
    fc_w->value[i] = orig - eps;
    d = 0;
    const float lm = mse_scalar(reg.predict(feat), 0.5f, &d);
    fc_w->value[i] = orig;
    EXPECT_NEAR(fc_w->grad[i], (lp - lm) / (2 * eps), 2e-2f);
  }
}

}  // namespace
}  // namespace ada
