// Overload-aware serving: bounded admission queues, the degradation
// controller, fault injection, and the virtual-time runner.
//
// Everything here runs in virtual time (util/clock.h ManualClock): arrival
// schedules, queueing, deadline slack, controller decisions and "service"
// all advance an injected clock, never the wall clock.  The tests are
// therefore exact — the same schedule + config + seed produces the same
// drops, the same latencies and the same degradation timeline on any
// machine at any ADASCALE_THREADS setting — and they simulate minutes of
// serving in milliseconds of real time.
#include <gtest/gtest.h>

#include <cstdlib>

#include "data/dataset.h"
#include "runtime/admission.h"
#include "runtime/fault_injection.h"
#include "runtime/multi_stream.h"
#include "runtime/overload_controller.h"
#include "util/clock.h"
#include "util/latency_histogram.h"

namespace ada {
namespace {

// ---------------------------------------------------------------------------
// Config validation: nonsense must die loudly, not misbehave silently.
// ---------------------------------------------------------------------------

TEST(ConfigValidationDeathTest, AdmissionRejectsNonsense) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  AdmissionConfig zero_cap;
  zero_cap.capacity = 0;
  EXPECT_DEATH(zero_cap.validate(), "capacity");
  AdmissionConfig neg_deadline;
  neg_deadline.deadline_ms = -5.0;
  EXPECT_DEATH(neg_deadline.validate(), "deadline_ms");
}

TEST(ConfigValidationDeathTest, ControllerRejectsInvertedWatermarks) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  OverloadControllerConfig inverted;
  inverted.queue_high = 2;
  inverted.queue_low = 2;  // must be strictly below queue_high
  EXPECT_DEATH(inverted.validate(), "inverted watermarks");

  OverloadControllerConfig no_rungs;
  no_rungs.enable_scale_cap = false;
  no_rungs.enable_policy_switch = false;
  no_rungs.enable_shed = false;
  EXPECT_DEATH(no_rungs.validate(), "rung");

  OverloadControllerConfig neg_scale;
  neg_scale.scale_cap = -600;
  EXPECT_DEATH(neg_scale.validate(), "scale_cap");
}

TEST(ConfigValidationDeathTest, TimedRunConfigRejectsNonsense) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  TimedRunConfig no_service;
  no_service.run_inference = false;  // and no service_model
  EXPECT_DEATH(no_service.validate(), "service_model");
  TimedRunConfig bad_admission;
  bad_admission.admission.capacity = 0;  // validate() recurses into admission
  EXPECT_DEATH(bad_admission.validate(), "capacity");
}

TEST(ConfigValidationDeathTest, BatchSchedulerRejectsNonsense) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  BatchSchedulerConfig zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_DEATH(zero_batch.validate(), "max_batch");
  BatchSchedulerConfig neg_wait;
  neg_wait.max_wait_ms = -1.0;
  EXPECT_DEATH(neg_wait.validate(), "max_wait_ms");
}

TEST(ConfigValidationDeathTest, DffServingRejectsNonsense) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  DffServingConfig zero_interval;
  zero_interval.key_interval = 0;
  EXPECT_DEATH(zero_interval.validate(), "key_interval");
  DffServingConfig neg_residual;
  neg_residual.residual_threshold = -0.1f;
  EXPECT_DEATH(neg_residual.validate(), "residual_threshold");
}

// ---------------------------------------------------------------------------
// ArrivalQueue: bounded admission, deadline stamping, drop accounting.
// ---------------------------------------------------------------------------

TEST(ArrivalQueueTest, TailDropsAtCapacityAndKeepsInvariants) {
  ManualClock clock;
  AdmissionConfig cfg;
  cfg.capacity = 2;
  cfg.deadline_ms = 100.0;
  ArrivalQueue q(cfg, &clock);

  EXPECT_TRUE(q.offer(nullptr, true, 0.0));
  EXPECT_TRUE(q.offer(nullptr, false, 1.0));
  EXPECT_FALSE(q.offer(nullptr, false, 2.0));  // at capacity: tail drop
  EXPECT_EQ(q.depth(), 2);
  EXPECT_EQ(q.stats().offered, 3);
  EXPECT_EQ(q.stats().admitted, 2);
  EXPECT_EQ(q.stats().dropped_queue_full, 1);

  // Seq numbers every offered frame, admitted or not: the frame offered
  // after the drop gets seq 3, not 2.
  AdmittedFrame head = q.pop();
  EXPECT_EQ(head.seq, 0);
  EXPECT_TRUE(head.snippet_start);
  EXPECT_EQ(head.deadline_ms, 100.0);  // arrival 0 + deadline
  EXPECT_TRUE(q.offer(nullptr, false, 3.0));
  q.pop();
  AdmittedFrame last = q.pop();
  EXPECT_EQ(last.seq, 3);

  const AdmissionStats& st = q.stats();
  EXPECT_EQ(st.offered, st.admitted + st.dropped_queue_full);
  EXPECT_EQ(st.admitted, st.served + st.dropped_deadline + q.depth());
}

TEST(ArrivalQueueTest, ArrivalTimestampIsExplicitNotClockTime) {
  // The event loop delivers arrivals after the clock has already advanced
  // past them; the queue must honor the scheduled arrival, or queueing
  // delay silently vanishes from every latency number.
  ManualClock clock;
  clock.advance(500.0);
  AdmissionConfig cfg;
  cfg.deadline_ms = 100.0;
  ArrivalQueue q(cfg, &clock);
  ASSERT_TRUE(q.offer(nullptr, false, 450.0));  // arrived mid-service-window
  EXPECT_EQ(q.front().arrival_ms, 450.0);
  EXPECT_EQ(q.front().deadline_ms, 550.0);
  EXPECT_EQ(q.oldest_slack_ms(), 50.0);  // 550 - 500, not 100
}

TEST(ArrivalQueueTest, ShedExpiredDropsOnlyLateFramesWithIdentities) {
  ManualClock clock;
  AdmissionConfig cfg;
  cfg.capacity = 8;
  cfg.deadline_ms = 100.0;
  ArrivalQueue q(cfg, &clock);
  ASSERT_TRUE(q.offer(nullptr, false, 0.0));    // deadline 100
  ASSERT_TRUE(q.offer(nullptr, false, 50.0));   // deadline 150
  ASSERT_TRUE(q.offer(nullptr, false, 120.0));  // deadline 220

  clock.advance(160.0);
  std::vector<AdmittedFrame> shed = q.shed_expired();
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[0].seq, 0);
  EXPECT_EQ(shed[1].seq, 1);
  EXPECT_EQ(q.depth(), 1);
  EXPECT_EQ(q.front().seq, 2);
  EXPECT_EQ(q.stats().dropped_deadline, 2);
  const AdmissionStats& st = q.stats();
  EXPECT_EQ(st.admitted, st.served + st.dropped_deadline + q.depth());
}

TEST(ArrivalQueueTest, EmptyQueueReportsFullSlack) {
  ManualClock clock;
  AdmissionConfig cfg;
  cfg.deadline_ms = 250.0;
  ArrivalQueue q(cfg, &clock);
  EXPECT_EQ(q.oldest_slack_ms(), 250.0);
}

// ---------------------------------------------------------------------------
// Load-schedule generators.
// ---------------------------------------------------------------------------

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() : dataset_(Dataset::synth_vid(1, 4, 77)) {}

  std::vector<const Snippet*> jobs() const {
    std::vector<const Snippet*> j;
    for (const Snippet& s : dataset_.val_snippets()) j.push_back(&s);
    return j;
  }

  Dataset dataset_;
};

TEST_F(ScheduleTest, PoissonScheduleIsSortedSeededAndComplete) {
  Rng rng_a(123), rng_b(123), rng_c(456);
  const auto j = jobs();
  StreamSchedule a = poisson_schedule(j, 50.0, 0.0, &rng_a);
  StreamSchedule b = poisson_schedule(j, 50.0, 0.0, &rng_b);
  StreamSchedule c = poisson_schedule(j, 50.0, 0.0, &rng_c);

  std::size_t total_frames = 0;
  for (const Snippet* s : j) total_frames += s->frames.size();
  ASSERT_EQ(a.size(), total_frames);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ms, b[i].ms);  // same seed: bit-identical schedule
    EXPECT_EQ(a[i].scene, b[i].scene);
    EXPECT_EQ(a[i].snippet_start, b[i].snippet_start);
    if (i > 0) {
      EXPECT_GE(a[i].ms, a[i - 1].ms);  // sorted by arrival
    }
  }
  // Different seed: a genuinely different trace.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && i < c.size(); ++i)
    if (a[i].ms != c[i].ms) any_diff = true;
  EXPECT_TRUE(any_diff);

  // Exactly one snippet_start per snippet, on its first frame.
  long starts = 0;
  for (const FrameArrival& f : a) starts += f.snippet_start ? 1 : 0;
  EXPECT_EQ(starts, static_cast<long>(j.size()));
  EXPECT_TRUE(a.front().snippet_start);
}

TEST_F(ScheduleTest, BurstyScheduleArrivesFasterInsideBursts) {
  Rng rng(7);
  const auto j = jobs();
  // Burst windows cover half of each period at 20x the base rate.
  StreamSchedule s =
      bursty_schedule(j, 10.0, 200.0, 1000.0, 500.0, 0.0, &rng);
  long burst_arrivals = 0, calm_arrivals = 0;
  for (const FrameArrival& f : s) {
    const double phase = std::fmod(f.ms, 1000.0);
    (phase < 500.0 ? burst_arrivals : calm_arrivals) += 1;
  }
  // At 20x the rate the burst windows must hold the large majority of
  // arrivals even though they are only half the time.
  EXPECT_GT(burst_arrivals, 3 * calm_arrivals);
}

// ---------------------------------------------------------------------------
// OverloadController ladder mechanics.
// ---------------------------------------------------------------------------

TEST(OverloadControllerTest, EscalatesOneRungPerOverloadedObservation) {
  ManualClock clock;
  OverloadControllerConfig cfg;
  cfg.queue_high = 4;
  cfg.queue_low = 1;
  cfg.enable_policy_switch = true;
  OverloadController c(cfg, ScaleSet::reg_default(), &clock);

  EXPECT_EQ(c.level(), DegradeLevel::kNormal);
  EXPECT_EQ(c.observe(4, 100.0), DegradeLevel::kScaleCap);
  EXPECT_EQ(c.observe(6, 50.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.observe(9, -20.0), DegradeLevel::kShed);
  EXPECT_EQ(c.observe(9, -40.0), DegradeLevel::kShed);  // already at the top
  EXPECT_EQ(c.timeline().size(), 3u);
  EXPECT_TRUE(c.policy_switch_active());
  EXPECT_TRUE(c.shedding_active());
}

TEST(OverloadControllerTest, RecoversHystereticallyAfterCalmTicks) {
  ManualClock clock;
  OverloadControllerConfig cfg;
  cfg.queue_high = 4;
  cfg.queue_low = 1;
  cfg.calm_ticks = 3;
  cfg.enable_policy_switch = true;
  OverloadController c(cfg, ScaleSet::reg_default(), &clock);
  c.observe(5, 100.0);
  c.observe(5, 100.0);  // kPolicySwitch

  // In-band observations (neither overloaded nor healthy) hold the level
  // AND reset the calm streak.
  EXPECT_EQ(c.observe(2, 100.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.observe(1, 100.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.observe(1, 100.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.observe(2, 100.0), DegradeLevel::kPolicySwitch);  // streak reset
  EXPECT_EQ(c.observe(1, 100.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.observe(1, 100.0), DegradeLevel::kPolicySwitch);
  // Third consecutive healthy tick: one rung down, streak restarts.
  EXPECT_EQ(c.observe(0, 100.0), DegradeLevel::kScaleCap);
  EXPECT_EQ(c.observe(0, 100.0), DegradeLevel::kScaleCap);
  EXPECT_EQ(c.observe(0, 100.0), DegradeLevel::kScaleCap);
  EXPECT_EQ(c.observe(0, 100.0), DegradeLevel::kNormal);
  EXPECT_FALSE(c.policy_switch_active());
}

TEST(OverloadControllerTest, DwellGateHoldsEscalationUntilTheRungHadTime) {
  ManualClock clock;
  OverloadControllerConfig cfg;
  cfg.min_dwell_ms = 50.0;
  cfg.enable_policy_switch = true;
  OverloadController c(cfg, ScaleSet::reg_default(), &clock);

  EXPECT_EQ(c.observe(8, -1.0), DegradeLevel::kScaleCap);  // first: immediate
  // Still overloaded 10ms later: the cap has not had its dwell yet.
  clock.advance(10.0);
  EXPECT_EQ(c.observe(8, -1.0), DegradeLevel::kScaleCap);
  // Past the dwell and still overloaded: next rung.
  clock.advance(45.0);
  EXPECT_EQ(c.observe(8, -1.0), DegradeLevel::kPolicySwitch);
  EXPECT_EQ(c.timeline().size(), 2u);
}

TEST(OverloadControllerTest, DisabledRungsAreSkippedBothWays) {
  ManualClock clock;
  OverloadControllerConfig cfg;
  cfg.calm_ticks = 1;
  cfg.enable_policy_switch = false;  // the default; spelled out for clarity
  OverloadController c(cfg, ScaleSet::reg_default(), &clock);
  EXPECT_EQ(c.observe(8, -1.0), DegradeLevel::kScaleCap);
  EXPECT_EQ(c.observe(8, -1.0), DegradeLevel::kShed);  // skipped policy rung
  EXPECT_EQ(c.observe(0, 100.0), DegradeLevel::kScaleCap);  // and back down
  EXPECT_FALSE(c.policy_switch_active());
}

TEST(OverloadControllerTest, AppliedScaleSnapsOntoTheScaleSet) {
  ManualClock clock;
  OverloadControllerConfig cfg;
  cfg.scale_cap = 400;  // not a set member: must snap onto {600,480,360,...}
  OverloadController c(cfg, ScaleSet::reg_default(), &clock);
  EXPECT_EQ(c.apply_scale(600), 600);  // kNormal: untouched
  c.observe(8, -1.0);                  // kScaleCap
  EXPECT_EQ(c.apply_scale(600), ScaleSet::reg_default().nearest(400));
  EXPECT_EQ(c.apply_scale(128), 128);  // already under the cap
}

// ---------------------------------------------------------------------------
// run_timed: the virtual-time serving loop.
// ---------------------------------------------------------------------------

class TimedRunTest : public ::testing::Test {
 protected:
  TimedRunTest()
      : dataset_(Dataset::synth_vid(1, 4, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  std::vector<const Snippet*> val_jobs() const {
    std::vector<const Snippet*> jobs;
    for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);
    return jobs;
  }

  std::unique_ptr<MultiStreamRunner> make_runner(int streams) {
    return std::make_unique<MultiStreamRunner>(
        detector_.get(), regressor_.get(), &renderer_,
        dataset_.scale_policy(), ScaleSet::reg_default(), streams,
        /*init_scale=*/600, /*snap_scales=*/true);
  }

  /// Service cost quadratic in scale (rendered pixels ~ scale^2): `base_ms`
  /// at scale 600.  The knob the scale-cap rung exploits.
  static TimedRunConfig modeled_config(double base_ms) {
    TimedRunConfig cfg;
    cfg.run_inference = false;
    cfg.service_model = [base_ms](int, long, int scale, DegradeLevel) {
      const double f = static_cast<double>(scale) / 600.0;
      return base_ms * f * f;
    };
    return cfg;
  }

  /// Per-stream schedules over the val snippets: stream s takes snippets
  /// s, s+n, ... (churn: streams go idle when their snippets run out).
  /// `repeats` cycles the per-stream snippet list to lengthen the trace
  /// (scenes may repeat; the schedule only points at them).
  std::vector<StreamSchedule> round_robin_schedules(
      int streams, double rate_hz, std::uint64_t seed,
      double burst_rate_hz = 0.0, int repeats = 1) {
    const auto jobs = val_jobs();
    std::vector<StreamSchedule> schedules;
    for (int s = 0; s < streams; ++s) {
      std::vector<const Snippet*> mine;
      for (int rep = 0; rep < repeats; ++rep)
        for (std::size_t j = static_cast<std::size_t>(s); j < jobs.size();
             j += static_cast<std::size_t>(streams))
          mine.push_back(jobs[j]);
      Rng rng(seed + static_cast<std::uint64_t>(s));
      schedules.push_back(
          burst_rate_hz > 0.0
              ? bursty_schedule(mine, rate_hz, burst_rate_hz, 1000.0, 400.0,
                                0.0, &rng)
              : poisson_schedule(mine, rate_hz, 0.0, &rng));
    }
    return schedules;
  }

  static void expect_accounting_invariants(const TimedRunResult& r) {
    for (const AdmissionStats& st : r.stream_stats) {
      EXPECT_EQ(st.offered, st.admitted + st.dropped_queue_full);
      // Queues drain before run_timed returns: depth() == 0.
      EXPECT_EQ(st.admitted, st.served + st.dropped_deadline);
    }
    EXPECT_EQ(r.offered,
              r.served + r.dropped_queue_full + r.dropped_deadline);
    EXPECT_EQ(static_cast<long>(r.frames.size()), r.offered);
    EXPECT_EQ(static_cast<long>(r.latency.count()), r.served);
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(TimedRunTest, AccountingInvariantsHoldUnderBurstyChurn) {
  auto runner = make_runner(3);
  ManualClock clock;
  // Deliberately under-capacity queues and a hot burst rate: plenty of
  // queue-full drops, plus deadline shedding once the controller engages.
  TimedRunConfig cfg = modeled_config(30.0);
  cfg.admission.capacity = 4;
  cfg.admission.deadline_ms = 200.0;
  OverloadControllerConfig ccfg;
  ccfg.queue_high = 3;
  ccfg.calm_ticks = 4;
  OverloadController controller(ccfg, ScaleSet::reg_default(), &clock);

  TimedRunResult r = runner->run_timed(
      round_robin_schedules(3, 20.0, 42, /*burst_rate_hz=*/300.0), cfg,
      &clock, &controller);

  expect_accounting_invariants(r);
  EXPECT_GT(r.offered, 0);
  EXPECT_GT(r.dropped_queue_full, 0);  // the burst must overflow capacity-4
  // Every offered frame appears exactly once in the records, with
  // stream-local seq uniqueness.
  std::vector<std::vector<bool>> seen(3);
  for (auto& v : seen) v.resize(static_cast<std::size_t>(r.offered), false);
  for (const TimedFrameRecord& f : r.frames) {
    ASSERT_LT(f.seq, r.offered);
    EXPECT_FALSE(seen[static_cast<std::size_t>(f.stream)]
                     [static_cast<std::size_t>(f.seq)]);
    seen[static_cast<std::size_t>(f.stream)]
        [static_cast<std::size_t>(f.seq)] = true;
  }
}

TEST_F(TimedRunTest, DeterministicAcrossIdenticalRuns) {
  // Same schedules, same config, fresh runner + clock: every record field
  // and the whole degradation timeline must match exactly.
  auto run_once = [&]() {
    auto runner = make_runner(2);
    ManualClock clock;
    TimedRunConfig cfg = modeled_config(25.0);
    cfg.admission.capacity = 6;
    cfg.admission.deadline_ms = 150.0;
    cfg.faults = FaultInjection::global_spike(10, 20, 40.0);
    OverloadControllerConfig ccfg;
    ccfg.calm_ticks = 3;
    OverloadController controller(ccfg, ScaleSet::reg_default(), &clock);
    return runner->run_timed(round_robin_schedules(2, 30.0, 99, 200.0), cfg,
                             &clock, &controller);
  };
  TimedRunResult a = run_once();
  TimedRunResult b = run_once();
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].stream, b.frames[i].stream);
    EXPECT_EQ(a.frames[i].seq, b.frames[i].seq);
    EXPECT_EQ(a.frames[i].arrival_ms, b.frames[i].arrival_ms);
    EXPECT_EQ(a.frames[i].finish_ms, b.frames[i].finish_ms);
    EXPECT_EQ(a.frames[i].dropped, b.frames[i].dropped);
    EXPECT_EQ(a.frames[i].scale_used, b.frames[i].scale_used);
    EXPECT_EQ(a.frames[i].level, b.frames[i].level);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].ms, b.timeline[i].ms);
    EXPECT_EQ(a.timeline[i].to, b.timeline[i].to);
  }
  EXPECT_EQ(a.makespan_ms, b.makespan_ms);
}

TEST_F(TimedRunTest, StalledStreamDegradesThenRecovers) {
  // One stream's frames stall 60ms each for a window (a wedged decoder);
  // the shared worker backlogs, the ladder walks up — and once the stall
  // clears and queues drain, hysteresis walks it back to normal.
  auto runner = make_runner(2);
  ManualClock clock;
  TimedRunConfig cfg = modeled_config(8.0);  // healthy when unfaulted
  cfg.admission.capacity = 16;
  cfg.admission.deadline_ms = 250.0;
  cfg.faults.spikes.push_back({/*stream=*/0, /*from_seq=*/5, /*to_seq=*/20,
                               /*extra_ms=*/60.0});
  OverloadControllerConfig ccfg;
  ccfg.queue_high = 4;
  ccfg.queue_low = 1;
  ccfg.calm_ticks = 5;
  OverloadController controller(ccfg, ScaleSet::reg_default(), &clock);

  // 4 repeats ≈ 96 frames/stream: the stall window [5, 20] ends with most
  // of the trace still ahead, leaving room for the calm streaks recovery
  // needs (one per rung).
  TimedRunResult r = runner->run_timed(
      round_robin_schedules(2, 40.0, 7, /*burst_rate_hz=*/0.0, /*repeats=*/4),
      cfg, &clock, &controller);

  expect_accounting_invariants(r);
  ASSERT_FALSE(r.timeline.empty());  // the fault must register
  DegradeLevel worst = DegradeLevel::kNormal;
  for (const DegradeEvent& e : r.timeline)
    worst = std::max(worst, e.to);
  EXPECT_GE(worst, DegradeLevel::kScaleCap);
  // While capped, served scales obey the cap (snapped onto the set).
  const int cap_scale = ScaleSet::reg_default().nearest(ccfg.scale_cap);
  for (const TimedFrameRecord& f : r.frames) {
    if (!f.dropped && f.level >= DegradeLevel::kScaleCap) {
      EXPECT_LE(f.scale_used, cap_scale);
    }
  }
  // Recovery: the run ends back at normal with the cap lifted.
  EXPECT_EQ(r.final_level, DegradeLevel::kNormal);
  EXPECT_EQ(r.timeline.back().to, DegradeLevel::kNormal);
}

TEST_F(TimedRunTest, ShedRungDropsOnlyExpiredFramesWithAccounting) {
  // A long global spike under sustained load forces the ladder to kShed;
  // every deadline drop must carry reason kDeadline and be late by
  // construction (deadline <= drop time).
  auto runner = make_runner(2);
  ManualClock clock;
  TimedRunConfig cfg = modeled_config(10.0);
  cfg.admission.capacity = 32;
  cfg.admission.deadline_ms = 120.0;
  cfg.faults = FaultInjection::global_spike(0, 40, 80.0);
  OverloadControllerConfig ccfg;
  ccfg.queue_high = 3;
  ccfg.calm_ticks = 4;
  OverloadController controller(ccfg, ScaleSet::reg_default(), &clock);

  TimedRunResult r = runner->run_timed(round_robin_schedules(2, 50.0, 11),
                                       cfg, &clock, &controller);
  expect_accounting_invariants(r);
  EXPECT_GT(r.dropped_deadline, 0);
  for (const TimedFrameRecord& f : r.frames) {
    if (f.drop_reason == DropReason::kDeadline) {
      EXPECT_TRUE(f.dropped);
      EXPECT_GE(f.finish_ms, f.arrival_ms + cfg.admission.deadline_ms);
      EXPECT_GE(f.level, DegradeLevel::kShed);  // only the shed rung drops
    }
  }
}

TEST_F(TimedRunTest, ControllerMeetsDeadlineWhereBaselineViolates) {
  // The SLO claim in miniature: under sustained overload at scale 600
  // (service 30ms vs ~25ms offered inter-arrival per stream pair), the
  // uncontrolled runner blows through the deadline at p99 while the
  // controller caps scale to 360 (service ~10.8ms), drains, and serves
  // nearly everything on time.
  const double deadline_ms = 250.0;
  auto schedules = [&] { return round_robin_schedules(2, 20.0, 21); };

  TimedRunConfig cfg = modeled_config(30.0);
  cfg.admission.capacity = 64;  // roomy: baseline pain is latency, not drops
  cfg.admission.deadline_ms = deadline_ms;

  auto baseline_runner = make_runner(2);
  ManualClock baseline_clock;
  TimedRunResult baseline =
      baseline_runner->run_timed(schedules(), cfg, &baseline_clock, nullptr);

  auto controlled_runner = make_runner(2);
  ManualClock controlled_clock;
  OverloadControllerConfig ccfg;
  ccfg.queue_high = 4;
  ccfg.queue_low = 1;
  ccfg.calm_ticks = 8;
  ccfg.scale_cap = 360;
  OverloadController controller(ccfg, ScaleSet::reg_default(),
                                &controlled_clock);
  TimedRunResult controlled = controlled_runner->run_timed(
      schedules(), cfg, &controlled_clock, &controller);

  expect_accounting_invariants(baseline);
  expect_accounting_invariants(controlled);

  // Baseline: saturated queue, p99 beyond the deadline.
  EXPECT_GT(baseline.latency.p99(), deadline_ms);
  EXPECT_GT(baseline.deadline_violations, 0);

  // Controller: p99 within the deadline, drop rate under 5%.
  EXPECT_LE(controlled.latency.p99(), deadline_ms);
  EXPECT_LT(controlled.drop_rate(), 0.05);
  EXPECT_FALSE(controlled.timeline.empty());
  // And it really used the knob: some frames served at the capped scale.
  bool any_capped = false;
  for (const TimedFrameRecord& f : controlled.frames)
    if (!f.dropped && f.scale_used == 360) any_capped = true;
  EXPECT_TRUE(any_capped);
}

TEST_F(TimedRunTest, RealInferenceRespectsScaleCapAndResetsPerSnippet) {
  // run_inference=true drives the actual pipelines: scale trajectories come
  // from the real regressor, snippet starts reset to init scale, and an
  // externally imposed cap bounds every served scale.
  auto runner = make_runner(2);
  runner->set_scale_cap(360);
  ManualClock clock;
  TimedRunConfig cfg;  // run_inference defaults to true; measured service
  cfg.admission.capacity = 64;
  cfg.admission.deadline_ms = 1e6;  // accounting not under test here
  cfg.service_model = [](int, long, int, DegradeLevel) { return 5.0; };

  TimedRunResult r = runner->run_timed(round_robin_schedules(2, 100.0, 3),
                                       cfg, &clock, nullptr);
  expect_accounting_invariants(r);
  EXPECT_EQ(r.dropped_queue_full + r.dropped_deadline, 0);
  for (const TimedFrameRecord& f : r.frames) {
    ASSERT_FALSE(f.dropped);
    EXPECT_LE(f.scale_used, 360);  // the cap held through real inference
    EXPECT_GT(f.output.detections.forward_ms, 0.0);  // it really ran
  }
}

TEST_F(TimedRunTest, RunTimedValidatesItsInputsLoudly) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto runner = make_runner(2);
  ManualClock clock;
  TimedRunConfig cfg;
  EXPECT_DEATH(
      runner->run_timed(std::vector<StreamSchedule>(3), cfg, &clock, nullptr),
      "schedules");
  TimedRunConfig no_service;
  no_service.run_inference = false;  // and no service_model
  EXPECT_DEATH(runner->run_timed(std::vector<StreamSchedule>(2), no_service,
                                 &clock, nullptr),
               "service_model");
}

}  // namespace
}  // namespace ada
