#include "adascale/multi_shot.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace ada {
namespace {

TEST(ShotsAround, CenterMemberComesFirst) {
  const ScaleSet s = ScaleSet::reg_default();  // {600,480,360,240,128}
  const auto shots = shots_around(360, s, 3);
  ASSERT_EQ(shots.size(), 3u);
  EXPECT_EQ(shots[0], 360);
  // 240 and 480 are both 120 away; the tie prefers the cheaper scale.
  EXPECT_EQ(shots[1], 240);
  EXPECT_EQ(shots[2], 480);
}

TEST(ShotsAround, NonMemberCenterPicksNearest) {
  const ScaleSet s = ScaleSet::reg_default();
  const auto shots = shots_around(400, s, 2);
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0], 360);  // |360-400| = 40 < |480-400| = 80
  EXPECT_EQ(shots[1], 480);
}

TEST(ShotsAround, CountClampsToSetSize) {
  const ScaleSet s{{600, 240}};
  const auto shots = shots_around(600, s, 5);
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0], 600);
  EXPECT_EQ(shots[1], 240);
}

TEST(ShotsAround, SingleShotDegeneratesToNearest) {
  const ScaleSet s = ScaleSet::reg_default();
  EXPECT_EQ(shots_around(600, s, 1), std::vector<int>{600});
  EXPECT_EQ(shots_around(130, s, 1), std::vector<int>{128});
}

class MultiShotPipelineTest : public ::testing::Test {
 protected:
  MultiShotPipelineTest()
      : dataset_(Dataset::synth_vid(1, 1, 99)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(MultiShotPipelineTest, RunsRequestedShotCountAndStaysInRange) {
  MultiShotConfig cfg;
  cfg.extra_shots = 1;
  MultiShotPipeline pipeline(detector_.get(), regressor_.get(), &renderer_,
                             dataset_.scale_policy(), ScaleSet::reg_default(),
                             cfg);
  const Scene& frame = dataset_.val_snippets()[0].frames[0];
  const MultiShotFrameOutput out = pipeline.process(frame);
  EXPECT_EQ(out.scales_used.size(), 2u);
  EXPECT_EQ(out.primary_scale, 600);
  EXPECT_EQ(out.scales_used[0], 600);
  EXPECT_GE(out.next_scale, 128);
  EXPECT_LE(out.next_scale, 600);
  EXPECT_GT(out.detect_ms, 0.0);
}

TEST_F(MultiShotPipelineTest, ZeroExtraShotsMatchesSingleShotScaleDynamics) {
  // With extra_shots = 0 the multi-shot pipeline must follow exactly the
  // same scale trajectory as Algorithm 1.
  MultiShotConfig cfg;
  cfg.extra_shots = 0;
  MultiShotPipeline multi(detector_.get(), regressor_.get(), &renderer_,
                          dataset_.scale_policy(), ScaleSet::reg_default(),
                          cfg);
  AdaScalePipeline single(detector_.get(), regressor_.get(), &renderer_,
                          dataset_.scale_policy(), ScaleSet::reg_default());
  for (const Scene& frame : dataset_.val_snippets()[0].frames) {
    const MultiShotFrameOutput m = multi.process(frame);
    const AdaFrameOutput s = single.process(frame);
    EXPECT_EQ(m.primary_scale, s.scale_used);
    EXPECT_EQ(m.next_scale, s.next_scale);
    EXPECT_EQ(m.detections.detections.size(), s.detections.detections.size());
  }
}

TEST_F(MultiShotPipelineTest, ResetRestoresInitScale) {
  MultiShotConfig cfg;
  MultiShotPipeline pipeline(detector_.get(), regressor_.get(), &renderer_,
                             dataset_.scale_policy(), ScaleSet::reg_default(),
                             cfg);
  const Scene& frame = dataset_.val_snippets()[0].frames[0];
  (void)pipeline.process(frame);
  pipeline.reset();
  EXPECT_EQ(pipeline.current_scale(), cfg.init_scale);
}

TEST_F(MultiShotPipelineTest, MergedOutputRespectsTopK) {
  MultiShotConfig cfg;
  cfg.extra_shots = 2;
  MultiShotPipeline pipeline(detector_.get(), regressor_.get(), &renderer_,
                             dataset_.scale_policy(), ScaleSet::reg_default(),
                             cfg);
  const Scene& frame = dataset_.val_snippets()[0].frames[0];
  const MultiShotFrameOutput out = pipeline.process(frame);
  EXPECT_LE(static_cast<int>(out.detections.detections.size()),
            detector_->config().top_k);
  // Scores must be sorted descending after the NMS merge.
  const auto& dets = out.detections.detections;
  for (std::size_t i = 1; i < dets.size(); ++i)
    EXPECT_GE(dets[i - 1].score, dets[i].score);
}

}  // namespace
}  // namespace ada
