#include "detection/assign.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

GtBox gt(float x1, float y1, float x2, float y2, int cls) {
  GtBox g;
  g.x1 = x1; g.y1 = y1; g.x2 = x2; g.y2 = y2; g.class_id = cls;
  return g;
}

TEST(Assign, NoGtAllBackground) {
  std::vector<Box> anchors = {Box{0, 0, 10, 10}, Box{20, 20, 30, 30}};
  const auto t = assign_anchors(anchors, {}, AssignConfig{});
  for (const auto& a : t) EXPECT_EQ(a.label, 0);
}

TEST(Assign, PerfectOverlapIsForeground) {
  std::vector<Box> anchors = {Box{0, 0, 10, 10}};
  const auto t = assign_anchors(anchors, {gt(0, 0, 10, 10, 3)}, AssignConfig{});
  EXPECT_EQ(t[0].label, 4);  // class 3 -> label 4 (background shifted)
  EXPECT_EQ(t[0].matched_gt, 0);
  EXPECT_NEAR(t[0].max_iou, 1.0f, 1e-6f);
  for (float d : t[0].delta) EXPECT_NEAR(d, 0.0f, 1e-5f);
}

TEST(Assign, FarAnchorIsBackground) {
  std::vector<Box> anchors = {Box{100, 100, 110, 110}};
  const auto t = assign_anchors(anchors, {gt(0, 0, 10, 10, 0)}, AssignConfig{});
  EXPECT_EQ(t[0].label, 0);
}

TEST(Assign, NearMissIsBackgroundByDefault) {
  // Anchor 0 has IoU 0.45 with the GT.  The default config has no ignore
  // band (bg_iou == fg_iou; synthetic GT is exact), so the near miss is a
  // plain negative.  Anchor 1 matches the GT better (force-matching claims
  // anchor 1, not anchor 0, keeping anchor 0's label observable).
  std::vector<Box> anchors = {Box{0, 0, 10, 10}, Box{0, 0, 10, 5}};
  const auto t =
      assign_anchors(anchors, {gt(0, 0, 10, 4.5f, 1)}, AssignConfig{});
  EXPECT_EQ(t[0].label, 0);
  EXPECT_EQ(t[1].label, 2);  // fg via threshold (IoU 0.9) and force-match
}

TEST(Assign, CustomIgnoreBandStillWorks) {
  // With an explicit band [0.4, 0.5), the same near miss becomes ignored
  // (the conventional single-stage setting remains available).
  AssignConfig cfg;
  cfg.bg_iou = 0.4f;
  std::vector<Box> anchors = {Box{0, 0, 10, 10}, Box{0, 0, 10, 5}};
  const auto t = assign_anchors(anchors, {gt(0, 0, 10, 4.5f, 1)}, cfg);
  EXPECT_EQ(t[0].label, -1);
  EXPECT_EQ(t[1].label, 2);
}

TEST(Assign, ForceMatchGivesEveryGtAnAnchor) {
  // The GT box overlaps no anchor above fg threshold, but the closest anchor
  // must still be claimed.
  std::vector<Box> anchors = {Box{0, 0, 8, 8}, Box{40, 40, 48, 48}};
  const auto t =
      assign_anchors(anchors, {gt(2, 2, 20, 20, 5)}, AssignConfig{});
  EXPECT_EQ(t[0].label, 6);
  EXPECT_EQ(t[0].matched_gt, 0);
}

TEST(Assign, AnchorPicksHighestIouGt) {
  std::vector<Box> anchors = {Box{0, 0, 10, 10}};
  std::vector<GtBox> gts = {gt(0, 0, 10, 8, 1), gt(0, 0, 10, 10, 2)};
  const auto t = assign_anchors(anchors, gts, AssignConfig{});
  EXPECT_EQ(t[0].label, 3);  // class 2
  EXPECT_EQ(t[0].matched_gt, 1);
}

TEST(Assign, RegressionTargetMatchesEncode) {
  std::vector<Box> anchors = {Box{0, 0, 10, 10}};
  GtBox g = gt(1, 1, 11, 11, 0);
  const auto t = assign_anchors(anchors, {g}, AssignConfig{});
  ASSERT_EQ(t[0].label, 1);
  const auto expected = encode_box(Box::from_gt(g), anchors[0]);
  for (int d = 0; d < 4; ++d)
    EXPECT_NEAR(t[0].delta[static_cast<std::size_t>(d)],
                expected[static_cast<std::size_t>(d)], 1e-6f);
}

}  // namespace
}  // namespace ada
