#include "detection/detector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/dataset.h"
#include "detection/trainer.h"

namespace ada {
namespace {

DetectorConfig small_config(int num_classes = 5) {
  DetectorConfig cfg;
  cfg.num_classes = num_classes;
  cfg.c1 = 6;
  cfg.c2 = 10;
  cfg.c3 = 16;
  return cfg;
}

TEST(Detector, ForwardFeatureShape) {
  Rng rng(1);
  Detector det(small_config(), &rng);
  Tensor img = Tensor::chw(3, 64, 80);
  const Tensor& feat = det.forward(img);
  EXPECT_EQ(feat.c(), 16);
  EXPECT_EQ(feat.h(), 8);   // stride 8
  EXPECT_EQ(feat.w(), 10);
}

TEST(Detector, DetectReturnsBoundedOutput) {
  Rng rng(2);
  DetectorConfig cfg = small_config();
  cfg.top_k = 10;
  Detector det(cfg, &rng);
  Tensor img = Tensor::chw(3, 48, 64);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = rng.uniform();
  const DetectionOutput out = det.detect(img);
  EXPECT_LE(static_cast<int>(out.detections.size()), 10);
  EXPECT_EQ(out.image_h, 48);
  EXPECT_EQ(out.image_w, 64);
  for (const Detection& d : out.detections) {
    EXPECT_GE(d.class_id, 0);
    EXPECT_LT(d.class_id, cfg.num_classes);
    EXPECT_GE(d.score, cfg.score_threshold);
    EXPECT_LE(d.score, 1.0f);
    EXPECT_GE(d.box.x1, 0.0f);
    EXPECT_LE(d.box.x2, 63.0f);
    EXPECT_EQ(d.probs.size(), static_cast<std::size_t>(cfg.num_classes + 1));
  }
}

TEST(Detector, DetectionsScoreSorted) {
  Rng rng(3);
  Detector det(small_config(), &rng);
  Tensor img = Tensor::chw(3, 48, 64);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = rng.uniform();
  const DetectionOutput out = det.detect(img);
  for (std::size_t i = 1; i < out.detections.size(); ++i)
    EXPECT_GE(out.detections[i - 1].score, out.detections[i].score);
}

TEST(Detector, TrainStepReducesLossOnFixedImage) {
  Rng rng(4);
  Detector det(small_config(3), &rng);
  // One synthetic image with a single centered box.
  Tensor img = Tensor::chw(3, 48, 64);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = rng.uniform();
  // Paint a bright square where the object is.
  for (int c = 0; c < 3; ++c)
    for (int i = 16; i < 32; ++i)
      for (int j = 24; j < 40; ++j) img.at(0, c, i, j) = 1.0f;
  GtBox g;
  g.x1 = 24; g.y1 = 16; g.x2 = 40; g.y2 = 32; g.class_id = 1;

  Sgd::Options opt_cfg;
  opt_cfg.lr = 1e-3f;
  Sgd opt(det.parameters(), opt_cfg);
  Rng sample_rng(5);
  const float first = det.train_step(img, {g}, &opt, &sample_rng);
  float last = first;
  for (int i = 0; i < 60; ++i) last = det.train_step(img, {g}, &opt, &sample_rng);
  EXPECT_LT(last, first * 0.7f) << "training failed to reduce loss";
}

TEST(Detector, ComputeLossIsFiniteWithoutGt) {
  Rng rng(6);
  Detector det(small_config(), &rng);
  Tensor img = Tensor::chw(3, 48, 64);
  Rng sample_rng(7);
  const float loss = det.compute_loss(img, {}, &sample_rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GE(loss, 0.0f);
}

TEST(Detector, ForwardMacsDecreaseWithScale) {
  Rng rng(8);
  Detector det(small_config(), &rng);
  const long long big = det.forward_macs(150, 200);
  const long long small = det.forward_macs(60, 80);
  EXPECT_GT(big, small);
  // Roughly area-proportional: (150*200)/(60*80) = 6.25.
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 6.25, 1.5);
}

TEST(Detector, DetectFromFeaturesMatchesDetect) {
  Rng rng(9);
  Detector det(small_config(), &rng);
  Tensor img = Tensor::chw(3, 48, 64);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = rng.uniform();
  const DetectionOutput a = det.detect(img);
  const Tensor feat = det.forward(img);  // copy features
  const DetectionOutput b = det.detect_from_features(feat, 48, 64);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_NEAR(a.detections[i].score, b.detections[i].score, 1e-5f);
    EXPECT_NEAR(a.detections[i].box.x1, b.detections[i].box.x1, 1e-3f);
  }
}

TEST(Detector, ParameterCountIsStable) {
  Rng rng(10);
  Detector det(small_config(), &rng);
  auto params = det.parameters();
  EXPECT_FALSE(params.empty());
  const std::size_t n = param_count(params);
  // conv1 (6*3*9+6) + conv2 (10*6*9+10) + conv3 (16*10*9+16)
  // + cls head (6 anchors * 6 classes... ) -- just check nonzero & stable.
  EXPECT_GT(n, 1000u);
  Rng rng2(10);
  Detector det2(small_config(), &rng2);
  EXPECT_EQ(param_count(det2.parameters()), n);
}

TEST(Detector, ConfigFingerprintDiscriminates) {
  DetectorConfig a = small_config();
  DetectorConfig b = small_config();
  b.c3 = 32;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Trainer, TrainOrLoadUsesCache) {
  const Dataset ds = Dataset::synth_vid(1, 1, 123);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  dcfg.c1 = 4; dcfg.c2 = 6; dcfg.c3 = 8;
  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.train_scales = {240};

  const std::string cache =
      (std::filesystem::temp_directory_path() / "ada_cache_test").string();
  std::filesystem::remove_all(cache);
  auto det1 = train_or_load_detector(ds, dcfg, tcfg, cache);
  auto det2 = train_or_load_detector(ds, dcfg, tcfg, cache);
  // Same weights after cache round trip.
  auto p1 = det1->parameters();
  auto p2 = det2->parameters();
  const auto f1 = flatten_params(p1);
  const auto f2 = flatten_params(p2);
  EXPECT_EQ(f1, f2);
  std::filesystem::remove_all(cache);
}

}  // namespace
}  // namespace ada
