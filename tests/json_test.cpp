#include "util/json.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter a;
  a.begin_object().end_object();
  EXPECT_EQ(a.str(), "{}");
  EXPECT_TRUE(a.complete());
  JsonWriter b;
  b.begin_array().end_array();
  EXPECT_EQ(b.str(), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues) {
  JsonWriter j;
  j.begin_object();
  j.key("name").value("adascale");
  j.key("scale").value(600);
  j.key("map").value(0.755);
  j.key("fast").value(true);
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"name\":\"adascale\",\"scale\":600,\"map\":0.755,"
            "\"fast\":true}");
}

TEST(JsonWriter, NestedContainersGetCommasRight) {
  JsonWriter j;
  j.begin_object();
  j.key("rows").begin_array();
  j.begin_object().key("a").value(1).end_object();
  j.begin_object().key("a").value(2).end_object();
  j.end_array();
  j.key("n").value(2);
  j.end_object();
  EXPECT_EQ(j.str(), "{\"rows\":[{\"a\":1},{\"a\":2}],\"n\":2}");
  EXPECT_TRUE(j.complete());
}

TEST(JsonWriter, ArrayOfNumbersSeparatedByCommas) {
  JsonWriter j;
  j.begin_array();
  j.value(1).value(2).value(3);
  j.end_array();
  EXPECT_EQ(j.str(), "[1,2,3]");
}

TEST(JsonWriter, IncompleteDocumentReportsIncomplete) {
  JsonWriter j;
  j.begin_object();
  EXPECT_FALSE(j.complete());
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter j;
  j.begin_array();
  j.value(std::numeric_limits<double>::infinity());
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.end_array();
  EXPECT_EQ(j.str(), "[null,null]");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace ada
