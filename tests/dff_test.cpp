#include "video/dff.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace ada {
namespace {

struct DffFixture : public ::testing::Test {
  DffFixture()
      : dataset(Dataset::synth_vid(1, 1, 9)),
        renderer(dataset.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset.catalog().num_classes();
    dcfg.c1 = 4; dcfg.c2 = 6; dcfg.c3 = 8;
    Rng rng(5);
    detector = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = 8;
    rcfg.stream_channels = 4;
    regressor = std::make_unique<ScaleRegressor>(rcfg, &rng);
  }

  Dataset dataset;
  Renderer renderer;
  std::unique_ptr<Detector> detector;
  std::unique_ptr<ScaleRegressor> regressor;
};

TEST_F(DffFixture, KeyFramePattern) {
  DffConfig cfg;
  cfg.key_interval = 4;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const DffFrameOutput out = p.process(frames[f]);
    EXPECT_EQ(out.is_key, f % 4 == 0) << "frame " << f;
  }
}

TEST_F(DffFixture, NonKeyFramesSkipBackbone) {
  DffConfig cfg;
  cfg.key_interval = 3;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  for (std::size_t f = 0; f < 6; ++f) {
    const DffFrameOutput out = p.process(frames[f]);
    if (out.is_key) {
      EXPECT_GT(out.backbone_ms, 0.0);
      EXPECT_EQ(out.flow_ms, 0.0);
    } else {
      EXPECT_EQ(out.backbone_ms, 0.0);
      EXPECT_GT(out.flow_ms, 0.0);
    }
  }
}

TEST_F(DffFixture, NonKeyCheaperThanKey) {
  DffConfig cfg;
  cfg.key_interval = 5;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  double key_ms = 0, nonkey_ms = 0;
  int keys = 0, nonkeys = 0;
  for (const Scene& frame : frames) {
    const DffFrameOutput out = p.process(frame);
    if (out.is_key) {
      key_ms += out.total_ms();
      ++keys;
    } else {
      nonkey_ms += out.total_ms();
      ++nonkeys;
    }
  }
  ASSERT_GT(keys, 0);
  ASSERT_GT(nonkeys, 0);
  EXPECT_LT(nonkey_ms / nonkeys, key_ms / keys);
}

TEST_F(DffFixture, FixedScaleWithoutRegressor) {
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                DffConfig{}, ScaleSet::reg_default(), 480);
  for (const Scene& frame : dataset.val_snippets()[0].frames) {
    const DffFrameOutput out = p.process(frame);
    EXPECT_EQ(out.scale_used, 480);
  }
}

TEST_F(DffFixture, AdaScaleChangesScaleOnlyAtKeyFrames) {
  DffConfig cfg;
  cfg.key_interval = 3;
  DffPipeline p(detector.get(), regressor.get(), &renderer,
                dataset.scale_policy(), cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  int last_scale = -1;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const DffFrameOutput out = p.process(frames[f]);
    if (!out.is_key && last_scale >= 0) {
      EXPECT_EQ(out.scale_used, last_scale) << "scale changed mid-interval";
    }
    last_scale = out.scale_used;
    EXPECT_GE(out.scale_used, 128);
    EXPECT_LE(out.scale_used, 600);
  }
}

TEST_F(DffFixture, NonPositiveKeyIntervalClampsToEveryFrameKey) {
  // Regression: key_interval <= 0 used to hit a modulo-by-zero; it now
  // clamps to 1, i.e. the backbone runs on every frame.
  DffConfig cfg;
  cfg.key_interval = 0;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  for (std::size_t f = 0; f < 3; ++f) {
    const DffFrameOutput out = p.process(frames[f]);
    EXPECT_TRUE(out.is_key) << "frame " << f;
  }
}

TEST_F(DffFixture, ResetStartsNewKeyInterval) {
  DffConfig cfg;
  cfg.key_interval = 4;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const auto& frames = dataset.val_snippets()[0].frames;
  p.process(frames[0]);
  p.process(frames[1]);
  p.reset();
  const DffFrameOutput out = p.process(frames[2]);
  EXPECT_TRUE(out.is_key);
}

TEST_F(DffFixture, WarpedDetectionsSimilarToFullOnStaticScene) {
  // A static scene means zero flow: warped features equal key features, so
  // non-key detections must match key detections exactly.
  Scene static_scene = dataset.val_snippets()[0].frames[0];
  DffConfig cfg;
  cfg.key_interval = 2;
  DffPipeline p(detector.get(), nullptr, &renderer, dataset.scale_policy(),
                cfg, ScaleSet::reg_default());
  const DffFrameOutput key = p.process(static_scene);
  const DffFrameOutput warped = p.process(static_scene);
  ASSERT_FALSE(warped.is_key);
  ASSERT_EQ(key.detections.detections.size(),
            warped.detections.detections.size());
  for (std::size_t i = 0; i < key.detections.detections.size(); ++i) {
    EXPECT_NEAR(key.detections.detections[i].score,
                warped.detections.detections[i].score, 0.05f);
  }
}

}  // namespace
}  // namespace ada
