// End-to-end integration: train a small detector + regressor on a tiny
// SynthVID split and verify the whole AdaScale methodology holds together:
// the detector learns to detect, the optimal-scale metric produces in-range
// labels, the regressor trains, and Algorithm 1 runs with sane evaluation
// output through the experiment harness.
//
// Kept deliberately small (a few seconds); the statistically meaningful
// numbers come from the bench binaries.
#include <gtest/gtest.h>

#include <filesystem>

#include "experiments/harness.h"

namespace ada {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  // One harness shared by all integration tests (training happens once).
  static Harness* harness() {
    static Harness* h = [] {
      HarnessSizes sizes;
      sizes.train_snippets = 8;
      sizes.val_snippets = 3;
      sizes.seed = 555;
      // Shared disk cache: the first integration test in the suite trains
      // (about two minutes), the rest load instantly.  ctest runs these
      // serially, so there is no cache race.
      return new Harness(
          Dataset::synth_vid(sizes.train_snippets, sizes.val_snippets,
                             sizes.seed),
          "/tmp/ada_integration_cache");
    }();
    return h;
  }
};

TEST_F(IntegrationFixture, DetectorLearnsToDetect) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  MethodRun run = h->evaluate("MS/SS", h->run_fixed(det, 600));
  // An untrained detector gets ~0 mAP; a trained one must clear a floor.
  EXPECT_GT(run.eval.map, 0.15f) << "detector failed to learn";
  EXPECT_GT(run.mean_ms, 0.0);
}

TEST_F(IntegrationFixture, OptimalScaleLabelsAreInRange) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  const Renderer renderer = h->dataset().make_renderer();
  auto frames = h->dataset().train_frames();
  frames.resize(6);
  const auto labels = generate_optimal_scale_labels(
      det, renderer, h->dataset().scale_policy(), frames,
      ScaleSet::reg_default(), OptimalScaleConfig{});
  ASSERT_EQ(labels.size(), 6u);
  for (int m : labels) EXPECT_TRUE(ScaleSet::reg_default().contains(m));
}

TEST_F(IntegrationFixture, MetricIsDeterministic) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  const Renderer renderer = h->dataset().make_renderer();
  const Scene& scene = h->dataset().val_snippets()[0].frames[0];
  const auto m1 =
      compute_scale_metric(det, renderer, h->dataset().scale_policy(), scene,
                           ScaleSet::reg_default(), OptimalScaleConfig{});
  const auto m2 =
      compute_scale_metric(det, renderer, h->dataset().scale_policy(), scene,
                           ScaleSet::reg_default(), OptimalScaleConfig{});
  EXPECT_EQ(m1.optimal_scale, m2.optimal_scale);
  EXPECT_EQ(m1.n_fg, m2.n_fg);
}

TEST_F(IntegrationFixture, AdaScaleRunsAndStaysInRange) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  ScaleRegressor* reg = h->regressor(ScaleSet::train_default(),
                                     h->default_regressor_config());
  MethodRun run = h->evaluate("MS/AdaScale",
                              h->run_adascale(det, reg, ScaleSet::reg_default()));
  EXPECT_FALSE(run.used_scales.empty());
  for (int s : run.used_scales) {
    EXPECT_GE(s, 128);
    EXPECT_LE(s, 600);
  }
  EXPECT_GT(run.eval.map, 0.05f);
}

TEST_F(IntegrationFixture, MultiScaleSlowestRandomBetween) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  MethodRun ss = h->evaluate("SS", h->run_fixed(det, 600));
  MethodRun ms = h->evaluate("MS", h->run_multiscale(det, ScaleSet::reg_default()));
  MethodRun rnd = h->evaluate("Rnd", h->run_random(det, ScaleSet::reg_default(), 1));
  // Multi-shot testing runs every scale: strictly slower than single-scale.
  EXPECT_GT(ms.mean_ms, ss.mean_ms * 1.2);
  // Random scaling is cheaper than always-600.
  EXPECT_LT(rnd.mean_ms, ss.mean_ms * 1.05);
}

TEST_F(IntegrationFixture, DffFasterThanFullPerFrame) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  DffConfig cfg;
  cfg.key_interval = 5;
  MethodRun dff = h->evaluate("DFF", h->run_dff(det, nullptr, cfg,
                                                ScaleSet::reg_default()));
  MethodRun full = h->evaluate("full", h->run_fixed(det, 600));
  EXPECT_LT(dff.mean_ms, full.mean_ms);
}

TEST_F(IntegrationFixture, SeqNmsDoesNotCrashAndKeepsMapReasonable) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  auto runs = h->run_fixed(det, 600);
  MethodRun base = h->evaluate("base", runs);
  SeqNmsConfig cfg;
  MethodRun seq = h->evaluate("seqnms", h->run_fixed(det, 600), &cfg);
  // Seq-NMS may help or mildly hurt on tiny data, but must stay in the same
  // ballpark and not destroy the evaluation.
  EXPECT_GT(seq.eval.map, base.eval.map * 0.5f);
}

TEST_F(IntegrationFixture, EvaluateReportsScaleHistogramAndMacs) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  MethodRun run = h->evaluate("SS", h->run_fixed(det, 240));
  for (int s : run.used_scales) EXPECT_EQ(s, 240);
  EXPECT_GT(run.mean_macs, 0.0);
  EXPECT_GT(run.fps, 0.0);
}


TEST_F(IntegrationFixture, OracleRunnerUsesPerFrameOptimalScales) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  MethodRun oracle = h->evaluate("oracle", h->run_oracle(det, ScaleSet::reg_default()));
  ASSERT_FALSE(oracle.used_scales.empty());
  for (int s : oracle.used_scales)
    EXPECT_TRUE(ScaleSet::reg_default().contains(s));
  // The oracle picks per-frame argmin scales, so it must not be slower than
  // always running 600 (it can only choose 600 or cheaper).
  MethodRun fixed = h->evaluate("fixed", h->run_fixed(det, 600));
  EXPECT_LE(oracle.mean_ms, fixed.mean_ms * 1.1);
}

TEST_F(IntegrationFixture, SameFrameVariantCostsTwoDetections) {
  Harness* h = harness();
  Detector* det = h->detector(ScaleSet::train_default());
  ScaleRegressor* reg = h->regressor(ScaleSet::train_default(),
                                     h->default_regressor_config());
  MethodRun lagged = h->evaluate(
      "lagged", h->run_adascale(det, reg, ScaleSet::reg_default()));
  MethodRun same = h->evaluate(
      "same", h->run_adascale_same_frame(det, reg, ScaleSet::reg_default()));
  // The lag-free variant re-detects every frame: clearly slower.
  EXPECT_GT(same.mean_ms, lagged.mean_ms * 1.2);
  for (int s : same.used_scales) {
    EXPECT_GE(s, 128);
    EXPECT_LE(s, 600);
  }
}

TEST_F(IntegrationFixture, CorruptCacheFallsBackToTraining) {
  // A truncated cache file must be detected and retrained, not crash or
  // silently load garbage.
  const std::string dir = "/tmp/ada_corrupt_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Dataset ds = Dataset::synth_vid(1, 1, 42);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  TrainConfig tcfg;
  tcfg.epochs = 1;
  auto first = train_or_load_detector(ds, dcfg, tcfg, dir);
  ASSERT_NE(first, nullptr);

  // Truncate every cache file in the directory.
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    std::filesystem::resize_file(entry.path(), 8);

  auto second = train_or_load_detector(ds, dcfg, tcfg, dir);
  ASSERT_NE(second, nullptr);
  // Retrained deterministically: weights match the first training run.
  auto pa = first->parameters();
  auto pb = second->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t k = 0; k < pa[i]->value.size(); ++k)
      ASSERT_EQ(pa[i]->value[k], pb[i]->value[k]);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ada
