#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ada {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    float v = rng.uniform();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    float v = rng.uniform(-2.5f, 3.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 3.5f);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25f)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, WeightedChoiceFollowsWeights) {
  Rng rng(23);
  std::vector<float> w = {1.0f, 3.0f, 0.0f};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_choice(w)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
  EXPECT_EQ(counts[2], 0);
}

TEST(Rng, WeightedChoiceAllZeroFallsBackUniform) {
  Rng rng(29);
  std::vector<float> w = {0.0f, 0.0f};
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 1000; ++i) ++counts[rng.weighted_choice(w)];
  EXPECT_GT(counts[0], 300);
  EXPECT_GT(counts[1], 300);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkedGeneratorsAreIndependent) {
  Rng parent(37);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysBelowBound) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

}  // namespace
}  // namespace ada
