// Cross-stream batch scheduler: batched serving must be a pure throughput
// optimization — per-stream outputs memcmp-equal to per-stream serial
// execution no matter how frames coalesce into batches — with sane
// accounting and a single-stream fallback that never waits.
#include "runtime/batch_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "data/dataset.h"
#include "runtime/multi_stream.h"
#include "util/clock.h"

namespace ada {
namespace {

class BatchSchedulerTest : public ::testing::Test {
 protected:
  BatchSchedulerTest()
      : dataset_(Dataset::synth_vid(1, 4, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  std::vector<const Snippet*> val_jobs() const {
    std::vector<const Snippet*> jobs;
    for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);
    return jobs;
  }

  static void expect_equal_outputs(const MultiStreamResult& a,
                                   const MultiStreamResult& b) {
    ASSERT_EQ(a.streams.size(), b.streams.size());
    EXPECT_EQ(a.total_frames, b.total_frames);
    for (std::size_t s = 0; s < a.streams.size(); ++s) {
      const StreamOutput& x = a.streams[s];
      const StreamOutput& y = b.streams[s];
      ASSERT_EQ(x.frames.size(), y.frames.size());
      for (std::size_t f = 0; f < x.frames.size(); ++f) {
        EXPECT_EQ(x.frames[f].scale_used, y.frames[f].scale_used);
        EXPECT_EQ(x.frames[f].next_scale, y.frames[f].next_scale);
        EXPECT_EQ(x.frames[f].regressed_t, y.frames[f].regressed_t);
        const auto& dx = x.frames[f].detections.detections;
        const auto& dy = y.frames[f].detections.detections;
        ASSERT_EQ(dx.size(), dy.size());
        for (std::size_t d = 0; d < dx.size(); ++d) {
          EXPECT_EQ(dx[d].class_id, dy[d].class_id);
          EXPECT_EQ(dx[d].score, dy[d].score);
          EXPECT_EQ(dx[d].box.x1, dy[d].box.x1);
          EXPECT_EQ(dx[d].box.y1, dy[d].box.y1);
          EXPECT_EQ(dx[d].box.x2, dy[d].box.x2);
          EXPECT_EQ(dx[d].box.y2, dy[d].box.y2);
        }
      }
    }
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(BatchSchedulerTest, BatchedRunnerMatchesSerialBitForBit) {
  // Whatever batches form under scheduling jitter, the outputs must be the
  // bits the serial per-stream run produces — the scale trajectory feeds
  // back into the next frame, so even a 1-ulp detour would cascade into
  // different scales and visibly different detections.
  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            4);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.contexts = 2;
  MultiStreamResult bat = batched.run_batched(jobs, cfg);
  MultiStreamResult ref = serial.run_serial(jobs);
  EXPECT_TRUE(bat.batched);
  expect_equal_outputs(bat, ref);
  // Every frame went through the scheduler.
  EXPECT_EQ(bat.batch_stats.frames, bat.total_frames);
}

TEST_F(BatchSchedulerTest, OddBatchKnobsStillMatchSerial) {
  // max_batch not dividing the stream count + a single context: forces
  // promotions (leftover requests become the next bucket generation) and
  // context contention.
  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            4);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.contexts = 1;
  cfg.max_wait_ms = 0.5;
  MultiStreamResult bat = batched.run_batched(jobs, cfg);
  MultiStreamResult ref = serial.run_serial(jobs);
  expect_equal_outputs(bat, ref);
}

TEST_F(BatchSchedulerTest, SnappedScalesStillMatchSerialAndFormBatches) {
  // The serving configuration the benches record: target scales snapped to
  // the regressor set so same-scale buckets fill.  Snapping applies in both
  // modes, so bit-equality must hold — and with 4 streams starting at the
  // same init scale, real multi-frame batches must actually form.
  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            4, /*init_scale=*/600, /*snap_scales=*/true);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4, /*init_scale=*/600, /*snap_scales=*/true);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  MultiStreamResult bat = batched.run_batched(jobs, cfg);
  MultiStreamResult ref = serial.run_serial(jobs);
  expect_equal_outputs(bat, ref);
  // Snapped scales land on set members only.
  for (const StreamOutput& s : bat.streams)
    for (const AdaFrameOutput& f : s.frames)
      EXPECT_TRUE(ScaleSet::reg_default().contains(f.next_scale))
          << f.next_scale;
  EXPECT_GT(bat.batch_stats.mean_batch(), 1.0)
      << "4 same-scale streams should coalesce into multi-frame batches";
}

TEST_F(BatchSchedulerTest, SingleStreamFallsBackInline) {
  MultiStreamRunner runner(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           1);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           1);
  const auto jobs = val_jobs();
  MultiStreamResult bat = runner.run_batched(jobs);
  MultiStreamResult ref = serial.run_serial(jobs);
  expect_equal_outputs(bat, ref);
  // One attached stream → every frame takes the no-wait inline path.
  EXPECT_EQ(bat.batch_stats.single_fallbacks, bat.total_frames);
  EXPECT_EQ(bat.batch_stats.batches, 0);
}

TEST_F(BatchSchedulerTest, StatsAccountingIsConsistent) {
  MultiStreamRunner runner(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  MultiStreamResult bat = runner.run_batched(jobs, cfg);
  const BatchSchedulerStats& st = bat.batch_stats;
  EXPECT_EQ(st.frames, bat.total_frames);
  long hist_frames = 0, hist_batches = 0;
  for (std::size_t b = 0; b < st.batch_size_hist.size(); ++b) {
    hist_frames += st.batch_size_hist[b] * static_cast<long>(b);
    hist_batches += st.batch_size_hist[b];
  }
  EXPECT_EQ(hist_batches, st.batches);
  EXPECT_EQ(hist_frames + st.single_fallbacks, st.frames);
  if (st.batches > 0) {
    EXPECT_GE(st.mean_batch(), 1.0);
    EXPECT_LE(st.mean_batch(), static_cast<double>(cfg.max_batch));
  }
}

TEST_F(BatchSchedulerTest, LoneEarlyFrameFlushesOnTimeout) {
  // The max_wait_ms safety valve, driven deterministically: two streams are
  // attached but only one ever submits, so neither the bucket-full nor the
  // all-streams-blocked trigger can fire — before the injected clock
  // existed this path silently depended on real elapsed time and was
  // untestable.  The lone frame must flush as a batch of ONE once the
  // (manual) clock passes the deadline, not wait forever for a peer.
  ManualClock clock;
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 25.0;
  BatchScheduler sched(detector_.get(), regressor_.get(), cfg, &clock);
  sched.attach();
  sched.attach();  // the peer that never submits

  const Scene& scene = dataset_.val_snippets()[0].frames[0];
  const Tensor img =
      renderer_.render_at_scale(scene, 240, dataset_.scale_policy());

  std::atomic<bool> done{false};
  BatchSubmitResult result;
  std::thread stream([&] {
    result = sched.submit(img);
    done.store(true);
  });

  // Progress loop, not a timed wait: each pass advances virtual time past
  // any deadline the leader could be holding and re-wakes it.  Termination
  // needs no timing assumption — once the leader is parked in submit(), one
  // advance+poke suffices.
  while (!done.load()) {
    clock.advance(cfg.max_wait_ms + 1.0);
    sched.poke();
    std::this_thread::yield();
  }
  stream.join();
  sched.detach();
  sched.detach();

  EXPECT_EQ(result.batch_size, 1);
  const BatchSchedulerStats st = sched.stats();
  EXPECT_EQ(st.frames, 1);
  EXPECT_EQ(st.batches, 1);
  EXPECT_EQ(st.single_fallbacks, 0);  // it went through the batch path
  ASSERT_GT(st.batch_size_hist.size(), 1u);
  EXPECT_EQ(st.batch_size_hist[1], 1);

  // And the flushed result carries real model output (same bits as a
  // direct single-image call).
  DetectionOutput direct = detector_->detect(img);
  ASSERT_EQ(result.detections.detections.size(), direct.detections.size());
  for (std::size_t d = 0; d < direct.detections.size(); ++d)
    EXPECT_EQ(result.detections.detections[d].score,
              direct.detections[d].score);
}

TEST_F(BatchSchedulerTest, DirectSubmitMatchesDetectorOutput) {
  // Without attach(), submit() is the inline single-image path; its result
  // must equal calling the models directly.
  BatchSchedulerConfig cfg;
  BatchScheduler sched(detector_.get(), regressor_.get(), cfg);
  const Scene& scene = dataset_.val_snippets()[0].frames[0];
  const Tensor img =
      renderer_.render_at_scale(scene, 240, dataset_.scale_policy());
  BatchSubmitResult r = sched.submit(img);
  EXPECT_EQ(r.batch_size, 1);

  DetectionOutput direct = detector_->detect(img);
  const float t = regressor_->predict(detector_->features());
  EXPECT_EQ(r.regressed_t, t);
  ASSERT_EQ(r.detections.detections.size(), direct.detections.size());
  for (std::size_t d = 0; d < direct.detections.size(); ++d) {
    EXPECT_EQ(r.detections.detections[d].score, direct.detections[d].score);
    EXPECT_EQ(r.detections.detections[d].box.x1, direct.detections[d].box.x1);
  }
}

TEST_F(BatchSchedulerTest, DetachDuringOpenBatchFlushesWithoutLoss) {
  // Stream churn against an OPEN batch: two streams are queued in the same
  // bucket while a third is attached but idle, so the leader cannot close
  // (not full, all-blocked needs 3, and the deadline is effectively
  // infinite).  When the idle stream detaches mid-batch, the all-blocked
  // trigger must re-evaluate against the NEW attached count and flush the
  // batch-of-two — detaching must never strand or drop frames already
  // queued by other streams.  Every interleaving of the detach with the two
  // enqueues is legal; none may deadlock.
  ManualClock clock;
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 1e9;  // the timeout valve must play no part here
  BatchScheduler sched(detector_.get(), regressor_.get(), cfg, &clock);
  sched.attach();
  sched.attach();
  sched.attach();  // the idle peer that will churn out

  const Scene& s0 = dataset_.val_snippets()[0].frames[0];
  const Scene& s1 = dataset_.val_snippets()[0].frames[1];
  const Tensor img0 =
      renderer_.render_at_scale(s0, 240, dataset_.scale_policy());
  const Tensor img1 =
      renderer_.render_at_scale(s1, 240, dataset_.scale_policy());

  BatchSubmitResult r0, r1;
  std::thread t0([&] { r0 = sched.submit(img0); });
  std::thread t1([&] { r1 = sched.submit(img1); });
  // Wait until the bucket is actually open (>= 1 request pending) so the
  // detach usually lands mid-batch; correctness does not depend on it.
  while (sched.next_flush_deadline_ms() < 0.0) std::this_thread::yield();
  sched.detach();  // idle peer leaves -> all-blocked becomes 2 >= 2
  t0.join();
  t1.join();
  sched.detach();
  sched.detach();

  const BatchSchedulerStats st = sched.stats();
  EXPECT_EQ(st.frames, 2);  // nothing dropped
  EXPECT_EQ(st.single_fallbacks, 0);
  EXPECT_EQ(st.batches, 1);
  ASSERT_GT(st.batch_size_hist.size(), 2u);
  EXPECT_EQ(st.batch_size_hist[2], 1) << "churn should flush one batch of 2";

  // Both stranded-then-flushed frames carry real, correct model output.
  const DetectionOutput d0 = detector_->detect(img0);
  const DetectionOutput d1 = detector_->detect(img1);
  ASSERT_EQ(r0.detections.detections.size(), d0.detections.size());
  ASSERT_EQ(r1.detections.detections.size(), d1.detections.size());
  for (std::size_t d = 0; d < d0.detections.size(); ++d)
    EXPECT_EQ(r0.detections.detections[d].score, d0.detections[d].score);
  for (std::size_t d = 0; d < d1.detections.size(); ++d)
    EXPECT_EQ(r1.detections.detections[d].score, d1.detections[d].score);
}

TEST_F(BatchSchedulerTest, NextFlushDeadlineDrivesIdleAttachedPeer) {
  // The manual-clock churn deadlock, fixed by the next_flush_deadline_ms()
  // seam: with a peer attached but idle, a lone leader blocks with NO timed
  // wait (injected clocks cannot drive one), so a clock driver that does
  // not know the bucket's deadline would advance time forever without ever
  // crossing it.  The seam exposes exactly the instant to advance_to();
  // after a detach/re-attach churn cycle the second generation must be
  // driven the same way.
  ManualClock clock;
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 25.0;
  BatchScheduler sched(detector_.get(), regressor_.get(), cfg, &clock);
  sched.attach();
  sched.attach();  // idle peer: blocks the all-blocked trigger

  const Scene& scene = dataset_.val_snippets()[0].frames[0];
  const Tensor img =
      renderer_.render_at_scale(scene, 240, dataset_.scale_policy());
  EXPECT_LT(sched.next_flush_deadline_ms(), 0.0)
      << "no pending frames -> no deadline";

  const DetectionOutput direct = detector_->detect(img);
  for (int generation = 0; generation < 2; ++generation) {
    std::atomic<bool> done{false};
    BatchSubmitResult result;
    std::thread stream([&] {
      result = sched.submit(img);
      done.store(true);
    });
    while (!done.load()) {
      const double deadline = sched.next_flush_deadline_ms();
      if (deadline >= 0.0) {
        clock.advance_to(deadline);
        sched.poke();
      }
      std::this_thread::yield();
    }
    stream.join();
    EXPECT_EQ(result.batch_size, 1);
    ASSERT_EQ(result.detections.detections.size(), direct.detections.size());
    for (std::size_t d = 0; d < direct.detections.size(); ++d)
      EXPECT_EQ(result.detections.detections[d].score,
                direct.detections[d].score);
    // Churn between generations: the submitting stream leaves and a fresh
    // one replaces it; the idle peer stays attached throughout.
    sched.detach();
    sched.attach();
  }
  sched.detach();
  sched.detach();

  const BatchSchedulerStats st = sched.stats();
  EXPECT_EQ(st.frames, 2);
  EXPECT_EQ(st.batches, 2);
  ASSERT_GT(st.batch_size_hist.size(), 1u);
  EXPECT_EQ(st.batch_size_hist[1], 2);
}

TEST_F(BatchSchedulerTest, RandomChurnKeepsBitsAndAccountingIntact) {
  // Seeded random attach/submit/detach churn through ONE long-lived
  // scheduler: varying numbers of streams join, submit a few frames at
  // mixed scales, and leave, across several rounds (so the attached count
  // swings 0 -> k -> 0 repeatedly while batches form).  Every single
  // result must be bit-equal to a direct detector call on the same image,
  // and the final accounting must show every submission served.
  const Scene& s0 = dataset_.val_snippets()[0].frames[0];
  const Scene& s1 = dataset_.val_snippets()[0].frames[1];
  std::vector<Tensor> images;
  images.push_back(renderer_.render_at_scale(s0, 240, dataset_.scale_policy()));
  images.push_back(renderer_.render_at_scale(s1, 240, dataset_.scale_policy()));
  images.push_back(renderer_.render_at_scale(s0, 360, dataset_.scale_policy()));
  images.push_back(renderer_.render_at_scale(s1, 360, dataset_.scale_policy()));
  std::vector<DetectionOutput> direct;
  direct.reserve(images.size());
  for (const Tensor& img : images) direct.push_back(detector_->detect(img));

  BatchSchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.contexts = 2;
  cfg.max_wait_ms = 2.0;  // wall clock: short valve so idle peers can't stall
  BatchScheduler sched(detector_.get(), regressor_.get(), cfg);

  Rng rng(4242);
  long total = 0;
  std::atomic<long> mismatches{0};
  for (int round = 0; round < 4; ++round) {
    const int k = rng.uniform_int(1, 4);
    // Precompute each thread's image sequence on the main thread (R3: one
    // seeded Rng, no sharing across threads).
    std::vector<std::vector<int>> picks(static_cast<std::size_t>(k));
    for (auto& p : picks) {
      const int m = rng.uniform_int(1, 3);
      for (int f = 0; f < m; ++f)
        p.push_back(rng.uniform_int(0, static_cast<int>(images.size()) - 1));
      total += m;
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < k; ++t) {
      threads.emplace_back([&, t] {
        sched.attach();
        for (int idx : picks[static_cast<std::size_t>(t)]) {
          const BatchSubmitResult r =
              sched.submit(images[static_cast<std::size_t>(idx)]);
          const DetectionOutput& want = direct[static_cast<std::size_t>(idx)];
          bool ok = r.detections.detections.size() == want.detections.size();
          for (std::size_t d = 0; ok && d < want.detections.size(); ++d) {
            const Detection& a = r.detections.detections[d];
            const Detection& b = want.detections[d];
            ok = a.class_id == b.class_id && a.score == b.score &&
                 a.box.x1 == b.box.x1 && a.box.y1 == b.box.y1 &&
                 a.box.x2 == b.box.x2 && a.box.y2 == b.box.y2;
          }
          if (!ok) mismatches.fetch_add(1);
        }
        sched.detach();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  EXPECT_EQ(mismatches.load(), 0);
  const BatchSchedulerStats st = sched.stats();
  EXPECT_EQ(st.frames, total) << "churn must not drop or duplicate frames";
  long hist_frames = 0;
  for (std::size_t b = 0; b < st.batch_size_hist.size(); ++b)
    hist_frames += st.batch_size_hist[b] * static_cast<long>(b);
  EXPECT_EQ(hist_frames + st.single_fallbacks, st.frames);
}

}  // namespace
}  // namespace ada
