#include "video/seq_nms.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

EvalDetection det(float x1, float y1, float x2, float y2, int cls, float s) {
  EvalDetection d;
  d.box = Box{x1, y1, x2, y2};
  d.class_id = cls;
  d.score = s;
  return d;
}

TEST(SeqNms, EmptyInputIsNoop) {
  std::vector<std::vector<EvalDetection>> frames;
  seq_nms(&frames, SeqNmsConfig{});
  EXPECT_TRUE(frames.empty());
  frames.resize(3);
  seq_nms(&frames, SeqNmsConfig{});
  EXPECT_EQ(frames.size(), 3u);
}

TEST(SeqNms, PreservesDetectionCount) {
  std::vector<std::vector<EvalDetection>> frames(3);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.5f));
  frames[1].push_back(det(1, 1, 11, 11, 0, 0.9f));
  frames[2].push_back(det(2, 2, 12, 12, 0, 0.4f));
  frames[1].push_back(det(50, 50, 60, 60, 1, 0.7f));
  seq_nms(&frames, SeqNmsConfig{});
  EXPECT_EQ(frames[0].size() + frames[1].size() + frames[2].size(), 4u);
}

TEST(SeqNms, AverageRescoreBoostsWeakLinkedDetections) {
  // A temporally consistent track with scores {0.3, 0.9, 0.3}: after avg
  // rescoring every box on the path gets 0.5, lifting the weak ones.
  std::vector<std::vector<EvalDetection>> frames(3);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.3f));
  frames[1].push_back(det(0.5f, 0.5f, 10.5f, 10.5f, 0, 0.9f));
  frames[2].push_back(det(1, 1, 11, 11, 0, 0.3f));
  seq_nms(&frames, SeqNmsConfig{});
  EXPECT_NEAR(frames[0][0].score, 0.5f, 1e-5f);
  EXPECT_NEAR(frames[1][0].score, 0.5f, 1e-5f);
  EXPECT_NEAR(frames[2][0].score, 0.5f, 1e-5f);
}

TEST(SeqNms, MaxRescoreUsesPathMax) {
  std::vector<std::vector<EvalDetection>> frames(2);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.2f));
  frames[1].push_back(det(0, 0, 10, 10, 0, 0.8f));
  SeqNmsConfig cfg;
  cfg.rescore_avg = false;
  seq_nms(&frames, cfg);
  EXPECT_NEAR(frames[0][0].score, 0.8f, 1e-5f);
  EXPECT_NEAR(frames[1][0].score, 0.8f, 1e-5f);
}

TEST(SeqNms, UnlinkedBoxesKeepTheirScores) {
  // Far-apart boxes across frames (no IoU link) must be untouched.
  std::vector<std::vector<EvalDetection>> frames(2);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.6f));
  frames[1].push_back(det(100, 100, 110, 110, 0, 0.4f));
  seq_nms(&frames, SeqNmsConfig{});
  float s0 = -1, s1 = -1;
  for (const auto& d : frames[0]) s0 = d.score;
  for (const auto& d : frames[1]) s1 = d.score;
  EXPECT_NEAR(s0, 0.6f, 1e-5f);
  EXPECT_NEAR(s1, 0.4f, 1e-5f);
}

TEST(SeqNms, DifferentClassesAreNotLinked) {
  std::vector<std::vector<EvalDetection>> frames(2);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.2f));
  frames[1].push_back(det(0, 0, 10, 10, 1, 0.8f));
  seq_nms(&frames, SeqNmsConfig{});
  for (const auto& d : frames[0]) EXPECT_NEAR(d.score, 0.2f, 1e-5f);
  for (const auto& d : frames[1]) EXPECT_NEAR(d.score, 0.8f, 1e-5f);
}

TEST(SeqNms, PicksMaximumScorePath) {
  // Two parallel tracks; the higher-sum one is rescored first.  Track A:
  // scores 0.9/0.9; track B: 0.2/0.2.  After Seq-NMS, A boxes get 0.9, B
  // boxes 0.2 (not mixed).
  std::vector<std::vector<EvalDetection>> frames(2);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.9f));
  frames[0].push_back(det(50, 50, 60, 60, 0, 0.2f));
  frames[1].push_back(det(0, 0, 10, 10, 0, 0.9f));
  frames[1].push_back(det(50, 50, 60, 60, 0, 0.2f));
  seq_nms(&frames, SeqNmsConfig{});
  for (const auto& f : frames)
    for (const auto& d : f) {
      if (d.box.x1 < 20) EXPECT_NEAR(d.score, 0.9f, 1e-5f);
      else EXPECT_NEAR(d.score, 0.2f, 1e-5f);
    }
}

TEST(SeqNms, SameFrameOverlapsSuppressedFromLinkingButKept) {
  // Two overlapping boxes in frame 0, one track continuing in frame 1.
  std::vector<std::vector<EvalDetection>> frames(2);
  frames[0].push_back(det(0, 0, 10, 10, 0, 0.9f));
  frames[0].push_back(det(1, 1, 10, 10, 0, 0.5f));  // overlaps the first
  frames[1].push_back(det(0, 0, 10, 10, 0, 0.7f));
  seq_nms(&frames, SeqNmsConfig{});
  // All three detections still exist.
  EXPECT_EQ(frames[0].size(), 2u);
  EXPECT_EQ(frames[1].size(), 1u);
}

TEST(SeqNms, TerminatesOnManyFrames) {
  std::vector<std::vector<EvalDetection>> frames(30);
  for (int f = 0; f < 30; ++f)
    for (int k = 0; k < 8; ++k)
      frames[static_cast<std::size_t>(f)].push_back(
          det(static_cast<float>(10 * k), 0, static_cast<float>(10 * k + 9),
              9, k % 3, 0.1f * static_cast<float>(k + 1)));
  const SeqNmsReport report = seq_nms(&frames, SeqNmsConfig{});
  std::size_t total = 0;
  for (const auto& f : frames) total += f.size();
  EXPECT_EQ(total, 240u);
  // The default bound is generous; a normal workload never trips it.
  EXPECT_FALSE(report.truncated());
  EXPECT_GT(report.iterations, 0);
}

TEST(SeqNms, IterationExhaustionIsReportedAndDropsNothing) {
  // Adversarial input: many long link chains of one class, far more paths
  // than the iteration bound allows.  Before the report existed this
  // truncated silently; now it must (a) say so and (b) still return every
  // input box — stranded chains pass through with original scores.
  const int num_frames = 40;
  const int num_chains = 6;
  std::vector<std::vector<EvalDetection>> frames(
      static_cast<std::size_t>(num_frames));
  for (int f = 0; f < num_frames; ++f)
    for (int k = 0; k < num_chains; ++k) {
      // Chains sit 100 px apart (never linked or suppressed across chains);
      // within a chain, consecutive frames overlap heavily (IoU ≈ 0.9).
      const float x = static_cast<float>(100 * k) + 0.5f * static_cast<float>(f);
      frames[static_cast<std::size_t>(f)].push_back(
          det(x, 0, x + 20, 20, 0, 0.5f + 0.01f * static_cast<float>(f)));
    }

  SeqNmsConfig cfg;
  cfg.max_iterations = 2;  // < num_chains: bound must fire
  const SeqNmsReport truncated = seq_nms(&frames, cfg);
  EXPECT_TRUE(truncated.truncated());
  EXPECT_EQ(truncated.truncated_classes, 1);
  EXPECT_EQ(truncated.iterations, 2);
  std::size_t total = 0;
  for (const auto& f : frames) total += f.size();
  EXPECT_EQ(total, static_cast<std::size_t>(num_frames * num_chains))
      << "truncation must never drop detections";

  // The same input with a sufficient bound completes without truncation and
  // extracts one path per chain.
  std::vector<std::vector<EvalDetection>> frames2(
      static_cast<std::size_t>(num_frames));
  for (int f = 0; f < num_frames; ++f)
    for (int k = 0; k < num_chains; ++k) {
      const float x = static_cast<float>(100 * k) + 0.5f * static_cast<float>(f);
      frames2[static_cast<std::size_t>(f)].push_back(
          det(x, 0, x + 20, 20, 0, 0.5f + 0.01f * static_cast<float>(f)));
    }
  const SeqNmsReport full = seq_nms(&frames2, SeqNmsConfig{});
  EXPECT_FALSE(full.truncated());
  EXPECT_EQ(full.iterations, num_chains);
}

}  // namespace
}  // namespace ada
