#include "video/tracker.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

EvalDetection det(float x, float y, float size, int cls, float score) {
  EvalDetection d;
  d.box = Box{x, y, x + size, y + size};
  d.class_id = cls;
  d.score = score;
  return d;
}

TEST(OnlineTracker, FirstObservationKeepsScore) {
  OnlineTracker tracker;
  const auto out = tracker.update({det(0, 0, 10, 1, 0.8f)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0].score, 0.8f);
  EXPECT_EQ(tracker.tracks().size(), 1u);
}

TEST(OnlineTracker, StableDetectionGetsMatureBoost) {
  TrackerConfig cfg;
  cfg.mature_age = 3;
  cfg.mature_boost = 0.1f;
  OnlineTracker tracker(cfg);
  float last = 0.0f;
  for (int f = 0; f < 5; ++f) {
    const auto out = tracker.update({det(0, 0, 10, 1, 0.6f)});
    last = out[0].score;
  }
  // EMA converges to 0.6, then the mature boost lifts it above the raw score.
  EXPECT_GT(last, 0.6f);
  EXPECT_LE(last, cfg.max_score);
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_GE(tracker.tracks()[0].age, 5);
}

TEST(OnlineTracker, FlickeringFalsePositiveIsNotBoosted) {
  // A one-frame spurious detection never matures: its score is not lifted,
  // which is how track-consistency rescoring separates FPs from real
  // objects (the D&T idea).
  TrackerConfig cfg;
  OnlineTracker tracker(cfg);
  (void)tracker.update({det(0, 0, 10, 1, 0.6f)});
  const auto out =
      tracker.update({det(0, 0, 10, 1, 0.6f), det(50, 50, 8, 2, 0.9f)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[1].score, 0.9f);  // new track, unchanged
  const auto out2 = tracker.update({det(0, 0, 10, 1, 0.6f)});
  // The FP's track ages out after max_missed frames.
  for (int i = 0; i < cfg.max_missed + 1; ++i)
    (void)tracker.update({det(0, 0, 10, 1, 0.6f)});
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].class_id, 1);
  (void)out2;
}

TEST(OnlineTracker, ClassMismatchDoesNotAssociate) {
  OnlineTracker tracker;
  (void)tracker.update({det(0, 0, 10, 1, 0.7f)});
  (void)tracker.update({det(0, 0, 10, 2, 0.7f)});
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(OnlineTracker, MovingObjectStaysOneTrack) {
  TrackerConfig cfg;
  OnlineTracker tracker(cfg);
  for (int f = 0; f < 6; ++f)
    (void)tracker.update({det(static_cast<float>(2 * f), 0, 12, 3, 0.5f)});
  EXPECT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].age, 6);
}

TEST(OnlineTracker, TwoDetectionsCannotClaimOneTrack) {
  OnlineTracker tracker;
  (void)tracker.update({det(0, 0, 10, 1, 0.7f)});
  const auto out = tracker.update(
      {det(0.5f, 0, 10, 1, 0.9f), det(1.0f, 0.5f, 10, 1, 0.4f)});
  // The higher-score detection claims the track; the other spawns a new one.
  EXPECT_EQ(tracker.tracks().size(), 2u);
  EXPECT_GT(out[0].score, out[1].score);
}

TEST(OnlineTracker, ResetClearsState) {
  OnlineTracker tracker;
  (void)tracker.update({det(0, 0, 10, 1, 0.7f)});
  tracker.reset();
  EXPECT_TRUE(tracker.tracks().empty());
  const auto out = tracker.update({det(0, 0, 10, 1, 0.7f)});
  EXPECT_FLOAT_EQ(out[0].score, 0.7f);
}

TEST(TrackRescore, AppliesAcrossSnippetInPlace) {
  std::vector<std::vector<EvalDetection>> frames;
  for (int f = 0; f < 5; ++f) frames.push_back({det(0, 0, 10, 1, 0.5f)});
  track_rescore(&frames);
  // Later frames carry boosted scores; detection counts are preserved.
  ASSERT_EQ(frames.size(), 5u);
  for (const auto& f : frames) ASSERT_EQ(f.size(), 1u);
  EXPECT_GT(frames[4][0].score, 0.5f);
  EXPECT_FLOAT_EQ(frames[0][0].score, 0.5f);
}

}  // namespace
}  // namespace ada
