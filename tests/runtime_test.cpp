#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "tensor/conv2d.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ada {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == 64) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == 64; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10007);
  pool.parallel_for(10007, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, 16, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  pool.parallel_for(3, 16, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.parallel_for(64, 4, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o)
      pool.parallel_for(64, 4, [&, o](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i)
          hits[static_cast<std::size_t>(o * 64 + i)]++;
      });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(4 * 5000);
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c)
    callers.emplace_back([&, c] {
      pool.parallel_for(5000, 64, [&, c](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          hits[static_cast<std::size_t>(c * 5000 + i)]++;
      });
    });
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GlobalPool, ParallelKernelsMatchSerialBitForBit) {
  // The contract that makes the parallel runtime safe to wire into training:
  // every parallelized kernel produces exactly the serial result.  Compare a
  // conv forward+backward against ADASCALE_THREADS-independent ground truth
  // computed with a throwaway serial spec... the kernels themselves pick up
  // the global pool, so this exercises whatever thread count the environment
  // configured.
  Rng rng(42);
  ConvSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 12;
  Tensor x(1, 8, 33, 47);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform() - 0.5f;
  Tensor w(12, 8, 3, 3);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.uniform() - 0.5f;
  Tensor b(1, 12, 1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform() - 0.5f;

  Tensor y1, y2;
  conv2d_forward(spec, x, w, b, &y1);
  conv2d_forward(spec, x, w, b, &y2);
  ASSERT_TRUE(y1.same_shape(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y2[i]);

  Tensor dy(y1.n(), y1.c(), y1.h(), y1.w());
  for (std::size_t i = 0; i < dy.size(); ++i) dy[i] = rng.uniform() - 0.5f;
  Tensor dx1(1, 8, 33, 47), dx2(1, 8, 33, 47);
  Tensor dw1(12, 8, 3, 3), dw2(12, 8, 3, 3);
  Tensor db1(1, 12, 1, 1), db2(1, 12, 1, 1);
  conv2d_backward(spec, x, w, dy, &dx1, &dw1, &db1);
  conv2d_backward(spec, x, w, dy, &dx2, &dw2, &db2);
  for (std::size_t i = 0; i < dx1.size(); ++i) ASSERT_EQ(dx1[i], dx2[i]);
  for (std::size_t i = 0; i < dw1.size(); ++i) ASSERT_EQ(dw1[i], dw2[i]);
  for (std::size_t i = 0; i < db1.size(); ++i) ASSERT_EQ(db1[i], db2[i]);
}

TEST(GlobalPool, IsAvailableAndStable) {
  ThreadPool* a = global_pool();
  ThreadPool* b = global_pool();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 0);
}

}  // namespace
}  // namespace ada
