// Batched-vs-single bit-equivalence for the N-dimension inference stack:
// conv2d_forward, linear_forward, Detector::detect_batch and
// ScaleRegressor::predict_batch must produce, for every image of a batch,
// exactly the bits the single-image call produces.  This is the property
// the cross-stream BatchScheduler's determinism rests on — batch
// composition must never leak into results.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "adascale/scale_regressor.h"
#include "detection/detector.h"
#include "runtime/scratch.h"
#include "tensor/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/linear.h"
#include "util/rng.h"

namespace ada {
namespace {

Tensor random_tensor(int n, int c, int h, int w, Rng* rng) {
  Tensor t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng->normal(0.0f, 1.0f);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* label) {
  ASSERT_TRUE(a.same_shape(b)) << label << ": " << a.shape_str() << " vs "
                               << b.shape_str();
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << label << " differs at flat index " << i;
}

class BatchEquivalenceTest : public ::testing::TestWithParam<GemmBackend> {
 protected:
  void SetUp() override {
    saved_ = gemm_backend();
    set_gemm_backend(GetParam());
  }
  void TearDown() override { set_gemm_backend(saved_); }

 private:
  GemmBackend saved_;
};

TEST_P(BatchEquivalenceTest, ConvBatchMatchesSingleImageBitwise) {
  Rng rng(42);
  // Odd spatial sizes, stride/dilation variants, bias on, fused ReLU on and
  // off — the shapes the backbone and heads actually exercise.
  struct Case { ConvSpec spec; int h, w; bool fuse; };
  const std::vector<Case> cases = {
      {ConvSpec{3, 8, 3, 1, 1, 1}, 17, 23, true},
      {ConvSpec{5, 7, 3, 2, 1, 1}, 19, 13, false},
      {ConvSpec{4, 6, 3, 1, 4, 4}, 21, 15, true},  // conv4-style dilation
      {ConvSpec{6, 9, 1, 1, 0, 1}, 11, 27, false}, // head-style 1x1
  };
  for (const Case& cs : cases) {
    Tensor w = random_tensor(cs.spec.out_channels, cs.spec.in_channels,
                             cs.spec.kernel, cs.spec.kernel, &rng);
    Tensor b = random_tensor(1, cs.spec.out_channels, 1, 1, &rng);
    for (int batch = 1; batch <= 4; ++batch) {
      Tensor x = random_tensor(batch, cs.spec.in_channels, cs.h, cs.w, &rng);
      Tensor y_batch;
      conv2d_forward(cs.spec, x, w, b, &y_batch, cs.fuse);
      ASSERT_EQ(y_batch.n(), batch);
      for (int n = 0; n < batch; ++n) {
        Tensor y_single;
        conv2d_forward(cs.spec, x.image(n), w, b, &y_single, cs.fuse);
        expect_bitwise_equal(y_batch.image(n), y_single, "conv2d output");
      }
    }
  }
}

TEST_P(BatchEquivalenceTest, LinearBatchMatchesSingleRowBitwise) {
  Rng rng(7);
  const int in = 37, out = 11;
  Tensor w = random_tensor(out, in, 1, 1, &rng);
  Tensor b = random_tensor(1, out, 1, 1, &rng);
  for (int batch = 1; batch <= 4; ++batch) {
    Tensor x = random_tensor(batch, in, 1, 1, &rng);
    Tensor y_batch;
    linear_forward(x, w, b, &y_batch);
    for (int n = 0; n < batch; ++n) {
      Tensor y_single;
      linear_forward(x.image(n), w, b, &y_single);
      expect_bitwise_equal(y_batch.image(n), y_single, "linear output");
    }
  }
}

TEST_P(BatchEquivalenceTest, DetectorBatchMatchesDetectBitwise) {
  DetectorConfig cfg;
  cfg.num_classes = 5;
  Rng rng(3);
  Detector det(cfg, &rng);
  Rng data_rng(11);
  // Odd spatial size so pooling floors and pad-clipped im2col edges are in
  // play, as they are for real rendered frames.
  const int h = 37, w = 51;
  for (int batch = 1; batch <= 3; ++batch) {
    Tensor images = random_tensor(batch, 3, h, w, &data_rng);
    std::vector<DetectionOutput> batched = det.detect_batch(images);
    Tensor batched_features = det.features();
    ASSERT_EQ(static_cast<int>(batched.size()), batch);
    for (int n = 0; n < batch; ++n) {
      DetectionOutput single = det.detect(images.image(n));
      expect_bitwise_equal(batched_features.image(n), det.features(),
                           "deep features");
      ASSERT_EQ(batched[static_cast<std::size_t>(n)].detections.size(),
                single.detections.size());
      for (std::size_t d = 0; d < single.detections.size(); ++d) {
        const Detection& a =
            batched[static_cast<std::size_t>(n)].detections[d];
        const Detection& b = single.detections[d];
        EXPECT_EQ(a.class_id, b.class_id);
        EXPECT_EQ(a.score, b.score);
        EXPECT_EQ(a.box.x1, b.box.x1);
        EXPECT_EQ(a.box.y1, b.box.y1);
        EXPECT_EQ(a.box.x2, b.box.x2);
        EXPECT_EQ(a.box.y2, b.box.y2);
        ASSERT_EQ(a.probs.size(), b.probs.size());
        for (std::size_t p = 0; p < a.probs.size(); ++p)
          EXPECT_EQ(a.probs[p], b.probs[p]);
      }
    }
  }
}

TEST_P(BatchEquivalenceTest, RegressorPredictBatchMatchesPredictBitwise) {
  RegressorConfig cfg;
  cfg.in_channels = 24;
  Rng rng(9);
  ScaleRegressor reg(cfg, &rng);
  Rng data_rng(13);
  for (int batch = 1; batch <= 4; ++batch) {
    Tensor features = random_tensor(batch, cfg.in_channels, 9, 13, &data_rng);
    const std::vector<float> ts = reg.predict_batch(features);
    ASSERT_EQ(static_cast<int>(ts.size()), batch);
    for (int n = 0; n < batch; ++n)
      EXPECT_EQ(ts[static_cast<std::size_t>(n)],
                reg.predict(features.image(n)))
          << "regressor output differs for image " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(BothBackends, BatchEquivalenceTest,
                         ::testing::Values(GemmBackend::kPacked,
                                           GemmBackend::kReference),
                         [](const auto& tpi) {
                           return tpi.param == GemmBackend::kPacked
                                      ? "packed"
                                      : "reference";
                         });

// Concurrent batched conv calls: each thread's scratch arena must size
// itself for the batch (cols + the oc-major GEMM output buffer) without
// aliasing any other thread's workspace, and results must match the serial
// single-thread run bit for bit.
TEST(BatchScratchTest, ConcurrentBatchedConvsMatchSerial) {
  const ConvSpec spec{3, 12, 3, 1, 1, 1};
  Rng rng(21);
  Tensor w = random_tensor(spec.out_channels, spec.in_channels, 3, 3, &rng);
  Tensor b = random_tensor(1, spec.out_channels, 1, 1, &rng);

  // Different batch size and spatial shape per worker so the arena demand
  // differs per thread.
  struct Work { int batch, h, wd; Tensor x, serial, concurrent; };
  std::vector<Work> work;
  for (int i = 0; i < 4; ++i) {
    Work wk;
    wk.batch = 1 + i;
    wk.h = 15 + 2 * i;
    wk.wd = 33 - 4 * i;
    wk.x = random_tensor(wk.batch, spec.in_channels, wk.h, wk.wd, &rng);
    work.push_back(std::move(wk));
  }
  for (Work& wk : work) conv2d_forward(spec, wk.x, w, b, &wk.serial, true);

  std::vector<std::thread> threads;
  for (Work& wk : work)
    threads.emplace_back([&spec, &w, &b, &wk] {
      // Repeat so steady-state reuse (not just first-call growth) is hit.
      for (int r = 0; r < 3; ++r)
        conv2d_forward(spec, wk.x, w, b, &wk.concurrent, true);
    });
  for (std::thread& t : threads) t.join();

  for (Work& wk : work) {
    ASSERT_TRUE(wk.serial.same_shape(wk.concurrent));
    for (std::size_t i = 0; i < wk.serial.size(); ++i)
      ASSERT_EQ(wk.serial[i], wk.concurrent[i]);
  }
}

}  // namespace
}  // namespace ada
