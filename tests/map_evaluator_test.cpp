#include "eval/map_evaluator.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

GtBox gt(float x1, float y1, float x2, float y2, int cls) {
  GtBox g;
  g.x1 = x1; g.y1 = y1; g.x2 = x2; g.y2 = y2; g.class_id = cls;
  return g;
}

EvalDetection det(float x1, float y1, float x2, float y2, int cls, float s) {
  EvalDetection d;
  d.box = Box{x1, y1, x2, y2};
  d.class_id = cls;
  d.score = s;
  return d;
}

TEST(MapEvaluator, PerfectDetectionGivesApOne) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)}, {det(0, 0, 10, 10, 0, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 1.0f);
  EXPECT_FLOAT_EQ(r.map, 1.0f);
}

TEST(MapEvaluator, MissedGtGivesApZero) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)}, {});
  const MapResult r = ev.compute();
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 0.0f);
}

TEST(MapEvaluator, WrongLocationIsFalsePositive) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)}, {det(50, 50, 60, 60, 0, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 0.0f);
  EXPECT_EQ(r.per_class[0].fp_at_threshold, 1);
  EXPECT_EQ(r.per_class[0].tp_at_threshold, 0);
}

TEST(MapEvaluator, WrongClassDoesNotMatch) {
  MapEvaluator ev({"a", "b"});
  ev.add_frame({gt(0, 0, 10, 10, 0)}, {det(0, 0, 10, 10, 1, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 0.0f);
  // Class b has no GT; it is excluded from mAP.
  EXPECT_FLOAT_EQ(r.map, 0.0f);
}

TEST(MapEvaluator, HalfDetectedKnownAp) {
  // Two GT, one detected perfectly: precision 1 at recall 0.5 -> AP 0.5.
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0), gt(30, 30, 40, 40, 0)},
               {det(0, 0, 10, 10, 0, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_NEAR(r.per_class[0].ap, 0.5f, 1e-5f);
}

TEST(MapEvaluator, DuplicateDetectionIsFalsePositive) {
  // Second detection of the same GT counts as FP (VOC protocol).
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)},
               {det(0, 0, 10, 10, 0, 0.9f), det(1, 1, 10, 10, 0, 0.8f)});
  const MapResult r = ev.compute();
  EXPECT_EQ(r.per_class[0].tp_at_threshold, 1);
  EXPECT_EQ(r.per_class[0].fp_at_threshold, 1);
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 1.0f);  // recall reached 1 at precision 1
}

TEST(MapEvaluator, LowConfidenceFpAfterTpDoesNotHurtAp) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)},
               {det(0, 0, 10, 10, 0, 0.9f), det(70, 70, 90, 90, 0, 0.1f)});
  const MapResult r = ev.compute();
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 1.0f);
}

TEST(MapEvaluator, HighConfidenceFpBeforeTpHurtsAp) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)},
               {det(0, 0, 10, 10, 0, 0.5f), det(70, 70, 90, 90, 0, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_NEAR(r.per_class[0].ap, 0.5f, 1e-5f);
}

TEST(MapEvaluator, MapAveragesOnlyClassesWithGt) {
  MapEvaluator ev({"a", "b", "c"});
  ev.add_frame({gt(0, 0, 10, 10, 0), gt(20, 20, 30, 30, 1)},
               {det(0, 0, 10, 10, 0, 0.9f)});
  const MapResult r = ev.compute();
  // Class a AP=1, class b AP=0, class c excluded -> mAP 0.5.
  EXPECT_NEAR(r.map, 0.5f, 1e-5f);
}

TEST(MapEvaluator, IouThresholdMatters) {
  MapEvaluator ev({"a"});
  // Detection with IoU ~ 0.58 against GT.
  ev.add_frame({gt(0, 0, 10, 10, 0)}, {det(0, 0, 10, 7.3f, 0, 0.9f)});
  EXPECT_NEAR(ev.compute(0.5f).per_class[0].ap, 1.0f, 1e-5f);
  EXPECT_NEAR(ev.compute(0.9f).per_class[0].ap, 0.0f, 1e-5f);
}

TEST(MapEvaluator, PrCurveIsMonotoneInRecall) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0), gt(30, 30, 45, 45, 0)},
               {det(0, 0, 10, 10, 0, 0.9f), det(60, 60, 70, 70, 0, 0.7f),
                det(30, 30, 45, 45, 0, 0.6f)});
  const MapResult r = ev.compute();
  const auto& pr = r.per_class[0].pr;
  ASSERT_EQ(pr.size(), 3u);
  for (std::size_t i = 1; i < pr.size(); ++i)
    EXPECT_GE(pr[i].recall, pr[i - 1].recall);
  // Scores along the curve are descending.
  for (std::size_t i = 1; i < pr.size(); ++i)
    EXPECT_LE(pr[i].score, pr[i - 1].score);
}

TEST(MapEvaluator, MultiFrameAccumulates) {
  MapEvaluator ev({"a"});
  for (int f = 0; f < 4; ++f)
    ev.add_frame({gt(0, 0, 10, 10, 0)}, {det(0, 0, 10, 10, 0, 0.9f)});
  const MapResult r = ev.compute();
  EXPECT_EQ(r.per_class[0].num_gt, 4);
  EXPECT_EQ(r.per_class[0].tp_at_threshold, 4);
  EXPECT_FLOAT_EQ(r.per_class[0].ap, 1.0f);
  EXPECT_EQ(ev.num_frames(), 4);
}

TEST(MapEvaluator, TpFpThresholdFilters) {
  MapEvaluator ev({"a"});
  ev.add_frame({gt(0, 0, 10, 10, 0)},
               {det(0, 0, 10, 10, 0, 0.3f)});  // below 0.5 threshold
  const MapResult r = ev.compute(0.5f, 0.5f);
  EXPECT_EQ(r.per_class[0].tp_at_threshold, 0);
  EXPECT_GT(r.per_class[0].ap, 0.9f);  // AP unaffected by the count threshold
}

}  // namespace
}  // namespace ada
