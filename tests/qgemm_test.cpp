// INT8 quantization primitives and the qgemm kernel (tensor/qgemm.h):
// round-trip error bounds, per-channel scale edge cases (all-zero channel,
// saturating outliers), agreement with a fake-quantized fp32 reference
// GEMM on odd shapes, the int8 conv/linear paths, batch bit-identity, and
// quantization propagation through detector/regressor clones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "detection/detector.h"
#include "adascale/scale_regressor.h"
#include "runtime/exec_plan.h"
#include "tensor/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/linear.h"
#include "tensor/loss.h"
#include "tensor/qgemm.h"
#include "util/rng.h"

namespace ada {
namespace {

// ------------------------------------------------------------- primitives

TEST(QuantizeTest, RoundTripBoundedByHalfStep) {
  const QuantParams p = choose_qparams(-3.0f, 5.0f);
  ASSERT_GT(p.scale, 0.0f);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-3.0f, 5.0f);
    const float back = dequantize_u8(quantize_u8(x, p), p);
    // Inside the calibrated range the round trip errs by at most half a
    // quantization step (plus fp32 rounding slack).
    EXPECT_NEAR(back, x, 0.5f * p.scale + 1e-5f) << "x=" << x;
  }
}

TEST(QuantizeTest, RangeWidenedToIncludeZero) {
  // A strictly positive observed range must still represent 0 exactly:
  // im2col pads with fp32 zeros, and dequant(quant(0)) must give 0.
  const QuantParams p = choose_qparams(2.0f, 6.0f);
  EXPECT_EQ(dequantize_u8(quantize_u8(0.0f, p), p), 0.0f);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(QuantizeTest, SaturatingOutliersClamp) {
  const QuantParams p = choose_qparams(0.0f, 1.0f);
  EXPECT_EQ(quantize_u8(50.0f, p), 255);   // above range: clamps, no wrap
  EXPECT_EQ(quantize_u8(-50.0f, p), 0);    // below range: clamps to 0
}

TEST(QuantizeTest, DegenerateRangeGetsUsableScale) {
  const QuantParams p = choose_qparams(0.0f, 0.0f);
  EXPECT_GT(p.scale, 0.0f);
  EXPECT_EQ(quantize_u8(0.0f, p), p.zero_point);
}

TEST(QuantizeWeightsTest, PerChannelScalesAndSums) {
  // Row 0: ordinary values.  Row 1: all zero (edge: scale must stay
  // positive, quantized row all zero).  Row 2: one huge outlier dominating
  // the channel scale — symmetric per-channel quantization represents the
  // outlier at full precision and coarsens the small values.
  const int rows = 3, cols = 4;
  const float w[rows * cols] = {0.5f, -1.0f, 0.25f, 0.75f,
                                0.0f, 0.0f,  0.0f,  0.0f,
                                127.0f, 0.5f, -0.5f, 0.0f};
  const QuantizedWeights qw = quantize_weights(w, rows, cols, QuantParams{});
  ASSERT_EQ(qw.rows, rows);
  ASSERT_EQ(qw.cols, cols);

  // Row 0: absmax 1.0 → scale 1/127; -1.0 maps to -127 exactly.
  EXPECT_NEAR(qw.scale[0], 1.0f / 127.0f, 1e-7f);
  EXPECT_EQ(qw.q[1], -127);
  // Row 1: all-zero channel keeps a positive scale and zero row sum.
  EXPECT_GT(qw.scale[1], 0.0f);
  for (int c = 0; c < cols; ++c) EXPECT_EQ(qw.q[cols + c], 0);
  EXPECT_EQ(qw.row_sum[1], 0);
  // Row 2: scale 1.0; the outlier hits ±127 without wrapping and the
  // small values collapse toward 0/±1.
  EXPECT_NEAR(qw.scale[2], 1.0f, 1e-6f);
  EXPECT_EQ(qw.q[2 * cols + 0], 127);
  EXPECT_LE(std::abs(static_cast<int>(qw.q[2 * cols + 1])), 1);

  // Row sums match the quantized values (epilogue correction term).
  for (int r = 0; r < rows; ++r) {
    int s = 0;
    for (int c = 0; c < cols; ++c) s += qw.q[r * cols + c];
    EXPECT_EQ(qw.row_sum[r], s);
  }
}

TEST(RangeObserverTest, TracksMinMaxAndPercentile) {
  RangeObserver obs;
  EXPECT_FALSE(obs.seen());
  // 1000 dense values in [0, 1] plus one huge outlier.
  std::vector<float> xs;
  for (int i = 0; i < 1000; ++i)
    xs.push_back(static_cast<float>(i) / 1000.0f);
  xs.push_back(100.0f);
  obs.observe(xs.data(), xs.size());
  ASSERT_TRUE(obs.seen());
  EXPECT_EQ(obs.min(), 0.0f);
  EXPECT_EQ(obs.max(), 100.0f);
  // Full fraction returns the exact max; clipping a tail drops the
  // outlier but keeps (at least) the dense bulk.
  EXPECT_EQ(obs.percentile_hi(1.0), 100.0f);
  const float clipped = obs.percentile_hi(0.995);
  EXPECT_LT(clipped, 2.0f);
  EXPECT_GE(clipped, 0.99f);
}

TEST(RangeObserverTest, AllZeroObservationsAreSafe) {
  // Regression: the first observed activations being all zero (common
  // post-ReLU) must not touch an unallocated histogram.
  RangeObserver obs;
  std::vector<float> zeros(4096, 0.0f);
  obs.observe(zeros.data(), zeros.size());
  ASSERT_TRUE(obs.seen());
  EXPECT_EQ(obs.max(), 0.0f);
  EXPECT_EQ(obs.percentile_hi(0.999), 0.0f);
  // Values arriving later still histogram correctly.
  const float one = 1.0f;
  obs.observe(&one, 1);
  EXPECT_EQ(obs.percentile_hi(1.0), 1.0f);
}

// ------------------------------------------------------------------ qgemm

/// Fake-quantized fp32 oracle: dequantized weights x fake-quantized
/// activations through the reference SGEMM, with the same epilogue math.
/// Integer qgemm must match this to fp32-rounding tolerance.
void qgemm_oracle(int M, int N, int K, const QuantizedWeights& W,
                  const GemmMat& B, float* C, int ldc, const float* bias,
                  bool relu) {
  std::vector<float> wf(static_cast<std::size_t>(M) * K);
  for (int m = 0; m < M; ++m)
    for (int k = 0; k < K; ++k)
      wf[static_cast<std::size_t>(m) * K + k] =
          static_cast<float>(W.q[static_cast<std::size_t>(m) * K + k]) *
          W.scale[static_cast<std::size_t>(m)];
  std::vector<float> bf(static_cast<std::size_t>(K) * N);
  for (int k = 0; k < K; ++k)
    for (int j = 0; j < N; ++j)
      bf[static_cast<std::size_t>(k) * N + j] = dequantize_u8(
          quantize_u8(B.p[static_cast<std::ptrdiff_t>(k) * B.rs +
                          static_cast<std::ptrdiff_t>(j) * B.cs],
                      W.act),
          W.act);
  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kReference);
  GemmEpilogue epi;
  epi.row_bias = bias;
  epi.relu = relu;
  sgemm(M, N, K, GemmMat{wf.data(), K, 1}, GemmMat{bf.data(), N, 1}, C, ldc,
        /*accumulate=*/false, epi);
  set_gemm_backend(saved);
}

TEST(QgemmTest, MatchesFakeQuantOracleOnOddShapes) {
  Rng rng(11);
  for (const auto [M, N, K] : {std::array<int, 3>{1, 1, 1},
                               std::array<int, 3>{5, 37, 13},
                               std::array<int, 3>{7, 17, 97},
                               std::array<int, 3>{48, 450, 432},
                               std::array<int, 3>{6, 16, 32},
                               std::array<int, 3>{13, 1029, 27}}) {
    std::vector<float> w(static_cast<std::size_t>(M) * K);
    for (float& v : w) v = rng.uniform(-1.0f, 1.0f);
    std::vector<float> b(static_cast<std::size_t>(K) * N);
    for (float& v : b) v = rng.uniform(-2.0f, 3.0f);
    std::vector<float> bias(static_cast<std::size_t>(M));
    for (float& v : bias) v = rng.uniform(-0.5f, 0.5f);

    const QuantizedWeights qw =
        quantize_weights(w.data(), M, K, choose_qparams(-2.0f, 3.0f));
    std::vector<float> got(static_cast<std::size_t>(M) * N, -1.0f);
    std::vector<float> want(static_cast<std::size_t>(M) * N, -2.0f);
    const GemmMat bmat{b.data(), N, 1};
    qgemm(M, N, K, qw, bmat, got.data(), N, bias.data(), /*relu=*/true);
    qgemm_oracle(M, N, K, qw, bmat, want.data(), N, bias.data(),
                 /*relu=*/true);
    // The oracle's fp32 accumulation rounds once per k step (the integer
    // kernel is exact), so the bound grows with K.
    const float tol = 1e-4f * (1.0f + static_cast<float>(K) * 0.05f);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], want[i], tol + 1e-4f * std::fabs(want[i]))
          << "M=" << M << " N=" << N << " K=" << K << " i=" << i;
  }
}

TEST(QgemmTest, StridedBOperand) {
  // Transposed-view activations (the linear path): element (k, j) at
  // p[k + j * K].
  Rng rng(3);
  const int M = 4, N = 6, K = 9;
  std::vector<float> w(static_cast<std::size_t>(M) * K);
  for (float& v : w) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> x(static_cast<std::size_t>(N) * K);  // (N rows of K)
  for (float& v : x) v = rng.uniform(0.0f, 4.0f);
  const QuantizedWeights qw =
      quantize_weights(w.data(), M, K, choose_qparams(0.0f, 4.0f));
  const GemmMat bt{x.data(), 1, K};
  std::vector<float> got(static_cast<std::size_t>(M) * N);
  std::vector<float> want(static_cast<std::size_t>(M) * N);
  qgemm(M, N, K, qw, bt, got.data(), N, nullptr, false);
  qgemm_oracle(M, N, K, qw, bt, want.data(), N, nullptr, false);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-4f + 1e-5f * std::fabs(want[i]));
}

TEST(QgemmTest, BitIdenticalRunToRun) {
  Rng rng(23);
  const int M = 11, N = 333, K = 50;
  std::vector<float> w(static_cast<std::size_t>(M) * K);
  for (float& v : w) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> b(static_cast<std::size_t>(K) * N);
  for (float& v : b) v = rng.uniform(-1.0f, 2.0f);
  const QuantizedWeights qw =
      quantize_weights(w.data(), M, K, choose_qparams(-1.0f, 2.0f));
  std::vector<float> c1(static_cast<std::size_t>(M) * N);
  std::vector<float> c2(static_cast<std::size_t>(M) * N);
  qgemm(M, N, K, qw, GemmMat{b.data(), N, 1}, c1.data(), N, nullptr, true);
  qgemm(M, N, K, qw, GemmMat{b.data(), N, 1}, c2.data(), N, nullptr, true);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// ------------------------------------------------------------- ISA matrix
//
// Every quantized kernel body the CPU can run — generic pair-wise s32,
// vpmaddwd s16 pairs (avx2 / avx512), vpdpbusd quads (vnni) — must produce
// the SAME bits, including at the operand extremes where a saturating
// instruction would silently diverge: vpmaddwd's pair sum reaches
// 255*127*2 = 64770 (far above s16 but exact in its s32 accumulator), and
// vpdpbusd's quad sum reaches 129540 (vpdpbusd, unlike VPDPBUSDS, wraps
// rather than saturates — and these magnitudes stay far inside s32 anyway).

/// ISA levels this host can actually execute, weakest first.
std::vector<KernelIsa> supported_isas() {
  std::vector<KernelIsa> out;
  for (KernelIsa isa : {KernelIsa::kGeneric, KernelIsa::kAvx2,
                        KernelIsa::kAvx512, KernelIsa::kVnni})
    if (static_cast<int>(isa) <= static_cast<int>(kernel_isa_native()))
      out.push_back(isa);
  return out;
}

struct IsaOverrideGuard {
  ~IsaOverrideGuard() { clear_qgemm_isa(); }
};

/// Runs one qgemm problem under every supported ISA body: all bodies must
/// match the generic scalar kernel BITWISE (integer accumulation is exact,
/// so grouping and SIMD width cannot matter), and the generic kernel must
/// sit within fp32-rounding tolerance of the fake-quant oracle.
void expect_isa_invariant(int M, int N, int K, const QuantizedWeights& qw,
                          const std::vector<float>& b, const float* bias,
                          bool relu) {
  const GemmMat bmat{b.data(), N, 1};
  const std::size_t elems = static_cast<std::size_t>(M) * N;
  IsaOverrideGuard guard;
  set_qgemm_isa(KernelIsa::kGeneric);
  std::vector<float> baseline(elems, -1.0f);
  qgemm(M, N, K, qw, bmat, baseline.data(), N, bias, relu);

  std::vector<float> oracle(elems);
  qgemm_oracle(M, N, K, qw, bmat, oracle.data(), N, bias, relu);
  const float tol = 1e-4f * (1.0f + static_cast<float>(K) * 0.05f);
  for (std::size_t i = 0; i < elems; ++i)
    ASSERT_NEAR(baseline[i], oracle[i],
                (tol + 1e-4f * std::fabs(oracle[i])) *
                    (1.0f + std::fabs(oracle[i])))
        << "generic kernel off the fake-quant oracle at i=" << i;

  for (KernelIsa isa : supported_isas()) {
    if (isa == KernelIsa::kGeneric) continue;
    set_qgemm_isa(isa);
    EXPECT_STREQ(qgemm_kernel_isa(), kernel_isa_name(isa));
    std::vector<float> got(elems, -1.0f);
    qgemm(M, N, K, qw, bmat, got.data(), N, bias, relu);
    EXPECT_EQ(0, std::memcmp(got.data(), baseline.data(),
                             elems * sizeof(float)))
        << "kernel body " << kernel_isa_name(isa)
        << " not bit-identical to the generic body";
  }
}

TEST(QgemmIsaTest, SaturationExtremesBitIdenticalAcrossAllKernelBodies) {
  // Worst-case operands: weights pinned to ±127, activations that quantize
  // to 255 (act scale 1, zero point 0, inputs at the clamp edge), K odd so
  // the pair kernels run a zero-padded tail and K % 4 != 0 so the quad
  // kernel does too.
  const int M = 5, N = 33, K = 19;
  QuantizedWeights qw;
  qw.rows = M;
  qw.cols = K;
  qw.q.resize(static_cast<std::size_t>(M) * K);
  qw.scale.assign(static_cast<std::size_t>(M), 1.0f);
  qw.row_sum.assign(static_cast<std::size_t>(M), 0);
  for (int m = 0; m < M; ++m) {
    for (int k = 0; k < K; ++k) {
      // Rows alternate sign patterns so pair sums hit +64770, -64770, and
      // cancellation; row 4 is all +127 (maximal same-sign quads).
      const std::int8_t v = (m == 4 || (k + m) % 2 == 0) ? 127 : -127;
      qw.q[static_cast<std::size_t>(m) * K + k] = v;
      qw.row_sum[static_cast<std::size_t>(m)] += v;
    }
  }
  qw.act = QuantParams{1.0f, 0};
  std::vector<float> b(static_cast<std::size_t>(K) * N);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = (i % 3 == 0) ? 255.0f : ((i % 3 == 1) ? 300.0f : 0.0f);  // 300 clamps
  expect_isa_invariant(M, N, K, qw, b, nullptr, false);

  // Nonzero zero point exercises the row_sum correction at the same
  // extremes (zp 128 centres the u8 range).
  qw.act = QuantParams{2.0f, 128};
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = (i % 2 == 0) ? 254.0f : -256.0f;  // quantize to 255 and 0
  const std::vector<float> bias = {0.5f, -3.0f, 0.0f, 7.5f, -0.25f};
  expect_isa_invariant(M, N, K, qw, b, bias.data(), true);
}

TEST(QgemmIsaTest, OddShapesBitIdenticalAcrossAllKernelBodies) {
  Rng rng(41);
  const struct { int M, N, K; } shapes[] = {
      {1, 1, 1}, {5, 37, 13}, {6, 16, 32}, {7, 129, 97}, {13, 48, 27}};
  for (const auto& s : shapes) {
    std::vector<float> w(static_cast<std::size_t>(s.M) * s.K);
    for (float& v : w) v = rng.uniform(-1.0f, 1.0f);
    std::vector<float> b(static_cast<std::size_t>(s.K) * s.N);
    for (float& v : b) v = rng.uniform(-1.0f, 2.0f);
    const QuantizedWeights qw =
        quantize_weights(w.data(), s.M, s.K, choose_qparams(-1.0f, 2.0f));
    expect_isa_invariant(s.M, s.N, s.K, qw, b, nullptr, false);
  }
}

TEST(QgemmIsaTest, OverrideAboveEnvCapAllowedAndRestored) {
  // set_qgemm_isa may exceed the ADASCALE_ISA cap (a capped process still
  // benchmarks every body the silicon has) but never the silicon itself;
  // clear restores capped dispatch.
  IsaOverrideGuard guard;
  const std::string capped = qgemm_kernel_isa();
  set_qgemm_isa(kernel_isa_native());
  EXPECT_STREQ(qgemm_kernel_isa(), kernel_isa_name(kernel_isa_native()));
  clear_qgemm_isa();
  EXPECT_EQ(capped, qgemm_kernel_isa());
}

// ------------------------------------------------------- conv/linear int8

Tensor random_tensor(int n, int c, int h, int w, float lo, float hi,
                     Rng* rng) {
  Tensor t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng->uniform(lo, hi);
  return t;
}

TEST(ConvInt8Test, MatchesFakeQuantFp32Conv) {
  Rng rng(31);
  for (const ConvSpec spec :
       {ConvSpec{3, 8, 3, 1, 1}, ConvSpec{4, 6, 3, 2, 1},
        ConvSpec{5, 7, 1, 1, 0}, ConvSpec{4, 5, 3, 1, 4, 4}}) {
    const int H = 19, W = 23;  // odd sizes exercise edge tiles
    Tensor x = random_tensor(1, spec.in_channels, H, W, 0.0f, 1.5f, &rng);
    Tensor w = random_tensor(spec.out_channels, spec.in_channels,
                             spec.kernel, spec.kernel, -0.4f, 0.4f, &rng);
    Tensor b = random_tensor(1, spec.out_channels, 1, 1, -0.2f, 0.2f, &rng);

    const QuantParams act = choose_qparams(0.0f, 1.5f);
    const QuantizedWeights qw = quantize_weights(
        w.data(), spec.out_channels,
        spec.in_channels * spec.kernel * spec.kernel, act);

    Tensor y_int8;
    conv2d_forward_int8(spec, x, qw, b, &y_int8, /*fuse_relu=*/true);

    // Oracle: fp32 conv over dequantized weights and fake-quantized input.
    Tensor xq(x.n(), x.c(), x.h(), x.w());
    for (std::size_t i = 0; i < x.size(); ++i)
      xq[i] = dequantize_u8(quantize_u8(x[i], act), act);
    Tensor wq(w.n(), w.c(), w.h(), w.w());
    for (int oc = 0; oc < spec.out_channels; ++oc) {
      const std::size_t per = w.size() / static_cast<std::size_t>(w.n());
      for (std::size_t k = 0; k < per; ++k)
        wq[static_cast<std::size_t>(oc) * per + k] =
            static_cast<float>(qw.q[static_cast<std::size_t>(oc) * per + k]) *
            qw.scale[static_cast<std::size_t>(oc)];
    }
    const GemmBackend saved = gemm_backend();
    set_gemm_backend(GemmBackend::kReference);
    Tensor y_ref;
    conv2d_forward(spec, xq, wq, b, &y_ref, /*fuse_relu=*/true);
    set_gemm_backend(saved);

    ASSERT_TRUE(y_int8.same_shape(y_ref));
    for (std::size_t i = 0; i < y_int8.size(); ++i)
      ASSERT_NEAR(y_int8[i], y_ref[i], 1e-4f + 1e-5f * std::fabs(y_ref[i]))
          << "spec k=" << spec.kernel << " i=" << i;
  }
}

TEST(ConvInt8Test, BatchBitIdenticalToPerImage) {
  Rng rng(41);
  const ConvSpec spec{3, 6, 3, 1, 1};
  Tensor batch = random_tensor(3, 3, 14, 17, 0.0f, 1.0f, &rng);
  const QuantizedWeights qw = quantize_weights(
      random_tensor(6, 3, 3, 3, -0.5f, 0.5f, &rng).data(), 6, 27,
      choose_qparams(0.0f, 1.0f));
  Tensor b = random_tensor(1, 6, 1, 1, -0.1f, 0.1f, &rng);

  Tensor y_batch;
  conv2d_forward_int8(spec, batch, qw, b, &y_batch, true);
  for (int n = 0; n < batch.n(); ++n) {
    Tensor y_one;
    conv2d_forward_int8(spec, batch.image(n), qw, b, &y_one, true);
    ASSERT_EQ(0, std::memcmp(y_batch.data() +
                                 static_cast<std::size_t>(n) *
                                     y_batch.image_size(),
                             y_one.data(),
                             y_one.size() * sizeof(float)))
        << "image " << n;
  }
}

TEST(LinearInt8Test, MatchesOracleAndBatchesBitIdentically) {
  Rng rng(53);
  const int in = 32, out = 5, batch = 3;
  Tensor x = random_tensor(batch, in, 1, 1, 0.0f, 2.0f, &rng);
  Tensor w = random_tensor(out, in, 1, 1, -0.8f, 0.8f, &rng);
  Tensor b = random_tensor(1, out, 1, 1, -0.3f, 0.3f, &rng);
  const QuantizedWeights qw =
      quantize_weights(w.data(), out, in, choose_qparams(0.0f, 2.0f));

  Tensor y;
  linear_forward_int8(x, qw, b, &y);
  ASSERT_EQ(y.n(), batch);
  ASSERT_EQ(y.c(), out);

  // Oracle per element.
  for (int n = 0; n < batch; ++n) {
    Tensor yn;
    linear_forward_int8(x.image(n), qw, b, &yn);
    for (int o = 0; o < out; ++o)
      ASSERT_EQ(y.at(n, o, 0, 0), yn.at(0, o, 0, 0))
          << "batched linear must be bit-identical to per-row calls";
    // And against the fake-quant fp32 reference.
    for (int o = 0; o < out; ++o) {
      double acc = 0.0;
      for (int i = 0; i < in; ++i)
        acc += static_cast<double>(
                   dequantize_u8(quantize_u8(x.at(n, i, 0, 0), qw.act),
                                 qw.act)) *
               (static_cast<double>(qw.q[static_cast<std::size_t>(o) * in + i]) *
                qw.scale[static_cast<std::size_t>(o)]);
      EXPECT_NEAR(y.at(n, o, 0, 0), acc + b.at(0, o, 0, 0), 2e-3)
          << "n=" << n << " o=" << o;
    }
  }
}

// ------------------------------------------------- model-level quantization

TEST(DetectorInt8Test, QuantizedForwardCloseToFp32AndDeterministic) {
  Rng rng(5);
  DetectorConfig cfg;
  cfg.num_classes = 4;
  cfg.c1 = 8; cfg.c2 = 12; cfg.c3 = 16;
  Detector det(cfg, &rng);

  Tensor img = random_tensor(1, 3, 64, 80, 0.0f, 1.0f, &rng);
  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kPacked);
  Tensor feat_fp32 = det.forward(img);  // copy

  det.quantize({img});
  ASSERT_TRUE(det.quantized());

  set_gemm_backend(GemmBackend::kInt8);
  Tensor feat_int8 = det.forward(img);
  ASSERT_TRUE(feat_int8.same_shape(feat_fp32));

  // Per-layer quantization error compounds but stays small relative to the
  // activation magnitude.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < feat_fp32.size(); ++i) {
    const double d = feat_int8[i] - feat_fp32[i];
    num += d * d;
    den += static_cast<double>(feat_fp32[i]) * feat_fp32[i];
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.1)
      << "int8 features diverge from fp32 beyond quantization error";

  // Bit-identical run-to-run.
  Tensor again = det.forward(img);
  EXPECT_EQ(0, std::memcmp(again.data(), feat_int8.data(),
                           again.size() * sizeof(float)));
  set_gemm_backend(saved);
}

TEST(DetectorInt8Test, CloneInheritsQuantization) {
  Rng rng(9);
  DetectorConfig cfg;
  cfg.num_classes = 3;
  cfg.c1 = 6; cfg.c2 = 8; cfg.c3 = 10;
  Detector det(cfg, &rng);
  Tensor img = random_tensor(1, 3, 48, 48, 0.0f, 1.0f, &rng);
  det.quantize({img});

  std::unique_ptr<Detector> clone = clone_detector(&det);
  ASSERT_TRUE(clone->quantized());

  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kInt8);
  const Tensor& a = det.forward(img);
  Tensor a_copy = a;
  const Tensor& b = clone->forward(img);
  EXPECT_EQ(0, std::memcmp(a_copy.data(), b.data(),
                           a_copy.size() * sizeof(float)))
      << "clone must serve bit-identical INT8 results";
  set_gemm_backend(saved);
}

TEST(DetectorInt8Test, BatchedDetectBitIdenticalToSingle) {
  // The batch scheduler composes with INT8 unchanged because quantization
  // lives below the conv2d_forward seam: a quantized detect_batch must be
  // bit-identical to per-image quantized detect()s, for any batch mix.
  Rng rng(21);
  DetectorConfig cfg;
  cfg.num_classes = 3;
  cfg.c1 = 6; cfg.c2 = 8; cfg.c3 = 10;
  Detector det(cfg, &rng);
  Tensor a = random_tensor(1, 3, 48, 64, 0.0f, 1.0f, &rng);
  Tensor b = random_tensor(1, 3, 48, 64, 0.0f, 1.0f, &rng);
  det.quantize({a, b});

  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kInt8);
  std::vector<const Tensor*> imgs = {&a, &b, &a};
  Tensor batch = Tensor::batch_of(imgs);
  const std::vector<DetectionOutput> batched = det.detect_batch(batch);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t i = 0; i < imgs.size(); ++i) {
    const DetectionOutput one = det.detect(*imgs[i]);
    ASSERT_EQ(batched[i].detections.size(), one.detections.size());
    for (std::size_t d = 0; d < one.detections.size(); ++d) {
      EXPECT_EQ(batched[i].detections[d].score, one.detections[d].score);
      EXPECT_EQ(batched[i].detections[d].box.x1, one.detections[d].box.x1);
      EXPECT_EQ(batched[i].detections[d].class_id,
                one.detections[d].class_id);
    }
  }
  set_gemm_backend(saved);
}

TEST(RegressorInt8Test, QuantizedPredictCloseToFp32) {
  Rng rng(13);
  RegressorConfig cfg;
  cfg.in_channels = 10;
  ScaleRegressor reg(cfg, &rng);
  Tensor features = random_tensor(1, 10, 12, 15, 0.0f, 2.0f, &rng);

  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kPacked);
  const float t_fp32 = reg.predict(features);

  reg.quantize({features});
  ASSERT_TRUE(reg.quantized());
  set_gemm_backend(GemmBackend::kInt8);
  const float t_int8 = reg.predict(features);
  EXPECT_NEAR(t_int8, t_fp32, 0.05f);

  // Clone propagation, bit-identical.
  std::unique_ptr<ScaleRegressor> clone = clone_regressor(&reg);
  ASSERT_TRUE(clone->quantized());
  EXPECT_EQ(clone->predict(features), reg.predict(features));

  // Batched prediction bit-identical to per-image under int8.
  std::vector<const Tensor*> imgs = {&features, &features};
  Tensor batch = Tensor::batch_of(imgs);
  const std::vector<float> batched = reg.predict_batch(batch);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched[0], t_int8);
  EXPECT_EQ(batched[1], t_int8);
  set_gemm_backend(saved);
}

TEST(RegressorInt8Test, TrainStepUsesFp32ForwardWhenQuantized) {
  // Regression: training a quantized regressor under ADASCALE_GEMM=int8
  // must run the fp32 forward — gradients apply to the fp32 weights, so a
  // loss computed from the INT8 output would silently corrupt training.
  Rng rng(17);
  RegressorConfig cfg;
  cfg.in_channels = 8;
  ScaleRegressor reg(cfg, &rng);
  Tensor features = random_tensor(1, 8, 10, 10, 0.0f, 2.0f, &rng);
  reg.quantize({features});

  // Pin the autotuner to int8 (first candidate wins: readings increase).
  // Under a low ADASCALE_ISA cap the real measurement can demote every
  // layer to fp32, which would make int8 predictions equal fp32 ones and
  // leave this test unable to discriminate the two forward paths.
  clear_autotune_cache();
  set_autotune_bench(+[](const std::function<void()>& run) {
    run();
    static int calls = 0;
    return static_cast<double>(++calls);
  });

  const GemmBackend saved = gemm_backend();
  set_gemm_backend(GemmBackend::kPacked);
  const float t_fp32 = reg.predict(features);
  set_gemm_backend(GemmBackend::kInt8);
  const float t_int8 = reg.predict(features);
  ASSERT_NE(t_fp32, t_int8) << "quantization noise expected; if the two "
                               "coincide this test cannot discriminate";

  // lr 0: the step must not move weights, so the returned loss is purely
  // a readout of which forward path train_step used.
  Sgd::Options opts;
  opts.lr = 0.0f;
  Sgd opt(reg.parameters(), opts);
  const float target = 0.3f;
  const float loss = reg.train_step(features, target, &opt);
  float unused = 0.0f;
  EXPECT_EQ(loss, mse_scalar(t_fp32, target, &unused))
      << "train_step computed its loss from the INT8 forward";
  set_autotune_bench(nullptr);
  clear_autotune_cache();
  set_gemm_backend(saved);
}

}  // namespace
}  // namespace ada
