#include "eval/pareto.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

std::vector<ParetoPoint> sample_points() {
  return {
      {"slow-accurate", 10.0, 0.75},
      {"fast-accurate", 20.0, 0.76},   // dominates slow-accurate
      {"fast-sloppy", 30.0, 0.60},
      {"dominated", 15.0, 0.50},       // dominated by fast-accurate
      {"fastest", 40.0, 0.40},
  };
}

TEST(Pareto, DominatedDetection) {
  const auto pts = sample_points();
  EXPECT_TRUE(is_dominated(pts[0], pts));   // slow-accurate
  EXPECT_FALSE(is_dominated(pts[1], pts));  // fast-accurate
  EXPECT_FALSE(is_dominated(pts[2], pts));  // fast-sloppy
  EXPECT_TRUE(is_dominated(pts[3], pts));   // dominated
  EXPECT_FALSE(is_dominated(pts[4], pts));  // fastest
}

TEST(Pareto, FrontierSortedByFps) {
  const auto frontier = pareto_frontier(sample_points());
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].label, "fast-accurate");
  EXPECT_EQ(frontier[1].label, "fast-sloppy");
  EXPECT_EQ(frontier[2].label, "fastest");
  for (std::size_t i = 1; i < frontier.size(); ++i)
    EXPECT_LE(frontier[i - 1].fps, frontier[i].fps);
}

TEST(Pareto, SinglePointIsItsOwnFrontier) {
  std::vector<ParetoPoint> one = {{"only", 5.0, 0.5}};
  EXPECT_FALSE(is_dominated(one[0], one));
  EXPECT_EQ(pareto_frontier(one).size(), 1u);
}

TEST(Pareto, IdenticalPointsDoNotDominateEachOther) {
  std::vector<ParetoPoint> twins = {{"a", 5.0, 0.5}, {"b", 5.0, 0.5}};
  EXPECT_FALSE(is_dominated(twins[0], twins));
  EXPECT_FALSE(is_dominated(twins[1], twins));
  EXPECT_EQ(pareto_frontier(twins).size(), 2u);
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  EXPECT_EQ(frontier_share({}, "x"), 0.0);
}

TEST(Pareto, FrontierShareCountsTaggedLabels) {
  std::vector<ParetoPoint> pts = {
      {"RFCN", 10.0, 0.70},
      {"RFCN+AdaScale", 18.0, 0.72},
      {"DFF+AdaScale", 30.0, 0.66},
  };
  const auto frontier = pareto_frontier(pts);
  EXPECT_NEAR(frontier_share(frontier, "AdaScale"), 1.0, 1e-9);
  pts.push_back({"DFF", 40.0, 0.65});
  const auto f2 = pareto_frontier(pts);
  EXPECT_NEAR(frontier_share(f2, "AdaScale"), 2.0 / 3.0, 1e-9);
}

TEST(Pareto, CsvHasHeaderAndOneRowPerPoint) {
  const auto pts = sample_points();
  const std::string csv = pareto_csv(pts);
  int lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + static_cast<int>(pts.size()));
  EXPECT_EQ(csv.rfind("label,fps,map\n", 0), 0u);
  EXPECT_NE(csv.find("fast-accurate,20.00,76.0"), std::string::npos);
}

TEST(Pareto, ScatterContainsEveryLegendEntry) {
  const auto pts = sample_points();
  const std::string plot = pareto_scatter(pts, 40, 10);
  for (const ParetoPoint& p : pts)
    EXPECT_NE(plot.find(p.label), std::string::npos);
}

TEST(Pareto, ScatterRejectsDegenerateDimensions) {
  EXPECT_EQ(pareto_scatter(sample_points(), 4, 2), "");
  EXPECT_EQ(pareto_scatter({}, 40, 10), "");
}

}  // namespace
}  // namespace ada
