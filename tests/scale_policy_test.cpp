// ScalePolicy: the nominal-scale -> render-resolution mapping every
// component shares.  If this drifts, Eq. (3)'s nominal-scale arithmetic and
// the renderer's pixel world disagree silently — so pin its contract.
#include <gtest/gtest.h>

#include <cmath>

#include "data/renderer.h"

namespace ada {
namespace {

class PolicyAtScale : public ::testing::TestWithParam<int> {};

TEST_P(PolicyAtScale, RatioAndAspectHold) {
  const int nominal = GetParam();
  const ScalePolicy policy;
  const int h = policy.render_h(nominal);
  const int w = policy.render_w(nominal);
  // Quarter-resolution render of the nominal shortest side.
  EXPECT_EQ(h, static_cast<int>(nominal * 0.25f + 0.5f));
  // 4:3 aspect from the rendered height.
  EXPECT_EQ(w, static_cast<int>(h * kAspect + 0.5f));
  EXPECT_GT(w, h);
}

TEST_P(PolicyAtScale, MonotoneInNominalScale) {
  const int nominal = GetParam();
  const ScalePolicy policy;
  EXPECT_LT(policy.render_h(nominal - 16), policy.render_h(nominal));
  EXPECT_LE(policy.render_w(nominal - 16), policy.render_w(nominal));
}

INSTANTIATE_TEST_SUITE_P(NominalScales, PolicyAtScale,
                         ::testing::Values(128, 240, 360, 480, 600),
                         [](const ::testing::TestParamInfo<int>& tpi) {
                           return "n" + std::to_string(tpi.param);
                         });

TEST(ScalePolicy, TinyScalesAreFlooredToUsableResolution) {
  const ScalePolicy policy;
  // The floor keeps the backbone's stride-8 grid non-degenerate even for
  // absurdly small nominal scales.
  EXPECT_GE(policy.render_h(1), 8);
  EXPECT_GE(policy.render_w(1), 8);
}

TEST(ScalePolicy, CustomRatioScalesEverything) {
  ScalePolicy half;
  half.render_ratio = 0.5f;
  const ScalePolicy quarter;
  for (int nominal : {128, 240, 360, 480, 600})
    EXPECT_NEAR(static_cast<double>(half.render_h(nominal)),
                2.0 * quarter.render_h(nominal), 1.0);
}

TEST(ScalePolicy, AreaRatioTracksNominalSquare) {
  // Runtime scales with area; the area ratio between nominal scales must
  // match (s1/s2)^2 closely — this is what makes the measured speedups
  // comparable to the paper's.
  const ScalePolicy policy;
  const double a600 = static_cast<double>(policy.render_h(600)) *
                      policy.render_w(600);
  const double a240 = static_cast<double>(policy.render_h(240)) *
                      policy.render_w(240);
  EXPECT_NEAR(a600 / a240, (600.0 * 600.0) / (240.0 * 240.0), 0.35);
}

}  // namespace
}  // namespace ada
