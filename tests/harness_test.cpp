// Experiment-harness plumbing tests (no training — uses untrained models).
#include "experiments/harness.h"

#include <gtest/gtest.h>

namespace ada {
namespace {

struct HarnessFixture : public ::testing::Test {
  HarnessFixture()
      : harness(Dataset::synth_vid(2, 2, 42), "") {}

  // Untrained detector/regressor built directly (bypasses the trainer).
  std::unique_ptr<Detector> make_detector() {
    DetectorConfig dcfg;
    dcfg.num_classes = harness.dataset().catalog().num_classes();
    dcfg.c1 = 4;
    dcfg.c2 = 6;
    dcfg.c3 = 8;
    Rng rng(9);
    return std::make_unique<Detector>(dcfg, &rng);
  }

  Harness harness;
};

TEST_F(HarnessFixture, ReferenceFrameIsScale600) {
  EXPECT_EQ(harness.reference_h(), 150);
  EXPECT_EQ(harness.reference_w(), 200);
}

TEST_F(HarnessFixture, RunFixedProducesOneEntryPerFrame) {
  auto det = make_detector();
  const auto runs = harness.run_fixed(det.get(), 240);
  ASSERT_EQ(runs.size(), harness.dataset().val_snippets().size());
  for (std::size_t s = 0; s < runs.size(); ++s) {
    const auto& snip = harness.dataset().val_snippets()[s];
    EXPECT_EQ(runs[s].frame_dets.size(),
              static_cast<std::size_t>(snip.num_frames()));
    EXPECT_EQ(runs[s].frame_ms.size(), runs[s].frame_dets.size());
    for (int scale : runs[s].frame_scales) EXPECT_EQ(scale, 240);
  }
}

TEST_F(HarnessFixture, DetectionsAreMappedToReferenceFrame) {
  auto det = make_detector();
  const auto runs = harness.run_fixed(det.get(), 240);
  for (const SnippetRun& run : runs)
    for (const auto& frame : run.frame_dets)
      for (const EvalDetection& d : frame) {
        EXPECT_GE(d.box.x1, 0.0f);
        EXPECT_LE(d.box.x2, 200.0f);
        EXPECT_GE(d.box.y1, 0.0f);
        EXPECT_LE(d.box.y2, 150.0f);
      }
}

TEST_F(HarnessFixture, EvaluateCountsAllFrames) {
  auto det = make_detector();
  MethodRun run = harness.evaluate("x", harness.run_fixed(det.get(), 128));
  int total_frames = 0;
  for (const auto& s : harness.dataset().val_snippets())
    total_frames += s.num_frames();
  EXPECT_EQ(static_cast<int>(run.used_scales.size()), total_frames);
  EXPECT_EQ(run.label, "x");
  EXPECT_GE(run.eval.map, 0.0f);
  EXPECT_LE(run.eval.map, 1.0f);
}

TEST_F(HarnessFixture, RandomRunUsesOnlySregScales) {
  auto det = make_detector();
  const ScaleSet sreg = ScaleSet::reg_default();
  MethodRun run =
      harness.evaluate("rnd", harness.run_random(det.get(), sreg, 3));
  for (int s : run.used_scales) EXPECT_TRUE(sreg.contains(s));
}

TEST_F(HarnessFixture, MultiscaleRespectsTopK) {
  auto det = make_detector();
  const auto runs = harness.run_multiscale(det.get(), ScaleSet::reg_default());
  for (const SnippetRun& run : runs)
    for (const auto& frame : run.frame_dets)
      EXPECT_LE(static_cast<int>(frame.size()), det->config().top_k);
}

TEST_F(HarnessFixture, DefaultRegressorConfigMatchesDetectorWidth) {
  const RegressorConfig rcfg = harness.default_regressor_config();
  DetectorConfig dcfg;
  EXPECT_EQ(rcfg.in_channels, dcfg.c3);
}

TEST(HarnessFactories, VidAndYtbbDiffer) {
  HarnessSizes sizes;
  sizes.train_snippets = 1;
  sizes.val_snippets = 1;
  Harness vid = make_vid_harness("", sizes);
  Harness ytbb = make_ytbb_harness("", sizes);
  EXPECT_EQ(vid.dataset().catalog().num_classes(), 30);
  EXPECT_EQ(ytbb.dataset().catalog().num_classes(), 23);
}

TEST(HarnessFactories, CacheDirEnvOverride) {
  setenv("ADASCALE_CACHE_DIR", "/tmp/ada_custom_cache", 1);
  EXPECT_EQ(default_cache_dir(), "/tmp/ada_custom_cache");
  unsetenv("ADASCALE_CACHE_DIR");
  EXPECT_EQ(default_cache_dir(), "model_cache");
}

TEST(ClassCatalogColors, BaseColorsAreWellSeparated) {
  // The palette must keep every class pair at a usable distance — this is
  // what the single-core training budget relies on.
  const ClassCatalog cat = ClassCatalog::synth_vid();
  float min_dist = 1e9f;
  for (int a = 0; a < cat.num_classes(); ++a)
    for (int b = a + 1; b < cat.num_classes(); ++b) {
      const Rgb& ca = cat.at(a).color;
      const Rgb& cb = cat.at(b).color;
      const float d = std::abs(ca.r - cb.r) + std::abs(ca.g - cb.g) +
                      std::abs(ca.b - cb.b);
      // Same lattice cell is allowed only when shape or texture differs.
      if (d < 1e-6f) {
        EXPECT_TRUE(cat.at(a).shape != cat.at(b).shape ||
                    cat.at(a).texture != cat.at(b).texture)
            << "classes " << a << " and " << b << " are indistinguishable";
      } else {
        min_dist = std::min(min_dist, d);
      }
    }
  EXPECT_GE(min_dist, 0.3f);
}

}  // namespace
}  // namespace ada
