#include "video/optical_flow.h"

#include <gtest/gtest.h>

#include <thread>

#include "tensor/image_ops.h"
#include "util/rng.h"

namespace ada {
namespace {

/// Textured test pattern (block matching needs local structure).
Tensor textured(int h, int w, std::uint64_t seed) {
  Rng rng(seed);
  Tensor img(1, 1, h, w);
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < w; ++j)
      img.at(0, 0, i, j) =
          0.5f + 0.3f * std::sin(0.9f * i) * std::cos(1.1f * j) +
          0.1f * rng.uniform();
  return img;
}

/// Shifts an image by integer (dy,dx) with border clamp.
Tensor shift(const Tensor& src, int dy, int dx) {
  Tensor out(1, 1, src.h(), src.w());
  for (int i = 0; i < src.h(); ++i)
    for (int j = 0; j < src.w(); ++j) {
      const int si = std::clamp(i + dy, 0, src.h() - 1);
      const int sj = std::clamp(j + dx, 0, src.w() - 1);
      out.at(0, 0, i, j) = src.at(0, 0, si, sj);
    }
  return out;
}

TEST(Grayscale, WeightsSumToOne) {
  Tensor rgb = Tensor::chw(3, 2, 2);
  rgb.fill(0.5f);
  const Tensor g = to_grayscale(rgb);
  EXPECT_EQ(g.c(), 1);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(g[i], 0.5f, 1e-5f);
}

TEST(Grayscale, GreenDominates) {
  Tensor rgb = Tensor::chw(3, 1, 1);
  rgb.at(0, 1, 0, 0) = 1.0f;  // green only
  const Tensor g = to_grayscale(rgb);
  EXPECT_NEAR(g[0], 0.587f, 1e-4f);
}

TEST(Flow, ZeroForIdenticalImages) {
  const Tensor img = textured(16, 20, 1);
  Tensor fy, fx;
  block_matching_flow(img, img, FlowConfig{}, &fy, &fx);
  for (std::size_t i = 0; i < fy.size(); ++i) {
    EXPECT_NEAR(fy[i], 0.0f, 0.51f);
    EXPECT_NEAR(fx[i], 0.0f, 0.51f);
  }
}

TEST(Flow, RecoversIntegerTranslation) {
  const Tensor ref = textured(20, 24, 2);
  // cur(i,j) = ref(i+2, j+1): backward flow from cur into ref is (+2, +1).
  const Tensor cur = shift(ref, 2, 1);
  Tensor fy, fx;
  FlowConfig cfg;
  cfg.search_radius = 3;
  block_matching_flow(ref, cur, cfg, &fy, &fx);
  // Check interior cells (borders are clamped).
  int good = 0, total = 0;
  for (int i = 4; i < 16; ++i)
    for (int j = 4; j < 20; ++j) {
      ++total;
      if (std::abs(fy.at(0, 0, i, j) - 2.0f) < 0.6f &&
          std::abs(fx.at(0, 0, i, j) - 1.0f) < 0.6f)
        ++good;
    }
  EXPECT_GT(static_cast<double>(good) / total, 0.85);
}

TEST(Flow, WarpWithEstimatedFlowReconstructsCurrent) {
  const Tensor ref = textured(20, 24, 3);
  const Tensor cur = shift(ref, 1, 2);
  Tensor fy, fx;
  block_matching_flow(ref, cur, FlowConfig{}, &fy, &fx);
  Tensor warped;
  bilinear_warp(ref, fy, fx, &warped);
  // Interior reconstruction error must be small.
  double err = 0;
  int n = 0;
  for (int i = 4; i < 16; ++i)
    for (int j = 4; j < 20; ++j) {
      err += std::abs(warped.at(0, 0, i, j) - cur.at(0, 0, i, j));
      ++n;
    }
  EXPECT_LT(err / n, 0.05);
}

TEST(Warp, IdentityFlowReproducesInputExactly) {
  // Zero flow means every destination pixel samples its own integer
  // coordinate: bilinear weights collapse to 1·src, so the warp must be a
  // bitwise copy — the property DFF leans on when a scene is static.
  Tensor src(1, 3, 14, 18);
  Rng rng(7);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = rng.uniform();
  Tensor fy(1, 1, 14, 18), fx(1, 1, 14, 18);
  fy.fill(0.0f);
  fx.fill(0.0f);
  Tensor out;
  bilinear_warp(src, fy, fx, &out);
  ASSERT_EQ(out.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_EQ(out[i], src[i]) << "element " << i;
}

TEST(Warp, OutOfBoundsFlowClampsToBorder) {
  // Flow vectors pointing far outside the image must clamp to the border
  // sample, never read out of bounds or produce non-finite values.
  const Tensor src = textured(10, 12, 8);
  Tensor fy(1, 1, 10, 12), fx(1, 1, 10, 12);
  fy.fill(1000.0f);   // way below the bottom edge
  fx.fill(-1000.0f);  // way left of the left edge
  Tensor out;
  bilinear_warp(src, fy, fx, &out);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 12; ++j) {
      const float v = out.at(0, 0, i, j);
      EXPECT_TRUE(std::isfinite(v));
      // Clamped sample: bottom-left corner pixel, exactly.
      EXPECT_EQ(v, src.at(0, 0, 9, 0)) << "(" << i << "," << j << ")";
    }

  // Mixed directions clamp per-axis.
  fy.fill(-1000.0f);
  fx.fill(1000.0f);
  bilinear_warp(src, fy, fx, &out);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 12; ++j)
      EXPECT_EQ(out.at(0, 0, i, j), src.at(0, 0, 0, 11));
}

TEST(Warp, DeterministicAcrossThreads) {
  // DFF's bit-identity contracts require the warp to be independent of the
  // threading environment: computing it concurrently from many threads (and
  // repeatedly) must reproduce the single-threaded bits exactly.
  const Tensor src = textured(24, 30, 9);
  Tensor fy(1, 1, 24, 30), fx(1, 1, 24, 30);
  Rng rng(10);
  for (std::size_t i = 0; i < fy.size(); ++i) {
    fy[i] = 4.0f * (rng.uniform() - 0.5f);
    fx[i] = 4.0f * (rng.uniform() - 0.5f);
  }
  Tensor baseline;
  bilinear_warp(src, fy, fx, &baseline);

  constexpr int kThreads = 4;
  std::vector<Tensor> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep)
        bilinear_warp(src, fy, fx, &results[static_cast<std::size_t>(t)]);
    });
  for (std::thread& t : threads) t.join();
  for (const Tensor& r : results) {
    ASSERT_EQ(r.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
      EXPECT_EQ(r[i], baseline[i]);
  }
}

TEST(Compose, ZeroAccumulatorReturnsStep) {
  // acc == 0 means the previous frame IS the key: composing any step with it
  // must reproduce the step bitwise (sample of an all-zero field is zero).
  Tensor acc_y(1, 1, 10, 12), acc_x(1, 1, 10, 12);
  acc_y.fill(0.0f);
  acc_x.fill(0.0f);
  Tensor step_y(1, 1, 10, 12), step_x(1, 1, 10, 12);
  Rng rng(11);
  for (std::size_t i = 0; i < step_y.size(); ++i) {
    step_y[i] = 4.0f * (rng.uniform() - 0.5f);
    step_x[i] = 4.0f * (rng.uniform() - 0.5f);
  }
  Tensor out_y, out_x;
  compose_flow(acc_y, acc_x, step_y, step_x, &out_y, &out_x);
  for (std::size_t i = 0; i < step_y.size(); ++i) {
    EXPECT_EQ(out_y[i], step_y[i]);
    EXPECT_EQ(out_x[i], step_x[i]);
  }
}

TEST(Compose, ZeroStepReturnsAccumulator) {
  // A static frame (step == 0) must leave the accumulated key->prev flow
  // unchanged: the sample lands exactly on each integer cell.
  Tensor acc_y(1, 1, 10, 12), acc_x(1, 1, 10, 12);
  Rng rng(12);
  for (std::size_t i = 0; i < acc_y.size(); ++i) {
    acc_y[i] = 4.0f * (rng.uniform() - 0.5f);
    acc_x[i] = 4.0f * (rng.uniform() - 0.5f);
  }
  Tensor step_y(1, 1, 10, 12), step_x(1, 1, 10, 12);
  step_y.fill(0.0f);
  step_x.fill(0.0f);
  Tensor out_y, out_x;
  compose_flow(acc_y, acc_x, step_y, step_x, &out_y, &out_x);
  for (std::size_t i = 0; i < acc_y.size(); ++i) {
    EXPECT_EQ(out_y[i], acc_y[i]);
    EXPECT_EQ(out_x[i], acc_x[i]);
  }
}

TEST(Compose, ConstantFieldsAdd) {
  // Uniform translations compose additively: acc = (a,b), step = (c,d)
  // gives exactly (a+c, b+d) everywhere (the bilinear sample of a constant
  // field is that constant, clamped or not).
  Tensor acc_y(1, 1, 8, 9), acc_x(1, 1, 8, 9);
  acc_y.fill(1.5f);
  acc_x.fill(-0.75f);
  Tensor step_y(1, 1, 8, 9), step_x(1, 1, 8, 9);
  step_y.fill(-0.5f);
  step_x.fill(2.25f);
  Tensor out_y, out_x;
  compose_flow(acc_y, acc_x, step_y, step_x, &out_y, &out_x);
  for (std::size_t i = 0; i < out_y.size(); ++i) {
    EXPECT_FLOAT_EQ(out_y[i], 1.0f);
    EXPECT_FLOAT_EQ(out_x[i], 1.5f);
  }
}

TEST(Compose, ComposedStepsTrackBeyondSearchRadius) {
  // The reason incremental flow exists: a cumulative shift of 4 cells is
  // outside a radius-2 search, so direct key->current matching fails, while
  // two in-budget steps composed together recover it.
  const Tensor key = textured(24, 28, 13);
  const Tensor mid = shift(key, 2, 0);   // key->mid backward flow = +2
  const Tensor cur = shift(key, 4, 0);   // key->cur backward flow = +4
  FlowConfig cfg;
  cfg.search_radius = 2;

  Tensor direct_y, direct_x;
  block_matching_flow(key, cur, cfg, &direct_y, &direct_x);

  Tensor acc_y, acc_x;
  block_matching_flow(key, mid, cfg, &acc_y, &acc_x);
  Tensor step_y, step_x;
  block_matching_flow(mid, cur, cfg, &step_y, &step_x);
  Tensor comp_y, comp_x;
  compose_flow(acc_y, acc_x, step_y, step_x, &comp_y, &comp_x);

  int comp_good = 0, direct_good = 0, total = 0;
  for (int i = 8; i < 18; ++i)
    for (int j = 6; j < 22; ++j) {
      ++total;
      if (std::abs(comp_y.at(0, 0, i, j) - 4.0f) < 0.6f) ++comp_good;
      if (std::abs(direct_y.at(0, 0, i, j) - 4.0f) < 0.6f) ++direct_good;
    }
  EXPECT_GT(static_cast<double>(comp_good) / total, 0.8);
  // Direct matching cannot even represent a 4-cell displacement.
  EXPECT_EQ(direct_good, 0);
}

TEST(Flow, DisplacementBoundedBySearchRadius) {
  const Tensor a = textured(12, 12, 4);
  const Tensor b = textured(12, 12, 5);  // unrelated images
  Tensor fy, fx;
  FlowConfig cfg;
  cfg.search_radius = 2;
  block_matching_flow(a, b, cfg, &fy, &fx);
  for (std::size_t i = 0; i < fy.size(); ++i) {
    EXPECT_LE(std::abs(fy[i]), 2.5f);
    EXPECT_LE(std::abs(fx[i]), 2.5f);
  }
}

}  // namespace
}  // namespace ada
