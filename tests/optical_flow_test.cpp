#include "video/optical_flow.h"

#include <gtest/gtest.h>

#include "tensor/image_ops.h"
#include "util/rng.h"

namespace ada {
namespace {

/// Textured test pattern (block matching needs local structure).
Tensor textured(int h, int w, std::uint64_t seed) {
  Rng rng(seed);
  Tensor img(1, 1, h, w);
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < w; ++j)
      img.at(0, 0, i, j) =
          0.5f + 0.3f * std::sin(0.9f * i) * std::cos(1.1f * j) +
          0.1f * rng.uniform();
  return img;
}

/// Shifts an image by integer (dy,dx) with border clamp.
Tensor shift(const Tensor& src, int dy, int dx) {
  Tensor out(1, 1, src.h(), src.w());
  for (int i = 0; i < src.h(); ++i)
    for (int j = 0; j < src.w(); ++j) {
      const int si = std::clamp(i + dy, 0, src.h() - 1);
      const int sj = std::clamp(j + dx, 0, src.w() - 1);
      out.at(0, 0, i, j) = src.at(0, 0, si, sj);
    }
  return out;
}

TEST(Grayscale, WeightsSumToOne) {
  Tensor rgb = Tensor::chw(3, 2, 2);
  rgb.fill(0.5f);
  const Tensor g = to_grayscale(rgb);
  EXPECT_EQ(g.c(), 1);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(g[i], 0.5f, 1e-5f);
}

TEST(Grayscale, GreenDominates) {
  Tensor rgb = Tensor::chw(3, 1, 1);
  rgb.at(0, 1, 0, 0) = 1.0f;  // green only
  const Tensor g = to_grayscale(rgb);
  EXPECT_NEAR(g[0], 0.587f, 1e-4f);
}

TEST(Flow, ZeroForIdenticalImages) {
  const Tensor img = textured(16, 20, 1);
  Tensor fy, fx;
  block_matching_flow(img, img, FlowConfig{}, &fy, &fx);
  for (std::size_t i = 0; i < fy.size(); ++i) {
    EXPECT_NEAR(fy[i], 0.0f, 0.51f);
    EXPECT_NEAR(fx[i], 0.0f, 0.51f);
  }
}

TEST(Flow, RecoversIntegerTranslation) {
  const Tensor ref = textured(20, 24, 2);
  // cur(i,j) = ref(i+2, j+1): backward flow from cur into ref is (+2, +1).
  const Tensor cur = shift(ref, 2, 1);
  Tensor fy, fx;
  FlowConfig cfg;
  cfg.search_radius = 3;
  block_matching_flow(ref, cur, cfg, &fy, &fx);
  // Check interior cells (borders are clamped).
  int good = 0, total = 0;
  for (int i = 4; i < 16; ++i)
    for (int j = 4; j < 20; ++j) {
      ++total;
      if (std::abs(fy.at(0, 0, i, j) - 2.0f) < 0.6f &&
          std::abs(fx.at(0, 0, i, j) - 1.0f) < 0.6f)
        ++good;
    }
  EXPECT_GT(static_cast<double>(good) / total, 0.85);
}

TEST(Flow, WarpWithEstimatedFlowReconstructsCurrent) {
  const Tensor ref = textured(20, 24, 3);
  const Tensor cur = shift(ref, 1, 2);
  Tensor fy, fx;
  block_matching_flow(ref, cur, FlowConfig{}, &fy, &fx);
  Tensor warped;
  bilinear_warp(ref, fy, fx, &warped);
  // Interior reconstruction error must be small.
  double err = 0;
  int n = 0;
  for (int i = 4; i < 16; ++i)
    for (int j = 4; j < 20; ++j) {
      err += std::abs(warped.at(0, 0, i, j) - cur.at(0, 0, i, j));
      ++n;
    }
  EXPECT_LT(err / n, 0.05);
}

TEST(Flow, DisplacementBoundedBySearchRadius) {
  const Tensor a = textured(12, 12, 4);
  const Tensor b = textured(12, 12, 5);  // unrelated images
  Tensor fy, fx;
  FlowConfig cfg;
  cfg.search_radius = 2;
  block_matching_flow(a, b, cfg, &fy, &fx);
  for (std::size_t i = 0; i < fy.size(); ++i) {
    EXPECT_LE(std::abs(fy[i]), 2.5f);
    EXPECT_LE(std::abs(fx[i]), 2.5f);
  }
}

}  // namespace
}  // namespace ada
