#include "adascale/optimal_scale.h"

#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ada {
namespace {

GtBox gt(float x1, float y1, float x2, float y2, int cls) {
  GtBox g;
  g.x1 = x1; g.y1 = y1; g.x2 = x2; g.y2 = y2; g.class_id = cls;
  return g;
}

/// Builds a detection whose box and anchor coincide with the GT and whose
/// class probabilities put `p` on the GT class (uniform elsewhere).
Detection make_det(const GtBox& g, int num_classes, float p_gt) {
  Detection d;
  d.box = Box::from_gt(g);
  d.anchor = d.box;
  d.class_id = g.class_id;
  d.score = p_gt;
  d.probs.assign(static_cast<std::size_t>(num_classes + 1),
                 (1.0f - p_gt) / static_cast<float>(num_classes));
  d.probs[static_cast<std::size_t>(g.class_id + 1)] = p_gt;
  d.delta = {0, 0, 0, 0};  // anchor == target => perfect regression
  return d;
}

TEST(BoxLoss, PerfectPredictionLossIsMinusLogP) {
  const GtBox g = gt(10, 10, 30, 30, 2);
  const Detection d = make_det(g, 5, 0.8f);
  bool fg = false;
  const float loss = detection_box_loss(d, {g}, 0.5f, 1.0f, &fg);
  EXPECT_TRUE(fg);
  EXPECT_NEAR(loss, -std::log(0.8f), 1e-4f);
}

TEST(BoxLoss, NoOverlapIsBackground) {
  const GtBox g = gt(10, 10, 30, 30, 2);
  Detection d = make_det(g, 5, 0.8f);
  d.box = Box{100, 100, 120, 120};
  d.anchor = d.box;
  bool fg = true;
  const float loss = detection_box_loss(d, {g}, 0.5f, 1.0f, &fg);
  EXPECT_FALSE(fg);
  EXPECT_EQ(loss, 0.0f);
}

TEST(BoxLoss, RegressionErrorAddsLambdaWeightedLoss) {
  const GtBox g = gt(10, 10, 30, 30, 1);
  Detection d = make_det(g, 5, 0.8f);
  d.delta = {0.5f, 0.0f, 0.0f, 0.0f};  // pred delta differs from target (0)
  // Keep box overlapping: the box field stays on the GT.
  bool fg = false;
  const float l1 = detection_box_loss(d, {g}, 0.5f, 1.0f, &fg);
  const float l2 = detection_box_loss(d, {g}, 0.5f, 2.0f, &fg);
  const float lcls = -std::log(0.8f);
  EXPECT_NEAR(l1 - lcls, 0.125f, 1e-4f);       // smooth-L1 of 0.5
  EXPECT_NEAR(l2 - lcls, 0.25f, 1e-4f);        // lambda doubles it
}

TEST(BoxLoss, MatchesBestIouGt) {
  const GtBox g1 = gt(0, 0, 20, 20, 0);
  const GtBox g2 = gt(5, 5, 25, 25, 3);
  Detection d = make_det(g2, 5, 0.9f);
  bool fg = false;
  const float loss = detection_box_loss(d, {g1, g2}, 0.5f, 1.0f, &fg);
  EXPECT_TRUE(fg);
  // Matched to g2 (IoU 1) so the class prob used is class 3's = 0.9.
  EXPECT_NEAR(loss, -std::log(0.9f), 1e-4f);
}

TEST(SortedForegroundLosses, SortsAscendingAndFiltersBackground) {
  const GtBox g1 = gt(0, 0, 20, 20, 0);
  const GtBox g2 = gt(50, 50, 70, 70, 1);
  DetectionOutput out;
  out.detections.push_back(make_det(g1, 3, 0.5f));   // loss ~0.69
  out.detections.push_back(make_det(g2, 3, 0.9f));   // loss ~0.105
  Detection bgd = make_det(g1, 3, 0.9f);
  bgd.box = Box{200, 200, 220, 220};
  out.detections.push_back(bgd);                     // background
  const auto losses = sorted_foreground_losses(out, {g1, g2}, 0.5f, 1.0f);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_LT(losses[0], losses[1]);
  EXPECT_NEAR(losses[0], -std::log(0.9f), 1e-3f);
}

// ---- the L̂ metric itself, via a controlled fake-scale experiment ----
// We can't easily fabricate DetectionOutputs per scale through the public
// compute_scale_metric (it runs a real detector), so the equalization logic
// is exercised through sorted_foreground_losses + a local reimplementation
// cross-check here, and end-to-end through integration_test.cpp.

TEST(ScaleMetricLogic, EqualizedSumPrefersLowerPerBoxLoss) {
  // Scale A: two fg boxes with losses {0.1, 2.0}; scale B: one fg {0.3}.
  // n_min = 1: L̂A = 0.1, L̂B = 0.3 -> A wins even though A's total is higher.
  std::vector<float> a = {0.1f, 2.0f};
  std::vector<float> b = {0.3f};
  const int n_min = static_cast<int>(std::min(a.size(), b.size()));
  float la = 0, lb = 0;
  for (int i = 0; i < n_min; ++i) {
    la += a[static_cast<std::size_t>(i)];
    lb += b[static_cast<std::size_t>(i)];
  }
  EXPECT_LT(la, lb);
}


// --- summarize_scale_losses: the pure Eq. (2) decision core -----------------

TEST(SummarizeScaleLosses, EqualizationLimitsSumToNmin) {
  // Scale A has 3 foregrounds, scale B has 1: the equalized metric compares
  // only the single best box at each (Fig. 3), so B's lower best loss wins
  // even though its total is higher than A's best.
  const std::vector<int> scales = {600, 300};
  const std::vector<std::vector<float>> losses = {{0.2f, 0.5f, 0.9f}, {0.1f}};
  const std::vector<int> n_det = {10, 4};
  const ScaleMetric m =
      summarize_scale_losses(scales, losses, n_det, OptimalScaleConfig{});
  EXPECT_EQ(m.n_min, 1);
  ASSERT_EQ(m.lhat.size(), 2u);
  EXPECT_FLOAT_EQ(m.lhat[0], 0.2f);  // only the smallest of A's three
  EXPECT_FLOAT_EQ(m.lhat[1], 0.1f);
  EXPECT_EQ(m.optimal_scale, 300);
}

TEST(SummarizeScaleLosses, NaiveVariantFavorsFewerForegrounds) {
  // Same inputs without equalization: scale A is penalized for having MORE
  // (well-detected) foregrounds — the bias Sec. 3.1 warns about.
  const std::vector<int> scales = {600, 300};
  const std::vector<std::vector<float>> losses = {{0.2f, 0.5f, 0.9f},
                                                  {1.2f}};
  const std::vector<int> n_det = {10, 4};
  OptimalScaleConfig naive;
  naive.equalize_fg = false;
  const ScaleMetric nm = summarize_scale_losses(scales, losses, n_det, naive);
  EXPECT_FLOAT_EQ(nm.lhat[0], 1.6f);  // 0.2 + 0.5 + 0.9
  EXPECT_EQ(nm.optimal_scale, 300);   // naive picks the 1-box scale

  // The equalized metric correctly prefers 600 here (0.2 < 1.2).
  const ScaleMetric em =
      summarize_scale_losses(scales, losses, n_det, OptimalScaleConfig{});
  EXPECT_EQ(em.optimal_scale, 600);
}

TEST(SummarizeScaleLosses, TieOnLhatPrefersSmallerScale) {
  const std::vector<int> scales = {600, 240};
  const std::vector<std::vector<float>> losses = {{0.3f}, {0.3f}};
  const ScaleMetric m = summarize_scale_losses(scales, losses, {5, 5},
                                               OptimalScaleConfig{});
  EXPECT_EQ(m.optimal_scale, 240);
}

TEST(SummarizeScaleLosses, ZeroForegroundsFallsBackToMostForegrounds) {
  // n_min = 0: the scale that still found SOME foregrounds wins.
  const std::vector<int> scales = {600, 360, 128};
  const std::vector<std::vector<float>> losses = {{0.4f, 0.6f}, {0.5f}, {}};
  const ScaleMetric m = summarize_scale_losses(scales, losses, {9, 5, 2},
                                               OptimalScaleConfig{});
  EXPECT_EQ(m.n_min, 0);
  EXPECT_EQ(m.optimal_scale, 600);
}

TEST(SummarizeScaleLosses, AllEmptyPrefersFewestDetectionsThenLargerScale) {
  // Nothing matched anywhere: fewest false positives wins, larger scale
  // breaks the remaining tie (keep looking at full resolution).
  const std::vector<int> scales = {600, 360, 128};
  const std::vector<std::vector<float>> empty3 = {{}, {}, {}};
  const ScaleMetric a = summarize_scale_losses(scales, empty3, {7, 3, 5},
                                               OptimalScaleConfig{});
  EXPECT_EQ(a.optimal_scale, 360);
  const ScaleMetric b = summarize_scale_losses(scales, empty3, {4, 4, 4},
                                               OptimalScaleConfig{});
  EXPECT_EQ(b.optimal_scale, 600);
}

TEST(SummarizeScaleLosses, MatchesComputeScaleMetricOnRealDetector) {
  // The separable core and the detector-driven wrapper must agree.
  Dataset ds = Dataset::synth_vid(1, 1, 64);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  Rng rng(8);
  Detector det(dcfg, &rng);
  const Renderer renderer = ds.make_renderer();
  const Scene& scene = *ds.val_frames()[0];
  const ScaleSet sreg = ScaleSet::reg_default();
  const OptimalScaleConfig cfg;

  std::vector<std::vector<float>> losses;
  std::vector<int> n_det;
  for (int scale : sreg.scales) {
    const Tensor image = renderer.render_at_scale(scene, scale, ds.scale_policy());
    DetectionOutput out = det.detect(image);
    losses.push_back(sorted_foreground_losses(
        out, scene_ground_truth(scene, image.h(), image.w()), cfg.fg_iou,
        cfg.reg_weight));
    n_det.push_back(static_cast<int>(out.detections.size()));
  }
  const ScaleMetric direct =
      summarize_scale_losses(sreg.scales, losses, n_det, cfg);
  const ScaleMetric wrapped = compute_scale_metric(
      &det, renderer, ds.scale_policy(), scene, sreg, cfg);
  EXPECT_EQ(direct.optimal_scale, wrapped.optimal_scale);
  EXPECT_EQ(direct.n_min, wrapped.n_min);
  EXPECT_EQ(direct.n_fg, wrapped.n_fg);
}

}  // namespace
}  // namespace ada
