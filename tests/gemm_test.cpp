// SGEMM backend equivalence: packed vs reference across odd shapes, fused
// vs unfused epilogue, strided (transposed) operands, accumulation, and
// run-to-run determinism — plus conv-level agreement on the shapes the
// tiling does not divide evenly (k=1/3, stride 2, dilation 4).
#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "detection/detector.h"
#include "tensor/conv2d.h"
#include "tensor/linear.h"
#include "util/rng.h"

namespace ada {
namespace {

/// Restores the process-wide backend on scope exit so tests cannot leak
/// their override into each other.
struct BackendGuard {
  GemmBackend saved = gemm_backend();
  ~BackendGuard() { set_gemm_backend(saved); }
};

std::vector<float> random_vec(std::size_t n, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng->normal() * scale;
  return v;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  float rel_tol, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(b[i]));
    EXPECT_NEAR(a[i], b[i], rel_tol * scale) << what << " i=" << i;
  }
}

std::vector<float> run_sgemm(GemmBackend be, int M, int N, int K,
                             const std::vector<float>& A,
                             const std::vector<float>& B,
                             const GemmEpilogue& epi = {}) {
  BackendGuard guard;
  set_gemm_backend(be);
  std::vector<float> C(static_cast<std::size_t>(M) * N, -7.25f);
  sgemm(M, N, K, GemmMat{A.data(), K, 1}, GemmMat{B.data(), N, 1}, C.data(),
        N, /*accumulate=*/false, epi);
  return C;
}

TEST(Gemm, PackedMatchesReferenceAcrossOddShapes) {
  Rng rng(11);
  // Shapes straddle every blocking edge: micro-tile remainders (M % 6,
  // N % 16), the N stripe boundary (1024), and the K block boundary (512).
  const int shapes[][3] = {{1, 1, 1},    {5, 15, 3},   {6, 16, 27},
                           {7, 17, 48},  {48, 100, 433}, {3, 1030, 5},
                           {2, 40, 700}, {13, 2060, 520}};
  for (const auto& s : shapes) {
    const int M = s[0], N = s[1], K = s[2];
    const auto A = random_vec(static_cast<std::size_t>(M) * K, &rng);
    const auto B = random_vec(static_cast<std::size_t>(K) * N, &rng);
    const auto packed = run_sgemm(GemmBackend::kPacked, M, N, K, A, B);
    const auto ref = run_sgemm(GemmBackend::kReference, M, N, K, A, B);
    expect_close(packed, ref, 1e-4f, "packed vs reference");
  }
}

TEST(Gemm, FusedEpilogueEqualsUnfusedExactly) {
  Rng rng(13);
  const int M = 14, N = 530, K = 75;
  const auto A = random_vec(static_cast<std::size_t>(M) * K, &rng);
  const auto B = random_vec(static_cast<std::size_t>(K) * N, &rng);
  const auto row_bias = random_vec(static_cast<std::size_t>(M), &rng);

  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    GemmEpilogue epi;
    epi.row_bias = row_bias.data();
    epi.relu = true;
    const auto fused = run_sgemm(be, M, N, K, A, B, epi);

    // Unfused: raw GEMM, then bias + ReLU as separate passes.  For the
    // packed backend the fused write-out performs the identical float ops
    // in the identical order, so equality is exact.  The reference backend
    // seeds its accumulator with the bias (legacy kernel order), so it is
    // only close.
    auto manual = run_sgemm(be, M, N, K, A, B);
    for (int m = 0; m < M; ++m)
      for (int n = 0; n < N; ++n) {
        float& v = manual[static_cast<std::size_t>(m) * N + n];
        v = std::max(v + row_bias[static_cast<std::size_t>(m)], 0.0f);
      }
    if (be == GemmBackend::kPacked) {
      ASSERT_EQ(0, std::memcmp(fused.data(), manual.data(),
                               fused.size() * sizeof(float)))
          << "packed fused epilogue must be bit-identical to unfused";
    } else {
      expect_close(fused, manual, 1e-4f, "reference fused vs unfused");
    }
  }
}

TEST(Gemm, RunToRunBitIdentical) {
  Rng rng(17);
  const int M = 9, N = 1100, K = 300;
  const auto A = random_vec(static_cast<std::size_t>(M) * K, &rng);
  const auto B = random_vec(static_cast<std::size_t>(K) * N, &rng);
  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    const auto c1 = run_sgemm(be, M, N, K, A, B);
    const auto c2 = run_sgemm(be, M, N, K, A, B);
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
  }
}

TEST(Gemm, TransposedOperandViewsMatchMaterialized) {
  Rng rng(19);
  const int M = 11, N = 70, K = 23;
  // At (column-major storage of A, i.e. A^T materialized row-major).
  const auto At = random_vec(static_cast<std::size_t>(K) * M, &rng);
  const auto B = random_vec(static_cast<std::size_t>(K) * N, &rng);
  std::vector<float> A(static_cast<std::size_t>(M) * K);
  for (int m = 0; m < M; ++m)
    for (int k = 0; k < K; ++k)
      A[static_cast<std::size_t>(m) * K + k] =
          At[static_cast<std::size_t>(k) * M + m];

  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    BackendGuard guard;
    set_gemm_backend(be);
    std::vector<float> c_plain(static_cast<std::size_t>(M) * N, 0.0f);
    std::vector<float> c_strided(static_cast<std::size_t>(M) * N, 0.0f);
    sgemm(M, N, K, GemmMat{A.data(), K, 1}, GemmMat{B.data(), N, 1},
          c_plain.data(), N, false);
    // Same A read through the transposed view: rs=1, cs=M over At.
    sgemm(M, N, K, GemmMat{At.data(), 1, M}, GemmMat{B.data(), N, 1},
          c_strided.data(), N, false);
    ASSERT_EQ(0, std::memcmp(c_plain.data(), c_strided.data(),
                             c_plain.size() * sizeof(float)));
  }
}

TEST(Gemm, AccumulateAddsToExistingC) {
  Rng rng(23);
  const int M = 6, N = 33, K = 540;  // K crosses the 512 block boundary
  const auto A = random_vec(static_cast<std::size_t>(M) * K, &rng);
  const auto B = random_vec(static_cast<std::size_t>(K) * N, &rng);
  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    BackendGuard guard;
    set_gemm_backend(be);
    std::vector<float> base(static_cast<std::size_t>(M) * N);
    for (std::size_t i = 0; i < base.size(); ++i)
      base[i] = static_cast<float>(i % 31) * 0.5f;
    std::vector<float> acc = base;
    sgemm(M, N, K, GemmMat{A.data(), K, 1}, GemmMat{B.data(), N, 1},
          acc.data(), N, /*accumulate=*/true);
    std::vector<float> fresh(static_cast<std::size_t>(M) * N, 0.0f);
    sgemm(M, N, K, GemmMat{A.data(), K, 1}, GemmMat{B.data(), N, 1},
          fresh.data(), N, /*accumulate=*/false);
    for (std::size_t i = 0; i < acc.size(); ++i)
      EXPECT_NEAR(acc[i], base[i] + fresh[i],
                  1e-4f * std::max(1.0f, std::fabs(acc[i])));
  }
}

// ------------------------------------------------------------- conv level

void fill_random(Tensor* t, Rng* rng, float scale = 1.0f) {
  for (std::size_t i = 0; i < t->size(); ++i)
    t->storage()[i] = rng->normal() * scale;
}

Tensor conv_with_backend(GemmBackend be, const ConvSpec& s, const Tensor& x,
                         const Tensor& w, const Tensor& b, bool fuse_relu) {
  BackendGuard guard;
  set_gemm_backend(be);
  Tensor y;
  conv2d_forward(s, x, w, b, &y, fuse_relu);
  return y;
}

TEST(GemmConv, BackendsAgreeOnOddConvShapes) {
  Rng rng(29);
  // kernel, stride, pad, dilation — the detector's real configs plus the
  // awkward ones the issue calls out (k=1 stride 2; dilation 4).
  const int specs[][4] = {
      {1, 1, 0, 1}, {1, 2, 0, 1}, {3, 1, 1, 1},
      {3, 2, 1, 1}, {3, 1, 4, 4}, {5, 2, 2, 1}};
  for (const auto& sp : specs) {
    ConvSpec s{5, 7, sp[0], sp[1], sp[2], sp[3]};
    Tensor x = Tensor::chw(5, 19, 23);  // non-multiple-of-tile cell count
    fill_random(&x, &rng);
    Tensor w(7, 5, s.kernel, s.kernel);
    fill_random(&w, &rng);
    Tensor b(1, 7, 1, 1);
    fill_random(&b, &rng);
    const Tensor packed =
        conv_with_backend(GemmBackend::kPacked, s, x, w, b, false);
    const Tensor ref =
        conv_with_backend(GemmBackend::kReference, s, x, w, b, false);
    ASSERT_TRUE(packed.same_shape(ref));
    for (std::size_t i = 0; i < packed.size(); ++i)
      EXPECT_NEAR(packed[i], ref[i],
                  1e-4f * std::max(1.0f, std::fabs(ref[i])))
          << "k=" << s.kernel << " stride=" << s.stride
          << " dil=" << s.dilation << " i=" << i;
  }
}

TEST(GemmConv, FusedReluEqualsSeparateReluExactly) {
  Rng rng(31);
  ConvSpec s{3, 8, 3, 1, 1, 1};
  Tensor x = Tensor::chw(3, 17, 21);
  fill_random(&x, &rng);
  Tensor w(8, 3, 3, 3);
  fill_random(&w, &rng);
  Tensor b(1, 8, 1, 1);
  fill_random(&b, &rng);
  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    const Tensor fused = conv_with_backend(be, s, x, w, b, true);
    Tensor plain = conv_with_backend(be, s, x, w, b, false);
    for (std::size_t i = 0; i < plain.size(); ++i)
      plain[i] = std::max(plain[i], 0.0f);
    ASSERT_TRUE(fused.same_shape(plain));
    ASSERT_EQ(0, std::memcmp(fused.data(), plain.data(),
                             fused.size() * sizeof(float)))
        << "fused conv+ReLU must be bit-identical to conv then ReLU";
  }
}

TEST(GemmConv, BackwardBackendsAgree) {
  Rng rng(37);
  for (const auto dil : {1, 4}) {
    ConvSpec s{4, 6, 3, 1, dil, dil};
    Tensor x = Tensor::chw(4, 13, 11);
    fill_random(&x, &rng, 0.5f);
    Tensor w(6, 4, 3, 3);
    fill_random(&w, &rng, 0.5f);
    Tensor dy(1, 6, s.out_dim(13), s.out_dim(11));
    fill_random(&dy, &rng);

    auto run = [&](GemmBackend be, Tensor* dx, Tensor* dw, Tensor* db) {
      BackendGuard guard;
      set_gemm_backend(be);
      *dx = Tensor(1, 4, 13, 11);
      *dw = Tensor(6, 4, 3, 3);
      *db = Tensor(1, 6, 1, 1);
      conv2d_backward(s, x, w, dy, dx, dw, db);
    };
    Tensor dx_p, dw_p, db_p, dx_r, dw_r, db_r;
    run(GemmBackend::kPacked, &dx_p, &dw_p, &db_p);
    run(GemmBackend::kReference, &dx_r, &dw_r, &db_r);
    for (std::size_t i = 0; i < dx_p.size(); ++i)
      EXPECT_NEAR(dx_p[i], dx_r[i], 1e-3f * std::max(1.0f, std::fabs(dx_r[i])));
    for (std::size_t i = 0; i < dw_p.size(); ++i)
      EXPECT_NEAR(dw_p[i], dw_r[i], 1e-3f * std::max(1.0f, std::fabs(dw_r[i])));
    for (std::size_t i = 0; i < db_p.size(); ++i)
      EXPECT_NEAR(db_p[i], db_r[i], 1e-3f * std::max(1.0f, std::fabs(db_r[i])));
  }
}

/// Acceptance-level check: the whole detector forward agrees between
/// backends within 1e-4 relative tolerance and is bit-identical run-to-run
/// under the packed path.
TEST(GemmDetector, BackendsAgreeWithinTolerance) {
  DetectorConfig cfg;
  cfg.num_classes = 5;
  Rng rng(7);
  Detector det(cfg, &rng);
  Tensor img(1, 3, 64, 80);
  Rng pix(3);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = pix.uniform();

  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  det.forward(img);
  const Tensor run1 = det.features();
  det.forward(img);
  const Tensor run2 = det.features();
  ASSERT_EQ(0, std::memcmp(run1.data(), run2.data(),
                           run1.size() * sizeof(float)))
      << "packed detector forward must be bit-identical run-to-run";

  set_gemm_backend(GemmBackend::kReference);
  det.forward(img);
  const Tensor ref = det.features();
  ASSERT_TRUE(run1.same_shape(ref));
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(run1[i], ref[i], 1e-4f * std::max(1.0f, std::fabs(ref[i])));
}

TEST(GemmLinear, MatchesDoublePrecisionReference) {
  Rng rng(41);
  const int batch = 3, in = 37, out = 5;
  Tensor x(batch, in, 1, 1);
  fill_random(&x, &rng);
  Tensor w(out, in, 1, 1);
  fill_random(&w, &rng);
  Tensor b(1, out, 1, 1);
  fill_random(&b, &rng);
  for (GemmBackend be : {GemmBackend::kPacked, GemmBackend::kReference}) {
    BackendGuard guard;
    set_gemm_backend(be);
    Tensor y;
    linear_forward(x, w, b, &y);
    for (int n = 0; n < batch; ++n)
      for (int o = 0; o < out; ++o) {
        double acc = b[static_cast<std::size_t>(o)];
        for (int i = 0; i < in; ++i)
          acc += static_cast<double>(w.at(o, i, 0, 0)) * x.at(n, i, 0, 0);
        EXPECT_NEAR(y.at(n, o, 0, 0), acc, 1e-4);
      }
  }
}

}  // namespace
}  // namespace ada
