#include "runtime/multi_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "data/dataset.h"

namespace ada {
namespace {

// Pin the kernel-level pool to serial before it is first used: this binary
// measures *stream-level* scaling, and inner-kernel parallelism would also
// accelerate the serial baseline, hiding the effect under test.
const bool g_serial_kernels = [] {
  setenv("ADASCALE_THREADS", "1", /*overwrite=*/1);
  return true;
}();

class MultiStreamTest : public ::testing::Test {
 protected:
  MultiStreamTest()
      : dataset_(Dataset::synth_vid(1, 4, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  std::vector<const Snippet*> val_jobs() const {
    std::vector<const Snippet*> jobs;
    for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);
    return jobs;
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(MultiStreamTest, CloneDetectorPredictsIdentically) {
  auto clone = clone_detector(detector_.get());
  const Scene& scene = dataset_.val_snippets()[0].frames[0];
  const Tensor img =
      renderer_.render_at_scale(scene, 240, dataset_.scale_policy());
  DetectionOutput a = detector_->detect(img);
  DetectionOutput b = clone->detect(img);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].class_id, b.detections[i].class_id);
    EXPECT_EQ(a.detections[i].score, b.detections[i].score);
    EXPECT_EQ(a.detections[i].box.x1, b.detections[i].box.x1);
    EXPECT_EQ(a.detections[i].box.y2, b.detections[i].box.y2);
  }
}

TEST_F(MultiStreamTest, ConcurrentMatchesSerialBitForBit) {
  // Same jobs through the same per-stream pipelines: dedicated-thread
  // execution must not change any output (streams share nothing but the
  // read-only renderer and the runtime pool).
  MultiStreamRunner concurrent(detector_.get(), regressor_.get(), &renderer_,
                               dataset_.scale_policy(),
                               ScaleSet::reg_default(), 4);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4);
  const auto jobs = val_jobs();
  MultiStreamResult par = concurrent.run(jobs);
  MultiStreamResult ref = serial.run_serial(jobs);

  ASSERT_EQ(par.streams.size(), ref.streams.size());
  EXPECT_EQ(par.total_frames, ref.total_frames);
  EXPECT_EQ(par.total_frames,
            static_cast<long>(jobs.size()) *
                dataset_.val_snippets()[0].num_frames());
  for (std::size_t s = 0; s < par.streams.size(); ++s) {
    const StreamOutput& a = par.streams[s];
    const StreamOutput& b = ref.streams[s];
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
      EXPECT_EQ(a.frames[f].scale_used, b.frames[f].scale_used);
      EXPECT_EQ(a.frames[f].next_scale, b.frames[f].next_scale);
      EXPECT_EQ(a.frames[f].regressed_t, b.frames[f].regressed_t);
      ASSERT_EQ(a.frames[f].detections.detections.size(),
                b.frames[f].detections.detections.size());
      for (std::size_t d = 0; d < a.frames[f].detections.detections.size();
           ++d) {
        EXPECT_EQ(a.frames[f].detections.detections[d].score,
                  b.frames[f].detections.detections[d].score);
        EXPECT_EQ(a.frames[f].detections.detections[d].box.x1,
                  b.frames[f].detections.detections[d].box.x1);
      }
    }
  }
}

TEST_F(MultiStreamTest, RoundRobinAssignmentIsStatic) {
  MultiStreamRunner runner(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           3);
  const auto jobs = val_jobs();  // 4 jobs over 3 streams: 2/1/1
  MultiStreamResult r = runner.run(jobs);
  const int frames = dataset_.val_snippets()[0].num_frames();
  EXPECT_EQ(static_cast<int>(r.streams[0].frames.size()), 2 * frames);
  EXPECT_EQ(static_cast<int>(r.streams[1].frames.size()), frames);
  EXPECT_EQ(static_cast<int>(r.streams[2].frames.size()), frames);
}

TEST_F(MultiStreamTest, ScaleTrajectoriesRestartPerSnippet) {
  MultiStreamRunner runner(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           1);
  const auto jobs = val_jobs();
  MultiStreamResult r = runner.run(jobs);
  const int frames = dataset_.val_snippets()[0].num_frames();
  // Every snippet's first frame runs at the init scale (Algorithm 1).
  for (std::size_t j = 0; j < jobs.size(); ++j)
    EXPECT_EQ(r.streams[0].frames[j * static_cast<std::size_t>(frames)]
                  .scale_used,
              600);
}

TEST_F(MultiStreamTest, ConcurrentThroughputScalesWithCores) {
  // The acceptance bar: >= 2x aggregate throughput over serial with 4+
  // concurrent pipelines — only meaningful with 4+ physical cores, so the
  // assertion is gated; the comparison itself runs everywhere.
  const unsigned cores = std::thread::hardware_concurrency();
  MultiStreamRunner runner(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4);
  const auto jobs = val_jobs();
  // Best of two runs per mode damps transient scheduling noise (the test is
  // also marked RUN_SERIAL in CMake so parallel ctest neighbors don't steal
  // the cores under measurement).
  MultiStreamResult serial = runner.run_serial(jobs);
  MultiStreamResult serial2 = runner.run_serial(jobs);
  serial.aggregate_fps = std::max(serial.aggregate_fps,
                                  serial2.aggregate_fps);
  MultiStreamResult par = runner.run(jobs);
  MultiStreamResult par2 = runner.run(jobs);
  par.aggregate_fps = std::max(par.aggregate_fps, par2.aggregate_fps);
  EXPECT_GT(par.aggregate_fps, 0.0);
  EXPECT_GT(serial.aggregate_fps, 0.0);
  if (cores >= 4) {
    EXPECT_GE(par.aggregate_fps, 2.0 * serial.aggregate_fps)
        << "4 concurrent pipelines on " << cores
        << " cores should at least double aggregate throughput";
  } else {
    GTEST_LOG_(INFO) << "only " << cores
                     << " hardware threads; skipping the 2x speedup bar "
                        "(speedup measured: "
                     << (par.aggregate_fps / serial.aggregate_fps) << "x)";
  }
}

}  // namespace
}  // namespace ada
