#include "detection/box.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ada {
namespace {

TEST(Box, AreaAndCenter) {
  Box b{0, 0, 10, 20};
  EXPECT_FLOAT_EQ(b.area(), 200.0f);
  EXPECT_FLOAT_EQ(b.cx(), 5.0f);
  EXPECT_FLOAT_EQ(b.cy(), 10.0f);
}

TEST(Box, DegenerateAreaIsZero) {
  Box b{5, 5, 5, 5};
  EXPECT_FLOAT_EQ(b.area(), 0.0f);
  Box inverted{10, 10, 5, 5};
  EXPECT_FLOAT_EQ(inverted.area(), 0.0f);
}

TEST(Iou, IdenticalBoxesIsOne) {
  Box a{1, 2, 11, 12};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
}

TEST(Iou, DisjointBoxesIsZero) {
  Box a{0, 0, 5, 5}, b{10, 10, 20, 20};
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(Iou, TouchingEdgesIsZero) {
  Box a{0, 0, 5, 5}, b{5, 0, 10, 5};
  EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(Iou, HalfOverlapKnownValue) {
  Box a{0, 0, 10, 10}, b{5, 0, 15, 10};
  // inter = 50, union = 150.
  EXPECT_NEAR(iou(a, b), 1.0f / 3.0f, 1e-6f);
}

TEST(Iou, ContainedBoxRatioOfAreas) {
  Box outer{0, 0, 10, 10}, inner{2, 2, 7, 7};
  EXPECT_NEAR(iou(outer, inner), 25.0f / 100.0f, 1e-6f);
}

// --- property-based checks over random boxes ---
struct IouProperty : public ::testing::TestWithParam<int> {};

TEST_P(IouProperty, SymmetricBoundedAndSelfUnit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    auto random_box = [&]() {
      float x1 = rng.uniform(0.0f, 50.0f);
      float y1 = rng.uniform(0.0f, 50.0f);
      return Box{x1, y1, x1 + rng.uniform(1.0f, 30.0f),
                 y1 + rng.uniform(1.0f, 30.0f)};
    };
    Box a = random_box(), b = random_box();
    const float ab = iou(a, b), ba = iou(b, a);
    EXPECT_FLOAT_EQ(ab, ba);
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f);
    EXPECT_NEAR(iou(a, a), 1.0f, 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouProperty, ::testing::Values(1, 2, 3, 4, 5));

struct EncodeDecodeProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodeDecodeProperty, RoundTripsThroughDeltas) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97);
  for (int trial = 0; trial < 300; ++trial) {
    float ax = rng.uniform(0.0f, 100.0f), ay = rng.uniform(0.0f, 100.0f);
    Box anchor{ax, ay, ax + rng.uniform(4.0f, 40.0f),
               ay + rng.uniform(4.0f, 40.0f)};
    float tx = rng.uniform(0.0f, 100.0f), ty = rng.uniform(0.0f, 100.0f);
    Box target{tx, ty, tx + rng.uniform(4.0f, 40.0f),
               ty + rng.uniform(4.0f, 40.0f)};
    const auto delta = encode_box(target, anchor);
    const Box back = decode_box(delta, anchor);
    EXPECT_NEAR(back.x1, target.x1, 0.01f);
    EXPECT_NEAR(back.y1, target.y1, 0.01f);
    EXPECT_NEAR(back.x2, target.x2, 0.01f);
    EXPECT_NEAR(back.y2, target.y2, 0.01f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeProperty,
                         ::testing::Values(1, 2, 3));

TEST(EncodeBox, ZeroDeltaForAnchorItself) {
  Box anchor{10, 10, 30, 40};
  const auto d = encode_box(anchor, anchor);
  for (float v : d) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(DecodeBox, ClampsExplodingExponent) {
  Box anchor{0, 0, 10, 10};
  const Box b = decode_box({0, 0, 100.0f, 100.0f}, anchor);
  EXPECT_LT(b.width(), 1000.0f);  // exp clamped, no inf
}

TEST(ClipBox, ClipsToImage) {
  Box b{-5, -5, 200, 300};
  const Box c = clip_box(b, 100, 150);
  EXPECT_FLOAT_EQ(c.x1, 0.0f);
  EXPECT_FLOAT_EQ(c.y1, 0.0f);
  EXPECT_FLOAT_EQ(c.x2, 149.0f);
  EXPECT_FLOAT_EQ(c.y2, 99.0f);
}

TEST(RescaleBox, ScalesCoordinates) {
  Box b{10, 20, 30, 40};
  const Box r = rescale_box(b, 100, 200, 50, 100);
  EXPECT_FLOAT_EQ(r.x1, 5.0f);
  EXPECT_FLOAT_EQ(r.y1, 10.0f);
  EXPECT_FLOAT_EQ(r.x2, 15.0f);
  EXPECT_FLOAT_EQ(r.y2, 20.0f);
}

TEST(RescaleBox, RoundTripIsIdentity) {
  Box b{3, 7, 21, 17};
  const Box r = rescale_box(rescale_box(b, 100, 133, 37, 49), 37, 49, 100, 133);
  EXPECT_NEAR(r.x1, b.x1, 1e-4f);
  EXPECT_NEAR(r.y2, b.y2, 1e-4f);
}

TEST(GtBox, FromGtCopiesCoordinates) {
  GtBox g;
  g.x1 = 1; g.y1 = 2; g.x2 = 3; g.y2 = 4; g.class_id = 5;
  const Box b = Box::from_gt(g);
  EXPECT_FLOAT_EQ(b.x1, 1.0f);
  EXPECT_FLOAT_EQ(b.y2, 4.0f);
}

}  // namespace
}  // namespace ada
