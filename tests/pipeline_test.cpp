// Algorithm 1 behaviour tests using a tiny untrained detector+regressor
// (functional properties only; quality is covered by integration/bench).
#include "adascale/pipeline.h"

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace ada {
namespace {

struct PipelineFixture : public ::testing::Test {
  PipelineFixture()
      : dataset(Dataset::synth_vid(1, 1, 3)),
        renderer(dataset.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset.catalog().num_classes();
    dcfg.c1 = 4; dcfg.c2 = 6; dcfg.c3 = 8;
    Rng rng(5);
    detector = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = 8;
    rcfg.stream_channels = 4;
    regressor = std::make_unique<ScaleRegressor>(rcfg, &rng);
  }

  Dataset dataset;
  Renderer renderer;
  std::unique_ptr<Detector> detector;
  std::unique_ptr<ScaleRegressor> regressor;
};

TEST_F(PipelineFixture, StartsAtInitScale) {
  AdaScalePipeline p(detector.get(), regressor.get(), &renderer,
                     dataset.scale_policy(), ScaleSet::reg_default(), 600);
  EXPECT_EQ(p.current_scale(), 600);
  const Scene& frame = dataset.val_snippets()[0].frames[0];
  const AdaFrameOutput out = p.process(frame);
  EXPECT_EQ(out.scale_used, 600);
}

TEST_F(PipelineFixture, ScaleStaysWithinSregBounds) {
  AdaScalePipeline p(detector.get(), regressor.get(), &renderer,
                     dataset.scale_policy(), ScaleSet::reg_default(), 600);
  for (const Scene& frame : dataset.val_snippets()[0].frames) {
    const AdaFrameOutput out = p.process(frame);
    EXPECT_GE(out.next_scale, 128);
    EXPECT_LE(out.next_scale, 600);
    EXPECT_EQ(out.next_scale, p.current_scale());
  }
}

TEST_F(PipelineFixture, ResetRestoresInitScale) {
  AdaScalePipeline p(detector.get(), regressor.get(), &renderer,
                     dataset.scale_policy(), ScaleSet::reg_default(), 600);
  for (const Scene& frame : dataset.val_snippets()[0].frames) p.process(frame);
  p.reset();
  EXPECT_EQ(p.current_scale(), 600);
}

TEST_F(PipelineFixture, NextScaleFollowsDecodedRegression) {
  AdaScalePipeline p(detector.get(), regressor.get(), &renderer,
                     dataset.scale_policy(), ScaleSet::reg_default(), 600);
  const Scene& frame = dataset.val_snippets()[0].frames[0];
  const AdaFrameOutput out = p.process(frame);
  EXPECT_EQ(out.next_scale,
            decode_scale_target(out.regressed_t, out.scale_used,
                                ScaleSet::reg_default()));
}

TEST_F(PipelineFixture, TimingsAreRecorded) {
  AdaScalePipeline p(detector.get(), regressor.get(), &renderer,
                     dataset.scale_policy(), ScaleSet::reg_default(), 600);
  const AdaFrameOutput out = p.process(dataset.val_snippets()[0].frames[0]);
  EXPECT_GT(out.detect_ms, 0.0);
  EXPECT_GE(out.regressor_ms, 0.0);
  EXPECT_NEAR(out.total_ms(), out.detect_ms + out.regressor_ms, 1e-9);
}

TEST_F(PipelineFixture, SmallerScaleProcessesFaster) {
  // Process many frames at both extremes and compare mean detector time;
  // scale 128 must be clearly cheaper than 600.
  const Scene& frame = dataset.val_snippets()[0].frames[0];
  const ScalePolicy& policy = dataset.scale_policy();
  double ms600 = 0, ms128 = 0;
  const int reps = 5;
  for (int i = 0; i < reps; ++i) {
    Tensor img = renderer.render_at_scale(frame, 600, policy);
    ms600 += detector->detect(img).forward_ms;
    img = renderer.render_at_scale(frame, 128, policy);
    ms128 += detector->detect(img).forward_ms;
  }
  EXPECT_LT(ms128, ms600);
}

}  // namespace
}  // namespace ada
