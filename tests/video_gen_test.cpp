#include "data/video.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"

namespace ada {
namespace {

TEST(VideoGen, FrameCountMatchesConfig) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  VideoConfig cfg;
  cfg.frames_per_snippet = 9;
  SnippetGenerator gen(&cat, cfg);
  Rng rng(1);
  const Snippet s = gen.generate(&rng);
  EXPECT_EQ(s.num_frames(), 9);
}

TEST(VideoGen, Deterministic) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng r1(42), r2(42);
  const Snippet a = gen.generate(&r1);
  const Snippet b = gen.generate(&r2);
  ASSERT_EQ(a.num_frames(), b.num_frames());
  for (int f = 0; f < a.num_frames(); ++f) {
    ASSERT_EQ(a.frames[static_cast<std::size_t>(f)].objects.size(),
              b.frames[static_cast<std::size_t>(f)].objects.size());
    for (std::size_t o = 0; o < a.frames[static_cast<std::size_t>(f)].objects.size(); ++o) {
      EXPECT_EQ(a.frames[static_cast<std::size_t>(f)].objects[o].cx,
                b.frames[static_cast<std::size_t>(f)].objects[o].cx);
    }
  }
}

TEST(VideoGen, ObjectsMoveSmoothly) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  VideoConfig cfg;
  cfg.max_speed = 0.02f;
  SnippetGenerator gen(&cat, cfg);
  Rng rng(7);
  const Snippet s = gen.generate(&rng);
  for (int f = 1; f < s.num_frames(); ++f) {
    const auto& prev = s.frames[static_cast<std::size_t>(f - 1)].objects;
    const auto& cur = s.frames[static_cast<std::size_t>(f)].objects;
    ASSERT_EQ(prev.size(), cur.size());
    for (std::size_t o = 0; o < cur.size(); ++o) {
      EXPECT_LE(std::abs(cur[o].cx - prev[o].cx), cfg.max_speed + 1e-5f);
      EXPECT_LE(std::abs(cur[o].cy - prev[o].cy), cfg.max_speed + 1e-5f);
      // Size changes slowly (temporal consistency for AdaScale).
      EXPECT_LE(std::abs(cur[o].size / prev[o].size - 1.0f), 0.08f);
    }
  }
}

TEST(VideoGen, LargeThemeProducesLargeObjects) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng rng(11);
  const Snippet s = gen.generate_with_theme(SnippetTheme::kLargeObject, &rng);
  ASSERT_FALSE(s.frames.empty());
  for (const ObjectInstance& o : s.frames[0].objects)
    EXPECT_GE(o.size, 0.1f);
}

TEST(VideoGen, SmallThemeProducesSmallObjects) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng rng(13);
  const Snippet s = gen.generate_with_theme(SnippetTheme::kSmallObjects, &rng);
  for (const ObjectInstance& o : s.frames[0].objects)
    EXPECT_LE(o.size, 0.1f);
}

TEST(VideoGen, ClutterCountMatchesConfig) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  VideoConfig cfg;
  cfg.clutter_count = 5;
  SnippetGenerator gen(&cat, cfg);
  Rng rng(17);
  const Snippet s = gen.generate(&rng);
  EXPECT_EQ(s.frames[0].clutter.size(), 5u);
}

TEST(VideoGen, ObjectsStayMostlyInFrame) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng rng(19);
  for (int trial = 0; trial < 5; ++trial) {
    const Snippet s = gen.generate(&rng);
    for (const Scene& frame : s.frames)
      for (const ObjectInstance& o : frame.objects) {
        EXPECT_GT(o.cx, -0.2f);
        EXPECT_LT(o.cx, kAspect + 0.2f);
        EXPECT_GT(o.cy, -0.2f);
        EXPECT_LT(o.cy, 1.2f);
      }
  }
}

TEST(VideoGen, ClassIdsValid) {
  ClassCatalog cat = ClassCatalog::synth_ytbb();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const Snippet s = gen.generate(&rng);
    for (const Scene& frame : s.frames) {
      for (const ObjectInstance& o : frame.objects) {
        EXPECT_GE(o.class_id, 0);
        EXPECT_LT(o.class_id, cat.num_classes());
      }
    }
  }
}

TEST(Dataset, SplitsHaveRequestedSizes) {
  const Dataset d = Dataset::synth_vid(3, 2, 99);
  EXPECT_EQ(d.train_snippets().size(), 3u);
  EXPECT_EQ(d.val_snippets().size(), 2u);
  EXPECT_EQ(d.name(), "SynthVID");
  EXPECT_EQ(d.catalog().num_classes(), 30);
}

TEST(Dataset, YtbbHas23Classes) {
  const Dataset d = Dataset::synth_ytbb(1, 1, 5);
  EXPECT_EQ(d.catalog().num_classes(), 23);
  EXPECT_EQ(d.catalog().at(0).name, "person");
}

TEST(Dataset, TrainFramesFlattened) {
  const Dataset d = Dataset::synth_vid(2, 1, 77);
  const auto frames = d.train_frames();
  EXPECT_EQ(frames.size(),
            2u * static_cast<std::size_t>(d.video_config().frames_per_snippet));
}

TEST(Dataset, FingerprintDistinguishesSeeds) {
  const Dataset a = Dataset::synth_vid(1, 1, 1);
  const Dataset b = Dataset::synth_vid(1, 1, 2);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Dataset, VidCatalogMatchesPaperOrder) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  EXPECT_EQ(cat.at(0).name, "airplane");
  EXPECT_EQ(cat.at(14).name, "horse");
  EXPECT_EQ(cat.at(20).name, "red_panda");
  EXPECT_EQ(cat.at(29).name, "zebra");
}

TEST(Dataset, SizeRegimesAreStriped) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  // id % 3 == 0 -> large-biased, id % 3 == 2 -> small-biased.
  EXPECT_GT(cat.at(0).size_lo, cat.at(2).size_lo);
  EXPECT_GT(cat.at(3).size_hi, cat.at(5).size_hi);
}


TEST(VideoGen, RoundRobinCoversEveryClass) {
  // With ~30 classes and few snippets, independent class draws leave classes
  // untrained; the generator must rotate through every class stripe.
  ClassCatalog cat = ClassCatalog::synth_vid();
  SnippetGenerator gen(&cat, VideoConfig{});
  Rng rng(3);
  std::vector<int> seen(static_cast<std::size_t>(cat.num_classes()), 0);
  for (int i = 0; i < 40; ++i) {
    const Snippet s = gen.generate(&rng);
    for (const ObjectInstance& o : s.frames[0].objects)
      ++seen[static_cast<std::size_t>(o.class_id)];
  }
  for (int c = 0; c < cat.num_classes(); ++c)
    EXPECT_GT(seen[static_cast<std::size_t>(c)], 0) << "class " << c << " never generated";
}

TEST(VideoGen, ClutterIsTintedAndSmall) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  VideoConfig cfg;
  SnippetGenerator gen(&cat, cfg);
  Rng rng(5);
  const Snippet s = gen.generate(&rng);
  ASSERT_EQ(static_cast<int>(s.frames[0].clutter.size()), cfg.clutter_count);
  bool any_tint = false;
  for (const ObjectInstance& c : s.frames[0].clutter) {
    EXPECT_LE(c.size, 0.5f * cfg.clutter_size_hi + 1e-6f);
    EXPECT_GE(c.size, 0.5f * cfg.clutter_size_lo - 1e-6f);
    EXPECT_LE(std::abs(c.tint.r), cfg.clutter_tint + 1e-6f);
    EXPECT_LE(std::abs(c.tint.g), cfg.clutter_tint + 1e-6f);
    EXPECT_LE(std::abs(c.tint.b), cfg.clutter_tint + 1e-6f);
    if (std::abs(c.tint.r) + std::abs(c.tint.g) + std::abs(c.tint.b) > 0.01f)
      any_tint = true;
  }
  EXPECT_TRUE(any_tint);
  // Labeled objects are never tinted (their colors are the class signal).
  for (const ObjectInstance& o : s.frames[0].objects) {
    EXPECT_EQ(o.tint.r, 0.0f);
    EXPECT_EQ(o.tint.g, 0.0f);
    EXPECT_EQ(o.tint.b, 0.0f);
  }
}

}  // namespace
}  // namespace ada
