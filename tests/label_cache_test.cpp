// The optimal-scale label disk cache (load_or_generate_labels): labels feed
// regressor training (Fig. 2), are expensive to generate (one detector pass
// per scale per frame), and must be bit-stable across processes — Table 3's
// architecture sweep reuses them for three regressor variants.
#include <gtest/gtest.h>

#include <filesystem>

#include "adascale/regressor_trainer.h"
#include "detection/trainer.h"

namespace ada {
namespace {

class LabelCacheTest : public ::testing::Test {
 protected:
  LabelCacheTest() : dir_("/tmp/ada_label_cache_test") {
    std::filesystem::remove_all(dir_);
  }
  ~LabelCacheTest() override { std::filesystem::remove_all(dir_); }

  const std::string dir_;
};

TEST_F(LabelCacheTest, SecondCallLoadsIdenticalLabels) {
  Dataset ds = Dataset::synth_vid(2, 1, 314);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  Rng rng(1);
  Detector det(dcfg, &rng);  // untrained is fine: labels just must be stable

  RegressorTrainConfig cfg;
  const auto first = load_or_generate_labels(&det, "det-key", ds, cfg, dir_);
  ASSERT_FALSE(first.empty());
  // A cache file now exists.
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1);

  const auto second = load_or_generate_labels(&det, "det-key", ds, cfg, dir_);
  EXPECT_EQ(first, second);
  for (int label : first) EXPECT_TRUE(cfg.sreg.contains(label));
}

TEST_F(LabelCacheTest, DifferentDetectorKeyMisses) {
  Dataset ds = Dataset::synth_vid(1, 1, 314);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  Rng rng(1);
  Detector det(dcfg, &rng);

  RegressorTrainConfig cfg;
  (void)load_or_generate_labels(&det, "key-a", ds, cfg, dir_);
  (void)load_or_generate_labels(&det, "key-b", ds, cfg, dir_);
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2) << "labels for different detectors must not collide";
}

TEST_F(LabelCacheTest, EmptyCacheDirDisablesCaching) {
  Dataset ds = Dataset::synth_vid(1, 1, 314);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  Rng rng(1);
  Detector det(dcfg, &rng);
  RegressorTrainConfig cfg;
  const auto labels = load_or_generate_labels(&det, "k", ds, cfg, "");
  EXPECT_EQ(labels.size(),
            (ds.train_frames().size() + 1) / static_cast<std::size_t>(cfg.frame_stride));
  EXPECT_FALSE(std::filesystem::exists(dir_));
}

TEST_F(LabelCacheTest, StrideChangesLabelCountAndCacheKey) {
  Dataset ds = Dataset::synth_vid(2, 1, 314);
  DetectorConfig dcfg;
  dcfg.num_classes = ds.catalog().num_classes();
  Rng rng(1);
  Detector det(dcfg, &rng);

  RegressorTrainConfig stride2;
  RegressorTrainConfig stride4;
  stride4.frame_stride = 4;
  const auto a = load_or_generate_labels(&det, "k", ds, stride2, dir_);
  const auto b = load_or_generate_labels(&det, "k", ds, stride4, dir_);
  EXPECT_GT(a.size(), b.size());
  int files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2);
}

}  // namespace
}  // namespace ada
