// Convolution correctness: hand-computed cases + numerical gradient checks.
#include "tensor/conv2d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace ada {
namespace {

void fill_random(Tensor* t, Rng* rng, float scale = 1.0f) {
  for (std::size_t i = 0; i < t->size(); ++i) t->storage()[i] = rng->normal() * scale;
}

/// Direct (definition-based) convolution for cross-checking im2col.
void conv_reference(const ConvSpec& s, const Tensor& x, const Tensor& w,
                    const Tensor& b, Tensor* y) {
  const int oh = s.out_dim(x.h()), ow = s.out_dim(x.w());
  *y = Tensor(x.n(), s.out_channels, oh, ow);
  for (int n = 0; n < x.n(); ++n)
    for (int oc = 0; oc < s.out_channels; ++oc)
      for (int i = 0; i < oh; ++i)
        for (int j = 0; j < ow; ++j) {
          double acc = b.empty() ? 0.0 : b[static_cast<std::size_t>(oc)];
          for (int ic = 0; ic < s.in_channels; ++ic)
            for (int ki = 0; ki < s.kernel; ++ki)
              for (int kj = 0; kj < s.kernel; ++kj) {
                const int hi = i * s.stride - s.pad + ki * s.dilation;
                const int wj = j * s.stride - s.pad + kj * s.dilation;
                if (hi < 0 || hi >= x.h() || wj < 0 || wj >= x.w()) continue;
                acc += static_cast<double>(x.at(n, ic, hi, wj)) *
                       w.at(oc, ic, ki, kj);
              }
          y->at(n, oc, i, j) = static_cast<float>(acc);
        }
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  ConvSpec s{1, 1, 1, 1, 0};
  Tensor x = Tensor::chw(1, 3, 3);
  for (int i = 0; i < 9; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
  Tensor w(1, 1, 1, 1);
  w[0] = 1.0f;
  Tensor b(1, 1, 1, 1);
  Tensor y;
  conv2d_forward(s, x, w, b, &y);
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)]);
}

TEST(Conv2d, BiasIsAdded) {
  ConvSpec s{1, 2, 1, 1, 0};
  Tensor x = Tensor::chw(1, 2, 2);
  x.fill(1.0f);
  Tensor w(2, 1, 1, 1);
  w[0] = 0.0f;
  w[1] = 0.0f;
  Tensor b(1, 2, 1, 1);
  b[0] = 3.0f;
  b[1] = -1.0f;
  Tensor y;
  conv2d_forward(s, x, w, b, &y);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -1.0f);
}

TEST(Conv2d, MatchesReferenceImplementation) {
  Rng rng(5);
  for (int kernel : {1, 3, 5}) {
    for (int stride : {1, 2}) {
      ConvSpec s{3, 4, kernel, stride, kernel / 2};
      Tensor x = Tensor::chw(3, 9, 11);
      fill_random(&x, &rng);
      Tensor w(4, 3, kernel, kernel);
      fill_random(&w, &rng);
      Tensor b(1, 4, 1, 1);
      fill_random(&b, &rng);
      Tensor y, y_ref;
      conv2d_forward(s, x, w, b, &y);
      conv_reference(s, x, w, b, &y_ref);
      ASSERT_TRUE(y.same_shape(y_ref)) << "kernel=" << kernel;
      for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-4f) << "kernel=" << kernel << " i=" << i;
    }
  }
}

TEST(Conv2d, OutDimFloorSemantics) {
  ConvSpec s{1, 1, 3, 2, 1};
  EXPECT_EQ(s.out_dim(7), 4);
  EXPECT_EQ(s.out_dim(8), 4);
  ConvSpec p{1, 1, 3, 1, 1};
  EXPECT_EQ(p.out_dim(10), 10);
}

TEST(Conv2d, MacsScaleWithArea) {
  ConvSpec s{3, 8, 3, 1, 1};
  const long long m1 = conv2d_macs(s, 10, 10);
  const long long m2 = conv2d_macs(s, 20, 20);
  EXPECT_EQ(m2, 4 * m1);
}

/// Numerical gradient check of the full backward pass.
TEST(Conv2d, GradientsMatchNumerical) {
  Rng rng(17);
  ConvSpec s{2, 3, 3, 1, 1};
  Tensor x = Tensor::chw(2, 5, 6);
  fill_random(&x, &rng, 0.5f);
  Tensor w(3, 2, 3, 3);
  fill_random(&w, &rng, 0.5f);
  Tensor b(1, 3, 1, 1);
  fill_random(&b, &rng, 0.5f);

  // Loss = sum(y * r) for a fixed random r => dy = r.
  Tensor y;
  conv2d_forward(s, x, w, b, &y);
  Tensor r(y.n(), y.c(), y.h(), y.w());
  fill_random(&r, &rng, 1.0f);

  Tensor dx(x.n(), x.c(), x.h(), x.w());
  Tensor dw(w.n(), w.c(), w.h(), w.w());
  Tensor db(1, 3, 1, 1);
  conv2d_backward(s, x, w, r, &dx, &dw, &db);

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    Tensor yy;
    conv2d_forward(s, xx, ww, bb, &yy);
    double acc = 0;
    for (std::size_t i = 0; i < yy.size(); ++i) acc += static_cast<double>(yy[i]) * r[i];
    return acc;
  };

  const float eps = 1e-3f;
  // Check a sample of coordinates of each gradient.
  for (std::size_t i = 0; i < x.size(); i += 7) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (loss(xp, w, b) - loss(xm, w, b)) / (2 * eps);
    EXPECT_NEAR(dx[i], num, 5e-2) << "dx[" << i << "]";
  }
  for (std::size_t i = 0; i < w.size(); i += 5) {
    Tensor wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    const double num = (loss(x, wp, b) - loss(x, wm, b)) / (2 * eps);
    EXPECT_NEAR(dw[i], num, 5e-2) << "dw[" << i << "]";
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    Tensor bp = b, bm = b;
    bp[i] += eps;
    bm[i] -= eps;
    const double num = (loss(x, w, bp) - loss(x, w, bm)) / (2 * eps);
    EXPECT_NEAR(db[i], num, 5e-2) << "db[" << i << "]";
  }
}

TEST(Conv2d, BackwardAccumulates) {
  // Calling backward twice must double the weight gradient.
  Rng rng(23);
  ConvSpec s{1, 1, 3, 1, 1};
  Tensor x = Tensor::chw(1, 4, 4);
  fill_random(&x, &rng);
  Tensor w(1, 1, 3, 3);
  fill_random(&w, &rng);
  Tensor dy = Tensor::chw(1, 4, 4);
  fill_random(&dy, &rng);
  Tensor dw1(1, 1, 3, 3), dw2(1, 1, 3, 3);
  conv2d_backward(s, x, w, dy, nullptr, &dw1, nullptr);
  conv2d_backward(s, x, w, dy, nullptr, &dw2, nullptr);
  conv2d_backward(s, x, w, dy, nullptr, &dw2, nullptr);
  for (std::size_t i = 0; i < dw1.size(); ++i)
    EXPECT_NEAR(dw2[i], 2.0f * dw1[i], 1e-4f);
}

TEST(Conv2d, DilatedForwardMatchesReference) {
  // dilation=2, pad=2 keeps the spatial size for k=3 (effective kernel 5).
  Rng rng(23);
  ConvSpec s{2, 3, 3, 1, 2, 2};
  EXPECT_EQ(s.effective_kernel(), 5);
  Tensor x = Tensor::chw(2, 7, 9);
  fill_random(&x, &rng);
  Tensor w(3, 2, 3, 3);
  fill_random(&w, &rng);
  Tensor b(1, 3, 1, 1);
  fill_random(&b, &rng);

  Tensor y, ref;
  conv2d_forward(s, x, w, b, &y);
  conv_reference(s, x, w, b, &ref);
  ASSERT_TRUE(y.same_shape(ref));
  EXPECT_EQ(y.h(), 7);
  EXPECT_EQ(y.w(), 9);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-4f);
}

/// Numerical gradient check of the dilated backward path (the detector's
/// conv4 runs with dilation 4; the plain checks above only cover dilation 1,
/// where the dilated indexing degenerates to the old code).
TEST(Conv2d, DilatedGradientsMatchNumerical) {
  Rng rng(29);
  ConvSpec s{2, 3, 3, 1, 2, 2};
  Tensor x = Tensor::chw(2, 6, 5);
  fill_random(&x, &rng, 0.5f);
  Tensor w(3, 2, 3, 3);
  fill_random(&w, &rng, 0.5f);
  Tensor b(1, 3, 1, 1);
  fill_random(&b, &rng, 0.5f);

  Tensor y;
  conv2d_forward(s, x, w, b, &y);
  Tensor r(y.n(), y.c(), y.h(), y.w());
  fill_random(&r, &rng, 1.0f);

  Tensor dx(x.n(), x.c(), x.h(), x.w());
  Tensor dw(w.n(), w.c(), w.h(), w.w());
  Tensor db(1, 3, 1, 1);
  conv2d_backward(s, x, w, r, &dx, &dw, &db);

  auto loss = [&](const Tensor& xx, const Tensor& ww, const Tensor& bb) {
    Tensor yy;
    conv2d_forward(s, xx, ww, bb, &yy);
    double acc = 0;
    for (std::size_t i = 0; i < yy.size(); ++i)
      acc += static_cast<double>(yy[i]) * r[i];
    return acc;
  };

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); i += 7) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double num = (loss(xp, w, b) - loss(xm, w, b)) / (2 * eps);
    EXPECT_NEAR(dx[i], num, 5e-2) << "dx[" << i << "]";
  }
  for (std::size_t i = 0; i < w.size(); i += 5) {
    Tensor wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    const double num = (loss(x, wp, b) - loss(x, wm, b)) / (2 * eps);
    EXPECT_NEAR(dw[i], num, 5e-2) << "dw[" << i << "]";
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    Tensor bp = b, bm = b;
    bp[i] += eps;
    bm[i] -= eps;
    const double num = (loss(x, w, bp) - loss(x, w, bm)) / (2 * eps);
    EXPECT_NEAR(db[i], num, 5e-2) << "db[" << i << "]";
  }
}

}  // namespace
}  // namespace ada
