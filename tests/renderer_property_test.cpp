// Property sweeps over the renderer: the "same world, any resolution"
// contract that makes re-scaling meaningful, plus the scale-dependent
// detail attenuation AdaScale exploits.
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "data/renderer.h"
#include "tensor/image_ops.h"

namespace ada {
namespace {

struct ScalePair {
  int hi;
  int lo;
};

class RenderAcrossScales : public ::testing::TestWithParam<ScalePair> {};

// Rendering natively at a small scale must closely match down-sampling a
// large-scale render: the renderer is a consistent world, not per-scale art.
TEST_P(RenderAcrossScales, NativeSmallMatchesDownsampledLarge) {
  const ScalePair p = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 404);
  const Renderer renderer = ds.make_renderer();
  const ScalePolicy& policy = ds.scale_policy();
  const Scene& scene = *ds.val_frames()[0];

  const Tensor big = renderer.render_at_scale(scene, p.hi, policy);
  const Tensor native = renderer.render_at_scale(scene, p.lo, policy);
  Tensor shrunk;
  bilinear_resize(big, native.h(), native.w(), &shrunk);

  double err = 0.0;
  for (std::size_t i = 0; i < native.size(); ++i)
    err += std::abs(static_cast<double>(native[i]) - shrunk[i]);
  err /= static_cast<double>(native.size());
  // Mean absolute pixel difference stays small: anti-aliasing and the
  // footprint attenuation model approximate true area integration.
  EXPECT_LT(err, 0.06) << "native " << p.lo << " vs downsampled " << p.hi;
}

// Ground-truth boxes must scale exactly with resolution (up to clipping).
TEST_P(RenderAcrossScales, GroundTruthScalesLinearly) {
  const ScalePair p = GetParam();
  Dataset ds = Dataset::synth_vid(1, 1, 404);
  const ScalePolicy& policy = ds.scale_policy();
  const Scene& scene = *ds.val_frames()[0];

  const auto gt_hi = scene_ground_truth(scene, policy.render_h(p.hi),
                                        policy.render_w(p.hi));
  const auto gt_lo = scene_ground_truth(scene, policy.render_h(p.lo),
                                        policy.render_w(p.lo));
  ASSERT_EQ(gt_hi.size(), gt_lo.size());
  const float ratio = static_cast<float>(policy.render_h(p.lo)) /
                      static_cast<float>(policy.render_h(p.hi));
  for (std::size_t i = 0; i < gt_hi.size(); ++i) {
    EXPECT_EQ(gt_hi[i].class_id, gt_lo[i].class_id);
    // Clipped boxes shift by at most ~a pixel from pure scaling.
    EXPECT_NEAR(gt_lo[i].width(), gt_hi[i].width() * ratio, 2.0f);
    EXPECT_NEAR(gt_lo[i].height(), gt_hi[i].height() * ratio, 2.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NominalPairs, RenderAcrossScales,
    ::testing::Values(ScalePair{600, 480}, ScalePair{600, 360},
                      ScalePair{600, 240}, ScalePair{600, 128},
                      ScalePair{480, 240}, ScalePair{360, 128}),
    [](const ::testing::TestParamInfo<ScalePair>& tpi) {
      return std::to_string(tpi.param.hi) + "to" +
             std::to_string(tpi.param.lo);
    });

// High-frequency background detail must lose contrast as scale shrinks (the
// mechanism that removes false positives when down-sampling, Sec. 1).
TEST(RendererDetail, FineDetailWashesOutAtSmallScales) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer renderer(&cat);
  Scene scene;  // background only
  Background::Wave fine;
  fine.freq = 60.0f;  // fine detail: resolvable only at large renders
  fine.amplitude = 0.07f;
  scene.background.waves.push_back(fine);

  auto contrast = [&](int h, int w) {
    const Tensor img = renderer.render(scene, h, w);
    float mn = 1e9f, mx = -1e9f;
    for (int i = 0; i < h; ++i)
      for (int j = 0; j < w; ++j) {
        mn = std::min(mn, img.at(0, 0, i, j));
        mx = std::max(mx, img.at(0, 0, i, j));
      }
    return mx - mn;
  };

  const float big = contrast(150, 200);   // nominal 600
  const float small = contrast(32, 43);   // nominal 128
  EXPECT_GT(big, 0.05f);
  EXPECT_LT(small, big * 0.5f);
}

// Objects must keep contrast at every scale (they are what the detector
// must still see after down-sampling).
TEST(RendererDetail, ObjectsSurviveDownsampling) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer renderer(&cat);
  Scene scene;
  ObjectInstance obj;
  obj.class_id = 5;
  obj.cx = 0.65f;
  obj.cy = 0.5f;
  obj.size = 0.25f;
  scene.objects.push_back(obj);

  for (int h : {150, 90, 60, 32}) {
    const int w = static_cast<int>(std::round(h * kAspect));
    const Tensor img = renderer.render(scene, h, w);
    // Color at the object's center matches the class base color closely.
    const int ci = h / 2, cj = static_cast<int>(0.65f * static_cast<float>(h));
    const Rgb& base = cat.at(5).color;
    const float d = std::abs(img.at(0, 0, ci, cj) - base.r) +
                    std::abs(img.at(0, 1, ci, cj) - base.g) +
                    std::abs(img.at(0, 2, ci, cj) - base.b);
    EXPECT_LT(d, 0.6f) << "object center washed out at h=" << h;
  }
}

// Tinted clutter must render with the tint applied (clamped to [0,1]).
TEST(RendererDetail, TintShiftsRenderedColor) {
  ClassCatalog cat = ClassCatalog::synth_vid();
  Renderer renderer(&cat);
  Scene plain, tinted;
  ObjectInstance obj;
  obj.class_id = 1;  // mid-range base color: tint shift survives clamping
  obj.cx = 0.5f;
  obj.cy = 0.5f;
  obj.size = 0.3f;
  plain.objects.push_back(obj);
  obj.tint = Rgb{0.15f, -0.1f, 0.05f};
  tinted.objects.push_back(obj);

  const Tensor a = renderer.render(plain, 60, 80);
  const Tensor b = renderer.render(tinted, 60, 80);
  // Sample the object center.
  const float dr = b.at(0, 0, 30, 40) - a.at(0, 0, 30, 40);
  const float dg = b.at(0, 1, 30, 40) - a.at(0, 1, 30, 40);
  EXPECT_NEAR(dr, 0.15f, 0.02f);
  EXPECT_NEAR(dg, -0.1f, 0.02f);
}

}  // namespace
}  // namespace ada
