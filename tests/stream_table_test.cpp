// Stream-state-table serving: the event-driven table runner must be a pure
// execution-strategy change — per-stream outputs byte-identical to serial,
// thread-per-stream, batched and (no-drop) timed execution, under every
// backend default, heterogeneous per-stream policies and DFF — while the
// shared-weights split keeps ONE resident weight copy no matter how many
// streams or contexts exist.  A seeded randomized-replay layer locks down
// determinism of the virtual-time runner and of the table across worker
// counts and repeated runs.
#include "runtime/stream_table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/layer.h"
#include "runtime/admission.h"
#include "runtime/multi_stream.h"
#include "tensor/gemm.h"
#include "util/clock.h"
#include "util/rng.h"

namespace ada {
namespace {

/// Restores the process-wide default backend on scope exit (R2 seam:
/// tests may flip the global, but must save/restore).
struct BackendGuard {
  GemmBackend saved = gemm_backend();
  ~BackendGuard() { set_gemm_backend(saved); }
};

/// Exact byte serialization of everything bit-stability promises: scales,
/// regressed t, and every detection's class/score/box.  %a prints floats
/// as hex — two serializations compare equal iff the outputs are
/// bit-identical, which makes mismatch diffs readable.
void append_frame(std::string* out, const AdaFrameOutput& f) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "s%d n%d t%a k%d|", f.scale_used,
                f.next_scale, static_cast<double>(f.regressed_t),
                f.dff_key ? 1 : 0);
  *out += buf;
  for (const Detection& d : f.detections.detections) {
    std::snprintf(buf, sizeof(buf), "c%d %a (%a %a %a %a);", d.class_id,
                  static_cast<double>(d.score), static_cast<double>(d.box.x1),
                  static_cast<double>(d.box.y1), static_cast<double>(d.box.x2),
                  static_cast<double>(d.box.y2));
    *out += buf;
  }
  *out += "\n";
}

std::string result_bytes(const MultiStreamResult& r) {
  std::string out;
  for (const StreamOutput& s : r.streams) {
    out += "stream " + std::to_string(s.stream_id) + "\n";
    for (const AdaFrameOutput& f : s.frames) append_frame(&out, f);
  }
  return out;
}

/// Per-stream outputs of a timed run, in per-stream seq order (completion
/// order is global; within one stream it is already chronological).
std::string timed_inference_bytes(const TimedRunResult& r, int num_streams) {
  std::string out;
  for (int s = 0; s < num_streams; ++s) {
    out += "stream " + std::to_string(s) + "\n";
    for (const TimedFrameRecord& f : r.frames) {
      if (f.stream != s || f.dropped) continue;
      append_frame(&out, f.output);
    }
  }
  return out;
}

/// Full byte serialization of a timed run's observable behavior (the
/// replay-fuzz contract): every record's timing, drop accounting and level,
/// plus the aggregate counters.
std::string timed_replay_bytes(const TimedRunResult& r) {
  std::string out;
  char buf[256];
  for (const TimedFrameRecord& f : r.frames) {
    std::snprintf(buf, sizeof(buf), "%d.%ld a%a s%a f%a d%d r%d m%d u%d l%d\n",
                  f.stream, f.seq, f.arrival_ms, f.start_ms, f.finish_ms,
                  f.dropped ? 1 : 0, static_cast<int>(f.drop_reason),
                  f.deadline_met ? 1 : 0, f.scale_used,
                  static_cast<int>(f.level));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "off%ld srv%ld dq%ld dd%ld v%ld mk%a fl%d\n", r.offered,
                r.served, r.dropped_queue_full, r.dropped_deadline,
                r.deadline_violations, r.makespan_ms,
                static_cast<int>(r.final_level));
  out += buf;
  return out;
}

class StreamTableTest : public ::testing::Test {
 protected:
  StreamTableTest()
      : dataset_(Dataset::synth_vid(1, 4, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  std::vector<const Snippet*> val_jobs(std::size_t limit = ~0u) const {
    std::vector<const Snippet*> jobs;
    for (const Snippet& s : dataset_.val_snippets()) {
      if (jobs.size() >= limit) break;
      jobs.push_back(&s);
    }
    return jobs;
  }

  std::unique_ptr<MultiStreamRunner> make_runner(int streams,
                                                 int contexts = 0) {
    return std::make_unique<MultiStreamRunner>(
        detector_.get(), regressor_.get(), &renderer_,
        dataset_.scale_policy(), ScaleSet::reg_default(), streams,
        /*init_scale=*/600, /*snap_scales=*/false, contexts);
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

// ---------------------------------------------------------------------------
// Equivalence layer: one semantics, five execution strategies.
// ---------------------------------------------------------------------------

TEST_F(StreamTableTest, TableMatchesSerialThreadedAndBatchedBitForBit) {
  const auto jobs = val_jobs();
  auto serial = make_runner(3);
  const std::string ref = result_bytes(serial->run_serial(jobs));

  StreamTableConfig tcfg;
  tcfg.workers = 3;
  auto table = make_runner(3);
  EXPECT_EQ(result_bytes(table->run_table(jobs, tcfg)), ref);

  auto threaded = make_runner(3);
  EXPECT_EQ(result_bytes(threaded->run(jobs)), ref);

  auto batched = make_runner(3);
  BatchSchedulerConfig bcfg;
  bcfg.max_batch = 3;
  MultiStreamResult bat = batched->run_batched(jobs, bcfg);
  EXPECT_EQ(result_bytes(bat), ref);
  EXPECT_EQ(bat.batch_stats.frames, bat.total_frames);
}

TEST_F(StreamTableTest, EquivalenceHoldsUnderEveryBackendDefault) {
  BackendGuard guard;
  const auto jobs = val_jobs(2);
  for (GemmBackend be :
       {GemmBackend::kPacked, GemmBackend::kReference, GemmBackend::kInt8}) {
    set_gemm_backend(be);
    auto serial = make_runner(2);
    const std::string ref = result_bytes(serial->run_serial(jobs));
    StreamTableConfig tcfg;
    tcfg.workers = 2;
    auto table = make_runner(2);
    EXPECT_EQ(result_bytes(table->run_table(jobs, tcfg)), ref)
        << "backend " << static_cast<int>(be);
  }
}

TEST_F(StreamTableTest, HeterogeneousStreamPoliciesMatchPerPolicySerial) {
  // Stream 0 serves int8/fp32, stream 1 reference/reference: each must
  // produce exactly the bits of its own single-policy serial run — pools
  // are per policy pair, so neither stream can leak kernels to the other.
  const auto jobs = val_jobs();
  auto mixed = make_runner(2);
  mixed->set_stream_policy(0, ExecutionPolicy::int8(),
                           ExecutionPolicy::fp32());
  mixed->set_stream_policy(1, ExecutionPolicy::reference(),
                           ExecutionPolicy::reference());
  StreamTableConfig tcfg;
  tcfg.workers = 2;
  const MultiStreamResult par = mixed->run_table(jobs, tcfg);
  EXPECT_EQ(mixed->model_table()->pool_count(), 3u);  // default + 2 pinned

  const ExecutionPolicy det_pol[2] = {ExecutionPolicy::int8(),
                                      ExecutionPolicy::reference()};
  const ExecutionPolicy reg_pol[2] = {ExecutionPolicy::fp32(),
                                      ExecutionPolicy::reference()};
  for (int s = 0; s < 2; ++s) {
    std::vector<const Snippet*> share;
    for (std::size_t j = static_cast<std::size_t>(s); j < jobs.size(); j += 2)
      share.push_back(jobs[j]);
    auto single = make_runner(1);
    single->set_stream_policy(0, det_pol[s], reg_pol[s]);
    const MultiStreamResult ref = single->run_serial(share);
    std::string got;
    for (const AdaFrameOutput& f : par.streams[static_cast<std::size_t>(s)].frames)
      append_frame(&got, f);
    std::string want;
    for (const AdaFrameOutput& f : ref.streams[0].frames)
      append_frame(&want, f);
    EXPECT_EQ(got, want) << "stream " << s;
  }
}

TEST_F(StreamTableTest, DffTableMatchesSerialAndBatched) {
  DffServingConfig dff;
  dff.policy = DffServingConfig::Keyframe::kFixedInterval;
  dff.key_interval = 2;
  const auto jobs = val_jobs();

  auto serial = make_runner(3);
  serial->set_dff(dff);
  const std::string ref = result_bytes(serial->run_serial(jobs));

  auto table = make_runner(3);
  table->set_dff(dff);
  StreamTableConfig tcfg;
  tcfg.workers = 2;
  EXPECT_EQ(result_bytes(table->run_table(jobs, tcfg)), ref);

  auto batched = make_runner(3);
  batched->set_dff(dff);
  EXPECT_EQ(result_bytes(batched->run_batched(jobs)), ref);
}

TEST_F(StreamTableTest, TimedRunMatchesSerialOnNoDropSchedule) {
  // run_timed with admission knobs that cannot drop (capacity covers the
  // whole backlog, effectively-infinite deadline, no controller) serves
  // each stream's frames in order — so its per-frame inference output must
  // be the same bits as the serial runner's.
  const auto jobs = val_jobs();
  const int ns = 3;
  auto serial = make_runner(ns);
  const std::string ref = result_bytes(serial->run_serial(jobs));

  auto timed = make_runner(ns);
  const std::vector<StreamSchedule> schedules =
      schedules_from_jobs(jobs, ns, /*frame_interval_ms=*/1.0);
  TimedRunConfig cfg;
  cfg.admission.capacity = 4096;
  cfg.admission.deadline_ms = 1e12;
  ManualClock clock;
  const TimedRunResult r = timed->run_timed(schedules, cfg, &clock);
  EXPECT_EQ(r.offered, r.served);
  EXPECT_EQ(r.dropped_queue_full + r.dropped_deadline, 0);
  EXPECT_EQ(timed_inference_bytes(r, ns), ref);
}

// ---------------------------------------------------------------------------
// Shared-weights aliasing: one resident copy, immutable while serving.
// ---------------------------------------------------------------------------

TEST_F(StreamTableTest, SharedClonesAliasParamsDeepClonesDoNot) {
  auto shared = clone_detector_shared(detector_.get());
  auto deep = clone_detector(detector_.get());
  const std::vector<Param*> src = detector_->parameters();
  const std::vector<Param*> sh = shared->parameters();
  const std::vector<Param*> dp = deep->parameters();
  ASSERT_EQ(src.size(), sh.size());
  ASSERT_EQ(src.size(), dp.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i], sh[i]) << "param " << i << " not aliased";
    EXPECT_NE(src[i], dp[i]) << "param " << i << " unexpectedly aliased";
  }
  // The plan cache is shared too: a plan built via the sharer is visible to
  // the source (and vice versa).
  const std::size_t before = detector_->cached_plan_count();
  const Scene& scene = dataset_.val_snippets()[0].frames[0];
  const Tensor img =
      renderer_.render_at_scale(scene, 240, dataset_.scale_policy());
  shared->detect(img);
  EXPECT_GT(detector_->cached_plan_count(), before);

  auto shared_reg = clone_regressor_shared(regressor_.get());
  const std::vector<Param*> rsrc = regressor_->parameters();
  const std::vector<Param*> rsh = shared_reg->parameters();
  ASSERT_EQ(rsrc.size(), rsh.size());
  for (std::size_t i = 0; i < rsrc.size(); ++i) EXPECT_EQ(rsrc[i], rsh[i]);
}

TEST_F(StreamTableTest, EveryPoolContextAliasesTheMasterCopy) {
  ModelTable table(detector_.get(), regressor_.get(), /*contexts=*/3);
  ContextPool* a = table.pool_for(ExecutionPolicy::env_default(),
                                  ExecutionPolicy::env_default());
  ContextPool* b =
      table.pool_for(ExecutionPolicy::int8(), ExecutionPolicy::fp32());
  EXPECT_NE(a, b);
  EXPECT_EQ(table.pool_count(), 2u);
  // Same pair twice -> same pool, not a new one.
  EXPECT_EQ(table.pool_for(ExecutionPolicy::int8(), ExecutionPolicy::fp32()),
            b);

  const std::vector<Param*> det_master = table.master_detector()->parameters();
  const std::vector<Param*> reg_master =
      table.master_regressor()->parameters();
  for (ContextPool* pool : {a, b}) {
    for (int i = 0; i < pool->size(); ++i) {
      EXPECT_EQ(pool->detector_at(i)->parameters(), det_master);
      EXPECT_EQ(pool->regressor_at(i)->parameters(), reg_master);
    }
  }
  // Leases hand out distinct contexts until the pool is exhausted.
  ModelPool::Lease l0 = a->acquire();
  ModelPool::Lease l1 = a->acquire();
  ModelPool::Lease l2 = a->acquire();
  std::set<Detector*> distinct{l0.detector, l1.detector, l2.detector};
  EXPECT_EQ(distinct.size(), 3u);
  a->release(l0);
  a->release(l1);
  a->release(l2);
}

TEST_F(StreamTableTest, WeightsStayByteIdenticalAcrossServing) {
  auto runner = make_runner(3);
  ModelTable* table = runner->model_table();
  const std::vector<float> det_before =
      flatten_params(table->master_detector()->parameters());
  const std::vector<float> reg_before =
      flatten_params(table->master_regressor()->parameters());

  const auto jobs = val_jobs();
  StreamTableConfig tcfg;
  tcfg.workers = 3;
  runner->run_table(jobs, tcfg);

  EXPECT_EQ(flatten_params(table->master_detector()->parameters()),
            det_before);
  EXPECT_EQ(flatten_params(table->master_regressor()->parameters()),
            reg_before);
}

TEST_F(StreamTableTest, ThousandStreamTableHoldsOneWeightCopy) {
  // 1000 streams, 2 contexts per policy pair: resident parameter storage
  // must be EXACTLY one model copy — the per-stream cost is the
  // StreamContext, not weights.  (1000 dedicated clones would be 1000x.)
  auto big = make_runner(1000, /*contexts=*/2);
  ModelTable* table = big->model_table();
  const std::size_t resident = table->resident_weight_bytes();
  EXPECT_EQ(resident, table->cloned_weight_bytes(1));
  EXPECT_EQ(table->cloned_weight_bytes(1000), resident * 1000);

  // Serving smoke through the giant table (jobs land on the first streams;
  // the other ~996 entries sit idle, costing only their state).
  const auto jobs = val_jobs(2);
  StreamTableConfig tcfg;
  tcfg.workers = 4;
  const MultiStreamResult got = big->run_table(jobs, tcfg);
  EXPECT_EQ(table->resident_weight_bytes(), resident);  // still one copy

  auto small = make_runner(1000, /*contexts=*/2);
  EXPECT_EQ(result_bytes(small->run_serial(jobs)), result_bytes(got));
}

TEST_F(StreamTableTest, ThousandStreamTimedSmokeServesEveryFrame) {
  // Queueing-only (service-model) timed run over 1000 streams: the event
  // loop must admit, serve and account every offered frame with one weight
  // copy resident.
  const int ns = 1000;
  auto runner = make_runner(ns, /*contexts=*/1);
  const std::vector<Snippet>& snips = dataset_.val_snippets();
  std::vector<StreamSchedule> schedules(ns);
  for (int s = 0; s < ns; ++s) {
    const Snippet& snip = snips[static_cast<std::size_t>(s) % snips.size()];
    double t = static_cast<double>(s) * 0.25;
    bool first = true;
    for (std::size_t f = 0; f < snip.frames.size() && f < 3; ++f) {
      schedules[static_cast<std::size_t>(s)].push_back(
          {t, &snip.frames[f], first});
      first = false;
      t += 40.0;
    }
  }
  TimedRunConfig cfg;
  cfg.admission.capacity = 8;
  cfg.admission.deadline_ms = 1e12;
  cfg.run_inference = false;
  cfg.service_model = [](int, long, int, DegradeLevel) { return 0.01; };
  ManualClock clock;
  const TimedRunResult r = runner->run_timed(schedules, cfg, &clock);
  EXPECT_EQ(r.offered, static_cast<long>(ns) * 3);
  EXPECT_EQ(r.served, r.offered);
  EXPECT_EQ(r.dropped_queue_full + r.dropped_deadline, 0);
  EXPECT_EQ(runner->model_table()->resident_weight_bytes(),
            runner->model_table()->cloned_weight_bytes(1));
}

// ---------------------------------------------------------------------------
// Randomized replay: seeded scenarios, byte-for-byte determinism.
// ---------------------------------------------------------------------------

TEST_F(StreamTableTest, ReplayFuzzTimedRunsAreByteDeterministic) {
  // ~50 seeded scenarios over the virtual-time runner: random stream
  // counts, Poisson/bursty/idle (churn) arrival mixes, random admission
  // knobs and injected faults.  Each scenario runs TWICE; the full replay
  // serialization (timings, drops, accounting) must match byte for byte.
  const auto jobs = val_jobs();
  for (int scenario = 0; scenario < 50; ++scenario) {
    Rng rng(1000 + static_cast<std::uint64_t>(scenario));
    const int ns = rng.uniform_int(1, 5);
    std::vector<StreamSchedule> schedules;
    schedules.reserve(static_cast<std::size_t>(ns));
    for (int s = 0; s < ns; ++s) {
      const float kind = rng.uniform();
      Rng srng = rng.fork();
      if (kind < 0.2f) {
        schedules.emplace_back();  // stream attached but idle (churn)
      } else if (kind < 0.6f) {
        schedules.push_back(poisson_schedule(
            jobs, /*rate_hz=*/rng.uniform(20.0f, 200.0f),
            /*start_ms=*/rng.uniform(0.0f, 50.0f), &srng));
      } else {
        schedules.push_back(bursty_schedule(
            jobs, /*base=*/rng.uniform(10.0f, 60.0f),
            /*burst=*/rng.uniform(100.0f, 400.0f),
            /*period=*/rng.uniform(100.0f, 400.0f),
            /*len=*/rng.uniform(10.0f, 90.0f),
            /*start_ms=*/rng.uniform(0.0f, 50.0f), &srng));
      }
    }
    TimedRunConfig cfg;
    cfg.admission.capacity = rng.uniform_int(1, 8);
    cfg.admission.deadline_ms = rng.uniform(5.0f, 100.0f);
    cfg.run_inference = false;
    const double base_ms = rng.uniform(1.0f, 15.0f);
    cfg.service_model = [base_ms](int stream, long seq, int scale,
                                  DegradeLevel) {
      return base_ms + 0.1 * static_cast<double>(stream) +
             0.01 * static_cast<double>(seq % 7) +
             1e-6 * static_cast<double>(scale) * static_cast<double>(scale);
    };
    if (rng.chance(0.3f))
      cfg.faults = FaultInjection::global_spike(1, 3, rng.uniform(20.f, 80.f));
    else if (rng.chance(0.3f))
      cfg.faults =
          FaultInjection::stalled_stream(0, 2, rng.uniform(50.f, 150.f));

    auto runner = make_runner(ns, /*contexts=*/1);
    ManualClock c1;
    const std::string run1 = timed_replay_bytes(
        runner->run_timed(schedules, cfg, &c1));
    ManualClock c2;
    const std::string run2 = timed_replay_bytes(
        runner->run_timed(schedules, cfg, &c2));
    EXPECT_EQ(run1, run2) << "scenario " << scenario << " not replayable";
    EXPECT_FALSE(run1.empty());
  }
}

TEST_F(StreamTableTest, ReplayFuzzTableIsDeterministicAcrossWorkerCounts) {
  // The table's worker count is pure execution strategy: for seeded random
  // job subsets and stream counts, 1, 2 and 3 workers (and a repeat run)
  // must produce identical bytes.
  const auto all = val_jobs();
  for (int scenario = 0; scenario < 4; ++scenario) {
    Rng rng(7000 + static_cast<std::uint64_t>(scenario));
    const int ns = rng.uniform_int(1, 3);
    std::vector<const Snippet*> jobs;
    for (const Snippet* j : all)
      if (rng.chance(0.7f)) jobs.push_back(j);
    if (jobs.empty()) jobs.push_back(all[0]);

    std::string ref;
    for (int workers = 1; workers <= 3; ++workers) {
      StreamTableConfig tcfg;
      tcfg.workers = workers;
      auto runner = make_runner(ns);
      const std::string got = result_bytes(runner->run_table(jobs, tcfg));
      if (workers == 1) {
        ref = got;
        // Same runner, second pass: state fully resets per snippet.
        EXPECT_EQ(result_bytes(runner->run_table(jobs, tcfg)), ref)
            << "scenario " << scenario << " not repeatable";
      } else {
        EXPECT_EQ(got, ref) << "scenario " << scenario << " workers "
                            << workers;
      }
    }
  }
}

}  // namespace
}  // namespace ada
