// Scratch-arena contract: alignment, frame scoping, steady-state reuse (no
// heap traffic once warm), and cross-thread isolation — concurrent conv
// calls on different threads must not alias each other's workspaces.
#include "runtime/scratch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "tensor/conv2d.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ada {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(Scratch, AllocationsAre64ByteAligned) {
  ScratchArena& arena = scratch_arena();
  ScratchFrame frame(&arena);
  for (std::size_t n : {1u, 3u, 17u, 1000u, 65536u})
    EXPECT_TRUE(aligned64(frame.alloc(n))) << "n=" << n;
}

TEST(Scratch, FramesReleaseLifo) {
  ScratchArena& arena = scratch_arena();
  const std::size_t before = arena.in_use();
  {
    ScratchFrame outer(&arena);
    float* a = outer.alloc(100);
    a[0] = 1.0f;
    {
      ScratchFrame inner(&arena);
      float* b = inner.alloc(100);
      EXPECT_NE(a, b);
      b[0] = 2.0f;
    }
    // Inner released; a new inner-frame allocation reuses the same storage.
    {
      ScratchFrame inner(&arena);
      float* c = inner.alloc(50);
      (void)c;
    }
    EXPECT_EQ(a[0], 1.0f) << "outer allocation must survive inner frames";
  }
  EXPECT_EQ(arena.in_use(), before);
}

TEST(Scratch, SteadyStateHasNoHeapTraffic) {
  ScratchArena& arena = scratch_arena();
  auto workload = [&] {
    ScratchFrame frame(&arena);
    float* a = frame.alloc(4096);
    ScratchFrame inner(&arena);
    float* b = inner.alloc(8192);
    a[0] = b[0] = 0.0f;
  };
  workload();  // warm up (may grow)
  workload();  // second pass settles capacity
  const std::size_t warm = arena.heap_alloc_count();
  for (int i = 0; i < 100; ++i) workload();
  EXPECT_EQ(arena.heap_alloc_count(), warm)
      << "warm arena must serve identical workloads without allocating";
}

TEST(Scratch, TensorStorageIs64ByteAligned) {
  for (int len : {1, 7, 64, 1000}) {
    Tensor t = Tensor::vec(len);
    EXPECT_TRUE(aligned64(t.data())) << "len=" << len;
  }
}

/// Concurrent conv2d_forward calls from several threads must produce the
/// same bytes as the serial runs: any cross-thread workspace aliasing would
/// corrupt the column matrices and show up here.
TEST(Scratch, ConcurrentConvMatchesSerial) {
  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  ConvSpec s{3, 8, 3, 1, 1, 1};
  std::vector<Tensor> inputs, weights, expected;
  Rng rng(99);
  for (int t = 0; t < kThreads; ++t) {
    Tensor x = Tensor::chw(3, 33, 29);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.normal();
    Tensor w(8, 3, 3, 3);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal();
    Tensor y;
    conv2d_forward(s, x, w, Tensor(), &y, /*fuse_relu=*/true);
    inputs.push_back(std::move(x));
    weights.push_back(std::move(w));
    expected.push_back(std::move(y));
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int r = 0; r < kReps; ++r) {
        Tensor y;
        conv2d_forward(s, inputs[static_cast<std::size_t>(t)],
                       weights[static_cast<std::size_t>(t)], Tensor(), &y,
                       /*fuse_relu=*/true);
        const Tensor& e = expected[static_cast<std::size_t>(t)];
        if (!y.same_shape(e) ||
            std::memcmp(y.data(), e.data(), y.size() * sizeof(float)) != 0)
          ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
}

}  // namespace
}  // namespace ada
