// Ahead-of-time execution plans: built lazily once per (model, shape,
// backend) and reused (zero arena growth after warm-up), invalidated by
// quantize() and training-mode re-entry, kernel choices that follow the
// model's policy, MAC totals that match the architecture's source of
// truth, and batched planned forwards bit-identical to per-image on both
// fp32 backends.
#include "runtime/exec_plan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "detection/detector.h"
#include "runtime/scratch.h"

namespace ada {
namespace {

struct BackendGuard {
  GemmBackend saved = gemm_backend();
  ~BackendGuard() { set_gemm_backend(saved); }
};

// ---------------------------------------------------------------- autotune
//
// The per-layer autotuner times int8 first, then packed fp32, for each
// geometry (runtime/exec_plan.h).  These deterministic fakes exploit that
// ordering so fallback decisions are reproducible on any machine.  Each one
// still invokes the closure once, proving the n=1 probe forward really runs.
int g_bench_calls = 0;

/// Strictly increasing readings: the first candidate (int8) always wins.
double bench_int8_wins(const std::function<void()>& run) {
  run();
  return static_cast<double>(++g_bench_calls);
}

/// Strictly decreasing readings: the second candidate (fp32) always wins.
double bench_fp32_wins(const std::function<void()>& run) {
  run();
  return 1.0e6 - static_cast<double>(++g_bench_calls);
}

/// Winner alternates per geometry (each cache miss = one int8 + one fp32
/// call, so the pair index selects): even geometries keep int8, odd ones
/// fall back — a forced per-layer mixed plan.
double bench_alternating(const std::function<void()>& run) {
  run();
  const int call = g_bench_calls++;
  const bool int8_wins = (call / 2) % 2 == 0;
  const bool is_int8_call = call % 2 == 0;
  return (int8_wins == is_int8_call) ? 1.0 : 2.0;
}

/// Installs a fake bench and isolates the process-global choice cache for
/// one test (clears on entry AND exit so neighbouring tests never see
/// fake-measured winners).
struct AutotuneGuard {
  explicit AutotuneGuard(AutotuneBenchFn fn) {
    g_bench_calls = 0;
    clear_autotune_cache();
    set_autotune_bench(fn);
  }
  ~AutotuneGuard() {
    set_autotune_bench(nullptr);
    clear_autotune_cache();
  }
};

class ExecPlanTest : public ::testing::Test {
 protected:
  ExecPlanTest()
      : dataset_(Dataset::synth_vid(1, 2, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
  }

  Tensor render(int scale) const {
    return renderer_.render_at_scale(dataset_.val_snippets()[0].frames[0],
                                     scale, dataset_.scale_policy());
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
};

TEST_F(ExecPlanTest, PlanBuiltOncePerShapeAndReused) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  EXPECT_EQ(detector_->cached_plan_count(), 0u);

  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
  const ExecutionPlan* plan = &detector_->plan_for(1, img.h(), img.w());

  // Repeated serving at the same scale reuses the same plan object; a new
  // scale adds exactly one more.
  detector_->detect(img);
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
  EXPECT_EQ(&detector_->plan_for(1, img.h(), img.w()), plan);

  const Tensor img2 = render(360);
  detector_->detect(img2);
  EXPECT_EQ(detector_->cached_plan_count(), 2u);
}

TEST_F(ExecPlanTest, ZeroArenaGrowthAfterWarmup) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  const Tensor img2 = render(360);
  // Warm-up: every scale this test serves, once.
  detector_->detect(img);
  detector_->detect(img2);
  const std::size_t allocs = scratch_arena().heap_alloc_count();
  for (int i = 0; i < 3; ++i) {
    detector_->detect(img);
    detector_->detect(img2);
  }
  EXPECT_EQ(scratch_arena().heap_alloc_count(), allocs)
      << "steady-state planned forwards must not touch the allocator";
}

TEST_F(ExecPlanTest, PlanContentMatchesArchitecture) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());

  // 4 backbone convs + 3 pools + 2 heads = 9 leaf steps.
  EXPECT_EQ(plan.steps.size(), 9u);
  EXPECT_EQ(plan.policy, "packed");
  EXPECT_EQ(plan.input.h, img.h());
  EXPECT_EQ(plan.input.w, img.w());
  // Every conv step resolved to the packed kernel with a real workspace;
  // pools carry no kernel.
  int convs = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kernel == KernelKind::kNone) continue;
    ++convs;
    EXPECT_EQ(s.kernel, KernelKind::kGemmPacked) << s.layer;
    EXPECT_GT(s.workspace_floats, 0u) << s.layer;
  }
  EXPECT_EQ(convs, 6);
  EXPECT_GT(plan.arena_floats, 0u);
  // MACs come from the same geometry forward_macs uses.
  EXPECT_EQ(plan.total_macs(), detector_->forward_macs(img.h(), img.w()));
  // The printable form carries the per-layer table plan_dump shows.
  const std::string dump = plan.to_string();
  EXPECT_NE(dump.find("conv2d+relu"), std::string::npos);
  EXPECT_NE(dump.find("packed"), std::string::npos);
}

TEST_F(ExecPlanTest, QuantizeInvalidatesAndReplansToInt8) {
  BackendGuard guard;
  AutotuneGuard tune(bench_int8_wins);  // deterministic: int8 keeps every layer
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);

  detector_->quantize({img});
  EXPECT_EQ(detector_->cached_plan_count(), 0u)
      << "quantize() must invalidate cached plans";

  detector_->set_execution_policy(ExecutionPolicy::int8());
  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(plan.policy, "int8");
  for (const PlanStep& s : plan.steps)
    if (s.kernel != KernelKind::kNone) {
      EXPECT_EQ(s.kernel, KernelKind::kInt8) << s.layer;
      // Every kernel-bearing step went through the measured race and
      // carries its timings for plan_dump / bench_report.
      EXPECT_TRUE(s.autotuned) << s.layer;
      EXPECT_GT(s.tuned_int8_ns, 0.0) << s.layer;
      EXPECT_LE(s.tuned_int8_ns, s.tuned_fp32_ns) << s.layer;
    }
  // The printed plan surfaces the race results.
  EXPECT_NE(plan.to_string().find("tuned int8="), std::string::npos);
}

TEST_F(ExecPlanTest, AutotunePerLayerFallbackToFp32) {
  BackendGuard guard;
  AutotuneGuard tune(bench_fp32_wins);  // deterministic: fp32 wins everywhere
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->quantize({img});
  detector_->set_execution_policy(ExecutionPolicy::int8());

  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(plan.policy, "int8");
  for (const PlanStep& s : plan.steps)
    if (s.kernel != KernelKind::kNone) {
      // The layer resolved to int8 but the measured race demoted it.
      EXPECT_EQ(s.kernel, KernelKind::kGemmPacked) << s.layer;
      EXPECT_TRUE(s.autotuned) << s.layer;
      EXPECT_GT(s.tuned_fp32_ns, 0.0) << s.layer;
      EXPECT_LT(s.tuned_fp32_ns, s.tuned_int8_ns) << s.layer;
    }
  // A fully demoted plan still serves (and runs the fp32 packed kernels).
  detector_->detect(img);
}

TEST_F(ExecPlanTest, AutotuneMixedPlanFallsBackPerLayer) {
  BackendGuard guard;
  AutotuneGuard tune(bench_alternating);
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->quantize({img});
  detector_->set_execution_policy(ExecutionPolicy::int8());

  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());
  int int8_steps = 0, fp32_steps = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kernel == KernelKind::kNone) continue;
    EXPECT_TRUE(s.autotuned) << s.layer;
    // The planned kernel is exactly what the recorded timings dictate —
    // fallback is per layer, not per plan.
    const KernelKind want = s.tuned_int8_ns <= s.tuned_fp32_ns
                                ? KernelKind::kInt8
                                : KernelKind::kGemmPacked;
    EXPECT_EQ(s.kernel, want) << s.layer;
    (s.kernel == KernelKind::kInt8 ? int8_steps : fp32_steps)++;
  }
  EXPECT_GT(int8_steps, 0);
  EXPECT_GT(fp32_steps, 0) << "alternating bench must demote some layers";
  detector_->detect(img);  // mixed plan serves fine
}

TEST_F(ExecPlanTest, AutotuneChoicesMemoizedAndSharedAcrossInstances) {
  BackendGuard guard;
  AutotuneGuard tune(bench_int8_wins);
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->quantize({img});
  detector_->set_execution_policy(ExecutionPolicy::int8());

  EXPECT_EQ(autotune_cache_size(), 0u);
  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());
  const std::size_t geometries = autotune_cache_size();
  EXPECT_GT(geometries, 0u);
  const int calls_after_first = g_bench_calls;
  EXPECT_EQ(calls_after_first, static_cast<int>(2 * geometries))
      << "one int8 + one fp32 measurement per distinct geometry";

  // A second shape at the same scale hits only already-measured
  // geometries for layers whose (h, w) match; new spatial sizes add new
  // keys but batch size never does: a batched plan re-measures nothing.
  const ExecutionPlan& batched = detector_->plan_for(2, img.h(), img.w());
  EXPECT_EQ(autotune_cache_size(), geometries);
  EXPECT_EQ(g_bench_calls, calls_after_first)
      << "batch size is excluded from the autotune key";
  ASSERT_EQ(batched.steps.size(), plan.steps.size());
  for (std::size_t i = 0; i < plan.steps.size(); ++i)
    EXPECT_EQ(batched.steps[i].kernel, plan.steps[i].kernel);

  // A weight-aliased clone shares the plan cache outright; even an
  // INDEPENDENT instance with the same architecture re-measures nothing —
  // the choice cache is process-global, which is what keeps
  // master-vs-clone outputs bit-identical.
  std::unique_ptr<Detector> clone = clone_detector_shared(detector_.get());
  clone->set_execution_policy(ExecutionPolicy::int8());
  const ExecutionPlan& clone_plan = clone->plan_for(1, img.h(), img.w());
  EXPECT_EQ(&clone_plan, &plan) << "aliased clones share the plan cache";
  EXPECT_EQ(g_bench_calls, calls_after_first);

  clear_autotune_cache();
  EXPECT_EQ(autotune_cache_size(), 0u);
  detector_->set_execution_policy(ExecutionPolicy::int8());  // drops plans
  detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(autotune_cache_size(), geometries) << "rebuild re-measures";
}

TEST_F(ExecPlanTest, TrainingReentryInvalidatesPlans) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->detect(img);
  EXPECT_GE(detector_->cached_plan_count(), 1u);

  Sgd opt(detector_->parameters(), Sgd::Options{});
  Rng rng(3);
  detector_->train_step(img, {}, &opt, &rng);
  EXPECT_EQ(detector_->cached_plan_count(), 0u)
      << "training-mode re-entry must invalidate plans (weights changed)";

  // Serving after training rebuilds lazily and still works.
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
}

TEST_F(ExecPlanTest, UnpinnedPolicyPlansPerResolvedBackend) {
  // A backend-keyed cache is what lets an env-following model keep
  // honoring set_gemm_backend flips without serving stale kernels.
  BackendGuard guard;
  const Tensor img = render(240);
  set_gemm_backend(GemmBackend::kReference);
  detector_->forward(img);
  const ExecutionPlan& ref_plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(ref_plan.policy, "reference");
  set_gemm_backend(GemmBackend::kPacked);
  detector_->forward(img);
  const ExecutionPlan& packed_plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(packed_plan.policy, "packed");
  EXPECT_EQ(detector_->cached_plan_count(), 2u);
  // The two cached plans really resolve to different kernels.  (Feature
  // *bits* can legitimately coincide here: with zero conv biases both fp32
  // backends run the same strict ascending-k chains.)
  ASSERT_FALSE(ref_plan.steps.empty());
  EXPECT_EQ(ref_plan.steps[0].kernel, KernelKind::kGemmReference);
  EXPECT_EQ(packed_plan.steps[0].kernel, KernelKind::kGemmPacked);
}

TEST_F(ExecPlanTest, BatchedPlannedForwardBitIdenticalPerImageBothBackends) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kInt8);  // models pin; global must not matter
  const Tensor f0 = render(240);
  const Tensor f1 = renderer_.render_at_scale(
      dataset_.val_snippets()[1].frames[0], 240, dataset_.scale_policy());
  const std::vector<const Tensor*> imgs{&f0, &f1};
  const Tensor batch = Tensor::batch_of(imgs);

  for (const ExecutionPolicy& policy :
       {ExecutionPolicy::fp32(), ExecutionPolicy::reference()}) {
    detector_->set_execution_policy(policy);
    const std::vector<DetectionOutput> batched =
        detector_->detect_batch(batch);
    const Tensor batched_feats = detector_->features();
    ASSERT_EQ(batched.size(), 2u);
    for (int n = 0; n < 2; ++n) {
      const DetectionOutput single = detector_->detect(*imgs[n]);
      const Tensor single_feats = detector_->features();
      // Deep features bitwise, detections field-by-field.
      const Tensor bf = batched_feats.image(n);
      ASSERT_TRUE(bf.same_shape(single_feats));
      EXPECT_EQ(0, std::memcmp(bf.data(), single_feats.data(),
                               bf.size() * sizeof(float)));
      const auto& da = batched[static_cast<std::size_t>(n)].detections;
      const auto& db = single.detections;
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t d = 0; d < da.size(); ++d) {
        EXPECT_EQ(da[d].score, db[d].score);
        EXPECT_EQ(da[d].box.x1, db[d].box.x1);
        EXPECT_EQ(da[d].box.y2, db[d].box.y2);
      }
    }
  }
}

}  // namespace
}  // namespace ada
