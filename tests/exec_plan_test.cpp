// Ahead-of-time execution plans: built lazily once per (model, shape,
// backend) and reused (zero arena growth after warm-up), invalidated by
// quantize() and training-mode re-entry, kernel choices that follow the
// model's policy, MAC totals that match the architecture's source of
// truth, and batched planned forwards bit-identical to per-image on both
// fp32 backends.
#include "runtime/exec_plan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "detection/detector.h"
#include "runtime/scratch.h"

namespace ada {
namespace {

struct BackendGuard {
  GemmBackend saved = gemm_backend();
  ~BackendGuard() { set_gemm_backend(saved); }
};

class ExecPlanTest : public ::testing::Test {
 protected:
  ExecPlanTest()
      : dataset_(Dataset::synth_vid(1, 2, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
  }

  Tensor render(int scale) const {
    return renderer_.render_at_scale(dataset_.val_snippets()[0].frames[0],
                                     scale, dataset_.scale_policy());
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
};

TEST_F(ExecPlanTest, PlanBuiltOncePerShapeAndReused) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  EXPECT_EQ(detector_->cached_plan_count(), 0u);

  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
  const ExecutionPlan* plan = &detector_->plan_for(1, img.h(), img.w());

  // Repeated serving at the same scale reuses the same plan object; a new
  // scale adds exactly one more.
  detector_->detect(img);
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
  EXPECT_EQ(&detector_->plan_for(1, img.h(), img.w()), plan);

  const Tensor img2 = render(360);
  detector_->detect(img2);
  EXPECT_EQ(detector_->cached_plan_count(), 2u);
}

TEST_F(ExecPlanTest, ZeroArenaGrowthAfterWarmup) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  const Tensor img2 = render(360);
  // Warm-up: every scale this test serves, once.
  detector_->detect(img);
  detector_->detect(img2);
  const std::size_t allocs = scratch_arena().heap_alloc_count();
  for (int i = 0; i < 3; ++i) {
    detector_->detect(img);
    detector_->detect(img2);
  }
  EXPECT_EQ(scratch_arena().heap_alloc_count(), allocs)
      << "steady-state planned forwards must not touch the allocator";
}

TEST_F(ExecPlanTest, PlanContentMatchesArchitecture) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());

  // 4 backbone convs + 3 pools + 2 heads = 9 leaf steps.
  EXPECT_EQ(plan.steps.size(), 9u);
  EXPECT_EQ(plan.policy, "packed");
  EXPECT_EQ(plan.input.h, img.h());
  EXPECT_EQ(plan.input.w, img.w());
  // Every conv step resolved to the packed kernel with a real workspace;
  // pools carry no kernel.
  int convs = 0;
  for (const PlanStep& s : plan.steps) {
    if (s.kernel == KernelKind::kNone) continue;
    ++convs;
    EXPECT_EQ(s.kernel, KernelKind::kGemmPacked) << s.layer;
    EXPECT_GT(s.workspace_floats, 0u) << s.layer;
  }
  EXPECT_EQ(convs, 6);
  EXPECT_GT(plan.arena_floats, 0u);
  // MACs come from the same geometry forward_macs uses.
  EXPECT_EQ(plan.total_macs(), detector_->forward_macs(img.h(), img.w()));
  // The printable form carries the per-layer table plan_dump shows.
  const std::string dump = plan.to_string();
  EXPECT_NE(dump.find("conv2d+relu"), std::string::npos);
  EXPECT_NE(dump.find("packed"), std::string::npos);
}

TEST_F(ExecPlanTest, QuantizeInvalidatesAndReplansToInt8) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);

  detector_->quantize({img});
  EXPECT_EQ(detector_->cached_plan_count(), 0u)
      << "quantize() must invalidate cached plans";

  detector_->set_execution_policy(ExecutionPolicy::int8());
  const ExecutionPlan& plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(plan.policy, "int8");
  for (const PlanStep& s : plan.steps)
    if (s.kernel != KernelKind::kNone) {
      EXPECT_EQ(s.kernel, KernelKind::kInt8) << s.layer;
    }
}

TEST_F(ExecPlanTest, TrainingReentryInvalidatesPlans) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kPacked);
  const Tensor img = render(240);
  detector_->detect(img);
  EXPECT_GE(detector_->cached_plan_count(), 1u);

  Sgd opt(detector_->parameters(), Sgd::Options{});
  Rng rng(3);
  detector_->train_step(img, {}, &opt, &rng);
  EXPECT_EQ(detector_->cached_plan_count(), 0u)
      << "training-mode re-entry must invalidate plans (weights changed)";

  // Serving after training rebuilds lazily and still works.
  detector_->detect(img);
  EXPECT_EQ(detector_->cached_plan_count(), 1u);
}

TEST_F(ExecPlanTest, UnpinnedPolicyPlansPerResolvedBackend) {
  // A backend-keyed cache is what lets an env-following model keep
  // honoring set_gemm_backend flips without serving stale kernels.
  BackendGuard guard;
  const Tensor img = render(240);
  set_gemm_backend(GemmBackend::kReference);
  detector_->forward(img);
  const ExecutionPlan& ref_plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(ref_plan.policy, "reference");
  set_gemm_backend(GemmBackend::kPacked);
  detector_->forward(img);
  const ExecutionPlan& packed_plan = detector_->plan_for(1, img.h(), img.w());
  EXPECT_EQ(packed_plan.policy, "packed");
  EXPECT_EQ(detector_->cached_plan_count(), 2u);
  // The two cached plans really resolve to different kernels.  (Feature
  // *bits* can legitimately coincide here: with zero conv biases both fp32
  // backends run the same strict ascending-k chains.)
  ASSERT_FALSE(ref_plan.steps.empty());
  EXPECT_EQ(ref_plan.steps[0].kernel, KernelKind::kGemmReference);
  EXPECT_EQ(packed_plan.steps[0].kernel, KernelKind::kGemmPacked);
}

TEST_F(ExecPlanTest, BatchedPlannedForwardBitIdenticalPerImageBothBackends) {
  BackendGuard guard;
  set_gemm_backend(GemmBackend::kInt8);  // models pin; global must not matter
  const Tensor f0 = render(240);
  const Tensor f1 = renderer_.render_at_scale(
      dataset_.val_snippets()[1].frames[0], 240, dataset_.scale_policy());
  const std::vector<const Tensor*> imgs{&f0, &f1};
  const Tensor batch = Tensor::batch_of(imgs);

  for (const ExecutionPolicy& policy :
       {ExecutionPolicy::fp32(), ExecutionPolicy::reference()}) {
    detector_->set_execution_policy(policy);
    const std::vector<DetectionOutput> batched =
        detector_->detect_batch(batch);
    const Tensor batched_feats = detector_->features();
    ASSERT_EQ(batched.size(), 2u);
    for (int n = 0; n < 2; ++n) {
      const DetectionOutput single = detector_->detect(*imgs[n]);
      const Tensor single_feats = detector_->features();
      // Deep features bitwise, detections field-by-field.
      const Tensor bf = batched_feats.image(n);
      ASSERT_TRUE(bf.same_shape(single_feats));
      EXPECT_EQ(0, std::memcmp(bf.data(), single_feats.data(),
                               bf.size() * sizeof(float)));
      const auto& da = batched[static_cast<std::size_t>(n)].detections;
      const auto& db = single.detections;
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t d = 0; d < da.size(); ++d) {
        EXPECT_EQ(da[d].score, db[d].score);
        EXPECT_EQ(da[d].box.x1, db[d].box.x1);
        EXPECT_EQ(da[d].box.y2, db[d].box.y2);
      }
    }
  }
}

}  // namespace
}  // namespace ada
