// DFF on the serving path: the keyframe/warp branch of AdaScalePipeline /
// MultiStreamRunner must be a pure wiring change — bit-identical to the
// already-trusted offline video pipelines (DffPipeline, AdaptiveDffPipeline,
// Harness::run_dff) on the same input, and bit-identical between serial,
// concurrent, and batched execution no matter how key frames coalesce.
// Serving is stateful for the first time here, so the suite also proves the
// per-stream context carries no state across streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adascale/pipeline.h"
#include "adascale/scale_target.h"
#include "data/dataset.h"
#include "detection/box.h"
#include "experiments/harness.h"
#include "runtime/multi_stream.h"
#include "video/adaptive_dff.h"
#include "video/dff.h"

namespace ada {
namespace {

void expect_equal_detections(const DetectionOutput& a,
                             const DetectionOutput& b) {
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t d = 0; d < a.detections.size(); ++d) {
    EXPECT_EQ(a.detections[d].class_id, b.detections[d].class_id);
    EXPECT_EQ(a.detections[d].score, b.detections[d].score);
    EXPECT_EQ(a.detections[d].box.x1, b.detections[d].box.x1);
    EXPECT_EQ(a.detections[d].box.y1, b.detections[d].box.y1);
    EXPECT_EQ(a.detections[d].box.x2, b.detections[d].box.x2);
    EXPECT_EQ(a.detections[d].box.y2, b.detections[d].box.y2);
  }
}

/// Per-stream outputs of two runs must match bit for bit, including the
/// DFF bookkeeping fields (key placement is part of the contract: a key in
/// one mode but not the other means the stateful branch diverged).
void expect_equal_outputs(const MultiStreamResult& a,
                          const MultiStreamResult& b) {
  ASSERT_EQ(a.streams.size(), b.streams.size());
  EXPECT_EQ(a.total_frames, b.total_frames);
  for (std::size_t s = 0; s < a.streams.size(); ++s) {
    const StreamOutput& x = a.streams[s];
    const StreamOutput& y = b.streams[s];
    ASSERT_EQ(x.frames.size(), y.frames.size());
    for (std::size_t f = 0; f < x.frames.size(); ++f) {
      EXPECT_EQ(x.frames[f].scale_used, y.frames[f].scale_used);
      EXPECT_EQ(x.frames[f].next_scale, y.frames[f].next_scale);
      EXPECT_EQ(x.frames[f].regressed_t, y.frames[f].regressed_t);
      EXPECT_EQ(x.frames[f].dff, y.frames[f].dff);
      EXPECT_EQ(x.frames[f].dff_key, y.frames[f].dff_key);
      EXPECT_EQ(x.frames[f].warp_residual, y.frames[f].warp_residual);
      expect_equal_detections(x.frames[f].detections, y.frames[f].detections);
    }
  }
}

class DffServingTest : public ::testing::Test {
 protected:
  DffServingTest()
      : dataset_(Dataset::synth_vid(1, 4, 77)),
        renderer_(dataset_.make_renderer()) {
    DetectorConfig dcfg;
    dcfg.num_classes = dataset_.catalog().num_classes();
    Rng rng(5);
    detector_ = std::make_unique<Detector>(dcfg, &rng);
    RegressorConfig rcfg;
    rcfg.in_channels = detector_->feature_channels();
    Rng rng2(6);
    regressor_ = std::make_unique<ScaleRegressor>(rcfg, &rng2);
  }

  std::vector<const Snippet*> val_jobs() const {
    std::vector<const Snippet*> jobs;
    for (const Snippet& s : dataset_.val_snippets()) jobs.push_back(&s);
    return jobs;
  }

  AdaScalePipeline make_serving(int init_scale = 600) {
    return AdaScalePipeline(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            init_scale);
  }

  Dataset dataset_;
  Renderer renderer_;
  std::unique_ptr<Detector> detector_;
  std::unique_ptr<ScaleRegressor> regressor_;
};

TEST_F(DffServingTest, FixedIntervalAdaScaleMatchesDffPipeline) {
  // AdaScale-driven keyframing: the serving branch must retrace
  // DffPipeline's exact state machine — same keys, same per-key scale
  // switches, same detections, bit for bit.
  DffConfig dcfg;
  dcfg.key_interval = 4;
  DffPipeline reference(detector_.get(), regressor_.get(), &renderer_,
                        dataset_.scale_policy(), dcfg,
                        ScaleSet::reg_default());
  AdaScalePipeline serving = make_serving();
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 4;
  scfg.adascale = true;
  serving.set_dff(scfg);

  for (const Snippet& snip : dataset_.val_snippets()) {
    reference.reset();
    serving.reset();
    for (const Scene& frame : snip.frames) {
      const DffFrameOutput a = reference.process(frame);
      const AdaFrameOutput b = serving.process(frame);
      EXPECT_TRUE(b.dff);
      EXPECT_EQ(a.is_key, b.dff_key);
      EXPECT_EQ(a.scale_used, b.scale_used);
      expect_equal_detections(a.detections, b.detections);
    }
  }
}

TEST_F(DffServingTest, FixedScaleMatchesDffPipelineWithoutRegressor) {
  // adascale=false is plain DFF: the regressor never runs, the scale stays
  // pinned at init.  Must match DffPipeline built with a null regressor.
  DffConfig dcfg;
  dcfg.key_interval = 3;
  DffPipeline reference(detector_.get(), nullptr, &renderer_,
                        dataset_.scale_policy(), dcfg, ScaleSet::reg_default(),
                        /*init_scale=*/480);
  AdaScalePipeline serving = make_serving(/*init_scale=*/480);
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 3;
  scfg.adascale = false;
  serving.set_dff(scfg);

  for (const Snippet& snip : dataset_.val_snippets()) {
    reference.reset();
    serving.reset();
    for (const Scene& frame : snip.frames) {
      const DffFrameOutput a = reference.process(frame);
      const AdaFrameOutput b = serving.process(frame);
      EXPECT_EQ(a.is_key, b.dff_key);
      EXPECT_EQ(b.scale_used, 480);
      EXPECT_EQ(b.regressed_t, 0.0f);
      expect_equal_detections(a.detections, b.detections);
    }
  }
}

TEST_F(DffServingTest, LegacyFlowSourceStillMatchesDffPipeline) {
  // The pre-tiny-render flow configuration (grayscale from the full
  // working-scale render, direct key->current matching) remains a supported
  // mode and must stay bit-identical between serving and DffPipeline.
  DffConfig dcfg;
  dcfg.key_interval = 4;
  dcfg.flow_render_scale = 0;
  dcfg.incremental_flow = false;
  DffPipeline reference(detector_.get(), regressor_.get(), &renderer_,
                        dataset_.scale_policy(), dcfg,
                        ScaleSet::reg_default());
  AdaScalePipeline serving = make_serving();
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 4;
  scfg.adascale = true;
  scfg.flow_render_scale = 0;
  scfg.incremental_flow = false;
  serving.set_dff(scfg);

  for (const Snippet& snip : dataset_.val_snippets()) {
    reference.reset();
    serving.reset();
    for (const Scene& frame : snip.frames) {
      const DffFrameOutput a = reference.process(frame);
      const AdaFrameOutput b = serving.process(frame);
      EXPECT_EQ(a.is_key, b.dff_key);
      EXPECT_EQ(a.scale_used, b.scale_used);
      expect_equal_detections(a.detections, b.detections);
    }
  }
}

TEST_F(DffServingTest, AdaptiveMatchesAdaptiveDffPipeline) {
  // With the scale-jump trigger off, the adaptive serving branch is exactly
  // AdaptiveDffPipeline: same residual arithmetic, same forced keys, same
  // max_interval refreshes.
  AdaptiveDffConfig acfg;
  acfg.residual_threshold = 0.02f;  // low enough to exercise forced keys
  acfg.max_interval = 6;
  AdaptiveDffPipeline reference(detector_.get(), regressor_.get(), &renderer_,
                                dataset_.scale_policy(), acfg,
                                ScaleSet::reg_default());
  AdaScalePipeline serving = make_serving();
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kAdaptive;
  scfg.residual_threshold = 0.02f;
  scfg.max_interval = 6;
  scfg.scale_jump_frac = 0.0f;
  scfg.adascale = true;
  serving.set_dff(scfg);

  long keys = 0, forced = 0;
  for (const Snippet& snip : dataset_.val_snippets()) {
    reference.reset();
    serving.reset();
    for (const Scene& frame : snip.frames) {
      const AdaptiveDffFrameOutput a = reference.process(frame);
      const AdaFrameOutput b = serving.process(frame);
      EXPECT_EQ(a.is_key, b.dff_key);
      EXPECT_EQ(a.scale_used, b.scale_used);
      EXPECT_EQ(a.warp_residual, b.warp_residual);
      expect_equal_detections(a.detections, b.detections);
      if (b.dff_key) ++keys;
      if (b.dff_key && b.warp_residual > 0.0f) ++forced;
    }
  }
  EXPECT_GT(keys, 0);
}

TEST_F(DffServingTest, ServingMatchesHarnessRunDff) {
  // End-to-end: a 1-stream MultiStreamRunner in DFF mode must reproduce
  // Harness::run_dff bit for bit — same snippets, same renderer, detections
  // equal after the same reference-frame rescale the harness applies.
  Harness h(Dataset::synth_vid(1, 4, 77), /*cache_dir=*/"");
  DffConfig dcfg;
  dcfg.key_interval = 5;
  const std::vector<SnippetRun> runs =
      h.run_dff(detector_.get(), regressor_.get(), dcfg,
                ScaleSet::reg_default());

  MultiStreamRunner runner(detector_.get(), regressor_.get(), &h.renderer(),
                           h.dataset().scale_policy(), ScaleSet::reg_default(),
                           /*num_streams=*/1);
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 5;
  scfg.adascale = true;
  runner.set_dff(scfg);
  std::vector<const Snippet*> jobs;
  for (const Snippet& s : h.dataset().val_snippets()) jobs.push_back(&s);
  const MultiStreamResult res = runner.run_serial(jobs);

  ASSERT_EQ(runs.size(), jobs.size());
  std::size_t fi = 0;
  for (std::size_t s = 0; s < runs.size(); ++s) {
    ASSERT_EQ(runs[s].frame_dets.size(), jobs[s]->frames.size());
    for (std::size_t f = 0; f < runs[s].frame_dets.size(); ++f, ++fi) {
      ASSERT_LT(fi, res.streams[0].frames.size());
      const AdaFrameOutput& out = res.streams[0].frames[fi];
      EXPECT_EQ(out.scale_used, runs[s].frame_scales[f]);
      const auto& ref = runs[s].frame_dets[f];
      const auto& dets = out.detections.detections;
      ASSERT_EQ(dets.size(), ref.size());
      for (std::size_t d = 0; d < dets.size(); ++d) {
        const Box rb =
            rescale_box(dets[d].box, out.detections.image_h,
                        out.detections.image_w, h.reference_h(),
                        h.reference_w());
        EXPECT_EQ(dets[d].class_id, ref[d].class_id);
        EXPECT_EQ(dets[d].score, ref[d].score);
        EXPECT_EQ(rb.x1, ref[d].box.x1);
        EXPECT_EQ(rb.y1, ref[d].box.y1);
        EXPECT_EQ(rb.x2, ref[d].box.x2);
        EXPECT_EQ(rb.y2, ref[d].box.y2);
      }
    }
  }
  EXPECT_EQ(fi, res.streams[0].frames.size());
}

TEST_F(DffServingTest, FixedScaleServingMatchesHarnessRunDff) {
  // Plain-DFF flavor of the same end-to-end equivalence (run_dff with a
  // null regressor vs serving with adascale=false).
  Harness h(Dataset::synth_vid(1, 4, 77), /*cache_dir=*/"");
  DffConfig dcfg;
  dcfg.key_interval = 4;
  const std::vector<SnippetRun> runs =
      h.run_dff(detector_.get(), nullptr, dcfg, ScaleSet::reg_default());

  MultiStreamRunner runner(detector_.get(), regressor_.get(), &h.renderer(),
                           h.dataset().scale_policy(), ScaleSet::reg_default(),
                           /*num_streams=*/1);
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 4;
  scfg.adascale = false;
  runner.set_dff(scfg);
  std::vector<const Snippet*> jobs;
  for (const Snippet& s : h.dataset().val_snippets()) jobs.push_back(&s);
  const MultiStreamResult res = runner.run_serial(jobs);

  std::size_t fi = 0;
  for (std::size_t s = 0; s < runs.size(); ++s) {
    for (std::size_t f = 0; f < runs[s].frame_dets.size(); ++f, ++fi) {
      const AdaFrameOutput& out = res.streams[0].frames[fi];
      EXPECT_EQ(out.scale_used, runs[s].frame_scales[f]);
      const auto& ref = runs[s].frame_dets[f];
      const auto& dets = out.detections.detections;
      ASSERT_EQ(dets.size(), ref.size());
      for (std::size_t d = 0; d < dets.size(); ++d) {
        const Box rb =
            rescale_box(dets[d].box, out.detections.image_h,
                        out.detections.image_w, h.reference_h(),
                        h.reference_w());
        EXPECT_EQ(dets[d].score, ref[d].score);
        EXPECT_EQ(rb.x1, ref[d].box.x1);
        EXPECT_EQ(rb.y2, ref[d].box.y2);
      }
    }
  }
}

TEST_F(DffServingTest, BatchedDffMatchesSerialDff) {
  // The core serving contract: run_batched with DFF — key frames coalesced
  // across streams by the features_only scheduler, warp frames bypassing it
  // entirely — produces the same bits as run_serial, for the default
  // adaptive policy with every trigger armed.
  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            4, /*init_scale=*/600, /*snap_scales=*/true);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4, /*init_scale=*/600, /*snap_scales=*/true);
  DffServingConfig scfg;  // default: adaptive, adascale, scale-jump on
  batched.set_dff(scfg);
  serial.set_dff(scfg);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.contexts = 2;
  cfg.max_wait_ms = 2.0;
  const MultiStreamResult bat = batched.run_batched(jobs, cfg);
  const MultiStreamResult ref = serial.run_serial(jobs);
  expect_equal_outputs(bat, ref);

  // Only key frames reach the scheduler; warp frames bypass the backbone.
  long keys = 0;
  for (const StreamOutput& s : bat.streams)
    for (const AdaFrameOutput& f : s.frames)
      if (f.dff_key) ++keys;
  EXPECT_EQ(bat.batch_stats.frames, keys);
  EXPECT_LT(keys, bat.total_frames);
}

TEST_F(DffServingTest, BatchedDffOddKnobsStillMatchSerial) {
  // Awkward batch composition — max_batch not dividing the stream count,
  // one context, a tiny wait window — must not change a single bit.
  MultiStreamRunner batched(detector_.get(), regressor_.get(), &renderer_,
                            dataset_.scale_policy(), ScaleSet::reg_default(),
                            4, /*init_scale=*/600, /*snap_scales=*/true);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           4, /*init_scale=*/600, /*snap_scales=*/true);
  DffServingConfig scfg;
  scfg.policy = DffServingConfig::Keyframe::kFixedInterval;
  scfg.key_interval = 3;
  scfg.adascale = true;
  batched.set_dff(scfg);
  serial.set_dff(scfg);
  const auto jobs = val_jobs();
  BatchSchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.contexts = 1;
  cfg.max_wait_ms = 0.5;
  expect_equal_outputs(batched.run_batched(jobs, cfg),
                       serial.run_serial(jobs));
}

TEST_F(DffServingTest, HeterogeneousPoliciesConcurrentMatchesSerial) {
  // Interleaved stateful streams with *different* pinned execution policies:
  // run() honors per-stream policies and must equal the serial per-stream
  // run — any cross-stream leak of DFF caches or scale state would surface
  // as a bitwise mismatch.
  MultiStreamRunner concurrent(detector_.get(), regressor_.get(), &renderer_,
                               dataset_.scale_policy(),
                               ScaleSet::reg_default(), 2);
  MultiStreamRunner serial(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           2);
  for (MultiStreamRunner* r : {&concurrent, &serial}) {
    r->set_stream_policy(0, ExecutionPolicy::fp32(), ExecutionPolicy::fp32());
    r->set_stream_policy(1, ExecutionPolicy::reference(),
                         ExecutionPolicy::reference());
    DffServingConfig scfg;
    scfg.max_interval = 5;
    r->set_dff(scfg);
  }
  const auto jobs = val_jobs();
  expect_equal_outputs(concurrent.run(jobs), serial.run_serial(jobs));
}

TEST_F(DffServingTest, PerStreamContextIsolatedAcrossStreams) {
  // Round-robin job assignment means stream s of a 2-stream run sees
  // exactly the jobs a 1-stream runner would see given that subset — if the
  // outputs match, no state crossed between the interleaved streams.
  MultiStreamRunner pair(detector_.get(), regressor_.get(), &renderer_,
                         dataset_.scale_policy(), ScaleSet::reg_default(), 2);
  DffServingConfig scfg;
  pair.set_dff(scfg);
  const auto jobs = val_jobs();
  const MultiStreamResult both = pair.run(jobs);

  for (int s = 0; s < 2; ++s) {
    MultiStreamRunner solo(detector_.get(), regressor_.get(), &renderer_,
                           dataset_.scale_policy(), ScaleSet::reg_default(),
                           1);
    solo.set_dff(scfg);
    std::vector<const Snippet*> subset;
    for (std::size_t j = static_cast<std::size_t>(s); j < jobs.size(); j += 2)
      subset.push_back(jobs[j]);
    const MultiStreamResult alone = solo.run_serial(subset);
    const StreamOutput& x = both.streams[static_cast<std::size_t>(s)];
    const StreamOutput& y = alone.streams[0];
    ASSERT_EQ(x.frames.size(), y.frames.size());
    for (std::size_t f = 0; f < x.frames.size(); ++f) {
      EXPECT_EQ(x.frames[f].scale_used, y.frames[f].scale_used);
      EXPECT_EQ(x.frames[f].dff_key, y.frames[f].dff_key);
      EXPECT_EQ(x.frames[f].warp_residual, y.frames[f].warp_residual);
      expect_equal_detections(x.frames[f].detections,
                              y.frames[f].detections);
    }
  }
}

TEST_F(DffServingTest, ScaleJumpTriggerForcesKeyframes) {
  // With a near-zero jump threshold every warp frame whose regressed scale
  // differs from the current one must become a key; with the trigger off
  // those frames warp.  The non-key frames that remain must all satisfy the
  // jump bound — that is the trigger's contract.
  const auto count_keys = [&](float jump_frac) {
    AdaScalePipeline serving = make_serving();
    DffServingConfig scfg;
    scfg.residual_threshold = 1.0f;  // residual trigger effectively off
    scfg.max_interval = 1000;        // interval trigger effectively off
    scfg.scale_jump_frac = jump_frac;
    serving.set_dff(scfg);
    long keys = 0;
    for (const Snippet& snip : dataset_.val_snippets()) {
      serving.reset();
      for (const Scene& frame : snip.frames) {
        const AdaFrameOutput out = serving.process(frame);
        if (out.dff_key) ++keys;
        if (!out.dff_key && jump_frac > 0.0f) {
          const int decoded = decode_scale_target(out.regressed_t,
                                                  out.scale_used,
                                                  ScaleSet::reg_default());
          const float jump =
              std::abs(static_cast<float>(decoded - out.scale_used)) /
              static_cast<float>(out.scale_used);
          EXPECT_LT(jump, jump_frac);
        }
      }
    }
    return keys;
  };
  const long keys_tight = count_keys(1e-4f);
  const long keys_off = count_keys(0.0f);
  EXPECT_GE(keys_tight, keys_off);
}

TEST_F(DffServingTest, SeqNmsHistoryStaysBounded) {
  AdaScalePipeline serving = make_serving();
  DffServingConfig scfg;
  scfg.seqnms_window = 3;
  serving.set_dff(scfg);
  const auto& frames = dataset_.val_snippets()[0].frames;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    serving.process(frames[f]);
    EXPECT_LE(serving.context().history.size(), 3u);
    EXPECT_EQ(serving.context().history.size(),
              std::min<std::size_t>(f + 1, 3u));
  }
  serving.reset();
  EXPECT_TRUE(serving.context().history.empty());
}

TEST_F(DffServingTest, ResetDropsKeyCacheAndRestartsAtInitScale) {
  AdaScalePipeline serving = make_serving();
  DffServingConfig scfg;
  serving.set_dff(scfg);
  const auto& frames = dataset_.val_snippets()[0].frames;
  serving.process(frames[0]);
  serving.process(frames[1]);
  serving.reset();
  EXPECT_FALSE(serving.context().dff.has_key);
  EXPECT_EQ(serving.current_scale(), 600);
  const AdaFrameOutput out = serving.process(frames[2]);
  EXPECT_TRUE(out.dff_key) << "first frame after reset must be a key";
}

}  // namespace
}  // namespace ada
