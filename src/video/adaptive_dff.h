// Adaptive key-frame DFF: flow-quality-triggered feature refresh.
//
// Plain DFF (video/dff.h) refreshes its cached deep features on a fixed
// schedule (every `key_interval` frames).  The paper's related work ("Both":
// Zhu et al., Towards High Performance Video Object Detection, CVPR 2018)
// instead regresses a quality metric of the optical flow and refreshes when
// propagation becomes unreliable.  This module implements that scheduling
// idea on our substrate: after estimating flow, it computes the mean warp
// residual (|warped key gray - current gray|); when the residual exceeds a
// threshold the backbone re-runs on the *current* frame (it becomes the new
// key), otherwise warped features are used as in DFF.
//
// Composes with AdaScale exactly like DffPipeline: the regressor runs on key
// frames, the decoded scale takes effect at the next key frame.
//
// This is an extension beyond the AdaScale paper; the bench output labels it
// as such.
#pragma once

#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "adascale/scale_target.h"
#include "data/renderer.h"
#include "detection/detector.h"
#include "video/dff.h"
#include "video/optical_flow.h"

namespace ada {

struct AdaptiveDffConfig {
  // Refresh when the mean absolute warp residual (grayscale, [0,1] range)
  // exceeds this.  Lower = more key frames = slower but more accurate.
  float residual_threshold = 0.04f;
  // Hard upper bound on the propagation span: even a quiet scene refreshes
  // at least every `max_interval` frames (guards against slow drift the
  // residual misses).
  int max_interval = 20;
  FlowConfig flow;

  /// Tiny dedicated render scale for the grayscale flow source; <= 0 uses
  /// the full working-scale render (see DffConfig::flow_render_scale).
  int flow_render_scale = 96;

  /// Compose per-frame flow steps instead of matching key->current directly
  /// (see DffConfig::incremental_flow).
  bool incremental_flow = true;
};

/// Per-frame output; `is_key` reports whether this frame refreshed the
/// backbone (first frame always does).
struct AdaptiveDffFrameOutput {
  DetectionOutput detections;
  bool is_key = false;
  float warp_residual = 0.0f;  ///< mean |warped key - current|.  0 on
                               ///< scheduled keys (first frame,
                               ///< max_interval); residual-triggered keys
                               ///< carry the residual that forced them.
  int scale_used = 0;
  double backbone_ms = 0.0;
  double flow_ms = 0.0;
  double head_ms = 0.0;
  double regressor_ms = 0.0;

  double total_ms() const {
    return backbone_ms + flow_ms + head_ms + regressor_ms;
  }
};

/// Stateful adaptive-key-frame DFF runner; reset() per snippet.
class AdaptiveDffPipeline {
 public:
  /// `regressor` may be null (fixed-scale adaptive DFF).
  AdaptiveDffPipeline(Detector* detector, ScaleRegressor* regressor,
                      const Renderer* renderer, const ScalePolicy& policy,
                      const AdaptiveDffConfig& cfg, const ScaleSet& sreg,
                      int init_scale = 600)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        cfg_(cfg),
        sreg_(sreg),
        init_scale_(init_scale) {
    reset();
  }

  void reset();

  AdaptiveDffFrameOutput process(const Scene& frame);

  /// Fraction of processed frames (since reset) that were key frames.
  double key_frame_share() const {
    return frames_ > 0 ? static_cast<double>(keys_) / frames_ : 0.0;
  }

 private:
  /// Runs the backbone on `image`, caches features, detects, regresses.
  /// `frame` supplies the grayscale flow source (tiny render).
  void refresh_key(const Scene& frame, const Tensor& image,
                   AdaptiveDffFrameOutput* out);

  /// Grayscale flow source for `frame` (see DffPipeline::flow_gray).
  Tensor flow_gray(const Scene& frame, const Tensor* full_render) const;

  Detector* detector_;
  ScaleRegressor* regressor_;
  const Renderer* renderer_;
  ScalePolicy policy_;
  AdaptiveDffConfig cfg_;
  ScaleSet sreg_;
  int init_scale_;

  int since_key_ = 0;
  long frames_ = 0;
  long keys_ = 0;
  int current_scale_ = 0;
  int pending_scale_ = 0;
  Tensor key_features_;
  Tensor key_gray_;
  Tensor prev_gray_;                ///< previous frame at feature resolution
  Tensor acc_flow_y_, acc_flow_x_;  ///< composed key->previous flow
};

}  // namespace ada
