#include "video/dff.h"

#include "tensor/image_ops.h"
#include "util/timer.h"

namespace ada {

void DffPipeline::reset() {
  frame_index_ = 0;
  current_scale_ = init_scale_;
  pending_scale_ = init_scale_;
  key_features_ = Tensor();
  key_gray_ = Tensor();
}

DffFrameOutput DffPipeline::process(const Scene& frame) {
  DffFrameOutput out;
  out.is_key = (frame_index_ % cfg_.key_interval) == 0;

  if (out.is_key) current_scale_ = pending_scale_;
  out.scale_used = current_scale_;

  const Tensor image =
      renderer_->render_at_scale(frame, current_scale_, policy_);

  if (out.is_key) {
    Timer backbone_timer;
    const Tensor& features = detector_->forward(image);
    out.backbone_ms = backbone_timer.elapsed_ms();

    key_features_ = features;
    // Grayscale image downsampled to the feature grid for flow estimation.
    Tensor gray = to_grayscale(image);
    key_gray_ = Tensor();
    bilinear_resize(gray, features.h(), features.w(), &key_gray_);

    Timer head_timer;
    out.detections =
        detector_->detect_from_features(key_features_, image.h(), image.w());
    out.head_ms = head_timer.elapsed_ms();

    if (regressor_ != nullptr) {
      const float t = regressor_->predict(key_features_);
      out.regressor_ms = regressor_->last_predict_ms();
      pending_scale_ = decode_scale_target(t, current_scale_, sreg_);
    }
  } else {
    Timer flow_timer;
    Tensor gray = to_grayscale(image);
    Tensor cur_gray;
    bilinear_resize(gray, key_features_.h(), key_features_.w(), &cur_gray);
    Tensor flow_y, flow_x;
    block_matching_flow(key_gray_, cur_gray, cfg_.flow, &flow_y, &flow_x);
    Tensor warped;
    bilinear_warp(key_features_, flow_y, flow_x, &warped);
    out.flow_ms = flow_timer.elapsed_ms();

    Timer head_timer;
    out.detections =
        detector_->detect_from_features(warped, image.h(), image.w());
    out.head_ms = head_timer.elapsed_ms();
  }

  ++frame_index_;
  return out;
}

}  // namespace ada
