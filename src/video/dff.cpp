#include "video/dff.h"

#include <algorithm>
#include <cassert>

#include "tensor/image_ops.h"
#include "util/timer.h"

namespace ada {

void DffPipeline::reset() {
  frame_index_ = 0;
  current_scale_ = init_scale_;
  pending_scale_ = init_scale_;
  key_features_ = Tensor();
  key_gray_ = Tensor();
  prev_gray_ = Tensor();
  acc_flow_y_ = Tensor();
  acc_flow_x_ = Tensor();
}

Tensor DffPipeline::flow_gray(const Scene& frame,
                              const Tensor* full_render) const {
  if (cfg_.flow_render_scale > 0) {
    const Tensor tiny =
        renderer_->render_at_scale(frame, cfg_.flow_render_scale, policy_);
    return to_grayscale(tiny);
  }
  assert(full_render != nullptr);
  return to_grayscale(*full_render);
}

DffFrameOutput DffPipeline::process(const Scene& frame) {
  DffFrameOutput out;
  // key_interval < 1 would be a modulo-by-zero; clamp to "every frame keys".
  out.is_key = (frame_index_ % std::max(cfg_.key_interval, 1)) == 0;

  if (out.is_key) current_scale_ = pending_scale_;
  out.scale_used = current_scale_;

  if (out.is_key) {
    const Tensor image =
        renderer_->render_at_scale(frame, current_scale_, policy_);

    Timer backbone_timer;
    const Tensor& features = detector_->forward(image);
    out.backbone_ms = backbone_timer.elapsed_ms();

    key_features_ = features;
    // Grayscale reference downsampled to the feature grid for flow
    // estimation on the upcoming warp frames.
    const Tensor gray = flow_gray(frame, &image);
    key_gray_ = Tensor();
    bilinear_resize(gray, features.h(), features.w(), &key_gray_);
    prev_gray_ = key_gray_;
    acc_flow_y_ = Tensor();
    acc_flow_x_ = Tensor();

    Timer head_timer;
    out.detections =
        detector_->detect_from_features(key_features_, image.h(), image.w());
    out.head_ms = head_timer.elapsed_ms();

    if (regressor_ != nullptr) {
      const float t = regressor_->predict(key_features_);
      out.regressor_ms = regressor_->last_predict_ms();
      pending_scale_ = decode_scale_target(t, current_scale_, sreg_);
    }
  } else {
    // Warp frames never run the backbone; with a tiny flow render they skip
    // the full-scale render as well (the detections only need its
    // dimensions, which the scale policy knows).
    const bool tiny = cfg_.flow_render_scale > 0;
    const int img_h = policy_.render_h(current_scale_);
    const int img_w = policy_.render_w(current_scale_);
    Tensor full_render;
    if (!tiny)
      full_render = renderer_->render_at_scale(frame, current_scale_, policy_);

    Timer flow_timer;
    const Tensor gray = flow_gray(frame, tiny ? nullptr : &full_render);
    Tensor cur_gray;
    bilinear_resize(gray, key_features_.h(), key_features_.w(), &cur_gray);
    Tensor flow_y, flow_x;
    const bool compose = cfg_.incremental_flow && acc_flow_y_.size() != 0;
    if (compose) {
      Tensor step_y, step_x;
      block_matching_flow(prev_gray_, cur_gray, cfg_.flow, &step_y, &step_x);
      compose_flow(acc_flow_y_, acc_flow_x_, step_y, step_x, &flow_y,
                   &flow_x);
    } else {
      // First warp frame after a key (prev == key), or incremental off.
      block_matching_flow(key_gray_, cur_gray, cfg_.flow, &flow_y, &flow_x);
    }
    Tensor warped;
    bilinear_warp(key_features_, flow_y, flow_x, &warped);
    out.flow_ms = flow_timer.elapsed_ms();

    prev_gray_ = std::move(cur_gray);
    acc_flow_y_ = std::move(flow_y);
    acc_flow_x_ = std::move(flow_x);

    Timer head_timer;
    out.detections = detector_->detect_from_features(warped, img_h, img_w);
    out.head_ms = head_timer.elapsed_ms();
  }

  ++frame_index_;
  return out;
}

}  // namespace ada
