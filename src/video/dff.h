// Deep Feature Flow (Zhu et al., CVPR 2017b), the video-acceleration method
// the paper combines AdaScale with in Fig. 7.
//
// Every `key_interval` frames, the full backbone runs and its deep features
// are cached; on intermediate frames only a cheap optical flow is computed,
// the cached features are bilinearly warped along the flow, and the (cheap)
// detection heads run on the warped features.  Speedup comes from skipping
// the backbone on non-key frames.
//
// AdaScale composition (paper Sec. 4.6): the scale regressor runs on key
// frames and the decoded scale takes effect at the *next key frame* — the
// interval between keys keeps a fixed scale so warped features match the
// cached feature geometry (interaction unspecified in the paper; documented
// in DESIGN.md).
#pragma once

#include <optional>

#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "adascale/scale_target.h"
#include "data/renderer.h"
#include "detection/detector.h"
#include "video/optical_flow.h"

namespace ada {

struct DffConfig {
  int key_interval = 10;  ///< paper's DFF default
  FlowConfig flow;
};

/// Per-frame DFF output.
struct DffFrameOutput {
  DetectionOutput detections;
  bool is_key = false;
  int scale_used = 0;
  double backbone_ms = 0.0;  ///< 0 on non-key frames
  double flow_ms = 0.0;      ///< 0 on key frames
  double head_ms = 0.0;
  double regressor_ms = 0.0;

  double total_ms() const {
    return backbone_ms + flow_ms + head_ms + regressor_ms;
  }
};

/// Stateful DFF runner; optionally wraps AdaScale (pass a regressor).
class DffPipeline {
 public:
  /// `regressor` may be null (plain DFF at a fixed scale).
  DffPipeline(Detector* detector, ScaleRegressor* regressor,
              const Renderer* renderer, const ScalePolicy& policy,
              const DffConfig& cfg, const ScaleSet& sreg,
              int init_scale = 600)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        cfg_(cfg),
        sreg_(sreg),
        init_scale_(init_scale) {
    reset();
  }

  /// Starts a new snippet: next frame is a key frame, scale re-initializes.
  void reset();

  DffFrameOutput process(const Scene& frame);

 private:
  Detector* detector_;
  ScaleRegressor* regressor_;
  const Renderer* renderer_;
  ScalePolicy policy_;
  DffConfig cfg_;
  ScaleSet sreg_;
  int init_scale_;

  int frame_index_ = 0;
  int current_scale_ = 0;
  int pending_scale_ = 0;  ///< regressed scale waiting for the next key frame
  Tensor key_features_;
  Tensor key_gray_;        ///< key frame at feature resolution, grayscale
};

}  // namespace ada
