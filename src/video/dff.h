// Deep Feature Flow (Zhu et al., CVPR 2017b), the video-acceleration method
// the paper combines AdaScale with in Fig. 7.
//
// Every `key_interval` frames, the full backbone runs and its deep features
// are cached; on intermediate frames only a cheap optical flow is computed,
// the cached features are bilinearly warped along the flow, and the (cheap)
// detection heads run on the warped features.  Speedup comes from skipping
// the backbone on non-key frames.
//
// AdaScale composition (paper Sec. 4.6): the scale regressor runs on key
// frames and the decoded scale takes effect at the *next key frame* — the
// interval between keys keeps a fixed scale so warped features match the
// cached feature geometry (interaction unspecified in the paper; documented
// in DESIGN.md).
#pragma once

#include <optional>

#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "adascale/scale_target.h"
#include "data/renderer.h"
#include "detection/detector.h"
#include "video/optical_flow.h"

namespace ada {

struct DffConfig {
  int key_interval = 10;  ///< paper's DFF default (values < 1 clamp to 1,
                          ///< i.e. every frame is a key frame)
  FlowConfig flow;

  /// Flow is estimated from grayscale frames resized to the feature grid.
  /// With a positive value, that grayscale comes from a dedicated render at
  /// this (tiny) scale — warp frames then never render at the full working
  /// scale at all, which is both much cheaper and *less aliased* than
  /// point-sampling a full-resolution render down ~16x to the feature grid
  /// (the aliasing measurably hurts flow quality).  <= 0 restores the
  /// legacy full-resolution-render source.
  int flow_render_scale = 96;

  /// Estimate per-frame flow steps (previous frame -> current) and compose
  /// them into the key->current field (compose_flow) instead of matching
  /// key->current directly.  Block matching is only accurate for small
  /// displacements, so direct matching quietly degrades once cumulative
  /// motion leaves the search radius; composed steps keep tracking.
  /// Identical results for propagation spans <= 1 either way.
  bool incremental_flow = true;
};

/// Per-frame DFF output.
struct DffFrameOutput {
  DetectionOutput detections;
  bool is_key = false;
  int scale_used = 0;
  double backbone_ms = 0.0;  ///< 0 on non-key frames
  double flow_ms = 0.0;      ///< 0 on key frames
  double head_ms = 0.0;
  double regressor_ms = 0.0;

  double total_ms() const {
    return backbone_ms + flow_ms + head_ms + regressor_ms;
  }
};

/// Stateful DFF runner; optionally wraps AdaScale (pass a regressor).
class DffPipeline {
 public:
  /// `regressor` may be null (plain DFF at a fixed scale).
  DffPipeline(Detector* detector, ScaleRegressor* regressor,
              const Renderer* renderer, const ScalePolicy& policy,
              const DffConfig& cfg, const ScaleSet& sreg,
              int init_scale = 600)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        cfg_(cfg),
        sreg_(sreg),
        init_scale_(init_scale) {
    reset();
  }

  /// Starts a new snippet: next frame is a key frame, scale re-initializes.
  void reset();

  DffFrameOutput process(const Scene& frame);

 private:
  Detector* detector_;
  ScaleRegressor* regressor_;
  const Renderer* renderer_;
  ScalePolicy policy_;
  DffConfig cfg_;
  ScaleSet sreg_;
  int init_scale_;

  /// Grayscale flow source for `frame` (callers resize it to the feature
  /// grid): a tiny dedicated render (flow_render_scale > 0) or the given
  /// full-scale render (legacy).  `full_render` may be null in tiny mode.
  Tensor flow_gray(const Scene& frame, const Tensor* full_render) const;

  int frame_index_ = 0;
  int current_scale_ = 0;
  int pending_scale_ = 0;  ///< regressed scale waiting for the next key frame
  Tensor key_features_;
  Tensor key_gray_;        ///< key frame at feature resolution, grayscale
  Tensor prev_gray_;       ///< previous frame at feature resolution
  Tensor acc_flow_y_, acc_flow_x_;  ///< composed key->previous flow
};

}  // namespace ada
