// Block-matching optical flow.
//
// Stand-in for the FlowNet used by Deep Feature Flow (Zhu et al., 2017b):
// DFF only needs a coarse flow field at feature-map resolution to warp
// key-frame features, so we estimate flow directly on grayscale images
// resized to the feature grid, with integer-displacement block matching and
// a parabolic sub-pixel refinement.  Like FlowNet in DFF, its cost is much
// smaller than the detection backbone — that gap is where DFF's speedup
// comes from.
#pragma once

#include "tensor/tensor.h"

namespace ada {

struct FlowConfig {
  int search_radius = 3;  ///< max displacement in grid cells
  int patch_radius = 1;   ///< SAD window = (2r+1)^2
};

/// RGB (1,3,H,W) -> grayscale (1,1,H,W).
Tensor to_grayscale(const Tensor& rgb);

/// Dense backward flow from `cur` to `ref` (both (1,1,H,W) grayscale at the
/// same resolution): for each cell of `cur`, the displacement into `ref`
/// minimizing the SAD patch cost.  Writes (1,1,H,W) flow_y / flow_x such
/// that ref(y + flow_y, x + flow_x) ≈ cur(y, x) — directly usable by
/// bilinear_warp to pull reference features to the current frame.
void block_matching_flow(const Tensor& ref, const Tensor& cur,
                         const FlowConfig& cfg, Tensor* flow_y,
                         Tensor* flow_x);

/// Composes two backward flow fields: given `acc` mapping frame P onto a
/// reference K (K(y + acc_y, x + acc_x) ≈ P(y, x)) and `step` mapping the
/// current frame C onto P, writes the flow mapping C directly onto K:
///
///   out(y, x) = step(y, x) + acc sampled (bilinearly, border-clamped) at
///               (y + step_y, x + step_x)
///
/// Block matching is only reliable for small displacements, so long
/// propagation spans track far better through per-frame steps composed with
/// this than through one direct key->current match (which silently falls
/// back to near-zero flow once motion leaves the search radius).
void compose_flow(const Tensor& acc_y, const Tensor& acc_x,
                  const Tensor& step_y, const Tensor& step_x, Tensor* out_y,
                  Tensor* out_x);

}  // namespace ada
