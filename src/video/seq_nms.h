// Seq-NMS (Han et al., 2016): cross-frame detection rescoring, the second
// video method the paper composes AdaScale with in Fig. 7.
//
// Per class, detections in consecutive frames are linked when their IoU
// exceeds `link_iou`; dynamic programming finds the maximum-total-score
// temporal path; all boxes on the path are rescored (average or max of the
// path's scores), removed from the pool together with same-frame boxes they
// suppress, and the search repeats until no links remain.
#pragma once

#include <vector>

#include "eval/map_evaluator.h"

namespace ada {

/// Tuning knobs for seq_nms(); defaults follow Han et al.
struct SeqNmsConfig {
  float link_iou = 0.5f;       ///< min IoU to link boxes across frames
  float suppress_iou = 0.3f;   ///< same-frame suppression around path boxes
  bool rescore_avg = true;  ///< true: average; false: max
  int max_iterations = 10000;  ///< safety bound
};

/// Applies Seq-NMS in place to one snippet's per-frame detections (all boxes
/// in a common coordinate frame).  Wall-clock cost is the caller's to
/// measure (the paper counts it against runtime in Fig. 7).
void seq_nms(std::vector<std::vector<EvalDetection>>* frames,
             const SeqNmsConfig& cfg);

}  // namespace ada
