// Seq-NMS (Han et al., 2016): cross-frame detection rescoring, the second
// video method the paper composes AdaScale with in Fig. 7.
//
// Per class, detections in consecutive frames are linked when their IoU
// exceeds `link_iou`; dynamic programming finds the maximum-total-score
// temporal path; all boxes on the path are rescored (average or max of the
// path's scores), removed from the pool together with same-frame boxes they
// suppress, and the search repeats until no links remain.
#pragma once

#include <vector>

#include "eval/map_evaluator.h"

namespace ada {

/// Tuning knobs for seq_nms(); defaults follow Han et al.
struct SeqNmsConfig {
  float link_iou = 0.5f;       ///< min IoU to link boxes across frames
  float suppress_iou = 0.3f;   ///< same-frame suppression around path boxes
  bool rescore_avg = true;  ///< true: average; false: max
  int max_iterations = 10000;  ///< per-class safety bound on path extractions
};

/// What seq_nms() actually did — so callers can tell when the safety bound
/// fired.  Truncation is NOT silent data loss (boxes that were never put on
/// a path pass through with their original scores) but it does mean some
/// boxes kept un-rescored scores; report it instead of swallowing it.
struct SeqNmsReport {
  int iterations = 0;          ///< total path extractions across classes
  int truncated_classes = 0;   ///< classes whose bound fired with links left
  bool truncated() const { return truncated_classes > 0; }
};

/// Applies Seq-NMS in place to one snippet's per-frame detections (all boxes
/// in a common coordinate frame).  Never drops a detection: every input box
/// comes back either rescored (on a path), suppressed-but-kept (original
/// score), or passed through untouched — including when max_iterations
/// truncates the path search (see SeqNmsReport).  Wall-clock cost is the
/// caller's to measure (the paper counts it against runtime in Fig. 7).
SeqNmsReport seq_nms(std::vector<std::vector<EvalDetection>>* frames,
                     const SeqNmsConfig& cfg);

}  // namespace ada
