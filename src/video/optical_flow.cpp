#include "video/optical_flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ada {

Tensor to_grayscale(const Tensor& rgb) {
  assert(rgb.n() == 1 && rgb.c() == 3);
  Tensor gray(1, 1, rgb.h(), rgb.w());
  for (int i = 0; i < rgb.h(); ++i)
    for (int j = 0; j < rgb.w(); ++j)
      gray.at(0, 0, i, j) = 0.299f * rgb.at(0, 0, i, j) +
                            0.587f * rgb.at(0, 1, i, j) +
                            0.114f * rgb.at(0, 2, i, j);
  return gray;
}

namespace {

/// SAD between patch centered at (cy,cx) in cur and (cy+dy,cx+dx) in ref.
/// Border pixels clamp.
float patch_sad(const Tensor& ref, const Tensor& cur, int cy, int cx, int dy,
                int dx, int pr) {
  const int h = cur.h(), w = cur.w();
  float sad = 0.0f;
  for (int oy = -pr; oy <= pr; ++oy)
    for (int ox = -pr; ox <= pr; ++ox) {
      const int y1 = std::clamp(cy + oy, 0, h - 1);
      const int x1 = std::clamp(cx + ox, 0, w - 1);
      const int y2 = std::clamp(cy + dy + oy, 0, h - 1);
      const int x2 = std::clamp(cx + dx + ox, 0, w - 1);
      sad += std::fabs(cur.at(0, 0, y1, x1) - ref.at(0, 0, y2, x2));
    }
  return sad;
}

/// Parabolic refinement: given costs at offsets -1/0/+1, the sub-cell
/// minimum location in [-0.5, 0.5].  A (near-)zero center cost is a perfect
/// match — no refinement, otherwise asymmetric neighbors would pull the
/// vertex off an exact alignment.
float parabolic(float cm, float c0, float cp) {
  if (c0 <= 1e-6f) return 0.0f;
  const float denom = cm - 2.0f * c0 + cp;
  if (denom <= 1e-9f) return 0.0f;
  return std::clamp(0.5f * (cm - cp) / denom, -0.5f, 0.5f);
}

}  // namespace

void block_matching_flow(const Tensor& ref, const Tensor& cur,
                         const FlowConfig& cfg, Tensor* flow_y,
                         Tensor* flow_x) {
  assert(ref.h() == cur.h() && ref.w() == cur.w());
  const int h = cur.h(), w = cur.w();
  if (flow_y->h() != h || flow_y->w() != w) *flow_y = Tensor(1, 1, h, w);
  if (flow_x->h() != h || flow_x->w() != w) *flow_x = Tensor(1, 1, h, w);

  const int r = cfg.search_radius;
  const int pr = cfg.patch_radius;
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < w; ++j) {
      float best = 1e30f;
      int bdy = 0, bdx = 0;
      for (int dy = -r; dy <= r; ++dy)
        for (int dx = -r; dx <= r; ++dx) {
          const float c = patch_sad(ref, cur, i, j, dy, dx, pr);
          // Small bias toward zero motion stabilizes flat regions.
          const float cost =
              c + 1e-3f * static_cast<float>(dy * dy + dx * dx);
          if (cost < best) {
            best = cost;
            bdy = dy;
            bdx = dx;
          }
        }
      // Sub-cell refinement along each axis (only in the search interior).
      float fy = static_cast<float>(bdy);
      float fx = static_cast<float>(bdx);
      if (bdy > -r && bdy < r)
        fy += parabolic(patch_sad(ref, cur, i, j, bdy - 1, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy + 1, bdx, pr));
      if (bdx > -r && bdx < r)
        fx += parabolic(patch_sad(ref, cur, i, j, bdy, bdx - 1, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx + 1, pr));
      flow_y->at(0, 0, i, j) = fy;
      flow_x->at(0, 0, i, j) = fx;
    }
}

namespace {

/// Bilinear sample with border clamp (matches bilinear_warp's convention).
float sample_clamped(const Tensor& t, float y, float x) {
  const int h = t.h(), w = t.w();
  const float cy = std::clamp(y, 0.0f, static_cast<float>(h - 1));
  const float cx = std::clamp(x, 0.0f, static_cast<float>(w - 1));
  const int y0 = static_cast<int>(cy), x0 = static_cast<int>(cx);
  const int y1 = std::min(y0 + 1, h - 1), x1 = std::min(x0 + 1, w - 1);
  const float fy = cy - static_cast<float>(y0);
  const float fx = cx - static_cast<float>(x0);
  return (1.0f - fy) * ((1.0f - fx) * t.at(0, 0, y0, x0) +
                        fx * t.at(0, 0, y0, x1)) +
         fy * ((1.0f - fx) * t.at(0, 0, y1, x0) + fx * t.at(0, 0, y1, x1));
}

}  // namespace

void compose_flow(const Tensor& acc_y, const Tensor& acc_x,
                  const Tensor& step_y, const Tensor& step_x, Tensor* out_y,
                  Tensor* out_x) {
  assert(acc_y.h() == step_y.h() && acc_y.w() == step_y.w());
  const int h = step_y.h(), w = step_y.w();
  if (out_y->h() != h || out_y->w() != w) *out_y = Tensor(1, 1, h, w);
  if (out_x->h() != h || out_x->w() != w) *out_x = Tensor(1, 1, h, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const float sy = step_y.at(0, 0, y, x);
      const float sx = step_x.at(0, 0, y, x);
      const float py = static_cast<float>(y) + sy;
      const float px = static_cast<float>(x) + sx;
      out_y->at(0, 0, y, x) = sy + sample_clamped(acc_y, py, px);
      out_x->at(0, 0, y, x) = sx + sample_clamped(acc_x, py, px);
    }
}

}  // namespace ada
