#include "video/optical_flow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ada {

Tensor to_grayscale(const Tensor& rgb) {
  assert(rgb.n() == 1 && rgb.c() == 3);
  Tensor gray(1, 1, rgb.h(), rgb.w());
  for (int i = 0; i < rgb.h(); ++i)
    for (int j = 0; j < rgb.w(); ++j)
      gray.at(0, 0, i, j) = 0.299f * rgb.at(0, 0, i, j) +
                            0.587f * rgb.at(0, 1, i, j) +
                            0.114f * rgb.at(0, 2, i, j);
  return gray;
}

namespace {

/// SAD between patch centered at (cy,cx) in cur and (cy+dy,cx+dx) in ref.
/// Border pixels clamp.
float patch_sad(const Tensor& ref, const Tensor& cur, int cy, int cx, int dy,
                int dx, int pr) {
  const int h = cur.h(), w = cur.w();
  float sad = 0.0f;
  for (int oy = -pr; oy <= pr; ++oy)
    for (int ox = -pr; ox <= pr; ++ox) {
      const int y1 = std::clamp(cy + oy, 0, h - 1);
      const int x1 = std::clamp(cx + ox, 0, w - 1);
      const int y2 = std::clamp(cy + dy + oy, 0, h - 1);
      const int x2 = std::clamp(cx + dx + ox, 0, w - 1);
      sad += std::fabs(cur.at(0, 0, y1, x1) - ref.at(0, 0, y2, x2));
    }
  return sad;
}

/// Parabolic refinement: given costs at offsets -1/0/+1, the sub-cell
/// minimum location in [-0.5, 0.5].  A (near-)zero center cost is a perfect
/// match — no refinement, otherwise asymmetric neighbors would pull the
/// vertex off an exact alignment.
float parabolic(float cm, float c0, float cp) {
  if (c0 <= 1e-6f) return 0.0f;
  const float denom = cm - 2.0f * c0 + cp;
  if (denom <= 1e-9f) return 0.0f;
  return std::clamp(0.5f * (cm - cp) / denom, -0.5f, 0.5f);
}

}  // namespace

void block_matching_flow(const Tensor& ref, const Tensor& cur,
                         const FlowConfig& cfg, Tensor* flow_y,
                         Tensor* flow_x) {
  assert(ref.h() == cur.h() && ref.w() == cur.w());
  const int h = cur.h(), w = cur.w();
  if (flow_y->h() != h || flow_y->w() != w) *flow_y = Tensor(1, 1, h, w);
  if (flow_x->h() != h || flow_x->w() != w) *flow_x = Tensor(1, 1, h, w);

  const int r = cfg.search_radius;
  const int pr = cfg.patch_radius;
  for (int i = 0; i < h; ++i)
    for (int j = 0; j < w; ++j) {
      float best = 1e30f;
      int bdy = 0, bdx = 0;
      for (int dy = -r; dy <= r; ++dy)
        for (int dx = -r; dx <= r; ++dx) {
          const float c = patch_sad(ref, cur, i, j, dy, dx, pr);
          // Small bias toward zero motion stabilizes flat regions.
          const float cost =
              c + 1e-3f * static_cast<float>(dy * dy + dx * dx);
          if (cost < best) {
            best = cost;
            bdy = dy;
            bdx = dx;
          }
        }
      // Sub-cell refinement along each axis (only in the search interior).
      float fy = static_cast<float>(bdy);
      float fx = static_cast<float>(bdx);
      if (bdy > -r && bdy < r)
        fy += parabolic(patch_sad(ref, cur, i, j, bdy - 1, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy + 1, bdx, pr));
      if (bdx > -r && bdx < r)
        fx += parabolic(patch_sad(ref, cur, i, j, bdy, bdx - 1, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx, pr),
                        patch_sad(ref, cur, i, j, bdy, bdx + 1, pr));
      flow_y->at(0, 0, i, j) = fy;
      flow_x->at(0, 0, i, j) = fx;
    }
}

}  // namespace ada
