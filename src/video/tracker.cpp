#include "video/tracker.h"

#include <algorithm>

#include "detection/box.h"

namespace ada {

void OnlineTracker::reset() {
  tracks_.clear();
  next_id_ = 0;
}

std::vector<EvalDetection> OnlineTracker::update(
    const std::vector<EvalDetection>& dets) {
  // Greedy association: highest-score detections claim tracks first; a track
  // can be claimed once per frame, and only by a same-class detection with
  // IoU above the link threshold.
  std::vector<int> order(dets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return dets[static_cast<std::size_t>(a)].score >
           dets[static_cast<std::size_t>(b)].score;
  });

  std::vector<char> track_claimed(tracks_.size(), 0);
  std::vector<int> det_track(dets.size(), -1);
  for (int di : order) {
    const EvalDetection& d = dets[static_cast<std::size_t>(di)];
    int best_t = -1;
    float best_iou = cfg_.link_iou;
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (track_claimed[t] || tracks_[t].class_id != d.class_id) continue;
      const float v = iou(d.box, tracks_[t].box);
      if (v >= best_iou) {
        best_iou = v;
        best_t = static_cast<int>(t);
      }
    }
    if (best_t >= 0) {
      track_claimed[static_cast<std::size_t>(best_t)] = 1;
      det_track[static_cast<std::size_t>(di)] = best_t;
    }
  }

  // Update matched tracks, spawn tracks for unmatched detections.
  std::vector<EvalDetection> out = dets;
  for (std::size_t di = 0; di < dets.size(); ++di) {
    const EvalDetection& d = dets[di];
    if (det_track[di] >= 0) {
      Track& t = tracks_[static_cast<std::size_t>(det_track[di])];
      t.box = d.box;
      t.score = cfg_.score_ema * t.score + (1.0f - cfg_.score_ema) * d.score;
      t.age += 1;
      t.missed = 0;
      float rescored = t.score;
      if (t.age >= cfg_.mature_age) rescored += cfg_.mature_boost;
      out[di].score = std::min(rescored, cfg_.max_score);
    } else {
      Track t;
      t.id = next_id_++;
      t.class_id = d.class_id;
      t.box = d.box;
      t.score = d.score;
      t.age = 1;
      tracks_.push_back(t);
      // First observation keeps its detector score.
    }
  }

  // Age out unmatched tracks.
  std::vector<Track> alive;
  alive.reserve(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    // Tracks created this frame were never in `track_claimed`; keep them.
    const bool existed = t < track_claimed.size();
    if (existed && !track_claimed[t]) {
      if (++tracks_[t].missed > cfg_.max_missed) continue;
    }
    alive.push_back(tracks_[t]);
  }
  tracks_ = std::move(alive);
  return out;
}

void track_rescore(std::vector<std::vector<EvalDetection>>* frames,
                   const TrackerConfig& cfg) {
  OnlineTracker tracker(cfg);
  tracker.reset();
  for (auto& frame : *frames) frame = tracker.update(frame);
}

}  // namespace ada
