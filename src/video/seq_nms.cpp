#include "video/seq_nms.h"

#include <algorithm>

namespace ada {

namespace {

struct Node {
  EvalDetection det;
  bool alive = true;
  // DP state (recomputed each iteration).
  float best_sum = 0.0f;
  int prev = -1;  ///< index into previous frame's node list
};

}  // namespace

SeqNmsReport seq_nms(std::vector<std::vector<EvalDetection>>* frames,
                     const SeqNmsConfig& cfg) {
  SeqNmsReport report;
  const int num_frames = static_cast<int>(frames->size());
  if (num_frames == 0) return report;

  // Determine the class set present.
  int max_class = -1;
  for (const auto& f : *frames)
    for (const auto& d : f) max_class = std::max(max_class, d.class_id);

  for (int cls = 0; cls <= max_class; ++cls) {
    // Pool this class's detections per frame.
    std::vector<std::vector<Node>> pool(static_cast<std::size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f)
      for (const auto& d : (*frames)[static_cast<std::size_t>(f)])
        if (d.class_id == cls)
          pool[static_cast<std::size_t>(f)].push_back(Node{d, true, 0.0f, -1});

    std::vector<std::vector<EvalDetection>> rescored(
        static_cast<std::size_t>(num_frames));

    bool exhausted = true;  // loop ran out of iterations, not out of paths
    for (int iter = 0; iter < cfg.max_iterations; ++iter) {
      // DP over frames on alive nodes.
      float global_best = -1.0f;
      int best_frame = -1, best_idx = -1;
      for (int f = 0; f < num_frames; ++f) {
        auto& cur = pool[static_cast<std::size_t>(f)];
        for (std::size_t i = 0; i < cur.size(); ++i) {
          if (!cur[i].alive) continue;
          cur[i].best_sum = cur[i].det.score;
          cur[i].prev = -1;
          if (f > 0) {
            const auto& prev = pool[static_cast<std::size_t>(f - 1)];
            for (std::size_t j = 0; j < prev.size(); ++j) {
              if (!prev[j].alive) continue;
              if (iou(cur[i].det.box, prev[j].det.box) <= cfg.link_iou)
                continue;
              const float cand = cur[i].det.score + prev[j].best_sum;
              if (cand > cur[i].best_sum) {
                cur[i].best_sum = cand;
                cur[i].prev = static_cast<int>(j);
              }
            }
          }
          if (cur[i].best_sum > global_best) {
            global_best = cur[i].best_sum;
            best_frame = f;
            best_idx = static_cast<int>(i);
          }
        }
      }
      if (best_frame < 0) {  // pool empty: every box handled
        exhausted = false;
        break;
      }
      ++report.iterations;

      // Backtrack the best path.
      std::vector<std::pair<int, int>> path;  // (frame, idx)
      for (int f = best_frame, i = best_idx; i >= 0;) {
        path.emplace_back(f, i);
        const int p = pool[static_cast<std::size_t>(f)][static_cast<std::size_t>(i)].prev;
        i = p;
        --f;
      }

      // Rescore along the path.
      float acc = 0.0f, mx = 0.0f;
      for (auto [f, i] : path) {
        const float s = pool[static_cast<std::size_t>(f)][static_cast<std::size_t>(i)].det.score;
        acc += s;
        mx = std::max(mx, s);
      }
      const float new_score =
          cfg.rescore_avg ? acc / static_cast<float>(path.size()) : mx;

      for (auto [f, i] : path) {
        Node& node = pool[static_cast<std::size_t>(f)][static_cast<std::size_t>(i)];
        EvalDetection d = node.det;
        d.score = new_score;
        rescored[static_cast<std::size_t>(f)].push_back(d);
        node.alive = false;
        // Suppress same-frame overlaps of the path box.
        for (Node& other : pool[static_cast<std::size_t>(f)]) {
          if (!other.alive) continue;
          if (iou(node.det.box, other.det.box) > cfg.suppress_iou) {
            // Suppressed boxes keep their original score in the output —
            // Seq-NMS removes them from further linking but they remain
            // detections.
            rescored[static_cast<std::size_t>(f)].push_back(other.det);
            other.alive = false;
          }
        }
      }
    }

    // Any leftovers (isolated boxes never on a path, or boxes stranded when
    // the iteration bound fired) pass through unchanged — truncation never
    // drops detections, it only leaves scores un-rescored.
    bool leftovers = false;
    for (int f = 0; f < num_frames; ++f)
      for (const Node& n : pool[static_cast<std::size_t>(f)])
        if (n.alive) {
          leftovers = true;
          rescored[static_cast<std::size_t>(f)].push_back(n.det);
        }
    if (exhausted && leftovers) ++report.truncated_classes;

    // Replace this class's detections.
    for (int f = 0; f < num_frames; ++f) {
      auto& dst = (*frames)[static_cast<std::size_t>(f)];
      dst.erase(std::remove_if(dst.begin(), dst.end(),
                               [cls](const EvalDetection& d) {
                                 return d.class_id == cls;
                               }),
                dst.end());
      dst.insert(dst.end(), rescored[static_cast<std::size_t>(f)].begin(),
                 rescored[static_cast<std::size_t>(f)].end());
    }
  }
  return report;
}

}  // namespace ada
