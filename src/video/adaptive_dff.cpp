#include "video/adaptive_dff.h"

#include <cmath>

#include "tensor/image_ops.h"
#include "util/timer.h"

namespace ada {

void AdaptiveDffPipeline::reset() {
  since_key_ = 0;
  frames_ = 0;
  keys_ = 0;
  current_scale_ = init_scale_;
  pending_scale_ = init_scale_;
  key_features_ = Tensor();
  key_gray_ = Tensor();
}

void AdaptiveDffPipeline::refresh_key(const Tensor& image,
                                      AdaptiveDffFrameOutput* out) {
  Timer backbone_timer;
  const Tensor& features = detector_->forward(image);
  out->backbone_ms = backbone_timer.elapsed_ms();

  key_features_ = features;
  Tensor gray = to_grayscale(image);
  key_gray_ = Tensor();
  bilinear_resize(gray, features.h(), features.w(), &key_gray_);

  Timer head_timer;
  out->detections =
      detector_->detect_from_features(key_features_, image.h(), image.w());
  out->head_ms = head_timer.elapsed_ms();

  if (regressor_ != nullptr) {
    const float t = regressor_->predict(key_features_);
    out->regressor_ms = regressor_->last_predict_ms();
    pending_scale_ = decode_scale_target(t, current_scale_, sreg_);
  }
  out->is_key = true;
  since_key_ = 0;
  ++keys_;
}

AdaptiveDffFrameOutput AdaptiveDffPipeline::process(const Scene& frame) {
  AdaptiveDffFrameOutput out;

  const bool first = key_features_.size() == 0;
  const bool interval_exceeded = since_key_ >= cfg_.max_interval;
  if (first || interval_exceeded) current_scale_ = pending_scale_;
  out.scale_used = current_scale_;

  const Tensor image =
      renderer_->render_at_scale(frame, current_scale_, policy_);

  if (first || interval_exceeded) {
    refresh_key(image, &out);
    ++frames_;
    return out;
  }

  // Try propagation: estimate flow, check its quality via the warp residual.
  Timer flow_timer;
  Tensor gray = to_grayscale(image);
  Tensor cur_gray;
  bilinear_resize(gray, key_features_.h(), key_features_.w(), &cur_gray);
  Tensor flow_y, flow_x;
  block_matching_flow(key_gray_, cur_gray, cfg_.flow, &flow_y, &flow_x);

  Tensor warped_gray;
  bilinear_warp(key_gray_, flow_y, flow_x, &warped_gray);
  double residual = 0.0;
  for (std::size_t i = 0; i < warped_gray.size(); ++i)
    residual += std::abs(static_cast<double>(warped_gray[i]) - cur_gray[i]);
  residual /= static_cast<double>(warped_gray.size());
  out.warp_residual = static_cast<float>(residual);
  out.flow_ms = flow_timer.elapsed_ms();

  if (out.warp_residual > cfg_.residual_threshold) {
    // Propagation unreliable: this frame becomes the new key.  The scale
    // regressed at the previous key takes effect now (same key-frame-only
    // scale-change rule as DffPipeline).
    current_scale_ = pending_scale_;
    out.scale_used = current_scale_;
    const Tensor key_image =
        renderer_->render_at_scale(frame, current_scale_, policy_);
    refresh_key(key_image, &out);
    ++frames_;
    return out;
  }

  Timer warp_timer;
  Tensor warped;
  bilinear_warp(key_features_, flow_y, flow_x, &warped);
  out.flow_ms += warp_timer.elapsed_ms();

  Timer head_timer;
  out.detections =
      detector_->detect_from_features(warped, image.h(), image.w());
  out.head_ms = head_timer.elapsed_ms();

  ++since_key_;
  ++frames_;
  return out;
}

}  // namespace ada
