// Online IoU tracker with track-consistency rescoring ("D&T-lite").
//
// The paper's Fig. 7 compares against Detect-to-Track (Feichtenhofer et al.,
// 2017), which couples detection with tracking and boosts detections that
// are consistent across frames.  The full D&T is a trained two-stream
// network; this module implements the lightweight online variant of the same
// idea on our substrate: greedy IoU data association frame-to-frame, an
// exponential moving average of track scores, and a small boost for
// detections supported by a mature track.  Unlike Seq-NMS it is strictly
// online (no lookahead), so it adds a Fig. 7 operating point with different
// latency semantics.
#pragma once

#include <vector>

#include "eval/map_evaluator.h"

namespace ada {

struct TrackerConfig {
  float link_iou = 0.4f;      ///< min IoU to associate a detection to a track
  float score_ema = 0.6f;     ///< weight of the track history in the EMA
  float mature_boost = 0.1f;  ///< score bonus for tracks >= mature_age frames
  int mature_age = 3;
  int max_missed = 2;         ///< frames a track survives without a match
  float max_score = 1.0f;     ///< rescored values are clamped here
};

/// One live track (exposed for tests).
struct Track {
  int id = 0;
  int class_id = 0;
  Box box;             ///< last matched box
  float score = 0.0f;  ///< EMA of matched detection scores
  int age = 0;         ///< matched frames
  int missed = 0;      ///< consecutive unmatched frames
};

/// Stateful online tracker; call reset() per snippet, then update() once per
/// frame.  update() returns the frame's detections with rescored confidences
/// (same boxes and classes, new scores).
class OnlineTracker {
 public:
  explicit OnlineTracker(const TrackerConfig& cfg = {}) : cfg_(cfg) {}

  void reset();

  std::vector<EvalDetection> update(const std::vector<EvalDetection>& dets);

  const std::vector<Track>& tracks() const { return tracks_; }

 private:
  TrackerConfig cfg_;
  std::vector<Track> tracks_;
  int next_id_ = 0;
};

/// Convenience: applies the tracker to a whole snippet's detections in
/// place (one reset + per-frame update), mirroring seq_nms's interface.
void track_rescore(std::vector<std::vector<EvalDetection>>* frames,
                   const TrackerConfig& cfg = {});

}  // namespace ada
