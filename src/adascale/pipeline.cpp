#include "adascale/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/image_ops.h"
#include "util/timer.h"

namespace ada {

/// Scoped model access for one frame.  With no pool bound, det()/reg()
/// pass through to the constructor-supplied models.  With a pool, the
/// first det()/reg() call acquires a lease and every later call within the
/// hold returns the SAME context (process() relies on detect() and the
/// following features() read hitting one instance); drop() releases it —
/// mandatory before a blocking DetectBackend call, after which the next
/// det()/reg() transparently re-acquires (possibly a different, but
/// bit-equivalent, context).
struct AdaScalePipeline::ModelLease {
  explicit ModelLease(AdaScalePipeline* p) : p_(p) {}
  ~ModelLease() { drop(); }
  ModelLease(const ModelLease&) = delete;
  ModelLease& operator=(const ModelLease&) = delete;

  Detector* det() {
    ensure();
    return p_->pool_ != nullptr ? lease_.detector : p_->detector_;
  }
  ScaleRegressor* reg() {
    ensure();
    return p_->pool_ != nullptr ? lease_.regressor : p_->regressor_;
  }
  void drop() {
    if (held_) {
      p_->pool_->release(lease_);
      lease_ = ModelPool::Lease{};
      held_ = false;
    }
  }

 private:
  void ensure() {
    if (p_->pool_ != nullptr && !held_) {
      lease_ = p_->pool_->acquire();
      held_ = true;
    }
  }

  AdaScalePipeline* p_;
  ModelPool::Lease lease_;
  bool held_ = false;
};

int AdaScalePipeline::capped(int s) const {
  if (scale_cap_ <= 0) return s;
  return sreg_.nearest(std::min(s, scale_cap_));
}

AdaFrameOutput AdaScalePipeline::process(const Scene& frame) {
  if (dff_enabled_) return process_dff(frame, /*backend=*/nullptr);

  AdaFrameOutput out;
  // A cap imposed between frames takes effect here, before the render.
  ctx_.target_scale = capped(ctx_.target_scale);
  out.scale_used = ctx_.target_scale;

  const Tensor image =
      renderer_->render_at_scale(frame, ctx_.target_scale, policy_);
  ModelLease m(this);
  out.detections = m.det()->detect(image);
  out.detect_ms = out.detections.forward_ms;

  // Regress t on the deep features of *this* frame; apply to the next.
  // Within one lease hold det() is stable, so features() reads the same
  // context detect() just ran on.
  out.regressed_t = m.reg()->predict(m.det()->features());
  out.regressor_ms = m.reg()->last_predict_ms();
  out.next_scale =
      decode_scale_target(out.regressed_t, ctx_.target_scale, sreg_);
  if (snap_to_set_) out.next_scale = sreg_.nearest(out.next_scale);
  out.next_scale = capped(out.next_scale);
  ctx_.target_scale = out.next_scale;
  return out;
}

AdaFrameOutput AdaScalePipeline::process_via(const Scene& frame,
                                             const DetectBackend& backend) {
  if (dff_enabled_) return process_dff(frame, &backend);

  AdaFrameOutput out;
  ctx_.target_scale = capped(ctx_.target_scale);
  out.scale_used = ctx_.target_scale;

  Tensor image = renderer_->render_at_scale(frame, ctx_.target_scale, policy_);
  DetectResult r = backend(std::move(image));
  out.detections = std::move(r.detections);
  out.detect_ms = r.detect_ms;
  out.regressed_t = r.regressed_t;
  out.regressor_ms = r.regressor_ms;
  out.next_scale =
      decode_scale_target(out.regressed_t, ctx_.target_scale, sreg_);
  if (snap_to_set_) out.next_scale = sreg_.nearest(out.next_scale);
  out.next_scale = capped(out.next_scale);
  ctx_.target_scale = out.next_scale;
  return out;
}

void AdaScalePipeline::set_dff(const DffServingConfig& cfg) {
  cfg.validate();
  dff_ = cfg;
  dff_enabled_ = true;
  ctx_.reset(init_scale_);
}

void AdaScalePipeline::push_history(const DetectionOutput& out) {
  const int window = dff_.seqnms_window;
  if (window <= 0) return;
  ctx_.history.push_back(out);
  if (static_cast<int>(ctx_.history.size()) > window)
    ctx_.history.erase(ctx_.history.begin());
}

Tensor AdaScalePipeline::flow_gray(const Scene& frame,
                                   const Tensor* full_render) const {
  if (dff_.flow_render_scale > 0) {
    const Tensor tiny =
        renderer_->render_at_scale(frame, dff_.flow_render_scale, policy_);
    return to_grayscale(tiny);
  }
  assert(full_render != nullptr);
  return to_grayscale(*full_render);
}

void AdaScalePipeline::refresh_key(const Scene& frame, Tensor image,
                                   const DetectBackend* backend,
                                   AdaFrameOutput* out, ModelLease* m) {
  DffStreamState& st = ctx_.dff;
  const int img_h = image.h(), img_w = image.w();
  // The grayscale flow source is taken before the image is handed to the
  // backend; the downsample to feature resolution waits until the feature
  // dimensions are known.
  Tensor gray = flow_gray(frame, &image);

  if (backend != nullptr) {
    // The backend may park this thread in a BatchScheduler queue waiting
    // for batch-mates; holding a pooled context across that wait could
    // starve the very streams the batch needs (leader deadlock), so the
    // lease is released first and re-acquired for the head pass below.
    m->drop();
    DetectResult r = (*backend)(std::move(image));
    if (r.features.size() == 0) {
      std::fprintf(stderr,
                   "AdaScalePipeline: DFF key frame served through a backend "
                   "that returned no features — run the BatchScheduler with "
                   "features_only (MultiStreamRunner::run_batched does this "
                   "automatically once set_dff is called)\n");
      std::abort();
    }
    st.key_features = std::move(r.features);
    out->detect_ms = r.detect_ms;
    if (dff_.adascale) {
      out->regressed_t = r.regressed_t;
      out->regressor_ms = r.regressor_ms;
    }
  } else {
    Timer backbone_timer;
    const Tensor& features = m->det()->forward(image);
    out->detect_ms = backbone_timer.elapsed_ms();
    st.key_features = features;
    if (dff_.adascale) {
      out->regressed_t = m->reg()->predict(st.key_features);
      out->regressor_ms = m->reg()->last_predict_ms();
    }
  }

  st.key_gray = Tensor();
  bilinear_resize(gray, st.key_features.h(), st.key_features.w(),
                  &st.key_gray);
  st.prev_gray = st.key_gray;
  st.acc_flow_y = Tensor();
  st.acc_flow_x = Tensor();

  // Heads + decode run on the stream's own detector in BOTH execution modes
  // (the cached features, not the backend's decode, are the input) — the
  // same call sequence as the offline DffPipeline, which is what makes
  // serving output bit-identical to Harness::run_dff and batched serving
  // bit-identical to serial regardless of batch composition.
  Timer head_timer;
  out->detections =
      m->det()->detect_from_features(st.key_features, img_h, img_w);
  out->detect_ms += head_timer.elapsed_ms();

  if (dff_.adascale) {
    int next = decode_scale_target(out->regressed_t, st.current_scale, sreg_);
    if (snap_to_set_) next = sreg_.nearest(next);
    st.pending_scale = capped(next);
  }

  out->dff_key = true;
  st.has_key = true;
  st.since_key = 0;
  ++st.keys;
}

AdaFrameOutput AdaScalePipeline::process_dff(const Scene& frame,
                                             const DetectBackend* backend) {
  DffStreamState& st = ctx_.dff;
  AdaFrameOutput out;
  out.dff = true;
  ModelLease m(this);  // lazy: flow-only warp frames never acquire

  const bool fixed = dff_.policy == DffServingConfig::Keyframe::kFixedInterval;
  const int key_interval = std::max(dff_.key_interval, 1);
  bool key = fixed ? (st.frame_index % key_interval) == 0
                   : (!st.has_key || st.since_key >= dff_.max_interval);

  // Scale changes only take effect at key frames, so warped features always
  // share the cached key's geometry.  A cap imposed between frames also
  // lands here (the key-frame-only scale-change rule applies to it too).
  if (key) st.current_scale = capped(st.pending_scale);
  out.scale_used = st.current_scale;

  if (!key) {
    // Warp attempt: estimate flow from the key frame to this one.  With a
    // tiny flow render the full working-scale render is skipped entirely —
    // the heads only need the image dimensions, which the scale policy
    // knows.  (A forced key below re-renders at full scale.)
    const bool tiny = dff_.flow_render_scale > 0;
    const int img_h = policy_.render_h(st.current_scale);
    const int img_w = policy_.render_w(st.current_scale);
    Tensor full_render;
    if (!tiny)
      full_render =
          renderer_->render_at_scale(frame, st.current_scale, policy_);

    Timer flow_timer;
    Tensor gray = flow_gray(frame, tiny ? nullptr : &full_render);
    Tensor cur_gray;
    bilinear_resize(gray, st.key_features.h(), st.key_features.w(), &cur_gray);
    Tensor flow_y, flow_x;
    if (dff_.incremental_flow && st.acc_flow_y.size() != 0) {
      Tensor step_y, step_x;
      block_matching_flow(st.prev_gray, cur_gray, dff_.flow, &step_y, &step_x);
      compose_flow(st.acc_flow_y, st.acc_flow_x, step_y, step_x, &flow_y,
                   &flow_x);
    } else {
      // First warp frame after a key (prev == key), or incremental off.
      block_matching_flow(st.key_gray, cur_gray, dff_.flow, &flow_y, &flow_x);
    }

    if (!fixed) {
      // Adaptive policy: gate propagation on the warp residual
      // (AdaptiveDffPipeline's trigger, same arithmetic).
      Tensor warped_gray;
      bilinear_warp(st.key_gray, flow_y, flow_x, &warped_gray);
      double residual = 0.0;
      for (std::size_t i = 0; i < warped_gray.size(); ++i)
        residual +=
            std::abs(static_cast<double>(warped_gray[i]) - cur_gray[i]);
      residual /= static_cast<double>(warped_gray.size());
      out.warp_residual = static_cast<float>(residual);
      if (out.warp_residual > dff_.residual_threshold) {
        // Propagation unreliable: this frame becomes the new key at the
        // scale regressed at the previous key (the key-frame-only
        // scale-change rule).
        st.current_scale = capped(st.pending_scale);
        key = true;
      }
    }

    if (!key) {
      Tensor warped;
      bilinear_warp(st.key_features, flow_y, flow_x, &warped);

      // Scene-change trigger: AdaScale's scale signal is cheap to read on
      // the warped features, and a large jump in the decoded scale means
      // the scene no longer resembles the cached key — refresh at the
      // freshly regressed scale instead of serving stale features.
      if (!fixed && dff_.adascale && dff_.scale_jump_frac > 0.0f) {
        out.regressed_t = m.reg()->predict(warped);
        out.regressor_ms = m.reg()->last_predict_ms();
        int decoded =
            decode_scale_target(out.regressed_t, st.current_scale, sreg_);
        if (snap_to_set_) decoded = sreg_.nearest(decoded);
        decoded = capped(decoded);
        const float jump =
            std::abs(static_cast<float>(decoded - st.current_scale)) /
            static_cast<float>(st.current_scale);
        if (jump >= dff_.scale_jump_frac) {
          st.current_scale = decoded;
          st.pending_scale = decoded;
          key = true;
        }
      }

      if (!key) {
        out.flow_ms = flow_timer.elapsed_ms();
        st.prev_gray = std::move(cur_gray);
        st.acc_flow_y = std::move(flow_y);
        st.acc_flow_x = std::move(flow_x);
        Timer head_timer;
        out.detections = m.det()->detect_from_features(warped, img_h, img_w);
        out.detect_ms = head_timer.elapsed_ms();
        ++st.since_key;
        ++st.frame_index;
        ++st.frames;
        out.next_scale = st.pending_scale;
        push_history(out.detections);
        return out;
      }
    }

    // A key was forced mid-warp; fall through to the key path, which
    // renders at the (possibly updated) current scale.
    out.flow_ms = flow_timer.elapsed_ms();
    out.scale_used = st.current_scale;
  }

  Tensor image = renderer_->render_at_scale(frame, st.current_scale, policy_);
  refresh_key(frame, std::move(image), backend, &out, &m);
  ++st.frame_index;
  ++st.frames;
  out.next_scale = st.pending_scale;
  push_history(out.detections);
  return out;
}

}  // namespace ada
