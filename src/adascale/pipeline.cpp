#include "adascale/pipeline.h"

namespace ada {

AdaFrameOutput AdaScalePipeline::process(const Scene& frame) {
  AdaFrameOutput out;
  out.scale_used = target_scale_;

  const Tensor image =
      renderer_->render_at_scale(frame, target_scale_, policy_);
  out.detections = detector_->detect(image);
  out.detect_ms = out.detections.forward_ms;

  // Regress t on the deep features of *this* frame; apply to the next.
  out.regressed_t = regressor_->predict(detector_->features());
  out.regressor_ms = regressor_->last_predict_ms();
  out.next_scale = decode_scale_target(out.regressed_t, target_scale_, sreg_);
  if (snap_to_set_) out.next_scale = sreg_.nearest(out.next_scale);
  target_scale_ = out.next_scale;
  return out;
}

AdaFrameOutput AdaScalePipeline::process_via(const Scene& frame,
                                             const DetectBackend& backend) {
  AdaFrameOutput out;
  out.scale_used = target_scale_;

  Tensor image = renderer_->render_at_scale(frame, target_scale_, policy_);
  DetectResult r = backend(std::move(image));
  out.detections = std::move(r.detections);
  out.detect_ms = r.detect_ms;
  out.regressed_t = r.regressed_t;
  out.regressor_ms = r.regressor_ms;
  out.next_scale = decode_scale_target(out.regressed_t, target_scale_, sreg_);
  if (snap_to_set_) out.next_scale = sreg_.nearest(out.next_scale);
  target_scale_ = out.next_scale;
  return out;
}

}  // namespace ada
