// Sec. 3.1 of the paper: the optimal-scale metric.
//
// For image i at scale m, every predicted box that overlaps a ground truth
// with IoU >= 0.5 is a "predicted foreground"; its loss is Eq. (1) evaluated
// against its matched GT.  Because scales with fewer foreground predictions
// would trivially win a plain loss sum, the metric equalizes the count: with
// n_min = min_m(n_m), L̂ᵢᵐ sums only the n_min *smallest* per-box losses at
// each scale, and m_opt = argmin_m L̂ᵢᵐ (Eq. 2, Fig. 3).
#pragma once

#include <vector>

#include "adascale/scale_set.h"
#include "data/renderer.h"
#include "detection/detector.h"

namespace ada {

/// Per-box Eq. (1) loss of a single detection against ground truth.
/// Returns the loss and sets *foreground; background boxes return 0.
float detection_box_loss(const Detection& det, const std::vector<GtBox>& gts,
                         float fg_iou, float reg_weight, bool* foreground);

/// Losses of all foreground predictions in a detection output, ascending.
std::vector<float> sorted_foreground_losses(const DetectionOutput& out,
                                            const std::vector<GtBox>& gts,
                                            float fg_iou, float reg_weight);

/// Per-scale metric values for one image.
struct ScaleMetric {
  std::vector<int> scales;      ///< evaluated scales (same order as below)
  std::vector<float> lhat;      ///< L̂ per scale (n_min-equalized loss sum)
  std::vector<int> n_fg;        ///< foreground prediction count per scale
  std::vector<int> n_det;       ///< total detections per scale
  int n_min = 0;
  int optimal_scale = 0;        ///< Eq. (2) argmin (with documented tie-breaks)
};

struct OptimalScaleConfig {
  float fg_iou = 0.5f;
  float reg_weight = 1.0f;  ///< lambda in Eq. (1)
  // Sec. 3.1's foreground-count equalization (sum only the n_min smallest
  // per-box losses).  false = naive variant that sums *all* foreground
  // losses — kept for the metric ablation bench, which shows the naive sum
  // systematically favors scales with fewer foreground predictions.
  bool equalize_fg = true;
};

/// Pure decision core of the metric: given the ascending per-box foreground
/// losses and total detection count at each scale, fills lhat/n_min and
/// picks the optimal scale.  compute_scale_metric gathers the inputs by
/// running the detector; this function is separable for testing and for the
/// equalization ablation.
ScaleMetric summarize_scale_losses(
    const std::vector<int>& scales,
    const std::vector<std::vector<float>>& per_scale_losses,
    const std::vector<int>& n_det, const OptimalScaleConfig& cfg);

/// Runs the detector at every scale in `s` and computes the metric.
/// Deviations from the paper (which leaves them unspecified), documented in
/// DESIGN.md: if n_min == 0 the scale with the most foreground predictions
/// wins; if all scales have zero foregrounds, the one with fewest detections
/// (fewest false positives) wins, then the larger scale; equal L̂ prefers
/// the smaller (faster) scale.
ScaleMetric compute_scale_metric(Detector* detector, const Renderer& renderer,
                                 const ScalePolicy& policy, const Scene& scene,
                                 const ScaleSet& s,
                                 const OptimalScaleConfig& cfg);

/// Optimal-scale labels for a list of frames (the label-generation pass of
/// Fig. 2).  Returns one nominal scale per frame.
std::vector<int> generate_optimal_scale_labels(
    Detector* detector, const Renderer& renderer, const ScalePolicy& policy,
    const std::vector<const Scene*>& frames, const ScaleSet& s,
    const OptimalScaleConfig& cfg);

}  // namespace ada
