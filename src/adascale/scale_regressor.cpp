#include "adascale/scale_regressor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "runtime/scratch.h"
#include "tensor/loss.h"
#include "util/timer.h"

namespace ada {

std::string RegressorConfig::fingerprint() const {
  std::ostringstream os;
  // v2: GEMM-backed kernels (PR 2) — retrain rather than reuse caches
  // trained under the pre-GEMM accumulation order.
  os << "reg:v2:c=" << in_channels << ":k=";
  for (int k : kernels) os << k << ',';
  os << ":s=" << stream_channels;
  return os.str();
}

ScaleRegressor::ScaleRegressor(const RegressorConfig& cfg, Rng* rng)
    : cfg_(cfg),
      fc_(static_cast<int>(cfg.kernels.size()) * cfg.stream_channels, 1) {
  for (int k : cfg_.kernels) {
    Stream s;
    s.conv = std::make_unique<Conv2dLayer>(cfg_.in_channels,
                                           cfg_.stream_channels, k, 1, k / 2,
                                           /*dilation=*/1, /*fuse_relu=*/true);
    // predict() is the hot path; train_step() re-enables caching around
    // its forward.
    s.conv->set_training(false);
    s.conv->init_he(rng);
    streams_.push_back(std::move(s));
  }
  // Same for the FC head: inference mode also lets a quantized fc_ take
  // the INT8 path (training forwards always stay fp32).
  fc_.set_training(false);
  fc_.init_he(rng);
}

void ScaleRegressor::set_execution_policy(const ExecutionPolicy& policy) {
  policy_ = policy;
  for (Stream& s : streams_) s.conv->set_policy(policy);
  fc_.set_policy(policy);
  invalidate_plans();
}

const ExecutionPlan& ScaleRegressor::plan_for(int n, int fh, int fw) {
  const GemmBackend be = policy_.resolve();
  const auto key = std::make_tuple(n, fh, fw, static_cast<int>(be));
  // Shared with weight-aliased clones; see Detector::plan_for.
  std::lock_guard<std::mutex> lk(plans_->mu);
  auto it = plans_->plans.find(key);
  if (it == plans_->plans.end()) {
    ExecutionPlan plan;
    plan.input = PlanShape{n, cfg_.in_channels, fh, fw};
    plan.policy = policy_.name();
    // Steps in forward() execution order: each stream's conv then its
    // pooling (both reading the shared feature map), then the FC head on
    // the pooled concat.
    for (const Stream& s : streams_) {
      PlanShape shape = plan.input;
      s.conv->plan_forward(&shape, &plan);
      s.gap.plan_forward(&shape, &plan);
    }
    PlanShape concat_shape{
        n, static_cast<int>(streams_.size()) * cfg_.stream_channels, 1, 1};
    fc_.plan_forward(&concat_shape, &plan);
    plan.finalize();
    it = plans_->plans.emplace(key, std::move(plan)).first;
  }
  return it->second;
}

void ScaleRegressor::forward(const Tensor& features) {
  const int sc = cfg_.stream_channels;
  const int total = static_cast<int>(streams_.size()) * sc;
  const int batch = features.n();
  if (concat_.n() != batch || concat_.c() != total)
    concat_ = Tensor(batch, total, 1, 1);
  PlanCursor pc(nullptr);
  const bool planned = use_plans_;
  if (planned) {
    const ExecutionPlan& plan = plan_for(batch, features.h(), features.w());
    scratch_arena().reserve(plan.arena_floats);
    pc = PlanCursor(&plan);
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    if (planned) {
      s.conv->forward_planned(features, &s.conv_out, &pc);
      s.gap.forward_planned(s.conv_out, &s.pooled, &pc);
    } else {
      s.conv->forward(features, &s.conv_out);  // ReLU fused into the conv
      s.gap.forward(s.conv_out, &s.pooled);
    }
    for (int n = 0; n < batch; ++n)
      for (int c = 0; c < sc; ++c)
        concat_.at(n, static_cast<int>(i) * sc + c, 0, 0) =
            s.pooled.at(n, c, 0, 0);
  }
  if (planned)
    fc_.forward_planned(concat_, &fc_out_, &pc);
  else
    fc_.forward(concat_, &fc_out_);
}

float ScaleRegressor::predict(const Tensor& features) {
  // Silent misuse on a batched feature map would run the whole batch and
  // return only image 0's t — fail loudly (asserts vanish in Release).
  if (features.n() != 1) {
    std::fprintf(stderr,
                 "ScaleRegressor::predict requires a single image, got %s — "
                 "use predict_batch\n",
                 features.shape_str().c_str());
    std::abort();
  }
  Timer timer;
  forward(features);
  last_predict_ms_ = timer.elapsed_ms();
  return fc_out_.at(0, 0, 0, 0);
}

std::vector<float> ScaleRegressor::predict_batch(const Tensor& features) {
  Timer timer;
  forward(features);
  const int batch = features.n();
  last_predict_ms_ =
      timer.elapsed_ms() / static_cast<double>(std::max(batch, 1));
  std::vector<float> out(static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n)
    out[static_cast<std::size_t>(n)] = fc_out_.at(n, 0, 0, 0);
  return out;
}

void ScaleRegressor::quantize(
    const std::vector<Tensor>& calibration_features) {
  for (Stream& s : streams_) s.conv->set_calibration(true);
  fc_.set_calibration(true);
  // Calibration must observe fp32 activations through the eager path.
  use_plans_ = false;
  for (const Tensor& f : calibration_features) forward(f);
  use_plans_ = true;
  for (Stream& s : streams_) s.conv->set_calibration(false);
  fc_.set_calibration(false);
  for (Stream& s : streams_) s.conv->quantize();
  fc_.quantize();
  invalidate_plans();
}

void ScaleRegressor::quantize_like(ScaleRegressor* src) {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Conv2dLayer* from = src->streams_[i].conv.get();
    if (from->is_quantized())
      streams_[i].conv->quantize_with_range(from->act_lo(), from->act_hi());
  }
  if (src->fc_.is_quantized())
    fc_.quantize_with_range(src->fc_.act_lo(), src->fc_.act_hi());
  invalidate_plans();
}

std::vector<QuantSummary> ScaleRegressor::quant_summaries() {
  std::vector<QuantSummary> out;
  for (std::size_t i = 0; i < streams_.size(); ++i)
    if (streams_[i].conv->is_quantized())
      out.push_back(summarize_quant(
          *streams_[i].conv,
          "stream_" + std::to_string(cfg_.kernels[i]) + "x" +
              std::to_string(cfg_.kernels[i])));
  if (fc_.is_quantized()) out.push_back(summarize_quant(fc_, "fc"));
  return out;
}

float ScaleRegressor::train_step(const Tensor& features, float target,
                                 Sgd* opt) {
  opt->zero_grad();
  // Fused conv+ReLU streams only cache their backward mask in training
  // mode; toggled back off after the backward below, which also releases
  // the cached activations.  The FC head toggles too so a quantized
  // regressor trains against the fp32 forward, never the INT8 one.
  for (Stream& s : streams_) s.conv->set_training(true);
  fc_.set_training(true);
  // Training forwards run eagerly (backward state, fp32 kernels); weights
  // are about to change, so cached plans go too.
  use_plans_ = false;
  invalidate_plans();
  forward(features);

  float dpred = 0.0f;
  const float loss = mse_scalar(fc_out_.at(0, 0, 0, 0), target, &dpred);

  Tensor dout(1, 1, 1, 1);
  dout.at(0, 0, 0, 0) = dpred;
  Tensor dconcat(1, concat_.c(), 1, 1);
  fc_.backward(dout, &dconcat);

  const int sc = cfg_.stream_channels;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    Tensor dpool(1, sc, 1, 1);
    for (int c = 0; c < sc; ++c)
      dpool.at(0, c, 0, 0) = dconcat.at(0, static_cast<int>(i) * sc + c, 0, 0);
    Tensor dconv(1, sc, s.conv_out.h(), s.conv_out.w());
    s.gap.backward(dpool, &dconv);
    s.conv->backward(dconv, nullptr);  // masks by ReLU sign; features frozen
  }
  for (Stream& s : streams_) s.conv->set_training(false);
  fc_.set_training(false);
  use_plans_ = true;
  opt->step();
  return loss;
}

float ScaleRegressor::fine_tune(const std::vector<Tensor>& features,
                                const std::vector<float>& targets,
                                int epochs, float lr) {
  assert(features.size() == targets.size());
  Sgd::Options opt;
  opt.lr = lr;
  opt.weight_decay = 0.0f;  // alignment, not regularized re-training
  Sgd sgd(parameters(), opt);
  float mse = 0.0f;
  for (int e = 0; e < epochs; ++e) {
    mse = 0.0f;
    for (std::size_t i = 0; i < features.size(); ++i)
      mse += train_step(features[i], targets[i], &sgd);
    mse /= static_cast<float>(std::max<std::size_t>(features.size(), 1));
  }
  return mse;
}

std::vector<Param*> ScaleRegressor::parameters() {
  std::vector<Param*> out;
  for (Stream& s : streams_) s.conv->collect_params(&out);
  fc_.collect_params(&out);
  return out;
}

std::unique_ptr<ScaleRegressor> clone_regressor(ScaleRegressor* src) {
  Rng rng(0);  // initialization is immediately overwritten
  auto dst = std::make_unique<ScaleRegressor>(src->config(), &rng);
  copy_param_values(src->parameters(), dst->parameters());
  if (src->quantized()) dst->quantize_like(src);
  dst->set_execution_policy(src->execution_policy());
  return dst;
}

void ScaleRegressor::share_storage_with(ScaleRegressor* src) {
  if (streams_.size() != src->streams_.size()) {
    std::fprintf(stderr,
                 "ScaleRegressor::share_storage_with: stream count mismatch "
                 "(%zu vs %zu)\n",
                 streams_.size(), src->streams_.size());
    std::abort();
  }
  for (std::size_t i = 0; i < streams_.size(); ++i)
    streams_[i].conv->share_params_with(src->streams_[i].conv.get());
  fc_.share_params_with(&src->fc_);
  plans_ = src->plans_;
}

std::unique_ptr<ScaleRegressor> clone_regressor_shared(ScaleRegressor* src) {
  // Full clone first (per-instance INT8 tables frozen from own fp32 copy),
  // then alias the fp32/grad storage; see clone_detector_shared.
  auto dst = clone_regressor(src);
  dst->share_storage_with(src);
  return dst;
}

}  // namespace ada
