// Adaptive multi-shot testing: the extension the paper names as future work
// in Sec. 2.1 ("our method could possibly be extended to multi-shot version,
// i.e., adaptively select multiple scales for a given image").
//
// Instead of running the detector at every scale of an image pyramid (the
// classic multi-shot protocol, up to 4x overhead), the regressor picks the
// center scale and the pipeline runs the detector at that scale plus its
// `extra_shots` nearest neighbors in S_reg, merging results with NMS.  This
// recovers part of multi-shot's accuracy at a fraction of its cost, and
// degenerates to Algorithm 1 when extra_shots == 0.
#pragma once

#include <vector>

#include "adascale/pipeline.h"
#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "data/renderer.h"
#include "detection/detector.h"

namespace ada {

struct MultiShotConfig {
  int extra_shots = 1;     ///< additional scales around the regressed one
  int init_scale = 600;    ///< Algorithm 1 initialization
  float merge_nms = 0.3f;  ///< NMS threshold when merging shots
};

/// Per-frame output of the adaptive multi-shot pipeline.  Detections are in
/// the coordinate frame of `primary_h` x `primary_w` (the regressed scale's
/// resolution); shots at other scales are rescaled into it before the merge.
struct MultiShotFrameOutput {
  DetectionOutput detections;       ///< merged across shots
  std::vector<int> scales_used;     ///< all scales run this frame
  int primary_scale = 0;            ///< the regressed (center) scale
  int next_scale = 0;               ///< decoded target for the next frame
  float regressed_t = 0.0f;
  double detect_ms = 0.0;           ///< summed across shots
  double regressor_ms = 0.0;

  double total_ms() const { return detect_ms + regressor_ms; }
};

/// Scales in `s` ordered by |scale - center|, starting with `center`'s
/// nearest member (ties prefer the smaller scale: cheaper).  Exposed for
/// tests.
std::vector<int> shots_around(int center, const ScaleSet& s, int count);

/// Stateful adaptive multi-shot runner; reset() per snippet.
class MultiShotPipeline {
 public:
  MultiShotPipeline(Detector* detector, ScaleRegressor* regressor,
                    const Renderer* renderer, const ScalePolicy& policy,
                    const ScaleSet& sreg, const MultiShotConfig& cfg)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        sreg_(sreg),
        cfg_(cfg),
        target_scale_(cfg.init_scale) {}

  void reset() { target_scale_ = cfg_.init_scale; }

  int current_scale() const { return target_scale_; }

  /// Detects at the current target scale and its neighbors, merges, and
  /// updates the target scale from the primary shot's deep features.
  MultiShotFrameOutput process(const Scene& frame);

 private:
  Detector* detector_;
  ScaleRegressor* regressor_;
  const Renderer* renderer_;
  ScalePolicy policy_;
  ScaleSet sreg_;
  MultiShotConfig cfg_;
  int target_scale_;
};

}  // namespace ada
