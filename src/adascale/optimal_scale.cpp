#include "adascale/optimal_scale.h"

#include <algorithm>
#include <cmath>

#include "tensor/loss.h"

namespace ada {

float detection_box_loss(const Detection& det, const std::vector<GtBox>& gts,
                         float fg_iou, float reg_weight, bool* foreground) {
  int best_g = -1;
  float best_iou = 0.0f;
  for (std::size_t g = 0; g < gts.size(); ++g) {
    const float v = iou(det.box, Box::from_gt(gts[g]));
    if (v > best_iou) {
      best_iou = v;
      best_g = static_cast<int>(g);
    }
  }
  if (best_g < 0 || best_iou < fg_iou) {
    *foreground = false;
    return 0.0f;
  }
  *foreground = true;
  const GtBox& gt = gts[static_cast<std::size_t>(best_g)];

  // L = Lcls + lambda * Lreg  (Eq. 1), evaluated on this prediction.
  const float p =
      std::max(det.probs[static_cast<std::size_t>(gt.class_id + 1)], 1e-12f);
  const float lcls = -std::log(p);
  const auto target = encode_box(Box::from_gt(gt), det.anchor);
  const float lreg =
      smooth_l1(det.delta.data(), target.data(), 4, nullptr);
  return lcls + reg_weight * lreg;
}

std::vector<float> sorted_foreground_losses(const DetectionOutput& out,
                                            const std::vector<GtBox>& gts,
                                            float fg_iou, float reg_weight) {
  std::vector<float> losses;
  for (const Detection& det : out.detections) {
    bool fg = false;
    const float l = detection_box_loss(det, gts, fg_iou, reg_weight, &fg);
    if (fg) losses.push_back(l);
  }
  std::sort(losses.begin(), losses.end());
  return losses;
}

ScaleMetric summarize_scale_losses(
    const std::vector<int>& scales,
    const std::vector<std::vector<float>>& per_scale_losses,
    const std::vector<int>& n_det, const OptimalScaleConfig& cfg) {
  ScaleMetric m;
  m.scales = scales;
  m.n_det = n_det;
  for (const auto& losses : per_scale_losses)
    m.n_fg.push_back(static_cast<int>(losses.size()));

  m.n_min = *std::min_element(m.n_fg.begin(), m.n_fg.end());

  if (m.n_min > 0) {
    // L̂: sum of the n_min smallest per-box losses at each scale (or, for
    // the ablation's naive variant, of all foreground losses).
    for (const auto& losses : per_scale_losses) {
      float sum = 0.0f;
      const int count = cfg.equalize_fg ? m.n_min
                                        : static_cast<int>(losses.size());
      for (int k = 0; k < count; ++k) sum += losses[static_cast<std::size_t>(k)];
      m.lhat.push_back(sum);
    }
    int best = 0;
    for (std::size_t i = 1; i < m.lhat.size(); ++i) {
      const bool better = m.lhat[i] < m.lhat[static_cast<std::size_t>(best)] ||
                          (m.lhat[i] == m.lhat[static_cast<std::size_t>(best)] &&
                           m.scales[i] < m.scales[static_cast<std::size_t>(best)]);
      if (better) best = static_cast<int>(i);
    }
    m.optimal_scale = m.scales[static_cast<std::size_t>(best)];
    return m;
  }

  // Degenerate cases (paper unspecified; see header).
  m.lhat.assign(m.scales.size(), 0.0f);
  int best = 0;
  for (std::size_t i = 1; i < m.scales.size(); ++i) {
    const int nf_i = m.n_fg[i], nf_b = m.n_fg[static_cast<std::size_t>(best)];
    if (nf_i > nf_b) {
      best = static_cast<int>(i);
    } else if (nf_i == nf_b && nf_i == 0) {
      const int nd_i = m.n_det[i], nd_b = m.n_det[static_cast<std::size_t>(best)];
      if (nd_i < nd_b ||
          (nd_i == nd_b && m.scales[i] > m.scales[static_cast<std::size_t>(best)]))
        best = static_cast<int>(i);
    }
  }
  m.optimal_scale = m.scales[static_cast<std::size_t>(best)];
  return m;
}

ScaleMetric compute_scale_metric(Detector* detector, const Renderer& renderer,
                                 const ScalePolicy& policy, const Scene& scene,
                                 const ScaleSet& s,
                                 const OptimalScaleConfig& cfg) {
  std::vector<std::vector<float>> all_losses;
  std::vector<int> n_det;
  for (int scale : s.scales) {
    const Tensor image = renderer.render_at_scale(scene, scale, policy);
    const std::vector<GtBox> gts =
        scene_ground_truth(scene, image.h(), image.w());
    DetectionOutput out = detector->detect(image);
    all_losses.push_back(
        sorted_foreground_losses(out, gts, cfg.fg_iou, cfg.reg_weight));
    n_det.push_back(static_cast<int>(out.detections.size()));
  }
  return summarize_scale_losses(s.scales, all_losses, n_det, cfg);
}

std::vector<int> generate_optimal_scale_labels(
    Detector* detector, const Renderer& renderer, const ScalePolicy& policy,
    const std::vector<const Scene*>& frames, const ScaleSet& s,
    const OptimalScaleConfig& cfg) {
  std::vector<int> labels;
  labels.reserve(frames.size());
  for (const Scene* scene : frames)
    labels.push_back(
        compute_scale_metric(detector, renderer, policy, *scene, s, cfg)
            .optimal_scale);
  return labels;
}

}  // namespace ada
