// Algorithm 1: deploying AdaScale on a video stream.
//
//   targetScale = 600                     // initialize
//   for each frame:
//     image = resize(frame, targetScale)
//     boxes, scores, t = detector.detect(image)   // regress Eq. (3)'s t
//     targetScale = decode(t, base_size) ; clip ; round
//
// The current frame's deep features predict the *next* frame's scale — the
// temporal-consistency assumption the paper's results justify empirically.
//
// With a DffServingConfig (set_dff) the pipeline additionally reuses
// temporal compute à la Deep Feature Flow: the full backbone runs only on
// key frames, whose deep features are cached in the per-stream
// StreamContext; intermediate frames estimate a cheap optical flow, warp
// the cached features along it, and run only the detection heads.  This is
// the paper's Fig. 7 headline combination (AdaScale + DFF) on the serving
// path — the scale regressor runs on key frames (decoded scale takes effect
// at the next key, so warped features always match the cached geometry) and
// doubles as a scene-change detector on warp frames (a regressed scale jump
// forces a key frame).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "adascale/scale_target.h"
#include "data/renderer.h"
#include "detection/detector.h"
#include "runtime/stream_context.h"

namespace ada {

/// Per-frame output of the adaptive pipeline.
struct AdaFrameOutput {
  DetectionOutput detections;
  int scale_used = 0;       ///< nominal scale this frame was processed at
  int next_scale = 0;       ///< scale the next frame (DFF: next key) will use
  float regressed_t = 0.0f; ///< raw regressor output (0 if it did not run)
  double detect_ms = 0.0;   ///< backbone+head wall-clock
  double regressor_ms = 0.0;
  // DFF-mode fields (dff == false on the per-frame Algorithm-1 path).
  bool dff = false;          ///< frame was served by the keyframe/warp branch
  bool dff_key = false;      ///< this frame refreshed the feature cache
  float warp_residual = 0.0f;///< adaptive policy: mean warp residual measured
                             ///< on this frame (also set on residual-forced
                             ///< keys — it is what triggered them)
  double flow_ms = 0.0;      ///< flow estimation + feature warp wall-clock

  double total_ms() const { return detect_ms + regressor_ms + flow_ms; }
};

/// A pool of interchangeable detector/regressor compute contexts the
/// pipeline can borrow per model touch instead of owning a dedicated pair.
/// Contexts are weight-aliased clones (clone_detector_shared /
/// clone_regressor_shared) of one master copy, so WHICH context serves a
/// frame cannot affect the bits — only the per-context scratch
/// (activations, cached features) differs, and the pipeline never reads
/// scratch across leases.  acquire() may block until a context frees up;
/// release() must be called with the exact Lease acquire() returned.  The
/// stream-state table (runtime/stream_table.h) implements this to serve
/// 1k+ streams from a handful of resident contexts.
class ModelPool {
 public:
  struct Lease {
    Detector* detector = nullptr;
    ScaleRegressor* regressor = nullptr;
    int slot = -1;  ///< pool-private identifier, opaque to the pipeline
  };

  virtual ~ModelPool() = default;
  virtual Lease acquire() = 0;
  virtual void release(const Lease& lease) = 0;
};

/// Stateful Algorithm-1 runner.  Call reset() at each new video snippet.
///
/// With snap_to_set the decoded target scale is quantized to the nearest
/// member of `sreg` (ties to the larger, accuracy-conservative scale).
/// This is the serving-side shape-bucketing knob: concurrent streams can
/// only share a batched backbone forward when their rendered frames have
/// identical dimensions, and the raw Algorithm-1 decode produces arbitrary
/// integer scales that almost never coincide.  Snapping trades a bounded
/// scale perturbation (≤ half the gap between set members) for dense batch
/// buckets; it applies identically in serial and batched execution, so the
/// bit-equality contract between them is unaffected.
///
/// All cross-frame mutable state lives in one StreamContext (the
/// per-stream half of the shared-weights / per-stream-state split —
/// runtime/stream_context.h); the detector/regressor models are treated as
/// immutable shared weights at serving time.
class AdaScalePipeline {
 public:
  AdaScalePipeline(Detector* detector, ScaleRegressor* regressor,
                   const Renderer* renderer, const ScalePolicy& policy,
                   const ScaleSet& sreg, int init_scale = 600,
                   bool snap_to_set = false)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        sreg_(sreg),
        init_scale_(init_scale),
        snap_to_set_(snap_to_set) {
    if (detector_ == nullptr || regressor_ == nullptr || renderer_ == nullptr ||
        init_scale_ <= 0 || sreg_.scales.empty()) {
      std::fprintf(stderr,
                   "AdaScalePipeline: invalid construction (null models/"
                   "renderer, non-positive init_scale, or empty scale set)\n");
      std::abort();
    }
    ctx_.reset(init_scale_);
  }

  /// Re-initializes the per-stream context for a new snippet (Algorithm 1
  /// restarts every video at 600; the DFF cache drops, so the next frame is
  /// a key frame).
  void reset() { ctx_.reset(init_scale_); }

  int current_scale() const {
    return dff_enabled_ ? ctx_.dff.current_scale : ctx_.target_scale;
  }

  /// Enables DFF temporal reuse with the given configuration and resets the
  /// stream context (the cached features of any previous mode are invalid).
  void set_dff(const DffServingConfig& cfg);

  /// Overload-degradation seam: caps the target scale at `cap` (0 lifts the
  /// cap).  While capped, the scale this pipeline serves is
  /// sreg.nearest(min(scale, cap)) — snapped onto the scale set so capped
  /// streams keep landing in shared batch buckets (runtime/
  /// overload_controller.h walks this knob).  Takes effect from the next
  /// frame (next key frame in DFF mode); lifting it lets Algorithm 1
  /// regress back up naturally.
  void set_scale_cap(int cap) { scale_cap_ = cap; }
  int scale_cap() const { return scale_cap_; }

  bool dff_enabled() const { return dff_enabled_; }
  const DffServingConfig& dff_config() const { return dff_; }

  /// The per-stream mutable state (inspection/tests).
  const StreamContext& context() const { return ctx_; }

  /// Processes one frame: detect at the current target scale, then update
  /// the target scale from the regressed relative scale.  In DFF mode,
  /// key frames run the full backbone and refresh the feature cache; warp
  /// frames skip the backbone entirely.
  AdaFrameOutput process(const Scene& frame);

  /// What a detection backend returns for one rendered frame — detections
  /// plus the regressed relative scale of that frame's deep features.
  struct DetectResult {
    DetectionOutput detections;
    float regressed_t = 0.0f;
    double detect_ms = 0.0;
    double regressor_ms = 0.0;
    /// The frame's deep features (backbone output).  Only populated when
    /// the backend runs in feature-returning mode (DFF key frames served
    /// through a BatchScheduler with features_only set); empty otherwise.
    Tensor features;
  };

  /// Pluggable detection backend: receives the frame rendered at the
  /// current target scale, returns detections + regressed t.  This is how
  /// the runtime layer routes frames through a cross-stream BatchScheduler
  /// without the pipeline depending on it; results must match what the
  /// pipeline's own detector/regressor would produce for the scale
  /// trajectory to stay bit-identical to process().
  using DetectBackend = std::function<DetectResult(Tensor image)>;

  /// process(), but detection runs through `backend` instead of the owned
  /// detector/regressor.  Scale state updates identically.  In DFF mode
  /// only key frames reach the backend (which must return features —
  /// BatchSchedulerConfig::features_only); warp frames never leave the
  /// stream: flow, warp, and heads all run on the stream's own models.
  AdaFrameOutput process_via(const Scene& frame, const DetectBackend& backend);

  /// Routes all model access through `pool` from the next frame on (null
  /// unbinds, restoring the constructor-supplied models).  Leases are
  /// acquired lazily per frame at the first model touch and released before
  /// any blocking backend call, so a pipeline never holds a pooled context
  /// while parked in a BatchScheduler queue.  The constructor-supplied
  /// detector/regressor are untouched while a pool is bound — they can be
  /// the master weight copies the pool's contexts alias.
  void bind_pool(ModelPool* pool) { pool_ = pool; }
  ModelPool* pool() const { return pool_; }

 private:
  /// One frame's scoped model access; defined in pipeline.cpp.  Lazily
  /// acquires from pool_ (or passes through to the owned models) and
  /// releases on destruction or explicitly around blocking calls.
  struct ModelLease;

  /// The keyframe/warp branch shared by process() / process_via().
  /// `backend` is null for owned-model execution.
  AdaFrameOutput process_dff(const Scene& frame, const DetectBackend* backend);

  /// Runs the full backbone on `image` (leased detector or backend), caches
  /// key features + grayscale into the context, detects on the cached
  /// features, and (when dff_.adascale) regresses the next key's scale.
  /// `frame` supplies the grayscale flow source (tiny render).
  void refresh_key(const Scene& frame, Tensor image,
                   const DetectBackend* backend, AdaFrameOutput* out,
                   ModelLease* m);

  /// Grayscale flow source for `frame`: a tiny dedicated render
  /// (dff_.flow_render_scale > 0) or the given full-scale render (legacy;
  /// `full_render` may be null in tiny mode).  Same convention as
  /// DffPipeline::flow_gray — callers resize to the feature grid.
  Tensor flow_gray(const Scene& frame, const Tensor* full_render) const;

  /// Bounded per-stream detection history (seq-NMS seam).
  void push_history(const DetectionOutput& out);

  /// `s` clamped under the overload scale cap (identity when uncapped).
  int capped(int s) const;

  Detector* detector_;
  ScaleRegressor* regressor_;
  ModelPool* pool_ = nullptr;  ///< when set, frames lease contexts instead
  const Renderer* renderer_;
  ScalePolicy policy_;
  ScaleSet sreg_;
  int init_scale_;
  bool snap_to_set_;
  int scale_cap_ = 0;  ///< 0 = uncapped (see set_scale_cap)
  bool dff_enabled_ = false;
  DffServingConfig dff_;
  StreamContext ctx_;
};

}  // namespace ada
