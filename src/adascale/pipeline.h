// Algorithm 1: deploying AdaScale on a video stream.
//
//   targetScale = 600                     // initialize
//   for each frame:
//     image = resize(frame, targetScale)
//     boxes, scores, t = detector.detect(image)   // regress Eq. (3)'s t
//     targetScale = decode(t, base_size) ; clip ; round
//
// The current frame's deep features predict the *next* frame's scale — the
// temporal-consistency assumption the paper's results justify empirically.
#pragma once

#include <functional>

#include "adascale/scale_regressor.h"
#include "adascale/scale_set.h"
#include "adascale/scale_target.h"
#include "data/renderer.h"
#include "detection/detector.h"

namespace ada {

/// Per-frame output of the adaptive pipeline.
struct AdaFrameOutput {
  DetectionOutput detections;
  int scale_used = 0;       ///< nominal scale this frame was processed at
  int next_scale = 0;       ///< decoded regressor output for the next frame
  float regressed_t = 0.0f; ///< raw regressor output
  double detect_ms = 0.0;
  double regressor_ms = 0.0;

  double total_ms() const { return detect_ms + regressor_ms; }
};

/// Stateful Algorithm-1 runner.  Call reset() at each new video snippet.
///
/// With snap_to_set the decoded target scale is quantized to the nearest
/// member of `sreg` (ties to the larger, accuracy-conservative scale).
/// This is the serving-side shape-bucketing knob: concurrent streams can
/// only share a batched backbone forward when their rendered frames have
/// identical dimensions, and the raw Algorithm-1 decode produces arbitrary
/// integer scales that almost never coincide.  Snapping trades a bounded
/// scale perturbation (≤ half the gap between set members) for dense batch
/// buckets; it applies identically in serial and batched execution, so the
/// bit-equality contract between them is unaffected.
class AdaScalePipeline {
 public:
  AdaScalePipeline(Detector* detector, ScaleRegressor* regressor,
                   const Renderer* renderer, const ScalePolicy& policy,
                   const ScaleSet& sreg, int init_scale = 600,
                   bool snap_to_set = false)
      : detector_(detector),
        regressor_(regressor),
        renderer_(renderer),
        policy_(policy),
        sreg_(sreg),
        init_scale_(init_scale),
        target_scale_(init_scale),
        snap_to_set_(snap_to_set) {}

  /// Re-initializes the scale for a new snippet (Algorithm 1 starts every
  /// video at 600).
  void reset() { target_scale_ = init_scale_; }

  int current_scale() const { return target_scale_; }

  /// Processes one frame: detect at the current target scale, then update
  /// the target scale from the regressed relative scale.
  AdaFrameOutput process(const Scene& frame);

  /// What a detection backend returns for one rendered frame — detections
  /// plus the regressed relative scale of that frame's deep features.
  struct DetectResult {
    DetectionOutput detections;
    float regressed_t = 0.0f;
    double detect_ms = 0.0;
    double regressor_ms = 0.0;
  };

  /// Pluggable detection backend: receives the frame rendered at the
  /// current target scale, returns detections + regressed t.  This is how
  /// the runtime layer routes frames through a cross-stream BatchScheduler
  /// without the pipeline depending on it; results must match what the
  /// pipeline's own detector/regressor would produce for the scale
  /// trajectory to stay bit-identical to process().
  using DetectBackend = std::function<DetectResult(Tensor image)>;

  /// process(), but detection runs through `backend` instead of the owned
  /// detector/regressor.  Scale state updates identically.
  AdaFrameOutput process_via(const Scene& frame, const DetectBackend& backend);

 private:
  Detector* detector_;
  ScaleRegressor* regressor_;
  const Renderer* renderer_;
  ScalePolicy policy_;
  ScaleSet sreg_;
  int init_scale_;
  int target_scale_;
  bool snap_to_set_;
};

}  // namespace ada
