// Scale sets (nominal shortest-side sizes) used throughout the paper.
#pragma once

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

namespace ada {

/// An ordered set of nominal scales, largest first (paper convention).
struct ScaleSet {
  std::vector<int> scales;

  /// Smallest member (m_min in Eq. 3).  Requires a non-empty set.
  int min() const {
    assert(!scales.empty());
    return *std::min_element(scales.begin(), scales.end());
  }
  /// Largest member (m_max in Eq. 3).  Requires a non-empty set.
  int max() const {
    assert(!scales.empty());
    return *std::max_element(scales.begin(), scales.end());
  }
  /// Number of scales in the set.
  int count() const { return static_cast<int>(scales.size()); }
  /// True when `s` is a member.
  bool contains(int s) const {
    return std::find(scales.begin(), scales.end(), s) != scales.end();
  }

  /// "{600,480,...}" — used in cache fingerprints and labels.
  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < scales.size(); ++i) {
      out += std::to_string(scales[i]);
      if (i + 1 < scales.size()) out += ",";
    }
    return out + "}";
  }

  /// S_train of the main experiments: {600, 480, 360, 240} (Sec. 4.2).
  static ScaleSet train_default() { return ScaleSet{{600, 480, 360, 240}}; }

  /// S_reg = S_train + {128}: 128 is the smallest anchor scale, included so
  /// the regressor can push images as small as possible (Sec. 4.2).
  static ScaleSet reg_default() { return ScaleSet{{600, 480, 360, 240, 128}}; }
};

}  // namespace ada
