// Scale sets (nominal shortest-side sizes) used throughout the paper.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string>
#include <vector>

namespace ada {

/// An ordered set of nominal scales, largest first (paper convention).
struct ScaleSet {
  std::vector<int> scales;

  /// Smallest member (m_min in Eq. 3).  Requires a non-empty set.
  int min() const {
    assert(!scales.empty());
    return *std::min_element(scales.begin(), scales.end());
  }
  /// Largest member (m_max in Eq. 3).  Requires a non-empty set.
  int max() const {
    assert(!scales.empty());
    return *std::max_element(scales.begin(), scales.end());
  }
  /// Number of scales in the set.
  int count() const { return static_cast<int>(scales.size()); }
  /// True when `s` is a member.
  bool contains(int s) const {
    return std::find(scales.begin(), scales.end(), s) != scales.end();
  }

  /// Nearest member to `s`; ties resolve to the larger scale (accuracy-
  /// conservative).  Serving uses this to quantize regressed target scales
  /// onto the set so concurrent streams land in shared batch buckets.
  int nearest(int s) const {
    assert(!scales.empty());
    int best = scales.front();
    int best_d = std::abs(best - s);
    for (int m : scales) {
      const int d = std::abs(m - s);
      if (d < best_d || (d == best_d && m > best)) {
        best = m;
        best_d = d;
      }
    }
    return best;
  }

  /// "{600,480,...}" — used in cache fingerprints and labels.
  std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < scales.size(); ++i) {
      out += std::to_string(scales[i]);
      if (i + 1 < scales.size()) out += ",";
    }
    return out + "}";
  }

  /// S_train of the main experiments: {600, 480, 360, 240} (Sec. 4.2).
  static ScaleSet train_default() { return ScaleSet{{600, 480, 360, 240}}; }

  /// S_reg = S_train + {128}: 128 is the smallest anchor scale, included so
  /// the regressor can push images as small as possible (Sec. 4.2).
  static ScaleSet reg_default() { return ScaleSet{{600, 480, 360, 240, 128}}; }
};

}  // namespace ada
