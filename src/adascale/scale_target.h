// Eq. (3) of the paper: the regressor does not predict the optimal scale
// directly — it predicts a *relative*, normalized scale change
//
//   t(m, m_opt) = 2 * (m_opt/m - m_min/m_max) / (m_max/m_min - m_min/m_max) - 1
//
// which lives in [-1, 1] regardless of the current scale m.  Algorithm 1
// inverts this at test time and rounds/clips to [m_min, m_max].
#pragma once

#include "adascale/scale_set.h"

namespace ada {

/// Encodes the regression target for an image currently at scale `m` whose
/// optimal scale is `m_opt` (Eq. 3).
float encode_scale_target(int m, int m_opt, const ScaleSet& s);

/// Decodes a regressed `t` back to a nominal scale given the current scale
/// (Algorithm 1: invert Eq. 3, round to integer, clip to [min, max]).
int decode_scale_target(float t, int current_scale, const ScaleSet& s);

}  // namespace ada
