// The scale regressor module (Sec. 3.2, Fig. 4).
//
// Takes the detector's deep features X ∈ R^{C×H×W} and regresses the Eq. (3)
// relative-scale target.  Architecture per the paper: parallel convolution
// streams — a 1×1 conv capturing per-channel size information and a 3×3 conv
// capturing local patch complexity (Table 3 also ablates adding a 5×5) —
// each followed by a non-linearity and global pooling ("a voting process"),
// then a fully-connected layer combining the pooled streams into one scalar.
//
// The regressor trains with MSE (Eq. 4) while all detector weights stay
// frozen, exactly as in the paper.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "nn/layers.h"
#include "nn/sgd.h"
#include "runtime/exec_plan.h"
#include "runtime/exec_policy.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ada {

struct RegressorConfig {
  int in_channels = 40;               ///< detector deep-feature channels
  std::vector<int> kernels = {1, 3};  ///< stream kernel sizes (Table 3)
  int stream_channels = 16;           ///< conv output channels per stream

  std::string fingerprint() const;
};

/// g : R^{C×H×W} -> R  (Fig. 4).
class ScaleRegressor {
 public:
  ScaleRegressor(const RegressorConfig& cfg, Rng* rng);

  ScaleRegressor(const ScaleRegressor&) = delete;
  ScaleRegressor& operator=(const ScaleRegressor&) = delete;

  /// Predicts the normalized relative scale t̂ for a single feature map
  /// (features.n() must be 1).
  float predict(const Tensor& features);

  /// Batched prediction over an (N,C,fh,fw) feature map (e.g. the detector's
  /// features() after detect_batch): each conv stream and the FC head run
  /// once for the whole batch.  Element i is bit-identical to
  /// predict(features.image(i)); last_predict_ms() reports the batch
  /// wall-clock amortized per image.
  std::vector<float> predict_batch(const Tensor& features);

  /// Post-training quantization over calibration feature maps (the
  /// detector's deep features for representative frames): observes each
  /// stream conv's and the FC head's input range, then freezes INT8 state.
  /// predict()/predict_batch() run INT8 whenever ADASCALE_GEMM=int8; see
  /// Detector::quantize for the contract.
  void quantize(const std::vector<Tensor>& calibration_features);

  /// True once quantize() has frozen INT8 state.
  bool quantized() const { return fc_.is_quantized(); }

  /// Sets this regressor's execution policy; see
  /// Detector::set_execution_policy.  The canonical mixed-precision
  /// serving config is an int8 detector policy plus an fp32 regressor
  /// policy — the scale decision is far more sensitive to quantization
  /// noise than the detections are.
  void set_execution_policy(const ExecutionPolicy& policy);

  /// The policy this regressor resolves kernels from.
  const ExecutionPolicy& execution_policy() const { return policy_; }

  /// The cached ahead-of-time plan for an (n, fh, fw) feature map under
  /// the current resolved backend; see Detector::plan_for.
  const ExecutionPlan& plan_for(int n, int fh, int fw);

  /// Number of plans currently cached (test seam).
  std::size_t cached_plan_count() const { return plans_->size(); }

  /// Aliases parameter storage and the plan cache to `src`'s; see
  /// Detector::share_storage_with.  Used by clone_regressor_shared.
  void share_storage_with(ScaleRegressor* src);

  /// Clone-side quantization transfer; see Detector::quantize_like.
  void quantize_like(ScaleRegressor* src);

  /// Per-layer calibration summaries (see Detector::quant_summaries).
  std::vector<QuantSummary> quant_summaries();

  /// One MSE training step on a single example (Eq. 4 term); returns the
  /// squared error.  Features are treated as constants (no grad flows back).
  float train_step(const Tensor& features, float target, Sgd* opt);

  /// Small MSE fine-tune over explicit (features, target) pairs — the
  /// quantization-aware alignment pass of the mixed-precision recipe
  /// (Harness::prepare_mixed_precision): distilling the regressor's own
  /// fp32-feature scale decisions onto INT8-produced feature maps cancels
  /// the systematic t̂ bias quantization noise induces, while the
  /// regressor itself keeps serving fp32.  Returns the final-epoch mean
  /// squared error.
  float fine_tune(const std::vector<Tensor>& features,
                  const std::vector<float>& targets, int epochs = 8,
                  float lr = 1e-4f);

  std::vector<Param*> parameters();

  const RegressorConfig& config() const { return cfg_; }

  /// Wall-clock of the last predict() call, for the overhead analysis
  /// (paper: "incurs only 2 ms, 3% of R-FCN runtime").
  double last_predict_ms() const { return last_predict_ms_; }

 private:
  /// One conv→ReLU→GAP stream; the ReLU is fused into the conv's GEMM
  /// write-out (bit-identical, one less pass per prediction).
  struct Stream {
    std::unique_ptr<Conv2dLayer> conv;  ///< fuse_relu = true
    GlobalAvgPoolLayer gap;
    Tensor conv_out, pooled;
  };

  /// Forward through streams; fills pooled concat vector.
  void forward(const Tensor& features);

  void invalidate_plans() { plans_->clear(); }

  RegressorConfig cfg_;
  std::vector<Stream> streams_;
  LinearLayer fc_;
  ExecutionPolicy policy_;  ///< unpinned by default (env-following)
  bool use_plans_ = true;   ///< off during training/calibration forwards
  /// Plans keyed by (n, fh, fw, resolved backend); shared with
  /// weight-aliased clones.  See Detector.
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
  Tensor concat_;   ///< pooled streams, (N, streams*stream_channels, 1, 1)
  Tensor fc_out_;   ///< (N,1,1,1)
  double last_predict_ms_ = 0.0;
};

/// Deep-copies a scale regressor (same reason as clone_detector: per-predict
/// scratch state makes instances single-user).
std::unique_ptr<ScaleRegressor> clone_regressor(ScaleRegressor* src);

/// Clones a regressor with parameter storage and plan cache aliased to
/// `src`'s; see clone_detector_shared.  Sharers must not train.
std::unique_ptr<ScaleRegressor> clone_regressor_shared(ScaleRegressor* src);

}  // namespace ada
