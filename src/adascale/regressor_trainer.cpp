#include "adascale/regressor_trainer.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "util/file_io.h"

namespace ada {

std::string RegressorTrainConfig::fingerprint() const {
  std::ostringstream os;
  os << "regtrain:S=" << sreg.to_string() << ":ep=" << epochs
     << ":lr=" << base_lr << ":stride=" << frame_stride << ":seed=" << seed;
  return os.str();
}

namespace {

/// Training frames after applying the config's stride.
std::vector<const Scene*> strided_train_frames(const Dataset& dataset,
                                               const RegressorTrainConfig& cfg) {
  std::vector<const Scene*> frames = dataset.train_frames();
  if (cfg.frame_stride > 1) {
    std::vector<const Scene*> strided;
    for (std::size_t i = 0; i < frames.size();
         i += static_cast<std::size_t>(cfg.frame_stride))
      strided.push_back(frames[i]);
    frames = std::move(strided);
  }
  return frames;
}

}  // namespace

std::vector<int> load_or_generate_labels(Detector* detector,
                                         const std::string& detector_key,
                                         const Dataset& dataset,
                                         const RegressorTrainConfig& cfg,
                                         const std::string& cache_dir) {
  const std::vector<const Scene*> frames = strided_train_frames(dataset, cfg);

  std::string cache_path;
  if (!cache_dir.empty()) {
    const std::string key = dataset.fingerprint() + "|" + detector_key +
                            "|labels:S=" + cfg.sreg.to_string() +
                            ":stride=" + std::to_string(cfg.frame_stride);
    std::ostringstream os;
    os << cache_dir << "/labels_" << std::hex << fnv1a(key) << ".bin";
    cache_path = os.str();
    std::vector<float> flat;
    if (file_exists(cache_path) && load_floats(cache_path, &flat) &&
        flat.size() == frames.size()) {
      std::vector<int> labels(flat.size());
      for (std::size_t i = 0; i < flat.size(); ++i)
        labels[i] = static_cast<int>(flat[i]);
      std::fprintf(stderr, "[regressor] loaded cached scale labels: %s\n",
                   cache_path.c_str());
      return labels;
    }
  }

  std::fprintf(stderr,
               "[regressor] generating optimal-scale labels for %zu frames\n",
               frames.size());
  const std::vector<int> labels = generate_optimal_scale_labels(
      detector, dataset.make_renderer(), dataset.scale_policy(), frames,
      cfg.sreg, OptimalScaleConfig{});

  if (!cache_path.empty()) {
    make_dirs(cache_dir);
    std::vector<float> flat(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i)
      flat[i] = static_cast<float>(labels[i]);
    if (!save_floats(cache_path, flat))
      std::fprintf(stderr, "[regressor] warning: failed to write %s\n",
                   cache_path.c_str());
  }
  return labels;
}

float train_regressor(ScaleRegressor* regressor, Detector* detector,
                      const Dataset& dataset, const RegressorTrainConfig& cfg,
                      const std::vector<int>* precomputed_labels) {
  const Renderer renderer = dataset.make_renderer();
  const ScalePolicy& policy = dataset.scale_policy();
  const std::vector<const Scene*> frames = strided_train_frames(dataset, cfg);

  // Label-generation pass (Fig. 2): one optimal scale per training frame.
  std::vector<int> labels;
  if (precomputed_labels != nullptr) {
    labels = *precomputed_labels;
  } else {
    std::fprintf(
        stderr, "[regressor] generating optimal-scale labels for %zu frames\n",
        frames.size());
    labels = generate_optimal_scale_labels(detector, renderer, policy, frames,
                                           cfg.sreg, OptimalScaleConfig{});
  }
  {
    // Label distribution: the regressor can only be as adaptive as its
    // labels are diverse, so surface this in the training log.
    std::map<int, int> hist;
    for (int l : labels) ++hist[l];
    std::string msg = "[regressor] label histogram:";
    for (const auto& [scale, count] : hist)
      msg += " " + std::to_string(scale) + ":" + std::to_string(count);
    std::fprintf(stderr, "%s\n", msg.c_str());
  }

  Rng rng(cfg.seed);
  Rng scale_rng = rng.fork();

  Sgd::Options opt_cfg;
  opt_cfg.lr = cfg.base_lr;
  opt_cfg.momentum = 0.9f;
  opt_cfg.weight_decay = 1e-4f;
  Sgd opt(regressor->parameters(), opt_cfg);

  const auto steps_per_epoch = static_cast<long>(frames.size());
  double last_epoch_loss = 0.0;
  long last_epoch_count = 0;
  long step = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::vector<std::size_t> order(frames.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    for (std::size_t idx : order) {
      const float progress =
          static_cast<float>(step) / static_cast<float>(steps_per_epoch);
      opt.set_lr(progress >= cfg.lr_milestone ? cfg.base_lr * cfg.lr_decay
                                              : cfg.base_lr);

      // Input scale drawn uniformly from S_reg (Sec. 4.2).
      const int m = cfg.sreg.scales[static_cast<std::size_t>(scale_rng.uniform_int(
          0, cfg.sreg.count() - 1))];
      const Tensor image = renderer.render_at_scale(*frames[idx], m, policy);
      const Tensor& features = detector->forward(image);
      const float target = encode_scale_target(m, labels[idx], cfg.sreg);
      const float loss = regressor->train_step(features, target, &opt);
      if (epoch == cfg.epochs - 1) {
        last_epoch_loss += loss;
        ++last_epoch_count;
      }
      ++step;
    }
  }
  return last_epoch_count > 0
             ? static_cast<float>(last_epoch_loss / last_epoch_count)
             : 0.0f;
}

std::unique_ptr<ScaleRegressor> train_or_load_regressor(
    Detector* detector, const std::string& detector_key,
    const Dataset& dataset, const RegressorConfig& rcfg,
    const RegressorTrainConfig& tcfg, const std::string& cache_dir) {
  Rng init_rng(tcfg.seed ^ 0xa0761d6478bd642fULL);
  auto regressor = std::make_unique<ScaleRegressor>(rcfg, &init_rng);

  std::string cache_path;
  if (!cache_dir.empty()) {
    const std::string key = dataset.fingerprint() + "|" + detector_key + "|" +
                            rcfg.fingerprint() + "|" + tcfg.fingerprint();
    std::ostringstream os;
    os << cache_dir << "/regressor_" << std::hex << fnv1a(key) << ".bin";
    cache_path = os.str();
    std::vector<float> flat;
    if (file_exists(cache_path) && load_floats(cache_path, &flat)) {
      std::vector<Param*> params = regressor->parameters();
      if (unflatten_params(flat, params)) {
        std::fprintf(stderr, "[regressor] loaded cached regressor: %s\n",
                     cache_path.c_str());
        return regressor;
      }
    }
  }

  std::fprintf(stderr, "[regressor] training regressor (%s) on %s ...\n",
               rcfg.fingerprint().c_str(), dataset.name().c_str());
  const std::vector<int> labels = load_or_generate_labels(
      detector, detector_key, dataset, tcfg, cache_dir);
  const float mse =
      train_regressor(regressor.get(), detector, dataset, tcfg, &labels);
  std::fprintf(stderr, "[regressor] done, final-epoch MSE %.4f\n", mse);

  if (!cache_path.empty()) {
    make_dirs(cache_dir);
    std::vector<Param*> params = regressor->parameters();
    if (!save_floats(cache_path, flatten_params(params)))
      std::fprintf(stderr, "[regressor] warning: failed to write cache %s\n",
                   cache_path.c_str());
  }
  return regressor;
}

}  // namespace ada
