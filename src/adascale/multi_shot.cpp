#include "adascale/multi_shot.h"

#include <algorithm>
#include <cmath>

#include "detection/nms.h"

namespace ada {

std::vector<int> shots_around(int center, const ScaleSet& s, int count) {
  std::vector<int> ordered = s.scales;
  std::stable_sort(ordered.begin(), ordered.end(), [&](int a, int b) {
    const int da = std::abs(a - center), db = std::abs(b - center);
    if (da != db) return da < db;
    return a < b;  // tie: prefer the smaller (cheaper) scale
  });
  if (static_cast<int>(ordered.size()) > count)
    ordered.resize(static_cast<std::size_t>(count));
  return ordered;
}

MultiShotFrameOutput MultiShotPipeline::process(const Scene& frame) {
  MultiShotFrameOutput out;
  out.primary_scale = target_scale_;
  const std::vector<int> shots =
      shots_around(target_scale_, sreg_, 1 + cfg_.extra_shots);

  const int primary_h = policy_.render_h(shots[0]);
  const int primary_w = policy_.render_w(shots[0]);

  std::vector<Detection> merged;
  bool regressed = false;
  for (std::size_t k = 0; k < shots.size(); ++k) {
    const int scale = shots[k];
    const Tensor image = renderer_->render_at_scale(frame, scale, policy_);
    DetectionOutput shot = detector_->detect(image);
    out.detect_ms += shot.forward_ms;
    out.scales_used.push_back(scale);

    // The regressor reads the *primary* shot's deep features (the scale
    // Algorithm 1 would have used), keeping the scale dynamics identical to
    // the single-shot pipeline.
    if (!regressed) {
      out.regressed_t = regressor_->predict(detector_->features());
      out.regressor_ms = regressor_->last_predict_ms();
      regressed = true;
    }

    for (Detection& d : shot.detections) {
      d.box = rescale_box(d.box, shot.image_h, shot.image_w, primary_h,
                          primary_w);
      merged.push_back(std::move(d));
    }
  }

  // Merge shots with per-class NMS in the primary frame (matching the
  // detector's own suppression protocol), keep the detector's top-K.
  std::vector<int> keep = nms_detections(merged, cfg_.merge_nms);
  const int top_k = detector_->config().top_k;
  if (static_cast<int>(keep.size()) > top_k)
    keep.resize(static_cast<std::size_t>(top_k));

  out.detections.image_h = primary_h;
  out.detections.image_w = primary_w;
  out.detections.forward_ms = out.detect_ms;
  out.detections.detections.reserve(keep.size());
  for (int idx : keep)
    out.detections.detections.push_back(
        std::move(merged[static_cast<std::size_t>(idx)]));

  out.next_scale = decode_scale_target(out.regressed_t, target_scale_, sreg_);
  target_scale_ = out.next_scale;
  return out;
}

}  // namespace ada
