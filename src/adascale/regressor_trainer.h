// Training loop for the scale regressor (Sec. 4.2, "Scale Regressor"):
//   1. generate optimal-scale labels over the training frames with the
//      multi-scale-trained detector (the Fig. 2 label-generation pass);
//   2. for each training sample, draw the input scale uniformly from S_reg
//      so the regressor sees every dynamic it must learn;
//   3. train with MSE (Eq. 4) for two epochs, lr 1e-4 divided by 10 after
//      1.3 epochs, with all detector weights frozen.
#pragma once

#include <memory>
#include <string>

#include "adascale/optimal_scale.h"
#include "adascale/scale_regressor.h"
#include "adascale/scale_target.h"
#include "data/dataset.h"

namespace ada {

struct RegressorTrainConfig {
  ScaleSet sreg = ScaleSet::reg_default();
  // The paper fine-tunes its regressor for 2 epochs at lr 1e-4 on 3862
  // snippets; our from-scratch module sees two orders of magnitude fewer
  // frames, so the schedule is longer and hotter (same two-phase shape).
  int epochs = 12;
  float base_lr = 2e-3f;
  float lr_milestone = 8.0f;  ///< epochs
  float lr_decay = 0.1f;
  int frame_stride = 2;  ///< label/train on every k-th frame (see TrainConfig)
  std::uint64_t seed = 11;

  std::string fingerprint() const;
};

/// Trains `regressor` against `detector` (frozen) on the dataset's training
/// frames.  Returns the mean squared error over the final epoch.
/// `precomputed_labels` may carry optimal-scale labels for exactly the
/// strided training frames (from load_or_generate_labels); pass nullptr to
/// generate them in-place.
float train_regressor(ScaleRegressor* regressor, Detector* detector,
                      const Dataset& dataset, const RegressorTrainConfig& cfg,
                      const std::vector<int>* precomputed_labels = nullptr);

/// The label-generation pass of Fig. 2 with a disk cache: labels depend only
/// on (dataset, detector weights, S_reg, stride), so regressor-architecture
/// sweeps (Table 3) reuse them instead of re-running the detector at every
/// scale.  `detector_key` must identify the detector weights.  `cache_dir`
/// may be empty to disable caching.
std::vector<int> load_or_generate_labels(Detector* detector,
                                         const std::string& detector_key,
                                         const Dataset& dataset,
                                         const RegressorTrainConfig& cfg,
                                         const std::string& cache_dir);

/// Builds + trains (or loads from cache) a regressor for this detector.
/// `detector_key` should identify the detector weights (e.g. its training
/// fingerprint) so regressors trained against different detectors do not
/// collide in the cache.
std::unique_ptr<ScaleRegressor> train_or_load_regressor(
    Detector* detector, const std::string& detector_key,
    const Dataset& dataset, const RegressorConfig& rcfg,
    const RegressorTrainConfig& tcfg, const std::string& cache_dir);

}  // namespace ada
