#include "adascale/scale_target.h"

#include <cmath>

namespace ada {

namespace {

/// Shared Eq. (3) constants for a scale set.
struct Eq3 {
  float lo;    ///< m_min / m_max
  float span;  ///< m_max/m_min - m_min/m_max

  explicit Eq3(const ScaleSet& s)
      : lo(static_cast<float>(s.min()) / static_cast<float>(s.max())),
        span(static_cast<float>(s.max()) / static_cast<float>(s.min()) - lo) {}
};

}  // namespace

float encode_scale_target(int m, int m_opt, const ScaleSet& s) {
  const Eq3 k(s);
  const float ratio = static_cast<float>(m_opt) / static_cast<float>(m);
  return 2.0f * (ratio - k.lo) / k.span - 1.0f;
}

int decode_scale_target(float t, int current_scale, const ScaleSet& s) {
  const Eq3 k(s);
  const float ratio = (t + 1.0f) * 0.5f * k.span + k.lo;
  const float raw = ratio * static_cast<float>(current_scale);
  const int rounded = static_cast<int>(std::lround(raw));
  return std::clamp(rounded, s.min(), s.max());
}

}  // namespace ada
