// Greedy non-maximum suppression (paper protocol: threshold 0.3, then keep
// the top-300 most confident boxes).
#pragma once

#include <vector>

#include "detection/box.h"

namespace ada {

/// Returns the indices of kept boxes, in descending score order.  Suppresses
/// any box with IoU > `iou_threshold` against an already-kept box.
std::vector<int> nms(const std::vector<Box>& boxes,
                     const std::vector<float>& scores, float iou_threshold);

}  // namespace ada
