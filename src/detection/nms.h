// Greedy non-maximum suppression (paper protocol: threshold 0.3, then keep
// the top-300 most confident boxes).
#pragma once

#include <vector>

#include "detection/box.h"

namespace ada {

/// Returns the indices of kept boxes, in descending score order.  Suppresses
/// any box with IoU > `iou_threshold` against an already-kept box.
std::vector<int> nms(const std::vector<Box>& boxes,
                     const std::vector<float>& scores, float iou_threshold);

/// Per-class NMS (the released R-FCN protocol): boxes only suppress other
/// boxes of the same class, so overlapping objects of different classes can
/// both survive.  Returns kept indices in descending score order.  Classes
/// are processed independently — large batches run them in parallel on the
/// runtime thread pool.
std::vector<int> nms_per_class(const std::vector<Box>& boxes,
                               const std::vector<float>& scores,
                               const std::vector<int>& class_ids,
                               float iou_threshold);

/// Per-class NMS directly over a detection-like vector (anything with .box,
/// .score, .class_id members — Detection, EvalDetection).  Returns kept
/// indices into `dets` in descending score order.  Single suppression
/// protocol for every merge path: detector output, multi-shot merge,
/// multi-scale testing merge.
template <typename D>
std::vector<int> nms_detections(const std::vector<D>& dets,
                                float iou_threshold) {
  std::vector<Box> boxes;
  std::vector<float> scores;
  std::vector<int> classes;
  boxes.reserve(dets.size());
  scores.reserve(dets.size());
  classes.reserve(dets.size());
  for (const D& d : dets) {
    boxes.push_back(d.box);
    scores.push_back(d.score);
    classes.push_back(d.class_id);
  }
  return nms_per_class(boxes, scores, classes, iou_threshold);
}

}  // namespace ada
