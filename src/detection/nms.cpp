#include "detection/nms.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ada {

std::vector<int> nms(const std::vector<Box>& boxes,
                     const std::vector<float>& scores, float iou_threshold) {
  assert(boxes.size() == scores.size());
  std::vector<int> order(boxes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<std::size_t>(a)] >
           scores[static_cast<std::size_t>(b)];
  });

  std::vector<int> keep;
  std::vector<char> suppressed(boxes.size(), 0);
  for (int idx : order) {
    if (suppressed[static_cast<std::size_t>(idx)]) continue;
    keep.push_back(idx);
    const Box& kept = boxes[static_cast<std::size_t>(idx)];
    for (int other : order) {
      if (suppressed[static_cast<std::size_t>(other)] || other == idx) continue;
      if (iou(kept, boxes[static_cast<std::size_t>(other)]) > iou_threshold)
        suppressed[static_cast<std::size_t>(other)] = 1;
    }
  }
  return keep;
}

}  // namespace ada
