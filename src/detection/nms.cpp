#include "detection/nms.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "runtime/thread_pool.h"

namespace ada {

std::vector<int> nms(const std::vector<Box>& boxes,
                     const std::vector<float>& scores, float iou_threshold) {
  assert(boxes.size() == scores.size());
  std::vector<int> order(boxes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<std::size_t>(a)] >
           scores[static_cast<std::size_t>(b)];
  });

  std::vector<int> keep;
  std::vector<char> suppressed(boxes.size(), 0);
  for (int idx : order) {
    if (suppressed[static_cast<std::size_t>(idx)]) continue;
    keep.push_back(idx);
    const Box& kept = boxes[static_cast<std::size_t>(idx)];
    for (int other : order) {
      if (suppressed[static_cast<std::size_t>(other)] || other == idx) continue;
      if (iou(kept, boxes[static_cast<std::size_t>(other)]) > iou_threshold)
        suppressed[static_cast<std::size_t>(other)] = 1;
    }
  }
  return keep;
}

std::vector<int> nms_per_class(const std::vector<Box>& boxes,
                               const std::vector<float>& scores,
                               const std::vector<int>& class_ids,
                               float iou_threshold) {
  assert(boxes.size() == scores.size() && boxes.size() == class_ids.size());
  // Group indices by class, preserving original order within each group.
  std::vector<int> classes;
  std::vector<std::vector<int>> groups;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    const int c = class_ids[i];
    std::size_t g = 0;
    for (; g < classes.size(); ++g)
      if (classes[g] == c) break;
    if (g == classes.size()) {
      classes.push_back(c);
      groups.emplace_back();
    }
    groups[g].push_back(static_cast<int>(i));
  }

  // Classes suppress independently, so each group's NMS runs in parallel;
  // results are merged in fixed group order for determinism.
  std::vector<std::vector<int>> kept_per_group(groups.size());
  parallel_for(static_cast<std::int64_t>(groups.size()), 1,
               [&](std::int64_t gb_i, std::int64_t ge_i) {
                 for (std::int64_t g = gb_i; g < ge_i; ++g) {
                   const std::vector<int>& group =
                       groups[static_cast<std::size_t>(g)];
                   std::vector<Box> gb;
                   std::vector<float> gs;
                   gb.reserve(group.size());
                   gs.reserve(group.size());
                   for (int i : group) {
                     gb.push_back(boxes[static_cast<std::size_t>(i)]);
                     gs.push_back(scores[static_cast<std::size_t>(i)]);
                   }
                   for (int k : nms(gb, gs, iou_threshold))
                     kept_per_group[static_cast<std::size_t>(g)].push_back(
                         group[static_cast<std::size_t>(k)]);
                 }
               });
  std::vector<int> keep;
  for (const std::vector<int>& kept : kept_per_group)
    keep.insert(keep.end(), kept.begin(), kept.end());
  std::stable_sort(keep.begin(), keep.end(), [&](int a, int b) {
    return scores[static_cast<std::size_t>(a)] >
           scores[static_cast<std::size_t>(b)];
  });
  return keep;
}

}  // namespace ada
