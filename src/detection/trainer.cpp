#include "detection/trainer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "tensor/image_ops.h"
#include "util/file_io.h"

namespace ada {

std::string TrainConfig::fingerprint() const {
  std::ostringstream os;
  os << "train:S=";
  for (int s : train_scales) os << s << ',';
  os << ":ep=" << epochs << ":lr=" << base_lr << ":hflip=" << hflip_augment
     << ":stride=" << frame_stride << ":seed=" << seed;
  return os.str();
}

float train_detector(Detector* detector, const Dataset& dataset,
                     const TrainConfig& cfg) {
  Rng rng(cfg.seed);
  Rng scale_rng = rng.fork();
  Rng sample_rng = rng.fork();

  const Renderer renderer = dataset.make_renderer();
  const ScalePolicy& policy = dataset.scale_policy();
  std::vector<const Scene*> frames = dataset.train_frames();
  if (cfg.frame_stride > 1) {
    std::vector<const Scene*> strided;
    for (std::size_t i = 0; i < frames.size();
         i += static_cast<std::size_t>(cfg.frame_stride))
      strided.push_back(frames[i]);
    frames = std::move(strided);
  }

  Sgd::Options opt_cfg;
  opt_cfg.lr = cfg.base_lr;
  opt_cfg.momentum = 0.9f;
  opt_cfg.weight_decay = 5e-4f;
  Sgd opt(detector->parameters(), opt_cfg);

  const auto steps_per_epoch = static_cast<long>(frames.size());
  double last_epoch_loss = 0.0;
  long last_epoch_count = 0;
  long step = 0;
  const int log_every = std::max(1, cfg.epochs / 10);
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double epoch_loss = 0.0;
    std::vector<const Scene*> order = frames;
    rng.shuffle(order);
    for (const Scene* scene : order) {
      // lr schedule (milestones are fractions of total training).
      float lr = cfg.base_lr;
      const float progress =
          static_cast<float>(step) /
          static_cast<float>(steps_per_epoch * cfg.epochs);
      for (float ms : cfg.lr_milestones)
        if (progress >= ms) lr *= cfg.lr_decay;
      opt.set_lr(lr);

      const int scale = cfg.train_scales[static_cast<std::size_t>(
          scale_rng.uniform_int(0, static_cast<int>(cfg.train_scales.size()) - 1))];
      Tensor image = renderer.render_at_scale(*scene, scale, policy);
      std::vector<GtBox> gts = scene_ground_truth(*scene, image.h(), image.w());
      if (cfg.hflip_augment && sample_rng.uniform() < 0.5f) {
        Tensor flipped;
        flip_horizontal(image, &flipped);
        image = std::move(flipped);
        const float w = static_cast<float>(image.w());
        for (GtBox& g : gts) {
          const float x1 = g.x1;
          g.x1 = w - 1.0f - g.x2;
          g.x2 = w - 1.0f - x1;
        }
      }
      const float loss = detector->train_step(image, gts, &opt, &sample_rng);
      epoch_loss += loss;
      if (epoch == cfg.epochs - 1) {
        last_epoch_loss += loss;
        ++last_epoch_count;
      }
      ++step;
    }
    if (epoch % log_every == 0 || epoch == cfg.epochs - 1)
      std::fprintf(stderr, "[trainer] epoch %3d/%d mean loss %.4f (lr %.2g)\n",
                   epoch + 1, cfg.epochs,
                   epoch_loss / static_cast<double>(steps_per_epoch),
                   static_cast<double>(opt.lr()));
  }
  return last_epoch_count > 0
             ? static_cast<float>(last_epoch_loss / last_epoch_count)
             : 0.0f;
}

std::unique_ptr<Detector> train_or_load_detector(const Dataset& dataset,
                                                 const DetectorConfig& dcfg,
                                                 const TrainConfig& tcfg,
                                                 const std::string& cache_dir) {
  Rng init_rng(tcfg.seed ^ 0x9e3779b97f4a7c15ULL);
  auto detector = std::make_unique<Detector>(dcfg, &init_rng);

  std::string cache_path;
  if (!cache_dir.empty()) {
    const std::string key = dataset.fingerprint() + "|" + dcfg.fingerprint() +
                            "|" + tcfg.fingerprint();
    std::ostringstream os;
    os << cache_dir << "/detector_" << std::hex << fnv1a(key) << ".bin";
    cache_path = os.str();
    std::vector<float> flat;
    if (file_exists(cache_path) && load_floats(cache_path, &flat)) {
      std::vector<Param*> params = detector->parameters();
      if (unflatten_params(flat, params)) {
        std::fprintf(stderr, "[trainer] loaded cached detector: %s\n",
                     cache_path.c_str());
        return detector;
      }
      std::fprintf(stderr,
                   "[trainer] cache mismatch (architecture changed), "
                   "retraining: %s\n",
                   cache_path.c_str());
    }
  }

  std::fprintf(stderr, "[trainer] training detector (%s) on %s ...\n",
               tcfg.fingerprint().c_str(), dataset.name().c_str());
  const float final_loss = train_detector(detector.get(), dataset, tcfg);
  std::fprintf(stderr, "[trainer] done, final-epoch mean loss %.4f\n",
               final_loss);

  if (!cache_path.empty()) {
    make_dirs(cache_dir);
    std::vector<Param*> params = detector->parameters();
    if (!save_floats(cache_path, flatten_params(params)))
      std::fprintf(stderr, "[trainer] warning: failed to write cache %s\n",
                   cache_path.c_str());
  }
  return detector;
}

}  // namespace ada
