#include "detection/assign.h"

namespace ada {

std::vector<AnchorTarget> assign_anchors(const std::vector<Box>& anchors,
                                         const std::vector<GtBox>& gts,
                                         const AssignConfig& cfg) {
  std::vector<AnchorTarget> targets(anchors.size());
  if (gts.empty()) return targets;  // all background

  std::vector<int> best_anchor_for_gt(gts.size(), -1);
  std::vector<float> best_iou_for_gt(gts.size(), 0.0f);

  for (std::size_t a = 0; a < anchors.size(); ++a) {
    AnchorTarget& t = targets[a];
    for (std::size_t g = 0; g < gts.size(); ++g) {
      const float v = iou(anchors[a], Box::from_gt(gts[g]));
      if (v > t.max_iou) {
        t.max_iou = v;
        t.matched_gt = static_cast<int>(g);
      }
      if (v > best_iou_for_gt[g]) {
        best_iou_for_gt[g] = v;
        best_anchor_for_gt[g] = static_cast<int>(a);
      }
    }
    if (t.max_iou >= cfg.fg_iou) {
      t.label = gts[static_cast<std::size_t>(t.matched_gt)].class_id + 1;
    } else if (t.max_iou < cfg.bg_iou) {
      t.label = 0;
      // background keeps matched_gt for diagnostics only
    } else {
      t.label = -1;
    }
  }

  // Force-match: every GT claims its best anchor (if any overlap at all).
  for (std::size_t g = 0; g < gts.size(); ++g) {
    const int a = best_anchor_for_gt[g];
    if (a < 0 || best_iou_for_gt[g] <= 0.0f) continue;
    AnchorTarget& t = targets[static_cast<std::size_t>(a)];
    t.label = gts[g].class_id + 1;
    t.matched_gt = static_cast<int>(g);
    t.max_iou = best_iou_for_gt[g];
  }

  // Fill regression targets for all foreground anchors.
  for (std::size_t a = 0; a < anchors.size(); ++a) {
    AnchorTarget& t = targets[a];
    if (t.label > 0 && t.matched_gt >= 0)
      t.delta = encode_box(
          Box::from_gt(gts[static_cast<std::size_t>(t.matched_gt)]),
          anchors[a]);
  }
  return targets;
}

}  // namespace ada
