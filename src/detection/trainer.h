// Detector training loops reproducing Sec. 4.2 of the paper:
//   * fine-tune with multi-scale training: per image, draw the scale
//     uniformly from S_train (e.g. {600,480,360,240});
//   * lr 2.5e-4, divided by 10 after 1.3 and 2.6 of 4 epochs;
//   * single-image batches.
// Single-scale (SS) training is the degenerate S_train = {600}.
//
// Trained weights are cached on disk keyed by (dataset, detector, S_train,
// seed) so every bench binary trains at most once per configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "detection/detector.h"

namespace ada {

struct TrainConfig {
  std::vector<int> train_scales = {600, 480, 360, 240};  ///< S_train
  // The paper fine-tunes a pretrained R-FCN for 4 epochs at lr 2.5e-4 with
  // milestones at 1.3/2.6 epochs.  We train from scratch, so the schedule is
  // longer and hotter while keeping the same shape (two 10x decays at ~1/3
  // and ~2/3 of training); milestones are expressed as fractions of the
  // total epochs.  Documented substitution in DESIGN.md.
  int epochs = 48;
  float base_lr = 0.01f;
  std::vector<float> lr_milestones = {0.6f, 0.85f};  ///< fraction of training
  float lr_decay = 0.1f;
  bool hflip_augment = true;  ///< horizontal flip augmentation (50% chance)
  // Consecutive frames of a snippet are nearly identical; training on every
  // `frame_stride`-th frame halves the epoch cost with no measurable mAP
  // loss (single-core budget).  1 = use every frame.
  int frame_stride = 2;
  std::uint64_t seed = 7;

  std::string fingerprint() const;
};

/// Trains `detector` on the dataset's training frames. Returns the mean loss
/// of the final epoch.
float train_detector(Detector* detector, const Dataset& dataset,
                     const TrainConfig& cfg);

/// Builds a detector for `dataset` and either loads cached weights from
/// `cache_dir` or trains + saves them.  `cache_dir` may be empty to disable
/// caching.  The returned pointer is never null.
std::unique_ptr<Detector> train_or_load_detector(const Dataset& dataset,
                                                 const DetectorConfig& dcfg,
                                                 const TrainConfig& tcfg,
                                                 const std::string& cache_dir);

}  // namespace ada
