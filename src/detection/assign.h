// Anchor-to-ground-truth assignment for training, following the paper's
// convention (Sec. 3.1): a box is foreground when some ground truth overlaps
// it with IoU > 0.5; clearly-background anchors (IoU < 0.4) are negatives;
// the band in between is ignored.  Each GT additionally force-matches its
// best anchor so no object goes unsupervised.
#pragma once

#include <array>
#include <vector>

#include "detection/box.h"

namespace ada {

/// Per-anchor training target.
struct AnchorTarget {
  // -1 = ignore, 0 = background, c >= 1 = foreground class (c-1 in GT ids).
  int label = 0;
  std::array<float, 4> delta{0, 0, 0, 0};  ///< regression target (fg only)
  int matched_gt = -1;
  float max_iou = 0.0f;
};

struct AssignConfig {
  float fg_iou = 0.5f;
  // No ignore band (bg_iou == fg_iou): synthetic ground truth is exact, so
  // near-miss anchors are unambiguous negatives.  Leaving the usual
  // [0.4, 0.5) band untrained lets those anchors fire as confident false
  // positives at test time (worst at large input scales, where the near-miss
  // ring around big objects is widest).
  float bg_iou = 0.5f;
};

/// Computes targets for every anchor.
std::vector<AnchorTarget> assign_anchors(const std::vector<Box>& anchors,
                                         const std::vector<GtBox>& gts,
                                         const AssignConfig& cfg);

}  // namespace ada
