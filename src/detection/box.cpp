#include "detection/box.h"

#include <algorithm>
#include <cmath>

namespace ada {

float iou(const Box& a, const Box& b) {
  const float ix1 = std::max(a.x1, b.x1);
  const float iy1 = std::max(a.y1, b.y1);
  const float ix2 = std::min(a.x2, b.x2);
  const float iy2 = std::min(a.y2, b.y2);
  const float iw = ix2 - ix1;
  const float ih = iy2 - iy1;
  if (iw <= 0.0f || ih <= 0.0f) return 0.0f;
  const float inter = iw * ih;
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

std::array<float, 4> encode_box(const Box& target, const Box& anchor) {
  const float aw = std::max(anchor.width(), 1.0f);
  const float ah = std::max(anchor.height(), 1.0f);
  const float tw = std::max(target.width(), 1.0f);
  const float th = std::max(target.height(), 1.0f);
  return {
      (target.cx() - anchor.cx()) / aw,
      (target.cy() - anchor.cy()) / ah,
      std::log(tw / aw),
      std::log(th / ah),
  };
}

Box decode_box(const std::array<float, 4>& delta, const Box& anchor) {
  const float aw = std::max(anchor.width(), 1.0f);
  const float ah = std::max(anchor.height(), 1.0f);
  // Clamp exponent args to avoid inf boxes from an untrained head.
  const float tw = std::exp(std::min(delta[2], 4.0f)) * aw;
  const float th = std::exp(std::min(delta[3], 4.0f)) * ah;
  const float cx = anchor.cx() + delta[0] * aw;
  const float cy = anchor.cy() + delta[1] * ah;
  return Box{cx - 0.5f * tw, cy - 0.5f * th, cx + 0.5f * tw, cy + 0.5f * th};
}

Box clip_box(const Box& b, int img_h, int img_w) {
  Box out;
  out.x1 = std::clamp(b.x1, 0.0f, static_cast<float>(img_w - 1));
  out.y1 = std::clamp(b.y1, 0.0f, static_cast<float>(img_h - 1));
  out.x2 = std::clamp(b.x2, 0.0f, static_cast<float>(img_w - 1));
  out.y2 = std::clamp(b.y2, 0.0f, static_cast<float>(img_h - 1));
  return out;
}

Box rescale_box(const Box& b, int from_h, int from_w, int to_h, int to_w) {
  const float sy = static_cast<float>(to_h) / static_cast<float>(from_h);
  const float sx = static_cast<float>(to_w) / static_cast<float>(from_w);
  return Box{b.x1 * sx, b.y1 * sy, b.x2 * sx, b.y2 * sy};
}

}  // namespace ada
