// Single-stage convolutional object detector.
//
// This is the reproduction's stand-in for the paper's R-FCN/ResNet-101: a
// small backbone (3 conv/pool stages, output stride 8) with dense per-anchor
// classification and box-regression heads.  What matters for AdaScale is
// preserved exactly:
//   * training loss has the Eq. (1) form: softmax CE + smooth-L1 on matched
//     foreground anchors;
//   * the backbone's last feature map ("deep features") feeds the scale
//     regressor, as in Fig. 4 of the paper;
//   * anchors span a bounded size range, so scale choice matters;
//   * inference applies NMS(0.3) and keeps the top-300 boxes (Sec. 4.2).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "detection/anchors.h"
#include "detection/assign.h"
#include "nn/layers.h"
#include "nn/sgd.h"
#include "runtime/exec_plan.h"
#include "runtime/exec_policy.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ada {

/// One output detection, self-contained enough for the AdaScale per-box loss
/// metric (Sec. 3.1) to be computed without re-running the network.
struct Detection {
  Box box;                     ///< decoded, clipped to the image
  int class_id = 0;            ///< 0-based foreground class
  float score = 0.0f;          ///< max foreground softmax probability
  std::vector<float> probs;    ///< full softmax (index 0 = background)
  std::array<float, 4> delta{0, 0, 0, 0};  ///< raw regression output
  Box anchor;                  ///< the anchor this detection came from
};

/// Full per-image inference output.
struct DetectionOutput {
  std::vector<Detection> detections;  ///< NMS'd, score-sorted, top-K
  int image_h = 0, image_w = 0;       ///< resolution the image was processed at
  double forward_ms = 0.0;            ///< backbone+head wall-clock time
};

/// Architecture and inference hyperparameters.
struct DetectorConfig {
  int num_classes = 30;       ///< foreground classes (background is implicit)
  int c1 = 16, c2 = 32, c3 = 48;  ///< backbone stage widths
  AnchorConfig anchors;
  float nms_threshold = 0.3f;   ///< paper Sec. 4.2
  int top_k = 300;              ///< paper Sec. 4.2
  float score_threshold = 0.05f;  ///< pre-NMS candidate cutoff
  float reg_loss_weight = 1.0f;   ///< lambda in Eq. (1)
  int max_fg_samples = 48;
  int bg_per_fg = 3;
  int min_bg_samples = 16;

  std::string fingerprint() const;
};

/// Trainable detector.  Not copyable (owns layer state); movable via
/// unique_ptr at call sites.
class Detector {
 public:
  explicit Detector(const DetectorConfig& cfg, Rng* rng);

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  const DetectorConfig& config() const { return cfg_; }

  /// Runs backbone + heads. Returns the deep feature map (backbone output)
  /// by const reference valid until the next forward.
  const Tensor& forward(const Tensor& image);

  /// Full inference: forward, decode, NMS, top-K.
  DetectionOutput detect(const Tensor& image);

  /// Batched inference over an (N,3,H,W) tensor of frames rendered at the
  /// same scale.  The backbone and heads run ONCE for the whole batch — one
  /// sgemm per conv layer with the images concatenated along the GEMM N axis
  /// — and the per-image decode/NMS work fans out over parallel_for.
  /// Element i is bit-identical to detect(images.image(i)); forward_ms on
  /// each output is the batch wall-clock amortized per image.  After the
  /// call features() holds the batched (N,C,fh,fw) deep-feature map (input
  /// to ScaleRegressor::predict_batch).
  std::vector<DetectionOutput> detect_batch(const Tensor& images);

  /// Inference reusing an externally produced feature map (the DFF path:
  /// features warped from a key frame instead of computed by the backbone).
  DetectionOutput detect_from_features(const Tensor& features, int image_h,
                                       int image_w);

  /// Post-training quantization: runs one fp32 forward per calibration
  /// image with activation-range observation on, then freezes INT8 state
  /// (per-output-channel s8 weights + per-tensor u8 activation qparams,
  /// tensor/qgemm.h) into every backbone conv and both heads.  After this,
  /// detect()/detect_batch() run fully INT8 whenever ADASCALE_GEMM=int8;
  /// other backends and training keep using the fp32 weights (which stay
  /// authoritative — re-quantize after further training).
  void quantize(const std::vector<Tensor>& calibration_images);

  /// True once quantize() has frozen INT8 state.
  bool quantized() const { return cls_head_.is_quantized(); }

  /// Sets this detector's execution policy (backend / precision —
  /// runtime/exec_policy.h), propagating it to every layer and discarding
  /// cached plans.  Policies are per-model state: an int8 detector and an
  /// fp32 regressor compose into mixed-precision serving with no global
  /// switch, and clone_detector copies the policy onto stream/context
  /// clones.  Resolution order: explicit (pinned) policy > env default.
  void set_execution_policy(const ExecutionPolicy& policy);

  /// The policy this detector resolves kernels from.
  const ExecutionPolicy& execution_policy() const { return policy_; }

  /// The cached ahead-of-time plan for an (n, img_h, img_w) input under
  /// the current resolved backend — built lazily on first use (the
  /// inference path calls this per forward; steady state is one map
  /// lookup).  Public as the inspection/tuning seam: tools/plan_dump
  /// prints these.  Invalidated by quantize(), training re-entry, and
  /// policy changes.
  const ExecutionPlan& plan_for(int n, int img_h, int img_w);

  /// Number of plans currently cached (tests assert build-once/reuse and
  /// invalidation through this).
  std::size_t cached_plan_count() const { return plans_->size(); }

  /// Re-points this detector's parameter storage and plan cache at `src`'s
  /// (the shared-immutable-weights serving split): parameters() returns
  /// the SAME Param objects as src's afterwards, and plans built by either
  /// instance serve both.  Per-instance state (quantized tables,
  /// activation caches, execution policy) stays per-detector, so sharers
  /// may pin different policies.  Used by clone_detector_shared; sharers
  /// must not train.
  void share_storage_with(Detector* src);

  /// Per-layer calibration summaries of the quantized layers, in forward
  /// order (empty before quantize()).  Reporting only — tools/calibrate.
  std::vector<QuantSummary> quant_summaries();

  /// Copies `src`'s quantization state (calibrated activation ranges) onto
  /// this detector's structurally identical layers and re-freezes INT8
  /// weights from this detector's (already copied) fp32 parameters.  Used
  /// by clone_detector so MultiStreamRunner streams and BatchScheduler
  /// contexts serve INT8 exactly like the original.
  void quantize_like(Detector* src);

  /// One SGD step on a single image; returns the Eq. (1) loss value.
  /// `gts` must be in the image's pixel coordinates.
  float train_step(const Tensor& image, const std::vector<GtBox>& gts,
                   Sgd* opt, Rng* rng);

  /// Evaluation-only loss (no gradients); used by tests.
  float compute_loss(const Tensor& image, const std::vector<GtBox>& gts,
                     Rng* rng);

  /// Deep-feature channel count (input to the scale regressor).
  int feature_channels() const { return cfg_.c3; }

  /// Deep features of the most recent forward()/detect() call.
  const Tensor& features() const { return features_; }

  /// All learnable parameters (for optimizers and serialization).
  std::vector<Param*> parameters();

  /// One convolution of the forward stack with the input resolution it
  /// runs at.
  struct ConvStackEntry {
    const char* name;
    ConvSpec spec;
    int in_h = 0, in_w = 0;
  };

  /// The convolutions forward() executes at the given image size, in
  /// execution order — the single source of truth for forward_macs and for
  /// perf tooling (tools/bench_report) so shape lists cannot drift from
  /// the real architecture.
  std::vector<ConvStackEntry> conv_stack(int img_h, int img_w) const;

  /// Multiply-accumulate count of one forward at the given image size;
  /// proportional to the ideal runtime at that scale.
  long long forward_macs(int img_h, int img_w) const;

 private:
  struct HeadOutputs {
    Tensor cls;  ///< (1, A*(K+1), fh, fw)
    Tensor reg;  ///< (1, A*4, fh, fw)
  };

  /// Shared loss computation; when train is true, also backprops and expects
  /// the caller to step the optimizer.
  float loss_impl(const Tensor& image, const std::vector<GtBox>& gts,
                  Rng* rng, bool train);

  /// Gathers one anchor's class logits for image `n` of the head output.
  void anchor_logits(const Tensor& cls, int n, int cell, int a,
                     float* out) const;

  /// Decodes image `n` of the current head outputs: candidates above the
  /// score threshold, per-class NMS, top-K.  Shared by the single-image and
  /// batched paths so they cannot drift.
  DetectionOutput decode_image(int n, int image_h, int image_w,
                               const std::vector<Box>& anchors) const;

  void invalidate_plans() { plans_->clear(); }

  DetectorConfig cfg_;
  Sequential backbone_;
  Conv2dLayer cls_head_;
  Conv2dLayer reg_head_;
  ExecutionPolicy policy_;  ///< unpinned by default (env-following)
  bool use_plans_ = true;   ///< off during training/calibration forwards
  /// Plans keyed by (n, h, w, resolved backend) — the backend key is what
  /// lets an *unpinned* policy keep following env-default flips without
  /// serving stale kernel choices.  shared_ptr-owned so weight-aliased
  /// clones share one cache (runtime/exec_plan.h PlanCache).
  std::shared_ptr<PlanCache> plans_ = std::make_shared<PlanCache>();
  Tensor features_;  ///< last backbone output
  HeadOutputs heads_;
};

/// Deep-copies a detector: same architecture/config, parameter values copied
/// from `src`.  Every concurrent user (MultiStreamRunner stream,
/// BatchScheduler context) needs its own copy because Detector caches
/// activations between forward and detect.
std::unique_ptr<Detector> clone_detector(Detector* src);

/// Clones a detector for pooled serving: per-instance state (activation
/// caches, quantized tables, policy) is its own, but parameter storage and
/// the plan cache are ALIASED to `src`'s via share_storage_with — N serving
/// contexts hold one resident fp32 weight copy.  Sharers must not train.
std::unique_ptr<Detector> clone_detector_shared(Detector* src);

}  // namespace ada
