// Axis-aligned boxes, IoU, and the Fast R-CNN box parametrization used by
// both the detector's regression head (Eq. 1's Lreg operates on these
// deltas) and the AdaScale per-box loss metric.
#pragma once

#include <array>

#include "data/scene.h"

namespace ada {

/// Detection-space box (pixel coordinates, x1<=x2, y1<=y2).
struct Box {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  float width() const { return x2 - x1; }
  float height() const { return y2 - y1; }
  float area() const {
    float w = width(), h = height();
    return (w > 0 && h > 0) ? w * h : 0.0f;
  }
  float cx() const { return 0.5f * (x1 + x2); }
  float cy() const { return 0.5f * (y1 + y2); }

  static Box from_gt(const GtBox& g) { return Box{g.x1, g.y1, g.x2, g.y2}; }
};

/// Jaccard overlap (intersection over union); 0 for degenerate boxes.
float iou(const Box& a, const Box& b);

/// Encodes `target` relative to `anchor` as (tx, ty, tw, th):
/// tx = (cx_t - cx_a)/w_a, tw = log(w_t / w_a), etc.
std::array<float, 4> encode_box(const Box& target, const Box& anchor);

/// Inverse of encode_box.
Box decode_box(const std::array<float, 4>& delta, const Box& anchor);

/// Clips a box to the image extent [0, w-1] x [0, h-1].
Box clip_box(const Box& b, int img_h, int img_w);

/// Rescales a box from one image resolution to another (used to map
/// detections made at a reduced scale back to a common reporting frame).
Box rescale_box(const Box& b, int from_h, int from_w, int to_h, int to_w);

}  // namespace ada
