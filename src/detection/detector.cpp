#include "detection/detector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "detection/nms.h"
#include "runtime/scratch.h"
#include "runtime/thread_pool.h"
#include "tensor/loss.h"
#include "util/timer.h"

namespace ada {

std::string DetectorConfig::fingerprint() const {
  std::ostringstream os;
  os << "det:v5:k=" << num_classes << ":c=" << c1 << '/' << c2 << '/' << c3
     << ":stride=" << anchors.stride << ":sizes=";
  for (float s : anchors.sizes) os << s << ',';
  os << ":aspects=";
  for (float a : anchors.aspects) os << a << ',';
  os << ":nms=" << nms_threshold << ":topk=" << top_k;
  return os.str();
}

Detector::Detector(const DetectorConfig& cfg, Rng* rng)
    : cfg_(cfg),
      cls_head_(cfg.c3, cfg.anchors.per_cell() * (cfg.num_classes + 1), 1, 1,
                0),
      reg_head_(cfg.c3, cfg.anchors.per_cell() * 4, 1, 1, 0) {
  // Backbone: three conv/pool stages to stride 8, plus one stride-8 conv
  // that widens the receptive field for large objects.  Every conv fuses
  // bias+ReLU into the GEMM write-out (one pass over each activation tensor
  // instead of three: conv write, relu read+write, relu input cache).
  auto* conv1 =
      backbone_.emplace<Conv2dLayer>(3, cfg.c1, 3, 1, 1, 1, /*fuse_relu=*/true);
  backbone_.emplace<MaxPool2Layer>();
  auto* conv2 = backbone_.emplace<Conv2dLayer>(cfg.c1, cfg.c2, 3, 1, 1, 1,
                                               /*fuse_relu=*/true);
  backbone_.emplace<MaxPool2Layer>();
  auto* conv3 = backbone_.emplace<Conv2dLayer>(cfg.c2, cfg.c3, 3, 1, 1, 1,
                                               /*fuse_relu=*/true);
  backbone_.emplace<MaxPool2Layer>();
  // Dilation 4 at stride 8 grows the receptive field from ~38 px to ~86 px;
  // without it the heads see a window far smaller than the ~100-140 px
  // objects at scale 600 and cannot localize them (mAP at 600 collapses).
  auto* conv4 = backbone_.emplace<Conv2dLayer>(cfg.c3, cfg.c3, 3, 1, 4,
                                               /*dilation=*/4,
                                               /*fuse_relu=*/true);

  // Layers cache backward state by default; this object owns its training
  // entry points (loss_impl toggles the flag around the forward), so keep
  // the hot inference path copy-free.
  backbone_.set_training(false);
  cls_head_.set_training(false);
  reg_head_.set_training(false);

  conv1->init_he(rng);
  conv2->init_he(rng);
  conv3->init_he(rng);
  conv4->init_he(rng);
  cls_head_.init_he(rng);
  reg_head_.init_he(rng);
  // Bias the background logit up so early training is not drowned in
  // false positives (standard single-stage detector initialization trick).
  const int kp1 = cfg_.num_classes + 1;
  Tensor& cb = cls_head_.bias().value;
  for (int a = 0; a < cfg_.anchors.per_cell(); ++a)
    cb[static_cast<std::size_t>(a * kp1)] = 2.0f;
}

void Detector::set_execution_policy(const ExecutionPolicy& policy) {
  policy_ = policy;
  backbone_.set_policy(policy);
  cls_head_.set_policy(policy);
  reg_head_.set_policy(policy);
  invalidate_plans();
}

const ExecutionPlan& Detector::plan_for(int n, int img_h, int img_w) {
  const GemmBackend be = policy_.resolve();
  const auto key = std::make_tuple(n, img_h, img_w, static_cast<int>(be));
  // The cache may be shared with weight-aliased clones serving on other
  // threads; the returned reference stays valid outside the lock because
  // std::map nodes never relocate and clear() only runs at setup time.
  std::lock_guard<std::mutex> lk(plans_->mu);
  auto it = plans_->plans.find(key);
  if (it == plans_->plans.end()) {
    ExecutionPlan plan;
    plan.input = PlanShape{n, 3, img_h, img_w};
    plan.policy = policy_.name();
    PlanShape shape = plan.input;
    backbone_.plan_forward(&shape, &plan);
    // Both heads read the backbone output; plan them on copies of the
    // feature shape in the order forward() runs them.
    PlanShape cls_in = shape;
    cls_head_.plan_forward(&cls_in, &plan);
    PlanShape reg_in = shape;
    reg_head_.plan_forward(&reg_in, &plan);
    plan.finalize();
    it = plans_->plans.emplace(key, std::move(plan)).first;
  }
  return it->second;
}

const Tensor& Detector::forward(const Tensor& image) {
  if (use_plans_) {
    const ExecutionPlan& plan = plan_for(image.n(), image.h(), image.w());
    // Pre-size this thread's arena to the plan's exact peak, so even the
    // first forward at this scale grows nothing mid-kernel.
    scratch_arena().reserve(plan.arena_floats);
    PlanCursor pc(&plan);
    backbone_.forward_planned(image, &features_, &pc);
    cls_head_.forward_planned(features_, &heads_.cls, &pc);
    reg_head_.forward_planned(features_, &heads_.reg, &pc);
    return features_;
  }
  backbone_.forward(image, &features_);
  cls_head_.forward(features_, &heads_.cls);
  reg_head_.forward(features_, &heads_.reg);
  return features_;
}

void Detector::anchor_logits(const Tensor& cls, int n, int cell, int a,
                             float* out) const {
  const int kp1 = cfg_.num_classes + 1;
  const int fw = cls.w();
  const int i = cell / fw;
  const int j = cell % fw;
  for (int c = 0; c < kp1; ++c) out[c] = cls.at(n, a * kp1 + c, i, j);
}

DetectionOutput Detector::detect(const Tensor& image) {
  Timer timer;
  forward(image);
  DetectionOutput out = detect_from_features(features_, image.h(), image.w());
  out.forward_ms = timer.elapsed_ms();
  return out;
}

std::vector<DetectionOutput> Detector::detect_batch(const Tensor& images) {
  Timer timer;
  forward(images);
  const std::vector<Box> anchors =
      generate_anchors(cfg_.anchors, heads_.cls.h(), heads_.cls.w());
  std::vector<DetectionOutput> outs(static_cast<std::size_t>(images.n()));
  // Per-image decode + NMS own disjoint output slots; NMS's own per-class
  // parallel_for nests inline, so the split stays deterministic.
  parallel_for(images.n(), 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n)
      outs[static_cast<std::size_t>(n)] =
          decode_image(static_cast<int>(n), images.h(), images.w(), anchors);
  });
  const double amortized_ms =
      timer.elapsed_ms() / static_cast<double>(std::max(images.n(), 1));
  for (DetectionOutput& out : outs) out.forward_ms = amortized_ms;
  return outs;
}

DetectionOutput Detector::decode_image(int n, int image_h, int image_w,
                                       const std::vector<Box>& anchors) const {
  const Tensor& cls = heads_.cls;
  const Tensor& reg = heads_.reg;
  const int fh = cls.h(), fw = cls.w();
  const int per_cell = cfg_.anchors.per_cell();
  const int kp1 = cfg_.num_classes + 1;

  // Collect candidates above the score threshold.
  std::vector<Detection> cand;
  std::vector<float> logits(static_cast<std::size_t>(kp1));
  std::vector<float> probs(static_cast<std::size_t>(kp1));
  for (int cell = 0; cell < fh * fw; ++cell) {
    for (int a = 0; a < per_cell; ++a) {
      anchor_logits(cls, n, cell, a, logits.data());
      softmax_span(logits.data(), kp1, probs.data());
      int best_c = 0;
      float best_p = 0.0f;
      for (int c = 1; c < kp1; ++c)
        if (probs[static_cast<std::size_t>(c)] > best_p) {
          best_p = probs[static_cast<std::size_t>(c)];
          best_c = c;
        }
      if (best_c == 0 || best_p < cfg_.score_threshold) continue;

      const int i = cell / fw, j = cell % fw;
      std::array<float, 4> delta;
      for (int d = 0; d < 4; ++d) delta[static_cast<std::size_t>(d)] = reg.at(n, a * 4 + d, i, j);
      const Box& anchor = anchors[static_cast<std::size_t>(cell * per_cell + a)];
      Box box = clip_box(decode_box(delta, anchor), image_h, image_w);
      if (box.width() < 1.0f || box.height() < 1.0f) continue;

      Detection det;
      det.box = box;
      det.class_id = best_c - 1;
      det.score = best_p;
      det.probs = probs;
      det.delta = delta;
      det.anchor = anchor;
      cand.push_back(std::move(det));
    }
  }

  // Per-class NMS (the released R-FCN protocol) + top-K.  Class-agnostic
  // suppression here loses overlapping objects of different classes — the
  // synthetic scenes occlude heavily, so that costs a large fraction of
  // recall.
  std::vector<int> keep = nms_detections(cand, cfg_.nms_threshold);
  if (static_cast<int>(keep.size()) > cfg_.top_k) keep.resize(static_cast<std::size_t>(cfg_.top_k));

  DetectionOutput out;
  out.image_h = image_h;
  out.image_w = image_w;
  out.detections.reserve(keep.size());
  for (int idx : keep) out.detections.push_back(std::move(cand[static_cast<std::size_t>(idx)]));
  return out;
}

DetectionOutput Detector::detect_from_features(const Tensor& features,
                                               int image_h, int image_w) {
  Timer timer;
  // If called externally (DFF path), recompute heads on given features.
  if (&features != &features_) {
    cls_head_.forward(features, &heads_.cls);
    reg_head_.forward(features, &heads_.reg);
  }
  const std::vector<Box> anchors =
      generate_anchors(cfg_.anchors, heads_.cls.h(), heads_.cls.w());
  DetectionOutput out = decode_image(0, image_h, image_w, anchors);
  out.forward_ms = timer.elapsed_ms();
  return out;
}

float Detector::loss_impl(const Tensor& image, const std::vector<GtBox>& gts,
                          Rng* rng, bool train) {
  // Let the layers cache their backward state (input copies, fused ReLU
  // masks) only when a backward pass is actually coming; plain
  // detect()/forward() stays copy-free.  Toggled back off at the end of
  // this function — after the backward — which also releases the cached
  // activation tensors.
  backbone_.set_training(train);
  cls_head_.set_training(train);
  reg_head_.set_training(train);
  // Training forwards must run eagerly (backward state, fp32 kernels), and
  // training-mode re-entry invalidates cached plans: the weights the plans'
  // int8 tables were frozen from are about to change.
  use_plans_ = false;
  if (train) invalidate_plans();
  forward(image);
  const Tensor& cls = heads_.cls;
  const Tensor& reg = heads_.reg;
  const int fh = cls.h(), fw = cls.w();
  const int per_cell = cfg_.anchors.per_cell();
  const int kp1 = cfg_.num_classes + 1;

  const std::vector<Box> anchors = generate_anchors(cfg_.anchors, fh, fw);
  const std::vector<AnchorTarget> targets =
      assign_anchors(anchors, gts, AssignConfig{});

  // Sample anchors: all foreground (capped), bg_per_fg background per fg.
  std::vector<int> fg, bg;
  for (std::size_t a = 0; a < targets.size(); ++a) {
    if (targets[a].label > 0)
      fg.push_back(static_cast<int>(a));
    else if (targets[a].label == 0)
      bg.push_back(static_cast<int>(a));
  }
  rng->shuffle(fg);
  rng->shuffle(bg);
  if (static_cast<int>(fg.size()) > cfg_.max_fg_samples)
    fg.resize(static_cast<std::size_t>(cfg_.max_fg_samples));
  const int want_bg = std::max(cfg_.min_bg_samples,
                               static_cast<int>(fg.size()) * cfg_.bg_per_fg);
  if (static_cast<int>(bg.size()) > want_bg) {
    // Online hard-negative mining: half of the background budget goes to the
    // highest-loss negatives (anchors the classifier currently mistakes for
    // objects — typically clutter), half stays random.  Pure random sampling
    // almost never revisits the few clutter anchors among thousands of easy
    // ones, leaving confident false positives untrained.
    const int hard_n = want_bg / 2;
    std::vector<float> bg_loss(bg.size());
    std::vector<float> lg(static_cast<std::size_t>(kp1));
    for (std::size_t k = 0; k < bg.size(); ++k) {
      const int cell = bg[k] / per_cell;
      const int a = bg[k] % per_cell;
      anchor_logits(cls, 0, cell, a, lg.data());
      bg_loss[k] = softmax_cross_entropy_span(lg.data(), kp1, 0, nullptr);
    }
    std::vector<int> idx(bg.size());
    for (std::size_t k = 0; k < idx.size(); ++k) idx[k] = static_cast<int>(k);
    std::partial_sort(idx.begin(), idx.begin() + hard_n, idx.end(),
                      [&](int a, int b) { return bg_loss[static_cast<std::size_t>(a)] >
                                                 bg_loss[static_cast<std::size_t>(b)]; });
    std::vector<int> chosen;
    chosen.reserve(static_cast<std::size_t>(want_bg));
    for (int k = 0; k < hard_n; ++k)
      chosen.push_back(bg[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])]);
    // bg is already shuffled; walk it for the random half, skipping the
    // hard picks.
    std::vector<char> taken(bg.size(), 0);
    for (int k = 0; k < hard_n; ++k) taken[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])] = 1;
    for (std::size_t k = 0; k < bg.size() && static_cast<int>(chosen.size()) < want_bg; ++k)
      if (!taken[k]) chosen.push_back(bg[k]);
    bg = std::move(chosen);
  }

  Tensor dcls, dreg;
  if (train) {
    dcls = Tensor(1, cls.c(), fh, fw);
    dreg = Tensor(1, reg.c(), fh, fw);
  }

  // Foreground and background classification losses are normalized
  // *separately* and averaged: with a shared mean the 3:1 background
  // majority dominates and the classifier collapses to "everything is
  // background" (observed during calibration; the paper starts from a
  // pretrained R-FCN and never faces this cold-start regime).
  const float fg_norm =
      0.5f / static_cast<float>(std::max<std::size_t>(fg.size(), 1));
  const float bg_norm =
      0.5f / static_cast<float>(std::max<std::size_t>(bg.size(), 1));
  const float reg_norm = 1.0f / static_cast<float>(std::max<std::size_t>(fg.size(), 1));

  double total = 0.0;
  std::vector<float> logits(static_cast<std::size_t>(kp1));
  std::vector<float> dlogits(static_cast<std::size_t>(kp1));
  auto process = [&](int flat_a, bool is_fg) {
    const int cell = flat_a / per_cell;
    const int a = flat_a % per_cell;
    const int i = cell / fw, j = cell % fw;
    const float cls_norm = is_fg ? fg_norm : bg_norm;
    anchor_logits(cls, 0, cell, a, logits.data());
    std::fill(dlogits.begin(), dlogits.end(), 0.0f);
    const AnchorTarget& t = targets[static_cast<std::size_t>(flat_a)];
    const float lcls = softmax_cross_entropy_span(
        logits.data(), kp1, t.label > 0 ? t.label : 0,
        train ? dlogits.data() : nullptr);
    total += static_cast<double>(lcls) * cls_norm;
    if (train)
      for (int c = 0; c < kp1; ++c)
        dcls.at(0, a * kp1 + c, i, j) += dlogits[static_cast<std::size_t>(c)] * cls_norm;

    if (is_fg) {
      float pred[4], dpred[4] = {0, 0, 0, 0};
      for (int d = 0; d < 4; ++d) pred[d] = reg.at(0, a * 4 + d, i, j);
      const float lreg =
          smooth_l1(pred, t.delta.data(), 4, train ? dpred : nullptr);
      total += static_cast<double>(cfg_.reg_loss_weight) * lreg * reg_norm;
      if (train)
        for (int d = 0; d < 4; ++d)
          dreg.at(0, a * 4 + d, i, j) +=
              cfg_.reg_loss_weight * dpred[d] * reg_norm;
    }
  };
  for (int a : fg) process(a, true);
  for (int a : bg) process(a, false);

  if (train) {
    Tensor dfeat_cls(features_.n(), features_.c(), features_.h(),
                     features_.w());
    Tensor dfeat_reg(features_.n(), features_.c(), features_.h(),
                     features_.w());
    cls_head_.backward(dcls, &dfeat_cls);
    reg_head_.backward(dreg, &dfeat_reg);
    for (std::size_t k = 0; k < dfeat_cls.size(); ++k)
      dfeat_cls[k] += dfeat_reg[k];
    backbone_.backward(dfeat_cls, nullptr);
  }
  backbone_.set_training(false);
  cls_head_.set_training(false);
  reg_head_.set_training(false);
  use_plans_ = true;
  return static_cast<float>(total);
}

void Detector::quantize(const std::vector<Tensor>& calibration_images) {
  backbone_.set_calibration(true);
  cls_head_.set_calibration(true);
  reg_head_.set_calibration(true);
  // Calibration forwards run eagerly: observation hooks live in the eager
  // path, and calibration must see fp32 activations regardless of plan
  // kernel choices.
  use_plans_ = false;
  for (const Tensor& img : calibration_images) forward(img);
  use_plans_ = true;
  backbone_.set_calibration(false);
  cls_head_.set_calibration(false);
  reg_head_.set_calibration(false);
  backbone_.quantize();
  cls_head_.quantize();
  reg_head_.quantize();
  // Kernel choices under an int8 policy just changed.
  invalidate_plans();
}

std::vector<QuantSummary> Detector::quant_summaries() {
  std::vector<QuantSummary> out;
  int ci = 0;
  for (std::size_t i = 0; i < backbone_.size(); ++i)
    if (auto* c = dynamic_cast<Conv2dLayer*>(backbone_.at(i));
        c != nullptr && c->is_quantized())
      out.push_back(summarize_quant(*c, "conv" + std::to_string(++ci)));
  if (cls_head_.is_quantized())
    out.push_back(summarize_quant(cls_head_, "cls_head"));
  if (reg_head_.is_quantized())
    out.push_back(summarize_quant(reg_head_, "reg_head"));
  return out;
}

void Detector::quantize_like(Detector* src) {
  for (std::size_t i = 0; i < backbone_.size(); ++i) {
    auto* from = dynamic_cast<Conv2dLayer*>(src->backbone_.at(i));
    auto* to = dynamic_cast<Conv2dLayer*>(backbone_.at(i));
    if (from != nullptr && to != nullptr && from->is_quantized())
      to->quantize_with_range(from->act_lo(), from->act_hi());
  }
  if (src->cls_head_.is_quantized())
    cls_head_.quantize_with_range(src->cls_head_.act_lo(),
                                  src->cls_head_.act_hi());
  if (src->reg_head_.is_quantized())
    reg_head_.quantize_with_range(src->reg_head_.act_lo(),
                                  src->reg_head_.act_hi());
  invalidate_plans();
}

float Detector::train_step(const Tensor& image, const std::vector<GtBox>& gts,
                           Sgd* opt, Rng* rng) {
  opt->zero_grad();
  const float loss = loss_impl(image, gts, rng, /*train=*/true);
  opt->step();
  return loss;
}

float Detector::compute_loss(const Tensor& image,
                             const std::vector<GtBox>& gts, Rng* rng) {
  return loss_impl(image, gts, rng, /*train=*/false);
}

std::vector<Param*> Detector::parameters() {
  std::vector<Param*> out;
  backbone_.collect_params(&out);
  cls_head_.collect_params(&out);
  reg_head_.collect_params(&out);
  return out;
}

std::unique_ptr<Detector> clone_detector(Detector* src) {
  Rng rng(0);  // initialization is immediately overwritten
  auto dst = std::make_unique<Detector>(src->config(), &rng);
  copy_param_values(src->parameters(), dst->parameters());
  // Quantization state rides along: re-freezing from the copied fp32
  // weights and the source's calibrated ranges reproduces bit-identical
  // INT8 tables, so stream/context clones serve exactly like the source.
  if (src->quantized()) dst->quantize_like(src);
  // The execution policy rides along too — a mixed-precision serving
  // config survives cloning into streams and scheduler contexts.
  dst->set_execution_policy(src->execution_policy());
  return dst;
}

void Detector::share_storage_with(Detector* src) {
  backbone_.share_params_with(&src->backbone_);
  cls_head_.share_params_with(&src->cls_head_);
  reg_head_.share_params_with(&src->reg_head_);
  plans_ = src->plans_;
}

std::unique_ptr<Detector> clone_detector_shared(Detector* src) {
  // Build a full clone first (quantize_like freezes per-instance INT8
  // tables from its own copied fp32 weights — bit-identical to src's),
  // then drop the duplicated fp32/grad storage by aliasing to src's.
  auto dst = clone_detector(src);
  dst->share_storage_with(src);
  return dst;
}

std::vector<Detector::ConvStackEntry> Detector::conv_stack(int img_h,
                                                           int img_w) const {
  std::vector<ConvStackEntry> out;
  int h = img_h, w = img_w;
  out.push_back({"conv1", ConvSpec{3, cfg_.c1, 3, 1, 1}, h, w});
  h /= 2; w /= 2;
  out.push_back({"conv2", ConvSpec{cfg_.c1, cfg_.c2, 3, 1, 1}, h, w});
  h /= 2; w /= 2;
  out.push_back({"conv3", ConvSpec{cfg_.c2, cfg_.c3, 3, 1, 1}, h, w});
  h /= 2; w /= 2;
  out.push_back({"conv4", ConvSpec{cfg_.c3, cfg_.c3, 3, 1, 4, 4}, h, w});
  out.push_back({"cls_head", cls_head_.spec(), h, w});
  out.push_back({"reg_head", reg_head_.spec(), h, w});
  return out;
}

long long Detector::forward_macs(int img_h, int img_w) const {
  long long total = 0;
  for (const ConvStackEntry& e : conv_stack(img_h, img_w))
    total += conv2d_macs(e.spec, e.in_h, e.in_w);
  return total;
}

}  // namespace ada
