#include "detection/anchors.h"

#include <cmath>

namespace ada {

std::vector<Box> generate_anchors(const AnchorConfig& cfg, int fh, int fw) {
  std::vector<Box> anchors;
  anchors.reserve(static_cast<std::size_t>(fh) * fw * cfg.per_cell());
  for (int i = 0; i < fh; ++i) {
    const float cy = (static_cast<float>(i) + 0.5f) * static_cast<float>(cfg.stride);
    for (int j = 0; j < fw; ++j) {
      const float cx = (static_cast<float>(j) + 0.5f) * static_cast<float>(cfg.stride);
      for (float size : cfg.sizes)
        for (float aspect : cfg.aspects) {
          const float a = std::sqrt(aspect);
          const float hw = 0.5f * size * a;
          const float hh = 0.5f * size / a;
          anchors.push_back(Box{cx - hw, cy - hh, cx + hw, cy + hh});
        }
    }
  }
  return anchors;
}

}  // namespace ada
