// Anchor grid generation.
//
// The anchors cover a bounded size range — this bound is what makes the
// detector imperfectly scale-invariant, which is the premise of AdaScale
// (Sec. 1: objects "too large" for the detector benefit from down-sampling).
#pragma once

#include <vector>

#include "detection/box.h"

namespace ada {

/// Anchor layout configuration (sizes are in rendered pixels).
struct AnchorConfig {
  int stride = 8;                       ///< backbone output stride
  // Covers objects up to ~130 px (render units) at IoU 0.5; the largest
  // objects at scale 600 (up to ~142 px) deliberately exceed this range —
  // they are the "too large for the detector" cases the paper's Fig. 1
  // shows being fixed by down-sampling.
  std::vector<float> sizes = {12.0f, 24.0f, 48.0f, 96.0f};
  std::vector<float> aspects = {0.8f, 1.25f};

  int per_cell() const {
    return static_cast<int>(sizes.size() * aspects.size());
  }
};

/// Generates anchors for a feature map of fh x fw cells.  Layout: for cell
/// (i, j), anchors [ (i*fw + j)*per_cell , ... ) in size-major, aspect-minor
/// order; this matches the channel layout of the detection heads.
std::vector<Box> generate_anchors(const AnchorConfig& cfg, int fh, int fw);

}  // namespace ada
