// SGD with momentum and weight decay — the optimizer the paper's R-FCN
// training uses (MXNet default schedule: lr divided by 10 at milestones).
#pragma once

#include <vector>

#include "nn/layer.h"

namespace ada {

/// Plain SGD + momentum over an explicit parameter list.
class Sgd {
 public:
  struct Options {
    float lr = 1e-3f;
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    float grad_clip = 10.0f;  ///< clamp per-element gradient magnitude; <=0 disables
  };

  Sgd(std::vector<Param*> params, Options opt);

  /// Applies one update using accumulated gradients, then leaves gradients
  /// untouched (call zero_grad explicitly; keeps accumulation explicit).
  void step();

  /// Zeroes all parameter gradients.
  void zero_grad();

  void set_lr(float lr) { opt_.lr = lr; }
  float lr() const { return opt_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  Options opt_;
};

}  // namespace ada
