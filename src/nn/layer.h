// Minimal neural-network layer abstraction with explicit forward/backward.
//
// Layers cache whatever they need from the forward pass (inputs, argmax
// indices) so backward can be called immediately after.  Training here is
// single-example SGD, which matches the paper's effective batch size of
// 1 image per GPU.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/exec_plan.h"
#include "runtime/exec_policy.h"
#include "tensor/tensor.h"

namespace ada {

/// A learnable parameter with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes y = f(x); caches state needed by backward.
  virtual void forward(const Tensor& x, Tensor* y) = 0;

  /// Given dL/dy, accumulates parameter gradients and writes dL/dx into dx
  /// (dx may be null when the input gradient is not needed, e.g. the first
  /// layer or frozen features).
  virtual void backward(const Tensor& dy, Tensor* dx) = 0;

  /// Appends this layer's learnable parameters (may be none).
  virtual void collect_params(std::vector<Param*>* out) { (void)out; }

  /// Hints whether upcoming forward() calls feed a backward().  Layers
  /// default to training mode (every forward caches backward state, the
  /// legacy contract), and inference-owning objects (Detector,
  /// ScaleRegressor) switch their layers to false so hot-path forwards
  /// skip activation copies that exist purely for gradients.  Containers
  /// propagate to children.  Default: ignore the hint.
  virtual void set_training(bool training) { (void)training; }

  /// Toggles calibration mode: while on, each forward() observes the
  /// layer's *input* activation range (min/max), the statistic quantize()
  /// freezes into per-tensor u8 qparams.  Calibration forwards always run
  /// the fp32 path.  Containers propagate; layers without quantized
  /// storage ignore the toggle.
  virtual void set_calibration(bool on) { (void)on; }

  /// Sets the execution policy this layer resolves its kernels from
  /// (backend / precision; runtime/exec_policy.h).  Propagated down from
  /// the owning model (Detector, ScaleRegressor) and by containers;
  /// inherited by clones.  Layers without a kernel choice ignore it.
  virtual void set_policy(const ExecutionPolicy& policy) { (void)policy; }

  /// Appends this layer's ExecutionPlan step(s) for an input of shape
  /// `*shape` and advances `*shape` to the output shape.  Contract: every
  /// leaf layer appends exactly one step (containers append their
  /// children's), in forward execution order — forward_planned() consumes
  /// them with the same walk.  The default appends a shape-preserving
  /// kernel-less step; layers that change geometry or choose kernels
  /// override.
  virtual void plan_forward(PlanShape* shape, ExecutionPlan* plan) const;

  /// forward() driven by a prebuilt ExecutionPlan: consumes this layer's
  /// step(s) from the cursor instead of re-resolving kernel choice and
  /// geometry per call.  Only valid outside training/calibration (the
  /// owning model gates it).  The default consumes one step and runs the
  /// eager forward.
  virtual void forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc);

  /// Re-points this layer's parameter storage at `src`'s (same concrete
  /// type, same architecture): after the call both layers' Params are the
  /// SAME objects — the shared-immutable-weights half of the serving
  /// split, where one resident fp32 weight copy serves every pooled
  /// compute context (clone_detector_shared / clone_regressor_shared).
  /// Gradients are shared too, so sharers must not train concurrently;
  /// per-instance state (quantized tables, cached activations) stays
  /// per-layer.  Layers without parameters ignore the call; containers
  /// recurse pairwise and abort loudly on a structure mismatch.
  virtual void share_params_with(Layer* src) { (void)src; }

  /// Freezes INT8 inference state from the current weights and the
  /// calibrated activation range: per-output-channel symmetric s8 weights
  /// + per-tensor u8 activation qparams (tensor/qgemm.h).  Returns true if
  /// the layer is now quantized; the default (layers with no quantizable
  /// weights, or no calibration observed) returns false.  Quantized layers
  /// run the INT8 path when the active GEMM backend is kInt8; training and
  /// other backends keep using the fp32 weights, which stay authoritative
  /// (re-call quantize() after any weight update).
  virtual bool quantize() { return false; }

  /// Short identifier for logging / serialization sanity checks.
  virtual std::string name() const = 0;
};

/// Collects all parameters of a set of layers into one list.
std::vector<Param*> collect_all_params(
    const std::vector<Layer*>& layers);

/// Total number of scalar parameters.
std::size_t param_count(const std::vector<Param*>& params);

/// Flattens parameter values into a single vector (for the model cache).
std::vector<float> flatten_params(const std::vector<Param*>& params);

/// Restores parameter values from a flat vector; returns false on size
/// mismatch (cache built with a different architecture).
bool unflatten_params(const std::vector<float>& flat,
                      const std::vector<Param*>& params);

/// Copies parameter values (not gradients) between two models whose
/// parameter lists line up structurally (clone_detector/clone_regressor).
void copy_param_values(const std::vector<Param*>& src,
                       const std::vector<Param*>& dst);

}  // namespace ada
