#include "nn/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/gemm.h"

#include "tensor/linear.h"
#include "tensor/ops.h"

namespace ada {

// ------------------------------------------------------- LayerQuantState

bool LayerQuantState::use_int8(bool training, GemmBackend backend) const {
  return quantized() && !training && !calibrating &&
         backend == GemmBackend::kInt8;
}

bool LayerQuantState::freeze(const float* w, int rows, int cols) {
  if (obs.seen()) {
    // Percentile clip: saturate the rare outlier tail so the u8 step
    // covers the dense activation bulk (tensor/qgemm.h).  The default
    // fraction keeps the full range — on this detector the outliers are
    // the informative activations.
    hi = obs.percentile_hi(calibration_clip_fraction());
    lo = std::max(obs.min(), -hi);
    has_range = true;
  }
  if (!has_range) return false;
  freeze_with_range(w, rows, cols, lo, hi);
  return true;
}

void LayerQuantState::freeze_with_range(const float* w, int rows, int cols,
                                        float range_lo, float range_hi) {
  lo = range_lo;
  hi = range_hi;
  has_range = true;
  qw = quantize_weights(w, rows, cols, choose_qparams(lo, hi));
}

// ---------------------------------------------------------------- Conv2d
Conv2dLayer::Conv2dLayer(int in_c, int out_c, int kernel, int stride, int pad,
                         int dilation, bool fuse_relu)
    : fuse_relu_(fuse_relu) {
  spec_ = ConvSpec{in_c, out_c, kernel, stride, pad, dilation};
  w_->value = Tensor(out_c, in_c, kernel, kernel);
  w_->grad = Tensor(out_c, in_c, kernel, kernel);
  b_->value = Tensor(1, out_c, 1, 1);
  b_->grad = Tensor(1, out_c, 1, 1);
}

void Conv2dLayer::init_he(Rng* rng) {
  const float fan_in =
      static_cast<float>(spec_.in_channels * spec_.kernel * spec_.kernel);
  const float std = std::sqrt(2.0f / fan_in);
  for (std::size_t i = 0; i < w_->value.size(); ++i)
    w_->value[i] = rng->normal(0.0f, std);
  b_->value.fill(0.0f);
}

KernelKind Conv2dLayer::resolve_kernel() const {
  // The INT8 path serves inference only: training (and calibration, which
  // must observe fp32 activations) always runs the float kernels against
  // the authoritative fp32 weights.
  const GemmBackend be = policy_.resolve();
  if (quant_.use_int8(training_, be)) return KernelKind::kInt8;
  return be == GemmBackend::kReference ? KernelKind::kGemmReference
                                       : KernelKind::kGemmPacked;
}

void Conv2dLayer::run_kernel(KernelKind k, const Tensor& x, Tensor* y) {
  switch (k) {
    case KernelKind::kInt8:
      conv2d_forward_int8(spec_, x, quant_.qw, b_->value, y, fuse_relu_);
      return;
    case KernelKind::kGemmReference:
      conv2d_forward(spec_, x, w_->value, b_->value, y, fuse_relu_,
                     GemmBackend::kReference);
      return;
    default:
      conv2d_forward(spec_, x, w_->value, b_->value, y, fuse_relu_,
                     GemmBackend::kPacked);
      return;
  }
}

void Conv2dLayer::forward(const Tensor& x, Tensor* y) {
  // Backward state (input copy; in fused mode also the output copy that
  // sources the ReLU mask, valid since [y > 0] ≡ [pre-relu > 0]) is only
  // kept in training mode — inference forwards make no activation copies.
  backward_ready_ = training_;
  if (quant_.calibrating) quant_.observe(x);
  if (training_) cached_x_ = x;
  run_kernel(resolve_kernel(), x, y);
  if (fuse_relu_ && training_) cached_y_ = *y;
}

void Conv2dLayer::plan_forward(PlanShape* shape, ExecutionPlan* plan) const {
  PlanStep step;
  step.layer = name();
  step.kernel = resolve_kernel();
  step.in = *shape;
  step.out = PlanShape{shape->n, spec_.out_channels, spec_.out_dim(shape->h),
                       spec_.out_dim(shape->w)};
  if (step.kernel == KernelKind::kInt8) {
    // Measured per-layer fallback: race the int8 kernel against packed
    // fp32 on this exact geometry and plan the winner.  The key excludes
    // the batch size and the probe runs at n=1, so batched and per-image
    // plans (and every clone in the process) agree — see
    // runtime/exec_plan.h for the determinism contract.
    char key[128];
    std::snprintf(key, sizeof(key),
                  "conv oc=%d ic=%d k=%d s=%d p=%d d=%d relu=%d h=%d w=%d",
                  spec_.out_channels, spec_.in_channels, spec_.kernel,
                  spec_.stride, spec_.pad, spec_.dilation, fuse_relu_ ? 1 : 0,
                  shape->h, shape->w);
    // Zero-filled n=1 probe: GEMM cost is shape-, not value-dependent.
    Tensor probe(1, spec_.in_channels, shape->h, shape->w);
    Tensor out;
    const AutotuneChoice& c = autotune_choice(
        key,
        [&] {
          conv2d_forward_int8(spec_, probe, quant_.qw, b_->value, &out,
                              fuse_relu_);
        },
        [&] {
          conv2d_forward(spec_, probe, w_->value, b_->value, &out, fuse_relu_,
                         GemmBackend::kPacked);
        });
    step.kernel = c.kernel;
    step.autotuned = true;
    step.tuned_int8_ns = c.int8_ns;
    step.tuned_fp32_ns = c.fp32_ns;
  }
  step.workspace_floats = conv2d_forward_workspace_floats(
      spec_, shape->n, shape->h, shape->w, step.kernel);
  step.macs = static_cast<long long>(shape->n) *
              conv2d_macs(spec_, shape->h, shape->w);
  plan->steps.push_back(std::move(step));
  *shape = plan->steps.back().out;
}

void Conv2dLayer::forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) {
  const PlanStep& step = pc->take();
  // Plans are inference-only; the owning model must route training and
  // calibration forwards through the eager path.
  assert(!training_ && !quant_.calibrating);
  assert(step.in.n == x.n() && step.in.c == x.c() && step.in.h == x.h() &&
         step.in.w == x.w());
  backward_ready_ = false;
  run_kernel(step.kernel, x, y);
}

void Conv2dLayer::set_calibration(bool on) { quant_.calibrating = on; }

bool Conv2dLayer::quantize() {
  return quant_.freeze(w_->value.data(), spec_.out_channels,
                       spec_.in_channels * spec_.kernel * spec_.kernel);
}

void Conv2dLayer::quantize_with_range(float lo, float hi) {
  quant_.freeze_with_range(w_->value.data(), spec_.out_channels,
                           spec_.in_channels * spec_.kernel * spec_.kernel,
                           lo, hi);
}

void Conv2dLayer::backward(const Tensor& dy, Tensor* dx) {
  // A backward against state from a non-training (or missing) forward, or
  // against a mismatched upstream gradient, would silently produce garbage
  // gradients — fail loudly (asserts are compiled out in Release).
  if (!backward_ready_) {
    std::fprintf(stderr,
                 "Conv2dLayer: backward requires set_training(true) before "
                 "the matching forward\n");
    std::abort();
  }
  if (fuse_relu_ && !dy.same_shape(cached_y_)) {
    std::fprintf(stderr,
                 "Conv2dLayer: fused backward got dy %s but cached output %s\n",
                 dy.shape_str().c_str(), cached_y_.shape_str().c_str());
    std::abort();
  }
  if (dx != nullptr && !dx->same_shape(cached_x_)) {
    *dx = Tensor(cached_x_.n(), cached_x_.c(), cached_x_.h(), cached_x_.w());
  }
  const Tensor* dconv = &dy;
  if (fuse_relu_) {
    if (!masked_dy_.same_shape(dy))
      masked_dy_ = Tensor(dy.n(), dy.c(), dy.h(), dy.w());
    for (std::size_t i = 0; i < dy.size(); ++i)
      masked_dy_[i] = cached_y_[i] > 0.0f ? dy[i] : 0.0f;
    dconv = &masked_dy_;
  }
  conv2d_backward(spec_, cached_x_, w_->value, *dconv, dx, &w_->grad, &b_->grad);
}

void Conv2dLayer::collect_params(std::vector<Param*>* out) {
  out->push_back(w_.get());
  out->push_back(b_.get());
}

void Conv2dLayer::share_params_with(Layer* src) {
  auto* o = dynamic_cast<Conv2dLayer*>(src);
  if (o == nullptr || !o->w_->value.same_shape(w_->value) ||
      !o->b_->value.same_shape(b_->value)) {
    std::fprintf(stderr,
                 "Conv2dLayer::share_params_with: source is not a Conv2dLayer "
                 "of identical geometry\n");
    std::abort();
  }
  w_ = o->w_;
  b_ = o->b_;
}

void Conv2dLayer::set_training(bool training) {
  training_ = training;
  if (!training) {
    // Free the backward-state tensors (callers toggle off only after the
    // backward has consumed them); the guard below keeps a subsequent
    // backward from running against the released state.
    cached_x_ = Tensor();
    cached_y_ = Tensor();
    masked_dy_ = Tensor();
    backward_ready_ = false;
  }
}

// ------------------------------------------------------------------ ReLU
void ReluLayer::forward(const Tensor& x, Tensor* y) {
  cached_x_ = x;
  relu_forward(x, y);
}

void ReluLayer::backward(const Tensor& dy, Tensor* dx) {
  if (dx == nullptr) return;
  if (!dx->same_shape(cached_x_))
    *dx = Tensor(cached_x_.n(), cached_x_.c(), cached_x_.h(), cached_x_.w());
  relu_backward(cached_x_, dy, dx);
}

// --------------------------------------------------------------- MaxPool
void MaxPool2Layer::forward(const Tensor& x, Tensor* y) {
  in_n_ = x.n(); in_c_ = x.c(); in_h_ = x.h(); in_w_ = x.w();
  maxpool2_forward(x, y, &argmax_);
}

void MaxPool2Layer::plan_forward(PlanShape* shape, ExecutionPlan* plan) const {
  PlanStep step;
  step.layer = name();
  step.in = *shape;
  step.out = PlanShape{shape->n, shape->c, shape->h / 2, shape->w / 2};
  plan->steps.push_back(std::move(step));
  *shape = plan->steps.back().out;
}

void MaxPool2Layer::backward(const Tensor& dy, Tensor* dx) {
  if (dx == nullptr) return;
  if (dx->n() != in_n_ || dx->c() != in_c_ || dx->h() != in_h_ ||
      dx->w() != in_w_)
    *dx = Tensor(in_n_, in_c_, in_h_, in_w_);
  maxpool2_backward(dy, argmax_, dx);
}

// ------------------------------------------------------------------- GAP
void GlobalAvgPoolLayer::forward(const Tensor& x, Tensor* y) {
  in_n_ = x.n(); in_c_ = x.c(); in_h_ = x.h(); in_w_ = x.w();
  global_avg_pool_forward(x, y);
}

void GlobalAvgPoolLayer::plan_forward(PlanShape* shape,
                                      ExecutionPlan* plan) const {
  PlanStep step;
  step.layer = name();
  step.in = *shape;
  step.out = PlanShape{shape->n, shape->c, 1, 1};
  plan->steps.push_back(std::move(step));
  *shape = plan->steps.back().out;
}

void GlobalAvgPoolLayer::backward(const Tensor& dy, Tensor* dx) {
  if (dx == nullptr) return;
  if (dx->n() != in_n_ || dx->c() != in_c_ || dx->h() != in_h_ ||
      dx->w() != in_w_)
    *dx = Tensor(in_n_, in_c_, in_h_, in_w_);
  global_avg_pool_backward(*dx, dy, dx);
}

// ---------------------------------------------------------------- Linear
LinearLayer::LinearLayer(int in, int out) {
  w_->value = Tensor(out, in, 1, 1);
  w_->grad = Tensor(out, in, 1, 1);
  b_->value = Tensor(1, out, 1, 1);
  b_->grad = Tensor(1, out, 1, 1);
}

void LinearLayer::init_he(Rng* rng) {
  const float std = std::sqrt(2.0f / static_cast<float>(w_->value.c()));
  for (std::size_t i = 0; i < w_->value.size(); ++i)
    w_->value[i] = rng->normal(0.0f, std);
  b_->value.fill(0.0f);
}

KernelKind LinearLayer::resolve_kernel() const {
  const GemmBackend be = policy_.resolve();
  if (quant_.use_int8(training_, be)) return KernelKind::kInt8;
  return be == GemmBackend::kReference ? KernelKind::kGemmReference
                                       : KernelKind::kGemmPacked;
}

void LinearLayer::run_kernel(KernelKind k, const Tensor& x, Tensor* y) {
  switch (k) {
    case KernelKind::kInt8:
      linear_forward_int8(x, quant_.qw, b_->value, y);
      return;
    case KernelKind::kGemmReference:
      linear_forward(x, w_->value, b_->value, y, GemmBackend::kReference);
      return;
    default:
      linear_forward(x, w_->value, b_->value, y, GemmBackend::kPacked);
      return;
  }
}

void LinearLayer::forward(const Tensor& x, Tensor* y) {
  if (quant_.calibrating) quant_.observe(x);
  cached_x_ = x;
  backward_ready_ = true;
  run_kernel(resolve_kernel(), x, y);
}

void LinearLayer::plan_forward(PlanShape* shape, ExecutionPlan* plan) const {
  PlanStep step;
  step.layer = name();
  step.kernel = resolve_kernel();
  step.in = *shape;
  step.out = PlanShape{shape->n, w_->value.n(), 1, 1};
  if (step.kernel == KernelKind::kInt8) {
    // Same measured per-layer fallback as Conv2dLayer::plan_forward: the
    // tiny head GEMMs are exactly where int8 can lose to packed fp32.
    char key[64];
    std::snprintf(key, sizeof(key), "linear in=%d out=%d", w_->value.c(),
                  w_->value.n());
    Tensor probe(1, w_->value.c(), 1, 1);
    Tensor out;
    const AutotuneChoice& c = autotune_choice(
        key,
        [&] { linear_forward_int8(probe, quant_.qw, b_->value, &out); },
        [&] {
          linear_forward(probe, w_->value, b_->value, &out,
                         GemmBackend::kPacked);
        });
    step.kernel = c.kernel;
    step.autotuned = true;
    step.tuned_int8_ns = c.int8_ns;
    step.tuned_fp32_ns = c.fp32_ns;
  }
  step.workspace_floats = linear_forward_workspace_floats(
      shape->n, w_->value.c(), w_->value.n(), step.kernel);
  step.macs = static_cast<long long>(shape->n) * w_->value.n() * w_->value.c();
  plan->steps.push_back(std::move(step));
  *shape = plan->steps.back().out;
}

void LinearLayer::forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) {
  const PlanStep& step = pc->take();
  assert(!training_ && !quant_.calibrating);
  assert(step.in.n == x.n() && step.in.c == x.c());
  // The input cache feeds backward only; planned forwards are
  // inference-only, so skip the copy the eager path still makes — and
  // mark the stale cache unusable so a backward cannot silently consume
  // it (same guard as Conv2dLayer).
  backward_ready_ = false;
  run_kernel(step.kernel, x, y);
}

void LinearLayer::set_calibration(bool on) { quant_.calibrating = on; }

bool LinearLayer::quantize() {
  return quant_.freeze(w_->value.data(), w_->value.n(), w_->value.c());
}

void LinearLayer::quantize_with_range(float lo, float hi) {
  quant_.freeze_with_range(w_->value.data(), w_->value.n(), w_->value.c(), lo,
                           hi);
}

void LinearLayer::backward(const Tensor& dy, Tensor* dx) {
  // A backward against the stale input cache of a *planned* forward would
  // silently produce gradients of the wrong activations.
  if (!backward_ready_) {
    std::fprintf(stderr,
                 "LinearLayer: backward requires an eager forward (the "
                 "last forward ran planned)\n");
    std::abort();
  }
  if (dx != nullptr && !dx->same_shape(cached_x_))
    *dx = Tensor(cached_x_.n(), cached_x_.c(), cached_x_.h(), cached_x_.w());
  linear_backward(cached_x_, w_->value, dy, dx, &w_->grad, &b_->grad);
}

void LinearLayer::collect_params(std::vector<Param*>* out) {
  out->push_back(w_.get());
  out->push_back(b_.get());
}

void LinearLayer::share_params_with(Layer* src) {
  auto* o = dynamic_cast<LinearLayer*>(src);
  if (o == nullptr || !o->w_->value.same_shape(w_->value) ||
      !o->b_->value.same_shape(b_->value)) {
    std::fprintf(stderr,
                 "LinearLayer::share_params_with: source is not a LinearLayer "
                 "of identical geometry\n");
    std::abort();
  }
  w_ = o->w_;
  b_ = o->b_;
}

// ------------------------------------------------------------ Sequential
void Sequential::forward(const Tensor& x, Tensor* y) {
  acts_.resize(layers_.size() + 1);
  acts_[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i]->forward(acts_[i], &acts_[i + 1]);
  *y = acts_.back();
}

void Sequential::forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) {
  if (layers_.empty()) {
    *y = x;
    return;
  }
  if (planned_outs_.size() != layers_.size())
    planned_outs_.resize(layers_.size());
  const Tensor* cur = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor* out = (i + 1 == layers_.size()) ? y : &planned_outs_[i];
    layers_[i]->forward_planned(*cur, out, pc);
    cur = out;
  }
}

void Sequential::backward(const Tensor& dy, Tensor* dx) {
  assert(!acts_.empty() && "forward must run before backward");
  grads_.resize(layers_.size() + 1);
  grads_.back() = dy;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Tensor* below = (i == 0) ? dx : &grads_[i];
    if (below != nullptr) {
      *below = Tensor(acts_[i].n(), acts_[i].c(), acts_[i].h(), acts_[i].w());
    }
    layers_[i]->backward(grads_[i + 1], below);
  }
}

void Sequential::collect_params(std::vector<Param*>* out) {
  for (auto& l : layers_) l->collect_params(out);
}

void Sequential::share_params_with(Layer* src) {
  auto* o = dynamic_cast<Sequential*>(src);
  if (o == nullptr || o->layers_.size() != layers_.size()) {
    std::fprintf(stderr,
                 "Sequential::share_params_with: source is not a Sequential "
                 "of the same length\n");
    std::abort();
  }
  for (std::size_t i = 0; i < layers_.size(); ++i)
    layers_[i]->share_params_with(o->layers_[i].get());
}

}  // namespace ada
