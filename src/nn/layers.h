// Concrete layers: Conv2d (+ReLU fusion option), MaxPool2, ReLU, Linear,
// GlobalAvgPool, and a Sequential container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/conv2d.h"
#include "util/rng.h"

namespace ada {

/// 2-D convolution layer with bias.
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(int in_c, int out_c, int kernel, int stride, int pad,
              int dilation = 1);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  std::string name() const override { return "conv2d"; }

  /// He-normal weight initialization, zero bias.
  void init_he(Rng* rng);

  const ConvSpec& spec() const { return spec_; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  ConvSpec spec_;
  Param w_;
  Param b_;
  Tensor cached_x_;
};

/// ReLU activation.
class ReluLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_x_;
};

/// 2x2 stride-2 max pooling.
class MaxPool2Layer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "maxpool2"; }

 private:
  std::vector<int> argmax_;
  int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Global average pooling to 1x1.
class GlobalAvgPoolLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "gap"; }

 private:
  Tensor cached_x_;
};

/// Fully-connected layer.
class LinearLayer : public Layer {
 public:
  LinearLayer(int in, int out);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  std::string name() const override { return "linear"; }

  void init_he(Rng* rng);

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;
  Param b_;
  Tensor cached_x_;
};

/// Runs layers in order; owns them.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Adds a layer; returns a borrowed pointer for configuration.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Intermediate activations kept for the backward pass.
  std::vector<Tensor> acts_;
  std::vector<Tensor> grads_;
};

}  // namespace ada
