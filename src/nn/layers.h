// Concrete layers: Conv2d (with optional fused bias+ReLU epilogue), MaxPool2,
// ReLU, Linear, GlobalAvgPool, and a Sequential container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/conv2d.h"
#include "util/rng.h"

namespace ada {

/// 2-D convolution layer with bias.  With fuse_relu the ReLU activation is
/// applied inside the GEMM write-out — bit-identical to a separate
/// ReluLayer, but inference makes no extra pass over the activation at all,
/// and training trades ReluLayer's input copy + ReLU pass for one output
/// copy (the backward mask source, kept only under set_training(true)).
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(int in_c, int out_c, int kernel, int stride, int pad,
              int dilation = 1, bool fuse_relu = false);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  /// Leaving training mode also releases the cached activation tensors, so
  /// a detector that trained at scale 600 does not pin tens of MB per layer
  /// (per stream clone) while serving inference.
  void set_training(bool training) override;
  std::string name() const override {
    return fuse_relu_ ? "conv2d+relu" : "conv2d";
  }

  /// He-normal weight initialization, zero bias.
  void init_he(Rng* rng);

  const ConvSpec& spec() const { return spec_; }
  bool fused_relu() const { return fuse_relu_; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  ConvSpec spec_;
  bool fuse_relu_ = false;
  bool training_ = true;        ///< default on: forward→backward just works
  bool backward_ready_ = false; ///< last forward ran in training mode
  Param w_;
  Param b_;
  Tensor cached_x_;  ///< training only: input, for dW / dX
  Tensor cached_y_;  ///< fused training only: output, for the ReLU mask
  Tensor masked_dy_; ///< fused training only: dy ⊙ [y > 0] workspace
};

/// ReLU activation.
class ReluLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_x_;
};

/// 2x2 stride-2 max pooling.
class MaxPool2Layer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "maxpool2"; }

 private:
  std::vector<int> argmax_;
  int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Global average pooling to 1x1.  Backward needs only the input *shape*,
/// so no activation is ever copied (this sits on the scale regressor's
/// per-frame predict path).
class GlobalAvgPoolLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "gap"; }

 private:
  int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Fully-connected layer.
class LinearLayer : public Layer {
 public:
  LinearLayer(int in, int out);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  std::string name() const override { return "linear"; }

  void init_he(Rng* rng);

  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;
  Param b_;
  Tensor cached_x_;
};

/// Runs layers in order; owns them.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Adds a layer; returns a borrowed pointer for configuration.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  void set_training(bool training) override {
    for (auto& l : layers_) l->set_training(training);
  }
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Intermediate activations kept for the backward pass.
  std::vector<Tensor> acts_;
  std::vector<Tensor> grads_;
};

}  // namespace ada
