// Concrete layers: Conv2d (with optional fused bias+ReLU epilogue), MaxPool2,
// ReLU, Linear, GlobalAvgPool, and a Sequential container.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/conv2d.h"
#include "util/rng.h"

namespace ada {

/// Reporting view of one layer's frozen INT8 state (tools/calibrate): the
/// calibrated input activation range, the derived per-tensor u8 qparams,
/// and the per-output-channel weight-scale spread.
struct QuantSummary {
  std::string layer;
  float act_lo = 0.0f, act_hi = 0.0f;
  QuantParams act;
  float wscale_min = 0.0f, wscale_max = 0.0f;
  int rows = 0, cols = 0;  ///< quantized weight matrix shape
};

/// Builds a QuantSummary from any layer exposing the quantization
/// accessors (Conv2dLayer, LinearLayer).
template <typename L>
QuantSummary summarize_quant(const L& l, std::string name) {
  QuantSummary s;
  s.layer = std::move(name);
  s.act_lo = l.act_lo();
  s.act_hi = l.act_hi();
  const QuantizedWeights& q = l.quantized_weights();
  s.act = q.act;
  s.rows = q.rows;
  s.cols = q.cols;
  if (!q.scale.empty()) {
    const auto [mn, mx] = std::minmax_element(q.scale.begin(), q.scale.end());
    s.wscale_min = *mn;
    s.wscale_max = *mx;
  }
  return s;
}

/// The per-layer quantization state machine shared by Conv2dLayer and
/// LinearLayer: calibration observation (RangeObserver), the frozen
/// activation range, and the INT8 weight tables.  Single-sources the
/// "may the INT8 path run" gate so the two layer types cannot diverge
/// on it.
struct LayerQuantState {
  bool calibrating = false;
  bool has_range = false;
  float lo = 0.0f, hi = 0.0f;  ///< frozen (clipped) input range
  RangeObserver obs;           ///< calibration statistics
  QuantizedWeights qw;         ///< INT8 tables; empty = not quantized

  bool quantized() const { return !qw.q.empty(); }

  /// True when forward() should take the INT8 kernel: frozen tables
  /// exist, the resolved backend asks for them, and the layer is neither
  /// calibrating (must observe fp32) nor training (fp32 weights are
  /// authoritative; gradients flow against the fp32 forward).
  bool use_int8(bool training, GemmBackend backend) const;

  void observe(const Tensor& x) { obs.observe(x.data(), x.size()); }

  /// Freezes INT8 tables from the observed statistics (percentile clip)
  /// or, lacking new observations, re-freezes from the stored range.
  /// Returns false when neither is available.
  bool freeze(const float* w, int rows, int cols);

  /// Freezes against an explicit range (clone transfer, tests).
  void freeze_with_range(const float* w, int rows, int cols, float range_lo,
                         float range_hi);
};

/// 2-D convolution layer with bias.  With fuse_relu the ReLU activation is
/// applied inside the GEMM write-out — bit-identical to a separate
/// ReluLayer, but inference makes no extra pass over the activation at all,
/// and training trades ReluLayer's input copy + ReLU pass for one output
/// copy (the backward mask source, kept only under set_training(true)).
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(int in_c, int out_c, int kernel, int stride, int pad,
              int dilation = 1, bool fuse_relu = false);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  /// Leaving training mode also releases the cached activation tensors, so
  /// a detector that trained at scale 600 does not pin tens of MB per layer
  /// (per stream clone) while serving inference.
  void set_training(bool training) override;
  void set_calibration(bool on) override;
  void set_policy(const ExecutionPolicy& policy) override {
    policy_ = policy;
  }
  void plan_forward(PlanShape* shape, ExecutionPlan* plan) const override;
  void forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) override;
  bool quantize() override;
  std::string name() const override {
    return fuse_relu_ ? "conv2d+relu" : "conv2d";
  }

  /// The kernel forward() would run right now, resolved from the layer's
  /// policy, quantization state, and training/calibration flags — the
  /// single resolution rule plan_forward() freezes into plans.
  KernelKind resolve_kernel() const;

  const ExecutionPolicy& policy() const { return policy_; }

  /// He-normal weight initialization, zero bias.
  void init_he(Rng* rng);

  /// Quantizes against an explicitly supplied input range instead of a
  /// calibration pass — how clones inherit a source layer's quantization
  /// (clone_detector / clone_regressor) and how tests pin exact qparams.
  void quantize_with_range(float lo, float hi);

  bool is_quantized() const { return quant_.quantized(); }
  bool has_act_range() const { return quant_.has_range; }
  float act_lo() const { return quant_.lo; }
  float act_hi() const { return quant_.hi; }
  /// Frozen INT8 state (empty until quantize()).
  const QuantizedWeights& quantized_weights() const { return quant_.qw; }

  /// Aliases this layer's weight/bias storage to `src`'s (see
  /// Layer::share_params_with); aborts unless `src` is a Conv2dLayer of
  /// identical geometry.
  void share_params_with(Layer* src) override;

  const ConvSpec& spec() const { return spec_; }
  bool fused_relu() const { return fuse_relu_; }
  Param& weight() { return *w_; }
  Param& bias() { return *b_; }

 private:
  /// Dispatches to the conv kernel `k` names (shared by the eager and
  /// planned forwards so they cannot diverge).
  void run_kernel(KernelKind k, const Tensor& x, Tensor* y);

  ConvSpec spec_;
  bool fuse_relu_ = false;
  bool training_ = true;        ///< default on: forward→backward just works
  bool backward_ready_ = false; ///< last forward ran in training mode
  ExecutionPolicy policy_;      ///< unpinned by default (env-following)
  LayerQuantState quant_;
  // shared_ptr-owned so weight-aliased clones (share_params_with) hold the
  // same Param objects: &weight() is identical across sharers, which is
  // what the aliasing tests assert pointer identity on.
  std::shared_ptr<Param> w_ = std::make_shared<Param>();
  std::shared_ptr<Param> b_ = std::make_shared<Param>();
  Tensor cached_x_;  ///< training only: input, for dW / dX
  Tensor cached_y_;  ///< fused training only: output, for the ReLU mask
  Tensor masked_dy_; ///< fused training only: dy ⊙ [y > 0] workspace
};

/// ReLU activation.
class ReluLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_x_;
};

/// 2x2 stride-2 max pooling.
class MaxPool2Layer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void plan_forward(PlanShape* shape, ExecutionPlan* plan) const override;
  std::string name() const override { return "maxpool2"; }

 private:
  std::vector<int> argmax_;
  int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Global average pooling to 1x1.  Backward needs only the input *shape*,
/// so no activation is ever copied (this sits on the scale regressor's
/// per-frame predict path).
class GlobalAvgPoolLayer : public Layer {
 public:
  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void plan_forward(PlanShape* shape, ExecutionPlan* plan) const override;
  std::string name() const override { return "gap"; }

 private:
  int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/// Fully-connected layer.
class LinearLayer : public Layer {
 public:
  LinearLayer(int in, int out);

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  /// Like Conv2dLayer, the training hint gates the INT8 path: a training
  /// forward must run fp32 so backward() sees gradients of the weights it
  /// actually updates.  (Unlike Conv2dLayer there is no backward state to
  /// release — the input cache is kept either way.)
  void set_training(bool training) override { training_ = training; }
  void set_calibration(bool on) override;
  void set_policy(const ExecutionPolicy& policy) override {
    policy_ = policy;
  }
  void plan_forward(PlanShape* shape, ExecutionPlan* plan) const override;
  void forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) override;
  bool quantize() override;
  std::string name() const override { return "linear"; }

  /// See Conv2dLayer::resolve_kernel.
  KernelKind resolve_kernel() const;

  const ExecutionPolicy& policy() const { return policy_; }

  void init_he(Rng* rng);

  /// See Conv2dLayer::quantize_with_range.
  void quantize_with_range(float lo, float hi);

  bool is_quantized() const { return quant_.quantized(); }
  bool has_act_range() const { return quant_.has_range; }
  float act_lo() const { return quant_.lo; }
  float act_hi() const { return quant_.hi; }
  const QuantizedWeights& quantized_weights() const { return quant_.qw; }

  /// See Conv2dLayer::share_params_with.
  void share_params_with(Layer* src) override;

  Param& weight() { return *w_; }
  Param& bias() { return *b_; }

 private:
  /// Shared kernel dispatch for the eager and planned forwards.
  void run_kernel(KernelKind k, const Tensor& x, Tensor* y);

  bool training_ = true;  ///< default on: forward→backward just works
  bool backward_ready_ = false;  ///< last forward cached its input (eager)
  ExecutionPolicy policy_;  ///< unpinned by default (env-following)
  LayerQuantState quant_;
  // shared_ptr-owned for weight aliasing; see Conv2dLayer.
  std::shared_ptr<Param> w_ = std::make_shared<Param>();
  std::shared_ptr<Param> b_ = std::make_shared<Param>();
  Tensor cached_x_;
};

/// Runs layers in order; owns them.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Adds a layer; returns a borrowed pointer for configuration.
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void forward(const Tensor& x, Tensor* y) override;
  void backward(const Tensor& dy, Tensor* dx) override;
  void collect_params(std::vector<Param*>* out) override;
  void set_training(bool training) override {
    for (auto& l : layers_) l->set_training(training);
  }
  void set_calibration(bool on) override {
    for (auto& l : layers_) l->set_calibration(on);
  }
  void set_policy(const ExecutionPolicy& policy) override {
    for (auto& l : layers_) l->set_policy(policy);
  }
  /// Pairwise recursion; aborts unless `src` is a Sequential of the same
  /// length (children check their own types/shapes).
  void share_params_with(Layer* src) override;
  void plan_forward(PlanShape* shape, ExecutionPlan* plan) const override {
    for (const auto& l : layers_) l->plan_forward(shape, plan);
  }
  /// Planned inference forward: routes activations through per-layer
  /// reused buffers instead of the acts_ chain the training forward
  /// keeps, so a steady-state planned forward makes no input/output
  /// tensor copies and no allocations (each buffer's shape is stable
  /// across calls at a given scale).  Same kernels in the same order as
  /// forward() — bit-identical outputs.
  void forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) override;
  /// Quantizes every child that can be; true if at least one was.
  bool quantize() override {
    bool any = false;
    for (auto& l : layers_) any = l->quantize() || any;
    return any;
  }
  std::string name() const override { return "sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer* at(std::size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Intermediate activations kept for the backward pass.
  std::vector<Tensor> acts_;
  std::vector<Tensor> grads_;
  // Planned-forward intermediate buffers, one per layer: buffer i always
  // holds layer i's output shape, so steady-state planned forwards never
  // reallocate (a shared ping-pong pair would reshape — and so reallocate
  // — at almost every layer).
  std::vector<Tensor> planned_outs_;
};

}  // namespace ada
