#include "nn/layer.h"

#include <algorithm>
#include <cassert>

namespace ada {

void Layer::plan_forward(PlanShape* shape, ExecutionPlan* plan) const {
  // Default: a shape-preserving step with no kernel choice (ReLU and other
  // elementwise layers).  Geometry-changing layers override.
  PlanStep step;
  step.layer = name();
  step.in = *shape;
  step.out = *shape;
  plan->steps.push_back(std::move(step));
}

void Layer::forward_planned(const Tensor& x, Tensor* y, PlanCursor* pc) {
  pc->take();  // consume this layer's step; nothing precomputed to use
  forward(x, y);
}

std::vector<Param*> collect_all_params(const std::vector<Layer*>& layers) {
  std::vector<Param*> out;
  for (Layer* l : layers) l->collect_params(&out);
  return out;
}

std::size_t param_count(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const Param* p : params) n += p->value.size();
  return n;
}

std::vector<float> flatten_params(const std::vector<Param*>& params) {
  std::vector<float> flat;
  flat.reserve(param_count(params));
  for (const Param* p : params)
    flat.insert(flat.end(), p->value.storage().begin(),
                p->value.storage().end());
  return flat;
}

void copy_param_values(const std::vector<Param*>& src,
                       const std::vector<Param*>& dst) {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    assert(src[i]->value.size() == dst[i]->value.size());
    std::copy(src[i]->value.storage().begin(), src[i]->value.storage().end(),
              dst[i]->value.storage().begin());
  }
}

bool unflatten_params(const std::vector<float>& flat,
                      const std::vector<Param*>& params) {
  if (flat.size() != param_count(params)) return false;
  std::size_t off = 0;
  for (Param* p : params) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
              flat.begin() + static_cast<std::ptrdiff_t>(off + p->value.size()),
              p->value.storage().begin());
    off += p->value.size();
  }
  return true;
}

}  // namespace ada
