#include "nn/sgd.h"

#include <algorithm>

namespace ada {

Sgd::Sgd(std::vector<Param*> params, Options opt)
    : params_(std::move(params)), opt_(opt) {
  velocity_.reserve(params_.size());
  for (Param* p : params_)
    velocity_.emplace_back(p->value.n(), p->value.c(), p->value.h(),
                           p->value.w());
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param* p = params_[k];
    Tensor& v = velocity_[k];
    float* val = p->value.data();
    float* g = p->grad.data();
    float* vel = v.data();
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float gi = g[i] + opt_.weight_decay * val[i];
      if (opt_.grad_clip > 0.0f)
        gi = std::clamp(gi, -opt_.grad_clip, opt_.grad_clip);
      vel[i] = opt_.momentum * vel[i] + gi;
      val[i] -= opt_.lr * vel[i];
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace ada
