// Minimal binary serialization used by the model cache: benches train a
// detector once and reuse the weights across binaries via files keyed by a
// configuration hash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ada {

/// Writes a float vector with a small header (magic + count). Returns false
/// on I/O failure.
bool save_floats(const std::string& path, const std::vector<float>& data);

/// Reads a float vector written by save_floats. Returns false on failure or
/// malformed file.
bool load_floats(const std::string& path, std::vector<float>* out);

/// FNV-1a over a string; used to key cached model files by config.
std::uint64_t fnv1a(const std::string& s);

/// True if the path exists and is a regular file.
bool file_exists(const std::string& path);

/// Creates the directory (and parents). Returns false on failure.
bool make_dirs(const std::string& path);

}  // namespace ada
