// Plain-text table formatting for bench output.  Every bench binary prints
// the rows of the paper table/figure it reproduces through this formatter so
// the output is uniform and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace ada {

/// Column-aligned ASCII table.  Cells are strings; the caller formats
/// numbers (helpers below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  /// Renders as CSV (for EXPERIMENTS.md ingestion).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 1);

/// Formats an integer.
std::string fmt_int(long long v);

}  // namespace ada
