// Injectable time source for the serving runtime.
//
// Every queueing decision in the overload-resilience layer — admission
// timestamps, deadline slack, batch-flush timeouts, controller hysteresis —
// reads time through this interface instead of a wall clock.  Production
// code injects WallClock (or nothing: components default to it); tests and
// the virtual-time load generator inject ManualClock and advance it
// explicitly, so timeout/shedding behavior is exactly reproducible with no
// sleeps and no dependence on machine speed (tests/overload_test.cpp runs
// thousands of simulated seconds in milliseconds of real time).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>

namespace ada {

/// Monotonic time source, milliseconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now_ms() const = 0;
};

/// Real monotonic time (epoch = construction).
class WallClock : public Clock {
 public:
  WallClock() : start_(Impl::now()) {}
  double now_ms() const override {
    return std::chrono::duration<double, std::milli>(Impl::now() - start_)
        .count();
  }

 private:
  using Impl = std::chrono::steady_clock;
  Impl::time_point start_;
};

/// Hand-driven time for tests and virtual-time simulation.  Monotonic by
/// construction: advance() ignores negative steps and advance_to() never
/// moves backwards.  The stored time is atomic: the advance-then-poke
/// pattern against BatchScheduler has one thread driving the clock while
/// waiting leader threads re-read it (only one thread may *write*;
/// relaxed ordering suffices because the poke's mutex publishes the new
/// time to the waiters).
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_ms = 0.0) : now_(start_ms) {}
  double now_ms() const override {
    return now_.load(std::memory_order_relaxed);
  }
  /// Moves time forward by `dt_ms` (negative steps are ignored).
  void advance(double dt_ms) {
    now_.store(now_.load(std::memory_order_relaxed) + std::max(0.0, dt_ms),
               std::memory_order_relaxed);
  }
  /// Jumps to an absolute time, never backwards.
  void advance_to(double t_ms) {
    now_.store(std::max(now_.load(std::memory_order_relaxed), t_ms),
               std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_;
};

}  // namespace ada
