#include "util/file_io.h"

#include <cstdio>
#include <filesystem>

namespace ada {

namespace {
constexpr std::uint32_t kMagic = 0xADA5CA1Eu;
}  // namespace

bool save_floats(const std::string& path, const std::vector<float>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::uint32_t magic = kMagic;
  auto count = static_cast<std::uint64_t>(data.size());
  bool ok = std::fwrite(&magic, sizeof(magic), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1;
  if (ok && count > 0)
    ok = std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

bool load_floats(const std::string& path, std::vector<float>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint32_t magic = 0;
  std::uint64_t count = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
            std::fread(&count, sizeof(count), 1, f) == 1 && magic == kMagic;
  if (ok) {
    out->resize(count);
    if (count > 0)
      ok = std::fread(out->data(), sizeof(float), count, f) == count;
  }
  std::fclose(f);
  return ok;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

bool make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return !ec;
}

}  // namespace ada
