#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace ada {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::raw(const std::string& s) {
  comma();
  out_ += s;
}

JsonWriter& JsonWriter::begin_object() {
  raw("{");
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  raw("[");
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  raw('"' + json_escape(v) + '"');
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  char buf[32];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  } else {
    // JSON has no inf/nan; emit null (documented lossy behavior).
    std::snprintf(buf, sizeof buf, "null");
  }
  raw(buf);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  raw(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::value(int v) { return value(static_cast<long long>(v)); }

JsonWriter& JsonWriter::value(bool v) {
  raw(v ? "true" : "false");
  return *this;
}

}  // namespace ada
