#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ada {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size())
        os << std::string(widths[c] - r[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace ada
