// Latency sample accumulator with exact quantiles.
//
// The SLO harness needs p50/p95/p99 over a few thousand per-frame latencies
// — small enough that keeping every sample exact beats a bucketed sketch:
// quantiles are reproducible bit-for-bit given the same sample sequence
// (which the deterministic virtual-time runner guarantees), and there is no
// bucket-resolution knob to tune or document.  Quantile extraction sorts a
// copy lazily and caches it until the next record().
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ada {

/// Accumulates latency samples (ms) and reports exact quantiles.
class LatencyHistogram {
 public:
  void record(double ms) {
    samples_.push_back(ms);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Exact empirical quantile (nearest-rank): q in [0, 1]; 0.5 = median.
  /// Returns 0 when empty.
  double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const double clamped = std::min(1.0, std::max(0.0, q));
    // Nearest-rank: ceil(q * n), 1-indexed; q = 0 maps to the first sample.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped * static_cast<double>(cache_.size())));
    if (rank > 0) --rank;
    return cache_[rank];
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Fraction of samples strictly above `threshold_ms` (SLO violation rate).
  double fraction_above(double threshold_ms) const {
    if (samples_.empty()) return 0.0;
    std::size_t over = 0;
    for (double x : samples_)
      if (x > threshold_ms) ++over;
    return static_cast<double>(over) / static_cast<double>(samples_.size());
  }

 private:
  void ensure_sorted() const {
    if (sorted_) return;
    cache_ = samples_;
    std::sort(cache_.begin(), cache_.end());
    sorted_ = true;
  }

  std::vector<double> samples_;
  mutable std::vector<double> cache_;
  mutable bool sorted_ = false;
};

}  // namespace ada
