// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (dataset synthesis, weight init, training-time
// scale sampling) takes an explicit Rng so experiments are reproducible
// bit-for-bit across runs and machines.  The generator is PCG32 (O'Neill,
// 2014): tiny state, excellent statistical quality, and trivially seedable.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace ada {

/// PCG32 pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator; distinct `stream` values give independent sequences
  /// even for equal seeds.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit integer.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box-Muller (cached spare value).
  float normal();

  /// Normal with the given mean / standard deviation.
  float normal(float mean, float stddev);

  /// Bernoulli draw.
  bool chance(float p);

  /// Picks an index according to (unnormalized, non-negative) weights.
  /// Falls back to uniform choice if all weights are zero.
  std::size_t weighted_choice(const std::vector<float>& weights);

  /// Fisher-Yates shuffle of an index range stored by the caller.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; use to give each sub-component
  /// its own stream without coupling their consumption patterns.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace ada
