#include "util/rng.h"

#include <cassert>

namespace ada {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  assert(bound > 0);
  // Debiased modulo (Lemire-style rejection kept simple for clarity).
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  return lo + static_cast<int>(next_below(span));
}

float Rng::uniform() {
  // 24 high bits -> float in [0,1) with full float precision.
  return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

float Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  float u1 = 0.0f;
  do {
    u1 = uniform();
  } while (u1 <= 1e-12f);
  float u2 = uniform();
  float mag = std::sqrt(-2.0f * std::log(u1));
  float two_pi_u2 = 6.28318530717958647692f * u2;
  spare_ = mag * std::sin(two_pi_u2);
  has_spare_ = true;
  return mag * std::cos(two_pi_u2);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::chance(float p) { return uniform() < p; }

std::size_t Rng::weighted_choice(const std::vector<float>& weights) {
  assert(!weights.empty());
  float total = 0.0f;
  for (float w : weights) total += w;
  if (total <= 0.0f) return next_below(static_cast<std::uint32_t>(weights.size()));
  float r = uniform() * total;
  float acc = 0.0f;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  std::uint64_t seed =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  std::uint64_t stream =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

}  // namespace ada
