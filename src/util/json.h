// Minimal JSON writer (no parsing) used by the dataset/detection exporters.
// Supports objects, arrays, strings (with escaping), numbers, and booleans —
// enough for COCO-style annotation files and result dumps.
#pragma once

#include <string>
#include <vector>

namespace ada {

/// Streaming JSON writer with automatic comma management.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("images"); w.begin_array();
///   ... w.end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  /// The serialized document (valid once all containers are closed).
  const std::string& str() const { return out_; }

  /// True when every begin_* has a matching end_*.
  bool complete() const { return depth_ == 0 && !out_.empty(); }

 private:
  void comma();
  void raw(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  int depth_ = 0;
  bool after_key_ = false;
};

/// Escapes a string for inclusion in JSON (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace ada
