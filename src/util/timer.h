// Wall-clock timing utilities used by the runtime profiler and benches.
//
// Timer is a *consumer* of the clock seam (util/clock.h), not a second time
// source: it reads WallClock::now_ms() rather than touching std::chrono
// directly, so the project-wide invariant "all timing flows through the
// injected Clock" (enforced by tools/invariant_lint rule R1) holds here too.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/clock.h"

namespace ada {

/// Monotonic stopwatch with millisecond resolution reporting.
class Timer {
 public:
  Timer() : start_ms_(clock_.now_ms()) {}

  /// Restarts the stopwatch.
  void reset() { start_ms_ = clock_.now_ms(); }

  /// Elapsed time since construction / last reset, in milliseconds.
  double elapsed_ms() const { return clock_.now_ms() - start_ms_; }

  /// Elapsed time in seconds.
  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  WallClock clock_;
  double start_ms_ = 0.0;
};

/// Accumulates per-event durations; used to report mean ms/frame.
///
/// Moments use Welford's online update: the textbook sum2/n − mean² form
/// cancels catastrophically when the mean dwarfs the spread (timestamps,
/// epoch-offset samples) and can go *negative*, which turned into NaN
/// standard deviations downstream in bench reports.  Welford accumulates
/// centered residuals, so M2 is non-negative up to rounding — and is
/// clamped at 0 for the rounding.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return mean_; }
  /// Population variance; never negative.
  double variance() const {
    if (n_ < 2) return 0.0;
    return std::max(0.0, m2_ / static_cast<double>(n_));
  }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ada
