// Wall-clock timing utilities used by the runtime profiler and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace ada {

/// Monotonic stopwatch with millisecond resolution reporting.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last reset, in milliseconds.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates per-event durations; used to report mean ms/frame.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum2_ += x * x;
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  double variance() const {
    if (n_ < 2) return 0.0;
    double m = mean();
    return sum2_ / static_cast<double>(n_) - m * m;
  }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ada
