#include "experiments/harness.h"

#include <cstdio>
#include <cstdlib>

#include "detection/nms.h"
#include "util/timer.h"

namespace ada {

Harness::Harness(Dataset dataset, std::string cache_dir)
    : dataset_(std::move(dataset)),
      renderer_(dataset_.make_renderer()),
      cache_dir_(std::move(cache_dir)) {
  const ScalePolicy& policy = dataset_.scale_policy();
  ref_h_ = policy.render_h(600);
  ref_w_ = policy.render_w(600);
}

Detector* Harness::detector(const ScaleSet& strain) {
  const std::string key = strain.to_string();
  auto it = detectors_.find(key);
  if (it != detectors_.end()) return it->second.get();

  DetectorConfig dcfg;
  dcfg.num_classes = dataset_.catalog().num_classes();
  TrainConfig tcfg;
  tcfg.train_scales = strain.scales;
  auto det = train_or_load_detector(dataset_, dcfg, tcfg, cache_dir_);
  Detector* raw = det.get();
  detectors_.emplace(key, std::move(det));
  return raw;
}

ScaleRegressor* Harness::regressor(const ScaleSet& strain,
                                   const RegressorConfig& rcfg,
                                   const ScaleSet& sreg) {
  const std::string key =
      strain.to_string() + "|" + rcfg.fingerprint() + "|" + sreg.to_string();
  auto it = regressors_.find(key);
  if (it != regressors_.end()) return it->second.get();

  Detector* det = detector(strain);
  RegressorTrainConfig tcfg;
  tcfg.sreg = sreg;
  TrainConfig det_tcfg;
  det_tcfg.train_scales = strain.scales;
  // Label generation and regressor training happen on a sibling split the
  // detector has never seen (see Dataset::sibling): on our data scale the
  // detector memorizes its training frames and the Sec. 3.1 labels would
  // degenerate to "stay at 600".
  const Dataset reg_split = dataset_.sibling(
      /*train_snippets=*/32, /*val_snippets=*/0, dataset_.seed() ^ 0x5EEDULL);
  auto reg = train_or_load_regressor(det, det_tcfg.fingerprint(), reg_split,
                                     rcfg, tcfg, cache_dir_);
  ScaleRegressor* raw = reg.get();
  regressors_.emplace(key, std::move(reg));
  return raw;
}

RegressorConfig Harness::default_regressor_config() const {
  RegressorConfig rcfg;
  DetectorConfig dcfg;
  rcfg.in_channels = dcfg.c3;
  return rcfg;
}

std::vector<Tensor> Harness::make_calibration_set(
    int n, const ScaleSet& sreg) const {
  const auto& frames = dataset_.val_frames();
  std::vector<Tensor> calib;
  for (int i = 0; i < n && i < static_cast<int>(frames.size()); ++i)
    calib.push_back(renderer_.render_at_scale(
        *frames[static_cast<std::size_t>(i)],
        sreg.scales[static_cast<std::size_t>(i) % sreg.scales.size()],
        dataset_.scale_policy()));
  return calib;
}

void Harness::prepare_mixed_precision(Detector* det, ScaleRegressor* reg,
                                      int calib_frames, int align_frames) {
  det->quantize(make_calibration_set(calib_frames));
  // Alignment pairs are sized independently of the range calibration: the
  // distillation below generalizes better with more (feature, target)
  // pairs, while the detector's activation-range observation is already
  // saturated at calib_frames.
  const std::vector<Tensor> align = make_calibration_set(align_frames);
  // Teacher pass first: the regressor's own decisions on fp32 features,
  // captured before any weight moves.
  det->set_execution_policy(ExecutionPolicy::fp32());
  reg->set_execution_policy(ExecutionPolicy::fp32());
  std::vector<float> targets;
  targets.reserve(align.size());
  for (const Tensor& img : align)
    targets.push_back(reg->predict(det->forward(img)));
  // Student pass: the same frames through the int8 detector — the feature
  // distribution mixed serving will actually produce.
  det->set_execution_policy(ExecutionPolicy::int8());
  std::vector<Tensor> feats;
  feats.reserve(align.size());
  for (const Tensor& img : align) feats.push_back(det->forward(img));
  // Alignment: cancel the systematic t̂ shift int8 features induce, while
  // the regressor itself keeps serving fp32 kernels.
  double before = 0.0;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const double d = static_cast<double>(reg->predict(feats[i])) -
                     static_cast<double>(targets[i]);
    before += d * d;
  }
  before /= static_cast<double>(std::max<std::size_t>(feats.size(), 1));
  const float after = reg->fine_tune(feats, targets);
  std::fprintf(stderr,
               "[mixed] regressor alignment on %zu frames: t-hat MSE "
               "%.3g -> %.3g\n",
               feats.size(), before, static_cast<double>(after));
}

std::vector<EvalDetection> Harness::to_reference(
    const DetectionOutput& out) const {
  std::vector<EvalDetection> dets;
  dets.reserve(out.detections.size());
  for (const Detection& d : out.detections) {
    EvalDetection e;
    e.box = rescale_box(d.box, out.image_h, out.image_w, ref_h_, ref_w_);
    e.class_id = d.class_id;
    e.score = d.score;
    dets.push_back(e);
  }
  return dets;
}

template <typename PerSnippetReset, typename PerFrame>
std::vector<SnippetRun> Harness::run_generic(PerSnippetReset reset,
                                             PerFrame frame) {
  std::vector<SnippetRun> runs;
  for (const Snippet& snip : dataset_.val_snippets()) {
    reset();
    SnippetRun run;
    for (const Scene& scene : snip.frames) frame(scene, &run);
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<SnippetRun> Harness::run_fixed(Detector* det, int scale) {
  const ScalePolicy& policy = dataset_.scale_policy();
  return run_generic(
      [] {},
      [&](const Scene& scene, SnippetRun* run) {
        const Tensor image = renderer_.render_at_scale(scene, scale, policy);
        DetectionOutput out = det->detect(image);
        run->frame_dets.push_back(to_reference(out));
        run->frame_ms.push_back(out.forward_ms);
        run->frame_scales.push_back(scale);
      });
}

std::vector<SnippetRun> Harness::run_random(Detector* det,
                                            const ScaleSet& sreg,
                                            std::uint64_t seed) {
  const ScalePolicy& policy = dataset_.scale_policy();
  Rng rng(seed);
  return run_generic(
      [] {},
      [&](const Scene& scene, SnippetRun* run) {
        const int scale = sreg.scales[static_cast<std::size_t>(
            rng.uniform_int(0, sreg.count() - 1))];
        const Tensor image = renderer_.render_at_scale(scene, scale, policy);
        DetectionOutput out = det->detect(image);
        run->frame_dets.push_back(to_reference(out));
        run->frame_ms.push_back(out.forward_ms);
        run->frame_scales.push_back(scale);
      });
}

std::vector<SnippetRun> Harness::run_multiscale(Detector* det,
                                                const ScaleSet& sreg) {
  const ScalePolicy& policy = dataset_.scale_policy();
  DetectorConfig dcfg = det->config();
  return run_generic(
      [] {},
      [&](const Scene& scene, SnippetRun* run) {
        double total_ms = 0.0;
        std::vector<EvalDetection> merged;
        for (int scale : sreg.scales) {
          const Tensor image = renderer_.render_at_scale(scene, scale, policy);
          DetectionOutput out = det->detect(image);
          total_ms += out.forward_ms;
          std::vector<EvalDetection> ref = to_reference(out);
          merged.insert(merged.end(), ref.begin(), ref.end());
        }
        // Merge with per-class NMS in the reference frame, keep top-K
        // (multi-shot testing protocol, Sec. 2.1).
        std::vector<int> keep = nms_detections(merged, dcfg.nms_threshold);
        if (static_cast<int>(keep.size()) > dcfg.top_k)
          keep.resize(static_cast<std::size_t>(dcfg.top_k));
        std::vector<EvalDetection> out_dets;
        out_dets.reserve(keep.size());
        for (int k : keep)
          out_dets.push_back(merged[static_cast<std::size_t>(k)]);
        run->frame_dets.push_back(std::move(out_dets));
        run->frame_ms.push_back(total_ms);
        run->frame_scales.push_back(sreg.max());
      });
}

std::vector<SnippetRun> Harness::run_adascale(Detector* det,
                                              ScaleRegressor* reg,
                                              const ScaleSet& sreg) {
  AdaScalePipeline pipeline(det, reg, &renderer_, dataset_.scale_policy(),
                            sreg, /*init_scale=*/600);
  return run_generic(
      [&] { pipeline.reset(); },
      [&](const Scene& scene, SnippetRun* run) {
        AdaFrameOutput out = pipeline.process(scene);
        run->frame_dets.push_back(to_reference(out.detections));
        run->frame_ms.push_back(out.total_ms());
        run->frame_scales.push_back(out.scale_used);
      });
}

std::vector<SnippetRun> Harness::run_oracle(Detector* det,
                                            const ScaleSet& sreg,
                                            const OptimalScaleConfig& ocfg) {
  const ScalePolicy& policy = dataset_.scale_policy();
  return run_generic(
      [] {},
      [&](const Scene& scene, SnippetRun* run) {
        const ScaleMetric m =
            compute_scale_metric(det, renderer_, policy, scene, sreg, ocfg);
        const Tensor image =
            renderer_.render_at_scale(scene, m.optimal_scale, policy);
        DetectionOutput out = det->detect(image);
        run->frame_dets.push_back(to_reference(out));
        run->frame_ms.push_back(out.forward_ms);
        run->frame_scales.push_back(m.optimal_scale);
      });
}

std::vector<SnippetRun> Harness::run_adascale_same_frame(Detector* det,
                                                         ScaleRegressor* reg,
                                                         const ScaleSet& sreg) {
  const ScalePolicy& policy = dataset_.scale_policy();
  int inherited = 600;
  return run_generic(
      [&] { inherited = 600; },
      [&](const Scene& scene, SnippetRun* run) {
        // First pass at the inherited scale to read the regressor...
        const Tensor probe = renderer_.render_at_scale(scene, inherited, policy);
        DetectionOutput first = det->detect(probe);
        const float t = reg->predict(det->features());
        const int chosen = decode_scale_target(t, inherited, sreg);
        // ...then re-detect this same frame at the decoded scale.
        const Tensor image = renderer_.render_at_scale(scene, chosen, policy);
        DetectionOutput out = det->detect(image);
        run->frame_dets.push_back(to_reference(out));
        run->frame_ms.push_back(first.forward_ms + reg->last_predict_ms() +
                                out.forward_ms);
        run->frame_scales.push_back(chosen);
        inherited = chosen;
      });
}

std::vector<SnippetRun> Harness::run_dff(Detector* det,
                                         ScaleRegressor* reg_or_null,
                                         const DffConfig& dff_cfg,
                                         const ScaleSet& sreg) {
  DffPipeline pipeline(det, reg_or_null, &renderer_, dataset_.scale_policy(),
                       dff_cfg, sreg, /*init_scale=*/600);
  return run_generic(
      [&] { pipeline.reset(); },
      [&](const Scene& scene, SnippetRun* run) {
        DffFrameOutput out = pipeline.process(scene);
        run->frame_dets.push_back(to_reference(out.detections));
        run->frame_ms.push_back(out.total_ms());
        run->frame_scales.push_back(out.scale_used);
      });
}

MethodRun Harness::evaluate(const std::string& label,
                            std::vector<SnippetRun> runs,
                            const SeqNmsConfig* seqnms) {
  MethodRun result;
  result.label = label;

  std::vector<std::string> names;
  for (const ClassSignature& c : dataset_.catalog().all())
    names.push_back(c.name);
  MapEvaluator evaluator(std::move(names));

  const auto& snippets = dataset_.val_snippets();
  double total_ms = 0.0;
  long frames = 0;
  double total_macs = 0.0;
  const ScalePolicy& policy = dataset_.scale_policy();
  Detector* macs_det = nullptr;
  if (!detectors_.empty()) macs_det = detectors_.begin()->second.get();

  for (std::size_t s = 0; s < runs.size(); ++s) {
    SnippetRun& run = runs[s];
    if (seqnms != nullptr) {
      Timer t;
      const SeqNmsReport report = seq_nms(&run.frame_dets, *seqnms);
      if (report.truncated())
        std::fprintf(stderr,
                     "harness: seq_nms hit max_iterations=%d on %d class(es) "
                     "(snippet %zu) — stranded boxes kept their original "
                     "scores; raise SeqNmsConfig::max_iterations if this "
                     "recurs\n",
                     seqnms->max_iterations, report.truncated_classes, s);
      // Seq-NMS cost amortized over the snippet's frames.
      const double per_frame =
          t.elapsed_ms() / std::max<std::size_t>(run.frame_dets.size(), 1);
      for (double& ms : run.frame_ms) ms += per_frame;
    }
    const Snippet& snip = snippets[s];
    for (std::size_t f = 0; f < run.frame_dets.size(); ++f) {
      const std::vector<GtBox> gts =
          scene_ground_truth(snip.frames[f], ref_h_, ref_w_);
      evaluator.add_frame(gts, run.frame_dets[f]);
      total_ms += run.frame_ms[f];
      result.used_scales.push_back(run.frame_scales[f]);
      if (macs_det != nullptr) {
        const int h = policy.render_h(run.frame_scales[f]);
        const int w = policy.render_w(run.frame_scales[f]);
        total_macs += static_cast<double>(macs_det->forward_macs(h, w));
      }
      ++frames;
    }
  }

  // TP/FP counting threshold 0.35: the OHEM-trained detector's calibrated
  // scores sit lower than a softmax-only one's; 0.5 would leave the Fig. 6
  // counters nearly empty.  AP/mAP are threshold-free and unaffected.
  result.eval = evaluator.compute(/*iou_threshold=*/0.5f,
                                  /*tp_fp_threshold=*/0.35f);
  result.mean_ms = frames > 0 ? total_ms / static_cast<double>(frames) : 0.0;
  result.fps = result.mean_ms > 0.0 ? 1000.0 / result.mean_ms : 0.0;
  result.mean_macs =
      frames > 0 ? total_macs / static_cast<double>(frames) : 0.0;
  return result;
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("ADASCALE_CACHE_DIR"); env != nullptr)
    return env;
  return "model_cache";
}

Harness make_vid_harness(const std::string& cache_dir,
                         const HarnessSizes& sizes) {
  return Harness(
      Dataset::synth_vid(sizes.train_snippets, sizes.val_snippets, sizes.seed),
      cache_dir);
}

Harness make_ytbb_harness(const std::string& cache_dir,
                          const HarnessSizes& sizes) {
  return Harness(Dataset::synth_ytbb(sizes.train_snippets, sizes.val_snippets,
                                     sizes.seed ^ 0xBBULL),
                 cache_dir);
}

}  // namespace ada
