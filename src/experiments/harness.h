// Experiment harness shared by every bench binary.
//
// Owns a dataset, a model cache, and the trained artifacts (detectors per
// S_train, regressors per architecture), and runs the paper's five testing
// methods over the validation snippets:
//
//   SS/SS      fixed-scale testing at 600 of a single-scale-trained model
//   MS/SS      fixed-scale testing at 600 of a multi-scale-trained model
//   MS/MS      multi-shot testing: all scales in S_reg, results merged w/ NMS
//   MS/Random  a random scale from S_reg per frame
//   MS/AdaScale  Algorithm 1
//
// plus the Fig. 7 video pipelines (DFF, Seq-NMS, and their AdaScale
// combinations).  All detections are rescaled into the scale-600 reference
// frame before evaluation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adascale/optimal_scale.h"
#include "adascale/pipeline.h"
#include "adascale/regressor_trainer.h"
#include "data/dataset.h"
#include "detection/trainer.h"
#include "eval/map_evaluator.h"
#include "video/dff.h"
#include "video/seq_nms.h"

namespace ada {

/// Raw per-snippet detections of one method (reference coordinates).
struct SnippetRun {
  std::vector<std::vector<EvalDetection>> frame_dets;
  std::vector<double> frame_ms;
  std::vector<int> frame_scales;
};

/// Evaluated summary of one method.
struct MethodRun {
  std::string label;
  MapResult eval;
  double mean_ms = 0.0;        ///< mean per-frame runtime
  double fps = 0.0;
  double mean_macs = 0.0;      ///< model-based conv cost per frame
  std::vector<int> used_scales;  ///< scale of every processed frame
};

class Harness {
 public:
  /// `cache_dir` may be empty to disable the model cache.
  Harness(Dataset dataset, std::string cache_dir);

  const Dataset& dataset() const { return dataset_; }

  /// The multi-scale-trained detector for a given S_train (trains once,
  /// caches in memory and on disk).
  Detector* detector(const ScaleSet& strain);

  /// The scale regressor trained against detector(strain).
  ScaleRegressor* regressor(const ScaleSet& strain, const RegressorConfig& rcfg,
                            const ScaleSet& sreg = ScaleSet::reg_default());

  // ---- raw runners (produce per-snippet detections) ----
  std::vector<SnippetRun> run_fixed(Detector* det, int scale);
  std::vector<SnippetRun> run_random(Detector* det, const ScaleSet& sreg,
                                     std::uint64_t seed);
  std::vector<SnippetRun> run_multiscale(Detector* det, const ScaleSet& sreg);
  std::vector<SnippetRun> run_adascale(Detector* det, ScaleRegressor* reg,
                                       const ScaleSet& sreg);
  /// Oracle upper bound: every frame is processed at its *own* optimal scale
  /// per the Sec. 3.1 metric (requires ground truth; runs the detector at
  /// every scale in `sreg` to find it, but charges only the chosen scale's
  /// runtime).  The temporal-consistency ablation compares AdaScale's
  /// one-frame-lagged prediction against this.
  std::vector<SnippetRun> run_oracle(Detector* det, const ScaleSet& sreg,
                                     const OptimalScaleConfig& ocfg = {});
  /// Same-frame regressor variant: regress t on the current frame at the
  /// inherited scale, re-render this frame at the decoded scale and detect
  /// again (double detection cost — the lag-free but slow alternative to
  /// Algorithm 1).
  std::vector<SnippetRun> run_adascale_same_frame(Detector* det,
                                                  ScaleRegressor* reg,
                                                  const ScaleSet& sreg);
  std::vector<SnippetRun> run_dff(Detector* det, ScaleRegressor* reg_or_null,
                                  const DffConfig& dff_cfg,
                                  const ScaleSet& sreg);

  /// Optionally applies Seq-NMS (adding its wall time to each snippet's
  /// frames), then evaluates into a MethodRun.
  MethodRun evaluate(const std::string& label, std::vector<SnippetRun> runs,
                     const SeqNmsConfig* seqnms = nullptr);

  /// Per-frame validation ground truth in reference coordinates.
  int reference_h() const { return ref_h_; }
  int reference_w() const { return ref_w_; }

  /// Default regressor config wired to this harness's detector width.
  RegressorConfig default_regressor_config() const;

  /// The INT8 calibration recipe shared by quickstart, tools/calibrate,
  /// and bench_report: up to `n` validation frames rendered cycling
  /// across `sreg`, so the observed activation ranges cover every scale
  /// serving will actually render (calibrating at 600 alone under-covers
  /// small renders and costs ~1 mAP at fixed 600).
  std::vector<Tensor> make_calibration_set(
      int n, const ScaleSet& sreg = ScaleSet::reg_default()) const;

  /// The mixed-precision serving recipe (quickstart under
  /// ADASCALE_GEMM=int8, tools/calibrate --mixed), in one call:
  /// calibrates + quantizes ONLY the detector and pins it to an int8
  /// policy, pins the regressor to fp32, then runs the quantization-aware
  /// alignment pass — the regressor's own scale decisions on fp32
  /// features become distillation targets for a small fine-tune on the
  /// int8 detector's features (ScaleRegressor::fine_tune).  Without the
  /// alignment, int8 feature noise biases t̂ and AdaScale-mode serving
  /// drops 2-4 mAP even with an fp32 regressor; with it the delta sits
  /// within the ±1.0 acceptance bar.  `calib_frames` follows the standard
  /// recipe (make_calibration_set; 16 is the measured sweet spot for the
  /// detector's range observation).  `align_frames` sizes the alignment
  /// pair set independently — distillation generalizes better with more
  /// (feature, target) pairs, while range calibration does not.
  void prepare_mixed_precision(Detector* det, ScaleRegressor* reg,
                               int calib_frames = 16, int align_frames = 48);

  /// The shared (stateless, thread-safe) renderer for this dataset.
  const Renderer& renderer() const { return renderer_; }

 private:
  /// Runs `process` over every val frame; shared runner plumbing.
  template <typename PerSnippetReset, typename PerFrame>
  std::vector<SnippetRun> run_generic(PerSnippetReset reset, PerFrame frame);

  /// Converts a DetectionOutput to reference-frame EvalDetections.
  std::vector<EvalDetection> to_reference(const DetectionOutput& out) const;

  Dataset dataset_;
  Renderer renderer_;
  std::string cache_dir_;
  int ref_h_ = 0, ref_w_ = 0;

  std::map<std::string, std::unique_ptr<Detector>> detectors_;
  std::map<std::string, std::unique_ptr<ScaleRegressor>> regressors_;
};

/// Standard harness sizes used by the benches (kept small enough that the
/// full suite runs in minutes on a laptop CPU, large enough for stable mAP).
struct HarnessSizes {
  int train_snippets = 24;
  int val_snippets = 12;
  std::uint64_t seed = 2019;  ///< the paper's publication year
};

/// Builds the SynthVID harness with standard sizes; cache under `cache_dir`.
Harness make_vid_harness(const std::string& cache_dir,
                         const HarnessSizes& sizes = HarnessSizes{});

/// Builds the SynthYTBB harness.
Harness make_ytbb_harness(const std::string& cache_dir,
                          const HarnessSizes& sizes = HarnessSizes{});

/// Default on-disk cache location (env ADASCALE_CACHE_DIR overrides).
std::string default_cache_dir();

}  // namespace ada
