#include "data/video.h"

#include <algorithm>
#include <cmath>

namespace ada {

namespace {

/// Per-object motion state advanced frame to frame.
struct Motion {
  float vx, vy;        // translation, world units / frame
  float vangle;        // rotation rate
  float size_rate;     // multiplicative size change / frame
};


Background make_background(const VideoConfig& cfg, Rng* rng) {
  Background bg;
  bg.base = Rgb{rng->uniform(0.3f, 0.6f), rng->uniform(0.3f, 0.6f),
                rng->uniform(0.3f, 0.6f)};
  bg.gradient = Rgb{rng->uniform(-0.15f, 0.15f), rng->uniform(-0.15f, 0.15f),
                    rng->uniform(-0.15f, 0.15f)};
  for (int i = 0; i < cfg.background_waves; ++i) {
    Background::Wave w;
    // Log-uniform frequency so both coarse structure and fine detail appear.
    float t = rng->uniform();
    w.freq = cfg.wave_freq_lo *
             std::pow(cfg.wave_freq_hi / cfg.wave_freq_lo, t);
    w.angle = rng->uniform(0.0f, 3.14159265f);
    w.phase = rng->uniform(0.0f, 6.2831853f);
    w.amplitude = rng->uniform(0.02f, 0.07f);
    bg.waves.push_back(w);
  }
  return bg;
}

ObjectInstance make_object(const ClassCatalog& catalog, int class_id,
                           SnippetTheme theme, Rng* rng) {
  const ClassSignature& sig = catalog.at(class_id);
  ObjectInstance o;
  o.class_id = class_id;
  o.cx = rng->uniform(0.2f, kAspect - 0.2f);
  o.cy = rng->uniform(0.2f, 0.8f);
  float lo = sig.size_lo, hi = sig.size_hi;
  if (theme == SnippetTheme::kLargeObject) lo = std::max(lo, 0.25f);
  if (theme == SnippetTheme::kSmallObjects) hi = std::min(hi, 0.18f);
  if (lo > hi) std::swap(lo, hi);
  // `size` in the signature is the full fraction of the shortest side; the
  // instance stores the half-extent.
  o.size = 0.5f * rng->uniform(lo, hi);
  o.aspect = rng->uniform(0.8f, 1.25f);
  o.angle = rng->uniform(-0.2f, 0.2f);
  o.texture_phase = rng->uniform(0.0f, 6.2831853f);
  o.brightness = rng->uniform(0.94f, 1.06f);
  return o;
}

ObjectInstance make_clutter(const ClassCatalog& catalog, const VideoConfig& cfg,
                            Rng* rng) {
  // Clutter mimics a random class's appearance at sub-object size: visible
  // (and thus a false-positive hazard) only at fine rendering scales.
  ObjectInstance c =
      make_object(catalog, rng->uniform_int(0, catalog.num_classes() - 1),
                  SnippetTheme::kMixed, rng);
  c.size = 0.5f * rng->uniform(cfg.clutter_size_lo, cfg.clutter_size_hi);
  c.cx = rng->uniform(0.02f, kAspect - 0.02f);
  c.cy = rng->uniform(0.02f, 0.98f);
  // Clutter resembles a class without matching it exactly: a color tint and
  // wide brightness range keep it a false-positive *hazard* at fine scales
  // while letting the detector learn to reject it.
  c.brightness = rng->uniform(0.72f, 1.28f);
  c.tint = Rgb{rng->uniform(-cfg.clutter_tint, cfg.clutter_tint),
               rng->uniform(-cfg.clutter_tint, cfg.clutter_tint),
               rng->uniform(-cfg.clutter_tint, cfg.clutter_tint)};
  return c;
}

void advance(ObjectInstance* o, Motion* m) {
  o->cx += m->vx;
  o->cy += m->vy;
  o->angle += m->vangle;
  o->size *= m->size_rate;
  // Reflect at the frame border (keeps objects mostly visible).
  if (o->cx < 0.05f || o->cx > kAspect - 0.05f) m->vx = -m->vx;
  if (o->cy < 0.05f || o->cy > 0.95f) m->vy = -m->vy;
  // Keep size within sane world bounds.
  if (o->size < 0.02f || o->size > 0.55f) m->size_rate = 2.0f - m->size_rate;
  o->size = std::clamp(o->size, 0.015f, 0.6f);
}

}  // namespace

int SnippetGenerator::next_class(int regime) {
  // Classes are striped into three size regimes by id % 3 (see ClassCatalog);
  // rotate round-robin within the stripe for guaranteed coverage.
  const int stride = 3;
  const int n = catalog_->num_classes();
  const int count = (n - regime + stride - 1) / stride;
  const int k = regime_cursor_[regime]++ % count;
  return regime + stride * k;
}

Snippet SnippetGenerator::generate(Rng* rng) {
  const float roll = rng->uniform();
  SnippetTheme theme = roll < 0.35f   ? SnippetTheme::kLargeObject
                       : roll < 0.65f ? SnippetTheme::kSmallObjects
                                      : SnippetTheme::kMixed;
  return generate_with_theme(theme, rng);
}

Snippet SnippetGenerator::generate_with_theme(SnippetTheme theme,
                                              Rng* rng) {
  Snippet snip;
  snip.theme = theme;

  Scene scene;
  scene.background = make_background(cfg_, rng);

  int num_objects = rng->uniform_int(cfg_.min_objects, cfg_.max_objects);
  if (theme == SnippetTheme::kLargeObject)
    num_objects = std::min(num_objects, 2);
  std::vector<Motion> motions;
  for (int i = 0; i < num_objects; ++i) {
    const int regime = theme == SnippetTheme::kLargeObject   ? 0
                       : theme == SnippetTheme::kSmallObjects ? 2
                                                              : rng->uniform_int(0, 2);
    const int cls = next_class(regime);
    scene.objects.push_back(make_object(*catalog_, cls, theme, rng));
    Motion m;
    m.vx = rng->uniform(-cfg_.max_speed, cfg_.max_speed);
    m.vy = rng->uniform(-cfg_.max_speed, cfg_.max_speed);
    m.vangle = rng->uniform(-0.03f, 0.03f);
    // Large-object snippets tend to zoom (the "approaching object" case the
    // paper's Fig. 9 clip 1 shows); others drift in size slowly.
    float rate_span = theme == SnippetTheme::kLargeObject
                          ? cfg_.max_size_rate
                          : cfg_.max_size_rate * 0.4f;
    m.size_rate = 1.0f + rng->uniform(-rate_span, rate_span);
    motions.push_back(m);
  }
  for (int i = 0; i < cfg_.clutter_count; ++i)
    scene.clutter.push_back(make_clutter(*catalog_, cfg_, rng));

  snip.frames.reserve(static_cast<std::size_t>(cfg_.frames_per_snippet));
  for (int f = 0; f < cfg_.frames_per_snippet; ++f) {
    snip.frames.push_back(scene);
    for (std::size_t i = 0; i < scene.objects.size(); ++i)
      advance(&scene.objects[i], &motions[i]);
  }
  return snip;
}

}  // namespace ada
