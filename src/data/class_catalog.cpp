#include "data/class_catalog.h"

#include <cmath>

namespace ada {

namespace {

/// Deterministically derives the appearance signature for class `id` out of
/// `n` classes.  Shapes and textures tile the 6x5 grid; colors walk a hue
/// wheel; size bias interleaves small/medium/large so that each size regime
/// contains several classes (needed for the per-class spread in Table 1).
ClassSignature make_signature(int id, int n, const std::string& name) {
  (void)n;
  ClassSignature s;
  s.name = name;
  s.shape = static_cast<Shape>(id % static_cast<int>(Shape::kCount));
  s.texture = static_cast<TexturePattern>(
      (id / static_cast<int>(Shape::kCount)) %
      static_cast<int>(TexturePattern::kCount));

  // Base colors come from a widely separated 4x4x4 RGB lattice, ordered by a
  // stride walk so neighboring class ids get distant colors.  64 cells give
  // every class (30 for SynthVID, 23 for SynthYTBB) a unique color with
  // >= 0.32 L1 separation.  The single-core training budget of this
  // reproduction needs classes a small CNN can separate quickly;
  // scale-dependence still comes from geometry (anchors) and clutter, not
  // from classification difficulty.
  const int lattice = (id * 37) % 64;  // 37 is coprime with 64
  const float level[4] = {0.04f, 0.36f, 0.68f, 1.00f};
  Rgb c{level[lattice % 4], level[(lattice / 4) % 4], level[(lattice / 16) % 4]};
  s.color = c;
  // Accent: darkened base — texture stays visible, mean color stays
  // class-specific (a complementary accent would pool every textured class
  // toward the same gray).
  s.accent = Rgb{0.45f * c.r + 0.08f, 0.45f * c.g + 0.08f, 0.45f * c.b + 0.08f};

  // Size bias: three regimes interleaved by id.  Regime spans overlap so the
  // regressor cannot trivially infer class from size alone.
  switch (id % 3) {
    case 0:  // large-biased (benefit from down-sampling)
      s.size_lo = 0.35f;
      s.size_hi = 0.95f;
      break;
    case 1:  // mid
      s.size_lo = 0.18f;
      s.size_hi = 0.55f;
      break;
    default:  // small-biased (need full resolution)
      s.size_lo = 0.07f;
      s.size_hi = 0.28f;
      break;
  }
  s.texture_freq = 3.0f + static_cast<float>((id * 5) % 4);
  return s;
}

std::vector<ClassSignature> build(const std::vector<std::string>& names) {
  std::vector<ClassSignature> out;
  out.reserve(names.size());
  const int n = static_cast<int>(names.size());
  for (int i = 0; i < n; ++i) out.push_back(make_signature(i, n, names[static_cast<std::size_t>(i)]));
  return out;
}

}  // namespace

ClassCatalog ClassCatalog::synth_vid() {
  // Order matches Table 1(a) of the paper.
  return ClassCatalog(build({
      "airplane",  "antelope",  "bear",       "bicycle", "bird",
      "bus",       "car",       "cattle",     "dog",     "domestic_cat",
      "elephant",  "fox",       "giant_panda","hamster", "horse",
      "lion",      "lizard",    "monkey",     "motorcycle", "rabbit",
      "red_panda", "sheep",     "snake",      "squirrel", "tiger",
      "train",     "turtle",    "watercraft", "whale",   "zebra",
  }));
}

ClassCatalog ClassCatalog::synth_ytbb() {
  // Order matches Table 1(b) of the paper.
  return ClassCatalog(build({
      "person",    "bird",   "boat",       "bike",     "bus",
      "bear",      "cow",    "cat",        "giraffe",  "potted_plant",
      "horse",     "motorcycle", "knife",  "airplane", "skateboard",
      "train",     "truck",  "zebra",      "toilet",   "dog",
      "elephant",  "umbrella", "car",
  }));
}

}  // namespace ada
