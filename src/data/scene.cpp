#include "data/scene.h"

#include <algorithm>
#include <cmath>

namespace ada {

void instance_half_extents(const ObjectInstance& obj, float* hx, float* hy) {
  // Object-local half extents before rotation.
  const float a = std::sqrt(obj.aspect);
  const float lx = obj.size * a;
  const float ly = obj.size / a;
  // Bounding box of a rotated rectangle [-lx,lx]x[-ly,ly].
  const float c = std::fabs(std::cos(obj.angle));
  const float s = std::fabs(std::sin(obj.angle));
  *hx = lx * c + ly * s;
  *hy = lx * s + ly * c;
}

std::vector<GtBox> scene_ground_truth(const Scene& scene, int h, int w) {
  std::vector<GtBox> out;
  const float scale = static_cast<float>(h);  // world unit = shortest side
  for (const ObjectInstance& obj : scene.objects) {
    float hx = 0, hy = 0;
    instance_half_extents(obj, &hx, &hy);
    GtBox box;
    box.x1 = std::clamp((obj.cx - hx) * scale, 0.0f, static_cast<float>(w - 1));
    box.x2 = std::clamp((obj.cx + hx) * scale, 0.0f, static_cast<float>(w - 1));
    box.y1 = std::clamp((obj.cy - hy) * scale, 0.0f, static_cast<float>(h - 1));
    box.y2 = std::clamp((obj.cy + hy) * scale, 0.0f, static_cast<float>(h - 1));
    box.class_id = obj.class_id;
    if (box.width() >= 2.0f && box.height() >= 2.0f) out.push_back(box);
  }
  return out;
}

}  // namespace ada
