// Dataset assembly: named configurations ("SynthVID", "SynthYTBB") and
// train/validation splits of generated snippets.
//
// SynthVID plays the role of ImageNet VID (30 classes); SynthYTBB plays the
// role of the paper's mini YouTube-BB (23 classes, fewer but larger objects
// and more zooming — different data statistics, same phenomenon).
#pragma once

#include <string>
#include <vector>

#include "data/class_catalog.h"
#include "data/renderer.h"
#include "data/video.h"

namespace ada {

/// A full dataset: catalog + splits + rendering policy.
class Dataset {
 public:
  /// Builds the SynthVID dataset.
  static Dataset synth_vid(int train_snippets, int val_snippets,
                           std::uint64_t seed);

  /// Builds the SynthYTBB dataset.
  static Dataset synth_ytbb(int train_snippets, int val_snippets,
                            std::uint64_t seed);

  const std::string& name() const { return name_; }
  const ClassCatalog& catalog() const { return catalog_; }
  const ScalePolicy& scale_policy() const { return scale_policy_; }
  const VideoConfig& video_config() const { return video_config_; }

  const std::vector<Snippet>& train_snippets() const { return train_; }
  const std::vector<Snippet>& val_snippets() const { return val_; }

  /// All training frames flattened (scene references stay owned by the
  /// snippets; pointers remain valid for the dataset's lifetime).
  std::vector<const Scene*> train_frames() const;
  std::vector<const Scene*> val_frames() const;

  /// A renderer bound to this dataset's catalog.
  Renderer make_renderer() const { return Renderer(&catalog_); }

  /// A fresh dataset with the same catalog/appearance/motion statistics but
  /// newly generated snippets (different seed).  Used to draw the regressor's
  /// label-generation split disjointly from the detector's training split:
  /// on a few hundred frames the detector memorizes its training data, which
  /// skews the Sec. 3.1 labels toward "stay at 600" (the paper's 3862-snippet
  /// training set has no such artifact; documented in DESIGN.md).
  Dataset sibling(int train_snippets, int val_snippets,
                  std::uint64_t seed) const;

  /// Seed this dataset's splits were generated from.
  std::uint64_t seed() const { return seed_; }

  /// Configuration fingerprint (keys the model cache).
  std::string fingerprint() const;

 private:
  Dataset(std::string name, ClassCatalog catalog, VideoConfig vc,
          int train_snippets, int val_snippets, std::uint64_t seed);

  std::string name_;
  ClassCatalog catalog_;
  VideoConfig video_config_;
  ScalePolicy scale_policy_;
  std::uint64_t seed_ = 0;
  std::vector<Snippet> train_;
  std::vector<Snippet> val_;
};

}  // namespace ada
