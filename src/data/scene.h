// Resolution-independent scene description.
//
// A Scene lives in *world coordinates*: y in [0,1] spans the shortest image
// side, x in [0, kAspect] spans the longer side.  The renderer can then draw
// the same scene at any pixel resolution — which is exactly what "re-scaling
// the input image" means in the paper, minus interpolation artifacts (the
// scene plays the role of the physical world in front of the camera).
#pragma once

#include <vector>

#include "data/class_catalog.h"

namespace ada {

/// Image aspect ratio (W / H); 4:3 like typical VID content.
inline constexpr float kAspect = 4.0f / 3.0f;

/// One rendered object (or clutter element).
struct ObjectInstance {
  int class_id = 0;        ///< class whose appearance signature is used
  float cx = 0.5f;         ///< center x, world units
  float cy = 0.5f;         ///< center y, world units
  float size = 0.2f;       ///< half-extent of the shortest object side, world units
  float aspect = 1.0f;     ///< object width / height
  float angle = 0.0f;      ///< rotation, radians
  float texture_phase = 0.0f;  ///< texture offset, decorrelates instances
  float brightness = 1.0f;     ///< lighting variation
  Rgb tint{0.0f, 0.0f, 0.0f};  ///< additive color shift (clutter uses this to
                               ///< look *similar to* but not identical to a
                               ///< class — a hazard, not a guaranteed FP)
};

/// Background appearance: smooth gradient + a bank of world-anchored
/// sinusoidal detail components.  High-frequency components are only
/// resolvable at fine scales — they are the "unnecessary details" the paper
/// says cause false positives at large input scales.
struct Background {
  Rgb base{0.45f, 0.45f, 0.45f};
  Rgb gradient{0.1f, 0.05f, -0.05f};  ///< per-channel top-to-bottom delta
  struct Wave {
    float freq = 8.0f;    ///< cycles per world unit
    float angle = 0.0f;   ///< orientation
    float phase = 0.0f;
    float amplitude = 0.05f;
  };
  std::vector<Wave> waves;
};

/// A full frame description.
struct Scene {
  Background background;
  std::vector<ObjectInstance> objects;  ///< labeled foreground
  std::vector<ObjectInstance> clutter;  ///< unlabeled distractors
};

/// Axis-aligned box in pixel coordinates (x1,y1)-(x2,y2), inclusive corners.
struct GtBox {
  float x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  int class_id = 0;

  float width() const { return x2 - x1; }
  float height() const { return y2 - y1; }
  float area() const {
    return (x2 > x1 && y2 > y1) ? (x2 - x1) * (y2 - y1) : 0.0f;
  }
};

/// World-space half extents (hx, hy) of an instance's bounding box,
/// accounting for aspect and rotation.
void instance_half_extents(const ObjectInstance& obj, float* hx, float* hy);

/// Ground-truth boxes of the labeled objects when the scene is rendered at
/// an image of `h` x `w` pixels.  Boxes are clipped to the image; objects
/// whose visible area degenerates (fully outside) are dropped.
std::vector<GtBox> scene_ground_truth(const Scene& scene, int h, int w);

}  // namespace ada
