#include "data/dataset.h"

#include <sstream>

namespace ada {

Dataset::Dataset(std::string name, ClassCatalog catalog, VideoConfig vc,
                 int train_snippets, int val_snippets, std::uint64_t seed)
    : name_(std::move(name)),
      catalog_(std::move(catalog)),
      video_config_(vc),
      seed_(seed) {
  SnippetGenerator gen(&catalog_, video_config_);
  Rng rng(seed);
  Rng train_rng = rng.fork();
  Rng val_rng = rng.fork();
  train_.reserve(static_cast<std::size_t>(train_snippets));
  for (int i = 0; i < train_snippets; ++i) train_.push_back(gen.generate(&train_rng));
  val_.reserve(static_cast<std::size_t>(val_snippets));
  for (int i = 0; i < val_snippets; ++i) val_.push_back(gen.generate(&val_rng));
}

Dataset Dataset::synth_vid(int train_snippets, int val_snippets,
                           std::uint64_t seed) {
  VideoConfig vc;  // defaults tuned for VID-like statistics
  return Dataset("SynthVID", ClassCatalog::synth_vid(), vc, train_snippets,
                 val_snippets, seed);
}

Dataset Dataset::synth_ytbb(int train_snippets, int val_snippets,
                            std::uint64_t seed) {
  VideoConfig vc;
  // YouTube-BB-like: fewer objects per frame, stronger zoom, denser fine
  // detail (user-generated video is cluttered) — larger AdaScale headroom,
  // matching the bigger mAP/speed win the paper reports on this dataset.
  vc.min_objects = 1;
  vc.max_objects = 2;
  vc.max_size_rate = 0.05f;
  vc.clutter_count = 14;
  vc.background_waves = 8;
  return Dataset("SynthYTBB", ClassCatalog::synth_ytbb(), vc, train_snippets,
                 val_snippets, seed);
}

Dataset Dataset::sibling(int train_snippets, int val_snippets,
                         std::uint64_t seed) const {
  return Dataset(name_, catalog_, video_config_, train_snippets, val_snippets,
                 seed);
}

std::vector<const Scene*> Dataset::train_frames() const {
  std::vector<const Scene*> out;
  for (const Snippet& s : train_)
    for (const Scene& f : s.frames) out.push_back(&f);
  return out;
}

std::vector<const Scene*> Dataset::val_frames() const {
  std::vector<const Scene*> out;
  for (const Snippet& s : val_)
    for (const Scene& f : s.frames) out.push_back(&f);
  return out;
}

std::string Dataset::fingerprint() const {
  std::ostringstream os;
  os << name_ << ":classes=" << catalog_.num_classes() << ":seed=" << seed_
     << ":train=" << train_.size() << ":val=" << val_.size()
     << ":fps=" << video_config_.frames_per_snippet;
  return os.str();
}

}  // namespace ada
