// Scene rasterizer.
//
// Renders a Scene to an RGB tensor at any resolution.  Rendering is pure and
// deterministic: the same scene at two resolutions differs only by sampling
// density, which is precisely the paper's image-scaling knob.  Edge
// anti-aliasing uses an analytic smoothstep whose width tracks the pixel
// footprint, so small/low-resolution renderings are naturally blurrier —
// fine texture and clutter wash out at small scales, exactly the effect
// AdaScale exploits.
#pragma once

#include "data/scene.h"
#include "tensor/tensor.h"

namespace ada {

/// Nominal-scale to rendered-pixels policy.
///
/// The paper uses nominal shortest-side scales {600, 480, 360, 240, 128}.
/// We keep the nominal numbers (every table speaks them) but rasterize at a
/// fixed 1:4 ratio so CPU training/eval stays fast: 600 -> 150 px.
struct ScalePolicy {
  float render_ratio = 0.25f;

  /// Shortest-side pixels for a nominal scale.
  int render_h(int nominal_scale) const {
    return std::max(8, static_cast<int>(nominal_scale * render_ratio + 0.5f));
  }
  /// Longer-side pixels (4:3 aspect).
  int render_w(int nominal_scale) const {
    return std::max(8, static_cast<int>(render_h(nominal_scale) * kAspect + 0.5f));
  }
};

/// Rasterizes scenes.
class Renderer {
 public:
  explicit Renderer(const ClassCatalog* catalog) : catalog_(catalog) {}

  /// Renders the scene into a (1,3,h,w) tensor with values in [0,1].
  Tensor render(const Scene& scene, int h, int w) const;

  /// Convenience: render at a nominal paper scale using `policy`.
  Tensor render_at_scale(const Scene& scene, int nominal_scale,
                         const ScalePolicy& policy) const;

 private:
  const ClassCatalog* catalog_;
};

}  // namespace ada
