// Video snippet synthesis: temporally-consistent scene sequences.
//
// Snippets come in three archetypes matching the dynamics the paper studies
// in Fig. 9: a dominant large object (zooming), small distant objects, and a
// mixed collection with varying sizes.  Motion is smooth (linear drift with
// border reflection + slow size change), which provides the temporal
// consistency AdaScale's frame-to-frame scale prediction relies on.
#pragma once

#include <vector>

#include "data/class_catalog.h"
#include "data/scene.h"
#include "util/rng.h"

namespace ada {

/// Which size regime dominates a snippet.
enum class SnippetTheme : int {
  kLargeObject = 0,  ///< one/few big objects, often zooming in
  kSmallObjects,     ///< several small objects
  kMixed,            ///< objects of varying sizes
};

/// A video clip: one Scene per frame plus bookkeeping.
struct Snippet {
  SnippetTheme theme = SnippetTheme::kMixed;
  std::vector<Scene> frames;

  int num_frames() const { return static_cast<int>(frames.size()); }
};

/// Generation knobs; defaults match the SynthVID experiments.
struct VideoConfig {
  int frames_per_snippet = 12;
  int min_objects = 1;
  int max_objects = 4;
  int clutter_count = 10;
  float clutter_size_lo = 0.015f;
  float clutter_size_hi = 0.04f;
  float clutter_tint = 0.18f;    ///< additive RGB jitter on clutter color
  float max_speed = 0.02f;       ///< world units / frame
  float max_size_rate = 0.03f;   ///< relative size change / frame
  int background_waves = 6;
  float wave_freq_lo = 2.0f;
  float wave_freq_hi = 40.0f;    ///< high-freq detail, visible only at large scales
};

/// Produces deterministic snippets given an Rng.
class SnippetGenerator {
 public:
  SnippetGenerator(const ClassCatalog* catalog, VideoConfig cfg)
      : catalog_(catalog), cfg_(cfg) {}

  /// Generates one snippet with a randomly drawn theme.
  Snippet generate(Rng* rng);

  /// Generates one snippet with a fixed theme (used by the Fig. 9 bench).
  Snippet generate_with_theme(SnippetTheme theme, Rng* rng);

  const VideoConfig& config() const { return cfg_; }

 private:
  /// Next class id for a size regime.  Classes rotate round-robin within
  /// each regime stripe so even small datasets cover every class — with ~30
  /// classes and few snippets, independent draws would leave several classes
  /// entirely absent from training.
  int next_class(int regime);

  const ClassCatalog* catalog_;
  VideoConfig cfg_;
  int regime_cursor_[3] = {0, 0, 0};
};

}  // namespace ada
