#include "data/renderer.h"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.h"

namespace ada {

namespace {

float smoothstep(float e0, float e1, float x) {
  float t = std::clamp((x - e0) / (e1 - e0), 0.0f, 1.0f);
  return t * t * (3.0f - 2.0f * t);
}

/// Signed "inside-ness" of shapes in object-local coordinates (u,v) in
/// [-1,1]^2; >0 inside, <=0 outside, magnitude ~ distance to the boundary in
/// local units.
float shape_field(Shape shape, float u, float v) {
  switch (shape) {
    case Shape::kEllipse:
      return 1.0f - std::sqrt(u * u + v * v);
    case Shape::kRectangle:
      return std::min(1.0f - std::fabs(u), 0.85f - std::fabs(v));
    case Shape::kTriangle:
      // Apex up: inside when v <= 1 - 2|u| and v >= -0.9.
      return std::min((1.0f - 2.0f * std::fabs(u) - v) * 0.5f, v + 0.9f);
    case Shape::kDiamond:
      return 1.0f - (std::fabs(u) + std::fabs(v));
    case Shape::kRing: {
      float r = std::sqrt(u * u + v * v);
      return std::min(1.0f - r, r - 0.45f);
    }
    case Shape::kCross: {
      float bar_h = std::min(1.0f - std::fabs(u), 0.35f - std::fabs(v));
      float bar_v = std::min(0.35f - std::fabs(u), 1.0f - std::fabs(v));
      return std::max(bar_h, bar_v);
    }
    default:
      return -1.0f;
  }
}

/// Texture mixing factor in [0,1]: 0 = base color, 1 = accent color.
float texture_field(TexturePattern tex, float u, float v, float freq,
                    float phase) {
  constexpr float kPi = 3.14159265358979f;
  switch (tex) {
    case TexturePattern::kSolid:
      return 0.0f;
    case TexturePattern::kHStripes:
      return std::sin(freq * kPi * v + phase) > 0.0f ? 1.0f : 0.0f;
    case TexturePattern::kVStripes:
      return std::sin(freq * kPi * u + phase) > 0.0f ? 1.0f : 0.0f;
    case TexturePattern::kChecker: {
      float a = std::sin(freq * kPi * u + phase);
      float b = std::sin(freq * kPi * v + phase);
      return a * b > 0.0f ? 1.0f : 0.0f;
    }
    case TexturePattern::kDots: {
      float fu = freq * u + phase;
      float fv = freq * v + phase;
      float du = fu - std::round(fu);
      float dv = fv - std::round(fv);
      return (du * du + dv * dv) < 0.09f ? 1.0f : 0.0f;
    }
    default:
      return 0.0f;
  }
}

struct Pixel {
  float r, g, b;
};

/// Pixel-footprint attenuation: a pattern with `cycles_per_pixel` at the
/// current sampling density integrates toward its mean over the pixel area.
/// Gaussian falloff approximates the sinc of box integration; at the Nyquist
/// limit (0.5 cycles/px) contrast is ~60%, one cycle/px ~14%.  This is what
/// makes fine detail (clutter textures, background waves) wash out at small
/// rendering scales — the effect AdaScale exploits to kill false positives.
float footprint_attenuation(float cycles_per_pixel) {
  return std::exp(-2.0f * cycles_per_pixel * cycles_per_pixel);
}

/// Mean value of a texture pattern (what it fades to when unresolvable).
float texture_mean(TexturePattern tex) {
  switch (tex) {
    case TexturePattern::kSolid:
      return 0.0f;
    case TexturePattern::kDots:
      return 0.2827f;  // pi * 0.3^2
    default:
      return 0.5f;  // stripes / checker
  }
}

Pixel background_color(const Background& bg, float wx, float wy,
                       float pixel_world) {
  Pixel p{bg.base.r + bg.gradient.r * wy, bg.base.g + bg.gradient.g * wy,
          bg.base.b + bg.gradient.b * wy};
  for (const Background::Wave& w : bg.waves) {
    const float atten = footprint_attenuation(w.freq * pixel_world);
    if (atten < 1e-3f) continue;
    float axis = wx * std::cos(w.angle) + wy * std::sin(w.angle);
    float v = atten * w.amplitude *
              std::sin(6.2831853f * w.freq * axis + w.phase);
    p.r += v;
    p.g += v * 0.8f;
    p.b += v * 1.2f;
  }
  return p;
}

}  // namespace

Tensor Renderer::render(const Scene& scene, int h, int w) const {
  Tensor img(1, 3, h, w);
  const float inv_scale = 1.0f / static_cast<float>(h);
  // Anti-alias width: one pixel footprint in world units.
  const float aa_world = inv_scale;

  // Paint order: background, then clutter, then objects (objects occlude
  // clutter; later objects occlude earlier ones).
  std::vector<const ObjectInstance*> paint;
  paint.reserve(scene.clutter.size() + scene.objects.size());
  for (const auto& c : scene.clutter) paint.push_back(&c);
  for (const auto& o : scene.objects) paint.push_back(&o);

  // Rows are independent (each writes only its own pixels of the three
  // channel planes), so they fan out across the runtime pool.
  parallel_for(h, 8, [&](std::int64_t ib, std::int64_t ie) {
  for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
    const float wy = (static_cast<float>(i) + 0.5f) * inv_scale;
    for (int j = 0; j < w; ++j) {
      const float wx = (static_cast<float>(j) + 0.5f) * inv_scale;
      Pixel px = background_color(scene.background, wx, wy, aa_world);

      for (const ObjectInstance* obj : paint) {
        // Cheap reject on the bounding circle.
        const float dx = wx - obj->cx;
        const float dy = wy - obj->cy;
        const float reach = obj->size * (obj->aspect > 1.0f
                                             ? std::sqrt(obj->aspect)
                                             : 1.0f / std::sqrt(obj->aspect)) *
                            1.5f;
        if (dx * dx + dy * dy > reach * reach) continue;

        const ClassSignature& sig = catalog_->at(obj->class_id);
        // World -> object-local coordinates.
        const float ca = std::cos(obj->angle);
        const float sa = std::sin(obj->angle);
        const float rx = dx * ca + dy * sa;
        const float ry = -dx * sa + dy * ca;
        const float a = std::sqrt(obj->aspect);
        const float u = rx / (obj->size * a);
        const float v = ry / (obj->size / a);

        const float field = shape_field(sig.shape, u, v);
        // Convert local-unit field to world units (approx) for AA width.
        const float aa_local = aa_world / std::max(obj->size, 1e-4f);
        const float alpha = smoothstep(0.0f, aa_local * 1.5f, field);
        if (alpha <= 0.0f) continue;

        // Texture fades toward its mean when its cycles are sub-pixel:
        // sin(freq*pi*u) has freq/2 cycles per local unit, and one pixel
        // spans aa_local local units.
        const float raw_t = texture_field(sig.texture, u, v, sig.texture_freq,
                                          obj->texture_phase);
        const float t_mean = texture_mean(sig.texture);
        const float t = t_mean + (raw_t - t_mean) *
                                     footprint_attenuation(
                                         0.5f * sig.texture_freq * aa_local);
        const float br = obj->brightness;
        const float cr =
            (sig.color.r * (1.0f - t) + sig.accent.r * t) * br + obj->tint.r;
        const float cg =
            (sig.color.g * (1.0f - t) + sig.accent.g * t) * br + obj->tint.g;
        const float cb =
            (sig.color.b * (1.0f - t) + sig.accent.b * t) * br + obj->tint.b;
        px.r = px.r * (1.0f - alpha) + cr * alpha;
        px.g = px.g * (1.0f - alpha) + cg * alpha;
        px.b = px.b * (1.0f - alpha) + cb * alpha;
      }

      img.at(0, 0, i, j) = std::clamp(px.r, 0.0f, 1.0f);
      img.at(0, 1, i, j) = std::clamp(px.g, 0.0f, 1.0f);
      img.at(0, 2, i, j) = std::clamp(px.b, 0.0f, 1.0f);
    }
  }
  });
  return img;
}

Tensor Renderer::render_at_scale(const Scene& scene, int nominal_scale,
                                 const ScalePolicy& policy) const {
  return render(scene, policy.render_h(nominal_scale),
                policy.render_w(nominal_scale));
}

}  // namespace ada
