// Class catalogs for the two synthetic datasets.
//
// SynthVID mirrors ImageNet VID's 30 categories (same names, same order as
// Table 1(a)); SynthYTBB mirrors the paper's mini YouTube-BB with 23
// categories (Table 1(b)).  Each class gets a deterministic *appearance
// signature* — shape, texture, palette color, and a size bias — so a small
// CNN can discriminate classes, and so different classes have genuinely
// different optimal scales (large-biased classes benefit from down-sampling,
// small-biased classes need full resolution; this is what produces the
// per-class spread in Table 1 / Fig. 5 / Fig. 6).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace ada {

/// Geometric silhouette of an object class.
enum class Shape : int {
  kEllipse = 0,
  kRectangle,
  kTriangle,
  kDiamond,
  kRing,
  kCross,
  kCount,
};

/// Surface pattern of an object class, defined in object-local coordinates
/// (so patterns scale with the object, like real texture).
enum class TexturePattern : int {
  kSolid = 0,
  kHStripes,
  kVStripes,
  kChecker,
  kDots,
  kCount,
};

/// RGB in [0,1].
struct Rgb {
  float r = 0.0f, g = 0.0f, b = 0.0f;
};

/// Per-class appearance + statistics signature.
struct ClassSignature {
  std::string name;
  Shape shape = Shape::kEllipse;
  TexturePattern texture = TexturePattern::kSolid;
  Rgb color;
  Rgb accent;          ///< secondary texture color
  float size_lo = 0.1f;  ///< min object size, fraction of shortest image side
  float size_hi = 0.5f;  ///< max object size
  float texture_freq = 4.0f;  ///< pattern cycles across the object
};

/// The full catalog for one dataset.
class ClassCatalog {
 public:
  /// 30-class catalog matching ImageNet VID names.
  static ClassCatalog synth_vid();

  /// 23-class catalog matching the paper's mini YouTube-BB table.
  static ClassCatalog synth_ytbb();

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const ClassSignature& at(int class_id) const { return classes_.at(static_cast<std::size_t>(class_id)); }
  const std::vector<ClassSignature>& all() const { return classes_; }

 private:
  explicit ClassCatalog(std::vector<ClassSignature> classes)
      : classes_(std::move(classes)) {}

  std::vector<ClassSignature> classes_;
};

}  // namespace ada
