// Dense float tensor in NCHW layout.
//
// This is the numeric substrate for the whole reproduction: the detector
// backbone, the detection heads, and the AdaScale scale regressor all run on
// these tensors.  Design choices:
//   * float32 only — matches what the paper's MXNet models use in inference.
//   * contiguous row-major storage, shape up to 4 dims (N, C, H, W); lower-
//     rank tensors store trailing singleton dims explicitly.
//   * value semantics with cheap moves; no views/strides — kernels that need
//     sub-tensor access (conv, pooling) index explicitly, which keeps every
//     kernel auditable.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <string>
#include <vector>

namespace ada {

/// Allocator that hands out 64-byte (cache-line / SIMD-register) aligned
/// storage.  Tensor data lives behind it so the packed GEMM kernels and
/// im2col row copies operate on aligned cache lines.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const { return false; }
};

/// Aligned float buffer used by Tensor (and anything sharing its storage).
using AlignedFloatVec = std::vector<float, AlignedAllocator<float>>;

/// 4-D float tensor (N, C, H, W). Rank-1/2 data uses singleton dims.
class Tensor {
 public:
  Tensor() : n_(0), c_(0), h_(0), w_(0) {}

  /// Allocates an n×c×h×w tensor initialized to zero.
  Tensor(int n, int c, int h, int w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n) * c * h * w, 0.0f) {
    assert(n >= 0 && c >= 0 && h >= 0 && w >= 0);
  }

  /// Convenience: 1×c×h×w (single image / feature map).
  static Tensor chw(int c, int h, int w) { return Tensor(1, c, h, w); }

  /// Convenience: flat vector of length len stored as 1×len×1×1.
  static Tensor vec(int len) { return Tensor(1, len, 1, 1); }

  /// Stacks same-shaped (1,C,H,W) images into one (N,C,H,W) batch tensor.
  /// This is how the batch scheduler coalesces frames that target the same
  /// scale into a single backbone forward.
  static Tensor batch_of(const std::vector<const Tensor*>& images);

  /// Copy of image `n` as a (1,C,H,W) tensor (batch → single-image).
  Tensor image(int n) const;

  /// Floats (not bytes) of one image: C*H*W.  Image n's data starts at
  /// data() + n * image_size().
  std::size_t image_size() const {
    return static_cast<std::size_t>(c_) * h_ * w_;
  }

  int n() const { return n_; }
  int c() const { return c_; }
  int h() const { return h_; }
  int w() const { return w_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// True if shapes match exactly.
  bool same_shape(const Tensor& o) const {
    return n_ == o.n_ && c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  AlignedFloatVec& storage() { return data_; }
  const AlignedFloatVec& storage() const { return data_; }

  float& at(int n, int c, int h, int w) {
    return data_[offset(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    return data_[offset(n, c, h, w)];
  }

  /// Flat accessors for rank-1 use.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Sets every element to v.
  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reinterprets the tensor with a new shape of equal element count.
  void reshape(int n, int c, int h, int w) {
    assert(static_cast<std::size_t>(n) * c * h * w == data_.size());
    n_ = n; c_ = c; h_ = h; w_ = w;
  }

  /// Sum of all elements.
  double sum() const;
  /// Mean of all elements (0 for empty).
  double mean() const;
  /// Max absolute element (0 for empty).
  float abs_max() const;

  /// Human-readable shape, e.g. "[1,48,18,25]".
  std::string shape_str() const;

 private:
  std::size_t offset(int n, int c, int h, int w) const {
    assert(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
           w >= 0 && w < w_);
    return ((static_cast<std::size_t>(n) * c_ + c) * h_ + h) * w_ + w;
  }

  int n_, c_, h_, w_;
  AlignedFloatVec data_;
};

}  // namespace ada
