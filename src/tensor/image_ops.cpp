#include "tensor/image_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ada {

namespace {

/// Clamped bilinear sample of channel plane (n=0, channel c) at float coords.
float sample(const Tensor& t, int c, float y, float x) {
  const int h = t.h(), w = t.w();
  y = std::clamp(y, 0.0f, static_cast<float>(h - 1));
  x = std::clamp(x, 0.0f, static_cast<float>(w - 1));
  int y0 = static_cast<int>(std::floor(y));
  int x0 = static_cast<int>(std::floor(x));
  int y1 = std::min(y0 + 1, h - 1);
  int x1 = std::min(x0 + 1, w - 1);
  float fy = y - static_cast<float>(y0);
  float fx = x - static_cast<float>(x0);
  float v00 = t.at(0, c, y0, x0), v01 = t.at(0, c, y0, x1);
  float v10 = t.at(0, c, y1, x0), v11 = t.at(0, c, y1, x1);
  return v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx +
         v10 * fy * (1 - fx) + v11 * fy * fx;
}

}  // namespace

void bilinear_resize(const Tensor& src, int out_h, int out_w, Tensor* dst) {
  assert(src.n() == 1 && out_h > 0 && out_w > 0);
  if (dst->n() != 1 || dst->c() != src.c() || dst->h() != out_h ||
      dst->w() != out_w)
    *dst = Tensor(1, src.c(), out_h, out_w);
  if (src.h() == out_h && src.w() == out_w) {
    std::copy(src.data(), src.data() + src.size(), dst->data());
    return;
  }
  const float sy = static_cast<float>(src.h()) / static_cast<float>(out_h);
  const float sx = static_cast<float>(src.w()) / static_cast<float>(out_w);
  for (int c = 0; c < src.c(); ++c)
    for (int i = 0; i < out_h; ++i) {
      float y = (static_cast<float>(i) + 0.5f) * sy - 0.5f;
      for (int j = 0; j < out_w; ++j) {
        float x = (static_cast<float>(j) + 0.5f) * sx - 0.5f;
        dst->at(0, c, i, j) = sample(src, c, y, x);
      }
    }
}

void flip_horizontal(const Tensor& src, Tensor* dst) {
  assert(src.n() == 1);
  if (!dst->same_shape(src)) *dst = Tensor(1, src.c(), src.h(), src.w());
  const int w = src.w();
  for (int c = 0; c < src.c(); ++c)
    for (int i = 0; i < src.h(); ++i)
      for (int j = 0; j < w; ++j)
        dst->at(0, c, i, j) = src.at(0, c, i, w - 1 - j);
}

void bilinear_warp(const Tensor& src, const Tensor& flow_y,
                   const Tensor& flow_x, Tensor* dst) {
  assert(src.n() == 1);
  assert(flow_y.h() == src.h() && flow_y.w() == src.w());
  assert(flow_x.h() == src.h() && flow_x.w() == src.w());
  if (!dst->same_shape(src)) *dst = Tensor(1, src.c(), src.h(), src.w());
  for (int c = 0; c < src.c(); ++c)
    for (int i = 0; i < src.h(); ++i)
      for (int j = 0; j < src.w(); ++j) {
        float y = static_cast<float>(i) + flow_y.at(0, 0, i, j);
        float x = static_cast<float>(j) + flow_x.at(0, 0, i, j);
        dst->at(0, c, i, j) = sample(src, c, y, x);
      }
}

}  // namespace ada
