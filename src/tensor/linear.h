// Fully-connected layer primitives (used by the scale regressor head).
#pragma once

#include "runtime/exec_plan.h"
#include "tensor/qgemm.h"
#include "tensor/tensor.h"

namespace ada {

/// y = W x + b with x: (N, in, 1, 1), W: (out, in, 1, 1), b: (1, out, 1, 1)
/// (b may be empty). y resized to (N, out, 1, 1).  A batch is one GEMM with
/// M = N; each row's output is bit-identical to the N = 1 call (per-element
/// accumulation order depends only on the K axis — see tensor/gemm.h).
/// `backend` picks the fp32 GEMM; kDefault resolves the process default.
void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor* y, GemmBackend backend = GemmBackend::kDefault);

/// INT8 forward: y = dequant(quant(x) * Wq^T) + b, same shape contract as
/// linear_forward.  Computes the transposed product y^T(out, N) = Wq(out,
/// in) x^T(in, N) so the per-output-channel scales stay on the GEMM row
/// axis, then scatters back to (N, out).  Batched rows are bit-identical
/// to the N = 1 call (integer accumulation is exact).
void linear_forward_int8(const Tensor& x, const QuantizedWeights& qw,
                         const Tensor& b, Tensor* y);

/// Accumulates gradients: dx (if non-null), dw, db (if non-null).
void linear_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor* dw, Tensor* db);

/// Scratch-arena floats one linear_forward / linear_forward_int8 call
/// claims on the calling thread — the linear counterpart of
/// conv2d_forward_workspace_floats, recorded by execution plans.
std::size_t linear_forward_workspace_floats(int n, int in, int out,
                                            KernelKind kernel);

}  // namespace ada
