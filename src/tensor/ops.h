// Elementwise and reduction primitives shared by the NN layers.
#pragma once

#include "tensor/tensor.h"

namespace ada {

/// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor* y);

/// y = max(x, 0).
void relu_forward(const Tensor& x, Tensor* y);

/// dx = dy ⊙ [x > 0]; accumulates into dx.
void relu_backward(const Tensor& x, const Tensor& dy, Tensor* dx);

/// In-place scale: x *= alpha.
void scale(Tensor* x, float alpha);

/// Global average pooling: (N,C,H,W) -> (N,C,1,1).
void global_avg_pool_forward(const Tensor& x, Tensor* y);

/// Backward of global average pooling; accumulates into dx.
void global_avg_pool_backward(const Tensor& x_shape_like, const Tensor& dy,
                              Tensor* dx);

/// 2x2 max pooling with stride 2 (floor semantics). Records argmax flat
/// indices into `argmax` (same shape as y) for the backward pass.
void maxpool2_forward(const Tensor& x, Tensor* y, std::vector<int>* argmax);

/// Backward of 2x2 max pooling; accumulates into dx using recorded argmax.
void maxpool2_backward(const Tensor& dy, const std::vector<int>& argmax,
                       Tensor* dx);

/// Numerically-stable softmax over the C dimension of a (1,C,1,1) vector or
/// row-wise over a (N,C,1,1) batch.
void softmax_rows(const Tensor& x, Tensor* y);

}  // namespace ada
