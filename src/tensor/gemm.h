// Single-precision GEMM backend for the conv / linear hot path.
//
// Two implementations sit behind one entry point:
//
//   * kPacked (default) — blocked, register-tiled SGEMM.  A is packed into
//     MR-row panels and B into NR-column panels held in the thread-local
//     scratch arena; a 6x16 micro-kernel keeps the full accumulator tile in
//     registers so C is written once instead of once per K step.  The
//     micro-kernel is plain fixed-trip C++ compiled three times (AVX-512,
//     AVX2, baseline) and dispatched once at runtime from CPUID, so the same
//     binary runs everywhere and auto-vectorizes to the widest ISA present.
//   * kReference — the pre-GEMM scalar path (bias-init + ascending-k
//     multiply-add), kept as a runtime-selectable fallback so any result can
//     be reproduced on any machine and the packed kernel has an oracle.
//
// Determinism: both backends use a fixed per-element accumulation order —
// k ascending within each K block, blocks folded into C in ascending order
// (for K ≤ 512 that is one straight ascending chain; beyond, the block
// partial sums re-associate, but the blocking is a compile-time constant,
// never a function of threads or input) — and the parallel split is over
// disjoint row/column regions of C, so results are bit-identical
// run-to-run regardless of thread count.  The packed kernel avoids FP
// contraction (-ffp-contract=off, see CMakeLists.txt), so its results are
// also identical across the dispatched ISAs; the two *backends* agree only
// to rounding (tolerance-tested).  Changing kKC/kNC changes packed results
// (within tolerance) — bump the model-cache fingerprints if you do.
//
// The epilogue hook fuses the bias add and ReLU into the write-out, which
// saves a full read-modify-write pass over every activation tensor in the
// detector backbone.
#pragma once

#include <cstddef>

namespace ada {

/// Which GEMM implementation runs.  The process-wide *default* is
/// initialized once from the ADASCALE_GEMM environment variable
/// ("packed" | "reference" | "int8").
///
/// kInt8 selects the quantized inference path (tensor/qgemm.h) for layers
/// that hold quantized weights (Conv2dLayer/LinearLayer after quantize());
/// everything else — training, unquantized layers, gradient GEMMs — falls
/// back to the packed fp32 kernel, so flipping the env var is always safe.
///
/// kDefault is not a backend: it is the "defer to the process-wide
/// default" marker used by explicit-backend call sites and unpinned
/// ExecutionPolicy values (runtime/exec_policy.h).  gemm_backend() never
/// returns it and set_gemm_backend() rejects it.
enum class GemmBackend { kReference, kPacked, kInt8, kDefault };

/// The process-wide default backend (env-initialized, overridable for
/// tests/benches).  Hot-path kernel selection no longer reads this
/// directly: models resolve an ExecutionPolicy (which consults this only
/// when unpinned) and pass the concrete backend down.  Never kDefault.
GemmBackend gemm_backend();

/// Overrides the process-wide default backend.  This mutates shared state:
/// concurrently serving models with *unpinned* policies will observe the
/// change mid-stream.  Serving should pin per-model policies instead and
/// reserve this for tests/benches/tools.  kDefault is rejected (no-op).
void set_gemm_backend(GemmBackend backend);
const char* gemm_backend_name();

/// Name of the micro-kernel ISA the runtime dispatcher picked on this
/// machine: "avx512" | "avx2" | "generic".
const char* gemm_kernel_isa();

/// Micro-kernel ISA levels, ordered: each level implies all lower ones.
/// kAvx512 means AVX-512F + AVX-512BW (the quantized kernels need the byte
/// ops); kVnni additionally means AVX-512 VNNI (vpdpbusd).  The fp32
/// dispatcher has no VNNI kernel, so kVnni selects its avx512 body.
enum class KernelIsa { kGeneric = 0, kAvx2 = 1, kAvx512 = 2, kVnni = 3 };

/// The ISA level kernels dispatch at: the CPU's native capability, capped
/// by the ADASCALE_ISA environment variable ("generic" | "avx2" | "avx512"
/// | "vnni", read once at first use) so lower ISA paths are testable on any
/// machine.  A level the CPU cannot satisfy is a hard error (abort with a
/// message) — silently running a different kernel than the one under test
/// would make an oracle run vacuous.  Unknown values warn and use native.
KernelIsa kernel_isa_cap();

/// The CPU's native ISA level, ignoring ADASCALE_ISA — what the hardware
/// can actually run.  Benches use this to decide which kernel rows exist.
KernelIsa kernel_isa_native();

/// "generic" | "avx2" | "avx512" | "vnni".
const char* kernel_isa_name(KernelIsa isa);

/// Read-only strided matrix view.  Element (i, j) lives at p[i*rs + j*cs],
/// which lets callers hand in transposed operands (e.g. W^T for the conv
/// input gradient) without materializing them — packing absorbs the stride.
struct GemmMat {
  const float* p = nullptr;
  std::ptrdiff_t rs = 0;  ///< row stride
  std::ptrdiff_t cs = 1;  ///< column stride
};

/// Fused write-out: C(m,n) gets row_bias[m] and/or col_bias[n] added, then
/// optionally ReLU-clamped, in the same pass that stores the tile.
struct GemmEpilogue {
  const float* row_bias = nullptr;  ///< conv bias (one per output channel)
  const float* col_bias = nullptr;  ///< linear bias (one per output unit)
  bool relu = false;
};

/// C(MxN, row-major, leading dim ldc) = A(MxK) * B(KxN) [+ C if accumulate]
/// with the epilogue applied to the final values.  Parallelizes over column
/// stripes via the runtime pool; see header comment for the determinism
/// contract.
///
/// `backend` selects the fp32 implementation: kReference or kPacked run as
/// named, kDefault resolves the process-wide default, and kInt8 (which has
/// no fp32 kernel — the quantized path branches above this seam, in the
/// layers that own QuantizedWeights) runs packed.  Planned forwards pass
/// the backend their ExecutionPlan resolved; legacy call sites omit it.
void sgemm(int M, int N, int K, const GemmMat& A, const GemmMat& B, float* C,
           int ldc, bool accumulate, const GemmEpilogue& epi = {},
           GemmBackend backend = GemmBackend::kDefault);

/// Scratch-arena floats one sgemm call with these shapes claims on the
/// calling thread (A/B packing panels, rounded to whole cache lines the
/// way the arena rounds).  The reference backend packs nothing and returns
/// 0.  Execution plans record this so the arena can be pre-sized to the
/// exact steady-state peak (runtime/exec_plan.h).
std::size_t sgemm_workspace_floats(int M, int N, int K, GemmBackend backend);

}  // namespace ada
