#include "tensor/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ada {

void softmax_span(const float* logits, int num_classes, float* probs) {
  float mx = logits[0];
  for (int c = 1; c < num_classes; ++c) mx = std::max(mx, logits[c]);
  double denom = 0.0;
  for (int c = 0; c < num_classes; ++c)
    denom += std::exp(static_cast<double>(logits[c] - mx));
  for (int c = 0; c < num_classes; ++c)
    probs[c] = static_cast<float>(
        std::exp(static_cast<double>(logits[c] - mx)) / denom);
}

float softmax_cross_entropy_span(const float* logits, int num_classes,
                                 int target_class, float* dlogits) {
  assert(target_class >= 0 && target_class < num_classes);
  std::vector<float> probs(static_cast<std::size_t>(num_classes));
  softmax_span(logits, num_classes, probs.data());
  float p = std::max(probs[static_cast<std::size_t>(target_class)], 1e-12f);
  float loss = -std::log(p);
  if (dlogits != nullptr) {
    for (int c = 0; c < num_classes; ++c)
      dlogits[c] += probs[static_cast<std::size_t>(c)] -
                    (c == target_class ? 1.0f : 0.0f);
  }
  return loss;
}

float softmax_cross_entropy(const Tensor& logits, int target_class,
                            Tensor* dlogits) {
  assert(logits.n() == 1 && logits.h() == 1 && logits.w() == 1);
  return softmax_cross_entropy_span(
      logits.data(), logits.c(), target_class,
      dlogits != nullptr ? dlogits->data() : nullptr);
}

float smooth_l1(const float* pred, const float* target, int n, float* dpred) {
  float loss = 0.0f;
  for (int i = 0; i < n; ++i) {
    float d = pred[i] - target[i];
    float ad = std::fabs(d);
    if (ad < 1.0f) {
      loss += 0.5f * d * d;
      if (dpred != nullptr) dpred[i] += d;
    } else {
      loss += ad - 0.5f;
      if (dpred != nullptr) dpred[i] += (d > 0.0f ? 1.0f : -1.0f);
    }
  }
  return loss;
}

float mse_scalar(float pred, float target, float* dpred) {
  float d = pred - target;
  if (dpred != nullptr) *dpred += 2.0f * d;
  return d * d;
}

}  // namespace ada
