#include "tensor/conv2d.h"

#include <algorithm>
#include <cassert>

#include "runtime/thread_pool.h"

namespace ada {

namespace {

/// im2col: unpacks input patches into a (in_c*k*k) x (oh*ow) column matrix.
void im2col(const Tensor& x, int n, const ConvSpec& s, int oh, int ow,
            std::vector<float>* cols) {
  const int k = s.kernel;
  cols->assign(static_cast<std::size_t>(s.in_channels) * k * k * oh * ow,
               0.0f);
  float* col = cols->data();
  for (int c = 0; c < s.in_channels; ++c)
    for (int ki = 0; ki < k; ++ki)
      for (int kj = 0; kj < k; ++kj) {
        for (int i = 0; i < oh; ++i) {
          int hi = i * s.stride - s.pad + ki * s.dilation;
          if (hi < 0 || hi >= x.h()) {
            col += ow;
            continue;
          }
          for (int j = 0; j < ow; ++j) {
            int wj = j * s.stride - s.pad + kj * s.dilation;
            *col++ = (wj >= 0 && wj < x.w()) ? x.at(n, c, hi, wj) : 0.0f;
          }
        }
      }
}

/// col2im: scatters a column-matrix gradient back into dx (accumulating).
void col2im(const std::vector<float>& cols, int n, const ConvSpec& s, int oh,
            int ow, Tensor* dx) {
  const int k = s.kernel;
  const float* col = cols.data();
  for (int c = 0; c < s.in_channels; ++c)
    for (int ki = 0; ki < k; ++ki)
      for (int kj = 0; kj < k; ++kj) {
        for (int i = 0; i < oh; ++i) {
          int hi = i * s.stride - s.pad + ki * s.dilation;
          if (hi < 0 || hi >= dx->h()) {
            col += ow;
            continue;
          }
          for (int j = 0; j < ow; ++j) {
            int wj = j * s.stride - s.pad + kj * s.dilation;
            float v = *col++;
            if (wj >= 0 && wj < dx->w()) dx->at(n, c, hi, wj) += v;
          }
        }
      }
}

}  // namespace

void conv2d_forward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                    const Tensor& b, Tensor* y) {
  assert(x.c() == spec.in_channels);
  assert(w.n() == spec.out_channels && w.c() == spec.in_channels &&
         w.h() == spec.kernel && w.w() == spec.kernel);
  const int oh = spec.out_dim(x.h());
  const int ow = spec.out_dim(x.w());
  assert(oh > 0 && ow > 0);
  if (y->n() != x.n() || y->c() != spec.out_channels || y->h() != oh ||
      y->w() != ow)
    *y = Tensor(x.n(), spec.out_channels, oh, ow);

  const int kk = spec.kernel * spec.kernel;
  const int patch = spec.in_channels * kk;
  const int cells = oh * ow;
  // Cell-tiled GEMM: the cols tile (patch x kTile floats) stays in L2 while
  // every output channel consumes it; untiled, each channel re-streams the
  // whole column matrix from memory (measured ~3x slower on the training
  // loop, which dominates this reproduction's single-core budget).
  constexpr int kTile = 512;
  std::vector<float> cols;
  for (int n = 0; n < x.n(); ++n) {
    im2col(x, n, spec, oh, ow, &cols);
    // y[oc, :] = W[oc, :] * cols + b[oc].  Tiles write disjoint cell ranges,
    // so they parallelize across the runtime pool with bit-identical output;
    // within a tile the (oc, p, cell) order matches the serial kernel.
    const int num_tiles = (cells + kTile - 1) / kTile;
    parallel_for(num_tiles, 1, [&](std::int64_t tb, std::int64_t te) {
      for (std::int64_t t = tb; t < te; ++t) {
        const int t0 = static_cast<int>(t) * kTile;
        const int t1 = std::min(cells, t0 + kTile);
        for (int oc = 0; oc < spec.out_channels; ++oc) {
          const float* wrow = w.data() + static_cast<std::size_t>(oc) * patch;
          float* yrow =
              y->data() +
              (static_cast<std::size_t>(n) * spec.out_channels + oc) * cells;
          const float bias =
              b.empty() ? 0.0f : b[static_cast<std::size_t>(oc)];
          for (int cell = t0; cell < t1; ++cell) yrow[cell] = bias;
          for (int p = 0; p < patch; ++p) {
            const float wv = wrow[p];
            const float* crow =
                cols.data() + static_cast<std::size_t>(p) * cells;
            for (int cell = t0; cell < t1; ++cell)
              yrow[cell] += wv * crow[cell];
          }
        }
      }
    });
  }
}

void conv2d_backward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                     const Tensor& dy, Tensor* dx, Tensor* dw, Tensor* db) {
  const int oh = spec.out_dim(x.h());
  const int ow = spec.out_dim(x.w());
  assert(dy.c() == spec.out_channels && dy.h() == oh && dy.w() == ow);
  const int kk = spec.kernel * spec.kernel;
  const int patch = spec.in_channels * kk;
  const int cells = oh * ow;

  std::vector<float> cols;
  std::vector<float> dcols;
  for (int n = 0; n < x.n(); ++n) {
    im2col(x, n, spec, oh, ow, &cols);

    if (dw != nullptr) {
      // dW[oc, p] += sum_cell dy[oc, cell] * cols[p, cell], cell-tiled like
      // the forward pass; per-tile float partial sums keep the inner loop
      // vectorizable (a double accumulator would serialize it) while the
      // tile size bounds the float summation error.
      // Parallel over output channels: each channel owns its dwrow and
      // walks the tiles in ascending order, so the per-(oc, p) summation
      // order — and the result — matches the serial kernel exactly.
      constexpr int kTile = 512;
      parallel_for(spec.out_channels, 4, [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t oc = ob; oc < oe; ++oc) {
          const float* grow =
              dy.data() +
              (static_cast<std::size_t>(n) * spec.out_channels +
               static_cast<std::size_t>(oc)) * cells;
          float* dwrow = dw->data() + static_cast<std::size_t>(oc) * patch;
          for (int t0 = 0; t0 < cells; t0 += kTile) {
            const int t1 = std::min(cells, t0 + kTile);
            for (int p = 0; p < patch; ++p) {
              const float* crow =
                  cols.data() + static_cast<std::size_t>(p) * cells;
              float acc = 0.0f;
              for (int cell = t0; cell < t1; ++cell)
                acc += grow[cell] * crow[cell];
              dwrow[p] += acc;
            }
          }
        }
      });
    }
    if (db != nullptr) {
      for (int oc = 0; oc < spec.out_channels; ++oc) {
        const float* grow =
            dy.data() +
            (static_cast<std::size_t>(n) * spec.out_channels + oc) * cells;
        double acc = 0.0;
        for (int cell = 0; cell < cells; ++cell) acc += grow[cell];
        (*db)[static_cast<std::size_t>(oc)] += static_cast<float>(acc);
      }
    }
    if (dx != nullptr) {
      // dcols[p, cell] = sum_oc W[oc, p] * dy[oc, cell]; then col2im.
      // Same cell tiling: the dcols tile stays hot across output channels.
      dcols.assign(static_cast<std::size_t>(patch) * cells, 0.0f);
      constexpr int kTile = 512;
      // Tiles own disjoint dcols cell ranges; the (oc, p) accumulation order
      // within a tile matches the serial kernel.
      const int num_tiles = (cells + kTile - 1) / kTile;
      parallel_for(num_tiles, 1, [&](std::int64_t tb, std::int64_t te) {
        for (std::int64_t t = tb; t < te; ++t) {
          const int t0 = static_cast<int>(t) * kTile;
          const int t1 = std::min(cells, t0 + kTile);
          for (int oc = 0; oc < spec.out_channels; ++oc) {
            const float* wrow =
                w.data() + static_cast<std::size_t>(oc) * patch;
            const float* grow =
                dy.data() +
                (static_cast<std::size_t>(n) * spec.out_channels + oc) *
                    cells;
            for (int p = 0; p < patch; ++p) {
              const float wv = wrow[p];
              if (wv == 0.0f) continue;
              float* drow =
                  dcols.data() + static_cast<std::size_t>(p) * cells;
              for (int cell = t0; cell < t1; ++cell)
                drow[cell] += wv * grow[cell];
            }
          }
        }
      });
      col2im(dcols, n, spec, oh, ow, dx);
    }
  }
}

long long conv2d_macs(const ConvSpec& spec, int in_h, int in_w) {
  long long oh = spec.out_dim(in_h);
  long long ow = spec.out_dim(in_w);
  return oh * ow * spec.out_channels * spec.in_channels * spec.kernel *
         spec.kernel;
}

}  // namespace ada
