#include "tensor/conv2d.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "runtime/scratch.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"

namespace ada {

namespace {

/// im2col: unpacks image `n`'s input patches into a (in_c*k*k) x (oh*ow)
/// block of a column matrix held in the caller's scratch buffer.  `cols`
/// points at the image's first column and `ld` is the full row length of the
/// matrix, so a batch lays its images side by side along the column axis
/// (image n occupies columns [n*oh*ow, (n+1)*oh*ow) of every row) and the
/// whole batch lowers onto a single GEMM.  Only pad-clipped edge cells are
/// zeroed — the interior is written exactly once (memcpy rows for stride 1),
/// instead of zero-filling the whole buffer and overwriting it.
void im2col(const Tensor& x, int n, const ConvSpec& s, int oh, int ow,
            float* cols, std::ptrdiff_t ld) {
  const int k = s.kernel;
  float* row = cols;
  for (int c = 0; c < s.in_channels; ++c)
    for (int ki = 0; ki < k; ++ki)
      for (int kj = 0; kj < k; ++kj, row += ld) {
        // Column index j reads input column j*stride + off.
        const int off = kj * s.dilation - s.pad;
        const int j_lo =
            off >= 0 ? 0 : (-off + s.stride - 1) / s.stride;
        const int j_hi =
            x.w() - 1 - off >= 0
                ? std::min(ow - 1, (x.w() - 1 - off) / s.stride)
                : -1;
        float* col = row;
        for (int i = 0; i < oh; ++i, col += ow) {
          const int hi = i * s.stride - s.pad + ki * s.dilation;
          if (hi < 0 || hi >= x.h() || j_lo > j_hi) {
            std::memset(col, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          if (j_lo > 0)
            std::memset(col, 0, static_cast<std::size_t>(j_lo) * sizeof(float));
          if (j_hi < ow - 1)
            std::memset(col + j_hi + 1, 0,
                        static_cast<std::size_t>(ow - 1 - j_hi) * sizeof(float));
          const float* src =
              x.data() +
              ((static_cast<std::size_t>(n) * x.c() + c) * x.h() + hi) *
                  x.w() +
              (j_lo * s.stride + off);
          if (s.stride == 1) {
            std::memcpy(col + j_lo, src,
                        static_cast<std::size_t>(j_hi - j_lo + 1) *
                            sizeof(float));
          } else {
            for (int j = j_lo; j <= j_hi; ++j)
              col[j] = src[static_cast<std::ptrdiff_t>(j - j_lo) * s.stride];
          }
        }
      }
}

/// col2im: scatters a column-matrix gradient back into dx (accumulating).
void col2im(const float* cols, int n, const ConvSpec& s, int oh, int ow,
            Tensor* dx) {
  const int k = s.kernel;
  const float* col = cols;
  for (int c = 0; c < s.in_channels; ++c)
    for (int ki = 0; ki < k; ++ki)
      for (int kj = 0; kj < k; ++kj) {
        for (int i = 0; i < oh; ++i) {
          int hi = i * s.stride - s.pad + ki * s.dilation;
          if (hi < 0 || hi >= dx->h()) {
            col += ow;
            continue;
          }
          for (int j = 0; j < ow; ++j) {
            int wj = j * s.stride - s.pad + kj * s.dilation;
            float v = *col++;
            if (wj >= 0 && wj < dx->w()) dx->at(n, c, hi, wj) += v;
          }
        }
      }
}

}  // namespace

void conv2d_forward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                    const Tensor& b, Tensor* y, bool fuse_relu,
                    GemmBackend backend) {
  assert(x.c() == spec.in_channels);
  assert(w.n() == spec.out_channels && w.c() == spec.in_channels &&
         w.h() == spec.kernel && w.w() == spec.kernel);
  const int oh = spec.out_dim(x.h());
  const int ow = spec.out_dim(x.w());
  assert(oh > 0 && ow > 0);
  if (y->n() != x.n() || y->c() != spec.out_channels || y->h() != oh ||
      y->w() != ow)
    *y = Tensor(x.n(), spec.out_channels, oh, ow);

  const int patch = spec.in_channels * spec.kernel * spec.kernel;
  const int cells = oh * ow;
  const int batch = x.n();

  // y[oc, :] = W[oc, :] * cols (+ bias, + ReLU), with the bias/ReLU epilogue
  // fused into the tile write-out so the backbone never makes a separate
  // pass over the activation tensor.
  GemmEpilogue epi;
  epi.row_bias = b.empty() ? nullptr : b.data();
  epi.relu = fuse_relu;
  const GemmMat wmat{w.data(), patch, 1};

  ScratchFrame frame(&scratch_arena());
  if (batch == 1) {
    // Single image: GEMM writes straight into y (already NCHW-contiguous).
    float* cols = frame.alloc(static_cast<std::size_t>(patch) * cells);
    im2col(x, 0, spec, oh, ow, cols, cells);
    sgemm(spec.out_channels, cells, patch, wmat, GemmMat{cols, cells, 1},
          y->data(), cells, /*accumulate=*/false, epi, backend);
    return;
  }

  // Batch: the images' column blocks sit side by side along the GEMM N axis
  // (one sgemm for the whole batch — larger M·N·K shapes are exactly where
  // the packed backend earns its arithmetic intensity), then the oc-major
  // product rows are scattered back to NCHW.  Each C element keeps the same
  // ascending-k accumulation chain as the single-image GEMM, so batched
  // outputs are bit-identical to per-image forwards.
  const std::size_t total = static_cast<std::size_t>(batch) * cells;
  float* cols = frame.alloc(static_cast<std::size_t>(patch) * total);
  parallel_for(batch, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n)
      im2col(x, static_cast<int>(n), spec, oh, ow,
             cols + static_cast<std::size_t>(n) * cells,
             static_cast<std::ptrdiff_t>(total));
  });
  float* ybuf = frame.alloc(static_cast<std::size_t>(spec.out_channels) * total);
  sgemm(spec.out_channels, static_cast<int>(total), patch, wmat,
        GemmMat{cols, static_cast<std::ptrdiff_t>(total), 1}, ybuf,
        static_cast<int>(total), /*accumulate=*/false, epi, backend);
  // ybuf row oc holds [img0 cells | img1 cells | ...]; y wants image-major.
  parallel_for(static_cast<std::int64_t>(batch) * spec.out_channels, 1,
               [&](std::int64_t rb, std::int64_t re) {
    for (std::int64_t r = rb; r < re; ++r) {
      const std::int64_t n = r / spec.out_channels;
      const std::int64_t oc = r % spec.out_channels;
      std::memcpy(y->data() + static_cast<std::size_t>(r) * cells,
                  ybuf + static_cast<std::size_t>(oc) * total +
                      static_cast<std::size_t>(n) * cells,
                  static_cast<std::size_t>(cells) * sizeof(float));
    }
  });
}

void conv2d_forward_int8(const ConvSpec& spec, const Tensor& x,
                         const QuantizedWeights& qw, const Tensor& b,
                         Tensor* y, bool fuse_relu) {
  assert(x.c() == spec.in_channels);
  assert(qw.rows == spec.out_channels &&
         qw.cols == spec.in_channels * spec.kernel * spec.kernel);
  const int oh = spec.out_dim(x.h());
  const int ow = spec.out_dim(x.w());
  assert(oh > 0 && ow > 0);
  if (y->n() != x.n() || y->c() != spec.out_channels || y->h() != oh ||
      y->w() != ow)
    *y = Tensor(x.n(), spec.out_channels, oh, ow);

  const int patch = spec.in_channels * spec.kernel * spec.kernel;
  const int cells = oh * ow;
  const int batch = x.n();
  const float* bias = b.empty() ? nullptr : b.data();

  // Same lowering as the fp32 path: im2col into float columns (padding
  // zeros quantize exactly onto the zero point), then one qgemm whose
  // packing quantizes the columns to u8 and whose epilogue dequantizes the
  // int32 accumulators straight into y with bias + optional ReLU fused.
  ScratchFrame frame(&scratch_arena());
  if (batch == 1) {
    float* cols = frame.alloc(static_cast<std::size_t>(patch) * cells);
    im2col(x, 0, spec, oh, ow, cols, cells);
    qgemm(spec.out_channels, cells, patch, qw, GemmMat{cols, cells, 1},
          y->data(), cells, bias, fuse_relu);
    return;
  }

  // Batch: images side by side along the GEMM N axis, then the oc-major
  // product scattered back to NCHW — identical structure to the fp32
  // batched path, so the batch scheduler composes with INT8 unchanged.
  const std::size_t total = static_cast<std::size_t>(batch) * cells;
  float* cols = frame.alloc(static_cast<std::size_t>(patch) * total);
  parallel_for(batch, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n)
      im2col(x, static_cast<int>(n), spec, oh, ow,
             cols + static_cast<std::size_t>(n) * cells,
             static_cast<std::ptrdiff_t>(total));
  });
  float* ybuf =
      frame.alloc(static_cast<std::size_t>(spec.out_channels) * total);
  qgemm(spec.out_channels, static_cast<int>(total), patch, qw,
        GemmMat{cols, static_cast<std::ptrdiff_t>(total), 1}, ybuf,
        static_cast<int>(total), bias, fuse_relu);
  parallel_for(static_cast<std::int64_t>(batch) * spec.out_channels, 1,
               [&](std::int64_t rb, std::int64_t re) {
    for (std::int64_t r = rb; r < re; ++r) {
      const std::int64_t n = r / spec.out_channels;
      const std::int64_t oc = r % spec.out_channels;
      std::memcpy(y->data() + static_cast<std::size_t>(r) * cells,
                  ybuf + static_cast<std::size_t>(oc) * total +
                      static_cast<std::size_t>(n) * cells,
                  static_cast<std::size_t>(cells) * sizeof(float));
    }
  });
}

void conv2d_backward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                     const Tensor& dy, Tensor* dx, Tensor* dw, Tensor* db) {
  const int oh = spec.out_dim(x.h());
  const int ow = spec.out_dim(x.w());
  assert(dy.c() == spec.out_channels && dy.h() == oh && dy.w() == ow);
  const int patch = spec.in_channels * spec.kernel * spec.kernel;
  const int cells = oh * ow;

  ScratchFrame frame(&scratch_arena());
  float* cols =
      dw != nullptr
          ? frame.alloc(static_cast<std::size_t>(patch) * cells)
          : nullptr;
  float* dcols =
      dx != nullptr
          ? frame.alloc(static_cast<std::size_t>(patch) * cells)
          : nullptr;

  for (int n = 0; n < x.n(); ++n) {
    const float* dyn =
        dy.data() + static_cast<std::size_t>(n) * spec.out_channels * cells;

    if (dw != nullptr) {
      // dW[oc, p] += dy[oc, :] * cols[p, :]^T — GEMM with B read transposed
      // (stride trick; packing materializes the panels).
      im2col(x, n, spec, oh, ow, cols, cells);
      sgemm(spec.out_channels, patch, cells, GemmMat{dyn, cells, 1},
            GemmMat{cols, 1, cells}, dw->data(), patch,
            /*accumulate=*/true);
    }
    if (db != nullptr) {
      // Per-channel double accumulator, cells ascending — each channel owns
      // its db entry, so the parallel split over channels is bit-identical
      // to the serial loop.
      parallel_for(spec.out_channels, 1,
                   [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t oc = ob; oc < oe; ++oc) {
          const float* grow = dyn + static_cast<std::size_t>(oc) * cells;
          double acc = 0.0;
          for (int cell = 0; cell < cells; ++cell) acc += grow[cell];
          (*db)[static_cast<std::size_t>(oc)] += static_cast<float>(acc);
        }
      });
    }
    if (dx != nullptr) {
      // dcols = W^T * dy (A read transposed via strides); then col2im.
      sgemm(patch, cells, spec.out_channels, GemmMat{w.data(), 1, patch},
            GemmMat{dyn, cells, 1}, dcols, cells, /*accumulate=*/false);
      col2im(dcols, n, spec, oh, ow, dx);
    }
  }
}

long long conv2d_macs(const ConvSpec& spec, int in_h, int in_w) {
  long long oh = spec.out_dim(in_h);
  long long ow = spec.out_dim(in_w);
  return oh * ow * spec.out_channels * spec.in_channels * spec.kernel *
         spec.kernel;
}

std::size_t conv2d_forward_workspace_floats(const ConvSpec& spec, int n,
                                            int in_h, int in_w,
                                            KernelKind kernel) {
  // Mirrors the ScratchFrame allocations of conv2d_forward /
  // conv2d_forward_int8 above, with the arena's cache-line rounding.
  const auto lines = [](std::size_t floats) {
    constexpr std::size_t kLine = 64 / sizeof(float);
    return (std::max<std::size_t>(floats, 1) + kLine - 1) / kLine * kLine;
  };
  const int patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t cells = static_cast<std::size_t>(spec.out_dim(in_h)) *
                            static_cast<std::size_t>(spec.out_dim(in_w));
  const std::size_t total = static_cast<std::size_t>(std::max(n, 1)) * cells;
  std::size_t ws = lines(static_cast<std::size_t>(patch) * total);
  if (n > 1)  // batched path stages the oc-major product before scattering
    ws += lines(static_cast<std::size_t>(spec.out_channels) * total);
  const int N = static_cast<int>(total);
  switch (kernel) {
    case KernelKind::kInt8:
      ws += qgemm_workspace_floats(spec.out_channels, N, patch);
      break;
    case KernelKind::kGemmReference:
      ws += sgemm_workspace_floats(spec.out_channels, N, patch,
                                   GemmBackend::kReference);
      break;
    default:
      ws += sgemm_workspace_floats(spec.out_channels, N, patch,
                                   GemmBackend::kPacked);
      break;
  }
  return ws;
}

}  // namespace ada
