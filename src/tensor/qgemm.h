// INT8 quantized GEMM backend for the inference hot path.
//
// Third backend behind the ADASCALE_GEMM switch (see tensor/gemm.h):
// weights are stored once as signed 8-bit integers with a *per-output-
// channel* symmetric scale (dequant = q * scale[row]); activations are
// quantized on the fly to unsigned 8-bit with a *per-tensor* asymmetric
// scale + zero point captured by an offline calibration pass (see
// Conv2dLayer::quantize / tools/calibrate).  The kernel accumulates
// u8 x s8 products into int32 and the epilogue dequantizes straight to
// fp32 — folding the zero-point correction, the per-channel scale, the
// fp32 bias, and the optional ReLU into the tile write-out, so the rest
// of the network never sees an integer tensor.
//
// The micro-kernel processes the reduction axis in k-groups: a vpmaddwd
// pair-wise s16 kernel on AVX2/AVX-512 (u8/s8 widened to s16, adjacent-k
// multiply-add straight into s32 — two multiplies per lane-instruction)
// and a vpdpbusd quad kernel where AVX-512 VNNI exists (four u8 x s8
// products per lane-instruction); the portable fallback applies the same
// k-pairing in plain s32.  Dispatch is CPUID-gated like the fp32 kernel
// and capped by ADASCALE_ISA (tensor/gemm.h: kernel_isa_cap).
//
// Determinism: integer accumulation is exact (no rounding, and nothing
// saturates: pair/quad partial sums are bounded far inside s32 by the u8
// x s8 operand range), so the result is independent of blocking, k-group
// size, stripe scheduling, thread count, and the dispatched SIMD width;
// the fp32 epilogue applies a fixed per-element expression.  INT8 outputs
// are therefore bit-identical run-to-run, across ADASCALE_THREADS values,
// across ADASCALE_ISA levels, and across machines — a stronger guarantee
// than the fp32 packed kernel, which is bit-stable only per compile.
//
// Overflow: one u8 x s8 product is at most 255 * 127 = 32385, so a full
// ascending-K chain fits int32 for K < 2^31 / 32385 ≈ 66k.  Every GEMM in
// this codebase has K = in_c * k * k ≤ a few hundred; qgemm asserts the
// bound rather than widening to int64.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm.h"

namespace ada {

/// Asymmetric u8 quantization parameters for one activation tensor:
/// real = (q - zero_point) * scale, q in [0, 255].
struct QuantParams {
  float scale = 1.0f;
  int zero_point = 0;
};

/// Picks u8 qparams covering the observed activation range [lo, hi].
/// The range is widened to include 0 (so zero padding maps exactly onto
/// zero_point) and degenerate ranges fall back to scale 1 — the scale is
/// never 0 or negative.
QuantParams choose_qparams(float lo, float hi);

/// Streaming activation statistics gathered during a calibration pass:
/// exact min/max plus a fixed-bin histogram of |x| whose cap doubles
/// (merging bin pairs) whenever a larger value arrives, so a percentile
/// clip can be computed over millions of activations in O(kBins) memory.
/// Clipping the top fraction of mass shrinks the quantization step for
/// the dense bulk of activations at the cost of saturating rare outliers
/// — the standard post-training-quantization trade (out-of-range values
/// clamp, they never wrap).
class RangeObserver {
 public:
  void observe(const float* x, std::size_t n);
  bool seen() const { return total_ > 0; }
  float min() const { return min_; }
  float max() const { return max_; }

  /// Smallest magnitude m such that at least `fraction` of the observed
  /// |x| mass lies in [0, m] (bin-edge resolution).  fraction >= 1 returns
  /// the exact maximum.
  float percentile_hi(double fraction) const;

 private:
  static constexpr int kBins = 2048;
  void grow(float a);

  float min_ = 0.0f, max_ = 0.0f;
  float cap_ = 0.0f;  ///< histogram upper edge; 0 until first observation
  long long total_ = 0;
  std::vector<long long> hist_;
};

/// Fraction of |activation| mass the calibration clip keeps (the rest
/// saturates).  Default 0.9995; override with the ADASCALE_INT8_CLIP
/// environment variable (read once; values outside (0, 1] fall back to
/// the default, 1 disables clipping entirely).
double calibration_clip_fraction();

/// q = clamp(round(x / scale) + zero_point, 0, 255).  Values outside the
/// calibrated range saturate — the quantize/dequantize round trip is
/// bounded by scale/2 only inside [lo, hi] (tests/qgemm_test.cpp).
std::uint8_t quantize_u8(float x, const QuantParams& p);

/// Inverse map for tests and diagnostics: (q - zero_point) * scale.
float dequantize_u8(std::uint8_t q, const QuantParams& p);

/// Frozen INT8 weight matrix plus everything the epilogue needs: one
/// symmetric scale per row (output channel), the per-row element sum
/// (zero-point correction term), and the activation qparams captured at
/// calibration time.
struct QuantizedWeights {
  int rows = 0;  ///< output channels (GEMM M)
  int cols = 0;  ///< reduction length (GEMM K)
  std::vector<std::int8_t> q;       ///< rows x cols, row-major
  std::vector<float> scale;         ///< per row; dequant = q * scale[row]
  std::vector<std::int32_t> row_sum;  ///< per row: sum_k q[row, k]
  QuantParams act;                  ///< input-activation quantization

  bool empty() const { return q.empty(); }
};

/// Quantizes a rows x cols fp32 weight matrix with per-row symmetric
/// scales: scale[r] = absmax(row r) / 127, q = round(w / scale) clamped to
/// [-127, 127].  An all-zero row gets scale 1 (never 0), q all zero.
/// `act` is stored alongside for the epilogue.
QuantizedWeights quantize_weights(const float* w, int rows, int cols,
                                  const QuantParams& act);

/// C(MxN fp32, leading dim ldc) = dequant( Wq(MxK s8) * quant(B)(KxN u8) ).
///
/// B is a strided fp32 view (same GemmMat convention as sgemm); its
/// elements are quantized to u8 with W.act during panel packing, so callers
/// hand in the same float im2col columns / input rows they would give
/// sgemm.  The epilogue computes, per element:
///
///   C[m][j] = (acc[m][j] - act.zero_point * row_sum[m])
///             * (act.scale * scale[m]) + bias[m]     (then ReLU if relu)
///
/// `bias` (per row, may be null) stays fp32.  Parallelizes over disjoint
/// column stripes via the runtime pool; see header comment for the
/// determinism contract.  M must equal W.rows and K must equal W.cols.
void qgemm(int M, int N, int K, const QuantizedWeights& W, const GemmMat& B,
           float* C, int ldc, const float* bias, bool relu);

/// Scratch-arena floats one qgemm call with these shapes claims on the
/// calling thread (epilogue row scales, k-grouped A panels, one quantized
/// B stripe panel), rounded the way the arena rounds — the qgemm
/// counterpart of sgemm_workspace_floats, recorded by execution plans.
std::size_t qgemm_workspace_floats(int M, int N, int K);

/// Name of the quantized micro-kernel the dispatcher picked on this
/// machine: "vnni" | "avx512" | "avx2" | "generic" (native capability
/// capped by ADASCALE_ISA — see kernel_isa_cap in tensor/gemm.h), or the
/// active set_qgemm_isa override.
const char* qgemm_kernel_isa();

/// Test/bench seam: forces the quantized kernel onto a specific ISA body
/// so one process can compare the vpmaddwd and vpdpbusd kernels side by
/// side (the ADASCALE_ISA env can only cap a whole process).  Requests
/// above the CPU's *native* capability abort loudly; requests above the
/// env cap are allowed (a capped process may still measure everything the
/// hardware has).  Process-global — not for serving paths.
void set_qgemm_isa(KernelIsa isa);

/// Restores the normal (env-capped) quantized-kernel dispatch.
void clear_qgemm_isa();

}  // namespace ada
