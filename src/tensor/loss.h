// Loss primitives mirroring Eq. (1) of the paper: softmax cross-entropy for
// classification and smooth-L1 for bounding-box regression, plus the MSE used
// by the scale regressor (Eq. 4).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace ada {

/// Softmax cross-entropy for a single logit row (1,C,1,1).
/// Returns the loss; if dlogits is non-null, accumulates d(loss)/d(logits).
float softmax_cross_entropy(const Tensor& logits, int target_class,
                            Tensor* dlogits);

/// Softmax cross-entropy on a raw logit span (no tensor wrapper); used on
/// per-anchor slices of the detection head output.
float softmax_cross_entropy_span(const float* logits, int num_classes,
                                 int target_class, float* dlogits);

/// Smooth-L1 (Huber with delta=1) between pred and target spans of length n.
/// Returns the summed loss; accumulates gradient into dpred if non-null.
float smooth_l1(const float* pred, const float* target, int n, float* dpred);

/// Mean squared error between two scalars, with derivative wrt pred.
float mse_scalar(float pred, float target, float* dpred);

/// Softmax probabilities of a raw logit span (stable).
void softmax_span(const float* logits, int num_classes, float* probs);

}  // namespace ada
