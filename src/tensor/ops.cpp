#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "runtime/thread_pool.h"

namespace ada {

namespace {

// Below this many elements the parallel_for dispatch costs more than the
// loop; the pool runs smaller tensors inline.
constexpr std::int64_t kElementwiseGrain = 1 << 14;

}  // namespace

void axpy(float alpha, const Tensor& x, Tensor* y) {
  assert(x.same_shape(*y));
  const float* xs = x.data();
  float* ys = y->data();
  parallel_for(static_cast<std::int64_t>(x.size()), kElementwiseGrain,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i)
                   ys[i] += alpha * xs[i];
               });
}

void relu_forward(const Tensor& x, Tensor* y) {
  if (!x.same_shape(*y)) *y = Tensor(x.n(), x.c(), x.h(), x.w());
  const float* xs = x.data();
  float* ys = y->data();
  parallel_for(static_cast<std::int64_t>(x.size()), kElementwiseGrain,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i)
                   ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
               });
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor* dx) {
  assert(x.same_shape(dy) && x.same_shape(*dx));
  const float* xs = x.data();
  const float* ds = dy.data();
  float* out = dx->data();
  parallel_for(static_cast<std::int64_t>(x.size()), kElementwiseGrain,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i)
                   if (xs[i] > 0.0f) out[i] += ds[i];
               });
}

void scale(Tensor* x, float alpha) {
  float* xs = x->data();
  parallel_for(static_cast<std::int64_t>(x->size()), kElementwiseGrain,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) xs[i] *= alpha;
               });
}

void global_avg_pool_forward(const Tensor& x, Tensor* y) {
  if (y->n() != x.n() || y->c() != x.c() || y->h() != 1 || y->w() != 1)
    *y = Tensor(x.n(), x.c(), 1, 1);
  const float inv = 1.0f / static_cast<float>(x.h() * x.w());
  for (int n = 0; n < x.n(); ++n)
    for (int c = 0; c < x.c(); ++c) {
      double s = 0.0;
      for (int h = 0; h < x.h(); ++h)
        for (int w = 0; w < x.w(); ++w) s += x.at(n, c, h, w);
      y->at(n, c, 0, 0) = static_cast<float>(s) * inv;
    }
}

void global_avg_pool_backward(const Tensor& x_shape_like, const Tensor& dy,
                              Tensor* dx) {
  assert(dx->same_shape(x_shape_like));
  assert(dy.n() == x_shape_like.n() && dy.c() == x_shape_like.c());
  const float inv =
      1.0f / static_cast<float>(x_shape_like.h() * x_shape_like.w());
  for (int n = 0; n < dx->n(); ++n)
    for (int c = 0; c < dx->c(); ++c) {
      float g = dy.at(n, c, 0, 0) * inv;
      for (int h = 0; h < dx->h(); ++h)
        for (int w = 0; w < dx->w(); ++w) dx->at(n, c, h, w) += g;
    }
}

void maxpool2_forward(const Tensor& x, Tensor* y, std::vector<int>* argmax) {
  const int oh = x.h() / 2;
  const int ow = x.w() / 2;
  if (y->n() != x.n() || y->c() != x.c() || y->h() != oh || y->w() != ow)
    *y = Tensor(x.n(), x.c(), oh, ow);
  argmax->assign(y->size(), 0);
  std::size_t oidx = 0;
  for (int n = 0; n < x.n(); ++n)
    for (int c = 0; c < x.c(); ++c)
      for (int i = 0; i < oh; ++i)
        for (int j = 0; j < ow; ++j) {
          float best = -1e30f;
          int best_flat = 0;
          for (int di = 0; di < 2; ++di)
            for (int dj = 0; dj < 2; ++dj) {
              int hh = 2 * i + di, ww = 2 * j + dj;
              float v = x.at(n, c, hh, ww);
              if (v > best) {
                best = v;
                best_flat = ((n * x.c() + c) * x.h() + hh) * x.w() + ww;
              }
            }
          y->at(n, c, i, j) = best;
          (*argmax)[oidx++] = best_flat;
        }
}

void maxpool2_backward(const Tensor& dy, const std::vector<int>& argmax,
                       Tensor* dx) {
  assert(argmax.size() == dy.size());
  const float* g = dy.data();
  float* out = dx->data();
  for (std::size_t i = 0; i < dy.size(); ++i) out[argmax[i]] += g[i];
}

void softmax_rows(const Tensor& x, Tensor* y) {
  if (!x.same_shape(*y)) *y = Tensor(x.n(), x.c(), x.h(), x.w());
  assert(x.h() == 1 && x.w() == 1);
  for (int n = 0; n < x.n(); ++n) {
    float mx = -1e30f;
    for (int c = 0; c < x.c(); ++c) mx = std::max(mx, x.at(n, c, 0, 0));
    double denom = 0.0;
    for (int c = 0; c < x.c(); ++c)
      denom += std::exp(static_cast<double>(x.at(n, c, 0, 0) - mx));
    for (int c = 0; c < x.c(); ++c)
      y->at(n, c, 0, 0) = static_cast<float>(
          std::exp(static_cast<double>(x.at(n, c, 0, 0) - mx)) / denom);
  }
}

}  // namespace ada
