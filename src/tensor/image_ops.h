// Image-space operations: bilinear resizing (the paper's re-scaling step,
// Fast R-CNN protocol) and bilinear feature-map warping (used by the DFF
// substrate to propagate key-frame features along optical flow).
#pragma once

#include "tensor/tensor.h"

namespace ada {

/// Bilinearly resizes a CHW image/feature map (N must be 1) to (out_h,out_w).
/// Uses align-corners=false convention (pixel centers at i+0.5).
void bilinear_resize(const Tensor& src, int out_h, int out_w, Tensor* dst);

/// Mirrors a CHW image (N must be 1) left-to-right.  Used for horizontal
/// flip augmentation during detector training.
void flip_horizontal(const Tensor& src, Tensor* dst);

/// Warps `src` (1,C,H,W) by a backward flow field: for each destination pixel
/// (i,j), samples src at (i + flow_y(i,j), j + flow_x(i,j)) bilinearly.
/// flow_y/flow_x are (1,1,H,W) tensors in destination-pixel units.
/// Out-of-range samples clamp to the border.
void bilinear_warp(const Tensor& src, const Tensor& flow_y,
                   const Tensor& flow_x, Tensor* dst);

}  // namespace ada
