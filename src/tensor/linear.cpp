#include "tensor/linear.h"

#include <cassert>

#include "tensor/gemm.h"

namespace ada {

void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor* y) {
  assert(x.h() == 1 && x.w() == 1);
  const int in = x.c();
  const int out = w.n();
  assert(w.c() == in);
  if (y->n() != x.n() || y->c() != out || y->h() != 1 || y->w() != 1)
    *y = Tensor(x.n(), out, 1, 1);
  // y = x * W^T + b: W is (out, in) row-major, read transposed via strides;
  // the bias varies along the output (column) axis of the product.
  GemmEpilogue epi;
  epi.col_bias = b.empty() ? nullptr : b.data();
  sgemm(x.n(), out, in, GemmMat{x.data(), in, 1}, GemmMat{w.data(), 1, in},
        y->data(), out, /*accumulate=*/false, epi);
}

void linear_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor* dw, Tensor* db) {
  const int in = x.c();
  const int out = w.n();
  assert(dy.c() == out);
  for (int n = 0; n < x.n(); ++n)
    for (int o = 0; o < out; ++o) {
      const float g = dy.at(n, o, 0, 0);
      if (db != nullptr) (*db)[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in; ++i) {
        if (dw != nullptr) dw->at(o, i, 0, 0) += g * x.at(n, i, 0, 0);
        if (dx != nullptr) dx->at(n, i, 0, 0) += g * w.at(o, i, 0, 0);
      }
    }
}

}  // namespace ada
