#include "tensor/linear.h"

#include <algorithm>
#include <cassert>

#include "runtime/scratch.h"
#include "tensor/gemm.h"

namespace ada {

void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                    Tensor* y, GemmBackend backend) {
  assert(x.h() == 1 && x.w() == 1);
  const int in = x.c();
  const int out = w.n();
  assert(w.c() == in);
  if (y->n() != x.n() || y->c() != out || y->h() != 1 || y->w() != 1)
    *y = Tensor(x.n(), out, 1, 1);
  // y = x * W^T + b: W is (out, in) row-major, read transposed via strides;
  // the bias varies along the output (column) axis of the product.
  GemmEpilogue epi;
  epi.col_bias = b.empty() ? nullptr : b.data();
  sgemm(x.n(), out, in, GemmMat{x.data(), in, 1}, GemmMat{w.data(), 1, in},
        y->data(), out, /*accumulate=*/false, epi, backend);
}

void linear_forward_int8(const Tensor& x, const QuantizedWeights& qw,
                         const Tensor& b, Tensor* y) {
  assert(x.h() == 1 && x.w() == 1);
  const int in = x.c();
  const int out = qw.rows;
  const int batch = x.n();
  assert(qw.cols == in);
  if (y->n() != batch || y->c() != out || y->h() != 1 || y->w() != 1)
    *y = Tensor(batch, out, 1, 1);
  // y^T = Wq * x^T: x is (batch, in) row-major, so element (k, j) of the
  // K x N operand lives at x[j * in + k] — a stride view, no materialized
  // transpose.  The bias rides the GEMM row (output-channel) axis.
  const GemmMat xt{x.data(), 1, in};
  const float* bias = b.empty() ? nullptr : b.data();
  if (batch == 1) {
    // (out, 1) and (1, out) coincide in memory: write straight into y.
    qgemm(out, 1, in, qw, xt, y->data(), 1, bias, /*relu=*/false);
    return;
  }
  ScratchFrame frame(&scratch_arena());
  float* yt = frame.alloc(static_cast<std::size_t>(out) * batch);
  qgemm(out, batch, in, qw, xt, yt, batch, bias, /*relu=*/false);
  for (int n = 0; n < batch; ++n)
    for (int o = 0; o < out; ++o)
      y->at(n, o, 0, 0) = yt[static_cast<std::size_t>(o) * batch + n];
}

std::size_t linear_forward_workspace_floats(int n, int in, int out,
                                            KernelKind kernel) {
  const auto lines = [](std::size_t floats) {
    constexpr std::size_t kLine = 64 / sizeof(float);
    return (std::max<std::size_t>(floats, 1) + kLine - 1) / kLine * kLine;
  };
  switch (kernel) {
    case KernelKind::kInt8: {
      // Batched int8 stages the transposed product before scattering.
      std::size_t ws = qgemm_workspace_floats(out, n, in);
      if (n > 1) ws += lines(static_cast<std::size_t>(out) * n);
      return ws;
    }
    case KernelKind::kGemmReference:
      return 0;
    default:
      return sgemm_workspace_floats(n, out, in, GemmBackend::kPacked);
  }
}

void linear_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     Tensor* dx, Tensor* dw, Tensor* db) {
  const int in = x.c();
  const int out = w.n();
  assert(dy.c() == out);
  for (int n = 0; n < x.n(); ++n)
    for (int o = 0; o < out; ++o) {
      const float g = dy.at(n, o, 0, 0);
      if (db != nullptr) (*db)[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in; ++i) {
        if (dw != nullptr) dw->at(o, i, 0, 0) += g * x.at(n, i, 0, 0);
        if (dx != nullptr) dx->at(n, i, 0, 0) += g * w.at(o, i, 0, 0);
      }
    }
}

}  // namespace ada
