#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/scratch.h"
#include "runtime/thread_pool.h"

namespace ada {

namespace {

// ------------------------------------------------------------- backend flag

GemmBackend read_backend_env() {
  if (const char* env = std::getenv("ADASCALE_GEMM"); env != nullptr) {
    if (std::strcmp(env, "reference") == 0) return GemmBackend::kReference;
    if (std::strcmp(env, "packed") == 0) return GemmBackend::kPacked;
    if (std::strcmp(env, "int8") == 0) return GemmBackend::kInt8;
    // A typo here must not silently re-test the default backend — that
    // would make an oracle-verification run vacuous.
    std::fprintf(stderr,
                 "ADASCALE_GEMM=%s is not a backend (want \"packed\", "
                 "\"reference\", or \"int8\"); using packed\n",
                 env);
  }
  return GemmBackend::kPacked;
}

std::atomic<GemmBackend> g_backend{read_backend_env()};

// ------------------------------------------------------------ ISA override

/// Highest KernelIsa level this CPU can actually run.  kAvx512 requires
/// both F and BW (the quantized kernels use byte shuffles/converts);
/// kVnni additionally requires the vpdpbusd extension.
KernelIsa native_isa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    if (__builtin_cpu_supports("avx512vnni")) return KernelIsa::kVnni;
    return KernelIsa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return KernelIsa::kAvx2;
#endif
  return KernelIsa::kGeneric;
}

KernelIsa read_isa_env(KernelIsa native) {
  const char* env = std::getenv("ADASCALE_ISA");
  if (env == nullptr) return native;
  KernelIsa want;
  if (std::strcmp(env, "generic") == 0) {
    want = KernelIsa::kGeneric;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = KernelIsa::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    want = KernelIsa::kAvx512;
  } else if (std::strcmp(env, "vnni") == 0) {
    want = KernelIsa::kVnni;
  } else {
    // A typo must not silently re-test the native dispatch.
    std::fprintf(stderr,
                 "ADASCALE_ISA=%s is not an ISA level (want \"generic\", "
                 "\"avx2\", \"avx512\", or \"vnni\"); using native %s\n",
                 env, kernel_isa_name(native));
    return native;
  }
  if (want > native) {
    // Running a *different* kernel than the one requested would make an
    // oracle-verification run vacuous — fail loudly instead.
    std::fprintf(stderr,
                 "ADASCALE_ISA=%s requested but this CPU caps at %s; "
                 "aborting\n",
                 env, kernel_isa_name(native));
    std::abort();
  }
  return want;
}

// -------------------------------------------------------------- micro-kernel
//
// Register blocking: MR x NR accumulator tile.  6x16 fills 12 YMM (AVX2) or
// 6 ZMM (AVX-512) accumulators with room left for the A broadcast and B
// load; the baseline build spills but is only the portability fallback.
constexpr int kMR = 6;
constexpr int kNR = 16;
// Cache blocking: a K block of B panel (kKC x kNR floats) stays L1-resident
// across the M sweep; an N stripe is the unit of parallel work.
constexpr int kKC = 512;
constexpr int kNC = 1024;

struct MicroTile {
  const float* pa;  ///< packed A panel: kc steps of MR floats, k-major
  const float* pb;  ///< packed B panel: kc steps of NR floats, k-major
  float* c;         ///< top-left of the C tile
  int ldc;
  int kc;
  int mv, nv;       ///< valid rows/cols of this tile (edge tiles < MR/NR)
  bool first;       ///< overwrite C (false: add the partial already there)
  bool last;        ///< apply the epilogue on write-out
  const float* row_bias;  ///< per-tile-row bias or null
  const float* col_bias;  ///< per-tile-col bias or null
  bool relu;
};

#if defined(__GNUC__) || defined(__clang__)
#define ADA_GEMM_VECTOR_EXT 1
// Explicit SIMD via the GCC/Clang vector extensions: one micro-kernel body
// instantiated at three vector widths (16/8/4 lanes), each wrapped in a
// target-attributed function so the 16-lane version uses ZMM and the 8-lane
// version YMM registers.  Panels are 64-byte aligned (scratch arena), and
// each k step advances a whole number of vectors, so panel loads are
// aligned; C rows have arbitrary alignment and go through an unaligned
// (aligned(4)) vector type.
//
// Accumulation per C element is a strict ascending-k chain in its own lane
// and mul/add stay separate ops (this file builds with -ffp-contract=off —
// see CMakeLists.txt — because GCC otherwise fuses a*b+acc into FMA with
// different rounding on ISAs that have it), so every width produces
// bit-identical results — the dispatch never changes output.
typedef float v16f __attribute__((vector_size(64), may_alias));
typedef float v8f __attribute__((vector_size(32), may_alias));
typedef float v4f __attribute__((vector_size(16), may_alias));

template <typename V, int MR, int NR>
inline __attribute__((always_inline)) void micro_body(const MicroTile& t) {
  constexpr int kLanes = static_cast<int>(sizeof(V) / sizeof(float));
  constexpr int NV = NR / kLanes;
  static_assert(NR % kLanes == 0, "tile width must be a whole vector count");

  V acc[MR][NV];
  for (int m = 0; m < MR; ++m)
    for (int v = 0; v < NV; ++v) acc[m][v] = V{} ;

  const float* pa = t.pa;
  const float* pb = t.pb;
  for (int k = 0; k < t.kc; ++k, pa += MR, pb += NR) {
    V b[NV];
    for (int v = 0; v < NV; ++v)
      b[v] = *reinterpret_cast<const V*>(pb + v * kLanes);
    for (int m = 0; m < MR; ++m) {
      const V a = V{} + pa[m];  // scalar broadcast
      for (int v = 0; v < NV; ++v) acc[m][v] += a * b[v];
    }
  }

  // Write-out: spill the register tile to an aligned row buffer, fold the
  // C partial / epilogue, then copy the valid prefix.  This keeps the edge
  // handling scalar and simple; the k loop above dominates.
  for (int m = 0; m < t.mv; ++m) {
    alignas(64) float row[NR];
    for (int v = 0; v < NV; ++v)
      *reinterpret_cast<V*>(row + v * kLanes) = acc[m][v];
    float* crow = t.c + static_cast<std::ptrdiff_t>(m) * t.ldc;
    if (!t.first)
      for (int j = 0; j < t.nv; ++j) row[j] += crow[j];
    if (t.last) {
      if (t.row_bias != nullptr) {
        const float rb = t.row_bias[m];
        for (int j = 0; j < t.nv; ++j) row[j] += rb;
      }
      if (t.col_bias != nullptr)
        for (int j = 0; j < t.nv; ++j) row[j] += t.col_bias[j];
      if (t.relu)
        for (int j = 0; j < t.nv; ++j) row[j] = std::max(row[j], 0.0f);
    }
    for (int j = 0; j < t.nv; ++j) crow[j] = row[j];
  }
}

using MicroFn = void (*)(const MicroTile&);

void micro_generic(const MicroTile& t) { micro_body<v4f, kMR, kNR>(t); }

#if defined(__x86_64__)
#define ADA_GEMM_X86_DISPATCH 1
__attribute__((target("avx2"))) void micro_avx2(const MicroTile& t) {
  micro_body<v8f, kMR, kNR>(t);
}
__attribute__((target("avx512f"))) void micro_avx512(const MicroTile& t) {
  micro_body<v16f, kMR, kNR>(t);
}
#endif

#else  // no vector extensions: plain scalar body, still correct
using MicroFn = void (*)(const MicroTile&);

void micro_generic(const MicroTile& t) {
  float acc[kMR][kNR] = {};
  const float* pa = t.pa;
  const float* pb = t.pb;
  for (int k = 0; k < t.kc; ++k, pa += kMR, pb += kNR)
    for (int m = 0; m < kMR; ++m) {
      const float a = pa[m];
      for (int j = 0; j < kNR; ++j) acc[m][j] += a * pb[j];
    }
  for (int m = 0; m < t.mv; ++m) {
    float* crow = t.c + static_cast<std::ptrdiff_t>(m) * t.ldc;
    float* row = acc[m];
    if (!t.first)
      for (int j = 0; j < t.nv; ++j) row[j] += crow[j];
    if (t.last) {
      if (t.row_bias != nullptr)
        for (int j = 0; j < t.nv; ++j) row[j] += t.row_bias[m];
      if (t.col_bias != nullptr)
        for (int j = 0; j < t.nv; ++j) row[j] += t.col_bias[j];
      if (t.relu)
        for (int j = 0; j < t.nv; ++j) row[j] = std::max(row[j], 0.0f);
    }
    for (int j = 0; j < t.nv; ++j) crow[j] = row[j];
  }
}
#endif

struct MicroDispatch {
  MicroFn fn;
  const char* isa;
};

MicroDispatch pick_micro() {
#ifdef ADA_GEMM_X86_DISPATCH
  switch (kernel_isa_cap()) {
    case KernelIsa::kVnni:  // fp32 has no VNNI kernel; vpdpbusd is int-only
    case KernelIsa::kAvx512:
      return {micro_avx512, "avx512"};
    case KernelIsa::kAvx2:
      return {micro_avx2, "avx2"};
    default:
      break;
  }
#endif
  return {micro_generic, "generic"};
}

const MicroDispatch& micro_dispatch() {
  static const MicroDispatch d = pick_micro();
  return d;
}

// ------------------------------------------------------------------ packing

/// Packs rows [0, M) x cols [k0, k0+kc) of A into ceil(M/MR) panels of
/// kc x MR floats, k-major, zero-padding rows past M.
void pack_a(const GemmMat& A, int M, int k0, int kc, float* pa) {
  for (int i0 = 0; i0 < M; i0 += kMR) {
    const int mv = std::min(kMR, M - i0);
    for (int k = 0; k < kc; ++k, pa += kMR) {
      const float* src = A.p + (k0 + k) * A.cs + i0 * A.rs;
      int m = 0;
      for (; m < mv; ++m) pa[m] = src[static_cast<std::ptrdiff_t>(m) * A.rs];
      for (; m < kMR; ++m) pa[m] = 0.0f;
    }
  }
}

/// Packs rows [k0, k0+kc) x cols [j0, j0+nc) of B into ceil(nc/NR) panels of
/// kc x NR floats, k-major, zero-padding cols past nc.
void pack_b(const GemmMat& B, int k0, int kc, int j0, int nc, float* pb) {
  for (int jr = 0; jr < nc; jr += kNR) {
    const int nv = std::min(kNR, nc - jr);
    for (int k = 0; k < kc; ++k, pb += kNR) {
      const float* src = B.p + (k0 + k) * B.rs + (j0 + jr) * B.cs;
      int j = 0;
      for (; j < nv; ++j) pb[j] = src[static_cast<std::ptrdiff_t>(j) * B.cs];
      for (; j < kNR; ++j) pb[j] = 0.0f;
    }
  }
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// ------------------------------------------------------------- packed sgemm

/// Runs every micro-tile of one column stripe [j0, j0+nc) for one K block.
void run_stripe_block(MicroFn micro, int M, int kc, const float* pa,
                      const float* pb, float* C, int ldc, int j0, int nc,
                      bool first, bool last, const GemmEpilogue& epi) {
  const std::size_t a_panel = static_cast<std::size_t>(kMR) * kc;
  const std::size_t b_panel = static_cast<std::size_t>(kNR) * kc;
  for (int jr = 0; jr < nc; jr += kNR) {
    const float* panel_b = pb + static_cast<std::size_t>(jr / kNR) * b_panel;
    for (int i0 = 0; i0 < M; i0 += kMR) {
      MicroTile t;
      t.pa = pa + static_cast<std::size_t>(i0 / kMR) * a_panel;
      t.pb = panel_b;
      t.c = C + static_cast<std::ptrdiff_t>(i0) * ldc + j0 + jr;
      t.ldc = ldc;
      t.kc = kc;
      t.mv = std::min(kMR, M - i0);
      t.nv = std::min(kNR, nc - jr);
      t.first = first;
      t.last = last;
      t.row_bias = epi.row_bias != nullptr ? epi.row_bias + i0 : nullptr;
      t.col_bias = epi.col_bias != nullptr ? epi.col_bias + j0 + jr : nullptr;
      t.relu = epi.relu;
      micro(t);
    }
  }
}

void sgemm_packed(int M, int N, int K, const GemmMat& A, const GemmMat& B,
                  float* C, int ldc, bool accumulate,
                  const GemmEpilogue& epi) {
  const MicroFn micro = micro_dispatch().fn;
  const int stripes = ceil_div(std::max(N, 1), kNC);
  const std::size_t a_packed = static_cast<std::size_t>(ceil_div(M, kMR)) *
                               kMR * static_cast<std::size_t>(std::min(K, kKC));

  if (K <= kKC) {
    // Single K block: pack A once up front (shared read-only by all stripe
    // tasks), then each task packs and consumes its own B stripe from its
    // thread-local arena.  Stripes own disjoint C columns.
    ScratchFrame frame(&scratch_arena());
    float* pa = frame.alloc(std::max<std::size_t>(a_packed, 1));
    pack_a(A, M, 0, K, pa);
    parallel_for(stripes, 1, [&](std::int64_t sb, std::int64_t se) {
      for (std::int64_t s = sb; s < se; ++s) {
        const int j0 = static_cast<int>(s) * kNC;
        const int nc = std::min(kNC, N - j0);
        ScratchFrame f(&scratch_arena());
        float* pb = f.alloc(static_cast<std::size_t>(ceil_div(nc, kNR)) *
                            kNR * static_cast<std::size_t>(std::max(K, 1)));
        pack_b(B, 0, K, j0, nc, pb);
        run_stripe_block(micro, M, K, pa, pb, C, ldc, j0, nc,
                         /*first=*/!accumulate, /*last=*/true, epi);
      }
    });
    return;
  }

  // Large K (the weight-gradient GEMM: M, N small, K = output cells).  Both
  // operands of each K block are packed once up front (serial — packing is
  // two orders of magnitude cheaper than the block's FLOPs), then the
  // micro-kernels fan out over disjoint C row-panels x column stripes.
  // Tasks partition *space*, never K, so every C element keeps the exact
  // serial ascending-k chain: results are bit-identical to one thread.
  // With dW's shapes (N = patch ≤ 432) the row-panel axis is what actually
  // parallelizes — the same per-output-channel split the pre-GEMM kernel
  // used.
  ScratchFrame frame(&scratch_arena());
  float* pa = frame.alloc(a_packed);
  float* pb = frame.alloc(static_cast<std::size_t>(ceil_div(N, kNR)) * kNR *
                          static_cast<std::size_t>(kKC));
  const int mpanels = ceil_div(M, kMR);
  for (int k0 = 0; k0 < K; k0 += kKC) {
    const int kc = std::min(kKC, K - k0);
    const std::size_t a_panel = static_cast<std::size_t>(kMR) * kc;
    const std::size_t b_panel = static_cast<std::size_t>(kNR) * kc;
    pack_a(A, M, k0, kc, pa);
    pack_b(B, k0, kc, 0, N, pb);
    const bool first = k0 == 0 && !accumulate;
    const bool last = k0 + kc == K;
    parallel_for(static_cast<std::int64_t>(mpanels) * stripes, 1,
                 [&](std::int64_t tb, std::int64_t te) {
      for (std::int64_t task = tb; task < te; ++task) {
        const int ip = static_cast<int>(task % mpanels);
        const int j0 = static_cast<int>(task / mpanels) * kNC;
        const int j1 = std::min(N, j0 + kNC);
        for (int jr = j0; jr < j1; jr += kNR) {
          MicroTile t;
          t.pa = pa + static_cast<std::size_t>(ip) * a_panel;
          t.pb = pb + static_cast<std::size_t>(jr / kNR) * b_panel;
          t.c = C + static_cast<std::ptrdiff_t>(ip) * kMR * ldc + jr;
          t.ldc = ldc;
          t.kc = kc;
          t.mv = std::min(kMR, M - ip * kMR);
          t.nv = std::min(kNR, j1 - jr);
          t.first = first;
          t.last = last;
          t.row_bias =
              epi.row_bias != nullptr ? epi.row_bias + ip * kMR : nullptr;
          t.col_bias = epi.col_bias != nullptr ? epi.col_bias + jr : nullptr;
          t.relu = epi.relu;
          micro(t);
        }
      }
    });
  }
}

// ---------------------------------------------------------- reference sgemm

/// The pre-GEMM scalar kernel, kept verbatim in spirit: each output row is
/// initialized from the bias, then accumulated with an ascending-k
/// multiply-add sweep.  Forward conv results are bit-identical to the
/// original implementation.  Parallel split is over disjoint column tiles;
/// per-element chains do not depend on the tiling.
void sgemm_reference(int M, int N, int K, const GemmMat& A, const GemmMat& B,
                     float* C, int ldc, bool accumulate,
                     const GemmEpilogue& epi) {
  constexpr int kTile = 512;
  const int tiles = ceil_div(std::max(N, 1), kTile);
  parallel_for(tiles, 1, [&](std::int64_t tb, std::int64_t te) {
    for (std::int64_t t = tb; t < te; ++t) {
      const int j0 = static_cast<int>(t) * kTile;
      const int j1 = std::min(N, j0 + kTile);
      for (int m = 0; m < M; ++m) {
        float* crow = C + static_cast<std::ptrdiff_t>(m) * ldc;
        if (!accumulate) {
          const float rb = epi.row_bias != nullptr ? epi.row_bias[m] : 0.0f;
          if (epi.col_bias != nullptr)
            for (int j = j0; j < j1; ++j) crow[j] = rb + epi.col_bias[j];
          else
            for (int j = j0; j < j1; ++j) crow[j] = rb;
        }
        for (int k = 0; k < K; ++k) {
          const float a = A.p[static_cast<std::ptrdiff_t>(m) * A.rs +
                              static_cast<std::ptrdiff_t>(k) * A.cs];
          const float* brow = B.p + static_cast<std::ptrdiff_t>(k) * B.rs;
          if (B.cs == 1) {
            for (int j = j0; j < j1; ++j) crow[j] += a * brow[j];
          } else {
            for (int j = j0; j < j1; ++j)
              crow[j] += a * brow[static_cast<std::ptrdiff_t>(j) * B.cs];
          }
        }
        if (accumulate) {
          if (epi.row_bias != nullptr)
            for (int j = j0; j < j1; ++j) crow[j] += epi.row_bias[m];
          if (epi.col_bias != nullptr)
            for (int j = j0; j < j1; ++j) crow[j] += epi.col_bias[j];
        }
        if (epi.relu)
          for (int j = j0; j < j1; ++j) crow[j] = std::max(crow[j], 0.0f);
      }
    }
  });
}

}  // namespace

GemmBackend gemm_backend() { return g_backend.load(std::memory_order_relaxed); }

void set_gemm_backend(GemmBackend backend) {
  // kDefault means "defer to this global" — storing it here would make
  // resolution self-referential.  Ignore rather than abort: the only way
  // to pass it is a programming error a test will catch via the name.
  if (backend == GemmBackend::kDefault) return;
  g_backend.store(backend, std::memory_order_relaxed);
}

const char* gemm_backend_name() {
  switch (gemm_backend()) {
    case GemmBackend::kReference: return "reference";
    case GemmBackend::kInt8: return "int8";
    default: break;
  }
  return "packed";
}

const char* gemm_kernel_isa() { return micro_dispatch().isa; }

KernelIsa kernel_isa_cap() {
  static const KernelIsa cap = read_isa_env(native_isa());
  return cap;
}

KernelIsa kernel_isa_native() { return native_isa(); }

const char* kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kVnni: return "vnni";
    case KernelIsa::kAvx512: return "avx512";
    case KernelIsa::kAvx2: return "avx2";
    default: break;
  }
  return "generic";
}

void sgemm(int M, int N, int K, const GemmMat& A, const GemmMat& B, float* C,
           int ldc, bool accumulate, const GemmEpilogue& epi,
           GemmBackend backend) {
  if (M <= 0 || N <= 0) return;
  if (backend == GemmBackend::kDefault) backend = gemm_backend();
  // kInt8 routes fp32 products (training, unquantized layers, gradients)
  // onto the packed kernel — the quantized path branches above this seam,
  // in the layers that own QuantizedWeights.
  if (backend == GemmBackend::kReference)
    sgemm_reference(M, N, K, A, B, C, ldc, accumulate, epi);
  else
    sgemm_packed(M, N, K, A, B, C, ldc, accumulate, epi);
}

std::size_t sgemm_workspace_floats(int M, int N, int K,
                                   GemmBackend backend) {
  if (backend == GemmBackend::kDefault) backend = gemm_backend();
  if (backend == GemmBackend::kReference) return 0;
  // Mirrors sgemm_packed's ScratchFrame allocations, with each request
  // rounded to whole cache lines the way ScratchArena::alloc rounds.
  const auto lines = [](std::size_t floats) {
    constexpr std::size_t kLine = 64 / sizeof(float);
    return (std::max<std::size_t>(floats, 1) + kLine - 1) / kLine * kLine;
  };
  const std::size_t a_packed =
      lines(static_cast<std::size_t>(ceil_div(M, kMR)) * kMR *
            static_cast<std::size_t>(std::min(std::max(K, 1), kKC)));
  if (K <= kKC) {
    // Single K block: pa up front plus one B stripe panel (the calling
    // thread packs at most one stripe at a time; peer stripes pack into
    // their own threads' arenas).
    const int nc = std::min(std::max(N, 1), kNC);
    return a_packed + lines(static_cast<std::size_t>(ceil_div(nc, kNR)) *
                            kNR * static_cast<std::size_t>(std::max(K, 1)));
  }
  // Large K: both operands of one K block packed up front.
  return a_packed + lines(static_cast<std::size_t>(ceil_div(N, kNR)) * kNR *
                          static_cast<std::size_t>(kKC));
}

}  // namespace ada
