#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace ada {

Tensor Tensor::batch_of(const std::vector<const Tensor*>& images) {
  assert(!images.empty());
  const Tensor& first = *images.front();
  assert(first.n() == 1);
  Tensor out(static_cast<int>(images.size()), first.c(), first.h(), first.w());
  const std::size_t stride = out.image_size();
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Tensor& img = *images[i];
    assert(img.n() == 1 && img.c() == first.c() && img.h() == first.h() &&
           img.w() == first.w());
    std::memcpy(out.data() + i * stride, img.data(), stride * sizeof(float));
  }
  return out;
}

Tensor Tensor::image(int n) const {
  assert(n >= 0 && n < n_);
  Tensor out(1, c_, h_, w_);
  std::memcpy(out.data(), data() + static_cast<std::size_t>(n) * image_size(),
              image_size() * sizeof(float));
  return out;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[' << n_ << ',' << c_ << ',' << h_ << ',' << w_ << ']';
  return os.str();
}

}  // namespace ada
