#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace ada {

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[' << n_ << ',' << c_ << ',' << h_ << ',' << w_ << ']';
  return os.str();
}

}  // namespace ada
