// 2-D convolution via im2col + the packed SGEMM backend (tensor/gemm.h),
// with full backward (input gradient, weight gradient, bias gradient).
// Column and packing workspaces live in the thread-local scratch arena
// (runtime/scratch.h), so steady-state calls do not touch the allocator.
//
// This single kernel carries the backbone, the detection heads, and the
// AdaScale regressor streams, so correctness is verified by numerical
// gradient checks in tests/conv2d_test.cpp and backend-equivalence tests in
// tests/gemm_test.cpp.
#pragma once

#include "runtime/exec_plan.h"
#include "tensor/qgemm.h"
#include "tensor/tensor.h"

namespace ada {

/// Static convolution geometry.
struct ConvSpec {
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 3;   ///< square kernel, k x k
  int stride = 1;
  int pad = 1;      ///< symmetric zero padding
  int dilation = 1; ///< tap spacing; k=3, dilation=d spans 2d+1 input pixels

  /// Effective kernel extent including dilation gaps.
  int effective_kernel() const { return dilation * (kernel - 1) + 1; }

  /// Output spatial size for the given input size (floor semantics).
  int out_dim(int in_dim) const {
    return (in_dim + 2 * pad - effective_kernel()) / stride + 1;
  }

  /// Number of weight elements: out_c * in_c * k * k.
  std::size_t weight_count() const {
    return static_cast<std::size_t>(out_channels) * in_channels * kernel *
           kernel;
  }
};

/// y = conv(x, w) + b.  x is (N, in_c, H, W) — N > 1 lowers the whole batch
/// onto a single sgemm call (the images' im2col column blocks concatenated
/// along the GEMM N axis), bit-identical to running the images one at a
/// time.  w is (out_c, in_c, k, k); b is (1, out_c, 1, 1) and may be empty
/// (no bias).  y is resized as needed.  With fuse_relu the ReLU is applied
/// inside the GEMM write-out (y = max(conv(x,w)+b, 0)), bit-identical to
/// applying it afterwards but without the extra pass.  `backend` picks the
/// fp32 GEMM (kDefault resolves the process default; planned forwards pass
/// the backend their ExecutionPlan resolved).
void conv2d_forward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                    const Tensor& b, Tensor* y, bool fuse_relu = false,
                    GemmBackend backend = GemmBackend::kDefault);

/// INT8 forward: y = dequant(conv(quant(x), wq)) + b, same geometry and
/// batching contract as conv2d_forward (N > 1 lowers onto one qgemm; the
/// fused-ReLU epilogue applies in the integer kernel's write-out).  `qw`
/// holds the frozen per-output-channel weights plus the calibrated input
/// activation qparams (qw.rows == out_c, qw.cols == in_c * k * k); bias
/// stays fp32.  Because integer accumulation is exact, outputs are
/// bit-identical run-to-run, across thread counts, and across batch
/// compositions (tests/qgemm_test.cpp).
void conv2d_forward_int8(const ConvSpec& spec, const Tensor& x,
                         const QuantizedWeights& qw, const Tensor& b,
                         Tensor* y, bool fuse_relu = false);

/// Backward pass: accumulates dL/dx into dx (if non-null), dL/dw into dw and
/// dL/db into db (if non-null).  x must be the forward input, dy the gradient
/// of the forward output.
void conv2d_backward(const ConvSpec& spec, const Tensor& x, const Tensor& w,
                     const Tensor& dy, Tensor* dx, Tensor* dw, Tensor* db);

/// Multiply-accumulate count for one forward pass at the given input size.
/// Used by benches to report the FLOP-proportional cost of each image scale.
long long conv2d_macs(const ConvSpec& spec, int in_h, int in_w);

/// Scratch-arena floats one conv2d_forward / conv2d_forward_int8 call with
/// this geometry and kernel choice claims on the calling thread (im2col
/// columns, the batched-output staging buffer, and the underlying GEMM's
/// packing panels).  Execution plans record this per layer so the arena
/// can be pre-sized once to the exact steady-state peak.
std::size_t conv2d_forward_workspace_floats(const ConvSpec& spec, int n,
                                            int in_h, int in_w,
                                            KernelKind kernel);

}  // namespace ada
