#include "tensor/qgemm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/scratch.h"
#include "runtime/thread_pool.h"

namespace ada {

namespace {

/// Round-to-nearest-even via the 2^23 magic-number trick: (v + 2^23) - 2^23
/// rounds any |v| < 2^22 to the nearest integer-valued float under the
/// default FP rounding mode — two plain adds, so it vectorizes on every
/// ISA and is bit-identical between the scalar helpers and the SIMD
/// packing loops (std::nearbyintf would be a scalar libcall inside the hot
/// loop).  Quantized values live in [0, 255], far inside the valid range;
/// out-of-range garbage still saturates correctly in the clamp that
/// follows every use.
constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23

inline float round_ne(float v) { return (v + kRoundMagic) - kRoundMagic; }

}  // namespace

QuantParams choose_qparams(float lo, float hi) {
  // Widen to include 0 so zero padding (im2col edges) quantizes exactly to
  // the zero point, and guard against degenerate/inverted ranges.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams p;
  const float range = hi - lo;
  if (!(range > 0.0f) || !std::isfinite(range)) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = range / 255.0f;
  const float zp = round_ne(-lo / p.scale);
  p.zero_point = static_cast<int>(std::min(255.0f, std::max(0.0f, zp)));
  return p;
}

std::uint8_t quantize_u8(float x, const QuantParams& p) {
  // Must mirror the qgemm packing loop operation for operation (multiply
  // by reciprocal, magic round, add zero point, clamp) — fake-quantized
  // fp32 references serve as bit-level oracles for the integer kernel.
  const float inv = 1.0f / p.scale;
  const float q = round_ne(x * inv) + static_cast<float>(p.zero_point);
  return static_cast<std::uint8_t>(std::min(255.0f, std::max(0.0f, q)));
}

float dequantize_u8(std::uint8_t q, const QuantParams& p) {
  return (static_cast<int>(q) - p.zero_point) * p.scale;
}

void RangeObserver::grow(float a) {
  if (cap_ <= 0.0f) {
    // First nonzero magnitude seeds the cap (zeros always land in bin 0,
    // independent of cap).
    cap_ = std::max(a, 1e-6f);
    return;
  }
  while (cap_ < a && std::isfinite(cap_)) {
    // Double the cap by merging adjacent bin pairs into the lower half.
    for (int b = 0; b < kBins / 2; ++b)
      hist_[static_cast<std::size_t>(b)] =
          hist_[static_cast<std::size_t>(2 * b)] +
          hist_[static_cast<std::size_t>(2 * b + 1)];
    std::fill(hist_.begin() + kBins / 2, hist_.end(), 0);
    cap_ *= 2.0f;
  }
}

void RangeObserver::observe(const float* x, std::size_t n) {
  if (n == 0) return;
  if (hist_.empty()) hist_.assign(kBins, 0);
  if (total_ == 0) {
    min_ = x[0];
    max_ = x[0];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const float a = std::fabs(v);
    if (a > cap_) grow(a);
    const int bin =
        cap_ > 0.0f
            ? std::min(kBins - 1,
                       static_cast<int>(
                           a * (static_cast<float>(kBins) / cap_)))
            : 0;
    ++hist_[static_cast<std::size_t>(bin)];
  }
  total_ += static_cast<long long>(n);
}

float RangeObserver::percentile_hi(double fraction) const {
  if (total_ == 0) return 0.0f;
  const float amax = std::max(std::fabs(min_), std::fabs(max_));
  if (fraction >= 1.0 || hist_.empty()) return amax;
  const double target = fraction * static_cast<double>(total_);
  double cum = 0.0;
  for (int b = 0; b < kBins; ++b) {
    cum += static_cast<double>(hist_[static_cast<std::size_t>(b)]);
    if (cum >= target)
      return std::min(amax,
                      cap_ * (static_cast<float>(b + 1) / kBins));
  }
  return amax;
}

double calibration_clip_fraction() {
  static const double fraction = [] {
    constexpr double kDefault = 0.9995;
    if (const char* env = std::getenv("ADASCALE_INT8_CLIP");
        env != nullptr) {
      const double v = std::atof(env);
      if (v > 0.0 && v <= 1.0) return v;
      std::fprintf(stderr,
                   "ADASCALE_INT8_CLIP=%s is not in (0, 1]; using %.4f\n",
                   env, kDefault);
    }
    return kDefault;
  }();
  return fraction;
}

QuantizedWeights quantize_weights(const float* w, int rows, int cols,
                                  const QuantParams& act) {
  QuantizedWeights out;
  out.rows = rows;
  out.cols = cols;
  out.q.resize(static_cast<std::size_t>(rows) * cols);
  out.scale.resize(static_cast<std::size_t>(rows));
  out.row_sum.resize(static_cast<std::size_t>(rows));
  out.act = act;
  for (int r = 0; r < rows; ++r) {
    const float* row = w + static_cast<std::size_t>(r) * cols;
    float amax = 0.0f;
    for (int c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(row[c]));
    // An all-zero output channel still needs a usable (positive) scale —
    // its quantized row is all zero either way.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    out.scale[static_cast<std::size_t>(r)] = scale;
    std::int32_t sum = 0;
    std::int8_t* qrow = out.q.data() + static_cast<std::size_t>(r) * cols;
    const float inv = 1.0f / scale;
    for (int c = 0; c < cols; ++c) {
      const float v = round_ne(row[c] * inv);
      const std::int8_t qv = static_cast<std::int8_t>(
          std::min(127.0f, std::max(-127.0f, v)));
      qrow[c] = qv;
      sum += qv;
    }
    out.row_sum[static_cast<std::size_t>(r)] = sum;
  }
  return out;
}

namespace {

// Register blocking mirrors the fp32 packed kernel (tensor/gemm.cpp): a
// kMR x kNR int32 accumulator tile, B panels of kNR u8 lanes per k step,
// A panels widened to int32 (kMR lanes per k step) so the broadcast is a
// plain 4-byte load.  Integer accumulation is exact, so unlike the fp32
// kernel there is no K-blocking / accumulation-order subtlety: any
// schedule produces identical bits.
constexpr int kMR = 6;
constexpr int kNR = 16;
constexpr int kNC = 1024;  ///< column-stripe width, the unit of parallelism

#if defined(__GNUC__) || defined(__clang__)
#define ADA_QGEMM_VECTOR_EXT 1
// Explicit SIMD via vector extensions at a fixed 16-lane width (one ZMM,
// two YMM, or four XMM — the compiler splits wider-than-native vectors
// automatically, so a single body serves every dispatched ISA).  The
// auto-vectorizer cannot handle the u8 -> s32 widening multiply-accumulate
// pattern, so the conversions are explicit __builtin_convertvector.
typedef std::int32_t v16s32 __attribute__((vector_size(64), may_alias));
typedef std::uint8_t v16u8
    __attribute__((vector_size(16), may_alias, aligned(1)));
typedef float v16f __attribute__((vector_size(64), may_alias));
typedef float v16f_u __attribute__((vector_size(64), may_alias, aligned(4)));
typedef float v4f_u __attribute__((vector_size(16), may_alias, aligned(4)));
#endif

struct QMicroTile {
  const std::int32_t* pa;  ///< packed A panel: kc steps of kMR s32 (from s8)
  const std::uint8_t* pb;  ///< packed B panel: kc steps of kNR u8
  float* c;                ///< top-left of the fp32 output tile
  int ldc;
  int kc;
  int mv, nv;              ///< valid rows/cols (edge tiles < kMR/kNR)
  const float* row_scale;  ///< act.scale * weight scale, per tile row
  const std::int32_t* row_sum;  ///< weight row sums, per tile row
  int azp;                 ///< activation zero point
  const float* row_bias;   ///< fp32 bias per tile row, or null
  bool relu;
};

#ifdef ADA_QGEMM_VECTOR_EXT

inline __attribute__((always_inline)) void qmicro_body(const QMicroTile& t) {
  v16s32 acc[kMR];
  for (int m = 0; m < kMR; ++m) acc[m] = v16s32{};

  const std::int32_t* pa = t.pa;
  const std::uint8_t* pb = t.pb;
  for (int k = 0; k < t.kc; ++k, pa += kMR, pb += kNR) {
    const v16s32 b =
        __builtin_convertvector(*reinterpret_cast<const v16u8*>(pb), v16s32);
    for (int m = 0; m < kMR; ++m) acc[m] += (v16s32{} + pa[m]) * b;
  }

  // Dequant epilogue, vectorized per row: fp32 = (acc - azp * row_sum[m])
  // * row_scale[m] + bias[m], then ReLU.  Full tiles store straight to C;
  // edge tiles spill to an aligned row buffer and copy the valid prefix.
  for (int m = 0; m < t.mv; ++m) {
    const v16s32 corr = v16s32{} + t.azp * t.row_sum[m];
    v16f v = __builtin_convertvector(acc[m] - corr, v16f);
    v = v * (v16f{} + t.row_scale[m]);
    if (t.row_bias != nullptr) v = v + (v16f{} + t.row_bias[m]);
    if (t.relu) {
      const v16f zero = v16f{};
      v = v > zero ? v : zero;
    }
    float* crow = t.c + static_cast<std::ptrdiff_t>(m) * t.ldc;
    if (t.nv == kNR) {
      *reinterpret_cast<v16f_u*>(crow) = v;
    } else {
      alignas(64) float row[kNR];
      *reinterpret_cast<v16f*>(row) = v;
      for (int j = 0; j < t.nv; ++j) crow[j] = row[j];
    }
  }
}

#else  // no vector extensions: plain scalar body, still bit-identical

inline void qmicro_body(const QMicroTile& t) {
  std::int32_t acc[kMR][kNR] = {};
  const std::int32_t* pa = t.pa;
  const std::uint8_t* pb = t.pb;
  for (int k = 0; k < t.kc; ++k, pa += kMR, pb += kNR)
    for (int m = 0; m < kMR; ++m) {
      const std::int32_t a = pa[m];
      for (int j = 0; j < kNR; ++j)
        acc[m][j] += a * static_cast<std::int32_t>(pb[j]);
    }
  for (int m = 0; m < t.mv; ++m) {
    float* crow = t.c + static_cast<std::ptrdiff_t>(m) * t.ldc;
    const std::int32_t corr = t.azp * t.row_sum[m];
    const float scale = t.row_scale[m];
    const float bias = t.row_bias != nullptr ? t.row_bias[m] : 0.0f;
    for (int j = 0; j < t.nv; ++j) {
      float v = static_cast<float>(acc[m][j] - corr) * scale + bias;
      if (t.relu) v = std::max(v, 0.0f);
      crow[j] = v;
    }
  }
}

#endif  // ADA_QGEMM_VECTOR_EXT

int ceil_div(int a, int b) { return (a + b - 1) / b; }

/// Packs rows [0, M) x cols [0, K) of the s8 weight matrix into
/// ceil(M/kMR) panels of K x kMR int32, k-major (widened once here so the
/// kernel's broadcast is a plain dword load), zero-padding rows past M.
void pack_a_s8(const std::int8_t* A, int M, int K, std::int32_t* pa) {
  for (int i0 = 0; i0 < M; i0 += kMR) {
    const int mv = std::min(kMR, M - i0);
    for (int k = 0; k < K; ++k, pa += kMR) {
      int m = 0;
      for (; m < mv; ++m)
        pa[m] = A[static_cast<std::size_t>(i0 + m) * K + k];
      for (; m < kMR; ++m) pa[m] = 0;
    }
  }
}

/// Packs rows [0, K) x cols [j0, j0+nc) of the fp32 B view into
/// ceil(nc/kNR) panels of K x kNR u8, k-major, quantizing each element
/// with `qp` on the way in (multiply by 1/scale, magic round, add zero
/// point, clamp — the exact quantize_u8 recipe).  Cols past nc pad with
/// the zero point, which dequantizes to 0 and is exactly cancelled by the
/// epilogue's zero-point correction.
inline __attribute__((always_inline)) void pack_b_quant_u8(
    const GemmMat& B, int K, int j0, int nc, const QuantParams& qp,
    std::uint8_t* pb) {
  const float inv = 1.0f / qp.scale;
  const float fzp = static_cast<float>(qp.zero_point);
#ifdef ADA_QGEMM_VECTOR_EXT
  if (B.cs == 1) {
    const v16f vinv = v16f{} + inv;
    const v16f vzp = v16f{} + fzp;
    const v16f vzero = v16f{};
    const v16f vmax = v16f{} + 255.0f;
    const v16f vmagic = v16f{} + kRoundMagic;
    for (int jr = 0; jr < nc; jr += kNR) {
      const int nv = std::min(kNR, nc - jr);
      if (nv == kNR) {
        for (int k = 0; k < K; ++k, pb += kNR) {
          const float* src =
              B.p + static_cast<std::ptrdiff_t>(k) * B.rs + (j0 + jr);
          v16f q = *reinterpret_cast<const v16f_u*>(src) * vinv;
          q = (q + vmagic) - vmagic;  // round_ne, lane-wise
          q = q + vzp;
          q = q > vzero ? q : vzero;
          q = q < vmax ? q : vmax;
          const v16s32 qi = __builtin_convertvector(q, v16s32);
          *reinterpret_cast<v16u8*>(pb) = __builtin_convertvector(qi, v16u8);
        }
        continue;
      }
      // Edge panel: scalar lanes, identical arithmetic.
      for (int k = 0; k < K; ++k, pb += kNR) {
        const float* src =
            B.p + static_cast<std::ptrdiff_t>(k) * B.rs + (j0 + jr);
        int j = 0;
        for (; j < nv; ++j) {
          const float q = round_ne(src[j] * inv) + fzp;
          pb[j] = static_cast<std::uint8_t>(
              std::min(255.0f, std::max(0.0f, q)));
        }
        for (; j < kNR; ++j)
          pb[j] = static_cast<std::uint8_t>(qp.zero_point);
      }
    }
    return;
  }
#endif
  for (int jr = 0; jr < nc; jr += kNR) {
    const int nv = std::min(kNR, nc - jr);
    for (int k = 0; k < K; ++k, pb += kNR) {
      const float* src = B.p + static_cast<std::ptrdiff_t>(k) * B.rs +
                         static_cast<std::ptrdiff_t>(j0 + jr) * B.cs;
      int j = 0;
      for (; j < nv; ++j) {
        const float q =
            round_ne(src[static_cast<std::ptrdiff_t>(j) * B.cs] * inv) + fzp;
        pb[j] = static_cast<std::uint8_t>(
            std::min(255.0f, std::max(0.0f, q)));
      }
      for (; j < kNR; ++j) pb[j] = static_cast<std::uint8_t>(qp.zero_point);
    }
  }
}

// One column stripe end to end: quantize-and-pack its B panels, then run
// every micro-tile.  The whole body is compiled once per ISA and
// dispatched from CPUID, so BOTH the packing (rounding + u8 saturation)
// and the micro-kernel (widening multiply-accumulate) run at the widest
// vector width present.  Integer math is exact and the fp32 lane
// arithmetic is contraction-free (-ffp-contract=off, CMakeLists.txt), so
// every ISA produces identical bytes.
struct QStripeArgs {
  const GemmMat* B;
  int M, K;
  int j0, nc;
  const std::int32_t* pa;
  std::uint8_t* pb;  ///< this stripe's panel buffer (thread-local)
  float* C;
  int ldc;
  const float* row_scale;
  const std::int32_t* row_sum;
  int azp;
  const float* row_bias;
  bool relu;
};

using QStripeFn = void (*)(const QStripeArgs&, const QuantParams&);

inline __attribute__((always_inline)) void qstripe_run(
    const QStripeArgs& a, const QuantParams& qp) {
  pack_b_quant_u8(*a.B, a.K, a.j0, a.nc, qp, a.pb);
  const std::size_t a_panel = static_cast<std::size_t>(kMR) * a.K;
  const std::size_t b_panel = static_cast<std::size_t>(kNR) * a.K;
  for (int jr = 0; jr < a.nc; jr += kNR) {
    const std::uint8_t* panel_b =
        a.pb + static_cast<std::size_t>(jr / kNR) * b_panel;
    for (int i0 = 0; i0 < a.M; i0 += kMR) {
      QMicroTile t;
      t.pa = a.pa + static_cast<std::size_t>(i0 / kMR) * a_panel;
      t.pb = panel_b;
      t.c = a.C + static_cast<std::ptrdiff_t>(i0) * a.ldc + a.j0 + jr;
      t.ldc = a.ldc;
      t.kc = a.K;
      t.mv = std::min(kMR, a.M - i0);
      t.nv = std::min(kNR, a.nc - jr);
      t.row_scale = a.row_scale + i0;
      t.row_sum = a.row_sum + i0;
      t.azp = a.azp;
      t.row_bias = a.row_bias != nullptr ? a.row_bias + i0 : nullptr;
      t.relu = a.relu;
      qmicro_body(t);
    }
  }
}

void qstripe_generic(const QStripeArgs& a, const QuantParams& qp) {
  qstripe_run(a, qp);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ADA_QGEMM_X86_DISPATCH 1
__attribute__((target("avx2"))) void qstripe_avx2(const QStripeArgs& a,
                                                  const QuantParams& qp) {
  qstripe_run(a, qp);
}
__attribute__((target("avx512f,avx512bw"))) void qstripe_avx512(
    const QStripeArgs& a, const QuantParams& qp) {
  qstripe_run(a, qp);
}
#endif

QStripeFn pick_qstripe() {
#ifdef ADA_QGEMM_X86_DISPATCH
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
    return qstripe_avx512;
  if (__builtin_cpu_supports("avx2")) return qstripe_avx2;
#endif
  return qstripe_generic;
}

QStripeFn qstripe_dispatch() {
  static const QStripeFn fn = pick_qstripe();
  return fn;
}

}  // namespace

void qgemm(int M, int N, int K, const QuantizedWeights& W, const GemmMat& B,
           float* C, int ldc, const float* bias, bool relu) {
  if (M <= 0 || N <= 0) return;
  assert(M == W.rows && K == W.cols);
  // u8 x s8 products are ≤ 255 * 127; the ascending-K int32 chain is exact
  // below this bound (header comment).  Every shape in this codebase is
  // orders of magnitude smaller.
  assert(static_cast<long long>(K) * 255 * 127 < 2147483647LL);

  const QStripeFn stripe_fn = qstripe_dispatch();

  // The epilogue scale folds the per-tensor activation scale into the
  // per-channel weight scale once, outside the tile loops.
  ScratchFrame frame(&scratch_arena());
  float* row_scale = frame.alloc(static_cast<std::size_t>(M));
  for (int m = 0; m < M; ++m)
    row_scale[m] = W.act.scale * W.scale[static_cast<std::size_t>(m)];

  // Pack A once up front (shared, read-only); stripes own disjoint C
  // columns and quantize-and-pack their own B panels thread-locally.
  const std::size_t a_packed =
      static_cast<std::size_t>(ceil_div(M, kMR)) * kMR *
      static_cast<std::size_t>(std::max(K, 1));
  std::int32_t* pa = frame.alloc_as<std::int32_t>(a_packed);
  pack_a_s8(W.q.data(), M, K, pa);

  const int stripes = ceil_div(N, kNC);
  parallel_for(stripes, 1, [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t s = sb; s < se; ++s) {
      const int j0 = static_cast<int>(s) * kNC;
      const int nc = std::min(kNC, N - j0);
      ScratchFrame f(&scratch_arena());
      QStripeArgs a;
      a.B = &B;
      a.M = M;
      a.K = K;
      a.j0 = j0;
      a.nc = nc;
      a.pa = pa;
      a.pb = f.alloc_as<std::uint8_t>(
          static_cast<std::size_t>(ceil_div(nc, kNR)) * kNR *
          static_cast<std::size_t>(std::max(K, 1)));
      a.C = C;
      a.ldc = ldc;
      a.row_scale = row_scale;
      a.row_sum = W.row_sum.data();
      a.azp = W.act.zero_point;
      a.row_bias = bias;
      a.relu = relu;
      stripe_fn(a, W.act);
    }
  });
}

std::size_t qgemm_workspace_floats(int M, int N, int K) {
  // Mirrors qgemm's ScratchFrame allocations: row_scale (M floats), the
  // widened s8→s32 A panels, and one u8 B stripe panel on the calling
  // thread.  Byte requests ride the float arena rounded up to cache lines.
  const auto lines = [](std::size_t bytes) {
    constexpr std::size_t kLine = 64;
    return (std::max<std::size_t>(bytes, 1) + kLine - 1) / kLine * kLine /
           sizeof(float);
  };
  const std::size_t a_packed = static_cast<std::size_t>(ceil_div(M, kMR)) *
                               kMR * static_cast<std::size_t>(std::max(K, 1));
  const int nc = std::min(std::max(N, 1), kNC);
  const std::size_t b_panel = static_cast<std::size_t>(ceil_div(nc, kNR)) *
                              kNR * static_cast<std::size_t>(std::max(K, 1));
  return lines(static_cast<std::size_t>(M) * sizeof(float)) +
         lines(a_packed * sizeof(std::int32_t)) +
         lines(b_panel * sizeof(std::uint8_t));
}

}  // namespace ada
