#include "tensor/qgemm.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "runtime/scratch.h"
#include "runtime/thread_pool.h"

namespace ada {

namespace {

/// Round-to-nearest-even via the 2^23 magic-number trick: (v + 2^23) - 2^23
/// rounds any |v| < 2^22 to the nearest integer-valued float under the
/// default FP rounding mode — two plain adds, so it vectorizes on every
/// ISA and is bit-identical between the scalar helpers and the SIMD
/// packing loops (std::nearbyintf would be a scalar libcall inside the hot
/// loop).  Quantized values live in [0, 255], far inside the valid range;
/// out-of-range garbage still saturates correctly in the clamp that
/// follows every use.
constexpr float kRoundMagic = 12582912.0f;  // 1.5 * 2^23

inline float round_ne(float v) { return (v + kRoundMagic) - kRoundMagic; }

}  // namespace

QuantParams choose_qparams(float lo, float hi) {
  // Widen to include 0 so zero padding (im2col edges) quantizes exactly to
  // the zero point, and guard against degenerate/inverted ranges.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams p;
  const float range = hi - lo;
  if (!(range > 0.0f) || !std::isfinite(range)) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = range / 255.0f;
  const float zp = round_ne(-lo / p.scale);
  p.zero_point = static_cast<int>(std::min(255.0f, std::max(0.0f, zp)));
  return p;
}

std::uint8_t quantize_u8(float x, const QuantParams& p) {
  // Must mirror the qgemm packing loop operation for operation (multiply
  // by reciprocal, magic round, add zero point, clamp) — fake-quantized
  // fp32 references serve as bit-level oracles for the integer kernel.
  const float inv = 1.0f / p.scale;
  const float q = round_ne(x * inv) + static_cast<float>(p.zero_point);
  return static_cast<std::uint8_t>(std::min(255.0f, std::max(0.0f, q)));
}

float dequantize_u8(std::uint8_t q, const QuantParams& p) {
  return (static_cast<int>(q) - p.zero_point) * p.scale;
}

void RangeObserver::grow(float a) {
  if (cap_ <= 0.0f) {
    // First nonzero magnitude seeds the cap (zeros always land in bin 0,
    // independent of cap).
    cap_ = std::max(a, 1e-6f);
    return;
  }
  while (cap_ < a && std::isfinite(cap_)) {
    // Double the cap by merging adjacent bin pairs into the lower half.
    for (int b = 0; b < kBins / 2; ++b)
      hist_[static_cast<std::size_t>(b)] =
          hist_[static_cast<std::size_t>(2 * b)] +
          hist_[static_cast<std::size_t>(2 * b + 1)];
    std::fill(hist_.begin() + kBins / 2, hist_.end(), 0);
    cap_ *= 2.0f;
  }
}

void RangeObserver::observe(const float* x, std::size_t n) {
  if (n == 0) return;
  if (hist_.empty()) hist_.assign(kBins, 0);
  if (total_ == 0) {
    min_ = x[0];
    max_ = x[0];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x[i];
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const float a = std::fabs(v);
    if (a > cap_) grow(a);
    const int bin =
        cap_ > 0.0f
            ? std::min(kBins - 1,
                       static_cast<int>(
                           a * (static_cast<float>(kBins) / cap_)))
            : 0;
    ++hist_[static_cast<std::size_t>(bin)];
  }
  total_ += static_cast<long long>(n);
}

float RangeObserver::percentile_hi(double fraction) const {
  if (total_ == 0) return 0.0f;
  const float amax = std::max(std::fabs(min_), std::fabs(max_));
  if (fraction >= 1.0 || hist_.empty()) return amax;
  const double target = fraction * static_cast<double>(total_);
  double cum = 0.0;
  for (int b = 0; b < kBins; ++b) {
    cum += static_cast<double>(hist_[static_cast<std::size_t>(b)]);
    if (cum >= target)
      return std::min(amax,
                      cap_ * (static_cast<float>(b + 1) / kBins));
  }
  return amax;
}

double calibration_clip_fraction() {
  static const double fraction = [] {
    constexpr double kDefault = 0.9995;
    if (const char* env = std::getenv("ADASCALE_INT8_CLIP");
        env != nullptr) {
      const double v = std::atof(env);
      if (v > 0.0 && v <= 1.0) return v;
      std::fprintf(stderr,
                   "ADASCALE_INT8_CLIP=%s is not in (0, 1]; using %.4f\n",
                   env, kDefault);
    }
    return kDefault;
  }();
  return fraction;
}

QuantizedWeights quantize_weights(const float* w, int rows, int cols,
                                  const QuantParams& act) {
  QuantizedWeights out;
  out.rows = rows;
  out.cols = cols;
  out.q.resize(static_cast<std::size_t>(rows) * cols);
  out.scale.resize(static_cast<std::size_t>(rows));
  out.row_sum.resize(static_cast<std::size_t>(rows));
  out.act = act;
  for (int r = 0; r < rows; ++r) {
    const float* row = w + static_cast<std::size_t>(r) * cols;
    float amax = 0.0f;
    for (int c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(row[c]));
    // An all-zero output channel still needs a usable (positive) scale —
    // its quantized row is all zero either way.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    out.scale[static_cast<std::size_t>(r)] = scale;
    std::int32_t sum = 0;
    std::int8_t* qrow = out.q.data() + static_cast<std::size_t>(r) * cols;
    const float inv = 1.0f / scale;
    for (int c = 0; c < cols; ++c) {
      const float v = round_ne(row[c] * inv);
      const std::int8_t qv = static_cast<std::int8_t>(
          std::min(127.0f, std::max(-127.0f, v)));
      qrow[c] = qv;
      sum += qv;
    }
    out.row_sum[static_cast<std::size_t>(r)] = sum;
  }
  return out;
}

namespace {

// Register blocking mirrors the fp32 packed kernel (tensor/gemm.cpp): a
// kMR x kNR int32 accumulator tile.  The reduction axis is processed in
// *k-groups* — pairs for the vpmaddwd kernels (u8/s8 widened to s16,
// adjacent-k multiply-add straight into s32) and quads for the AVX-512
// VNNI kernel (vpdpbusd: a u8 x s8 four-element dot product per lane).
// A panels hold one k-group per output row as a single 32-bit word
// (2 x s16 or 4 x s8) so the kernel broadcast is a plain dword splat;
// B panels group-interleave the quantized u8 columns so one vector load
// feeds the multiply-add directly.  Integer accumulation is exact and
// addition is associative, so every grouping and every ISA produces
// identical bits — the portable pair body below uses the same k-pairing
// as vpmaddwd and matches the SIMD kernels bit for bit.
//
// Intermediate bounds (nothing saturates): one u8 x s8 product is at most
// 255 * 127 = 32385.  The vpmaddwd s16 inputs are the raw u8/s8 values
// (never rescaled), so a pair sum is ≤ 64770 — s16 * s16 pair sums only
// saturate at -32768 * -32768 * 2, unreachable from this operand range.
// A vpdpbusd quad sum is ≤ 129540, and vpdpbusd accumulates modulo 2^32
// without saturating (only VPDPBUSDS saturates); the full-K chain fits
// s32 by the bound qgemm asserts.
constexpr int kMR = 6;
constexpr int kNR = 16;
constexpr int kNC = 1024;  ///< column-stripe width, the unit of parallelism

int ceil_div(int a, int b) { return (a + b - 1) / b; }

#if defined(__GNUC__) || defined(__clang__)
#define ADA_QGEMM_VECTOR_EXT 1
// Vector-extension types for the quantize-and-pack path: one body serves
// every dispatched ISA (the compiler splits wider-than-native vectors).
typedef std::int32_t v16s32 __attribute__((vector_size(64), may_alias));
typedef std::uint8_t v16u8
    __attribute__((vector_size(16), may_alias, aligned(1)));
typedef float v16f __attribute__((vector_size(64), may_alias));
typedef float v16f_u __attribute__((vector_size(64), may_alias, aligned(4)));
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ADA_QGEMM_X86_DISPATCH 1
#endif

struct QTile {
  const void* pa;          ///< packed A panel: kg steps of kMR k-group dwords
  const std::uint8_t* pb;  ///< packed B panel: kg steps of kNR u8 k-groups
  float* c;                ///< top-left of the fp32 output tile
  int ldc;
  int kg;                  ///< k-group steps: ceil(K / G), G = 2 or 4
  int mv, nv;              ///< valid rows/cols (edge tiles < kMR/kNR)
  const float* row_scale;  ///< act.scale * weight scale, per tile row
  const std::int32_t* row_sum;  ///< weight row sums, per tile row
  int azp;                 ///< activation zero point
  const float* row_bias;   ///< fp32 bias per tile row, or null
  bool relu;
};

/// Dequant epilogue for one spilled accumulator row: fp32 = (acc - azp *
/// row_sum[m]) * row_scale[m] + bias[m], then ReLU.  Plain per-element
/// fp32 mul/add (this file builds with -ffp-contract=off) is exactly
/// rounded, so the stored bytes are identical no matter which ISA body
/// produced `acc` — the cross-ISA determinism contract reduces to the
/// integer accumulators matching, which exactness guarantees.
inline __attribute__((always_inline)) void qepilogue_row(
    const std::int32_t* acc, int m, const QTile& t) {
  float* crow = t.c + static_cast<std::ptrdiff_t>(m) * t.ldc;
  const std::int32_t corr = t.azp * t.row_sum[m];
  const float scale = t.row_scale[m];
  const float bias = t.row_bias != nullptr ? t.row_bias[m] : 0.0f;
  for (int j = 0; j < t.nv; ++j) {
    float v = static_cast<float>(acc[j] - corr) * scale + bias;
    if (t.relu) v = std::max(v, 0.0f);
    crow[j] = v;
  }
}

/// Portable pair kernel: the same k-pair grouping as vpmaddwd, in plain
/// s32 arithmetic.  This is the body the SIMD kernels must match bit for
/// bit (they do: integer sums re-associate freely), and the dispatch
/// target for KernelIsa::kGeneric.
void qmicro_pair_generic(const QTile& t) {
  std::int32_t acc[kMR][kNR] = {};
  const std::int16_t* pa = static_cast<const std::int16_t*>(t.pa);
  const std::uint8_t* pb = t.pb;
  for (int p = 0; p < t.kg; ++p, pa += kMR * 2, pb += kNR * 2)
    for (int m = 0; m < kMR; ++m) {
      const std::int32_t a0 = pa[2 * m];
      const std::int32_t a1 = pa[2 * m + 1];
      for (int j = 0; j < kNR; ++j)
        acc[m][j] += a0 * static_cast<std::int32_t>(pb[2 * j]) +
                     a1 * static_cast<std::int32_t>(pb[2 * j + 1]);
    }
  for (int m = 0; m < t.mv; ++m) qepilogue_row(acc[m], m, t);
}

#ifdef ADA_QGEMM_X86_DISPATCH

/// vpmaddwd pair kernel, AVX2: per k-pair step, zero-extend 16 u8 column
/// pairs to s16 (two ymm), broadcast each row's s16 pair as a dword, and
/// fold the vpmaddwd pair sums into two ymm s32 accumulators per row —
/// 12 accumulator registers, same budget as the fp32 6x16 tile.
__attribute__((target("avx2"))) void qmicro_pair_avx2(const QTile& t) {
  const std::int16_t* pa = static_cast<const std::int16_t*>(t.pa);
  const std::uint8_t* pb = t.pb;
  __m256i acc_lo[kMR], acc_hi[kMR];
  for (int m = 0; m < kMR; ++m) {
    acc_lo[m] = _mm256_setzero_si256();
    acc_hi[m] = _mm256_setzero_si256();
  }
  for (int p = 0; p < t.kg; ++p, pa += kMR * 2, pb += kNR * 2) {
    const __m256i blo = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb)));
    const __m256i bhi = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + 16)));
    for (int m = 0; m < kMR; ++m) {
      std::int32_t aw;
      std::memcpy(&aw, pa + 2 * m, sizeof(aw));
      const __m256i a = _mm256_set1_epi32(aw);
      acc_lo[m] = _mm256_add_epi32(acc_lo[m], _mm256_madd_epi16(a, blo));
      acc_hi[m] = _mm256_add_epi32(acc_hi[m], _mm256_madd_epi16(a, bhi));
    }
  }
  alignas(64) std::int32_t acc[kNR];
  for (int m = 0; m < t.mv; ++m) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc), acc_lo[m]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 8), acc_hi[m]);
    qepilogue_row(acc, m, t);
  }
}

/// vpmaddwd pair kernel, AVX-512: the full 16-column tile row is one zmm
/// of 16 s32 lanes; each k-pair step is one cvtepu8 widen + vpmaddwd +
/// vpaddd per row.
__attribute__((target("avx512f,avx512bw"))) void qmicro_pair_avx512(
    const QTile& t) {
  const std::int16_t* pa = static_cast<const std::int16_t*>(t.pa);
  const std::uint8_t* pb = t.pb;
  __m512i acc[kMR];
  for (int m = 0; m < kMR; ++m) acc[m] = _mm512_setzero_si512();
  for (int p = 0; p < t.kg; ++p, pa += kMR * 2, pb += kNR * 2) {
    const __m512i b = _mm512_cvtepu8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb)));
    for (int m = 0; m < kMR; ++m) {
      std::int32_t aw;
      std::memcpy(&aw, pa + 2 * m, sizeof(aw));
      acc[m] = _mm512_add_epi32(
          acc[m], _mm512_madd_epi16(_mm512_set1_epi32(aw), b));
    }
  }
  alignas(64) std::int32_t row[kNR];
  for (int m = 0; m < t.mv; ++m) {
    _mm512_store_si512(row, acc[m]);
    qepilogue_row(row, m, t);
  }
}

/// vpdpbusd quad kernel, AVX-512 VNNI: one 64-byte load covers a whole
/// k-quad step of the B panel; each row is a single dpbusd (u8 panel x
/// broadcast s8 quad, four products summed into the s32 accumulator) —
/// 4x the multiplies per instruction of the vpmulld kernel this replaces.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void qmicro_quad_vnni(
    const QTile& t) {
  const std::int8_t* pa = static_cast<const std::int8_t*>(t.pa);
  const std::uint8_t* pb = t.pb;
  __m512i acc[kMR];
  for (int m = 0; m < kMR; ++m) acc[m] = _mm512_setzero_si512();
  for (int p = 0; p < t.kg; ++p, pa += kMR * 4, pb += kNR * 4) {
    const __m512i b = _mm512_loadu_si512(pb);
    for (int m = 0; m < kMR; ++m) {
      std::int32_t aw;
      std::memcpy(&aw, pa + 4 * m, sizeof(aw));
      acc[m] = _mm512_dpbusd_epi32(acc[m], b, _mm512_set1_epi32(aw));
    }
  }
  alignas(64) std::int32_t row[kNR];
  for (int m = 0; m < t.mv; ++m) {
    _mm512_store_si512(row, acc[m]);
    qepilogue_row(row, m, t);
  }
}

#endif  // ADA_QGEMM_X86_DISPATCH

/// Packs the s8 weight matrix into ceil(M/kMR) panels of ceil(K/2) pair
/// steps x kMR s16 pairs — each (step, row) is one dword the kernels
/// broadcast whole.  An odd-K tail pads the second pair element with 0
/// (zero product no matter which B byte it meets), and rows past M pad
/// whole pairs with 0, exactly like the fp32 packer pads rows.
void pack_a_pairs(const std::int8_t* A, int M, int K, std::int16_t* pa) {
  const int kg = ceil_div(std::max(K, 1), 2);
  for (int i0 = 0; i0 < M; i0 += kMR) {
    const int mv = std::min(kMR, M - i0);
    for (int p = 0; p < kg; ++p, pa += kMR * 2) {
      const int k0 = 2 * p;
      const int k1 = k0 + 1;
      for (int m = 0; m < kMR; ++m) {
        if (m < mv) {
          const std::int8_t* row = A + static_cast<std::size_t>(i0 + m) * K;
          pa[2 * m] = row[k0];
          pa[2 * m + 1] = k1 < K ? row[k1] : std::int16_t{0};
        } else {
          pa[2 * m] = 0;
          pa[2 * m + 1] = 0;
        }
      }
    }
  }
}

/// VNNI layout: panels of ceil(K/4) quad steps x kMR s8 quads (again one
/// dword per step and row).  K-tail quad elements pad with 0.
void pack_a_quads(const std::int8_t* A, int M, int K, std::int8_t* pa) {
  const int kg = ceil_div(std::max(K, 1), 4);
  for (int i0 = 0; i0 < M; i0 += kMR) {
    const int mv = std::min(kMR, M - i0);
    for (int q = 0; q < kg; ++q, pa += kMR * 4) {
      for (int m = 0; m < kMR; ++m) {
        for (int u = 0; u < 4; ++u) {
          const int k = 4 * q + u;
          pa[4 * m + u] =
              (m < mv && k < K)
                  ? A[static_cast<std::size_t>(i0 + m) * K + k]
                  : std::int8_t{0};
        }
      }
    }
  }
}

/// Packs rows [0, K) x cols [j0, j0+nc) of the fp32 B view into
/// ceil(nc/kNR) panels of ceil(K/G) group steps x (kNR x G) u8, k-groups
/// innermost (column j's group bytes adjacent), quantizing each element
/// with `qp` on the way in — multiply by 1/scale, magic round, add zero
/// point, clamp: the exact quantize_u8 recipe, so fake-quantized fp32
/// references stay bit-level oracles.  Cols past nc and k positions past
/// K pad with the zero point; the k-tail pad meets a zero A pad (product
/// 0) and padded columns are never stored, so neither affects output.
template <int G>
inline __attribute__((always_inline)) void pack_b_quant_groups(
    const GemmMat& B, int K, int j0, int nc, const QuantParams& qp,
    std::uint8_t* pb) {
  static_assert(G == 2 || G == 4, "k-group size is pairs or quads");
  const int kg = ceil_div(std::max(K, 1), G);
  const float inv = 1.0f / qp.scale;
  const float fzp = static_cast<float>(qp.zero_point);
  const std::uint8_t zp8 = static_cast<std::uint8_t>(qp.zero_point);
  for (int jr = 0; jr < nc; jr += kNR) {
    const int nv = std::min(kNR, nc - jr);
#ifdef ADA_QGEMM_VECTOR_EXT
    if (B.cs == 1 && nv == kNR) {
      // Full unit-stride panel: quantize each k row of the group to 16 u8
      // lanes with the SIMD recipe, then byte-shuffle the group rows into
      // the interleaved layout (arithmetic is identical to the scalar
      // path; the shuffles only move bytes).
      const v16f vinv = v16f{} + inv;
      const v16f vzp = v16f{} + fzp;
      const v16f vzero = v16f{};
      const v16f vmax = v16f{} + 255.0f;
      const v16f vmagic = v16f{} + kRoundMagic;
      const v16u8 vpad = v16u8{} + zp8;
      for (int g = 0; g < kg; ++g, pb += kNR * G) {
        v16u8 rows[G];
        for (int u = 0; u < G; ++u) {
          const int k = g * G + u;
          if (k < K) {
            const float* src =
                B.p + static_cast<std::ptrdiff_t>(k) * B.rs + (j0 + jr);
            v16f q = *reinterpret_cast<const v16f_u*>(src) * vinv;
            q = (q + vmagic) - vmagic;  // round_ne, lane-wise
            q = q + vzp;
            q = q > vzero ? q : vzero;
            q = q < vmax ? q : vmax;
            rows[u] = __builtin_convertvector(
                __builtin_convertvector(q, v16s32), v16u8);
          } else {
            rows[u] = vpad;
          }
        }
        if constexpr (G == 2) {
          *reinterpret_cast<v16u8*>(pb) = __builtin_shufflevector(
              rows[0], rows[1], 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6,
              22, 7, 23);
          *reinterpret_cast<v16u8*>(pb + 16) = __builtin_shufflevector(
              rows[0], rows[1], 8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29,
              14, 30, 15, 31);
        } else {
          const v16u8 p01_lo = __builtin_shufflevector(
              rows[0], rows[1], 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6,
              22, 7, 23);
          const v16u8 p01_hi = __builtin_shufflevector(
              rows[0], rows[1], 8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29,
              14, 30, 15, 31);
          const v16u8 p23_lo = __builtin_shufflevector(
              rows[2], rows[3], 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6,
              22, 7, 23);
          const v16u8 p23_hi = __builtin_shufflevector(
              rows[2], rows[3], 8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29,
              14, 30, 15, 31);
          *reinterpret_cast<v16u8*>(pb) = __builtin_shufflevector(
              p01_lo, p23_lo, 0, 1, 16, 17, 2, 3, 18, 19, 4, 5, 20, 21, 6, 7,
              22, 23);
          *reinterpret_cast<v16u8*>(pb + 16) = __builtin_shufflevector(
              p01_lo, p23_lo, 8, 9, 24, 25, 10, 11, 26, 27, 12, 13, 28, 29,
              14, 15, 30, 31);
          *reinterpret_cast<v16u8*>(pb + 32) = __builtin_shufflevector(
              p01_hi, p23_hi, 0, 1, 16, 17, 2, 3, 18, 19, 4, 5, 20, 21, 6, 7,
              22, 23);
          *reinterpret_cast<v16u8*>(pb + 48) = __builtin_shufflevector(
              p01_hi, p23_hi, 8, 9, 24, 25, 10, 11, 26, 27, 12, 13, 28, 29,
              14, 15, 30, 31);
        }
      }
      continue;
    }
#endif
    // Edge / strided panels: scalar lanes, identical arithmetic.
    for (int g = 0; g < kg; ++g, pb += kNR * G) {
      for (int j = 0; j < kNR; ++j) {
        for (int u = 0; u < G; ++u) {
          const int k = g * G + u;
          std::uint8_t qv = zp8;
          if (j < nv && k < K) {
            const float x =
                B.p[static_cast<std::ptrdiff_t>(k) * B.rs +
                    static_cast<std::ptrdiff_t>(j0 + jr + j) * B.cs];
            const float q = round_ne(x * inv) + fzp;
            qv = static_cast<std::uint8_t>(
                std::min(255.0f, std::max(0.0f, q)));
          }
          pb[j * G + u] = qv;
        }
      }
    }
  }
}

// One column stripe end to end: quantize-and-pack its B panels, then run
// every micro-tile.  Each stripe body is compiled for one ISA level and
// dispatched once (native CPUID capped by ADASCALE_ISA — tensor/gemm.h),
// so BOTH the packing (rounding + u8 saturation) and the micro-kernel run
// at that level.  Integer math is exact and the fp32 lane arithmetic is
// contraction-free (-ffp-contract=off, CMakeLists.txt), so every ISA
// produces identical bytes.
struct QStripeArgs {
  const GemmMat* B;
  int M, K;
  int j0, nc;
  const void* pa;    ///< packed A panels (s16 pairs or s8 quads)
  std::uint8_t* pb;  ///< this stripe's panel buffer (thread-local)
  float* C;
  int ldc;
  const float* row_scale;
  const std::int32_t* row_sum;
  int azp;
  const float* row_bias;
  bool relu;
};

using QStripeFn = void (*)(const QStripeArgs&, const QuantParams&);
using QMicroFn = void (*)(const QTile&);

template <int G, QMicroFn Micro>
inline __attribute__((always_inline)) void qstripe_run(
    const QStripeArgs& a, const QuantParams& qp) {
  pack_b_quant_groups<G>(*a.B, a.K, a.j0, a.nc, qp, a.pb);
  const int kg = ceil_div(std::max(a.K, 1), G);
  // Both A layouts spend 4 bytes per (row, k-group): 2 s16 or 4 s8.
  const std::size_t a_panel = static_cast<std::size_t>(kMR) * 4 *
                              static_cast<std::size_t>(kg);
  const std::size_t b_panel = static_cast<std::size_t>(kNR) * G *
                              static_cast<std::size_t>(kg);
  for (int jr = 0; jr < a.nc; jr += kNR) {
    const std::uint8_t* panel_b =
        a.pb + static_cast<std::size_t>(jr / kNR) * b_panel;
    for (int i0 = 0; i0 < a.M; i0 += kMR) {
      QTile t;
      t.pa = static_cast<const std::uint8_t*>(a.pa) +
             static_cast<std::size_t>(i0 / kMR) * a_panel;
      t.pb = panel_b;
      t.c = a.C + static_cast<std::ptrdiff_t>(i0) * a.ldc + a.j0 + jr;
      t.ldc = a.ldc;
      t.kg = kg;
      t.mv = std::min(kMR, a.M - i0);
      t.nv = std::min(kNR, a.nc - jr);
      t.row_scale = a.row_scale + i0;
      t.row_sum = a.row_sum + i0;
      t.azp = a.azp;
      t.row_bias = a.row_bias != nullptr ? a.row_bias + i0 : nullptr;
      t.relu = a.relu;
      Micro(t);
    }
  }
}

void qstripe_generic(const QStripeArgs& a, const QuantParams& qp) {
  qstripe_run<2, qmicro_pair_generic>(a, qp);
}

#ifdef ADA_QGEMM_X86_DISPATCH
__attribute__((target("avx2"))) void qstripe_avx2(const QStripeArgs& a,
                                                  const QuantParams& qp) {
  qstripe_run<2, qmicro_pair_avx2>(a, qp);
}
__attribute__((target("avx512f,avx512bw"))) void qstripe_avx512(
    const QStripeArgs& a, const QuantParams& qp) {
  qstripe_run<2, qmicro_pair_avx512>(a, qp);
}
__attribute__((target("avx512f,avx512bw,avx512vnni"))) void qstripe_vnni(
    const QStripeArgs& a, const QuantParams& qp) {
  qstripe_run<4, qmicro_quad_vnni>(a, qp);
}
#endif

struct QDispatch {
  QStripeFn fn;
  KernelIsa isa;
  int group;  ///< reduction k-group size: 2 (pairs) or 4 (VNNI quads)
};

QDispatch dispatch_for(KernelIsa isa) {
#ifdef ADA_QGEMM_X86_DISPATCH
  switch (isa) {
    case KernelIsa::kVnni:
      return {qstripe_vnni, KernelIsa::kVnni, 4};
    case KernelIsa::kAvx512:
      return {qstripe_avx512, KernelIsa::kAvx512, 2};
    case KernelIsa::kAvx2:
      return {qstripe_avx2, KernelIsa::kAvx2, 2};
    default:
      break;
  }
#else
  (void)isa;
#endif
  return {qstripe_generic, KernelIsa::kGeneric, 2};
}

/// Test/bench override (set_qgemm_isa); -1 means "use the capped
/// dispatch".  Relaxed atomics: the seam is for single-threaded setup.
std::atomic<int> g_qisa_override{-1};

QDispatch qstripe_dispatch() {
  static const QDispatch d = dispatch_for(kernel_isa_cap());
  const int ov = g_qisa_override.load(std::memory_order_relaxed);
  if (ov >= 0) return dispatch_for(static_cast<KernelIsa>(ov));
  return d;
}

}  // namespace

const char* qgemm_kernel_isa() {
  return kernel_isa_name(qstripe_dispatch().isa);
}

void set_qgemm_isa(KernelIsa isa) {
  if (isa > kernel_isa_native()) {
    std::fprintf(stderr,
                 "set_qgemm_isa(%s) requested but this CPU caps at %s; "
                 "aborting\n",
                 kernel_isa_name(isa), kernel_isa_name(kernel_isa_native()));
    std::abort();
  }
  g_qisa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_qgemm_isa() {
  g_qisa_override.store(-1, std::memory_order_relaxed);
}

void qgemm(int M, int N, int K, const QuantizedWeights& W, const GemmMat& B,
           float* C, int ldc, const float* bias, bool relu) {
  if (M <= 0 || N <= 0) return;
  assert(M == W.rows && K == W.cols);
  // u8 x s8 products are ≤ 255 * 127; the full-K int32 chain is exact
  // below this bound (header comment).  Every shape in this codebase is
  // orders of magnitude smaller.
  assert(static_cast<long long>(K) * 255 * 127 < 2147483647LL);

  const QDispatch& qd = qstripe_dispatch();
  const int kg = ceil_div(std::max(K, 1), qd.group);

  // The epilogue scale folds the per-tensor activation scale into the
  // per-channel weight scale once, outside the tile loops.
  ScratchFrame frame(&scratch_arena());
  float* row_scale = frame.alloc(static_cast<std::size_t>(M));
  for (int m = 0; m < M; ++m)
    row_scale[m] = W.act.scale * W.scale[static_cast<std::size_t>(m)];

  // Pack A once up front (shared, read-only); stripes own disjoint C
  // columns and quantize-and-pack their own B panels thread-locally.
  // A panels spend one dword per (row, k-group) in both layouts.
  const std::size_t a_words = static_cast<std::size_t>(ceil_div(M, kMR)) *
                              kMR * static_cast<std::size_t>(kg);
  std::int32_t* pa = frame.alloc_as<std::int32_t>(a_words);
  if (qd.group == 4)
    pack_a_quads(W.q.data(), M, K, reinterpret_cast<std::int8_t*>(pa));
  else
    pack_a_pairs(W.q.data(), M, K, reinterpret_cast<std::int16_t*>(pa));

  const int stripes = ceil_div(N, kNC);
  parallel_for(stripes, 1, [&](std::int64_t sb, std::int64_t se) {
    for (std::int64_t s = sb; s < se; ++s) {
      const int j0 = static_cast<int>(s) * kNC;
      const int nc = std::min(kNC, N - j0);
      ScratchFrame f(&scratch_arena());
      QStripeArgs a;
      a.B = &B;
      a.M = M;
      a.K = K;
      a.j0 = j0;
      a.nc = nc;
      a.pa = pa;
      a.pb = f.alloc_as<std::uint8_t>(
          static_cast<std::size_t>(ceil_div(nc, kNR)) * kNR *
          static_cast<std::size_t>(qd.group) * static_cast<std::size_t>(kg));
      a.C = C;
      a.ldc = ldc;
      a.row_scale = row_scale;
      a.row_sum = W.row_sum.data();
      a.azp = W.act.zero_point;
      a.row_bias = bias;
      a.relu = relu;
      qd.fn(a, W.act);
    }
  });
}

std::size_t qgemm_workspace_floats(int M, int N, int K) {
  // Mirrors qgemm's ScratchFrame allocations: row_scale (M floats), the
  // k-grouped A panels (one dword per row and k-group), and one u8 B
  // stripe panel on the calling thread.  Byte requests ride the float
  // arena rounded up to cache lines.  The k-group size follows the
  // dispatched kernel (pairs, or quads under VNNI).
  const auto lines = [](std::size_t bytes) {
    constexpr std::size_t kLine = 64;
    return (std::max<std::size_t>(bytes, 1) + kLine - 1) / kLine * kLine /
           sizeof(float);
  };
  const QDispatch& qd = qstripe_dispatch();
  const int kg = ceil_div(std::max(K, 1), qd.group);
  const std::size_t a_bytes = static_cast<std::size_t>(ceil_div(M, kMR)) *
                              kMR * static_cast<std::size_t>(kg) *
                              sizeof(std::int32_t);
  const int nc = std::min(std::max(N, 1), kNC);
  const std::size_t b_bytes = static_cast<std::size_t>(ceil_div(nc, kNR)) *
                              kNR * static_cast<std::size_t>(qd.group) *
                              static_cast<std::size_t>(kg);
  return lines(static_cast<std::size_t>(M) * sizeof(float)) +
         lines(a_bytes) + lines(b_bytes);
}

}  // namespace ada
