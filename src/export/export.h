// Dataset / detection export for interop and inspection:
//   * COCO-style annotation JSON for a dataset split (images, annotations,
//     categories) at a chosen nominal scale — lets external tooling consume
//     SynthVID/SynthYTBB ground truth;
//   * COCO-style results JSON for detections;
//   * binary PPM image dump of rendered frames (no image library needed).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/map_evaluator.h"

namespace ada {

/// Serializes the split's ground truth as COCO-style JSON ("images",
/// "annotations" with [x, y, w, h] boxes, "categories").  `image_id`s are
/// snippet_index * 1000 + frame_index.  Scale is the nominal shortest side
/// (boxes are in that render's pixel coordinates).
std::string coco_annotations_json(const Dataset& dataset,
                                  const std::vector<Snippet>& split,
                                  int nominal_scale);

/// Serializes per-frame detections as a COCO results array
/// ([{image_id, category_id, bbox, score}, ...]); frame order and ids must
/// match coco_annotations_json for the same split.
std::string coco_results_json(
    const std::vector<std::vector<EvalDetection>>& frame_dets,
    const std::vector<int>& image_ids);

/// Writes an RGB tensor (1,3,H,W, values in [0,1]) as a binary PPM (P6).
/// Returns false on I/O failure.
bool write_ppm(const std::string& path, const Tensor& image);

/// Draws a 1px box outline into an RGB tensor in place (coordinates clamped
/// to the image).  Used by the qualitative dumps (paper Fig. 8).
void draw_box(Tensor* image, const Box& box, const Rgb& color);

}  // namespace ada
