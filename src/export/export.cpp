#include "export/export.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"

namespace ada {

std::string coco_annotations_json(const Dataset& dataset,
                                  const std::vector<Snippet>& split,
                                  int nominal_scale) {
  const ScalePolicy& policy = dataset.scale_policy();
  const int h = policy.render_h(nominal_scale);
  const int w = policy.render_w(nominal_scale);

  JsonWriter j;
  j.begin_object();

  j.key("images").begin_array();
  for (std::size_t s = 0; s < split.size(); ++s)
    for (std::size_t f = 0; f < split[s].frames.size(); ++f) {
      char name[64];
      std::snprintf(name, sizeof name, "snippet%03zu_frame%03zu.ppm", s, f);
      j.begin_object();
      j.key("id").value(static_cast<long long>(s * 1000 + f));
      j.key("file_name").value(name);
      j.key("width").value(w);
      j.key("height").value(h);
      j.end_object();
    }
  j.end_array();

  j.key("annotations").begin_array();
  long long ann_id = 0;
  for (std::size_t s = 0; s < split.size(); ++s)
    for (std::size_t f = 0; f < split[s].frames.size(); ++f) {
      const auto gts = scene_ground_truth(split[s].frames[f], h, w);
      for (const GtBox& g : gts) {
        j.begin_object();
        j.key("id").value(ann_id++);
        j.key("image_id").value(static_cast<long long>(s * 1000 + f));
        j.key("category_id").value(g.class_id);
        j.key("bbox").begin_array();
        j.value(static_cast<double>(g.x1));
        j.value(static_cast<double>(g.y1));
        j.value(static_cast<double>(g.width()));
        j.value(static_cast<double>(g.height()));
        j.end_array();
        j.key("area").value(static_cast<double>(g.area()));
        j.key("iscrowd").value(0);
        j.end_object();
      }
    }
  j.end_array();

  j.key("categories").begin_array();
  for (int c = 0; c < dataset.catalog().num_classes(); ++c) {
    j.begin_object();
    j.key("id").value(c);
    j.key("name").value(dataset.catalog().at(c).name);
    j.end_object();
  }
  j.end_array();

  j.end_object();
  return j.str();
}

std::string coco_results_json(
    const std::vector<std::vector<EvalDetection>>& frame_dets,
    const std::vector<int>& image_ids) {
  JsonWriter j;
  j.begin_array();
  const std::size_t n = std::min(frame_dets.size(), image_ids.size());
  for (std::size_t f = 0; f < n; ++f)
    for (const EvalDetection& d : frame_dets[f]) {
      j.begin_object();
      j.key("image_id").value(image_ids[f]);
      j.key("category_id").value(d.class_id);
      j.key("bbox").begin_array();
      j.value(static_cast<double>(d.box.x1));
      j.value(static_cast<double>(d.box.y1));
      j.value(static_cast<double>(d.box.width()));
      j.value(static_cast<double>(d.box.height()));
      j.end_array();
      j.key("score").value(static_cast<double>(d.score));
      j.end_object();
    }
  j.end_array();
  return j.str();
}

void draw_box(Tensor* image, const Box& box, const Rgb& color) {
  const int h = image->h(), w = image->w();
  const int x1 = std::clamp(static_cast<int>(box.x1), 0, w - 1);
  const int y1 = std::clamp(static_cast<int>(box.y1), 0, h - 1);
  const int x2 = std::clamp(static_cast<int>(box.x2), 0, w - 1);
  const int y2 = std::clamp(static_cast<int>(box.y2), 0, h - 1);
  auto put = [&](int i, int j) {
    image->at(0, 0, i, j) = color.r;
    image->at(0, 1, i, j) = color.g;
    image->at(0, 2, i, j) = color.b;
  };
  for (int j = x1; j <= x2; ++j) {
    put(y1, j);
    put(y2, j);
  }
  for (int i = y1; i <= y2; ++i) {
    put(i, x1);
    put(i, x2);
  }
}

bool write_ppm(const std::string& path, const Tensor& image) {
  if (image.n() != 1 || image.c() != 3) return false;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const int h = image.h(), w = image.w();
  std::fprintf(f, "P6\n%d %d\n255\n", w, h);
  std::vector<unsigned char> row(static_cast<std::size_t>(w) * 3);
  bool ok = true;
  for (int i = 0; i < h && ok; ++i) {
    for (int jx = 0; jx < w; ++jx)
      for (int c = 0; c < 3; ++c) {
        const float v = std::clamp(image.at(0, c, i, jx), 0.0f, 1.0f);
        row[static_cast<std::size_t>(jx) * 3 + static_cast<std::size_t>(c)] =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
      }
    ok = std::fwrite(row.data(), 1, row.size(), f) == row.size();
  }
  return std::fclose(f) == 0 && ok;
}

}  // namespace ada
