#include "eval/map_evaluator.h"

#include <algorithm>
#include <numeric>

namespace ada {

MapEvaluator::MapEvaluator(std::vector<std::string> class_names)
    : class_names_(std::move(class_names)) {}

void MapEvaluator::add_frame(const std::vector<GtBox>& gts,
                             const std::vector<EvalDetection>& detections) {
  frames_.push_back(Frame{gts, detections});
}

MapResult MapEvaluator::compute(float iou_threshold,
                                float tp_fp_threshold) const {
  const int num_classes = static_cast<int>(class_names_.size());
  MapResult result;
  result.per_class.resize(static_cast<std::size_t>(num_classes));

  for (int cls = 0; cls < num_classes; ++cls) {
    ClassEval& ce = result.per_class[static_cast<std::size_t>(cls)];
    ce.name = class_names_[static_cast<std::size_t>(cls)];

    // Flatten this class's detections with frame ids, sort by score desc.
    struct Flat {
      float score;
      int frame;
      Box box;
    };
    std::vector<Flat> flats;
    for (std::size_t f = 0; f < frames_.size(); ++f) {
      for (const EvalDetection& d : frames_[f].dets)
        if (d.class_id == cls)
          flats.push_back(Flat{d.score, static_cast<int>(f), d.box});
      for (const GtBox& g : frames_[f].gts)
        if (g.class_id == cls) ++ce.num_gt;
    }
    std::stable_sort(flats.begin(), flats.end(),
                     [](const Flat& a, const Flat& b) { return a.score > b.score; });

    // Greedy matching per VOC: each GT may be claimed once, in score order.
    std::vector<std::vector<char>> claimed(frames_.size());
    for (std::size_t f = 0; f < frames_.size(); ++f)
      claimed[f].assign(frames_[f].gts.size(), 0);

    std::vector<char> is_tp(flats.size(), 0);
    for (std::size_t k = 0; k < flats.size(); ++k) {
      const Flat& d = flats[k];
      const auto& gts = frames_[static_cast<std::size_t>(d.frame)].gts;
      int best_g = -1;
      float best_iou = iou_threshold;
      for (std::size_t g = 0; g < gts.size(); ++g) {
        if (gts[g].class_id != cls) continue;
        const float v = iou(d.box, Box::from_gt(gts[g]));
        if (v >= best_iou &&
            !claimed[static_cast<std::size_t>(d.frame)][g]) {
          best_iou = v;
          best_g = static_cast<int>(g);
        }
      }
      if (best_g >= 0) {
        is_tp[k] = 1;
        claimed[static_cast<std::size_t>(d.frame)][static_cast<std::size_t>(best_g)] = 1;
      }
    }

    // PR curve + AP (all-point interpolation = area under monotone envelope).
    int tp = 0, fp = 0;
    ce.pr.reserve(flats.size());
    for (std::size_t k = 0; k < flats.size(); ++k) {
      if (is_tp[k]) ++tp; else ++fp;
      PrPoint p;
      p.recall = ce.num_gt > 0 ? static_cast<float>(tp) / static_cast<float>(ce.num_gt) : 0.0f;
      p.precision = static_cast<float>(tp) / static_cast<float>(tp + fp);
      p.score = flats[k].score;
      ce.pr.push_back(p);
      if (flats[k].score >= tp_fp_threshold) {
        if (is_tp[k]) ++ce.tp_at_threshold; else ++ce.fp_at_threshold;
      }
    }

    if (ce.num_gt > 0 && !ce.pr.empty()) {
      // Monotone precision envelope, integrate over recall.
      std::vector<PrPoint> env = ce.pr;
      for (std::size_t k = env.size() - 1; k-- > 0;)
        env[k].precision = std::max(env[k].precision, env[k + 1].precision);
      float ap = 0.0f;
      float prev_recall = 0.0f;
      for (const PrPoint& p : env) {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
      }
      ce.ap = ap;
    }
  }

  // mAP over classes that actually appear in the ground truth.
  float sum = 0.0f;
  int counted = 0;
  for (const ClassEval& ce : result.per_class)
    if (ce.num_gt > 0) {
      sum += ce.ap;
      ++counted;
    }
  result.map = counted > 0 ? sum / static_cast<float>(counted) : 0.0f;
  return result;
}

}  // namespace ada
