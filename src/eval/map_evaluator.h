// Detection evaluation: VOC-protocol average precision, precision-recall
// curves (Fig. 5), and thresholded TP/FP counting (Fig. 6).
//
// Detections made at different image scales are rescaled by the caller into
// a single reference resolution before being added, so methods that process
// frames at different scales (AdaScale!) are compared in one coordinate
// frame — as the paper does by evaluating in original-image coordinates.
#pragma once

#include <string>
#include <vector>

#include "detection/box.h"

namespace ada {

/// One detection in reference coordinates.
struct EvalDetection {
  Box box;
  int class_id = 0;
  float score = 0.0f;
};

/// A point on the precision-recall curve.
struct PrPoint {
  float recall = 0.0f;
  float precision = 0.0f;
  float score = 0.0f;  ///< confidence threshold that produces this point
};

/// Per-class evaluation result.
struct ClassEval {
  std::string name;
  int num_gt = 0;
  float ap = 0.0f;             ///< VOC all-point-interpolated AP
  std::vector<PrPoint> pr;     ///< full precision-recall curve
  int tp_at_threshold = 0;     ///< TPs with score >= tp_fp_threshold
  int fp_at_threshold = 0;     ///< FPs with score >= tp_fp_threshold
};

/// Whole-dataset result.
struct MapResult {
  std::vector<ClassEval> per_class;
  float map = 0.0f;  ///< mean AP over classes with at least one GT
};

/// Accumulates frames then computes AP.
class MapEvaluator {
 public:
  /// `class_names` sets the class count and report labels.
  explicit MapEvaluator(std::vector<std::string> class_names);

  /// Adds one frame's ground truth and detections (reference coordinates).
  void add_frame(const std::vector<GtBox>& gts,
                 const std::vector<EvalDetection>& detections);

  /// Computes AP per class and mAP.  `iou_threshold` is the match criterion
  /// (0.5 throughout the paper); `tp_fp_threshold` is the confidence cutoff
  /// for the Fig. 6 TP/FP counts.
  MapResult compute(float iou_threshold = 0.5f,
                    float tp_fp_threshold = 0.5f) const;

  int num_frames() const { return static_cast<int>(frames_.size()); }

 private:
  struct Frame {
    std::vector<GtBox> gts;
    std::vector<EvalDetection> dets;
  };

  std::vector<std::string> class_names_;
  std::vector<Frame> frames_;
};

}  // namespace ada
