// Speed/accuracy Pareto-frontier assembly for the Fig. 7 comparison
// (mAP vs FPS of R-FCN, DFF, Seq-NMS and their AdaScale combinations).
#pragma once

#include <string>
#include <vector>

namespace ada {

/// One method's operating point.
struct ParetoPoint {
  std::string label;
  double fps = 0.0;
  double map = 0.0;  ///< in [0,1]
};

/// True when `p` is dominated by some other point in `points` (another point
/// is at least as fast AND at least as accurate, and strictly better in one).
bool is_dominated(const ParetoPoint& p, const std::vector<ParetoPoint>& points);

/// The subset of `points` on the Pareto frontier, sorted by ascending FPS.
/// Duplicate operating points (same fps and mAP) are all kept.
std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points);

/// Fraction of frontier points (by label) contributed by labels containing
/// `tag` — used to report how much of the frontier AdaScale variants own.
double frontier_share(const std::vector<ParetoPoint>& frontier,
                      const std::string& tag);

/// Renders points as a CSV table: label,fps,map (mAP in percent, 1 decimal).
std::string pareto_csv(const std::vector<ParetoPoint>& points);

/// Renders a text scatter of mAP (y) vs FPS (x) for terminal output; rows
/// are labeled with point indices, and a legend maps indices to labels.
std::string pareto_scatter(const std::vector<ParetoPoint>& points, int width,
                           int height);

}  // namespace ada
