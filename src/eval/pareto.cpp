#include "eval/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ada {

bool is_dominated(const ParetoPoint& p,
                  const std::vector<ParetoPoint>& points) {
  for (const ParetoPoint& q : points) {
    const bool at_least = q.fps >= p.fps && q.map >= p.map;
    const bool strictly = q.fps > p.fps || q.map > p.map;
    if (at_least && strictly) return true;
  }
  return false;
}

std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points) {
  std::vector<ParetoPoint> frontier;
  for (const ParetoPoint& p : points)
    if (!is_dominated(p, points)) frontier.push_back(p);
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const ParetoPoint& a, const ParetoPoint& b) {
                     return a.fps < b.fps;
                   });
  return frontier;
}

double frontier_share(const std::vector<ParetoPoint>& frontier,
                      const std::string& tag) {
  if (frontier.empty()) return 0.0;
  int hits = 0;
  for (const ParetoPoint& p : frontier)
    if (p.label.find(tag) != std::string::npos) ++hits;
  return static_cast<double>(hits) / static_cast<double>(frontier.size());
}

std::string pareto_csv(const std::vector<ParetoPoint>& points) {
  std::ostringstream os;
  os << "label,fps,map\n";
  char buf[64];
  for (const ParetoPoint& p : points) {
    std::snprintf(buf, sizeof buf, "%.2f,%.1f", p.fps, 100.0 * p.map);
    os << p.label << ',' << buf << '\n';
  }
  return os.str();
}

std::string pareto_scatter(const std::vector<ParetoPoint>& points, int width,
                           int height) {
  if (points.empty() || width < 8 || height < 4) return "";
  double fps_max = 0.0, map_max = 0.0;
  for (const ParetoPoint& p : points) {
    fps_max = std::max(fps_max, p.fps);
    map_max = std::max(map_max, p.map);
  }
  fps_max = std::max(fps_max, 1e-9);
  map_max = std::max(map_max, 1e-9);

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t k = 0; k < points.size(); ++k) {
    const ParetoPoint& p = points[k];
    const int x = std::min(width - 1,
                           static_cast<int>(p.fps / fps_max * (width - 1)));
    const int y = std::min(height - 1,
                           static_cast<int>(p.map / map_max * (height - 1)));
    const char mark = k < 10 ? static_cast<char>('0' + k)
                             : static_cast<char>('a' + (k - 10));
    grid[static_cast<std::size_t>(height - 1 - y)][static_cast<std::size_t>(x)] = mark;
  }

  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof buf, "mAP %.1f%%", 100.0 * map_max);
  os << buf << '\n';
  for (const std::string& row : grid) os << '|' << row << '\n';
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "> fps ";
  std::snprintf(buf, sizeof buf, "%.1f", fps_max);
  os << buf << '\n';
  for (std::size_t k = 0; k < points.size(); ++k) {
    const char mark = k < 10 ? static_cast<char>('0' + k)
                             : static_cast<char>('a' + (k - 10));
    std::snprintf(buf, sizeof buf, "  %c = %-22s fps %6.2f  mAP %5.1f\n", mark,
                  points[k].label.c_str(), points[k].fps,
                  100.0 * points[k].map);
    os << buf;
  }
  return os.str();
}

}  // namespace ada
