// Ahead-of-time inference plans.
//
// An ExecutionPlan captures, per (model, input shape, resolved backend),
// everything the eager forward path used to re-derive on every call: each
// layer's output geometry and im2col column shape, the kernel chosen for it
// (reference / packed / int8 — resolved once from the model's
// ExecutionPolicy and quantization state), its scratch-arena workspace
// demand, and its MAC count.  Models build plans lazily the first time a
// shape is served, cache them, and invalidate the cache whenever kernel
// choice could change (quantize(), training-mode re-entry, policy change) —
// so steady-state forwards do no kernel resolution and no quant-state
// branching, and the scratch arena can be pre-sized to the plan's exact
// peak instead of growing through warm-up.
//
// Plans are also the inspection/auto-tuning seam: tools/plan_dump prints
// them (per-layer kernel, workspace bytes, MACs), and the per-layer
// autotuner below writes the *measured* winner into each step — when a
// quantized layer plans at kInt8, plan construction races the int8 kernel
// against packed fp32 on that exact geometry and falls back per layer
// where int8 is slower (the tiny head GEMMs), so quantization is a speed
// lever only where it actually is one.
//
// Autotune determinism: measured choices are memoized in a PROCESS-GLOBAL
// cache keyed by layer geometry with the batch size excluded, probed once
// at n=1 (GEMM cost is shape-, not value-dependent).  Every plan in the
// process — batched or per-image, master model or weight-aliased clone or
// independent instance with the same architecture — therefore runs the
// same kernel for the same layer geometry, which keeps the
// batched-vs-serial and master-vs-clone bit-identity contracts intact.
// Within one process, outputs never depend on which plan got built first.
//
// Contract: every leaf layer contributes exactly ONE PlanStep, in forward
// execution order; containers contribute their children's steps.  A planned
// forward walks the same order with a PlanCursor, so step k always belongs
// to the k-th leaf layer executed.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace ada {

/// Which kernel a planned layer step runs.  kNone marks layers with no
/// kernel choice (pooling, activation, reshape).
enum class KernelKind { kNone, kGemmReference, kGemmPacked, kInt8 };

/// Human-readable kernel name: "-" | "reference" | "packed" | "int8".
const char* kernel_kind_name(KernelKind k);

/// A tensor shape flowing through plan construction (NCHW).
struct PlanShape {
  int n = 1, c = 0, h = 0, w = 0;
};

/// One leaf layer's precomputed step: what runs, on what geometry, with how
/// much scratch.
struct PlanStep {
  std::string layer;                     ///< Layer::name() of the owner
  KernelKind kernel = KernelKind::kNone; ///< resolved kernel choice
  PlanShape in;                          ///< input shape
  PlanShape out;                         ///< output shape
  std::size_t workspace_floats = 0;      ///< scratch-arena peak of this step
  long long macs = 0;                    ///< multiply-accumulates

  // Filled when `kernel` came out of the measured int8-vs-fp32 race (the
  // layer resolved to kInt8 and the autotuner picked the winner, possibly
  // falling this step back to kGemmPacked).  Timings are ns per forward of
  // the n=1 probe; plan_dump / bench_report / calibrate report them.
  bool autotuned = false;
  double tuned_int8_ns = 0.0;
  double tuned_fp32_ns = 0.0;
};

/// The full per-(model, shape, backend) plan; see file comment.
struct ExecutionPlan {
  PlanShape input;           ///< the planned model input shape
  std::string policy;        ///< resolved backend name at build time
  std::vector<PlanStep> steps;
  std::size_t arena_floats = 0;  ///< peak scratch demand across all steps

  /// Total multiply-accumulates of one planned forward.
  long long total_macs() const;

  /// Computes arena_floats from the steps (max — steps run sequentially,
  /// each releasing its scratch frame before the next).  Call once after
  /// the last step is appended.
  void finalize();

  /// Pretty-printed table (per-layer kernel, shapes, workspace bytes,
  /// MACs) — what tools/plan_dump shows.
  std::string to_string() const;
};

/// A model's lazily-built plan store, keyed by (n, h, w, resolved backend).
/// shared_ptr-owned by each model so weight-aliased clones
/// (clone_detector_shared / clone_regressor_shared) share ONE cache: a plan
/// built by any pooled serving context is reused by every other context of
/// the same policy, and different-policy sharers coexist because the
/// resolved backend is part of the key.  The mutex makes concurrent lookups
/// and first-use builds safe; returned ExecutionPlan references stay valid
/// outside the lock because std::map never relocates nodes on insert, and
/// clear() only happens at setup time (quantize / policy change / training
/// re-entry), never while serving.
struct PlanCache {
  mutable std::mutex mu;
  std::map<std::tuple<int, int, int, int>, ExecutionPlan> plans;

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu);
    return plans.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lk(mu);
    plans.clear();
  }
};

// ------------------------------------------------------------- autotuner

/// Outcome of one measured int8-vs-fp32 kernel race for a layer geometry.
struct AutotuneChoice {
  KernelKind kernel = KernelKind::kInt8;  ///< the faster candidate
  double int8_ns = 0.0;                   ///< measured int8 ns per forward
  double fp32_ns = 0.0;                   ///< measured packed fp32 ns
};

/// Bench seam: times one already-constructed candidate closure and
/// returns ns per run.  The default implementation runs a warmup call and
/// then repeats the closure inside a Timer window long enough to trust
/// millisecond-resolution wall time (util/timer.h — timing flows through
/// the clock seam).  Tests inject a deterministic fake so fallback
/// decisions are reproducible on any machine.
using AutotuneBenchFn = double (*)(const std::function<void()>& run);

/// Installs a bench override (nullptr restores the default).  Setup-time
/// only: concurrent plan builds read it racily but benignly.
void set_autotune_bench(AutotuneBenchFn fn);

/// The memoized measured winner for `key` (layer type + geometry, batch
/// size EXCLUDED — see file comment).  On a cache miss, times run_int8
/// then run_fp32 under the bench seam and records the faster kernel; on a
/// hit, the closures are not invoked.  Thread-safe; the returned reference
/// stays valid for the process lifetime (map nodes never relocate and
/// clear_autotune_cache is a test/setup-time operation).
const AutotuneChoice& autotune_choice(const std::string& key,
                                      const std::function<void()>& run_int8,
                                      const std::function<void()>& run_fp32);

/// Drops all memoized choices so the next plan build re-measures.  Tests
/// and benches only — serving processes keep the cache for life, which is
/// what makes every plan in the process agree on kernel choices.
void clear_autotune_cache();

/// Number of memoized (layer, geometry) choices.
std::size_t autotune_cache_size();

/// Walking cursor over a plan during a planned forward.  Each leaf layer
/// takes exactly one step; the order-by-construction contract makes this a
/// bare index.
class PlanCursor {
 public:
  explicit PlanCursor(const ExecutionPlan* plan) : plan_(plan) {}

  /// The next step, advancing the cursor.  Walking past the end means the
  /// plan was built for a different layer stack — a programming error.
  const PlanStep& take() {
    assert(next_ < plan_->steps.size() && "plan/stack mismatch");
    return plan_->steps[next_++];
  }

 private:
  const ExecutionPlan* plan_;
  std::size_t next_ = 0;
};

}  // namespace ada
