// Ahead-of-time inference plans.
//
// An ExecutionPlan captures, per (model, input shape, resolved backend),
// everything the eager forward path used to re-derive on every call: each
// layer's output geometry and im2col column shape, the kernel chosen for it
// (reference / packed / int8 — resolved once from the model's
// ExecutionPolicy and quantization state), its scratch-arena workspace
// demand, and its MAC count.  Models build plans lazily the first time a
// shape is served, cache them, and invalidate the cache whenever kernel
// choice could change (quantize(), training-mode re-entry, policy change) —
// so steady-state forwards do no kernel resolution and no quant-state
// branching, and the scratch arena can be pre-sized to the plan's exact
// peak instead of growing through warm-up.
//
// Plans are also the inspection/auto-tuning seam: tools/plan_dump prints
// them (per-layer kernel, workspace bytes, MACs), and a future per-layer
// tuner only has to write a different KernelKind into a step.
//
// Contract: every leaf layer contributes exactly ONE PlanStep, in forward
// execution order; containers contribute their children's steps.  A planned
// forward walks the same order with a PlanCursor, so step k always belongs
// to the k-th leaf layer executed.
#pragma once

#include <cassert>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace ada {

/// Which kernel a planned layer step runs.  kNone marks layers with no
/// kernel choice (pooling, activation, reshape).
enum class KernelKind { kNone, kGemmReference, kGemmPacked, kInt8 };

/// Human-readable kernel name: "-" | "reference" | "packed" | "int8".
const char* kernel_kind_name(KernelKind k);

/// A tensor shape flowing through plan construction (NCHW).
struct PlanShape {
  int n = 1, c = 0, h = 0, w = 0;
};

/// One leaf layer's precomputed step: what runs, on what geometry, with how
/// much scratch.
struct PlanStep {
  std::string layer;                     ///< Layer::name() of the owner
  KernelKind kernel = KernelKind::kNone; ///< resolved kernel choice
  PlanShape in;                          ///< input shape
  PlanShape out;                         ///< output shape
  std::size_t workspace_floats = 0;      ///< scratch-arena peak of this step
  long long macs = 0;                    ///< multiply-accumulates
};

/// The full per-(model, shape, backend) plan; see file comment.
struct ExecutionPlan {
  PlanShape input;           ///< the planned model input shape
  std::string policy;        ///< resolved backend name at build time
  std::vector<PlanStep> steps;
  std::size_t arena_floats = 0;  ///< peak scratch demand across all steps

  /// Total multiply-accumulates of one planned forward.
  long long total_macs() const;

  /// Computes arena_floats from the steps (max — steps run sequentially,
  /// each releasing its scratch frame before the next).  Call once after
  /// the last step is appended.
  void finalize();

  /// Pretty-printed table (per-layer kernel, shapes, workspace bytes,
  /// MACs) — what tools/plan_dump shows.
  std::string to_string() const;
};

/// A model's lazily-built plan store, keyed by (n, h, w, resolved backend).
/// shared_ptr-owned by each model so weight-aliased clones
/// (clone_detector_shared / clone_regressor_shared) share ONE cache: a plan
/// built by any pooled serving context is reused by every other context of
/// the same policy, and different-policy sharers coexist because the
/// resolved backend is part of the key.  The mutex makes concurrent lookups
/// and first-use builds safe; returned ExecutionPlan references stay valid
/// outside the lock because std::map never relocates nodes on insert, and
/// clear() only happens at setup time (quantize / policy change / training
/// re-entry), never while serving.
struct PlanCache {
  mutable std::mutex mu;
  std::map<std::tuple<int, int, int, int>, ExecutionPlan> plans;

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu);
    return plans.size();
  }
  void clear() {
    std::lock_guard<std::mutex> lk(mu);
    plans.clear();
  }
};

/// Walking cursor over a plan during a planned forward.  Each leaf layer
/// takes exactly one step; the order-by-construction contract makes this a
/// bare index.
class PlanCursor {
 public:
  explicit PlanCursor(const ExecutionPlan* plan) : plan_(plan) {}

  /// The next step, advancing the cursor.  Walking past the end means the
  /// plan was built for a different layer stack — a programming error.
  const PlanStep& take() {
    assert(next_ < plan_->steps.size() && "plan/stack mismatch");
    return plan_->steps[next_++];
  }

 private:
  const ExecutionPlan* plan_;
  std::size_t next_ = 0;
};

}  // namespace ada
