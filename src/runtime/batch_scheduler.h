// Cross-stream batch scheduler for backbone inference.
//
// AdaScale is sequential *within* a stream (frame t's features pick frame
// t+1's scale), so MultiStreamRunner scales across streams — but until this
// scheduler existed every stream paid a full single-image backbone forward
// even when many streams sat at the same target scale.  BatchScheduler
// coalesces concurrent per-frame requests whose pipelines currently target
// the same scale (bucketed by rendered image size) into ONE batched forward:
// a single sgemm per conv layer over the whole batch, which is exactly the
// larger M·N·K shape the packed GEMM backend (tensor/gemm.h) earns its
// arithmetic intensity from.
//
// Correctness contract: Detector::detect_batch and
// ScaleRegressor::predict_batch are bit-identical to their per-image
// counterparts, so results never depend on which frames happened to share a
// batch — batched serving output is memcmp-equal to per-stream serial
// execution regardless of arrival timing (tests/batch_scheduler_test.cpp).
//
// Execution model: no dedicated scheduler thread.  Submitting streams block
// in submit(); the stream whose request sits at the front of its bucket is
// that bucket's *leader* and closes the batch when it fills (max_batch),
// when every attached stream is blocked in submit() (no more arrivals can
// possibly join), or when max_wait_ms expires — then executes the batched
// forward itself on a context (detector+regressor clone) from a small pool,
// and publishes per-request results.  With one attached stream or
// max_batch <= 1 the scheduler degrades to an inline single-image call (no
// waiting, no batching overhead).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "adascale/scale_regressor.h"
#include "detection/detector.h"
#include "util/clock.h"

namespace ada {

/// Batch formation knobs.
struct BatchSchedulerConfig {
  int max_batch = 8;  ///< close a bucket at this many frames
  /// Straggler bound: flush an open bucket after this long even if neither
  /// trigger fired.  In steady-state saturation batches close via the
  /// all-streams-blocked trigger well before this; the default is sized at
  /// roughly one frame's processing time so peer streams mid-render can
  /// still make the batch.  Lower it for latency-sensitive serving (it
  /// bounds the queueing delay a lone frame can suffer when other streams
  /// sit idle at different scales).
  double max_wait_ms = 25.0;
  int contexts = 2;  ///< detector/regressor clone pairs; bounds how many
                     ///< scale buckets can execute concurrently
  /// DFF key-frame serving: run only the backbone (+ scale regressor) per
  /// batch and hand each stream its own image's deep features instead of
  /// decoded detections.  The submitting pipeline runs heads/decode/NMS
  /// itself on the cached copy — that keeps head execution on the stream's
  /// own models, which is what makes batched DFF bit-identical to serial
  /// (MultiStreamRunner::run_batched flips this on when DFF is enabled).
  bool features_only = false;
  /// Build the context pool with weight-ALIASED clones
  /// (clone_detector_shared) instead of deep copies: every context shares
  /// the prototypes' parameter storage and plan cache, so the scheduler
  /// adds zero resident weight bytes.  Bit-identical either way (contexts
  /// are interchangeable); default off to preserve the legacy deep-copy
  /// behavior for direct constructions.  The prototypes must then outlive
  /// the scheduler and must not train while it serves.
  bool share_context_weights = false;

  /// Aborts loudly on nonsensical values (non-positive max_batch or
  /// context pool, negative/non-finite max_wait_ms) instead of a silent
  /// assert that vanishes in Release builds.
  void validate() const;
};

/// What one stream gets back for one submitted frame.
struct BatchSubmitResult {
  DetectionOutput detections; ///< empty in features_only mode
  float regressed_t = 0.0f;  ///< scale regressor output on this frame
  double detect_ms = 0.0;    ///< batch detect wall-clock amortized per frame
  double regressor_ms = 0.0; ///< batch predict wall-clock amortized per frame
  int batch_size = 1;        ///< how many frames shared the forward
  Tensor features;           ///< this image's (1,C,fh,fw) backbone features
                             ///< (features_only mode; empty otherwise)
};

/// Aggregate counters (read after a run; also folded into bench output).
struct BatchSchedulerStats {
  long frames = 0;           ///< total frames served
  long batches = 0;          ///< batched forwards executed (incl. size-1)
  long single_fallbacks = 0; ///< frames served by the single-stream fast path
  std::vector<long> batch_size_hist;  ///< index b = batches of size b

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(frames - single_fallbacks) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

/// Coalesces same-scale frames from concurrent streams into batched
/// detector+regressor forwards.  Thread-safe; submit() blocks the calling
/// stream until its frame's results are ready.
class BatchScheduler {
 public:
  /// Clones `cfg.contexts` detector/regressor pairs from the prototypes
  /// (which are only read during construction).  `clock` injects the time
  /// source for the max_wait_ms flush deadline: null (the default) uses a
  /// wall clock and timed waits, exactly the legacy behavior; a ManualClock
  /// makes the timeout path deterministic and wall-clock-free — leaders
  /// then block indefinitely, and whoever advances the clock must call
  /// poke() so they re-check their deadlines (tests/batch_scheduler_test
  /// drives a lone-frame timeout flush this way).
  BatchScheduler(Detector* prototype_detector,
                 ScaleRegressor* prototype_regressor,
                 const BatchSchedulerConfig& cfg,
                 const Clock* clock = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// A producer stream announces itself.  The scheduler uses the attached
  /// count to flush batches early once every live stream is blocked in
  /// submit() — the steady-state trigger that keeps max_wait_ms a safety
  /// valve rather than a per-frame tax.
  void attach();
  /// The stream has no more frames; wakes leaders so they stop waiting for
  /// arrivals that can never come.
  void detach();

  /// Blocking: enqueues the rendered frame into its (h, w) bucket and
  /// returns when the batch containing it has executed.  `image` must stay
  /// alive for the duration of the call (it is read, never copied whole).
  BatchSubmitResult submit(const Tensor& image);

  /// Wakes every blocked leader/follower so deadlines are re-evaluated.
  /// Required after advancing an injected ManualClock; harmless otherwise.
  void poke();

  /// Earliest max_wait_ms flush deadline over all open (non-empty) buckets,
  /// or a negative value when nothing is pending.  This is the clock-driver
  /// seam for manual-clock serving: a leader whose peers are attached but
  /// idle (e.g. a stream between snippets, or freshly re-attached churn)
  /// blocks with no timed wait, so whoever owns the ManualClock must
  /// advance_to(next_flush_deadline_ms()) and poke() to guarantee progress
  /// instead of deadlocking on an arrival that never comes
  /// (tests/batch_scheduler_test.cpp exercises exactly that).
  double next_flush_deadline_ms() const;

  BatchSchedulerStats stats() const;

 private:
  struct Request;
  struct Bucket;
  struct Context;

  Context* acquire_context(std::unique_lock<std::mutex>* lk);
  void release_context(Context* ctx);
  /// Runs the batched forward for `batch` outside the lock and publishes
  /// each request's result.
  void execute(Context* ctx, const std::vector<Request*>& batch);

  BatchSchedulerConfig cfg_;
  const Clock* clock_;               ///< injected, or own_clock_ when null
  std::unique_ptr<WallClock> own_clock_;
  bool manual_clock_ = false;  ///< injected clock: block + poke, no timed wait
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, Bucket> buckets_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Context*> free_contexts_;
  int attached_ = 0;
  int waiting_ = 0;  ///< requests currently enqueued and not yet extracted
  BatchSchedulerStats stats_;
};

}  // namespace ada
