// Per-stream mutable serving state — the other half of the shared-weights /
// per-stream-context split.
//
// Serving at thousands-of-streams scale needs model state cut in two:
//
//   * shared, immutable after load: weights, quantization tables, execution
//     policies and cached ExecutionPlans.  One copy per policy, reused by
//     every stream (today via clone_detector/clone_regressor onto streams
//     and BatchScheduler contexts; the planned stream-state-table server
//     will share a single copy outright).
//
//   * per-stream, tiny, mutable: everything a stream's past frames imprint
//     on its future ones.  That is this struct — the Algorithm-1 target
//     scale, the DFF temporal-reuse cache (key-frame deep features + the
//     grayscale key at feature resolution), and the rolling detection
//     history reserved for online seq-NMS.
//
// AdaScalePipeline owns exactly one StreamContext; MultiStreamRunner holds
// one pipeline (hence one context) per stream; BatchScheduler contexts hold
// NO StreamContext — they are pure compute resources (model clones), which
// is what makes any batch composition bit-identical to serial execution.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "detection/detector.h"
#include "tensor/tensor.h"
#include "video/optical_flow.h"

namespace ada {

/// Keyframe/warp serving configuration (Deep Feature Flow on the serving
/// path).  Defaults give the paper's AdaScale+DFF combination: adaptive
/// keyframing from the flow residual, with AdaScale's own scale signal
/// doubling as a scene-change detector.
struct DffServingConfig {
  /// How key frames are chosen.
  enum class Keyframe {
    /// Every `key_interval`-th frame is a key (Zhu et al. CVPR'17 schedule;
    /// exactly DffPipeline's behavior — the serving/harness equivalence
    /// tests rely on this mode being bit-identical to Harness::run_dff).
    kFixedInterval,
    /// Refresh when flow propagation degrades (warp residual >
    /// `residual_threshold`), when the regressed scale jumps
    /// (`scale_jump_frac` — the AdaScale-as-scene-change-detector trigger),
    /// or unconditionally after `max_interval` warp frames.
    kAdaptive,
  };
  Keyframe policy = Keyframe::kAdaptive;

  /// kFixedInterval: the key period (clamped to >= 1).
  int key_interval = 10;

  /// kAdaptive: refresh when the mean |warped key gray - current gray|
  /// exceeds this ([0,1] grayscale units; lower = more keys).
  float residual_threshold = 0.04f;
  /// kAdaptive: hard cap on the propagation span — refresh after this many
  /// consecutive warp frames even if the residual stays quiet.  The default
  /// of 1 alternates key/warp frames: on the synthetic workload (objects
  /// rotate and zoom, which translation-only flow cannot model) one frame of
  /// feature staleness is nearly free while two or more cost several mAP,
  /// and alternating already halves the backbone load.  Raise it for
  /// quieter streams where the residual/scale-jump triggers suffice.
  int max_interval = 1;
  /// kAdaptive + adascale: on warp frames the (cheap) scale regressor runs
  /// on the warped features; if its decoded scale differs from the current
  /// one by more than this fraction, the scene has changed enough that the
  /// cached features are stale — force a key frame at the freshly regressed
  /// scale.  0 disables the trigger.  The default is deliberately loose:
  /// the regression is read off *warped* (approximate) features, so a tight
  /// threshold fires on warp noise and redirects the scale trajectory
  /// through unreliable decodes (measurably costs mAP); 0.5 only fires on
  /// genuine scene changes.
  float scale_jump_frac = 0.5f;

  /// With false, the scale stays fixed at the pipeline's init scale (plain
  /// DFF); the regressor never runs.  With true, the regressor runs on key
  /// frames and its decoded scale takes effect at the *next* key frame
  /// (the interval keeps one scale so warped features match the cached
  /// feature geometry), plus the scale_jump_frac trigger above.
  bool adascale = true;

  FlowConfig flow;

  /// Tiny dedicated render scale for the grayscale flow source; <= 0 uses
  /// the full working-scale render (see DffConfig::flow_render_scale —
  /// cheaper AND less aliased than downsampling a full-resolution render).
  int flow_render_scale = 96;

  /// Compose per-frame flow steps into the key->current field instead of
  /// matching key->current directly (see DffConfig::incremental_flow).
  bool incremental_flow = true;

  /// Frames of per-stream detection history retained in
  /// StreamContext::history (0 = keep none).  Reserved seam for online
  /// seq-NMS; nothing consumes the history yet.
  int seqnms_window = 0;

  /// Aborts loudly on nonsensical values instead of silently clamping or
  /// misbehaving (called by AdaScalePipeline::set_dff).
  void validate() const {
    auto fail = [](const char* what) {
      std::fprintf(stderr, "DffServingConfig: %s\n", what);
      std::abort();
    };
    if (key_interval < 1) fail("key_interval must be >= 1");
    if (max_interval < 1) fail("max_interval must be >= 1");
    if (!(residual_threshold >= 0.0f) || !std::isfinite(residual_threshold))
      fail("residual_threshold must be finite and >= 0");
    if (!(scale_jump_frac >= 0.0f) || !std::isfinite(scale_jump_frac))
      fail("scale_jump_frac must be finite and >= 0 (0 disables)");
    if (seqnms_window < 0) fail("seqnms_window must be >= 0");
    // flow_render_scale <= 0 is meaningful (legacy full-res flow source).
  }
};

/// DFF temporal-reuse state of one stream.
struct DffStreamState {
  bool has_key = false;    ///< a key frame has been cached since reset
  int frame_index = 0;     ///< frames processed since reset (fixed-mode phase)
  int since_key = 0;       ///< consecutive warp frames since the current key
  int current_scale = 0;   ///< scale of the cached key (and all its warps)
  int pending_scale = 0;   ///< regressed scale waiting for the next key
  long frames = 0;         ///< total frames since reset
  long keys = 0;           ///< key frames since reset
  Tensor key_features;     ///< cached deep features of the key frame
  Tensor key_gray;         ///< key frame grayscale at feature resolution
  Tensor prev_gray;        ///< previous frame grayscale at feature resolution
  Tensor acc_flow_y;       ///< composed key->previous flow (incremental mode)
  Tensor acc_flow_x;
};

/// Everything mutable one serving stream carries between frames.
struct StreamContext {
  int target_scale = 600;  ///< Algorithm-1 scale state (non-DFF mode)
  DffStreamState dff;
  /// Rolling window of recent frame detections (seq-NMS seam; bounded by
  /// DffServingConfig::seqnms_window).
  std::vector<DetectionOutput> history;

  /// Snippet-boundary reset: Algorithm 1 restarts at `init_scale`, the DFF
  /// cache drops (next frame is a key frame), history clears.
  void reset(int init_scale) {
    target_scale = init_scale;
    dff = DffStreamState{};
    dff.current_scale = init_scale;
    dff.pending_scale = init_scale;
    history.clear();
  }
};

}  // namespace ada
