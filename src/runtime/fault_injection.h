// Declarative fault injection for the overload-resilience tests.
//
// The overload controller's job is to degrade and recover instead of
// collapsing when the serving path misbehaves — which means tests need a
// way to make it misbehave on demand, deterministically.  A FaultInjection
// is a list of declarative rules evaluated per (stream, seq) against the
// virtual clock: per-stage latency spikes (a slow model, a cache miss
// storm), a stalled-stream straggler (one stream's frames take 100x as
// long, backlogging the shared worker), and arrival bursts are expressed by
// the load schedule itself (runtime/admission.h).  Rules add simulated
// service time, so injected faults are exactly reproducible — no sleeps,
// no real slowdowns (util/clock.h).
#pragma once

#include <vector>

namespace ada {

/// Adds `extra_ms` of simulated service time to frames [from_seq, to_seq]
/// of one stream (or every stream with stream == -1).
struct LatencySpike {
  int stream = -1;     ///< target stream id; -1 matches all streams
  long from_seq = 0;   ///< first affected per-stream frame index (inclusive)
  long to_seq = -1;    ///< last affected frame index; -1 = unbounded
  double extra_ms = 0.0;
};

/// A bundle of injected faults consulted by the virtual-time runner.
struct FaultInjection {
  std::vector<LatencySpike> spikes;

  /// Total injected extra service time for frame `seq` of `stream`.
  double extra_service_ms(int stream, long seq) const {
    double total = 0.0;
    for (const LatencySpike& s : spikes) {
      if (s.stream != -1 && s.stream != stream) continue;
      if (seq < s.from_seq) continue;
      if (s.to_seq >= 0 && seq > s.to_seq) continue;
      total += s.extra_ms;
    }
    return total;
  }

  /// A stalled-stream straggler: every frame of `stream` from `from_seq`
  /// on takes `stall_ms` longer — the shape of a wedged decoder or a dying
  /// disk behind one camera.
  static FaultInjection stalled_stream(int stream, long from_seq,
                                       double stall_ms) {
    FaultInjection f;
    f.spikes.push_back({stream, from_seq, -1, stall_ms});
    return f;
  }

  /// A transient latency spike across all streams (frames [from, to]).
  static FaultInjection global_spike(long from_seq, long to_seq,
                                     double extra_ms) {
    FaultInjection f;
    f.spikes.push_back({-1, from_seq, to_seq, extra_ms});
    return f;
  }
};

}  // namespace ada
