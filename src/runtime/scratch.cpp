#include "runtime/scratch.h"

#include <algorithm>
#include <new>

namespace ada {

namespace {
constexpr std::size_t kFloatsPerLine =
    ScratchArena::kAlignment / sizeof(float);

std::size_t round_up(std::size_t n) {
  return (n + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
}
}  // namespace

ScratchArena::Block ScratchArena::make_block(std::size_t floats) {
  return Block(static_cast<float*>(::operator new[](
      floats * sizeof(float), std::align_val_t(kAlignment))));
}

float* ScratchArena::alloc(std::size_t count) {
  const std::size_t need = round_up(std::max<std::size_t>(count, 1));
  if (top_ + need <= cap_) {
    float* p = buf_.get() + top_;
    top_ += need;
    high_water_ = std::max(high_water_, top_ + live_overflow_);
    return p;
  }
  // Warm-up path: serve from a dedicated overflow block so pointers handed
  // out earlier in this frame stay valid, and remember the total demand so
  // the main buffer can grow once it drains.
  overflow_.push_back(make_block(need));
  overflow_sizes_.push_back(need);
  live_overflow_ += need;
  ++heap_allocs_;
  high_water_ = std::max(high_water_, top_ + live_overflow_);
  return overflow_.back().get();
}

void* ScratchArena::alloc_bytes(std::size_t bytes) {
  // The float arena already rounds every request up to whole cache lines,
  // so a byte request just rides on it.
  return static_cast<void*>(alloc((bytes + sizeof(float) - 1) / sizeof(float)));
}

void ScratchArena::reserve(std::size_t floats) {
  const std::size_t need = round_up(floats);
  if (need <= cap_ || top_ != 0 || live_overflow_ != 0) return;
  buf_ = make_block(need);
  cap_ = need;
  high_water_ = std::max(high_water_, need);
  ++heap_allocs_;
}

void ScratchArena::release(std::size_t mark, std::size_t overflow_mark) {
  top_ = mark;
  while (overflow_.size() > overflow_mark) {
    live_overflow_ -= overflow_sizes_.back();
    overflow_.pop_back();
    overflow_sizes_.pop_back();
  }
  // Once the arena is completely empty, grow the main buffer to the largest
  // demand seen so the next frame stack runs allocation-free.
  if (top_ == 0 && live_overflow_ == 0 && high_water_ > cap_) {
    buf_ = make_block(high_water_);
    cap_ = high_water_;
    ++heap_allocs_;
  }
}

ScratchArena& scratch_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace ada
