// Per-model execution policy: which kernel family a model's layers run.
//
// Before this existed, backend/precision selection was a process-global
// (ADASCALE_GEMM via set_gemm_backend) consulted by every layer on every
// forward — shared mutable state under concurrent streams, and per-model
// precision (int8 backbone + fp32 regressor) was impossible.  An
// ExecutionPolicy is owned per model (Detector, ScaleRegressor), propagated
// to every layer it contains, and inherited by clones, so MultiStreamRunner
// streams and BatchScheduler contexts each resolve kernels from immutable
// per-model state instead of racing on a global.
//
// Resolution order: explicit (pinned) policy > env default.  A default-
// constructed policy is *unpinned* — it defers to the process-wide default
// (set once from ADASCALE_GEMM, overridable via set_gemm_backend for
// tests/benches) at resolution time, which preserves the legacy env-switch
// behavior for every model that never sets a policy.  A pinned policy
// ignores the global entirely; serving pins policies so concurrent streams
// share no mutable backend state.
#pragma once

#include "tensor/gemm.h"

namespace ada {

/// Per-model backend/precision selection (see file comment for the
/// resolution-order contract).  Cheap value type: models store it, layers
/// store a copy, clones inherit it.
struct ExecutionPolicy {
  /// Requested backend.  kDefault defers to the process-wide env default
  /// at resolution time; anything else is pinned.
  GemmBackend backend = GemmBackend::kDefault;

  /// Resolves to a concrete backend: the pinned value, or the env default
  /// when unpinned.  Never returns kDefault.
  GemmBackend resolve() const;

  /// True when this policy pins a concrete backend (ignores the env).
  bool pinned() const { return backend != GemmBackend::kDefault; }

  /// Name of the *resolved* backend: "packed" | "reference" | "int8".
  const char* name() const;

  /// Unpinned policy: follows the process-wide default (the constructor
  /// default; spelled out for readable call sites).
  static ExecutionPolicy env_default() { return {}; }
  /// Pinned fp32 packed-SIMD policy.
  static ExecutionPolicy fp32() { return {GemmBackend::kPacked}; }
  /// Pinned fp32 reference (scalar oracle) policy.
  static ExecutionPolicy reference() { return {GemmBackend::kReference}; }
  /// Pinned INT8 policy: quantized layers run the integer kernel,
  /// everything else falls back to packed fp32.
  static ExecutionPolicy int8() { return {GemmBackend::kInt8}; }
};

}  // namespace ada
