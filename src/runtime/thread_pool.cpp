#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace ada {

namespace {

// Set while a thread is executing a parallel_for chunk; nested parallel
// regions run inline to avoid self-deadlock and unbounded task recursion.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 0);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  if (n <= grain || workers_.empty() || t_in_parallel_region) {
    fn(0, n);
    return;
  }

  // Shared chunk cursor.  Chunk boundaries are fixed by (n, grain) alone, so
  // the work decomposition — and with disjoint writes, the result — is
  // independent of thread scheduling.
  struct State {
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::int64_t n = 0;
    std::int64_t grain = 0;
    std::int64_t num_chunks = 0;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = (n + grain - 1) / grain;
  state->fn = &fn;

  auto run_chunks = [](const std::shared_ptr<State>& s) {
    t_in_parallel_region = true;
    for (;;) {
      const std::int64_t chunk = s->next.fetch_add(1);
      if (chunk >= s->num_chunks) break;
      const std::int64_t begin = chunk * s->grain;
      const std::int64_t end = std::min(begin + s->grain, s->n);
      (*s->fn)(begin, end);
      if (s->done.fetch_add(1) + 1 == s->num_chunks) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
    t_in_parallel_region = false;
  };

  // One helper per worker is enough: each helper loops until the range is
  // drained.  Helpers hold a shared_ptr so a late-starting helper finding no
  // chunks left is still safe after the caller returns.
  const int helpers = static_cast<int>(
      std::min<std::int64_t>(num_threads(), state->num_chunks - 1));
  for (int i = 0; i < helpers; ++i)
    submit([state, run_chunks] { run_chunks(state); });

  run_chunks(state);

  // The caller ran out of chunks; wait for in-flight helper chunks.
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load() == state->num_chunks;
  });
}

ThreadPool* global_pool() {
  static ThreadPool* pool = [] {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("ADASCALE_THREADS"); env != nullptr) {
      const int v = std::atoi(env);
      if (v >= 1) n = v;
    }
    // n workers serve n-way parallel_for calls: the caller participates, so
    // n-1 helpers saturate n cores; more would only add contention.
    return new ThreadPool(std::max(n - 1, 0));
  }();
  return pool;
}

void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  global_pool()->parallel_for(n, grain, fn);
}

}  // namespace ada
