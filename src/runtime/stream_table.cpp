#include "runtime/stream_table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

namespace ada {

void StreamTableConfig::validate() const {
  if (workers < 0) {
    std::fprintf(stderr, "StreamTableConfig: workers must be >= 0 (got %d)\n",
                 workers);
    std::abort();
  }
}

ContextPool::ContextPool(Detector* master_detector,
                         ScaleRegressor* master_regressor,
                         const ExecutionPolicy& detector_policy,
                         const ExecutionPolicy& regressor_policy,
                         int contexts) {
  if (contexts < 1) {
    std::fprintf(stderr, "ContextPool: contexts must be >= 1 (got %d)\n",
                 contexts);
    std::abort();
  }
  slots_.reserve(static_cast<std::size_t>(contexts));
  free_.reserve(static_cast<std::size_t>(contexts));
  for (int i = 0; i < contexts; ++i) {
    Slot slot;
    slot.detector = clone_detector_shared(master_detector);
    slot.regressor = clone_regressor_shared(master_regressor);
    // Pinning a policy invalidates plans in the SHARED cache only when the
    // policy actually changes resolution — and the cache is keyed by
    // resolved backend anyway, so contexts of different pools coexist.
    slot.detector->set_execution_policy(detector_policy);
    slot.regressor->set_execution_policy(regressor_policy);
    slots_.push_back(std::move(slot));
    free_.push_back(i);
  }
}

ContextPool::~ContextPool() = default;

ModelPool::Lease ContextPool::acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  while (free_.empty()) cv_.wait(lk);
  const int slot = free_.back();
  free_.pop_back();
  Lease lease;
  lease.detector = slots_[static_cast<std::size_t>(slot)].detector.get();
  lease.regressor = slots_[static_cast<std::size_t>(slot)].regressor.get();
  lease.slot = slot;
  return lease;
}

void ContextPool::release(const Lease& lease) {
  std::lock_guard<std::mutex> lk(mu_);
  if (lease.slot < 0 || lease.slot >= static_cast<int>(slots_.size())) {
    std::fprintf(stderr, "ContextPool::release: bad slot %d\n", lease.slot);
    std::abort();
  }
  free_.push_back(lease.slot);
  cv_.notify_one();
}

ModelTable::ModelTable(Detector* prototype_detector,
                       ScaleRegressor* prototype_regressor,
                       int contexts_per_pool)
    : master_det_(clone_detector(prototype_detector)),
      master_reg_(clone_regressor(prototype_regressor)),
      contexts_per_pool_(contexts_per_pool) {
  if (contexts_per_pool_ <= 0) {
    contexts_per_pool_ =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
}

ModelTable::~ModelTable() = default;

ContextPool* ModelTable::pool_for(const ExecutionPolicy& detector_policy,
                                  const ExecutionPolicy& regressor_policy) {
  const std::pair<int, int> key{static_cast<int>(detector_policy.backend),
                                static_cast<int>(regressor_policy.backend)};
  auto it = pools_.find(key);
  if (it == pools_.end()) {
    it = pools_
             .emplace(key, std::make_unique<ContextPool>(
                               master_det_.get(), master_reg_.get(),
                               detector_policy, regressor_policy,
                               contexts_per_pool_))
             .first;
  }
  return it->second.get();
}

std::size_t ModelTable::resident_weight_bytes() const {
  // Count each distinct Param object once: the masters plus every pool
  // context contribute pointers, but aliased storage collapses in the set.
  std::set<const Param*> unique;
  auto add = [&unique](const std::vector<Param*>& params) {
    for (const Param* p : params) unique.insert(p);
  };
  add(master_det_->parameters());
  add(master_reg_->parameters());
  for (const auto& kv : pools_) {
    ContextPool* pool = kv.second.get();
    for (int i = 0; i < pool->size(); ++i) {
      add(pool->detector_at(i)->parameters());
      add(pool->regressor_at(i)->parameters());
    }
  }
  std::size_t floats = 0;
  for (const Param* p : unique) floats += p->value.size() + p->grad.size();
  return floats * sizeof(float);
}

std::size_t ModelTable::cloned_weight_bytes(int num_streams) const {
  std::size_t floats = 0;
  for (const Param* p : master_det_->parameters())
    floats += p->value.size() + p->grad.size();
  for (const Param* p : master_reg_->parameters())
    floats += p->value.size() + p->grad.size();
  return floats * sizeof(float) * static_cast<std::size_t>(num_streams);
}

}  // namespace ada
