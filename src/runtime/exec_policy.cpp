#include "runtime/exec_policy.h"

namespace ada {

// The one place (besides gemm.cpp itself) that reads the process-wide
// backend: unpinned policies resolve through here, which is what keeps the
// global a *default-policy initializer* rather than hot-path state.
GemmBackend ExecutionPolicy::resolve() const {
  return backend == GemmBackend::kDefault ? gemm_backend() : backend;
}

const char* ExecutionPolicy::name() const {
  switch (resolve()) {
    case GemmBackend::kReference: return "reference";
    case GemmBackend::kInt8: return "int8";
    default: return "packed";
  }
}

}  // namespace ada
