#include "runtime/multi_stream.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "util/timer.h"

namespace ada {

/// One stream-state-table entry: pure per-stream state.  The pipeline's
/// StreamContext carries all cross-frame mutable state; the policy pair
/// records which ModelTable pool this stream's frames lease compute from.
/// No models and no thread live here — that is the point.
struct MultiStreamRunner::Stream {
  std::unique_ptr<AdaScalePipeline> pipeline;
  ExecutionPolicy det_policy;
  ExecutionPolicy reg_policy;
};

MultiStreamRunner::MultiStreamRunner(Detector* prototype_detector,
                                     ScaleRegressor* prototype_regressor,
                                     const Renderer* renderer,
                                     const ScalePolicy& policy,
                                     const ScaleSet& sreg, int num_streams,
                                     int init_scale, bool snap_scales,
                                     int contexts_per_policy) {
  if (num_streams <= 0) {
    std::fprintf(stderr,
                 "MultiStreamRunner: num_streams must be >= 1 (got %d)\n",
                 num_streams);
    std::abort();
  }
  if (prototype_detector == nullptr || prototype_regressor == nullptr) {
    std::fprintf(stderr, "MultiStreamRunner: null prototype models\n");
    std::abort();
  }
  table_ = std::make_unique<ModelTable>(prototype_detector,
                                        prototype_regressor,
                                        contexts_per_policy);
  const ExecutionPolicy det_policy = prototype_detector->execution_policy();
  const ExecutionPolicy reg_policy = prototype_regressor->execution_policy();
  // Null renderer, non-positive init_scale and an empty scale set abort
  // loudly inside the AdaScalePipeline constructor below.
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    auto stream = std::make_unique<Stream>();
    stream->det_policy = det_policy;
    stream->reg_policy = reg_policy;
    // The masters satisfy the pipeline's non-null model contract but are
    // never touched while a pool is bound — all frames lease contexts.
    stream->pipeline = std::make_unique<AdaScalePipeline>(
        table_->master_detector(), table_->master_regressor(), renderer,
        policy, sreg, init_scale, snap_scales);
    stream->pipeline->bind_pool(table_->pool_for(det_policy, reg_policy));
    streams_.push_back(std::move(stream));
  }
}

MultiStreamRunner::~MultiStreamRunner() = default;

int MultiStreamRunner::num_streams() const {
  return static_cast<int>(streams_.size());
}

void MultiStreamRunner::set_stream_policy(
    int stream, const ExecutionPolicy& detector_policy,
    const ExecutionPolicy& regressor_policy) {
  Stream& s = *streams_.at(static_cast<std::size_t>(stream));
  s.det_policy = detector_policy;
  s.reg_policy = regressor_policy;
  s.pipeline->bind_pool(table_->pool_for(detector_policy, regressor_policy));
}

void MultiStreamRunner::set_dff(const DffServingConfig& cfg) {
  for (const auto& s : streams_) s->pipeline->set_dff(cfg);
  dff_enabled_ = true;
}

void MultiStreamRunner::set_scale_cap(int cap) {
  for (const auto& s : streams_) s->pipeline->set_scale_cap(cap);
}

MultiStreamResult MultiStreamRunner::run_impl(
    const std::vector<const Snippet*>& jobs, BatchScheduler* scheduler) {
  MultiStreamResult result;
  result.streams.resize(streams_.size());
  result.batched = true;

  auto stream_main = [&](int sid) {
    Stream& stream = *streams_[static_cast<std::size_t>(sid)];
    StreamOutput& out = result.streams[static_cast<std::size_t>(sid)];
    out.stream_id = sid;
    AdaScalePipeline::DetectBackend backend = [scheduler](Tensor image) {
      BatchSubmitResult r = scheduler->submit(image);
      AdaScalePipeline::DetectResult d;
      d.detections = std::move(r.detections);
      d.regressed_t = r.regressed_t;
      d.detect_ms = r.detect_ms;
      d.regressor_ms = r.regressor_ms;
      d.features = std::move(r.features);
      return d;
    };
    scheduler->attach();
    Timer busy;
    for (std::size_t j = static_cast<std::size_t>(sid); j < jobs.size();
         j += streams_.size()) {
      stream.pipeline->reset();
      for (const Scene& frame : jobs[j]->frames)
        out.frames.push_back(stream.pipeline->process_via(frame, backend));
    }
    out.busy_ms = busy.elapsed_ms();
    scheduler->detach();
  };

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(streams_.size());
  for (int s = 0; s < num_streams(); ++s) threads.emplace_back(stream_main, s);
  for (std::thread& t : threads) t.join();
  result.wall_ms = wall.elapsed_ms();

  for (const StreamOutput& s : result.streams)
    result.total_frames += static_cast<long>(s.frames.size());
  result.aggregate_fps = result.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.total_frames)
                                   / result.wall_ms
                             : 0.0;
  result.batch_stats = scheduler->stats();
  return result;
}

MultiStreamResult MultiStreamRunner::run_table(
    const std::vector<const Snippet*>& jobs, const StreamTableConfig& cfg) {
  cfg.validate();
  const std::size_t n = streams_.size();
  MultiStreamResult result;
  result.streams.resize(n);
  for (std::size_t s = 0; s < n; ++s)
    result.streams[s].stream_id = static_cast<int>(s);

  // Stream-state-table entries: every frame of every job lands in its
  // stream's ArrivalQueue up front (a backlog-drain schedule — all due at
  // time zero against a clock that never advances), so "has queued frames"
  // is the only readiness condition the dispatch loop needs.
  const std::vector<StreamSchedule> schedules =
      schedules_from_jobs(jobs, static_cast<int>(n));
  ManualClock clock(0.0);
  AdmissionConfig acfg;
  std::size_t max_frames = 1;
  for (const StreamSchedule& sch : schedules)
    max_frames = std::max(max_frames, sch.size());
  acfg.capacity = static_cast<int>(max_frames);
  acfg.deadline_ms = 1e15;  // throughput mode: nothing can expire
  std::vector<ArrivalQueue> queues;
  queues.reserve(n);
  long remaining = 0;
  for (std::size_t s = 0; s < n; ++s) {
    queues.emplace_back(acfg, &clock);
    for (const FrameArrival& a : schedules[s])
      queues[s].offer(a.scene, a.snippet_start, a.ms);
    remaining += static_cast<long>(schedules[s].size());
  }

  int workers = cfg.workers;
  if (workers == 0)
    workers = std::max(
        1, std::min(static_cast<int>(n),
                    static_cast<int>(std::thread::hardware_concurrency())));

  // Dispatch: a ready deque of stream ids.  A stream id is either in the
  // deque or owned by exactly one worker, never both — within-stream frame
  // order (and thus bit-identical output) holds for any worker count.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  for (std::size_t s = 0; s < n; ++s)
    if (!queues[s].empty()) ready.push_back(static_cast<int>(s));

  auto worker_main = [&]() {
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      while (ready.empty() && remaining > 0) cv.wait(lk);
      if (remaining <= 0) {
        cv.notify_all();
        return;
      }
      const int sid = ready.front();
      ready.pop_front();
      // This worker now exclusively owns stream `sid`: its queue, pipeline
      // and output slot are untouched by anyone else until it is returned
      // to the deque (the mutex hand-off orders the memory).
      ArrivalQueue& q = queues[static_cast<std::size_t>(sid)];
      Stream& stream = *streams_[static_cast<std::size_t>(sid)];
      StreamOutput& out = result.streams[static_cast<std::size_t>(sid)];
      lk.unlock();
      const AdmittedFrame f = q.pop();
      if (f.snippet_start) stream.pipeline->reset();
      Timer frame_timer;
      AdaFrameOutput frame_out = stream.pipeline->process(*f.scene);
      out.busy_ms += frame_timer.elapsed_ms();
      out.frames.push_back(std::move(frame_out));
      lk.lock();
      --remaining;
      if (!q.empty()) ready.push_back(sid);
      // Wake peers: a stream became ready again, or the run just drained.
      cv.notify_all();
    }
  };

  Timer wall;
  if (workers <= 1) {
    worker_main();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main);
    for (std::thread& t : threads) t.join();
  }
  result.wall_ms = wall.elapsed_ms();

  for (const StreamOutput& s : result.streams)
    result.total_frames += static_cast<long>(s.frames.size());
  result.aggregate_fps = result.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.total_frames)
                                   / result.wall_ms
                             : 0.0;
  return result;
}

MultiStreamResult MultiStreamRunner::run(
    const std::vector<const Snippet*>& jobs) {
  return run_table(jobs, StreamTableConfig{});
}

MultiStreamResult MultiStreamRunner::run_serial(
    const std::vector<const Snippet*>& jobs) {
  StreamTableConfig cfg;
  cfg.workers = 1;
  return run_table(jobs, cfg);
}

MultiStreamResult MultiStreamRunner::run_batched(
    const std::vector<const Snippet*>& jobs, const BatchSchedulerConfig& cfg) {
  // The scheduler's contexts are built from stream 0's policy pool, whose
  // contexts alias the same master weights as every other pool — any batch
  // composition therefore produces the same bits as per-stream execution.
  // That only holds when every stream resolves the same policies as stream
  // 0; heterogeneous per-stream policies (set_stream_policy) would be
  // served silently at stream 0's precision, so fail loudly instead.
  for (const auto& s : streams_) {
    if (s->det_policy.resolve() != streams_[0]->det_policy.resolve() ||
        s->reg_policy.resolve() != streams_[0]->reg_policy.resolve()) {
      std::fprintf(stderr,
                   "MultiStreamRunner::run_batched: streams have "
                   "heterogeneous execution policies — batching shares "
                   "contexts cloned from stream 0's pool and cannot honor "
                   "them; use run()/run_table() for mixed-policy streams\n");
      std::abort();
    }
  }
  // DFF key frames want features back (heads run in-stream on the cached
  // copy); warp frames never reach the scheduler at all.
  BatchSchedulerConfig scfg = cfg;
  if (dff_enabled_) scfg.features_only = true;
  // Scheduler contexts join the shared-weights regime: cloned (weight-
  // aliased) from a stream-0-policy pool context, so batching adds scratch
  // state but no resident weight bytes.
  scfg.share_context_weights = true;
  ContextPool* pool =
      table_->pool_for(streams_[0]->det_policy, streams_[0]->reg_policy);
  BatchScheduler scheduler(pool->detector_at(0), pool->regressor_at(0), scfg);
  return run_impl(jobs, &scheduler);
}

void TimedRunConfig::validate() const {
  admission.validate();
  if (!run_inference && !service_model) {
    std::fprintf(stderr,
                 "TimedRunConfig: run_inference=false needs a service_model "
                 "— with both off there is no service time\n");
    std::abort();
  }
}

TimedRunResult MultiStreamRunner::run_timed(
    const std::vector<StreamSchedule>& schedules, const TimedRunConfig& cfg,
    ManualClock* clock, OverloadController* controller) {
  if (static_cast<int>(schedules.size()) != num_streams()) {
    std::fprintf(stderr,
                 "MultiStreamRunner::run_timed: %zu schedules for %d streams "
                 "— need exactly one per stream\n",
                 schedules.size(), num_streams());
    std::abort();
  }
  if (clock == nullptr) {
    std::fprintf(stderr, "MultiStreamRunner::run_timed: clock is required\n");
    std::abort();
  }
  cfg.validate();
  const std::size_t n = streams_.size();

  TimedRunResult result;
  result.stream_stats.resize(n);
  const double t_begin = clock->now_ms();

  std::vector<ArrivalQueue> queues;
  queues.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    queues.emplace_back(cfg.admission, clock);

  std::vector<std::size_t> next(n, 0);   // next undelivered schedule index
  std::vector<long> offered_seq(n, 0);   // mirrors the queue's seq numbering
  // Policy-switch bookkeeping: the pre-degradation policies to restore.
  std::vector<ExecutionPolicy> saved_det(n), saved_reg(n);
  bool policies_switched = false;

  auto record_drop = [&](int stream, long seq, double arrival_ms,
                         DropReason reason, DegradeLevel level) {
    TimedFrameRecord r;
    r.stream = stream;
    r.seq = seq;
    r.arrival_ms = arrival_ms;
    r.start_ms = clock->now_ms();
    r.finish_ms = r.start_ms;
    r.dropped = true;
    r.drop_reason = reason;
    r.level = level;
    result.frames.push_back(std::move(r));
  };

  std::size_t rr = 0;  // round-robin service pointer
  for (;;) {
    const double now = clock->now_ms();
    const DegradeLevel level =
        controller != nullptr ? controller->level() : DegradeLevel::kNormal;

    // 1. Deliver every arrival due by now.  Arrivals that landed during the
    // previous service window are delivered here with their scheduled
    // arrival_ms (not the current clock), so their queueing delay is real.
    for (std::size_t s = 0; s < n; ++s) {
      while (next[s] < schedules[s].size() &&
             schedules[s][next[s]].ms <= now) {
        const FrameArrival& a = schedules[s][next[s]];
        const long seq = offered_seq[s]++;
        if (!queues[s].offer(a.scene, a.snippet_start, a.ms))
          record_drop(static_cast<int>(s), seq, a.ms, DropReason::kQueueFull,
                      level);
        ++next[s];
      }
    }

    // 2. Termination / idle handling.
    bool any_queued = false, any_pending = false;
    double next_arrival = 0.0;
    bool have_next = false;
    for (std::size_t s = 0; s < n; ++s) {
      if (!queues[s].empty()) any_queued = true;
      if (next[s] < schedules[s].size()) {
        any_pending = true;
        const double t = schedules[s][next[s]].ms;
        if (!have_next || t < next_arrival) next_arrival = t;
        have_next = true;
      }
    }
    if (!any_queued) {
      if (!any_pending) break;        // drained and exhausted: done
      clock->advance_to(next_arrival);  // idle: jump to the next arrival
      continue;
    }

    // 3. One controller tick per service slot: worst depth, worst slack.
    int max_depth = 0;
    double min_slack = cfg.admission.deadline_ms;
    for (std::size_t s = 0; s < n; ++s) {
      max_depth = std::max(max_depth, queues[s].depth());
      min_slack = std::min(min_slack, queues[s].oldest_slack_ms());
    }
    DegradeLevel now_level = DegradeLevel::kNormal;
    if (controller != nullptr) {
      now_level = controller->observe(max_depth, min_slack);

      // Enforce the rung: scale cap on every pipeline (0 lifts it)...
      set_scale_cap(now_level >= DegradeLevel::kScaleCap &&
                            controller->config().enable_scale_cap
                        ? controller->config().scale_cap
                        : 0);
      // ...degraded execution policies (saved once, restored on recovery)...
      if (controller->policy_switch_active() && !policies_switched) {
        for (std::size_t s = 0; s < n; ++s) {
          saved_det[s] = streams_[s]->det_policy;
          saved_reg[s] = streams_[s]->reg_policy;
          // Re-pools the stream onto the degraded-policy contexts (built on
          // first switch); safe mid-run because this event loop is the only
          // thread touching the table.
          set_stream_policy(static_cast<int>(s), cfg.degraded_detector_policy,
                            cfg.degraded_regressor_policy);
        }
        policies_switched = true;
      } else if (!controller->policy_switch_active() && policies_switched) {
        for (std::size_t s = 0; s < n; ++s)
          set_stream_policy(static_cast<int>(s), saved_det[s], saved_reg[s]);
        policies_switched = false;
      }
      // ...and deadline-aware shedding of already-expired queued frames.
      if (controller->shedding_active()) {
        for (std::size_t s = 0; s < n; ++s) {
          for (const AdmittedFrame& f : queues[s].shed_expired())
            record_drop(static_cast<int>(s), f.seq, f.arrival_ms,
                        DropReason::kDeadline, now_level);
        }
      }
    }

    // 4. Serve one frame round-robin across non-empty queues.  Shedding may
    // just have emptied everything; the loop head re-evaluates then.
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t s = (rr + i) % n;
      if (!queues[s].empty()) {
        pick = s;
        break;
      }
    }
    if (pick == n) continue;
    rr = pick + 1;

    Stream& stream = *streams_[pick];
    const AdmittedFrame f = queues[pick].pop();
    if (f.snippet_start) stream.pipeline->reset();

    TimedFrameRecord r;
    r.stream = static_cast<int>(pick);
    r.seq = f.seq;
    r.arrival_ms = f.arrival_ms;
    r.start_ms = clock->now_ms();
    r.level = now_level;
    if (cfg.run_inference) {
      r.output = stream.pipeline->process(*f.scene);
      r.scale_used = r.output.scale_used;
    } else {
      r.scale_used = stream.pipeline->current_scale();
      if (controller != nullptr)
        r.scale_used = controller->apply_scale(r.scale_used);
    }
    double svc = cfg.service_model
                     ? cfg.service_model(r.stream, r.seq, r.scale_used,
                                         now_level)
                     : r.output.total_ms();
    svc += cfg.faults.extra_service_ms(r.stream, r.seq);
    clock->advance(svc);
    r.finish_ms = clock->now_ms();
    r.deadline_met = r.finish_ms <= f.deadline_ms;
    result.latency.record(r.finish_ms - r.arrival_ms);
    if (!r.deadline_met) ++result.deadline_violations;
    result.frames.push_back(std::move(r));
  }

  result.makespan_ms = clock->now_ms() - t_begin;
  for (std::size_t s = 0; s < n; ++s) {
    const AdmissionStats& st = queues[s].stats();
    result.stream_stats[static_cast<std::size_t>(s)] = st;
    result.offered += st.offered;
    result.served += st.served;
    result.dropped_queue_full += st.dropped_queue_full;
    result.dropped_deadline += st.dropped_deadline;
  }
  if (controller != nullptr) {
    result.timeline = controller->timeline();
    result.final_level = controller->level();
    // A timed run must not leak degraded state into later runs.
    if (policies_switched)
      for (std::size_t s = 0; s < n; ++s)
        set_stream_policy(static_cast<int>(s), saved_det[s], saved_reg[s]);
    set_scale_cap(0);
  }
  return result;
}

}  // namespace ada
