#include "runtime/multi_stream.h"

#include <cassert>
#include <thread>

#include "util/timer.h"

namespace ada {

namespace {

/// Copies parameter values (not gradients) between two models whose
/// parameter lists line up structurally.
void copy_params(std::vector<Param*> src, std::vector<Param*> dst) {
  assert(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    assert(src[i]->value.size() == dst[i]->value.size());
    for (std::size_t k = 0; k < src[i]->value.size(); ++k)
      dst[i]->value[k] = src[i]->value[k];
  }
}

}  // namespace

std::unique_ptr<Detector> clone_detector(Detector* src) {
  Rng rng(0);  // initialization is immediately overwritten
  auto dst = std::make_unique<Detector>(src->config(), &rng);
  copy_params(src->parameters(), dst->parameters());
  return dst;
}

std::unique_ptr<ScaleRegressor> clone_regressor(ScaleRegressor* src) {
  Rng rng(0);
  auto dst = std::make_unique<ScaleRegressor>(src->config(), &rng);
  copy_params(src->parameters(), dst->parameters());
  return dst;
}

struct MultiStreamRunner::Stream {
  std::unique_ptr<Detector> detector;
  std::unique_ptr<ScaleRegressor> regressor;
  std::unique_ptr<AdaScalePipeline> pipeline;
};

MultiStreamRunner::MultiStreamRunner(Detector* prototype_detector,
                                     ScaleRegressor* prototype_regressor,
                                     const Renderer* renderer,
                                     const ScalePolicy& policy,
                                     const ScaleSet& sreg, int num_streams,
                                     int init_scale) {
  assert(num_streams > 0);
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    auto stream = std::make_unique<Stream>();
    stream->detector = clone_detector(prototype_detector);
    stream->regressor = clone_regressor(prototype_regressor);
    stream->pipeline = std::make_unique<AdaScalePipeline>(
        stream->detector.get(), stream->regressor.get(), renderer, policy,
        sreg, init_scale);
    streams_.push_back(std::move(stream));
  }
}

MultiStreamRunner::~MultiStreamRunner() = default;

int MultiStreamRunner::num_streams() const {
  return static_cast<int>(streams_.size());
}

MultiStreamResult MultiStreamRunner::run_impl(
    const std::vector<const Snippet*>& jobs, bool concurrent) {
  MultiStreamResult result;
  result.streams.resize(streams_.size());

  auto stream_main = [&](int sid) {
    Stream& stream = *streams_[static_cast<std::size_t>(sid)];
    StreamOutput& out = result.streams[static_cast<std::size_t>(sid)];
    out.stream_id = sid;
    Timer busy;
    for (std::size_t j = static_cast<std::size_t>(sid); j < jobs.size();
         j += streams_.size()) {
      stream.pipeline->reset();
      for (const Scene& frame : jobs[j]->frames)
        out.frames.push_back(stream.pipeline->process(frame));
    }
    out.busy_ms = busy.elapsed_ms();
  };

  Timer wall;
  if (concurrent) {
    std::vector<std::thread> threads;
    threads.reserve(streams_.size());
    for (int s = 0; s < num_streams(); ++s)
      threads.emplace_back(stream_main, s);
    for (std::thread& t : threads) t.join();
  } else {
    for (int s = 0; s < num_streams(); ++s) stream_main(s);
  }
  result.wall_ms = wall.elapsed_ms();

  for (const StreamOutput& s : result.streams)
    result.total_frames += static_cast<long>(s.frames.size());
  result.aggregate_fps = result.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.total_frames)
                                   / result.wall_ms
                             : 0.0;
  return result;
}

MultiStreamResult MultiStreamRunner::run(
    const std::vector<const Snippet*>& jobs) {
  return run_impl(jobs, /*concurrent=*/true);
}

MultiStreamResult MultiStreamRunner::run_serial(
    const std::vector<const Snippet*>& jobs) {
  return run_impl(jobs, /*concurrent=*/false);
}

}  // namespace ada
