#include "runtime/multi_stream.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/timer.h"

namespace ada {

struct MultiStreamRunner::Stream {
  std::unique_ptr<Detector> detector;
  std::unique_ptr<ScaleRegressor> regressor;
  std::unique_ptr<AdaScalePipeline> pipeline;
};

MultiStreamRunner::MultiStreamRunner(Detector* prototype_detector,
                                     ScaleRegressor* prototype_regressor,
                                     const Renderer* renderer,
                                     const ScalePolicy& policy,
                                     const ScaleSet& sreg, int num_streams,
                                     int init_scale, bool snap_scales) {
  assert(num_streams > 0);
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    auto stream = std::make_unique<Stream>();
    stream->detector = clone_detector(prototype_detector);
    stream->regressor = clone_regressor(prototype_regressor);
    stream->pipeline = std::make_unique<AdaScalePipeline>(
        stream->detector.get(), stream->regressor.get(), renderer, policy,
        sreg, init_scale, snap_scales);
    streams_.push_back(std::move(stream));
  }
}

MultiStreamRunner::~MultiStreamRunner() = default;

int MultiStreamRunner::num_streams() const {
  return static_cast<int>(streams_.size());
}

void MultiStreamRunner::set_stream_policy(
    int stream, const ExecutionPolicy& detector_policy,
    const ExecutionPolicy& regressor_policy) {
  Stream& s = *streams_.at(static_cast<std::size_t>(stream));
  s.detector->set_execution_policy(detector_policy);
  s.regressor->set_execution_policy(regressor_policy);
}

void MultiStreamRunner::set_dff(const DffServingConfig& cfg) {
  for (const auto& s : streams_) s->pipeline->set_dff(cfg);
  dff_enabled_ = true;
}

MultiStreamResult MultiStreamRunner::run_impl(
    const std::vector<const Snippet*>& jobs, bool concurrent,
    BatchScheduler* scheduler) {
  MultiStreamResult result;
  result.streams.resize(streams_.size());
  result.batched = scheduler != nullptr;

  auto stream_main = [&](int sid) {
    Stream& stream = *streams_[static_cast<std::size_t>(sid)];
    StreamOutput& out = result.streams[static_cast<std::size_t>(sid)];
    out.stream_id = sid;
    AdaScalePipeline::DetectBackend backend;
    if (scheduler != nullptr) {
      backend = [scheduler](Tensor image) {
        BatchSubmitResult r = scheduler->submit(image);
        AdaScalePipeline::DetectResult d;
        d.detections = std::move(r.detections);
        d.regressed_t = r.regressed_t;
        d.detect_ms = r.detect_ms;
        d.regressor_ms = r.regressor_ms;
        d.features = std::move(r.features);
        return d;
      };
      scheduler->attach();
    }
    Timer busy;
    for (std::size_t j = static_cast<std::size_t>(sid); j < jobs.size();
         j += streams_.size()) {
      stream.pipeline->reset();
      for (const Scene& frame : jobs[j]->frames)
        out.frames.push_back(scheduler != nullptr
                                 ? stream.pipeline->process_via(frame, backend)
                                 : stream.pipeline->process(frame));
    }
    out.busy_ms = busy.elapsed_ms();
    if (scheduler != nullptr) scheduler->detach();
  };

  Timer wall;
  if (concurrent) {
    std::vector<std::thread> threads;
    threads.reserve(streams_.size());
    for (int s = 0; s < num_streams(); ++s)
      threads.emplace_back(stream_main, s);
    for (std::thread& t : threads) t.join();
  } else {
    for (int s = 0; s < num_streams(); ++s) stream_main(s);
  }
  result.wall_ms = wall.elapsed_ms();

  for (const StreamOutput& s : result.streams)
    result.total_frames += static_cast<long>(s.frames.size());
  result.aggregate_fps = result.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(result.total_frames)
                                   / result.wall_ms
                             : 0.0;
  if (scheduler != nullptr) result.batch_stats = scheduler->stats();
  return result;
}

MultiStreamResult MultiStreamRunner::run(
    const std::vector<const Snippet*>& jobs) {
  return run_impl(jobs, /*concurrent=*/true, /*scheduler=*/nullptr);
}

MultiStreamResult MultiStreamRunner::run_serial(
    const std::vector<const Snippet*>& jobs) {
  return run_impl(jobs, /*concurrent=*/false, /*scheduler=*/nullptr);
}

MultiStreamResult MultiStreamRunner::run_batched(
    const std::vector<const Snippet*>& jobs, const BatchSchedulerConfig& cfg) {
  // The scheduler's contexts are cloned from stream 0's models, which carry
  // the same parameter values as every other stream — any batch composition
  // therefore produces the same bits as per-stream execution.  That only
  // holds when every stream resolves the same policies as stream 0;
  // heterogeneous per-stream policies (set_stream_policy) would be served
  // silently at stream 0's precision, so fail loudly instead.
  for (const auto& s : streams_) {
    if (s->detector->execution_policy().resolve() !=
            streams_[0]->detector->execution_policy().resolve() ||
        s->regressor->execution_policy().resolve() !=
            streams_[0]->regressor->execution_policy().resolve()) {
      std::fprintf(stderr,
                   "MultiStreamRunner::run_batched: streams have "
                   "heterogeneous execution policies — batching shares "
                   "contexts cloned from stream 0 and cannot honor them; "
                   "use run()/run_serial() for mixed-policy streams\n");
      std::abort();
    }
  }
  // DFF key frames want features back (heads run in-stream on the cached
  // copy); warp frames never reach the scheduler at all.
  BatchSchedulerConfig scfg = cfg;
  if (dff_enabled_) scfg.features_only = true;
  BatchScheduler scheduler(streams_[0]->detector.get(),
                           streams_[0]->regressor.get(), scfg);
  return run_impl(jobs, /*concurrent=*/true, &scheduler);
}

}  // namespace ada
