#include "runtime/exec_plan.h"

#include <algorithm>
#include <cstdio>

namespace ada {

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::kGemmReference: return "reference";
    case KernelKind::kGemmPacked: return "packed";
    case KernelKind::kInt8: return "int8";
    case KernelKind::kNone: break;
  }
  return "-";
}

long long ExecutionPlan::total_macs() const {
  long long total = 0;
  for (const PlanStep& s : steps) total += s.macs;
  return total;
}

void ExecutionPlan::finalize() {
  arena_floats = 0;
  for (const PlanStep& s : steps)
    arena_floats = std::max(arena_floats, s.workspace_floats);
}

namespace {
std::string shape_str(const PlanShape& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dx%dx%dx%d", s.n, s.c, s.h, s.w);
  return buf;
}
}  // namespace

std::string ExecutionPlan::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "plan input=%s policy=%s steps=%zu arena=%.1f KiB "
                "macs=%.1fM\n",
                shape_str(input).c_str(), policy.c_str(), steps.size(),
                static_cast<double>(arena_floats) * sizeof(float) / 1024.0,
                static_cast<double>(total_macs()) * 1e-6);
  std::string out = buf;
  std::snprintf(buf, sizeof(buf), "  %-3s %-12s %-10s %-16s %-16s %12s %10s\n",
                "#", "layer", "kernel", "in", "out", "workspace_B", "macs");
  out += buf;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    std::snprintf(buf, sizeof(buf),
                  "  %-3zu %-12s %-10s %-16s %-16s %12zu %10lld\n", i,
                  s.layer.c_str(), kernel_kind_name(s.kernel),
                  shape_str(s.in).c_str(), shape_str(s.out).c_str(),
                  s.workspace_floats * sizeof(float), s.macs);
    out += buf;
  }
  return out;
}

}  // namespace ada
