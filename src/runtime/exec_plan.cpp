#include "runtime/exec_plan.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "util/timer.h"

namespace ada {

const char* kernel_kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::kGemmReference: return "reference";
    case KernelKind::kGemmPacked: return "packed";
    case KernelKind::kInt8: return "int8";
    case KernelKind::kNone: break;
  }
  return "-";
}

long long ExecutionPlan::total_macs() const {
  long long total = 0;
  for (const PlanStep& s : steps) total += s.macs;
  return total;
}

void ExecutionPlan::finalize() {
  arena_floats = 0;
  for (const PlanStep& s : steps)
    arena_floats = std::max(arena_floats, s.workspace_floats);
}

namespace {
std::string shape_str(const PlanShape& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%dx%dx%dx%d", s.n, s.c, s.h, s.w);
  return buf;
}

// ------------------------------------------------------------- autotuner

std::mutex g_tune_mu;
std::map<std::string, AutotuneChoice>& tune_cache() {
  static std::map<std::string, AutotuneChoice> cache;
  return cache;
}

std::atomic<AutotuneBenchFn> g_bench{nullptr};

/// Default bench: one warmup call (first-touch pages, kernel-dispatch
/// statics), then repeat inside one Timer window until the sample is long
/// enough (≥ 2 ms) to trust millisecond-resolution wall time, capped at
/// 64 reps so tiny head GEMMs stay cheap to measure.
double default_autotune_bench(const std::function<void()>& run) {
  run();
  Timer t;
  int reps = 0;
  double elapsed_ms;
  do {
    run();
    ++reps;
    elapsed_ms = t.elapsed_ms();
  } while (elapsed_ms < 2.0 && reps < 64);
  return elapsed_ms * 1e6 / static_cast<double>(reps);
}

}  // namespace

void set_autotune_bench(AutotuneBenchFn fn) {
  g_bench.store(fn, std::memory_order_relaxed);
}

const AutotuneChoice& autotune_choice(const std::string& key,
                                      const std::function<void()>& run_int8,
                                      const std::function<void()>& run_fp32) {
  // The lock covers the measurement too: concurrent first-builds of the
  // same geometry must not race each other's timing (and must agree on
  // one recorded winner).  Plan builds are setup-path, never steady-state.
  std::lock_guard<std::mutex> lk(g_tune_mu);
  auto& cache = tune_cache();
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  AutotuneBenchFn bench = g_bench.load(std::memory_order_relaxed);
  if (bench == nullptr) bench = default_autotune_bench;
  AutotuneChoice c;
  c.int8_ns = bench(run_int8);
  c.fp32_ns = bench(run_fp32);
  c.kernel =
      c.int8_ns <= c.fp32_ns ? KernelKind::kInt8 : KernelKind::kGemmPacked;
  return cache.emplace(key, c).first->second;
}

void clear_autotune_cache() {
  std::lock_guard<std::mutex> lk(g_tune_mu);
  tune_cache().clear();
}

std::size_t autotune_cache_size() {
  std::lock_guard<std::mutex> lk(g_tune_mu);
  return tune_cache().size();
}

std::string ExecutionPlan::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "plan input=%s policy=%s steps=%zu arena=%.1f KiB "
                "macs=%.1fM\n",
                shape_str(input).c_str(), policy.c_str(), steps.size(),
                static_cast<double>(arena_floats) * sizeof(float) / 1024.0,
                static_cast<double>(total_macs()) * 1e-6);
  std::string out = buf;
  std::snprintf(buf, sizeof(buf), "  %-3s %-12s %-10s %-16s %-16s %12s %10s\n",
                "#", "layer", "kernel", "in", "out", "workspace_B", "macs");
  out += buf;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    std::snprintf(buf, sizeof(buf),
                  "  %-3zu %-12s %-10s %-16s %-16s %12zu %10lld", i,
                  s.layer.c_str(), kernel_kind_name(s.kernel),
                  shape_str(s.in).c_str(), shape_str(s.out).c_str(),
                  s.workspace_floats * sizeof(float), s.macs);
    out += buf;
    if (s.autotuned) {
      // The measured race this step's kernel came out of (n=1 probe).
      std::snprintf(buf, sizeof(buf),
                    "  tuned int8=%.3fms fp32=%.3fms (int8/fp32 %.2fx)",
                    s.tuned_int8_ns * 1e-6, s.tuned_fp32_ns * 1e-6,
                    s.tuned_int8_ns > 0.0 ? s.tuned_fp32_ns / s.tuned_int8_ns
                                          : 0.0);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ada
