// Minimal fixed-size thread pool + deterministic parallel_for.
//
// Design constraints, in order:
//   1. Determinism: parallel_for partitions the index range into fixed chunks
//      with disjoint writes, so results are bit-identical to the serial loop
//      regardless of which thread runs which chunk.  Every kernel this repo
//      parallelizes (conv tiles, renderer rows, elementwise ranges, per-class
//      NMS groups) satisfies the disjoint-write contract.
//   2. No deadlock under nesting: the calling thread always participates and
//      can finish the whole range alone if every worker is busy; nested
//      parallel_for calls from inside a chunk run serially inline.
//   3. Zero overhead when it does not help: ranges at or below `grain`, or a
//      pool with no workers (single-core machines, ADASCALE_THREADS=1), run
//      the loop inline with no allocation or synchronization.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ada {

/// Fixed-size worker pool.  Tasks are plain closures; submission is
/// thread-safe.  Workers live for the pool's lifetime.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers.  0 means "no workers": every parallel_for
  /// runs inline on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting callers that participate).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for any idle worker.
  void submit(std::function<void()> task);

  /// Runs fn(begin, end) over [0, n) split into chunks of at most `grain`
  /// indices.  The caller participates; idle workers help.  fn must only
  /// write state owned by its own index range.  Returns when every chunk has
  /// finished.  Nested calls (from inside fn) run serially inline.
  void parallel_for(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool shared by all parallel kernels.  Sized on first use
/// from ADASCALE_THREADS if set, else std::thread::hardware_concurrency().
/// Never returns null.
ThreadPool* global_pool();

/// Convenience wrapper: global_pool()->parallel_for(...).
void parallel_for(std::int64_t n, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace ada
