// Admission control: bounded per-stream arrival queues with deadlines.
//
// Everything upstream of this file pulled work (MultiStreamRunner::run
// walks a job list as fast as the hardware allows); real serving is pushed
// work — frames *arrive*, whether or not the runner is keeping up.  An
// ArrivalQueue is the buffer between those two worlds: each frame is
// stamped with its arrival time and a relative deadline on admission, the
// queue holds at most `capacity` frames (tail-dropping beyond that — a
// bounded queue is the first, non-negotiable overload defense: an unbounded
// one converts overload into unbounded latency for every later frame), and
// the consumer reads deadline slack off the head to know how far behind it
// is running.  All timing goes through an injected Clock (util/clock.h), so
// queueing behavior is deterministic and testable without wall-clock sleeps.
//
// This file also owns the load-schedule generators (Poisson and bursty
// arrivals over snippet mixes) shared by tools/loadgen and bench_report's
// `serving_slo` section: a schedule is just precomputed (arrival time,
// frame) pairs, so generation is seeded and replayable independently of
// how fast the runner consumes it.
#pragma once

#include <vector>

#include "data/video.h"
#include "util/clock.h"
#include "util/rng.h"

namespace ada {

/// Bounded-queue + deadline knobs of one stream's admission.
struct AdmissionConfig {
  /// Maximum frames queued per stream; arrivals beyond this are dropped on
  /// admission (tail drop) and counted in dropped_queue_full.
  int capacity = 16;
  /// Relative deadline stamped on every admitted frame: the frame should
  /// finish within this many ms of arrival.  Frames served later count as
  /// deadline violations; under controller-ordered shedding, expired frames
  /// are dropped instead of served.
  double deadline_ms = 250.0;

  /// Aborts loudly on nonsensical values (zero/negative capacity or
  /// deadline) instead of silently misbehaving.
  void validate() const;
};

/// One scheduled arrival: `scene` arrives at absolute time `ms`.
struct FrameArrival {
  double ms = 0.0;
  const Scene* scene = nullptr;
  /// First frame of a new snippet: the serving pipeline resets (Algorithm 1
  /// restarts per video) before processing it.
  bool snippet_start = false;
};

/// A stream's full arrival trace, sorted by time.  Stream churn is encoded
/// in the traces themselves: a stream is live between its first and last
/// arrival and idle outside that window.
using StreamSchedule = std::vector<FrameArrival>;

/// An admitted frame waiting in (or popped from) an ArrivalQueue.
struct AdmittedFrame {
  const Scene* scene = nullptr;
  double arrival_ms = 0.0;
  double deadline_ms = 0.0;  ///< absolute: arrival_ms + config deadline
  long seq = 0;              ///< per-stream frame index (offer order)
  bool snippet_start = false;
};

/// Per-stream admission/drop accounting.  Invariants (tested):
///   offered  == admitted + dropped_queue_full
///   admitted == served + dropped_deadline + depth()
struct AdmissionStats {
  long offered = 0;             ///< frames presented to offer()
  long admitted = 0;            ///< frames that entered the queue
  long dropped_queue_full = 0;  ///< tail-dropped on admission
  long dropped_deadline = 0;    ///< shed after admission (expired deadline)
  long served = 0;              ///< frames handed to the worker via pop()

  long dropped() const { return dropped_queue_full + dropped_deadline; }
};

/// One stream's bounded, deadline-stamped arrival queue.  Not internally
/// synchronized: the virtual-time runner is its only producer and consumer
/// (a single event loop), which is exactly what makes admission decisions
/// deterministic.
class ArrivalQueue {
 public:
  /// `clock` must outlive the queue; cfg is validated loudly.
  ArrivalQueue(const AdmissionConfig& cfg, const Clock* clock);

  /// Offers one frame that arrived at `arrival_ms` (its scheduled arrival
  /// time — passed explicitly because the event loop may deliver it after
  /// the clock has already advanced past it, e.g. arrivals that landed
  /// during a service window; stamping delivery time would understate
  /// queueing delay).  Returns false (and counts dropped_queue_full) when
  /// the queue is at capacity.
  bool offer(const Scene* scene, bool snippet_start, double arrival_ms);

  bool empty() const { return queue_.empty(); }
  int depth() const { return static_cast<int>(queue_.size()); }

  /// Oldest queued frame; queue must be non-empty.
  const AdmittedFrame& front() const { return queue_.front(); }

  /// Removes and returns the oldest frame, counting it served.
  AdmittedFrame pop();

  /// Drops every queued frame whose deadline has already passed (counting
  /// dropped_deadline); returns the shed frames so the runner can record
  /// them.  Called only when the overload controller has escalated to
  /// shedding.
  std::vector<AdmittedFrame> shed_expired();

  /// Deadline slack of the oldest queued frame (deadline - now): negative
  /// means the head frame is already late.  Returns +deadline when empty
  /// (an empty queue is maximally healthy).
  double oldest_slack_ms() const;

  const AdmissionStats& stats() const { return stats_; }

 private:
  AdmissionConfig cfg_;
  const Clock* clock_;
  std::vector<AdmittedFrame> queue_;  ///< FIFO; index 0 is oldest
  long next_seq_ = 0;
  AdmissionStats stats_;
};

// ---------------------------------------------------------------------------
// Load-schedule generation (shared by tools/loadgen and bench_report).
// ---------------------------------------------------------------------------

/// Deterministic round-robin fan-out of a job list into per-stream arrival
/// schedules: job j goes to stream j % num_streams (the MultiStreamRunner
/// assignment contract), each stream's frames arrive in job order at
/// start_ms + k * frame_interval_ms (per-stream frame counter k), and the
/// first frame of every snippet carries snippet_start.  With the default
/// zero interval everything is due immediately — the backlog-drain schedule
/// the stream-state table (run_table) serves; a positive interval makes a
/// fixed-rate trace for run_timed.
std::vector<StreamSchedule> schedules_from_jobs(
    const std::vector<const Snippet*>& jobs, int num_streams,
    double frame_interval_ms = 0.0, double start_ms = 0.0);

/// Flattens `jobs` into per-frame arrivals with exponential (Poisson
/// process) inter-arrival times at `rate_hz`, starting at `start_ms`.
/// Deterministic given the Rng.
StreamSchedule poisson_schedule(const std::vector<const Snippet*>& jobs,
                                double rate_hz, double start_ms, Rng* rng);

/// Bursty arrivals: a Poisson base rate, with windows of `burst_len_ms`
/// every `burst_period_ms` during which the rate jumps to `burst_rate_hz`
/// (the overload phases the controller must survive).  Deterministic given
/// the Rng.
StreamSchedule bursty_schedule(const std::vector<const Snippet*>& jobs,
                               double base_rate_hz, double burst_rate_hz,
                               double burst_period_ms, double burst_len_ms,
                               double start_ms, Rng* rng);

}  // namespace ada
