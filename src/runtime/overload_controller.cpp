#include "runtime/overload_controller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ada {

namespace {

[[noreturn]] void config_fail(const char* what) {
  std::fprintf(stderr, "OverloadControllerConfig: %s\n", what);
  std::abort();
}

}  // namespace

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNormal: return "normal";
    case DegradeLevel::kScaleCap: return "scale_cap";
    case DegradeLevel::kPolicySwitch: return "policy_switch";
    case DegradeLevel::kShed: return "shed";
  }
  return "?";
}

void OverloadControllerConfig::validate() const {
  if (queue_high <= 0) config_fail("queue_high must be >= 1");
  if (queue_low < 0) config_fail("queue_low must be >= 0");
  if (queue_low >= queue_high)
    config_fail("inverted watermarks: queue_low must be < queue_high "
                "(hysteresis gap)");
  if (!std::isfinite(slack_low_ms))
    config_fail("slack_low_ms must be finite");
  if (calm_ticks <= 0) config_fail("calm_ticks must be >= 1");
  if (!(min_dwell_ms >= 0.0) || !std::isfinite(min_dwell_ms))
    config_fail("min_dwell_ms must be finite and >= 0");
  if (enable_scale_cap && scale_cap <= 0)
    config_fail("scale_cap must be a positive nominal scale");
  if (!enable_scale_cap && !enable_policy_switch && !enable_shed)
    config_fail("every degradation rung is disabled — the controller "
                "cannot do anything; leave it out instead");
}

OverloadController::OverloadController(const OverloadControllerConfig& cfg,
                                       const ScaleSet& sreg,
                                       const Clock* clock)
    : cfg_(cfg), sreg_(sreg), clock_(clock) {
  cfg_.validate();
  if (sreg_.scales.empty())
    config_fail("OverloadController needs a non-empty scale set");
  if (clock_ == nullptr) config_fail("OverloadController requires a clock");
}

bool OverloadController::rung_enabled(DegradeLevel level) const {
  switch (level) {
    case DegradeLevel::kNormal: return true;
    case DegradeLevel::kScaleCap: return cfg_.enable_scale_cap;
    case DegradeLevel::kPolicySwitch: return cfg_.enable_policy_switch;
    case DegradeLevel::kShed: return cfg_.enable_shed;
  }
  return false;
}

DegradeLevel OverloadController::next_up(DegradeLevel from) const {
  for (int l = static_cast<int>(from) + 1;
       l <= static_cast<int>(DegradeLevel::kShed); ++l) {
    const DegradeLevel candidate = static_cast<DegradeLevel>(l);
    if (rung_enabled(candidate)) return candidate;
  }
  return from;
}

DegradeLevel OverloadController::next_down(DegradeLevel from) const {
  for (int l = static_cast<int>(from) - 1;
       l >= static_cast<int>(DegradeLevel::kNormal); --l) {
    const DegradeLevel candidate = static_cast<DegradeLevel>(l);
    if (rung_enabled(candidate)) return candidate;
  }
  return from;
}

DegradeLevel OverloadController::observe(int max_depth, double min_slack_ms) {
  const bool overloaded =
      max_depth >= cfg_.queue_high || min_slack_ms < cfg_.slack_low_ms;
  const bool healthy =
      max_depth <= cfg_.queue_low && min_slack_ms >= cfg_.slack_low_ms;

  DegradeLevel target = level_;
  if (overloaded) {
    calm_streak_ = 0;
    // Dwell gate: give the current rung's action min_dwell_ms to bite
    // before escalating past it.
    const bool dwelled =
        timeline_.empty() ||
        clock_->now_ms() - timeline_.back().ms >= cfg_.min_dwell_ms;
    if (dwelled) target = next_up(level_);
  } else if (healthy) {
    ++calm_streak_;
    if (calm_streak_ >= cfg_.calm_ticks) {
      target = next_down(level_);
      calm_streak_ = 0;  // each rung down needs its own calm streak
    }
  } else {
    // Neither overloaded nor fully healthy (inside the hysteresis band):
    // hold the level and the streak does not grow.
    calm_streak_ = 0;
  }

  if (target != level_) {
    DegradeEvent e;
    e.ms = clock_->now_ms();
    e.from = level_;
    e.to = target;
    e.depth = max_depth;
    e.slack_ms = min_slack_ms;
    timeline_.push_back(e);
    level_ = target;
  }
  return level_;
}

int OverloadController::apply_scale(int target_scale) const {
  if (!cfg_.enable_scale_cap || level_ < DegradeLevel::kScaleCap)
    return target_scale;
  return sreg_.nearest(std::min(target_scale, cfg_.scale_cap));
}

}  // namespace ada
