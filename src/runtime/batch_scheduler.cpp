#include "runtime/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/timer.h"

namespace ada {

struct BatchScheduler::Request {
  const Tensor* image = nullptr;
  BatchSubmitResult result;
  bool done = false;
};

struct BatchScheduler::Bucket {
  std::vector<Request*> pending;  ///< FIFO; front request's thread leads
  double opened_ms = 0.0;  ///< clock time the oldest pending request arrived
};

struct BatchScheduler::Context {
  std::unique_ptr<Detector> detector;
  std::unique_ptr<ScaleRegressor> regressor;
};

void BatchSchedulerConfig::validate() const {
  auto fail = [](const char* what) {
    std::fprintf(stderr, "BatchSchedulerConfig: %s\n", what);
    std::abort();
  };
  if (max_batch < 1) fail("max_batch must be >= 1");
  if (contexts < 1) fail("contexts must be >= 1");
  if (!(max_wait_ms >= 0.0) || !std::isfinite(max_wait_ms))
    fail("max_wait_ms must be finite and >= 0");
}

BatchScheduler::BatchScheduler(Detector* prototype_detector,
                               ScaleRegressor* prototype_regressor,
                               const BatchSchedulerConfig& cfg,
                               const Clock* clock)
    : cfg_(cfg), clock_(clock) {
  cfg_.validate();
  if (clock_ == nullptr) {
    own_clock_ = std::make_unique<WallClock>();
    clock_ = own_clock_.get();
  } else {
    // An injected clock cannot drive timed waits (its "time" is whatever
    // the injector says) — leaders block and rely on poke().
    manual_clock_ = true;
  }
  stats_.batch_size_hist.assign(static_cast<std::size_t>(cfg_.max_batch) + 1,
                                0);
  for (int i = 0; i < cfg_.contexts; ++i) {
    auto ctx = std::make_unique<Context>();
    if (cfg_.share_context_weights) {
      ctx->detector = clone_detector_shared(prototype_detector);
      ctx->regressor = clone_regressor_shared(prototype_regressor);
    } else {
      ctx->detector = clone_detector(prototype_detector);
      ctx->regressor = clone_regressor(prototype_regressor);
    }
    free_contexts_.push_back(ctx.get());
    contexts_.push_back(std::move(ctx));
  }
}

BatchScheduler::~BatchScheduler() = default;

void BatchScheduler::attach() {
  std::lock_guard<std::mutex> lk(mu_);
  ++attached_;
}

void BatchScheduler::detach() {
  std::lock_guard<std::mutex> lk(mu_);
  --attached_;
  // Leaders waiting for "all streams blocked" must re-evaluate: a stream
  // that exits can no longer arrive in anyone's bucket.
  cv_.notify_all();
}

BatchScheduler::Context* BatchScheduler::acquire_context(
    std::unique_lock<std::mutex>* lk) {
  while (free_contexts_.empty()) cv_.wait(*lk);
  Context* ctx = free_contexts_.back();
  free_contexts_.pop_back();
  return ctx;
}

void BatchScheduler::release_context(Context* ctx) {
  free_contexts_.push_back(ctx);
}

void BatchScheduler::execute(Context* ctx,
                             const std::vector<Request*>& batch) {
  const int n = static_cast<int>(batch.size());
  Timer timer;
  std::vector<const Tensor*> images;
  images.reserve(batch.size());
  for (const Request* r : batch) images.push_back(r->image);
  const Tensor stacked = Tensor::batch_of(images);
  if (cfg_.features_only) {
    // DFF key frames: backbone + regressor only.  Heads/decode/NMS run in
    // the submitting stream's pipeline on its cached copy of these
    // features, so they are deliberately skipped here.
    const Tensor& feats = ctx->detector->forward(stacked);
    const double detect_ms =
        timer.elapsed_ms() / static_cast<double>(std::max(n, 1));
    const std::vector<float> ts = ctx->regressor->predict_batch(feats);
    const double regressor_ms = ctx->regressor->last_predict_ms();
    for (int i = 0; i < n; ++i) {
      Request* r = batch[static_cast<std::size_t>(i)];
      r->result.features = feats.image(i);
      r->result.regressed_t = ts[static_cast<std::size_t>(i)];
      r->result.detect_ms = detect_ms;
      r->result.regressor_ms = regressor_ms;
      r->result.batch_size = n;
    }
    return;
  }
  std::vector<DetectionOutput> outs = ctx->detector->detect_batch(stacked);
  const double detect_ms =
      timer.elapsed_ms() / static_cast<double>(std::max(n, 1));
  const std::vector<float> ts =
      ctx->regressor->predict_batch(ctx->detector->features());
  const double regressor_ms = ctx->regressor->last_predict_ms();
  for (int i = 0; i < n; ++i) {
    Request* r = batch[static_cast<std::size_t>(i)];
    r->result.detections = std::move(outs[static_cast<std::size_t>(i)]);
    r->result.regressed_t = ts[static_cast<std::size_t>(i)];
    r->result.detect_ms = detect_ms;
    r->result.regressor_ms = regressor_ms;
    r->result.batch_size = n;
  }
}

BatchSubmitResult BatchScheduler::submit(const Tensor& image) {
  std::unique_lock<std::mutex> lk(mu_);

  // Single-stream fallback: with nobody to coalesce with (or batching
  // disabled) run inline — same code path, batch of one, no waiting.
  if (cfg_.max_batch <= 1 || attached_ <= 1) {
    Request req;
    req.image = &image;
    Context* ctx = acquire_context(&lk);
    lk.unlock();
    execute(ctx, {&req});
    lk.lock();
    release_context(ctx);
    ++stats_.frames;
    ++stats_.single_fallbacks;
    cv_.notify_all();
    return std::move(req.result);
  }

  const std::pair<int, int> key{image.h(), image.w()};
  Bucket& bucket = buckets_[key];  // std::map: reference stays valid
  if (bucket.pending.empty()) bucket.opened_ms = clock_->now_ms();
  Request req;
  req.image = &image;
  bucket.pending.push_back(&req);
  ++waiting_;
  cv_.notify_all();  // a bucket may just have become full

  for (;;) {
    if (req.done) {
      ++stats_.frames;
      return std::move(req.result);
    }
    if (!bucket.pending.empty() && bucket.pending.front() == &req) {
      // This thread leads the bucket.  Close it when full, when every
      // attached stream is already blocked in submit() (no further arrival
      // is possible), or when the oldest request has waited max_wait_ms.
      const bool full =
          static_cast<int>(bucket.pending.size()) >= cfg_.max_batch;
      const bool all_blocked = waiting_ >= attached_;
      const double deadline_ms = bucket.opened_ms + cfg_.max_wait_ms;
      const double now_ms = clock_->now_ms();
      if (full || all_blocked || now_ms >= deadline_ms) {
        const std::size_t take = std::min<std::size_t>(
            bucket.pending.size(), static_cast<std::size_t>(cfg_.max_batch));
        std::vector<Request*> batch(bucket.pending.begin(),
                                    bucket.pending.begin() +
                                        static_cast<std::ptrdiff_t>(take));
        bucket.pending.erase(bucket.pending.begin(),
                             bucket.pending.begin() +
                                 static_cast<std::ptrdiff_t>(take));
        // Anyone left behind becomes a fresh bucket generation with its own
        // leader and wait window.
        if (!bucket.pending.empty()) bucket.opened_ms = clock_->now_ms();
        waiting_ -= static_cast<int>(take);
        Context* ctx = acquire_context(&lk);
        lk.unlock();
        execute(ctx, batch);
        lk.lock();
        release_context(ctx);
        ++stats_.batches;
        ++stats_.batch_size_hist[take];
        for (Request* r : batch) r->done = true;
        cv_.notify_all();
        // req.done is now true; the loop head returns it.
      } else if (manual_clock_) {
        // Timed waits are meaningless against an injected clock; block until
        // poke() (after a clock advance) or any state change re-wakes us.
        cv_.wait(lk);
      } else {
        cv_.wait_for(lk, std::chrono::duration<double, std::milli>(
                             deadline_ms - now_ms));
      }
    } else {
      // Follower (or leader-to-be after a promotion): wait for the leader.
      cv_.wait(lk);
    }
  }
}

void BatchScheduler::poke() {
  std::lock_guard<std::mutex> lk(mu_);
  cv_.notify_all();
}

double BatchScheduler::next_flush_deadline_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  double earliest = -1.0;
  for (const auto& kv : buckets_) {
    if (kv.second.pending.empty()) continue;
    const double deadline = kv.second.opened_ms + cfg_.max_wait_ms;
    if (earliest < 0.0 || deadline < earliest) earliest = deadline;
  }
  return earliest;
}

BatchSchedulerStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ada
