#include "runtime/admission.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ada {

namespace {

[[noreturn]] void config_fail(const char* what) {
  std::fprintf(stderr, "AdmissionConfig: %s\n", what);
  std::abort();
}

/// Exponential inter-arrival draw for a Poisson process at `rate_hz`,
/// in milliseconds.  1 - U keeps the argument strictly positive (U is
/// uniform on [0, 1)).
double exp_interarrival_ms(double rate_hz, Rng* rng) {
  const double u = 1.0 - static_cast<double>(rng->uniform());
  return -std::log(u) * 1000.0 / rate_hz;
}

}  // namespace

void AdmissionConfig::validate() const {
  if (capacity <= 0) config_fail("capacity must be >= 1 (bounded queue)");
  if (!(deadline_ms > 0.0))
    config_fail("deadline_ms must be positive and finite");
  if (!std::isfinite(deadline_ms))
    config_fail("deadline_ms must be positive and finite");
}

ArrivalQueue::ArrivalQueue(const AdmissionConfig& cfg, const Clock* clock)
    : cfg_(cfg), clock_(clock) {
  cfg_.validate();
  if (clock_ == nullptr) config_fail("ArrivalQueue requires a clock");
}

bool ArrivalQueue::offer(const Scene* scene, bool snippet_start,
                         double arrival_ms) {
  ++stats_.offered;
  if (depth() >= cfg_.capacity) {
    ++stats_.dropped_queue_full;
    ++next_seq_;  // seq numbers every offered frame, admitted or not
    return false;
  }
  AdmittedFrame f;
  f.scene = scene;
  f.arrival_ms = arrival_ms;
  f.deadline_ms = arrival_ms + cfg_.deadline_ms;
  f.seq = next_seq_++;
  f.snippet_start = snippet_start;
  queue_.push_back(f);
  ++stats_.admitted;
  return true;
}

AdmittedFrame ArrivalQueue::pop() {
  AdmittedFrame f = queue_.front();
  queue_.erase(queue_.begin());
  ++stats_.served;
  return f;
}

std::vector<AdmittedFrame> ArrivalQueue::shed_expired() {
  const double now = clock_->now_ms();
  std::vector<AdmittedFrame> shed;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].deadline_ms <= now) {
      shed.push_back(queue_[i]);
    } else {
      queue_[keep++] = queue_[i];
    }
  }
  queue_.resize(keep);
  stats_.dropped_deadline += static_cast<long>(shed.size());
  return shed;
}

double ArrivalQueue::oldest_slack_ms() const {
  if (queue_.empty()) return cfg_.deadline_ms;
  return queue_.front().deadline_ms - clock_->now_ms();
}

namespace {

/// Shared schedule builder: walks the flattened frames of `jobs`, drawing
/// each inter-arrival gap from `next_gap_ms(t)` evaluated at the current
/// schedule time.
template <typename GapFn>
StreamSchedule build_schedule(const std::vector<const Snippet*>& jobs,
                              double start_ms, GapFn next_gap_ms) {
  StreamSchedule schedule;
  double t = start_ms;
  for (const Snippet* job : jobs) {
    bool first = true;
    for (const Scene& frame : job->frames) {
      t += next_gap_ms(t);
      FrameArrival a;
      a.ms = t;
      a.scene = &frame;
      a.snippet_start = first;
      first = false;
      schedule.push_back(a);
    }
  }
  return schedule;
}

}  // namespace

std::vector<StreamSchedule> schedules_from_jobs(
    const std::vector<const Snippet*>& jobs, int num_streams,
    double frame_interval_ms, double start_ms) {
  if (num_streams <= 0)
    config_fail("schedules_from_jobs: num_streams must be >= 1");
  if (frame_interval_ms < 0.0 || !std::isfinite(frame_interval_ms))
    config_fail("schedules_from_jobs: frame_interval_ms must be finite, >= 0");
  std::vector<StreamSchedule> schedules(
      static_cast<std::size_t>(num_streams));
  std::vector<long> k(static_cast<std::size_t>(num_streams), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::size_t s = j % static_cast<std::size_t>(num_streams);
    bool first = true;
    for (const Scene& frame : jobs[j]->frames) {
      FrameArrival a;
      a.ms = start_ms + static_cast<double>(k[s]++) * frame_interval_ms;
      a.scene = &frame;
      a.snippet_start = first;
      first = false;
      schedules[s].push_back(a);
    }
  }
  return schedules;
}

StreamSchedule poisson_schedule(const std::vector<const Snippet*>& jobs,
                                double rate_hz, double start_ms, Rng* rng) {
  if (!(rate_hz > 0.0)) config_fail("poisson_schedule: rate_hz must be > 0");
  return build_schedule(jobs, start_ms, [&](double) {
    return exp_interarrival_ms(rate_hz, rng);
  });
}

StreamSchedule bursty_schedule(const std::vector<const Snippet*>& jobs,
                               double base_rate_hz, double burst_rate_hz,
                               double burst_period_ms, double burst_len_ms,
                               double start_ms, Rng* rng) {
  if (!(base_rate_hz > 0.0) || !(burst_rate_hz > 0.0))
    config_fail("bursty_schedule: rates must be > 0");
  if (!(burst_period_ms > 0.0) || burst_len_ms < 0.0 ||
      burst_len_ms > burst_period_ms)
    config_fail(
        "bursty_schedule: need 0 <= burst_len_ms <= burst_period_ms, "
        "burst_period_ms > 0");
  return build_schedule(jobs, start_ms, [&](double t) {
    const double phase = std::fmod(t - start_ms, burst_period_ms);
    const double rate = phase < burst_len_ms ? burst_rate_hz : base_rate_hz;
    return exp_interarrival_ms(rate, rng);
  });
}

}  // namespace ada
