// Concurrent multi-stream serving of AdaScale pipelines.
//
// Production video analytics serves many independent camera/user streams at
// once.  Algorithm 1 is inherently sequential *within* a stream (frame t's
// deep features pick frame t+1's scale), but streams share nothing — so the
// scaling axis is across streams.
//
// MultiStreamRunner keeps streams as STATE, not threads: each stream is a
// stream-state-table entry (an AdaScalePipeline wrapping a StreamContext,
// plus an ArrivalQueue when frames are scheduled) and all model compute
// flows through a shared ModelTable (runtime/stream_table.h) — one resident
// master weight copy, leased per frame by a small pool of weight-aliased
// contexts.  run()/run_serial()/run_table() drain the table with a worker
// pool that dispatches one ready stream at a time; run_timed() drives the
// same entries from a virtual-time event loop; run_batched() routes frames
// through a cross-stream BatchScheduler.  1k+ streams therefore cost 1k
// contexts-worth of kilobyte state, not 1k model clones.
//
// Job assignment is static round-robin (stream s takes jobs s, s+N, ...), so
// per-stream outputs are bit-identical to running the same jobs serially —
// the multi_stream and stream_table tests assert exactly that.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "adascale/pipeline.h"
#include "data/video.h"
#include "runtime/admission.h"
#include "runtime/batch_scheduler.h"
#include "runtime/fault_injection.h"
#include "runtime/overload_controller.h"
#include "runtime/stream_table.h"
#include "util/latency_histogram.h"

namespace ada {

/// Everything one stream produced: per-frame outputs in job order plus the
/// stream's busy wall-clock.
struct StreamOutput {
  int stream_id = 0;
  std::vector<AdaFrameOutput> frames;  ///< all frames of all jobs, in order
  double busy_ms = 0.0;                ///< time this stream spent processing
};

/// Aggregate result of a multi-stream run.
struct MultiStreamResult {
  std::vector<StreamOutput> streams;  ///< indexed by stream id
  double wall_ms = 0.0;               ///< end-to-end wall-clock of the run
  long total_frames = 0;
  double aggregate_fps = 0.0;         ///< total_frames / wall_ms
  bool batched = false;               ///< produced by run_batched()
  BatchSchedulerStats batch_stats;    ///< meaningful when batched
};

/// Why a frame never produced output (TimedFrameRecord::drop_reason).
enum class DropReason : int {
  kNone = 0,       ///< not dropped
  kQueueFull = 1,  ///< tail-dropped on admission (bounded queue at capacity)
  kDeadline = 2,   ///< shed after admission with its deadline already passed
};

/// What happened to one offered frame in a timed (arrival-driven) run.
struct TimedFrameRecord {
  int stream = 0;
  long seq = 0;            ///< per-stream frame index, in offer order
  double arrival_ms = 0.0; ///< scheduled arrival (absolute clock time)
  double start_ms = 0.0;   ///< service start; equals drop time for drops
  double finish_ms = 0.0;  ///< service end; equals drop time for drops
  bool dropped = false;
  DropReason drop_reason = DropReason::kNone;
  bool deadline_met = false;  ///< served with finish <= arrival + deadline
  int scale_used = 0;         ///< nominal serving scale (0 for drops)
  DegradeLevel level = DegradeLevel::kNormal;  ///< controller rung in force
  AdaFrameOutput output;  ///< populated only when served with run_inference
};

/// Knobs of a timed run (see MultiStreamRunner::run_timed).
struct TimedRunConfig {
  AdmissionConfig admission;  ///< per-stream queue bound + relative deadline

  /// With true (default) every served frame runs the stream's real pipeline
  /// (detections, scale trajectory, measured latencies).  With false the
  /// pipelines are bypassed entirely — pure queueing simulation; a
  /// service_model is then mandatory.
  bool run_inference = true;

  /// Modeled service time in virtual ms for one frame:
  /// (stream, seq, scale_used, level) -> ms.  Null uses the measured
  /// inference time of the frame (run_inference must then be true).  Tests
  /// model service deterministically (e.g. quadratic in scale); loadgen
  /// measures it.
  std::function<double(int stream, long seq, int scale_used, DegradeLevel level)>
      service_model;

  /// Extra simulated service time per (stream, seq) — latency spikes,
  /// stalled-stream stragglers (runtime/fault_injection.h).
  FaultInjection faults;

  /// Policies installed on every stream while the controller's
  /// policy-switch rung is in force (and restored on recovery): the
  /// canonical degraded recipe is the quantized detector with the fp32
  /// regressor.
  ExecutionPolicy degraded_detector_policy = ExecutionPolicy::int8();
  ExecutionPolicy degraded_regressor_policy = ExecutionPolicy::fp32();

  /// Aborts loudly on inconsistent knobs (called by run_timed): the
  /// admission config must validate, and run_inference=false requires a
  /// service_model — with both off there is no service time at all.
  void validate() const;
};

/// Aggregate result of a timed run.  The per-stream AdmissionStats obey
///   offered  == admitted + dropped_queue_full
///   admitted == served + dropped_deadline      (queues drain before return)
struct TimedRunResult {
  std::vector<TimedFrameRecord> frames;      ///< completion/drop order
  std::vector<AdmissionStats> stream_stats;  ///< indexed by stream id
  LatencyHistogram latency;  ///< served frames only: finish - arrival (ms)
  long offered = 0;
  long served = 0;
  long dropped_queue_full = 0;
  long dropped_deadline = 0;
  long deadline_violations = 0;  ///< served, but after the deadline
  double makespan_ms = 0.0;      ///< virtual time from first call to drain
  std::vector<DegradeEvent> timeline;  ///< controller transitions (if any)
  DegradeLevel final_level = DegradeLevel::kNormal;

  double drop_rate() const {
    return offered > 0 ? static_cast<double>(dropped_queue_full +
                                             dropped_deadline) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

/// Drives N independent AdaScalePipeline instances over a shared
/// ModelTable.  (clone_detector_shared / clone_regressor_shared live with
/// their classes: detection/detector.h and adascale/scale_regressor.h.)
class MultiStreamRunner {
 public:
  /// Builds `num_streams` stream-state entries over ONE master weight copy
  /// (cloned from the prototypes, which are only read during construction)
  /// and per-policy pools of weight-aliased serving contexts.
  /// `contexts_per_policy` bounds how many frames of one policy pair can
  /// be in flight at once (<= 0 auto-sizes to hardware concurrency; see
  /// ModelTable).  `renderer` is stateless and shared by all streams.
  /// With snap_scales each pipeline quantizes its target scale to the
  /// nearest member of `sreg` (see AdaScalePipeline) — in every execution
  /// mode, so run(), run_serial() and run_batched() always process
  /// identical work; dense scale buckets are what lets run_batched()
  /// actually form batches.
  MultiStreamRunner(Detector* prototype_detector,
                    ScaleRegressor* prototype_regressor,
                    const Renderer* renderer, const ScalePolicy& policy,
                    const ScaleSet& sreg, int num_streams,
                    int init_scale = 600, bool snap_scales = false,
                    int contexts_per_policy = 0);
  ~MultiStreamRunner();

  MultiStreamRunner(const MultiStreamRunner&) = delete;
  MultiStreamRunner& operator=(const MultiStreamRunner&) = delete;

  int num_streams() const;

  /// The shared-weights model table backing every stream (inspection:
  /// resident_weight_bytes vs the cloned baseline, pool counts).  Owned by
  /// the runner; do not build pools while a run is in flight.
  ModelTable* model_table() { return table_.get(); }

  /// Overrides the execution policy of one stream (runtime/exec_policy.h)
  /// — heterogeneous serving, e.g. an int8 stream next to an fp32 stream
  /// with no shared backend state to race on.  A stream's policy pair
  /// selects which ModelTable context pool its frames lease from (pools
  /// are built on first use; the weights underneath stay one shared copy).
  /// By default every stream uses the prototypes' policies.  run(),
  /// run_serial(), run_table() and run_timed() honor per-stream policies;
  /// run_batched() coalesces frames from *different* streams onto shared
  /// contexts, so it requires all streams to resolve identical policies
  /// and aborts loudly otherwise (per-model mixed precision — int8
  /// detector + fp32 regressor — is fine: it rides the models, not the
  /// streams).  Setup-time only: must not race a running table.
  void set_stream_policy(int stream, const ExecutionPolicy& detector_policy,
                         const ExecutionPolicy& regressor_policy);

  /// Enables DFF temporal reuse (keyframe/warp serving) on every stream's
  /// pipeline and resets their per-stream contexts.  Applies to all three
  /// execution modes; under run_batched() the scheduler automatically runs
  /// in features_only mode — key frames join cross-stream same-scale
  /// batches, warp frames never reach the scheduler (flow + warp + heads
  /// run on the stream's own models, no backbone at all).
  void set_dff(const DffServingConfig& cfg);

  /// Whether set_dff has been called.
  bool dff_enabled() const { return dff_enabled_; }

  /// Caps every stream's target scale at `cap` (0 lifts the cap) — the
  /// overload controller's first degradation rung, fanned out to each
  /// stream's AdaScalePipeline::set_scale_cap.  run_timed drives this
  /// automatically when given a controller; it is public so external
  /// operators (or tests) can impose a cap directly.
  void set_scale_cap(int cap);

  /// Processes every snippet through the stream-state table: job j goes to
  /// stream j % num_streams, each stream's frames land in its ArrivalQueue
  /// (all due immediately), and cfg.workers pooled threads repeatedly pick
  /// a ready stream, serve exactly ONE frame on a leased context, and
  /// return the stream to the ready set.  A stream is owned by at most one
  /// worker at a time, so Algorithm 1's within-stream ordering — and
  /// therefore bit-identical per-stream output regardless of worker count
  /// or interleaving — holds by construction.  Pipelines reset() at each
  /// snippet boundary (Algorithm 1 restarts per video).
  MultiStreamResult run_table(const std::vector<const Snippet*>& jobs,
                              const StreamTableConfig& cfg = {});

  /// run_table with auto worker count — the default concurrent mode.
  MultiStreamResult run(const std::vector<const Snippet*>& jobs);

  /// run_table with ONE worker: fully sequential on the calling thread's
  /// pool.  Baseline for the throughput comparison; produces identical
  /// per-stream outputs to run().
  MultiStreamResult run_serial(const std::vector<const Snippet*>& jobs);

  /// Same jobs and static round-robin assignment, but every stream routes
  /// its per-frame detection through a shared BatchScheduler: frames from
  /// different streams that currently target the same scale share ONE
  /// backbone forward (one sgemm per layer for the whole batch).  Because
  /// the batched kernels are bit-identical to the single-image ones,
  /// per-stream outputs are memcmp-equal to run()/run_serial() no matter
  /// how frames happened to batch; timing fields (detect_ms/regressor_ms)
  /// are amortized per frame.  Scheduler counters land in
  /// MultiStreamResult::batch_stats.
  MultiStreamResult run_batched(const std::vector<const Snippet*>& jobs,
                                const BatchSchedulerConfig& cfg = {});

  /// Arrival-driven serving in virtual time: frames *arrive* on per-stream
  /// schedules (runtime/admission.h) instead of being pulled as fast as the
  /// hardware allows, pass through bounded deadline-stamped queues, and are
  /// served round-robin by a single modeled worker that advances `clock` by
  /// each frame's service time (modeled or measured) — so queueing, drops,
  /// deadline slack and controller decisions are exact functions of the
  /// schedule + config, reproducible bit-for-bit with no sleeps and no
  /// dependence on machine speed or ADASCALE_THREADS.
  ///
  /// `schedules` must have exactly one (possibly empty) schedule per
  /// stream, each sorted by arrival time.  `controller` is optional: null
  /// serves as configured no matter the backlog (the SLO baseline); with a
  /// controller the runner feeds it one observation per loop tick (worst
  /// queue depth, worst head-of-line slack) and enforces whatever rung it
  /// chooses — scale caps via set_scale_cap, the degraded execution
  /// policies, deadline-aware shedding.  The run ends when every schedule
  /// is exhausted and every queue has drained (served or shed — with no
  /// controller, queued frames are always served, even late).
  TimedRunResult run_timed(const std::vector<StreamSchedule>& schedules,
                           const TimedRunConfig& cfg, ManualClock* clock,
                           OverloadController* controller = nullptr);

 private:
  struct Stream;
  /// Thread-per-stream orchestration, kept ONLY for run_batched: the
  /// scheduler's leader election needs every live stream blocked inside
  /// submit() for its all-blocked flush trigger, which a one-frame-at-a-
  /// time table worker cannot provide.  Frames route through the scheduler
  /// via process_via.
  MultiStreamResult run_impl(const std::vector<const Snippet*>& jobs,
                             BatchScheduler* scheduler);

  std::vector<std::unique_ptr<Stream>> streams_;
  std::unique_ptr<ModelTable> table_;  ///< shared weights + context pools
  bool dff_enabled_ = false;
};

}  // namespace ada
