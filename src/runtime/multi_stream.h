// Concurrent multi-stream serving of AdaScale pipelines.
//
// Production video analytics serves many independent camera/user streams at
// once.  Algorithm 1 is inherently sequential *within* a stream (frame t's
// deep features pick frame t+1's scale), but streams share nothing — so the
// scaling axis is across streams.  MultiStreamRunner owns one complete
// pipeline (detector + regressor clones) per stream and drives them on
// dedicated threads, with the shared runtime pool (runtime/thread_pool.h)
// parallelizing the per-frame kernels underneath.
//
// Job assignment is static round-robin (stream s takes jobs s, s+N, ...), so
// per-stream outputs are bit-identical to running the same jobs serially —
// the multi_stream test asserts exactly that.
#pragma once

#include <memory>
#include <vector>

#include "adascale/pipeline.h"
#include "data/video.h"

namespace ada {

/// Everything one stream produced: per-frame outputs in job order plus the
/// stream's busy wall-clock.
struct StreamOutput {
  int stream_id = 0;
  std::vector<AdaFrameOutput> frames;  ///< all frames of all jobs, in order
  double busy_ms = 0.0;                ///< time this stream spent processing
};

/// Aggregate result of a multi-stream run.
struct MultiStreamResult {
  std::vector<StreamOutput> streams;  ///< indexed by stream id
  double wall_ms = 0.0;               ///< end-to-end wall-clock of the run
  long total_frames = 0;
  double aggregate_fps = 0.0;         ///< total_frames / wall_ms
};

/// Deep-copies a detector: same architecture/config, parameter values copied
/// from `src`.  Each concurrent stream needs its own copy because Detector
/// caches activations between forward and detect.
std::unique_ptr<Detector> clone_detector(Detector* src);

/// Deep-copies a scale regressor (same reason: per-predict scratch state).
std::unique_ptr<ScaleRegressor> clone_regressor(ScaleRegressor* src);

/// Drives N independent AdaScalePipeline instances concurrently.
class MultiStreamRunner {
 public:
  /// Builds `num_streams` pipelines, each with its own detector/regressor
  /// clone.  The prototypes are only read during construction.  `renderer`
  /// is stateless and shared by all streams.
  MultiStreamRunner(Detector* prototype_detector,
                    ScaleRegressor* prototype_regressor,
                    const Renderer* renderer, const ScalePolicy& policy,
                    const ScaleSet& sreg, int num_streams,
                    int init_scale = 600);
  ~MultiStreamRunner();

  MultiStreamRunner(const MultiStreamRunner&) = delete;
  MultiStreamRunner& operator=(const MultiStreamRunner&) = delete;

  int num_streams() const;

  /// Processes every snippet: job j goes to stream j % num_streams, streams
  /// run concurrently on dedicated threads.  Pipelines reset() at each
  /// snippet boundary (Algorithm 1 restarts per video).
  MultiStreamResult run(const std::vector<const Snippet*>& jobs);

  /// Same jobs, same per-stream pipelines, but executed one stream after
  /// another on the calling thread.  Baseline for the throughput comparison;
  /// produces identical per-stream outputs to run().
  MultiStreamResult run_serial(const std::vector<const Snippet*>& jobs);

 private:
  struct Stream;
  MultiStreamResult run_impl(const std::vector<const Snippet*>& jobs,
                             bool concurrent);

  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace ada
