// Concurrent multi-stream serving of AdaScale pipelines.
//
// Production video analytics serves many independent camera/user streams at
// once.  Algorithm 1 is inherently sequential *within* a stream (frame t's
// deep features pick frame t+1's scale), but streams share nothing — so the
// scaling axis is across streams.  MultiStreamRunner owns one complete
// pipeline (detector + regressor clones) per stream and drives them on
// dedicated threads, with the shared runtime pool (runtime/thread_pool.h)
// parallelizing the per-frame kernels underneath.
//
// Job assignment is static round-robin (stream s takes jobs s, s+N, ...), so
// per-stream outputs are bit-identical to running the same jobs serially —
// the multi_stream test asserts exactly that.
#pragma once

#include <memory>
#include <vector>

#include "adascale/pipeline.h"
#include "data/video.h"
#include "runtime/batch_scheduler.h"

namespace ada {

/// Everything one stream produced: per-frame outputs in job order plus the
/// stream's busy wall-clock.
struct StreamOutput {
  int stream_id = 0;
  std::vector<AdaFrameOutput> frames;  ///< all frames of all jobs, in order
  double busy_ms = 0.0;                ///< time this stream spent processing
};

/// Aggregate result of a multi-stream run.
struct MultiStreamResult {
  std::vector<StreamOutput> streams;  ///< indexed by stream id
  double wall_ms = 0.0;               ///< end-to-end wall-clock of the run
  long total_frames = 0;
  double aggregate_fps = 0.0;         ///< total_frames / wall_ms
  bool batched = false;               ///< produced by run_batched()
  BatchSchedulerStats batch_stats;    ///< meaningful when batched
};

/// Drives N independent AdaScalePipeline instances concurrently.
/// (clone_detector / clone_regressor live with their classes:
/// detection/detector.h and adascale/scale_regressor.h.)
class MultiStreamRunner {
 public:
  /// Builds `num_streams` pipelines, each with its own detector/regressor
  /// clone.  The prototypes are only read during construction.  `renderer`
  /// is stateless and shared by all streams.  With snap_scales each
  /// pipeline quantizes its target scale to the nearest member of `sreg`
  /// (see AdaScalePipeline) — in every execution mode, so run(),
  /// run_serial() and run_batched() always process identical work; dense
  /// scale buckets are what lets run_batched() actually form batches.
  MultiStreamRunner(Detector* prototype_detector,
                    ScaleRegressor* prototype_regressor,
                    const Renderer* renderer, const ScalePolicy& policy,
                    const ScaleSet& sreg, int num_streams,
                    int init_scale = 600, bool snap_scales = false);
  ~MultiStreamRunner();

  MultiStreamRunner(const MultiStreamRunner&) = delete;
  MultiStreamRunner& operator=(const MultiStreamRunner&) = delete;

  int num_streams() const;

  /// Overrides the execution policy of one stream's detector and regressor
  /// clones (runtime/exec_policy.h) — heterogeneous serving, e.g. an int8
  /// stream next to an fp32 stream with no shared backend state to race
  /// on.  By default every stream inherits the prototypes' policies via
  /// cloning.  run() and run_serial() honor per-stream policies;
  /// run_batched() coalesces frames from *different* streams onto shared
  /// contexts cloned from stream 0, so it requires all streams to resolve
  /// identical policies and aborts loudly otherwise (per-model mixed
  /// precision — int8 detector + fp32 regressor — is fine: it rides the
  /// models, not the streams).
  void set_stream_policy(int stream, const ExecutionPolicy& detector_policy,
                         const ExecutionPolicy& regressor_policy);

  /// Enables DFF temporal reuse (keyframe/warp serving) on every stream's
  /// pipeline and resets their per-stream contexts.  Applies to all three
  /// execution modes; under run_batched() the scheduler automatically runs
  /// in features_only mode — key frames join cross-stream same-scale
  /// batches, warp frames never reach the scheduler (flow + warp + heads
  /// run on the stream's own models, no backbone at all).
  void set_dff(const DffServingConfig& cfg);

  /// Whether set_dff has been called.
  bool dff_enabled() const { return dff_enabled_; }

  /// Processes every snippet: job j goes to stream j % num_streams, streams
  /// run concurrently on dedicated threads.  Pipelines reset() at each
  /// snippet boundary (Algorithm 1 restarts per video).
  MultiStreamResult run(const std::vector<const Snippet*>& jobs);

  /// Same jobs, same per-stream pipelines, but executed one stream after
  /// another on the calling thread.  Baseline for the throughput comparison;
  /// produces identical per-stream outputs to run().
  MultiStreamResult run_serial(const std::vector<const Snippet*>& jobs);

  /// Same jobs and static round-robin assignment, but every stream routes
  /// its per-frame detection through a shared BatchScheduler: frames from
  /// different streams that currently target the same scale share ONE
  /// backbone forward (one sgemm per layer for the whole batch).  Because
  /// the batched kernels are bit-identical to the single-image ones,
  /// per-stream outputs are memcmp-equal to run()/run_serial() no matter
  /// how frames happened to batch; timing fields (detect_ms/regressor_ms)
  /// are amortized per frame.  Scheduler counters land in
  /// MultiStreamResult::batch_stats.
  MultiStreamResult run_batched(const std::vector<const Snippet*>& jobs,
                                const BatchSchedulerConfig& cfg = {});

 private:
  struct Stream;
  /// Shared orchestration for all three modes: round-robin job assignment,
  /// per-stream timing, aggregate accounting.  With a scheduler, frames
  /// route through it via process_via (run_batched); otherwise each stream
  /// detects on its own models (run / run_serial).
  MultiStreamResult run_impl(const std::vector<const Snippet*>& jobs,
                             bool concurrent, BatchScheduler* scheduler);

  std::vector<std::unique_ptr<Stream>> streams_;
  bool dff_enabled_ = false;
};

}  // namespace ada
