// Thread-local scratch arena for kernel workspaces.
//
// The conv/GEMM hot path needs several large temporary buffers per call
// (im2col column matrices, gradient columns, packed GEMM panels).  Before
// this arena existed each call re-allocated and zero-filled them, so the
// training loop and every MultiStreamRunner stream hammered the global
// allocator from multiple threads at once.  The arena replaces that with a
// per-thread bump allocator that keeps its high-water capacity across calls:
// steady-state kernel execution performs no heap allocation at all.
//
// Contract:
//   * One arena per thread (scratch_arena() returns the calling thread's
//     instance), so concurrent streams can never alias each other's buffers.
//   * Allocations are scoped by ScratchFrame (RAII mark/release).  Frames
//     nest: a conv frame holds the column matrix while the GEMM underneath
//     opens its own frame for packing panels.
//   * Every allocation is 64-byte aligned so packed kernels and Tensor reads
//     can use full-cacheline (and SIMD-aligned) accesses.
//   * Growth only happens while a request does not fit; the arena then
//     serves the request from an overflow block and enlarges the main buffer
//     the next time it is completely empty.  After warm-up, reuse is 100%.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace ada {

/// Per-thread bump allocator with RAII frames.  Not thread-safe by design:
/// each thread talks only to its own instance (see scratch_arena()).
class ScratchArena {
 public:
  static constexpr std::size_t kAlignment = 64;  ///< bytes; one cache line

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns a 64-byte-aligned buffer of `count` floats.  Contents are
  /// uninitialized.  Valid until the enclosing ScratchFrame is destroyed.
  float* alloc(std::size_t count);

  /// Returns a 64-byte-aligned buffer of `bytes` bytes, carved from the
  /// same arena (rounded up to whole cache lines).  This is how the INT8
  /// path sizes its non-float workspaces — u8 quantized activation panels
  /// and s8 packed weight panels — without a second allocator.
  void* alloc_bytes(std::size_t bytes);

  /// Typed view over alloc_bytes for element types of size ≤ alignment.
  template <typename T>
  T* alloc_as(std::size_t count) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T)));
  }

  /// Pre-sizes the main buffer to at least `floats` so the warm-up
  /// overflow path never triggers — how a model applies its
  /// ExecutionPlan's arena budget before the first forward at a new
  /// scale.  No-op while any frame is live (pointers must stay valid) or
  /// when the buffer is already large enough.
  void reserve(std::size_t floats);

  /// Floats currently reserved by live frames (main buffer only).
  std::size_t in_use() const { return top_; }

  /// Capacity of the main buffer, in floats.
  std::size_t capacity() const { return cap_; }

  /// Number of times the arena had to hit the real allocator.  Stable across
  /// repeated identical workloads once warmed up — tests assert on this.
  std::size_t heap_alloc_count() const { return heap_allocs_; }

 private:
  friend class ScratchFrame;

  void release(std::size_t mark, std::size_t overflow_mark);

  struct FreeDeleter {
    void operator()(float* p) const { ::operator delete[](
        p, std::align_val_t(kAlignment)); }
  };
  using Block = std::unique_ptr<float[], FreeDeleter>;

  static Block make_block(std::size_t floats);

  Block buf_;                    ///< main bump buffer
  std::size_t cap_ = 0;          ///< main buffer capacity (floats)
  std::size_t top_ = 0;          ///< bump pointer (floats)
  std::size_t high_water_ = 0;   ///< max total demand seen in one frame stack
  std::size_t live_overflow_ = 0;  ///< floats currently served from overflow
  std::vector<Block> overflow_;  ///< warm-up only: requests that did not fit
  std::vector<std::size_t> overflow_sizes_;
  std::size_t heap_allocs_ = 0;
};

/// RAII scope for arena allocations: everything alloc()ed after construction
/// is released on destruction.  Frames must be destroyed in LIFO order,
/// which scoping guarantees.
class ScratchFrame {
 public:
  explicit ScratchFrame(ScratchArena* arena)
      : arena_(arena),
        mark_(arena->top_),
        overflow_mark_(arena->overflow_.size()) {}
  ~ScratchFrame() { arena_->release(mark_, overflow_mark_); }

  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;

  /// Allocates from the underlying arena (convenience).
  float* alloc(std::size_t count) { return arena_->alloc(count); }

  /// Typed byte allocation from the underlying arena (convenience).
  template <typename T>
  T* alloc_as(std::size_t count) { return arena_->alloc_as<T>(count); }

 private:
  ScratchArena* arena_;
  std::size_t mark_;
  std::size_t overflow_mark_;
};

/// The calling thread's arena.  Never returns null; the arena lives for the
/// thread's lifetime, so buffer capacity is reused across kernel calls.
ScratchArena& scratch_arena();

}  // namespace ada
