// Stream-state table: many streams, few models.
//
// The thread-per-stream runner couples two things that scale differently —
// per-stream STATE (a StreamContext plus an arrival queue: kilobytes) and
// per-stream COMPUTE (a detector/regressor pair: megabytes, and a thread).
// At 1k+ streams the coupling is fatal: 1k model clones do not fit in
// memory and 1k threads thrash the scheduler, even though at any instant
// only a handful of frames are actually being served.
//
// This file is the decoupling.  A ModelTable owns ONE master copy of the
// detector/regressor weights (deep-cloned from the prototypes once) and
// hands out small ContextPools of weight-ALIASED serving contexts
// (clone_detector_shared / clone_regressor_shared): each context has its
// own activation scratch, plan cursor state, and INT8 tables, but its
// Params point at the master's storage, so resident weight bytes are
// O(1 master copy), not O(streams) and not even O(contexts).  Pools are
// keyed by (detector policy, regressor policy), so heterogeneous
// per-stream policies coexist — stream policy selects a pool, never a
// private model.
//
// AdaScalePipeline reaches the pooled contexts through the ModelPool
// interface (adascale/pipeline.h): each frame leases a context at its
// first model touch and returns it afterwards, so 1000 streams can be
// served, in any interleaving, by e.g. 4 resident contexts.  WHICH context
// serves a frame cannot affect the bits — contexts are bit-identical by
// construction — which is what keeps the table runner memcmp-equal to the
// serial runner (tests/stream_table_test.cpp).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "adascale/pipeline.h"

namespace ada {

/// Knobs of a stream-state-table run (MultiStreamRunner::run_table).
struct StreamTableConfig {
  /// Worker threads draining the table.  0 = auto:
  /// min(num_streams, max(1, hardware_concurrency)).  1 reproduces serial
  /// execution exactly (and is what run_serial uses).
  int workers = 0;

  /// Aborts loudly on nonsensical values (negative workers).
  void validate() const;
};

/// A fixed-size pool of weight-aliased detector/regressor contexts, all
/// sharing the master weights and pinned to one (detector, regressor)
/// policy pair.  acquire() blocks until a context is free; release() wakes
/// one waiter.  Free contexts are handed out LIFO (warmest scratch first).
class ContextPool : public ModelPool {
 public:
  /// Builds `contexts` weight-aliased clones of the masters and pins the
  /// given policies on them.  The masters are only read during
  /// construction and must outlive the pool.
  ContextPool(Detector* master_detector, ScaleRegressor* master_regressor,
              const ExecutionPolicy& detector_policy,
              const ExecutionPolicy& regressor_policy, int contexts);
  ~ContextPool() override;

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  Lease acquire() override;
  void release(const Lease& lease) override;

  int size() const { return static_cast<int>(slots_.size()); }

  /// Direct slot access for tests (aliasing assertions).  The pool must be
  /// quiescent — no outstanding leases on other threads.
  Detector* detector_at(int i) { return slots_.at(i).detector.get(); }
  ScaleRegressor* regressor_at(int i) { return slots_.at(i).regressor.get(); }

 private:
  struct Slot {
    std::unique_ptr<Detector> detector;
    std::unique_ptr<ScaleRegressor> regressor;
  };

  std::vector<Slot> slots_;
  std::vector<int> free_;  ///< LIFO stack of free slot indices
  std::mutex mu_;
  std::condition_variable cv_;
};

/// The shared-weights side of the stream-state table: one master weight
/// copy plus lazily-built per-policy-pair context pools that alias it.
class ModelTable {
 public:
  /// Deep-clones the prototypes ONCE (the only full weight copy this table
  /// ever makes); every pool context aliases these masters.
  /// `contexts_per_pool` bounds concurrent in-flight frames per policy
  /// pair; <= 0 auto-sizes to max(1, hardware_concurrency).
  ModelTable(Detector* prototype_detector,
             ScaleRegressor* prototype_regressor, int contexts_per_pool);
  ~ModelTable();

  ModelTable(const ModelTable&) = delete;
  ModelTable& operator=(const ModelTable&) = delete;

  /// The pool serving this policy pair, built on first request.  Keyed by
  /// the RAW (possibly kDefault) backends, so env-following streams keep
  /// following the env while pinned streams get pinned pools.  NOT
  /// thread-safe: pools are created at setup time (stream construction /
  /// set_stream_policy), before workers run.
  ContextPool* pool_for(const ExecutionPolicy& detector_policy,
                        const ExecutionPolicy& regressor_policy);

  /// The master copies (prototype-equivalent; used to build schedulers and
  /// as the pipelines' constructor models — untouched while pools serve).
  Detector* master_detector() { return master_det_.get(); }
  ScaleRegressor* master_regressor() { return master_reg_.get(); }

  /// Bytes of UNIQUE fp32 parameter storage (values + grads) reachable
  /// from the master and every pool context — counting each aliased Param
  /// once.  With weight sharing this stays at one model copy no matter how
  /// many pools or contexts exist; the 1k-stream test pins that down.
  std::size_t resident_weight_bytes() const;

  /// What `num_streams` dedicated clones would hold: num_streams times the
  /// master's parameter bytes.  The baseline resident_weight_bytes is
  /// measured against (bench_report's stream_table section).
  std::size_t cloned_weight_bytes(int num_streams) const;

  /// Number of pools built so far (one per distinct policy pair in use).
  std::size_t pool_count() const { return pools_.size(); }

 private:
  std::unique_ptr<Detector> master_det_;
  std::unique_ptr<ScaleRegressor> master_reg_;
  int contexts_per_pool_;
  /// Ordered map (R5: deterministic iteration) keyed by raw backend ints.
  std::map<std::pair<int, int>, std::unique_ptr<ContextPool>> pools_;
};

}  // namespace ada
