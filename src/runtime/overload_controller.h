// Graceful-degradation controller: AdaScale's scale knob as admission
// control.
//
// The paper gives serving a runtime accuracy–speed knob no fixed-scale
// baseline has: the target scale.  This controller closes the loop under
// overload.  It watches the worst queue depth and the worst head-of-line
// deadline slack across streams, and walks a degradation ladder one rung
// per overloaded observation:
//
//   kNormal      — serve as configured.
//   kScaleCap    — cap every stream's AdaScale target scale at
//                  `scale_cap` (snapped onto the regressor scale set via
//                  ScaleSet::nearest, so capped streams still land in
//                  shared batch buckets).  Cuts per-frame cost roughly
//                  quadratically in scale for a bounded, measured mAP
//                  cost — the cheapest capacity the system can buy.
//   kPolicySwitch— additionally switch stream execution policies to the
//                  int8 recipe (quantized detector, fp32 regressor) via
//                  the ExecutionPolicy seam.  Only engages when enabled;
//                  it needs calibrated models to buy anything.
//   kShed        — additionally drop queued frames whose deadline has
//                  already passed (deadline-aware shedding with full drop
//                  accounting).  The last rung: serving a frame nobody
//                  can use anymore only makes every later frame later.
//
// Recovery is hysteretic: one rung down only after `calm_ticks`
// consecutive healthy observations (depth <= queue_low and slack above the
// escalation threshold), so a controller oscillating at a watermark does
// not flap between scales.  Every transition is recorded with its trigger
// in a timeline for the SLO report.  All decisions are pure functions of
// the observation sequence and the injected clock — no wall time, fully
// deterministic (tests/overload_test.cpp).
#pragma once

#include <vector>

#include "adascale/scale_set.h"
#include "util/clock.h"

namespace ada {

/// Degradation ladder rungs, mildest first.  Ordering is meaningful:
/// level >= kScaleCap means "the scale cap is active", etc.
enum class DegradeLevel : int {
  kNormal = 0,
  kScaleCap = 1,
  kPolicySwitch = 2,
  kShed = 3,
};

/// Printable rung name ("normal" | "scale_cap" | "policy_switch" | "shed").
const char* degrade_level_name(DegradeLevel level);

/// Controller knobs.  validate() aborts loudly on inverted thresholds or
/// nonsensical values.
struct OverloadControllerConfig {
  /// Escalate one rung when the worst per-stream queue depth reaches this.
  int queue_high = 4;
  /// A recovery tick requires every queue at or below this depth.
  /// Must be < queue_high (hysteresis gap).
  int queue_low = 1;
  /// Escalate when the worst head-of-line deadline slack falls below this
  /// (ms).  0 = escalate only once a head frame is already late.
  double slack_low_ms = 0.0;
  /// Consecutive healthy observations required before stepping one rung
  /// back down.
  int calm_ticks = 8;
  /// Minimum time (clock ms) a rung must hold before the NEXT escalation:
  /// observations arrive per service slot (milliseconds apart), so without
  /// a dwell a single backlog spike walks the whole ladder before the
  /// first rung's action has had any chance to bite.  0 (the default)
  /// escalates on every overloaded observation — the right setting for
  /// unit tests and for ladders with one enabled rung.
  double min_dwell_ms = 0.0;
  /// kScaleCap rung: cap target scales at this nominal scale (snapped onto
  /// the scale set the controller was built with).  Must be positive.
  int scale_cap = 360;
  /// Rung enables.  Disabled rungs are skipped in both directions, so the
  /// ladder degenerates gracefully (e.g. no quantized models -> no policy
  /// switch rung).
  bool enable_scale_cap = true;
  bool enable_policy_switch = false;
  bool enable_shed = true;

  void validate() const;
};

/// One ladder transition, for the degradation timeline.
struct DegradeEvent {
  double ms = 0.0;  ///< clock time of the transition
  DegradeLevel from = DegradeLevel::kNormal;
  DegradeLevel to = DegradeLevel::kNormal;
  int depth = 0;         ///< worst queue depth observed at the transition
  double slack_ms = 0.0; ///< worst head-of-line slack observed
};

/// Watches queue pressure, walks the degradation ladder, recovers with
/// hysteresis.  Single-threaded by design (driven from the virtual-time
/// event loop); all timing through the injected clock.
class OverloadController {
 public:
  /// `sreg` is the scale set targets are snapped onto when capped; `clock`
  /// must outlive the controller.
  OverloadController(const OverloadControllerConfig& cfg, const ScaleSet& sreg,
                     const Clock* clock);

  DegradeLevel level() const { return level_; }

  /// Feeds one observation: the worst (max) queue depth and worst (min)
  /// head-of-line deadline slack across all live streams.  Escalates,
  /// holds, or (after calm_ticks healthy observations) recovers one rung.
  /// Returns the level now in force.
  DegradeLevel observe(int max_depth, double min_slack_ms);

  /// The scale this target is actually served at under the current level:
  /// min(target, scale_cap) snapped onto the scale set when the cap rung is
  /// active, the target unchanged otherwise.
  int apply_scale(int target_scale) const;

  /// True while the int8 policy-switch rung is in force.
  bool policy_switch_active() const {
    return cfg_.enable_policy_switch && level_ >= DegradeLevel::kPolicySwitch;
  }

  /// True while the shedding rung is in force (the runner then drops
  /// expired frames via ArrivalQueue::shed_expired).
  bool shedding_active() const {
    return cfg_.enable_shed && level_ >= DegradeLevel::kShed;
  }

  /// Every ladder transition since construction, in order.
  const std::vector<DegradeEvent>& timeline() const { return timeline_; }

  const OverloadControllerConfig& config() const { return cfg_; }

 private:
  /// Next enabled rung above/below `from` (respecting disabled rungs);
  /// returns `from` when there is none.
  DegradeLevel next_up(DegradeLevel from) const;
  DegradeLevel next_down(DegradeLevel from) const;
  bool rung_enabled(DegradeLevel level) const;

  OverloadControllerConfig cfg_;
  ScaleSet sreg_;
  const Clock* clock_;
  DegradeLevel level_ = DegradeLevel::kNormal;
  int calm_streak_ = 0;
  std::vector<DegradeEvent> timeline_;
};

}  // namespace ada
