// calibrate — post-training INT8 calibration and accuracy report.
//
// Loads the cached multi-scale detector + scale regressor (training them on
// first run, like every bench), builds the standard calibration set — N
// validation frames cycled across the regressor scale set
// (Harness::make_calibration_set) — freezes INT8 state into both models,
// then prints:
//
//   * per-layer calibration summaries (activation range → u8 scale/zero
//     point, per-channel weight-scale spread),
//   * the quickstart eval under fp32 (packed) vs INT8: fixed-600 and
//     AdaScale mAP + per-frame runtime, and the fixed-600 mAP delta —
//     the number the ISSUE acceptance bar and BENCH_kernels.json carry.
//
// Usage: calibrate [num_frames]        (default 16)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "experiments/harness.h"
#include "tensor/gemm.h"

using namespace ada;

int main(int argc, char** argv) {
  const int num_frames = argc > 1 ? std::atoi(argv[1]) : 16;
  if (num_frames < 1) {
    // A zero-frame calibration would freeze nothing, every "int8" eval
    // below would silently fall back to fp32, and the delta would be a
    // vacuous 0.00 PASS.
    std::fprintf(stderr, "calibrate: num_frames must be >= 1 (got \"%s\")\n",
                 argv[1]);
    return 1;
  }

  Harness h = make_vid_harness(default_cache_dir());
  Detector* det = h.detector(ScaleSet::train_default());
  ScaleRegressor* reg =
      h.regressor(ScaleSet::train_default(), h.default_regressor_config());

  // Calibration set: N validation frames cycled across the regressor
  // scale set (Harness::make_calibration_set — the recipe quickstart and
  // bench_report share).
  const std::vector<Tensor> calib = h.make_calibration_set(num_frames);
  std::printf("calibrating on %zu frames across the regressor scale set...\n",
              calib.size());

  set_gemm_backend(GemmBackend::kPacked);
  det->quantize(calib);
  if (!det->quantized()) {
    std::fprintf(stderr, "calibrate: detector did not quantize (empty "
                         "calibration set?)\n");
    return 1;
  }
  // The regressor calibrates on INT8-produced deep features — what it
  // will actually receive at int8 serving time (quickstart does the
  // same).  An unquantized clone is kept aside to measure the
  // mixed-precision option (int8 detector + fp32 regressor) below.
  std::unique_ptr<ScaleRegressor> reg_fp32 = clone_regressor(reg);
  set_gemm_backend(GemmBackend::kInt8);
  std::vector<Tensor> feats;
  for (const Tensor& img : calib) feats.push_back(det->forward(img));
  set_gemm_backend(GemmBackend::kPacked);
  reg->quantize(feats);

  std::printf("\n%-12s %22s %12s %8s %26s\n", "layer", "act range",
              "act scale", "zp", "w scale [min, max]");
  auto print_summary = [](const QuantSummary& s) {
    std::printf("%-12s [%9.4f, %9.4f] %12.6f %8d [%.6f, %.6f]  (%dx%d)\n",
                s.layer.c_str(), s.act_lo, s.act_hi, s.act.scale,
                s.act.zero_point, s.wscale_min, s.wscale_max, s.rows, s.cols);
  };
  for (const QuantSummary& s : det->quant_summaries()) print_summary(s);
  for (const QuantSummary& s : reg->quant_summaries()) print_summary(s);

  // fp32 vs INT8 on the quickstart eval.  Identical work per row pair —
  // only the backend changes.
  std::printf("\nevaluating fp32 (packed) vs int8...\n");
  set_gemm_backend(GemmBackend::kPacked);
  MethodRun fx32 = h.evaluate("fixed-600/fp32", h.run_fixed(det, 600));
  MethodRun ada32 = h.evaluate(
      "AdaScale/fp32", h.run_adascale(det, reg, ScaleSet::reg_default()));
  set_gemm_backend(GemmBackend::kInt8);
  MethodRun fx8 = h.evaluate("fixed-600/int8", h.run_fixed(det, 600));
  MethodRun ada8 = h.evaluate(
      "AdaScale/int8", h.run_adascale(det, reg, ScaleSet::reg_default()));
  // Mixed precision: the scale decision is far more sensitive to
  // quantization noise than the detections are (a flipped t̂ changes the
  // *entire* next frame), so serving can keep the tiny regressor fp32 and
  // still take the int8 detector.
  MethodRun mixed = h.evaluate(
      "AdaScale/int8+fp32reg",
      h.run_adascale(det, reg_fp32.get(), ScaleSet::reg_default()));
  set_gemm_backend(GemmBackend::kPacked);

  std::printf("\n%-22s %8s %10s\n", "method", "mAP", "ms/frame");
  for (const MethodRun* r : {&fx32, &fx8, &ada32, &ada8, &mixed})
    std::printf("%-22s %8.2f %10.2f\n", r->label.c_str(),
                100.0 * r->eval.map, r->mean_ms);
  const double delta = 100.0 * (fx8.eval.map - fx32.eval.map);
  std::printf("\nfixed-600 mAP delta (int8 - fp32): %+.2f\n", delta);
  std::printf("acceptance: |delta| <= 1.0 -> %s\n",
              delta >= -1.0 && delta <= 1.0 ? "PASS" : "FAIL");
  return 0;
}
