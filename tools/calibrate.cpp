// calibrate — post-training INT8 calibration and accuracy report.
//
// Loads the cached multi-scale detector + scale regressor (training them on
// first run, like every bench), builds the standard calibration set — N
// validation frames cycled across the regressor scale set
// (Harness::make_calibration_set) — freezes INT8 state, then prints:
//
//   * per-layer calibration summaries (activation range → u8 scale/zero
//     point, per-channel weight-scale spread),
//   * the quickstart eval under fp32 vs the quantized config: fixed-600
//     and AdaScale mAP + per-frame runtime, and the mAP delta the ISSUE
//     acceptance bar and BENCH_kernels.json carry.
//
// Backends are selected with pinned per-model ExecutionPolicy values
// (runtime/exec_policy.h) — the process-wide ADASCALE_GEMM default is
// never touched, so rows cannot contaminate each other.
//
// Two modes:
//   default      quantizes detector AND regressor (all-int8 serving, plus
//                a mixed row for comparison); delta bar on fixed-600.
//   --mixed      the mixed-precision serving recipe: quantizes ONLY the
//                detector, regressor stays fp32 — the config that recovers
//                the AdaScale-mode mAP the all-int8 path loses to scale-
//                decision noise; delta bar on AdaScale mode.
//
// Usage: calibrate [num_frames] [--mixed]        (default 16 frames)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "experiments/harness.h"
#include "runtime/exec_plan.h"
#include "runtime/exec_policy.h"

using namespace ada;

int main(int argc, char** argv) {
  int num_frames = 16;
  bool mixed_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mixed") == 0) {
      mixed_mode = true;
      continue;
    }
    num_frames = std::atoi(argv[i]);
    if (num_frames < 1) {
      // A zero-frame calibration would freeze nothing, every "int8" eval
      // below would silently fall back to fp32, and the delta would be a
      // vacuous 0.00 PASS.
      std::fprintf(stderr,
                   "calibrate: num_frames must be >= 1 (got \"%s\")\n",
                   argv[i]);
      return 1;
    }
  }

  Harness h = make_vid_harness(default_cache_dir());
  Detector* det = h.detector(ScaleSet::train_default());
  ScaleRegressor* reg =
      h.regressor(ScaleSet::train_default(), h.default_regressor_config());

  std::printf("calibrating on up to %d frames across the regressor scale "
              "set (%s mode)...\n",
              num_frames, mixed_mode ? "--mixed" : "all-int8");

  // The regressor used for the mixed row: a clone of the trained fp32
  // regressor, aligned to the int8 feature distribution by the
  // mixed-precision recipe (the original stays untouched so the fp32
  // baseline rows are the pre-alignment model).
  std::unique_ptr<ScaleRegressor> reg_mixed = clone_regressor(reg);
  h.prepare_mixed_precision(det, reg_mixed.get(), num_frames);
  if (!det->quantized()) {
    std::fprintf(stderr, "calibrate: detector did not quantize (empty "
                         "calibration set?)\n");
    return 1;
  }
  if (!mixed_mode) {
    // All-int8 mode additionally quantizes the regressor, calibrating on
    // INT8-produced deep features — what it will actually receive at
    // all-int8 serving time.
    det->set_execution_policy(ExecutionPolicy::int8());
    const std::vector<Tensor> calib = h.make_calibration_set(num_frames);
    std::vector<Tensor> feats;
    for (const Tensor& img : calib) feats.push_back(det->forward(img));
    det->set_execution_policy(ExecutionPolicy::fp32());
    reg->quantize(feats);
  }

  std::printf("\n%-12s %22s %12s %8s %26s\n", "layer", "act range",
              "act scale", "zp", "w scale [min, max]");
  auto print_summary = [](const QuantSummary& s) {
    std::printf("%-12s [%9.4f, %9.4f] %12.6f %8d [%.6f, %.6f]  (%dx%d)\n",
                s.layer.c_str(), s.act_lo, s.act_hi, s.act.scale,
                s.act.zero_point, s.wscale_min, s.wscale_max, s.rows, s.cols);
  };
  for (const QuantSummary& s : det->quant_summaries()) print_summary(s);
  for (const QuantSummary& s : reg->quant_summaries()) print_summary(s);

  // fp32 vs quantized on the quickstart eval.  Identical work per row pair
  // — only the per-model policies change.
  std::printf("\nevaluating fp32 (packed) vs quantized...\n");
  det->set_execution_policy(ExecutionPolicy::fp32());
  reg->set_execution_policy(ExecutionPolicy::fp32());
  MethodRun fx32 = h.evaluate("fixed-600/fp32", h.run_fixed(det, 600));
  MethodRun ada32 = h.evaluate(
      "AdaScale/fp32", h.run_adascale(det, reg, ScaleSet::reg_default()));

  det->set_execution_policy(ExecutionPolicy::int8());
  MethodRun fx8 = h.evaluate("fixed-600/int8", h.run_fixed(det, 600));
  // Mixed precision: the scale decision is far more sensitive to
  // quantization noise than the detections are (a flipped t̂ changes the
  // *entire* next frame), so serving keeps the tiny regressor fp32 —
  // aligned to the int8 feature distribution — and still takes the int8
  // detector.
  MethodRun mixed = h.evaluate(
      "AdaScale/int8+fp32reg",
      h.run_adascale(det, reg_mixed.get(), ScaleSet::reg_default()));

  // Autotune outcome of the int8 serving plan at scale 600 (read while the
  // int8 policy is still pinned, from the plan the evals above served
  // from): how many layers the measured kernel race kept on int8, how many
  // it demoted to packed fp32, and the speedup the tuned plan buys over
  // running every layer fp32 (per-layer min of the two measured timings).
  int autotuned_layers = 0, fallback_layers = 0;
  double fp32_total_ns = 0.0, chosen_total_ns = 0.0;
  {
    const Tensor img600 = h.renderer().render_at_scale(
        *h.dataset().val_frames()[0], 600, h.dataset().scale_policy());
    const ExecutionPlan& plan = det->plan_for(1, img600.h(), img600.w());
    for (const PlanStep& s : plan.steps) {
      if (!s.autotuned) continue;
      ++autotuned_layers;
      if (s.kernel != KernelKind::kInt8) ++fallback_layers;
      fp32_total_ns += s.tuned_fp32_ns;
      chosen_total_ns += std::min(s.tuned_int8_ns, s.tuned_fp32_ns);
    }
  }

  std::vector<const MethodRun*> rows{&fx32, &fx8, &ada32, &mixed};
  MethodRun ada8;
  if (!mixed_mode) {
    reg->set_execution_policy(ExecutionPolicy::int8());
    ada8 = h.evaluate("AdaScale/int8",
                      h.run_adascale(det, reg, ScaleSet::reg_default()));
    rows.insert(rows.begin() + 3, &ada8);
  }
  det->set_execution_policy(ExecutionPolicy::fp32());
  reg->set_execution_policy(ExecutionPolicy::fp32());

  std::printf("\n%-22s %8s %10s\n", "method", "mAP", "ms/frame");
  for (const MethodRun* r : rows)
    std::printf("%-22s %8.2f %10.2f\n", r->label.c_str(),
                100.0 * r->eval.map, r->mean_ms);

  if (mixed_mode) {
    // The mixed recipe's bar rides the AdaScale mode — the mode the
    // all-int8 path loses 2-4 mAP on.
    const double delta = 100.0 * (mixed.eval.map - ada32.eval.map);
    std::printf("\nAdaScale-mode mAP delta (int8 det + fp32 reg - fp32): "
                "%+.2f\n", delta);
    std::printf("acceptance: |delta| <= 1.0 -> %s  "
                "(autotune@600: %d/%d layers int8, %d fp32 fallback, "
                "tuned-vs-all-fp32 speedup %.2fx)\n",
                delta >= -1.0 && delta <= 1.0 ? "PASS" : "FAIL",
                autotuned_layers - fallback_layers, autotuned_layers,
                fallback_layers,
                chosen_total_ns > 0.0 ? fp32_total_ns / chosen_total_ns : 0.0);
  } else {
    const double delta = 100.0 * (fx8.eval.map - fx32.eval.map);
    std::printf("\nfixed-600 mAP delta (int8 - fp32): %+.2f\n", delta);
    std::printf("acceptance: |delta| <= 1.0 -> %s\n",
                delta >= -1.0 && delta <= 1.0 ? "PASS" : "FAIL");
  }
  return 0;
}
